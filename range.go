package pathcache

import (
	"fmt"

	"pathcache/internal/btree"
	"pathcache/internal/obs"
)

// RangeIndex is an external B+-tree over (key, value) pairs — the paper's
// optimal 1-dimensional baseline: O(log_B n + t/B) range queries and
// O(log_B n) updates on O(n/B) pages. Experiment E8 uses it to show why
// 1-dimensional indexes are inefficient for 2-dimensional queries.
type RangeIndex struct {
	core
	idx *btree.Tree
}

// NewRangeIndex creates an empty B+-tree index.
func NewRangeIndex(opts *Options) (*RangeIndex, error) {
	c, err := newCore(opts)
	if err != nil {
		return nil, err
	}
	idx, err := btree.NewLayout(c.be.Pager(), c.layout)
	if err != nil {
		return nil, fmt.Errorf("pathcache: %w", err)
	}
	return &RangeIndex{core: c, idx: idx}, nil
}

// Layout reports the page layout the tree was created with.
func (ix *RangeIndex) Layout() Layout { return Layout(ix.idx.Layout()) }

// Insert adds a (key, value) pair. The pair must be unique.
func (ix *RangeIndex) Insert(key int64, val uint64) error {
	if err := ix.idx.Insert(key, val); err != nil {
		return fmt.Errorf("pathcache: %w", err)
	}
	return nil
}

// Delete removes a (key, value) pair.
func (ix *RangeIndex) Delete(key int64, val uint64) error {
	if err := ix.idx.Delete(key, val); err != nil {
		return fmt.Errorf("pathcache: %w", err)
	}
	return nil
}

// Search returns every value stored under key. Each search is recorded as
// one "search" op against the B+-tree's O(log_B n + t/B) bound.
func (ix *RangeIndex) Search(key int64) ([]uint64, error) {
	ctr, finish := ix.startOp(rangeKindName, "search")
	vals, err := ix.idx.WithPager(ix.be.OpPager(ctr)).Search(key)
	if err != nil {
		ix.abortOp(finish)
		return nil, fmt.Errorf("pathcache: %w", err)
	}
	if _, err := finish(len(vals), ix.idx.Len(), obs.LogBBound); err != nil {
		return nil, err
	}
	return vals, nil
}

// rangeKindName tags the B+-tree's metric series. RangeIndex is not a
// persisted registry kind, so the name lives here instead of the registry.
const rangeKindName = "range"

// Range visits every (key, value) with lo <= key <= hi in ascending order;
// fn returns false to stop early.
func (ix *RangeIndex) Range(lo, hi int64, fn func(key int64, val uint64) bool) error {
	if err := ix.idx.Range(lo, hi, fn); err != nil {
		return fmt.Errorf("pathcache: %w", err)
	}
	return nil
}

// Len reports the number of stored pairs.
func (ix *RangeIndex) Len() int { return ix.idx.Len() }

// Pages reports the storage footprint in pages.
func (ix *RangeIndex) Pages() int { return ix.be.NumPages() }
