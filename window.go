package pathcache

import (
	"fmt"

	"pathcache/internal/engine"
	"pathcache/internal/extwindow"
)

// WindowIndex answers general 4-sided window queries
// {x1 <= X <= x2, y1 <= Y <= y2} — the outermost query class of Figure 1,
// which the paper leaves open. It is this repository's extension: an
// external range tree with per-node page directories, answering queries in
// O(log(n/B) + t/B) I/Os with O((n/B)·log(n/B)) pages (see
// internal/extwindow for the construction).
type WindowIndex struct {
	core
	idx *extwindow.Tree
}

// NewWindowIndex builds a static window index over pts. The input slice is
// not retained. With Options.Path set the index persists; reopen it with
// OpenWindowIndex or Open.
func NewWindowIndex(pts []Point, opts *Options) (*WindowIndex, error) {
	c, err := newCore(opts)
	if err != nil {
		return nil, err
	}
	idx, err := extwindow.BuildLayout(c.be.Pager(), toRecPoints(pts), c.layout)
	if err != nil {
		return nil, fmt.Errorf("pathcache: %w", err)
	}
	if err := c.be.SaveMeta(kindWindow, idx.Meta().Encode()); err != nil {
		return nil, err
	}
	c.recordBuild(engine.KindName(kindWindow), idx.Len())
	return &WindowIndex{core: c, idx: idx}, nil
}

// Query reports every point with x1 <= X <= x2 and y1 <= Y <= y2.
func (ix *WindowIndex) Query(x1, x2, y1, y2 int64) ([]Point, error) {
	pts, _, err := ix.QueryProfile(x1, x2, y1, y2)
	return pts, err
}

// QueryProfile is Query plus the query's I/O profile, including the exact
// page transfers attributed to this one query by an op-scoped counter.
func (ix *WindowIndex) QueryProfile(x1, x2, y1, y2 int64) ([]Point, IOProfile, error) {
	ctr, finish := ix.startOp(engine.KindName(kindWindow), "query")
	pts, st, err := ix.idx.WithPager(ix.be.OpPager(ctr)).Query(x1, x2, y1, y2)
	if err != nil {
		ix.abortOp(finish)
		return nil, IOProfile{}, fmt.Errorf("pathcache: %w", err)
	}
	prof, err := finish(len(pts), ix.idx.Len(), boundFor(kindWindow))
	prof.PathPages = st.PathPages
	prof.ListPages = st.ListPages
	prof.UsefulIOs = st.UsefulIOs
	prof.WastefulIOs = st.WastefulIOs
	if err != nil {
		return nil, prof, err
	}
	return fromRecPoints(pts), prof, nil
}

// Len reports the number of indexed points.
func (ix *WindowIndex) Len() int { return ix.idx.Len() }

// Kind reports the index's registry name.
func (ix *WindowIndex) Kind() string { return engine.KindName(kindWindow) }

// Layout reports the in-page layout of the persisted structure.
func (ix *WindowIndex) Layout() Layout { return Layout(ix.idx.Layout()) }

// Pages reports the storage footprint in pages.
func (ix *WindowIndex) Pages() int { return ix.idx.TotalPages() }
