package pathcache

import (
	"fmt"

	"pathcache/internal/extwindow"
)

// WindowIndex answers general 4-sided window queries
// {x1 <= X <= x2, y1 <= Y <= y2} — the outermost query class of Figure 1,
// which the paper leaves open. It is this repository's extension: an
// external range tree with per-node page directories, answering queries in
// O(log(n/B) + t/B) I/Os with O((n/B)·log(n/B)) pages (see
// internal/extwindow for the construction).
type WindowIndex struct {
	be  *backend
	idx *extwindow.Tree
}

// NewWindowIndex builds a static window index over pts. The input slice is
// not retained. With Options.Path set the index persists; reopen it with
// OpenWindowIndex.
func NewWindowIndex(pts []Point, opts *Options) (*WindowIndex, error) {
	be, err := newBackend(opts)
	if err != nil {
		return nil, err
	}
	idx, err := extwindow.Build(be.pager, toRecPoints(pts))
	if err != nil {
		return nil, fmt.Errorf("pathcache: %w", err)
	}
	if err := be.saveMeta(kindWindow, idx.Meta().Encode()); err != nil {
		return nil, fmt.Errorf("pathcache: %w", err)
	}
	return &WindowIndex{be: be, idx: idx}, nil
}

// OpenWindowIndex reopens a file-backed window index.
func OpenWindowIndex(path string) (*WindowIndex, error) {
	be, err := openBackend(path)
	if err != nil {
		return nil, err
	}
	blob, err := readIndexMeta(be.file, kindWindow)
	if err != nil {
		be.close()
		return nil, err
	}
	m, err := extwindow.DecodeMeta(blob)
	if err != nil {
		be.close()
		return nil, fmt.Errorf("pathcache: %w", err)
	}
	tr, err := extwindow.Reopen(be.pager, m)
	if err != nil {
		be.close()
		return nil, fmt.Errorf("pathcache: %w", err)
	}
	return &WindowIndex{be: be, idx: tr}, nil
}

// Query reports every point with x1 <= X <= x2 and y1 <= Y <= y2.
func (ix *WindowIndex) Query(x1, x2, y1, y2 int64) ([]Point, error) {
	pts, _, err := ix.QueryProfile(x1, x2, y1, y2)
	return pts, err
}

// QueryProfile is Query plus the query's I/O profile.
func (ix *WindowIndex) QueryProfile(x1, x2, y1, y2 int64) ([]Point, IOProfile, error) {
	pts, st, err := ix.idx.Query(x1, x2, y1, y2)
	if err != nil {
		return nil, IOProfile{}, fmt.Errorf("pathcache: %w", err)
	}
	return fromRecPoints(pts), IOProfile{
		PathPages:   st.PathPages,
		ListPages:   st.ListPages,
		UsefulIOs:   st.UsefulIOs,
		WastefulIOs: st.WastefulIOs,
		Results:     st.Results,
	}, nil
}

// Len reports the number of indexed points.
func (ix *WindowIndex) Len() int { return ix.idx.Len() }

// Pages reports the storage footprint in pages.
func (ix *WindowIndex) Pages() int { return ix.idx.TotalPages() }

// Stats reports the cumulative I/O counters.
func (ix *WindowIndex) Stats() Stats { return ix.be.stats() }

// ResetStats zeroes the I/O counters.
func (ix *WindowIndex) ResetStats() { ix.be.resetStats() }

// Close flushes and closes a file-backed index (no-op for in-memory ones).
func (ix *WindowIndex) Close() error { return ix.be.close() }
