package pathcache

import (
	"fmt"

	"pathcache/internal/dynpst"
)

// DynamicIndex is the fully dynamic 2-sided index of Theorem 5.1:
// O(log_B n + t/B) queries, amortized O(log_B n) insertions and deletions.
type DynamicIndex struct {
	core
	idx *dynpst.Tree
}

// NewDynamicIndex creates an empty dynamic 2-sided index.
func NewDynamicIndex(opts *Options) (*DynamicIndex, error) {
	c, err := newCore(opts)
	if err != nil {
		return nil, err
	}
	idx, err := dynpst.New(c.be.Pager())
	if err != nil {
		return nil, fmt.Errorf("pathcache: %w", err)
	}
	return &DynamicIndex{core: c, idx: idx}, nil
}

// BulkLoad replaces the index's entire contents with pts — one bottom-up
// build instead of n buffered updates.
func (ix *DynamicIndex) BulkLoad(pts []Point) error {
	if err := ix.idx.BulkLoad(toRecPoints(pts)); err != nil {
		return fmt.Errorf("pathcache: %w", err)
	}
	return nil
}

// Insert adds a point. Points are identified by their full (X, Y, ID)
// triple; inserting the same triple twice and deleting it once leaves one
// copy.
func (ix *DynamicIndex) Insert(p Point) error {
	if err := ix.idx.Insert(toRec(p)); err != nil {
		return fmt.Errorf("pathcache: %w", err)
	}
	return nil
}

// Delete removes a point previously inserted with the same (X, Y, ID).
// Deleting an absent point is a no-op by the time its buffered operation
// drains, but still decrements Len; callers should only delete live points.
func (ix *DynamicIndex) Delete(p Point) error {
	if err := ix.idx.Delete(toRec(p)); err != nil {
		return fmt.Errorf("pathcache: %w", err)
	}
	return nil
}

// Query reports every live point with X >= a and Y >= b, merging any
// buffered updates.
func (ix *DynamicIndex) Query(a, b int64) ([]Point, error) {
	pts, _, err := ix.idx.Query(a, b)
	if err != nil {
		return nil, fmt.Errorf("pathcache: %w", err)
	}
	return fromRecPoints(pts), nil
}

// Len reports the number of live points.
func (ix *DynamicIndex) Len() int { return ix.idx.Len() }

// Pages reports the storage footprint in pages.
func (ix *DynamicIndex) Pages() int { return ix.be.NumPages() }
