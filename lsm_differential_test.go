package pathcache

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"pathcache/internal/disk"
	"pathcache/internal/logmethod"
	"pathcache/internal/record"
)

// Three-way differential suite for the persisted write tier: the same
// seeded stream of Insert/Delete/Query/Stab ops drives the file-backed
// LSMIndex, the in-memory logarithmic-method baseline (internal/logmethod —
// the Section 5 folklore structure the tier is the persistent rendition
// of), and a flat oracle. Every query must agree three ways; every ~150 ops
// the LSM index is closed WITHOUT a flush and reopened from its file, so
// recovery replays a non-empty WAL mid-stream. A background compaction is
// raced against the tail of each stream, and the whole suite runs under
// -race in CI.
//
// Failures shrink by halving the op count while the divergence persists
// (runs are deterministic in (ops, seed)) and print a one-line reproducer,
// mirroring boundprop_test.go:
//
//	PC_LSMDIFF_SEED=<seed> go test -run TestLSMDifferential

const lsmDiffOps = 600

// lsmDiffSeeds returns the stream seeds: the fixed list, or the single seed
// PC_LSMDIFF_SEED requests.
func lsmDiffSeeds(t *testing.T) []int64 {
	if s := os.Getenv("PC_LSMDIFF_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("PC_LSMDIFF_SEED=%q: %v", s, err)
		}
		return []int64{v}
	}
	return []int64{101, 102, 103}
}

// runLSMDifferential drives one deterministic stream of ops against all
// three structures. base selects the query shape: "twosided" compares
// 2-sided queries on points, "stabbing" compares stabbing queries on
// diagonal-corner encoded intervals (the logmethod mirror stabs via the
// same reduction: Query(-q, q)). dir receives the index file; every run
// creates its own so shrink reruns start clean.
func runLSMDifferential(dir, base string, ops int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	path := filepath.Join(dir, fmt.Sprintf("diff-%s-%d-%d.pc", base, ops, seed))

	newPoint := func(id uint64) Point {
		if base == "stabbing" {
			lo := rng.Int63n(500)
			return IntervalToDynamicPoint(Interval{Lo: lo, Hi: lo + 1 + rng.Int63n(150), ID: id})
		}
		return Point{X: rng.Int63n(500), Y: rng.Int63n(500), ID: id}
	}

	model := &diffModel{}
	nextID := uint64(1)
	var init []Point
	for i := 0; i < 48; i++ {
		p := newPoint(nextID)
		nextID++
		init = append(init, p)
		model.insert(p)
	}

	ix, err := BuildDynamic(base, init, &Options{
		PageSize: 512, BufferPoolPages: 8, Path: path, MemtableEntries: 32,
	})
	if err != nil {
		return fmt.Errorf("build: %w", err)
	}
	closed := false
	defer func() {
		if !closed {
			ix.Close()
		}
	}()

	lm, err := logmethod.New(disk.MustStore(512))
	if err != nil {
		return fmt.Errorf("logmethod: %w", err)
	}
	for _, p := range init {
		if err := lm.Insert(record.Point(p)); err != nil {
			return fmt.Errorf("logmethod seed insert: %w", err)
		}
	}

	compare := func(op int) error {
		if base == "stabbing" {
			q := rng.Int63n(700)
			got, _, err := ix.Stab(q)
			if err != nil {
				return fmt.Errorf("op %d stab(%d): %w", op, q, err)
			}
			ref, err := lm.Query(-q, q)
			if err != nil {
				return fmt.Errorf("op %d logmethod stab(%d): %w", op, q, err)
			}
			var want []Interval
			for _, p := range model.pts {
				iv := DynamicPointToInterval(p)
				if iv.Lo <= q && q <= iv.Hi {
					want = append(want, iv)
				}
			}
			if !sameIntervals(got, want) {
				return fmt.Errorf("op %d stab(%d): lsm diverged from oracle (%d vs %d results)", op, q, len(got), len(want))
			}
			refIvs := make([]Interval, len(ref))
			for i, p := range ref {
				refIvs[i] = DynamicPointToInterval(Point(p))
			}
			if !sameIntervals(refIvs, want) {
				return fmt.Errorf("op %d stab(%d): logmethod diverged from oracle (%d vs %d results)", op, q, len(refIvs), len(want))
			}
			return nil
		}
		a, b := rng.Int63n(500), rng.Int63n(500)
		got, _, err := ix.Query(a, b)
		if err != nil {
			return fmt.Errorf("op %d query(%d,%d): %w", op, a, b, err)
		}
		want := model.twoSided(a, b)
		if !samePoints(got, want) {
			return fmt.Errorf("op %d query(%d,%d): lsm diverged from oracle (%d vs %d results)", op, a, b, len(got), len(want))
		}
		ref, err := lm.Query(a, b)
		if err != nil {
			return fmt.Errorf("op %d logmethod query(%d,%d): %w", op, a, b, err)
		}
		refPts := make([]Point, len(ref))
		for i, p := range ref {
			refPts[i] = Point(p)
		}
		if !samePoints(refPts, want) {
			return fmt.Errorf("op %d logmethod query(%d,%d): diverged from oracle (%d vs %d results)", op, a, b, len(refPts), len(want))
		}
		return nil
	}

	var compacting <-chan error
	drain := func() error {
		if compacting == nil {
			return nil
		}
		err := <-compacting
		compacting = nil
		if err != nil && !errors.Is(err, ErrStaleCompaction) {
			return fmt.Errorf("background compaction: %w", err)
		}
		return nil
	}

	for op := 0; op < ops; op++ {
		switch r := rng.Intn(10); {
		case r < 4: // insert
			p := newPoint(nextID)
			nextID++
			if _, err := ix.Insert(p); err != nil {
				return fmt.Errorf("op %d insert: %w", op, err)
			}
			if err := lm.Insert(record.Point(p)); err != nil {
				return fmt.Errorf("op %d logmethod insert: %w", op, err)
			}
			model.insert(p)
		case r < 6 && len(model.pts) > 0: // delete a live record
			p := model.pts[rng.Intn(len(model.pts))]
			if _, err := ix.Delete(p); err != nil {
				return fmt.Errorf("op %d delete: %w", op, err)
			}
			if err := lm.Delete(record.Point(p)); err != nil {
				return fmt.Errorf("op %d logmethod delete: %w", op, err)
			}
			model.delete(p)
		case r < 7: // exact-record probe against the oracle
			var p Point
			if len(model.pts) > 0 && rng.Intn(2) == 0 {
				p = model.pts[rng.Intn(len(model.pts))]
			} else {
				p = newPoint(nextID + 1_000_000) // never inserted
			}
			got, _, err := ix.Has(p)
			if err != nil {
				return fmt.Errorf("op %d has: %w", op, err)
			}
			want := false
			for _, q := range model.pts {
				if q == p {
					want = true
					break
				}
			}
			if got != want {
				return fmt.Errorf("op %d has %v = %v, want %v", op, p, got, want)
			}
		default:
			if err := compare(op); err != nil {
				return err
			}
		}
		if ix.Len() != len(model.pts) {
			return fmt.Errorf("op %d: lsm Len %d, oracle %d", op, ix.Len(), len(model.pts))
		}
		if lm.Len() != len(model.pts) {
			return fmt.Errorf("op %d: logmethod Len %d, oracle %d", op, lm.Len(), len(model.pts))
		}
		// Race a snapshot compaction against the stream's second half.
		if op == ops/2 && compacting == nil {
			compacting = ix.CompactBackground()
		}
		// Close without flushing and reopen: recovery must replay the WAL
		// tail and land on exactly the oracle's state.
		if op%150 == 149 {
			if err := drain(); err != nil {
				return err
			}
			if err := ix.Close(); err != nil {
				return fmt.Errorf("op %d close: %w", op, err)
			}
			closed = true
			ix, err = OpenDynamic(path)
			if err != nil {
				return fmt.Errorf("op %d reopen: %w", op, err)
			}
			closed = false
			if ix.Len() != len(model.pts) {
				return fmt.Errorf("op %d: reopened Len %d, oracle %d", op, ix.Len(), len(model.pts))
			}
		}
	}
	if err := drain(); err != nil {
		return err
	}
	if err := compare(ops); err != nil {
		return err
	}
	closed = true
	return ix.Close()
}

// shrinkLSMDiff minimizes a failing stream by halving the op count while
// the divergence persists, then formats the smallest reproducer.
func shrinkLSMDiff(t *testing.T, base string, ops int, seed int64, err error) string {
	for ops/2 >= 20 && runLSMDifferential(t.TempDir(), base, ops/2, seed) != nil {
		ops /= 2
	}
	if rerr := runLSMDifferential(t.TempDir(), base, ops, seed); rerr != nil {
		err = rerr
	}
	return fmt.Sprintf(
		"lsm/%s diverges from its references at ops=%d seed=%d\n"+
			"reproduce: PC_LSMDIFF_SEED=%d go test -run 'TestLSMDifferential/%s'\nerror: %v",
		base, ops, seed, seed, base, err)
}

func TestLSMDifferential(t *testing.T) {
	for _, base := range []string{"twosided", "stabbing"} {
		base := base
		t.Run(base, func(t *testing.T) {
			for _, seed := range lsmDiffSeeds(t) {
				seed := seed
				t.Run(strconv.FormatInt(seed, 10), func(t *testing.T) {
					t.Parallel()
					if err := runLSMDifferential(t.TempDir(), base, lsmDiffOps, seed); err != nil {
						t.Fatal(shrinkLSMDiff(t, base, lsmDiffOps, seed, err))
					}
				})
			}
		})
	}
}
