package pathcache

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"
)

// Open must round-trip every persisted kind: build with Options.Path,
// close, reopen kind-agnostically, and get back the same concrete type
// answering the same queries.
func TestOpenAllKinds(t *testing.T) {
	dir := t.TempDir()
	pts := uniformPoints(2_000, 100_000, 801)
	ivs := uniformIntervals(2_000, 100_000, 8_000, 803)
	opts := func(name string) *Options {
		return &Options{PageSize: 512, Path: filepath.Join(dir, name)}
	}

	build := []struct {
		kind  string
		build func() (Index, error)
	}{
		{"twosided", func() (Index, error) { return NewTwoSidedIndex(pts, SchemeSegmented, opts("two.pc")) }},
		{"threeside", func() (Index, error) { return NewThreeSidedIndex(pts, opts("three.pc")) }},
		{"segment", func() (Index, error) { return NewSegmentIndex(ivs, true, opts("seg.pc")) }},
		{"interval", func() (Index, error) { return NewIntervalIndex(ivs, true, opts("itv.pc")) }},
		{"stabbing", func() (Index, error) { return NewStabbingIndex(ivs, SchemeSegmented, opts("stab.pc")) }},
		{"window", func() (Index, error) { return NewWindowIndex(pts, opts("win.pc")) }},
	}
	paths := map[string]string{
		"twosided": "two.pc", "threeside": "three.pc", "segment": "seg.pc",
		"interval": "itv.pc", "stabbing": "stab.pc", "window": "win.pc",
	}

	for _, b := range build {
		ix, err := b.build()
		if err != nil {
			t.Fatalf("%s: build: %v", b.kind, err)
		}
		if got := ix.Kind(); got != b.kind {
			t.Fatalf("built index Kind() = %q, want %q", got, b.kind)
		}
		wantLen := ix.Len()
		if err := ix.Close(); err != nil {
			t.Fatalf("%s: close: %v", b.kind, err)
		}

		re, err := Open(filepath.Join(dir, paths[b.kind]))
		if err != nil {
			t.Fatalf("%s: Open: %v", b.kind, err)
		}
		if got := re.Kind(); got != b.kind {
			t.Fatalf("reopened Kind() = %q, want %q", got, b.kind)
		}
		if re.Len() != wantLen {
			t.Fatalf("%s: reopened Len = %d, want %d", b.kind, re.Len(), wantLen)
		}

		// The concrete type must match the kind, and queries must work.
		switch b.kind {
		case "twosided":
			two := re.(*TwoSidedIndex)
			if got, err := two.Query(0, 0); err != nil || len(got) != wantLen {
				t.Fatalf("twosided query after Open: %d pts, err %v", len(got), err)
			}
		case "threeside":
			three := re.(*ThreeSidedIndex)
			if _, err := three.Query(0, 100_000, 0); err != nil {
				t.Fatalf("threeside query after Open: %v", err)
			}
		case "segment":
			seg := re.(*SegmentIndex)
			if _, err := seg.Stab(50_000); err != nil {
				t.Fatalf("segment stab after Open: %v", err)
			}
		case "interval":
			itv := re.(*IntervalIndex)
			if _, err := itv.Stab(50_000); err != nil {
				t.Fatalf("interval stab after Open: %v", err)
			}
		case "stabbing":
			stab := re.(*StabbingIndex)
			if _, err := stab.Stab(50_000); err != nil {
				t.Fatalf("stabbing stab after Open: %v", err)
			}
		case "window":
			win := re.(*WindowIndex)
			if _, err := win.Query(0, 100_000, 0, 100_000); err != nil {
				t.Fatalf("window query after Open: %v", err)
			}
		}
		if err := re.Close(); err != nil {
			t.Fatalf("%s: close after Open: %v", b.kind, err)
		}
	}
}

// A typed opener on a file of another kind must fail with ErrKindMismatch,
// and the message must name both kinds so the wrapped text stays
// actionable end to end.
func TestOpenKindMismatchError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg.pc")
	ivs := uniformIntervals(500, 10_000, 1_000, 805)
	ix, err := NewSegmentIndex(ivs, true, &Options{PageSize: 512, Path: path})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}

	_, err = OpenTwoSidedIndex(path)
	if err == nil {
		t.Fatal("opened a segment file as a 2-sided index")
	}
	if !errors.Is(err, ErrKindMismatch) {
		t.Fatalf("err = %v, want ErrKindMismatch", err)
	}
	for _, want := range []string{"segment", "twosided"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("mismatch error %q does not name kind %q", err, want)
		}
	}
}

// Open on a file whose build never committed reports ErrNoIndex, same as
// the typed openers.
func TestOpenNoIndex(t *testing.T) {
	path := filepath.Join(t.TempDir(), "two.pc")
	pts := uniformPoints(1_000, 10_000, 807)
	// Recursive schemes carry no reopen metadata, so the file stays
	// headless.
	ix, err := NewTwoSidedIndex(pts, SchemeTwoLevel, &Options{PageSize: 512, Path: path})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); !errors.Is(err, ErrNoIndex) {
		t.Fatalf("Open on headless file = %v, want ErrNoIndex", err)
	}
	if _, err := Open(filepath.Join(t.TempDir(), "missing.pc")); err == nil {
		t.Fatal("Open on missing file succeeded")
	}
}
