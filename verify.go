package pathcache

import (
	"fmt"

	"pathcache/internal/disk"
	"pathcache/internal/engine"
)

// FileReport is the result of a full integrity scan of an index file: the
// superblock in effect, the page population, and the index kind the
// metadata page declares. A returned report with a nil error means every
// live page and free-list stub verified checksum-clean.
type FileReport struct {
	Path     string // the scanned file
	Kind     string // index kind name ("" when the file holds no index)
	Epoch    uint64 // superblock epoch in effect
	PageSize int    // physical page size in bytes
	Usable   int    // payload bytes per page (PageSize minus checksum trailer)
	Slots    int64  // allocated-or-freed page slots
	Live     int    // pages holding data
	Free     int    // pages on the free list
}

// VerifyFile scans every page and free-list stub of an index file against
// its checksums and reports what the file holds, without interpreting the
// index structure itself. It is the recovery-time health check behind
// `pcindex verify`: after a crash it distinguishes a fully committed index,
// a structurally intact file whose build never committed (wrapped
// ErrNoIndex), and detected corruption (an error wrapping disk.ErrCorrupt).
func VerifyFile(path string) (_ FileReport, err error) {
	fs, err := disk.OpenFileStore(path)
	if err != nil {
		return FileReport{Path: path}, fmt.Errorf("pathcache: %w", err)
	}
	defer func() {
		if cerr := fs.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("pathcache: closing after verify: %w", cerr)
		}
	}()
	rep, err := fs.Verify()
	out := FileReport{
		Path:     path,
		Epoch:    rep.Epoch,
		PageSize: rep.PageSize,
		Usable:   rep.Usable,
		Slots:    rep.Slots,
		Live:     rep.Live,
		Free:     rep.Free,
	}
	if err != nil {
		return out, fmt.Errorf("pathcache: %w", err)
	}
	kind, err := engine.MetaKind(fs)
	if err != nil {
		return out, err
	}
	out.Kind = engine.KindName(kind)
	return out, nil
}
