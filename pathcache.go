// Package pathcache is a Go implementation of "Path Caching: A Technique
// for Optimal External Searching" (Ramaswamy & Subramanian, PODS 1994).
//
// Path caching transforms classical main-memory search structures — segment
// trees, interval trees and priority search trees — into I/O-efficient
// external ones: the underfull lists along a search path, each of which
// would cost a wasteful page read, are coalesced into per-path caches so a
// query performs O(log_B n + t/B) page transfers, where B is the page
// capacity in records and t the output size.
//
// The package offers:
//
//   - TwoSidedIndex: static 2-sided range search {x >= a, y >= b} with the
//     paper's full scheme ladder (the IKO baseline, Lemma 3.1, Theorem 3.2,
//     and the recursive Theorems 4.3/4.4).
//   - DynamicIndex: the fully dynamic structure of Theorem 5.1 with
//     amortized O(log_B n) updates.
//   - ThreeSidedIndex: 3-sided search {a1 <= x <= a2, y >= b}
//     (Theorems 3.3/4.5), the primitive behind class-hierarchy indexing.
//   - StabbingIndex / DynamicStabbingIndex: interval management for
//     temporal and constraint databases via the diagonal-corner reduction.
//   - SegmentIndex and IntervalIndex: external segment and interval trees
//     (Theorems 3.4/3.5), each with a naive uncached variant for
//     comparison.
//   - RangeIndex: a B+-tree, the paper's optimal 1-dimensional baseline.
//
// All structures run against a simulated disk with exact I/O accounting, so
// the complexity claims can be observed directly: every index exposes
// Stats (page transfer counters) and Pages (storage footprint).
package pathcache

import (
	"fmt"

	"pathcache/internal/disk"
	"pathcache/internal/engine"
	"pathcache/internal/record"
)

// Point is a point in the plane with an opaque tuple identifier. For
// interval data under the diagonal-corner reduction, X is the left endpoint
// and Y the right.
type Point struct {
	X, Y int64
	ID   uint64
}

// Interval is a closed interval [Lo, Hi] with an opaque tuple identifier.
type Interval struct {
	Lo, Hi int64
	ID     uint64
}

// Layout selects the physical ordering of entries within index pages. The
// choice is recorded in every page header and in the index metadata, so
// reopen paths self-dispatch; both layouts touch exactly the same pages per
// operation (identical I/O counts), they differ only in CPU cost per page.
type Layout uint8

// Layouts.
const (
	// LayoutSorted stores page entries in key order and binary-searches
	// them. The default, and the only layout prior formats used.
	LayoutSorted Layout = Layout(disk.LayoutSorted)
	// LayoutEytzinger stores page entries in implicit-binary-tree (BFS)
	// order, enabling a branchless cache-friendly in-page search.
	LayoutEytzinger Layout = Layout(disk.LayoutEytzinger)
)

func (l Layout) String() string { return disk.Layout(l).String() }

// Options configures the disk behind an index. Invalid values (a negative
// PageSize or BufferPoolPages, or a PageSize below the store's minimum) are
// rejected with an error by every constructor.
type Options struct {
	// PageSize is the disk page size in bytes (default 4096). The page
	// capacity B follows from it: B = (PageSize - 10) / 24 records for the
	// in-memory simulator. File-backed stores (Path set) reserve the last 4
	// bytes of every page for a checksum trailer, so there
	// B = (PageSize - 4 - 10) / 24, and PageSize must be at least 128.
	PageSize int
	// BufferPoolPages, when positive, interposes an LRU buffer pool of that
	// many frames. Leave zero to measure worst-case (cold) I/O per
	// operation, which is what the paper's bounds describe.
	BufferPoolPages int
	// Path, when set, backs the index with a real file instead of the
	// in-memory simulator. Static indexes built this way persist: reopen
	// them with the matching Open function. Call Close when done.
	Path string

	// Layout selects the in-page entry layout new indexes are built with
	// (LayoutSorted by default). Reopened indexes ignore it: they dispatch
	// on the layout recorded in their pages and metadata.
	Layout Layout

	// PrefetchWorkers, when positive, starts that many background page
	// prefetchers that warm the buffer pool along predicted search paths.
	// Requires BufferPoolPages > 0 (prefetch warms the pool; without one
	// there is nothing to warm, and constructors reject the combination).
	// Prefetch never changes which pages an operation touches — per-op
	// counters attribute a prefetched page as a cache hit instead of a
	// read, so Reads+CacheHits is invariant under prefetching.
	PrefetchWorkers int
	// PrefetchDepth bounds the pending prefetch-hint queue (default 64).
	// Hints beyond the bound are dropped, never executed inline.
	PrefetchDepth int

	// MemtableEntries is the dynamic write tier's flush threshold: a
	// BuildDynamic index seals its memtable into a static level every this
	// many updates. Zero selects the tier's default; reopened indexes
	// inherit the threshold persisted in their manifest. Static index
	// constructors ignore it.
	MemtableEntries int

	// Tracer, when set, receives OpStart/OpEnd events for every recorded
	// operation (serial queries and stabs, each batch worker's queries,
	// builds). See also WithTracer.
	Tracer Tracer

	// StrictBounds arms the theorem-bound sentinels: any query-class
	// operation whose measured page reads exceed
	// BoundMaxRatio·bound + BoundSlack — where bound is the index kind's
	// registered theorem formula evaluated at the op's (n, B, t) — fails
	// with a *BoundError wrapping ErrBoundExceeded that carries the op's
	// trace. Meant for tests and benchmarks; leave off in production use.
	StrictBounds bool
	// BoundMaxRatio and BoundSlack tune the sentinel threshold;
	// non-positive values select the defaults (4 and 8).
	BoundMaxRatio float64
	BoundSlack    float64

	// WrapPager, when set, wraps the pager every structure routes its page
	// I/O through — the fault-injection seam the test batteries (including
	// internal/server's) drive a disk.FaultPager through. The wrapper sees
	// every read and write the index performs. Production use leaves it nil;
	// external module users cannot name the internal disk.Pager type and
	// should, too.
	WrapPager func(disk.Pager) disk.Pager

	// testFile, when set, backs the index with a FileStore created on this
	// File instead of a real on-disk file — the in-package hook the
	// crash-simulation harness uses to drive builds over an injector while
	// still exercising the whole public build path.
	testFile disk.File
}

// WithTracer returns a copy of opts (or a fresh Options when opts is nil)
// with t installed as the trace hook — the chaining form of setting
// Options.Tracer:
//
//	ix, err := pathcache.NewSegmentIndex(ivs, true, opts.WithTracer(t))
func (opts *Options) WithTracer(t Tracer) *Options {
	var out Options
	if opts != nil {
		out = *opts
	}
	out.Tracer = t
	return &out
}

// DefaultPageSize is used when Options.PageSize is zero.
const DefaultPageSize = engine.DefaultPageSize

// Stats is a snapshot of the I/O counters of an index's underlying store.
type Stats struct {
	Reads  int64 // pages read
	Writes int64 // pages written
	Pages  int   // live pages (storage footprint)
}

// IOProfile describes one query's I/O behaviour using the paper's
// accounting (Figure 3): a data-page read is useful when it returns a full
// page of reported records and wasteful otherwise.
type IOProfile struct {
	PathPages   int // index/skeleton pages read to locate the search path
	ListPages   int // data pages read from lists, blocks and caches
	UsefulIOs   int
	WastefulIOs int
	Results     int

	// Reads and Writes are the page transfers the store performed for this
	// operation, measured by an op-scoped counter rather than a global
	// diff, so they stay exact when other operations run concurrently.
	// Under a buffer pool only real store I/O counts — cache hits cost
	// zero, so Reads can be below PathPages+ListPages.
	Reads  int64
	Writes int64
	// CacheHits counts the page accesses a buffer pool absorbed for this
	// operation (always zero without a pool).
	CacheHits int64
	// Bound is the kind's theorem I/O bound in page reads evaluated at
	// this operation's (n, B, t), and BoundRatio is Reads/Bound — the
	// number the sentinels police. See DESIGN.md §10.
	Bound      float64
	BoundRatio float64
}

// core is the storage half embedded in every index type: the engine
// backend plus the store-facing methods all indexes share. Embedding it
// promotes Close, Stats and ResetStats, so the index types only implement
// what is specific to their structure.
type core struct {
	be *engine.Backend
	// layout is the page layout new structures on this store are built
	// with; reopen paths ignore it and dispatch on persisted metadata.
	layout disk.Layout
}

func newCore(opts *Options) (core, error) {
	var cfg engine.Config
	var layout disk.Layout
	if opts != nil {
		cfg = engine.Config{
			PageSize:        opts.PageSize,
			BufferPoolPages: opts.BufferPoolPages,
			Path:            opts.Path,
			File:            opts.testFile,
			WrapPager:       opts.WrapPager,
			StrictBounds:    opts.StrictBounds,
			BoundMaxRatio:   opts.BoundMaxRatio,
			BoundSlack:      opts.BoundSlack,
			PrefetchWorkers: opts.PrefetchWorkers,
			PrefetchDepth:   opts.PrefetchDepth,
		}
		if opts.Tracer != nil {
			cfg.Tracer = tracerAdapter{t: opts.Tracer}
		}
		layout = disk.Layout(opts.Layout)
		if !layout.Valid() {
			return core{}, fmt.Errorf("pathcache: invalid layout %d", opts.Layout)
		}
	}
	be, err := engine.New(cfg)
	if err != nil {
		return core{}, fmt.Errorf("pathcache: %w", err)
	}
	return core{be: be, layout: layout}, nil
}

// backend exposes the engine backend to in-package composites: the sharded
// router reaches each shard's metric registry and store counters through
// it. Every index type embeds core, so any Index opened in-package can be
// asserted to the backender seam.
func (c core) backend() *engine.Backend { return c.be }

// Stats reports the cumulative I/O counters of the underlying store.
func (c core) Stats() Stats {
	s := c.be.Stats()
	return Stats{Reads: s.Reads, Writes: s.Writes, Pages: c.be.NumPages()}
}

// ResetStats zeroes the I/O counters (and the buffer pool's statistics when
// one is configured).
func (c core) ResetStats() { c.be.ResetStats() }

// Close flushes and closes a file-backed index (no-op for in-memory ones).
func (c core) Close() error {
	if err := c.be.Close(); err != nil {
		return fmt.Errorf("pathcache: %w", err)
	}
	return nil
}

// B reports the page capacity in records for the given page size — the B of
// every bound in the paper.
func B(pageSize int) int {
	return disk.ChainCap(pageSize, record.PointSize)
}

// conversions between public and internal record types.

func toRec(p Point) record.Point { return record.Point(p) }

func toRecPoints(pts []Point) []record.Point {
	out := make([]record.Point, len(pts))
	for i, p := range pts {
		out[i] = record.Point(p)
	}
	return out
}

func fromRecPoints(pts []record.Point) []Point {
	out := make([]Point, len(pts))
	for i, p := range pts {
		out[i] = Point(p)
	}
	return out
}

func toRecIntervals(ivs []Interval) []record.Interval {
	out := make([]record.Interval, len(ivs))
	for i, iv := range ivs {
		out[i] = record.Interval(iv)
	}
	return out
}

func fromRecIntervals(ivs []record.Interval) []Interval {
	out := make([]Interval, len(ivs))
	for i, iv := range ivs {
		out[i] = Interval(iv)
	}
	return out
}
