// Package pathcache is a Go implementation of "Path Caching: A Technique
// for Optimal External Searching" (Ramaswamy & Subramanian, PODS 1994).
//
// Path caching transforms classical main-memory search structures — segment
// trees, interval trees and priority search trees — into I/O-efficient
// external ones: the underfull lists along a search path, each of which
// would cost a wasteful page read, are coalesced into per-path caches so a
// query performs O(log_B n + t/B) page transfers, where B is the page
// capacity in records and t the output size.
//
// The package offers:
//
//   - TwoSidedIndex: static 2-sided range search {x >= a, y >= b} with the
//     paper's full scheme ladder (the IKO baseline, Lemma 3.1, Theorem 3.2,
//     and the recursive Theorems 4.3/4.4).
//   - DynamicIndex: the fully dynamic structure of Theorem 5.1 with
//     amortized O(log_B n) updates.
//   - ThreeSidedIndex: 3-sided search {a1 <= x <= a2, y >= b}
//     (Theorems 3.3/4.5), the primitive behind class-hierarchy indexing.
//   - StabbingIndex / DynamicStabbingIndex: interval management for
//     temporal and constraint databases via the diagonal-corner reduction.
//   - SegmentIndex and IntervalIndex: external segment and interval trees
//     (Theorems 3.4/3.5), each with a naive uncached variant for
//     comparison.
//   - RangeIndex: a B+-tree, the paper's optimal 1-dimensional baseline.
//
// All structures run against a simulated disk with exact I/O accounting, so
// the complexity claims can be observed directly: every index exposes
// Stats (page transfer counters) and Pages (storage footprint).
package pathcache

import (
	"fmt"

	"pathcache/internal/disk"
	"pathcache/internal/record"
)

// Point is a point in the plane with an opaque tuple identifier. For
// interval data under the diagonal-corner reduction, X is the left endpoint
// and Y the right.
type Point struct {
	X, Y int64
	ID   uint64
}

// Interval is a closed interval [Lo, Hi] with an opaque tuple identifier.
type Interval struct {
	Lo, Hi int64
	ID     uint64
}

// Options configures the disk behind an index.
type Options struct {
	// PageSize is the disk page size in bytes (default 4096). The page
	// capacity B follows from it: B = (PageSize - 10) / 24 records for the
	// in-memory simulator. File-backed stores (Path set) reserve the last 4
	// bytes of every page for a checksum trailer, so there
	// B = (PageSize - 4 - 10) / 24, and PageSize must be at least 128.
	PageSize int
	// BufferPoolPages, when positive, interposes an LRU buffer pool of that
	// many frames. Leave zero to measure worst-case (cold) I/O per
	// operation, which is what the paper's bounds describe.
	BufferPoolPages int
	// Path, when set, backs the index with a real file instead of the
	// in-memory simulator. Static indexes built this way persist: reopen
	// them with the matching Open function. Call Close when done.
	Path string

	// testWrapPager, when set, wraps the pager every structure sees —
	// the in-package test hook for fault injection through the public API.
	testWrapPager func(disk.Pager) disk.Pager

	// testFile, when set, backs the index with a FileStore created on this
	// File instead of a real on-disk file — the in-package hook the
	// crash-simulation harness uses to drive builds over an injector while
	// still exercising the whole public build path.
	testFile disk.File
}

// DefaultPageSize is used when Options.PageSize is zero.
const DefaultPageSize = 4096

// Stats is a snapshot of the I/O counters of an index's underlying store.
type Stats struct {
	Reads  int64 // pages read
	Writes int64 // pages written
	Pages  int   // live pages (storage footprint)
}

// IOProfile describes one query's I/O behaviour using the paper's
// accounting (Figure 3): a data-page read is useful when it returns a full
// page of reported records and wasteful otherwise.
type IOProfile struct {
	PathPages   int // index/skeleton pages read to locate the search path
	ListPages   int // data pages read from lists, blocks and caches
	UsefulIOs   int
	WastefulIOs int
	Results     int
}

// metered is the store interface the backend needs: paging plus counters.
type metered interface {
	disk.Pager
	Stats() disk.Stats
	NumPages() int
	ResetStats()
}

// backend bundles the store every index builds on.
type backend struct {
	store metered
	pager disk.Pager
	pool  *disk.BufferPool
	file  *disk.FileStore // non-nil when Options.Path was set
}

func newBackend(opts *Options) (*backend, error) {
	ps := DefaultPageSize
	pool := 0
	path := ""
	if opts != nil {
		if opts.PageSize != 0 {
			ps = opts.PageSize
		}
		pool = opts.BufferPoolPages
		path = opts.Path
	}
	be := &backend{}
	if opts != nil && opts.testFile != nil {
		fs, err := disk.CreateFileStoreOn(opts.testFile, ps)
		if err != nil {
			return nil, fmt.Errorf("pathcache: %w", err)
		}
		be.store, be.file = fs, fs
	} else if path != "" {
		fs, err := disk.CreateFileStore(path, ps)
		if err != nil {
			return nil, fmt.Errorf("pathcache: %w", err)
		}
		be.store, be.file = fs, fs
	} else {
		store, err := disk.NewStore(ps)
		if err != nil {
			return nil, fmt.Errorf("pathcache: %w", err)
		}
		be.store = store
	}
	be.pager = be.store
	if pool > 0 {
		bp, err := disk.NewBufferPool(be.store, pool)
		if err != nil {
			return nil, fmt.Errorf("pathcache: %w", err)
		}
		be.pager = bp
		be.pool = bp
	}
	if opts != nil && opts.testWrapPager != nil {
		be.pager = opts.testWrapPager(be.pager)
	}
	return be, nil
}

func (be *backend) stats() Stats {
	s := be.store.Stats()
	return Stats{Reads: s.Reads, Writes: s.Writes, Pages: be.store.NumPages()}
}

func (be *backend) resetStats() {
	be.store.ResetStats()
	if be.pool != nil {
		be.pool.ResetStats()
	}
}

// close flushes and closes a file-backed backend (no-op for in-memory).
func (be *backend) close() error {
	if be.pool != nil {
		if err := be.pool.Flush(); err != nil {
			return fmt.Errorf("pathcache: %w", err)
		}
	}
	if be.file != nil {
		if err := be.file.Close(); err != nil {
			return fmt.Errorf("pathcache: %w", err)
		}
	}
	return nil
}

// B reports the page capacity in records for the given page size — the B of
// every bound in the paper.
func B(pageSize int) int {
	return disk.ChainCap(pageSize, record.PointSize)
}

// conversions between public and internal record types.

func toRec(p Point) record.Point { return record.Point(p) }

func toRecPoints(pts []Point) []record.Point {
	out := make([]record.Point, len(pts))
	for i, p := range pts {
		out[i] = record.Point(p)
	}
	return out
}

func fromRecPoints(pts []record.Point) []Point {
	out := make([]Point, len(pts))
	for i, p := range pts {
		out[i] = Point(p)
	}
	return out
}

func toRecIntervals(ivs []Interval) []record.Interval {
	out := make([]record.Interval, len(ivs))
	for i, iv := range ivs {
		out[i] = record.Interval(iv)
	}
	return out
}

func fromRecIntervals(ivs []record.Interval) []Interval {
	out := make([]Interval, len(ivs))
	for i, iv := range ivs {
		out[i] = Interval(iv)
	}
	return out
}
