package pathcache

import (
	"fmt"

	"pathcache/internal/engine"
)

// Index is the interface every persistable index type satisfies — the
// static view of an index file regardless of its kind. Open returns it;
// type-switch on the concrete type (*TwoSidedIndex, *ThreeSidedIndex,
// *SegmentIndex, *IntervalIndex, *StabbingIndex, *WindowIndex) to reach the
// kind-specific query methods.
type Index interface {
	// Kind reports the index's registry name, e.g. "twosided" or "segment".
	Kind() string
	// Len reports the number of indexed records.
	Len() int
	// Pages reports the storage footprint in pages.
	Pages() int
	// Stats reports the cumulative I/O counters of the underlying store.
	Stats() Stats
	// Metrics snapshots the per-operation metric series recorded against
	// the index's store: read/write/cache-hit histograms and theorem-bound
	// ratios per (operation, worker).
	Metrics() Metrics
	// ResetStats zeroes the I/O counters.
	ResetStats()
	// Close flushes and closes the index.
	Close() error
}

// Open reopens any file-backed index, dispatching on the kind byte the
// file's metadata page records: the result is the same concrete type the
// matching OpenXxxIndex function returns. Files whose build never
// committed yield an error wrapping ErrNoIndex.
func Open(path string) (Index, error) {
	be, err := engine.Open(path)
	if err != nil {
		return nil, fmt.Errorf("pathcache: %w", err)
	}
	kind, blob, err := be.ReadKind()
	if err != nil {
		be.Close()
		return nil, err
	}
	d, ok := engine.Lookup(kind)
	if !ok {
		be.Close()
		return nil, fmt.Errorf("pathcache: file holds unknown index kind %d", kind)
	}
	ix, err := d.Open(be, blob)
	if err != nil {
		be.Close()
		return nil, err
	}
	return ix.(Index), nil
}

// compile-time checks that every persistable index satisfies Index.
var (
	_ Index = (*TwoSidedIndex)(nil)
	_ Index = (*ThreeSidedIndex)(nil)
	_ Index = (*SegmentIndex)(nil)
	_ Index = (*IntervalIndex)(nil)
	_ Index = (*StabbingIndex)(nil)
	_ Index = (*WindowIndex)(nil)
	_ Index = (*LSMIndex)(nil)
)
