package pathcache

import (
	"fmt"
	"os"

	"pathcache/internal/engine"
)

// Index is the interface every persistable index type satisfies — the
// static view of an index file regardless of its kind. Open returns it;
// type-switch on the concrete type (*TwoSidedIndex, *ThreeSidedIndex,
// *SegmentIndex, *IntervalIndex, *StabbingIndex, *WindowIndex) to reach the
// kind-specific query methods.
type Index interface {
	// Kind reports the index's registry name, e.g. "twosided" or "segment".
	Kind() string
	// Len reports the number of indexed records.
	Len() int
	// Pages reports the storage footprint in pages.
	Pages() int
	// Stats reports the cumulative I/O counters of the underlying store.
	Stats() Stats
	// Metrics snapshots the per-operation metric series recorded against
	// the index's store: read/write/cache-hit histograms and theorem-bound
	// ratios per (operation, worker).
	Metrics() Metrics
	// ResetStats zeroes the I/O counters.
	ResetStats()
	// Close flushes and closes the index.
	Close() error
}

// Open reopens any file-backed index, dispatching on the kind byte the
// file's metadata page records: the result is the same concrete type the
// matching OpenXxxIndex function returns. A directory dispatches to
// OpenSharded. Files whose build never committed yield an error wrapping
// ErrNoIndex.
func Open(path string) (Index, error) {
	if fi, err := os.Stat(path); err == nil && fi.IsDir() {
		s, err := OpenSharded(path, nil)
		if err != nil {
			return nil, err
		}
		return s, nil
	}
	return openIndexWith(path, nil)
}

// openIndexWith is Open with per-open runtime options (buffer pool, pager
// wrapper, tracer, bound sentinels) — the seam the sharded router opens
// every shard through, so each shard gets its own pool and its own metric
// registry.
func openIndexWith(path string, opts *Options) (Index, error) {
	var cfg engine.Config
	if opts != nil {
		cfg = engine.Config{
			BufferPoolPages: opts.BufferPoolPages,
			WrapPager:       opts.WrapPager,
			StrictBounds:    opts.StrictBounds,
			BoundMaxRatio:   opts.BoundMaxRatio,
			BoundSlack:      opts.BoundSlack,
		}
		if opts.Tracer != nil {
			cfg.Tracer = tracerAdapter{t: opts.Tracer}
		}
	}
	be, err := engine.OpenWith(path, cfg)
	if err != nil {
		return nil, fmt.Errorf("pathcache: %w", err)
	}
	kind, blob, err := be.ReadKind()
	if err != nil {
		be.Close()
		return nil, err
	}
	d, ok := engine.Lookup(kind)
	if !ok {
		be.Close()
		return nil, fmt.Errorf("pathcache: file holds unknown index kind %d", kind)
	}
	ix, err := d.Open(be, blob)
	if err != nil {
		be.Close()
		return nil, err
	}
	return ix.(Index), nil
}

// compile-time checks that every persistable index satisfies Index.
var (
	_ Index = (*TwoSidedIndex)(nil)
	_ Index = (*ThreeSidedIndex)(nil)
	_ Index = (*SegmentIndex)(nil)
	_ Index = (*IntervalIndex)(nil)
	_ Index = (*StabbingIndex)(nil)
	_ Index = (*WindowIndex)(nil)
	_ Index = (*LSMIndex)(nil)
	_ Index = (*Sharded)(nil)
)
