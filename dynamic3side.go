package pathcache

import (
	"fmt"

	"pathcache/internal/dyn3side"
)

// DynamicThreeSidedIndex is the dynamic 3-sided functionality of
// Theorem 5.2: optimal O(log_B n + t/B) queries with amortized updates
// inside the theorem's O(log_B n·log² B) budget (see DESIGN.md §4 for the
// buffered-rebuild rendition this uses).
type DynamicThreeSidedIndex struct {
	core
	idx *dyn3side.Tree
}

// NewDynamicThreeSidedIndex creates an empty dynamic 3-sided index.
func NewDynamicThreeSidedIndex(opts *Options) (*DynamicThreeSidedIndex, error) {
	c, err := newCore(opts)
	if err != nil {
		return nil, err
	}
	idx, err := dyn3side.New(c.be.Pager())
	if err != nil {
		return nil, fmt.Errorf("pathcache: %w", err)
	}
	return &DynamicThreeSidedIndex{core: c, idx: idx}, nil
}

// BulkLoad replaces the index's entire contents with pts — one build
// instead of n buffered updates.
func (ix *DynamicThreeSidedIndex) BulkLoad(pts []Point) error {
	if err := ix.idx.BulkLoad(toRecPoints(pts)); err != nil {
		return fmt.Errorf("pathcache: %w", err)
	}
	return nil
}

// Insert adds a point (identified by its full X, Y, ID triple).
func (ix *DynamicThreeSidedIndex) Insert(p Point) error {
	if err := ix.idx.Insert(toRec(p)); err != nil {
		return fmt.Errorf("pathcache: %w", err)
	}
	return nil
}

// Delete removes a point previously inserted with the same (X, Y, ID).
func (ix *DynamicThreeSidedIndex) Delete(p Point) error {
	if err := ix.idx.Delete(toRec(p)); err != nil {
		return fmt.Errorf("pathcache: %w", err)
	}
	return nil
}

// Query reports every live point with a1 <= X <= a2 and Y >= b.
func (ix *DynamicThreeSidedIndex) Query(a1, a2, b int64) ([]Point, error) {
	pts, _, err := ix.idx.Query(a1, a2, b)
	if err != nil {
		return nil, fmt.Errorf("pathcache: %w", err)
	}
	return fromRecPoints(pts), nil
}

// Len reports the number of live points.
func (ix *DynamicThreeSidedIndex) Len() int { return ix.idx.Len() }

// Pages reports the storage footprint in pages.
func (ix *DynamicThreeSidedIndex) Pages() int { return ix.be.NumPages() }
