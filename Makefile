# Mirrors .github/workflows/ci.yml: `make lint test fuzz-smoke crash
# serve-smoke` locally is what CI runs remotely, so a green local run
# means a green pipeline.

GO ?= go
BIN := bin

.PHONY: all build test lint pcvet allowlist fuzz-smoke crash golden bench-json serve-smoke bench-layout clean

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# pcvet is the repository's custom multichecker (cmd/pcvet): pager
# discipline, lock-vs-I/O ordering, fixed-width encodings, %w error
# wrapping, and the crash-durability analyzers (durabilityorder,
# commitprotocol, snapshotimmutable) over their CFG/dataflow core.
pcvet:
	@mkdir -p $(BIN)
	$(GO) build -o $(BIN)/pcvet ./cmd/pcvet

# The suppression report: every //pcvet:allow with its justification.
# Fails if any directive lacks one; CI uploads the output as an artifact.
allowlist: pcvet
	$(BIN)/pcvet allowlist ./...

# staticcheck and govulncheck run only when installed so offline checkouts
# still get the gofmt, go vet and pcvet passes; CI always runs them.
lint: pcvet
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...
	$(GO) vet -vettool=$(CURDIR)/$(BIN)/pcvet ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "staticcheck not installed; skipping (CI runs it)"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; \
	else echo "govulncheck not installed; skipping (CI runs it)"; fi

# Short randomized runs of every fuzz target on top of its seed corpus.
fuzz-smoke:
	$(GO) test ./internal/record -run='^$$' -fuzz=FuzzRecordRoundTrip -fuzztime=10s
	$(GO) test ./internal/record -run='^$$' -fuzz=FuzzEncodePointsFlatten -fuzztime=10s
	$(GO) test ./internal/disk -run='^$$' -fuzz=FuzzChainReadWrite -fuzztime=10s
	$(GO) test ./internal/disk -run='^$$' -fuzz=FuzzChainThroughPool -fuzztime=10s
	$(GO) test ./internal/disk -run='^$$' -fuzz=FuzzFileStoreOpen -fuzztime=10s
	$(GO) test ./internal/server -run='^$$' -fuzz=FuzzServerRequestDecode -fuzztime=10s
	$(GO) test ./internal/btree -run='^$$' -fuzz=FuzzLayoutPageDecode -fuzztime=10s
	$(GO) test ./internal/skeletal -run='^$$' -fuzz=FuzzLayoutPageDecode -fuzztime=10s
	$(GO) test ./internal/skeletal -run='^$$' -fuzz=FuzzMetaReopen -fuzztime=10s

# The crash-consistency matrix: the every-write-point kill sweeps at the
# store level and through every persisted index kind's public build path.
crash:
	$(GO) test ./internal/disk -run='TestCrashSweepStoreLevel|TestCrashFile|TestFileStore' -v
	$(GO) test . -run='TestCrashSweepIndexes' -v
	$(GO) test . -run='TestCrashSweepLSM' -v
	$(GO) test . -run='TestCrashSweepShardMap|TestCrashSweepShardStore' -v

# Regenerate cmd/pcindex's golden CLI transcript after an intentional
# output change; review the diff before committing.
golden:
	$(GO) test ./cmd/pcindex -run TestGoldenOutput -update

# The compact machine-readable measurement suite: one BENCH_<family>.json
# per structure family under bench/, with family names validated against
# the engine's kind registry. -small keeps it a smoke run.
bench-json:
	$(GO) run ./cmd/pcbench -json bench -small

# The serving-layer proof battery over a real listener: boots pcserve's
# smoke test (run() + SIGHUP reload + SIGTERM drain), then drives the
# closed-loop load test (uniform and Zipf mixes from internal/workload)
# and writes BENCH_serve.json — p50/p99 latency plus EXACT per-op I/O
# summed from each response's op-scoped counters. Mirrors the CI
# serve-smoke job, which uploads BENCH_serve.json as an artifact.
serve-smoke:
	$(GO) test ./cmd/pcserve -run TestServeSmokeAndSignals -v
	PCSERVE_BENCH_OUT=$(CURDIR)/BENCH_serve.json \
		$(GO) test ./internal/server -run TestServeLoadBench -v

# The page-layout wall-clock battery: btree point queries under both
# layouts, cold and through a pre-warmed pool, plus the public two-sided
# index with the async prefetch pipeline off and on. Writes
# BENCH_layout.json (committed at the repo root) — the ns/op evidence that
# the Eytzinger layout's branchless zero-copy read path beats the sorted
# layout's decoded reader at identical page I/O. Mirrors the CI
# layout-battery job, which uploads the JSON as an artifact.
bench-layout:
	PCBENCH_LAYOUT_OUT=$(CURDIR)/BENCH_layout.json \
		$(GO) test ./internal/bench -run TestLayoutBench -v -count=1

clean:
	rm -rf $(BIN)
