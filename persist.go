package pathcache

import (
	"encoding/binary"
	"errors"
	"fmt"

	"pathcache/internal/disk"
	"pathcache/internal/ext3side"
	"pathcache/internal/extint"
	"pathcache/internal/extpst"
	"pathcache/internal/extseg"
)

// ErrNoIndex reports a store file whose metadata head is unset: the file is
// structurally intact but no index build completed against it. A crash
// before the final metadata commit rolls the file back to this state.
var ErrNoIndex = errors.New("pathcache: file holds no index")

// Index kinds recorded in the metadata page of a file-backed index.
const (
	kindTwoSided  = 1
	kindThreeSide = 2
	kindSegment   = 3
	kindInterval  = 4
	kindStabbing  = 5
	kindWindow    = 6
)

// writeIndexMeta stores the index header in a fresh page recorded in the
// superblock, then syncs.
func writeIndexMeta(fs *disk.FileStore, kind byte, blob []byte) error {
	page := make([]byte, fs.PageSize())
	if 5+len(blob) > len(page) {
		return fmt.Errorf("pathcache: index metadata (%d bytes) exceeds one page", len(blob))
	}
	page[0] = kind
	binary.LittleEndian.PutUint32(page[1:5], uint32(len(blob)))
	copy(page[5:], blob)
	id, err := fs.Alloc()
	if err != nil {
		return err
	}
	if err := fs.Write(id, page); err != nil {
		return err
	}
	if err := fs.SetAppHead(id); err != nil {
		return err
	}
	return fs.Sync()
}

// readIndexMeta loads and validates the index header.
func readIndexMeta(fs *disk.FileStore, wantKind byte) ([]byte, error) {
	head := fs.AppHead()
	if head == disk.InvalidPage {
		return nil, fmt.Errorf("%w: metadata head unset", ErrNoIndex)
	}
	page := make([]byte, fs.PageSize())
	if err := fs.Read(head, page); err != nil {
		return nil, err
	}
	if page[0] != wantKind {
		return nil, fmt.Errorf("pathcache: file holds index kind %d, not %d", page[0], wantKind)
	}
	n := int(binary.LittleEndian.Uint32(page[1:5]))
	if 5+n > len(page) {
		return nil, fmt.Errorf("pathcache: corrupt index metadata (blob length %d exceeds page): %w", n, disk.ErrCorrupt)
	}
	return page[5 : 5+n], nil
}

// saveMeta persists an index header when the backend is file-backed.
func (be *backend) saveMeta(kind byte, blob []byte) error {
	if be.file == nil {
		return nil // in-memory index: nothing to persist
	}
	return writeIndexMeta(be.file, kind, blob)
}

// openBackend attaches to an existing index file.
func openBackend(path string) (*backend, error) {
	fs, err := disk.OpenFileStore(path)
	if err != nil {
		return nil, fmt.Errorf("pathcache: %w", err)
	}
	return &backend{store: fs, pager: fs, file: fs}, nil
}

// Close flushes and closes a file-backed index (no-op for in-memory ones).
func (ix *TwoSidedIndex) Close() error { return ix.be.close() }

// Close flushes and closes a file-backed index (no-op for in-memory ones).
func (ix *ThreeSidedIndex) Close() error { return ix.be.close() }

// Close flushes and closes a file-backed index (no-op for in-memory ones).
func (ix *SegmentIndex) Close() error { return ix.be.close() }

// Close flushes and closes a file-backed index (no-op for in-memory ones).
func (ix *IntervalIndex) Close() error { return ix.be.close() }

// Close flushes and closes a file-backed index (no-op for in-memory ones).
func (si *StabbingIndex) Close() error { return si.ix.Close() }

// Close flushes and closes a file-backed index (no-op for in-memory ones).
func (ix *DynamicIndex) Close() error { return ix.be.close() }

// Close flushes and closes a file-backed index (no-op for in-memory ones).
func (si *DynamicStabbingIndex) Close() error { return si.ix.Close() }

// Close flushes and closes a file-backed index (no-op for in-memory ones).
func (ix *RangeIndex) Close() error { return ix.be.close() }

// OpenTwoSidedIndex reopens a file-backed 2-sided index built with
// Options.Path and one of the flat schemes (IKO, Basic, Segmented).
func OpenTwoSidedIndex(path string) (*TwoSidedIndex, error) {
	be, err := openBackend(path)
	if err != nil {
		return nil, err
	}
	blob, err := readIndexMeta(be.file, kindTwoSided)
	if err != nil {
		be.close()
		return nil, err
	}
	return reopenTwoSided(be, blob)
}

func reopenTwoSided(be *backend, blob []byte) (*TwoSidedIndex, error) {
	m, err := extpst.DecodeMeta(blob)
	if err != nil {
		be.close()
		return nil, fmt.Errorf("pathcache: %w", err)
	}
	tr, err := extpst.Reopen(be.pager, m)
	if err != nil {
		be.close()
		return nil, fmt.Errorf("pathcache: %w", err)
	}
	var scheme Scheme
	switch m.Scheme {
	case extpst.IKO:
		scheme = SchemeIKO
	case extpst.Basic:
		scheme = SchemeBasic
	default:
		scheme = SchemeSegmented
	}
	return &TwoSidedIndex{be: be, idx: tr, scheme: scheme}, nil
}

// OpenThreeSidedIndex reopens a file-backed 3-sided index.
func OpenThreeSidedIndex(path string) (*ThreeSidedIndex, error) {
	be, err := openBackend(path)
	if err != nil {
		return nil, err
	}
	blob, err := readIndexMeta(be.file, kindThreeSide)
	if err != nil {
		be.close()
		return nil, err
	}
	m, err := ext3side.DecodeMeta(blob)
	if err != nil {
		be.close()
		return nil, fmt.Errorf("pathcache: %w", err)
	}
	tr, err := ext3side.Reopen(be.pager, m)
	if err != nil {
		be.close()
		return nil, fmt.Errorf("pathcache: %w", err)
	}
	return &ThreeSidedIndex{be: be, idx: tr}, nil
}

// OpenSegmentIndex reopens a file-backed segment-tree index.
func OpenSegmentIndex(path string) (*SegmentIndex, error) {
	be, err := openBackend(path)
	if err != nil {
		return nil, err
	}
	blob, err := readIndexMeta(be.file, kindSegment)
	if err != nil {
		be.close()
		return nil, err
	}
	m, err := extseg.DecodeMeta(blob)
	if err != nil {
		be.close()
		return nil, fmt.Errorf("pathcache: %w", err)
	}
	tr, err := extseg.Reopen(be.pager, m)
	if err != nil {
		be.close()
		return nil, fmt.Errorf("pathcache: %w", err)
	}
	return &SegmentIndex{be: be, idx: tr}, nil
}

// OpenIntervalIndex reopens a file-backed interval-tree index.
func OpenIntervalIndex(path string) (*IntervalIndex, error) {
	be, err := openBackend(path)
	if err != nil {
		return nil, err
	}
	blob, err := readIndexMeta(be.file, kindInterval)
	if err != nil {
		be.close()
		return nil, err
	}
	m, err := extint.DecodeMeta(blob)
	if err != nil {
		be.close()
		return nil, fmt.Errorf("pathcache: %w", err)
	}
	tr, err := extint.Reopen(be.pager, m)
	if err != nil {
		be.close()
		return nil, fmt.Errorf("pathcache: %w", err)
	}
	return &IntervalIndex{be: be, idx: tr}, nil
}

// OpenStabbingIndex reopens a file-backed static stabbing index.
func OpenStabbingIndex(path string) (*StabbingIndex, error) {
	be, err := openBackend(path)
	if err != nil {
		return nil, err
	}
	blob, err := readIndexMeta(be.file, kindStabbing)
	if err != nil {
		be.close()
		return nil, err
	}
	ix, err := reopenTwoSided(be, blob)
	if err != nil {
		return nil, err
	}
	return &StabbingIndex{ix: ix}, nil
}
