package pathcache

import (
	"fmt"

	"pathcache/internal/engine"
	"pathcache/internal/ext3side"
	"pathcache/internal/extint"
	"pathcache/internal/extpst"
	"pathcache/internal/extseg"
	"pathcache/internal/extwindow"
	"pathcache/internal/obs"
)

// ErrNoIndex reports a store file whose metadata head is unset: the file is
// structurally intact but no index build completed against it. A crash
// before the final metadata commit rolls the file back to this state.
var ErrNoIndex = engine.ErrNoIndex

// ErrKindMismatch reports a file that holds a committed index of a
// different kind than the typed opener asked for — for example
// OpenTwoSidedIndex on a segment-tree file. The error text names both
// kinds; Open dispatches on the stored kind instead.
var ErrKindMismatch = engine.ErrKindMismatch

// Index kinds recorded in the metadata page of a file-backed index.
const (
	kindTwoSided  = 1
	kindThreeSide = 2
	kindSegment   = 3
	kindInterval  = 4
	kindStabbing  = 5
	kindWindow    = 6
)

// The registry maps every persisted kind byte to its name, opener and
// theorem I/O bound; Open and the typed OpenXxxIndex functions dispatch
// through it, verify reports use its names, and the observability layer's
// bound sentinels evaluate its bound functions per operation.
//
// The bounds are the paper's query theorems: the five path-cached
// structures answer in O(log_B n + t/B) page reads (2-sided Theorem 3.2,
// 3-sided Theorem 3.3, segment tree Theorem 3.4, interval tree Theorem
// 3.5, stabbing via the diagonal-corner reduction onto 2-sided), and the
// window extension's range tree answers in O(log₂(n/B) + t/B). See
// DESIGN.md §10 for the sentinel constants that turn these asymptotic
// statements into runtime checks.
func init() {
	engine.Register(engine.Descriptor{Kind: kindTwoSided, Name: "twosided", Open: openTwoSided, Bound: obs.LogBBound})
	engine.Register(engine.Descriptor{Kind: kindThreeSide, Name: "threeside", Open: openThreeSided, Bound: obs.LogBBound})
	engine.Register(engine.Descriptor{Kind: kindSegment, Name: "segment", Open: openSegment, Bound: obs.LogBBound})
	engine.Register(engine.Descriptor{Kind: kindInterval, Name: "interval", Open: openInterval, Bound: obs.LogBBound})
	engine.Register(engine.Descriptor{Kind: kindStabbing, Name: "stabbing", Open: openStabbing, Bound: obs.LogBBound})
	engine.Register(engine.Descriptor{Kind: kindWindow, Name: "window", Open: openWindow, Bound: obs.RangeTreeBound})
}

func openTwoSided(be *engine.Backend, blob []byte) (any, error) {
	m, err := extpst.DecodeMeta(blob)
	if err != nil {
		return nil, fmt.Errorf("pathcache: %w", err)
	}
	tr, err := extpst.Reopen(be.Pager(), m)
	if err != nil {
		return nil, fmt.Errorf("pathcache: %w", err)
	}
	var scheme Scheme
	switch m.Scheme {
	case extpst.IKO:
		scheme = SchemeIKO
	case extpst.Basic:
		scheme = SchemeBasic
	default:
		scheme = SchemeSegmented
	}
	return &TwoSidedIndex{core: core{be: be}, idx: tr, scheme: scheme, kind: kindTwoSided}, nil
}

func openThreeSided(be *engine.Backend, blob []byte) (any, error) {
	m, err := ext3side.DecodeMeta(blob)
	if err != nil {
		return nil, fmt.Errorf("pathcache: %w", err)
	}
	tr, err := ext3side.Reopen(be.Pager(), m)
	if err != nil {
		return nil, fmt.Errorf("pathcache: %w", err)
	}
	return &ThreeSidedIndex{core: core{be: be}, idx: tr}, nil
}

func openSegment(be *engine.Backend, blob []byte) (any, error) {
	m, err := extseg.DecodeMeta(blob)
	if err != nil {
		return nil, fmt.Errorf("pathcache: %w", err)
	}
	tr, err := extseg.Reopen(be.Pager(), m)
	if err != nil {
		return nil, fmt.Errorf("pathcache: %w", err)
	}
	return &SegmentIndex{core: core{be: be}, idx: tr}, nil
}

func openInterval(be *engine.Backend, blob []byte) (any, error) {
	m, err := extint.DecodeMeta(blob)
	if err != nil {
		return nil, fmt.Errorf("pathcache: %w", err)
	}
	tr, err := extint.Reopen(be.Pager(), m)
	if err != nil {
		return nil, fmt.Errorf("pathcache: %w", err)
	}
	return &IntervalIndex{core: core{be: be}, idx: tr}, nil
}

func openStabbing(be *engine.Backend, blob []byte) (any, error) {
	ix, err := openTwoSided(be, blob)
	if err != nil {
		return nil, err
	}
	two := ix.(*TwoSidedIndex)
	// The reopened 2-sided engine records its ops under the stabbing kind,
	// matching how NewStabbingIndex builds it.
	two.kind = kindStabbing
	return &StabbingIndex{core: two.core, ix: two}, nil
}

func openWindow(be *engine.Backend, blob []byte) (any, error) {
	m, err := extwindow.DecodeMeta(blob)
	if err != nil {
		return nil, fmt.Errorf("pathcache: %w", err)
	}
	tr, err := extwindow.Reopen(be.Pager(), m)
	if err != nil {
		return nil, fmt.Errorf("pathcache: %w", err)
	}
	return &WindowIndex{core: core{be: be}, idx: tr}, nil
}

// openKind reopens the file at path expecting one specific kind and builds
// the index through its registered descriptor. It owns the backend: on any
// failure the backend is closed before the error returns.
func openKind(path string, want byte) (any, error) {
	be, err := engine.Open(path)
	if err != nil {
		return nil, fmt.Errorf("pathcache: %w", err)
	}
	blob, err := be.ReadMeta(want)
	if err != nil {
		be.Close()
		return nil, err
	}
	d, ok := engine.Lookup(want)
	if !ok {
		be.Close()
		return nil, fmt.Errorf("pathcache: no opener registered for index kind %d", want)
	}
	ix, err := d.Open(be, blob)
	if err != nil {
		be.Close()
		return nil, err
	}
	return ix, nil
}

// openTyped is openKind plus the type assertion every typed opener needs.
func openTyped[T any](path string, want byte) (T, error) {
	ix, err := openKind(path, want)
	if err != nil {
		var zero T
		return zero, err
	}
	return ix.(T), nil
}

// OpenTwoSidedIndex reopens a file-backed 2-sided index built with
// Options.Path and one of the flat schemes (IKO, Basic, Segmented).
func OpenTwoSidedIndex(path string) (*TwoSidedIndex, error) {
	return openTyped[*TwoSidedIndex](path, kindTwoSided)
}

// OpenThreeSidedIndex reopens a file-backed 3-sided index.
func OpenThreeSidedIndex(path string) (*ThreeSidedIndex, error) {
	return openTyped[*ThreeSidedIndex](path, kindThreeSide)
}

// OpenSegmentIndex reopens a file-backed segment-tree index.
func OpenSegmentIndex(path string) (*SegmentIndex, error) {
	return openTyped[*SegmentIndex](path, kindSegment)
}

// OpenIntervalIndex reopens a file-backed interval-tree index.
func OpenIntervalIndex(path string) (*IntervalIndex, error) {
	return openTyped[*IntervalIndex](path, kindInterval)
}

// OpenStabbingIndex reopens a file-backed static stabbing index.
func OpenStabbingIndex(path string) (*StabbingIndex, error) {
	return openTyped[*StabbingIndex](path, kindStabbing)
}

// OpenWindowIndex reopens a file-backed window index.
func OpenWindowIndex(path string) (*WindowIndex, error) {
	return openTyped[*WindowIndex](path, kindWindow)
}
