package pathcache

import (
	"path/filepath"
	"testing"

	"pathcache/internal/workload"
)

func TestFileBackedTwoSidedRoundTrip(t *testing.T) {
	for _, sc := range []Scheme{SchemeIKO, SchemeBasic, SchemeSegmented} {
		path := filepath.Join(t.TempDir(), "two.pc")
		pts := uniformPoints(4000, 100_000, 701)
		ix, err := NewTwoSidedIndex(pts, sc, &Options{PageSize: 512, Path: path})
		if err != nil {
			t.Fatal(err)
		}
		queries := workload.TwoSidedQueries(10, 100_000, 0.02, 703)
		want := make([][]Point, len(queries))
		for i, q := range queries {
			want[i], err = ix.Query(q.A, q.B)
			if err != nil {
				t.Fatal(err)
			}
		}
		wantPages := ix.Pages()
		if err := ix.Close(); err != nil {
			t.Fatal(err)
		}

		re, err := OpenTwoSidedIndex(path)
		if err != nil {
			t.Fatalf("%v: open: %v", sc, err)
		}
		if re.Len() != len(pts) || re.Scheme() != sc {
			t.Fatalf("%v: reopened Len=%d scheme=%v", sc, re.Len(), re.Scheme())
		}
		if re.Pages() != wantPages {
			t.Fatalf("%v: reopened pages %d, want %d", sc, re.Pages(), wantPages)
		}
		for i, q := range queries {
			got, err := re.Query(q.A, q.B)
			if err != nil {
				t.Fatal(err)
			}
			if !samePointSets(got, want[i]) {
				t.Fatalf("%v: reopened query %d differs: %d vs %d", sc, i, len(got), len(want[i]))
			}
		}
		if err := re.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFileBackedThreeSidedRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "three.pc")
	pts := uniformPoints(4000, 100_000, 705)
	ix, err := NewThreeSidedIndex(pts, &Options{PageSize: 512, Path: path})
	if err != nil {
		t.Fatal(err)
	}
	q := workload.ThreeSidedQueries(1, 100_000, 0.2, 0.05, 707)[0]
	want, err := ix.Query(q.A1, q.A2, q.B)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenThreeSidedIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got, err := re.Query(q.A1, q.A2, q.B)
	if err != nil {
		t.Fatal(err)
	}
	if !samePointSets(got, want) {
		t.Fatalf("reopened query differs: %d vs %d", len(got), len(want))
	}
}

func TestFileBackedIntervalIndexesRoundTrip(t *testing.T) {
	ivs := uniformIntervals(3000, 100_000, 10_000, 709)
	qs := workload.StabQueries(10, 110_000, 711)

	segPath := filepath.Join(t.TempDir(), "seg.pc")
	seg, err := NewSegmentIndex(ivs, true, &Options{PageSize: 512, Path: segPath})
	if err != nil {
		t.Fatal(err)
	}
	wantSeg := make([][]Interval, len(qs))
	for i, q := range qs {
		if wantSeg[i], err = seg.Stab(q); err != nil {
			t.Fatal(err)
		}
	}
	if err := seg.Close(); err != nil {
		t.Fatal(err)
	}
	reSeg, err := OpenSegmentIndex(segPath)
	if err != nil {
		t.Fatal(err)
	}
	defer reSeg.Close()
	for i, q := range qs {
		got, err := reSeg.Stab(q)
		if err != nil {
			t.Fatal(err)
		}
		if !sameIntervalSets(got, wantSeg[i]) {
			t.Fatalf("segment reopened stab %d differs", q)
		}
	}

	itvPath := filepath.Join(t.TempDir(), "itv.pc")
	itv, err := NewIntervalIndex(ivs, true, &Options{PageSize: 512, Path: itvPath})
	if err != nil {
		t.Fatal(err)
	}
	if err := itv.Close(); err != nil {
		t.Fatal(err)
	}
	reItv, err := OpenIntervalIndex(itvPath)
	if err != nil {
		t.Fatal(err)
	}
	defer reItv.Close()
	for i, q := range qs {
		got, err := reItv.Stab(q)
		if err != nil {
			t.Fatal(err)
		}
		if !sameIntervalSets(got, wantSeg[i]) {
			t.Fatalf("interval reopened stab %d differs", q)
		}
	}
}

func TestFileBackedStabbingRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stab.pc")
	ivs := uniformIntervals(3000, 100_000, 10_000, 713)
	ix, err := NewStabbingIndex(ivs, SchemeSegmented, &Options{PageSize: 512, Path: path})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ix.Stab(50_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenStabbingIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got, err := re.Stab(50_000)
	if err != nil {
		t.Fatal(err)
	}
	if !sameIntervalSets(got, want) {
		t.Fatalf("reopened stab differs: %d vs %d", len(got), len(want))
	}
}

func TestOpenWrongKind(t *testing.T) {
	path := filepath.Join(t.TempDir(), "two.pc")
	pts := uniformPoints(500, 1000, 715)
	ix, err := NewTwoSidedIndex(pts, SchemeSegmented, &Options{PageSize: 512, Path: path})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSegmentIndex(path); err == nil {
		t.Fatal("opened a 2-sided file as a segment index")
	}
	if _, err := OpenThreeSidedIndex(path); err == nil {
		t.Fatal("opened a 2-sided file as a 3-sided index")
	}
}

func TestOpenMissingAndForeign(t *testing.T) {
	if _, err := OpenTwoSidedIndex(filepath.Join(t.TempDir(), "missing.pc")); err == nil {
		t.Fatal("opened missing file")
	}
}

// A recursive-scheme index built on a file works within the session but
// carries no reopen metadata.
func TestFileBackedRecursiveSchemeNoReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "two.pc")
	pts := uniformPoints(2000, 100_000, 717)
	ix, err := NewTwoSidedIndex(pts, SchemeTwoLevel, &Options{PageSize: 512, Path: path})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ix.Query(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pts) {
		t.Fatalf("file-backed two-level query found %d of %d", len(got), len(pts))
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenTwoSidedIndex(path); err == nil {
		t.Fatal("reopened a two-level index that has no metadata")
	}
}

func TestFileBackedWindowRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "win.pc")
	pts := uniformPoints(4000, 100_000, 721)
	ix, err := NewWindowIndex(pts, &Options{PageSize: 512, Path: path})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ix.Query(20_000, 70_000, 30_000, 90_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenWindowIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got, err := re.Query(20_000, 70_000, 30_000, 90_000)
	if err != nil {
		t.Fatal(err)
	}
	if !samePointSets(got, want) {
		t.Fatalf("reopened window query differs: %d vs %d", len(got), len(want))
	}
	if re.Len() != len(pts) {
		t.Fatalf("reopened Len = %d", re.Len())
	}
}
