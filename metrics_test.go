package pathcache

import (
	"errors"
	"strings"
	"sync"
	"testing"
)

// These tests pin the public observability surface: Metrics() snapshots,
// the WithTracer hook, and the strict bound sentinels — including the
// deliberately-broken fixture (sentinels tightened far below any real
// query's I/O) that proves a breach surfaces as ErrBoundExceeded carrying
// the op's full trace.

// brokenBoundOpts arms the sentinels with limits no real query can meet:
// any operation that reads at least one page breaches.
func brokenBoundOpts() *Options {
	return &Options{
		PageSize:      512,
		StrictBounds:  true,
		BoundMaxRatio: 0.001,
		BoundSlack:    0.001,
	}
}

func TestStrictBreachCarriesTrace(t *testing.T) {
	pts := uniformPoints(3_000, 100_000, 1201)
	// The build itself must succeed: builds declare no bound, so even
	// absurd sentinel limits cannot fail construction.
	ix, err := NewTwoSidedIndex(pts, SchemeSegmented, brokenBoundOpts())
	if err != nil {
		t.Fatalf("strict build failed: %v", err)
	}
	defer ix.Close()

	res, prof, err := ix.QueryProfile(50_000, 50_000)
	if !errors.Is(err, ErrBoundExceeded) {
		t.Fatalf("query error = %v, want ErrBoundExceeded", err)
	}
	if res != nil {
		t.Fatal("breached query still returned results")
	}
	var be *BoundError
	if !errors.As(err, &be) {
		t.Fatalf("error %T does not unpack to *BoundError", err)
	}
	ev := be.Event
	if ev.Kind != "twosided" || ev.Name != "query" || ev.Worker != SerialWorker {
		t.Fatalf("trace identity %s/%s worker=%d", ev.Kind, ev.Name, ev.Worker)
	}
	if ev.Reads <= 0 || ev.Bound <= 0 || ev.Ratio <= 0 || ev.Seq == 0 || ev.Start.IsZero() {
		t.Fatalf("trace incomplete: %+v", ev)
	}
	// The profile still reports the exact I/O the breached op performed.
	if prof.Reads != ev.Reads || prof.BoundRatio != ev.Ratio {
		t.Fatalf("profile (%d reads, ratio %v) disagrees with trace (%d, %v)",
			prof.Reads, prof.BoundRatio, ev.Reads, ev.Ratio)
	}
	if !strings.Contains(err.Error(), "twosided/query") {
		t.Fatalf("error text %q misses the trace", err)
	}
}

func TestStrictBreachInBatch(t *testing.T) {
	pts := uniformPoints(3_000, 100_000, 1203)
	ix, err := NewTwoSidedIndex(pts, SchemeSegmented, brokenBoundOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	_, _, err = ix.QueryBatch(batchQueries2(20, 1204), 4)
	if !errors.Is(err, ErrBoundExceeded) {
		t.Fatalf("batch error = %v, want ErrBoundExceeded", err)
	}
	var be *BoundError
	if !errors.As(err, &be) {
		t.Fatalf("batch error %T does not unpack to *BoundError", err)
	}
	if be.Event.Worker < 0 {
		t.Fatalf("batch breach traced to worker %d, want a real worker tag", be.Event.Worker)
	}
}

// Within the default sentinel limits the same workloads pass — the strict
// property suite (boundprop_test.go) covers this across all kinds; here we
// just pin that StrictBounds alone does not change results.
func TestStrictDefaultsPass(t *testing.T) {
	pts := uniformPoints(3_000, 100_000, 1205)
	ix, err := NewTwoSidedIndex(pts, SchemeSegmented, &Options{PageSize: 512, StrictBounds: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	res, err := ix.Query(50_000, 50_000)
	if err != nil {
		t.Fatalf("strict query failed within default limits: %v", err)
	}
	if len(res) == 0 {
		t.Fatal("query returned nothing")
	}
}

// recordingTracer collects trace events; must be concurrency-safe because
// batch workers emit in parallel.
type recordingTracer struct {
	mu     sync.Mutex
	starts []TraceOp
	ends   []TraceEvent
}

func (r *recordingTracer) OpStart(op TraceOp) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.starts = append(r.starts, op)
}

func (r *recordingTracer) OpEnd(ev TraceEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ends = append(r.ends, ev)
}

func TestWithTracerSeesEveryOp(t *testing.T) {
	tr := &recordingTracer{}
	opts := (&Options{PageSize: 512}).WithTracer(tr)
	ix, err := NewSegmentIndex(uniformIntervals(800, 100_000, 10_000, 1207), true, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	for q := int64(0); q < 5; q++ {
		if _, err := ix.Stab(q * 20_000); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := ix.StabBatch([]int64{10, 20, 30, 40}, 2); err != nil {
		t.Fatal(err)
	}

	tr.mu.Lock()
	defer tr.mu.Unlock()
	// 1 build + 5 serial stabs + 4 batch stabs.
	if len(tr.starts) != 10 || len(tr.ends) != 10 {
		t.Fatalf("tracer saw %d starts / %d ends, want 10 each", len(tr.starts), len(tr.ends))
	}
	counts := map[string]int{}
	for _, ev := range tr.ends {
		if ev.Kind != "segment" {
			t.Fatalf("event kind %q, want segment", ev.Kind)
		}
		counts[ev.Name]++
		if ev.Name == "build" {
			if ev.Worker != SerialWorker || ev.Writes == 0 || ev.Bound != 0 {
				t.Fatalf("build event %+v", ev)
			}
		}
		if ev.Name == "stab" && ev.Bound <= 0 {
			t.Fatalf("stab event missing bound: %+v", ev)
		}
	}
	if counts["build"] != 1 || counts["stab"] != 9 {
		t.Fatalf("op counts %v, want 1 build + 9 stabs", counts)
	}
}

func TestMetricsSnapshotAndReset(t *testing.T) {
	pts := uniformPoints(2_000, 100_000, 1209)
	ix, err := NewTwoSidedIndex(pts, SchemeSegmented, &Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	for i := 0; i < 6; i++ {
		if _, err := ix.Query(int64(i)*10_000, 40_000); err != nil {
			t.Fatal(err)
		}
	}

	m := ix.Metrics()
	if m.Inflight != 0 {
		t.Fatalf("Inflight = %d at rest", m.Inflight)
	}
	byName := map[string]OpMetrics{}
	for _, s := range m.Ops {
		if s.Kind != "twosided" || s.Worker != SerialWorker {
			t.Fatalf("unexpected series %+v", s)
		}
		byName[s.Name] = s
	}
	b, ok := byName["build"]
	if !ok || b.Ops != 1 || b.Writes.Sum == 0 {
		t.Fatalf("build series %+v (present=%v)", b, ok)
	}
	q, ok := byName["query"]
	if !ok || q.Ops != 6 || q.Reads.Count != 6 || q.BoundRatios.Count != 6 {
		t.Fatalf("query series %+v (present=%v)", q, ok)
	}
	if q.MaxBoundRatio <= 0 {
		t.Fatal("query series carries no bound ratio")
	}
	var bucketSum int64
	for _, bk := range q.Reads.Buckets {
		bucketSum += bk.Count
	}
	if bucketSum != q.Reads.Count {
		t.Fatalf("reads buckets sum to %d, count %d", bucketSum, q.Reads.Count)
	}

	ix.ResetMetrics()
	if m := ix.Metrics(); len(m.Ops) != 0 {
		t.Fatalf("Metrics after ResetMetrics holds %d series", len(m.Ops))
	}
}

// Serial per-op attribution: one query's metric series delta must equal
// the store-level Stats diff of that query (the histograms-sum invariant
// at its smallest scale; the concurrent version lives in batch_test.go).
func TestMetricsSumMatchesStatsDiff(t *testing.T) {
	ivs := uniformIntervals(2_000, 100_000, 10_000, 1211)
	ix, err := NewIntervalIndex(ivs, true, &Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	ix.ResetMetrics()
	before := ix.Stats()
	for q := int64(0); q < 8; q++ {
		if _, err := ix.Stab(q * 12_000); err != nil {
			t.Fatal(err)
		}
	}
	after := ix.Stats()

	var reads, writes int64
	for _, s := range ix.Metrics().Ops {
		reads += s.Reads.Sum
		writes += s.Writes.Sum
	}
	if reads != after.Reads-before.Reads {
		t.Fatalf("metric reads %d != store diff %d", reads, after.Reads-before.Reads)
	}
	if writes != after.Writes-before.Writes {
		t.Fatalf("metric writes %d != store diff %d", writes, after.Writes-before.Writes)
	}
}
