package pathcache

import (
	"errors"
	"fmt"
	"sync"
)

// ErrHandleClosed reports an operation against a Handle after Close.
var ErrHandleClosed = errors.New("pathcache: handle closed")

// Handle is a hot-swappable reference to an open index file: the
// snapshot/reload seam a long-running server builds on. Acquire pins the
// currently installed Index for the duration of one operation; Reload opens
// the file again (picking up an index rebuilt and renamed over the path)
// and atomically installs the fresh Index, so concurrent readers keep
// serving — each against the consistent snapshot it pinned — and the
// superseded Index is closed only once its last reader releases it.
//
// The same copy-on-write discipline the write tier uses for background
// compaction (DESIGN.md §11) applies here one level up: readers never see
// a half-swapped index, and a swap never blocks on readers.
type Handle struct {
	path string

	mu     sync.Mutex // guards cur/closed and ref bookkeeping, never held across I/O
	cur    *handleRef
	closed bool
	gen    uint64                // bumped on every successful Reload
	open   func() (Index, error) // Reload's opener; nil means Open(path)
}

// handleRef is one installed index plus the count of operations pinning it.
// The Handle itself holds one reference until the ref is retired (swapped
// out by Reload or Close); the releaser that drops the count to zero after
// retirement closes the index.
type handleRef struct {
	ix      Index
	refs    int
	retired bool
}

// OpenHandle opens path with Open and wraps the result in a Handle.
func OpenHandle(path string) (*Handle, error) {
	ix, err := Open(path)
	if err != nil {
		return nil, err
	}
	return NewHandle(path, ix), nil
}

// NewHandle wraps an already-open index. path is what Reload reopens; a
// handle over an in-memory index passes "" and must not call Reload.
func NewHandle(path string, ix Index) *Handle {
	return &Handle{path: path, cur: &handleRef{ix: ix, refs: 1}}
}

// Path reports the file the handle reopens on Reload.
func (h *Handle) Path() string { return h.path }

// SetOpener replaces how Reload reopens the handle's path (Open by
// default) — the seam sharded stores use so a reloaded shard keeps its
// per-shard runtime options. Call before the handle is shared.
func (h *Handle) SetOpener(open func() (Index, error)) { h.open = open }

// Generation reports how many Reloads have been installed — a cheap way
// for callers to observe that a swap happened.
func (h *Handle) Generation() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.gen
}

// Acquire pins the currently installed index and returns it with a release
// closure. The index stays valid — even across a concurrent Reload or
// Close — until release is called; release reports the index's Close error
// when this releaser was the last one out after a swap.
func (h *Handle) Acquire() (Index, func() error, error) {
	h.mu.Lock()
	if h.closed || h.cur == nil {
		h.mu.Unlock()
		return nil, nil, ErrHandleClosed
	}
	r := h.cur
	r.refs++
	h.mu.Unlock()
	return r.ix, func() error { return h.release(r) }, nil
}

// release drops one pin; the last releaser of a retired ref closes it.
func (h *Handle) release(r *handleRef) error {
	h.mu.Lock()
	r.refs--
	dead := r.retired && r.refs == 0
	h.mu.Unlock()
	if dead {
		return r.ix.Close()
	}
	return nil
}

// Reload reopens the handle's path and installs the fresh index. Readers
// that acquired before the swap finish against their pinned snapshot; the
// superseded index closes when its last reader releases. On any open error
// the installed index is left untouched.
func (h *Handle) Reload() error {
	if h.path == "" {
		return fmt.Errorf("pathcache: handle has no path to reload")
	}
	open := h.open
	if open == nil {
		open = func() (Index, error) { return Open(h.path) }
	}
	ix, err := open()
	if err != nil {
		return err
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		ix.Close()
		return ErrHandleClosed
	}
	old := h.cur
	h.cur = &handleRef{ix: ix, refs: 1}
	h.gen++
	old.retired = true
	old.refs-- // the handle's own reference
	dead := old.refs == 0
	h.mu.Unlock()
	if dead {
		return old.ix.Close()
	}
	return nil
}

// Close retires the handle: new Acquires fail with ErrHandleClosed, and the
// installed index closes once every outstanding reader has released (the
// close error then surfaces from that release). When no readers are
// outstanding the index closes here and Close reports its error. Close is
// idempotent.
func (h *Handle) Close() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil
	}
	h.closed = true
	old := h.cur
	h.cur = nil
	old.retired = true
	old.refs--
	dead := old.refs == 0
	h.mu.Unlock()
	if dead {
		return old.ix.Close()
	}
	return nil
}
