// Benchmarks: one per experiment table/figure of EXPERIMENTS.md. Each
// benchmark reports the I/O metrics the paper's bounds speak about —
// page reads per operation — next to Go's time/op. Regenerate the full
// tables with: go run ./cmd/pcbench
package pathcache_test

import (
	"fmt"
	"sync"
	"testing"

	"pathcache"

	"pathcache/internal/bench"
	"pathcache/internal/disk"
	"pathcache/internal/dynpst"
	"pathcache/internal/ext3side"
	"pathcache/internal/extint"
	"pathcache/internal/extpst"
	"pathcache/internal/extseg"
	"pathcache/internal/record"
	"pathcache/internal/workload"
)

const (
	benchN    = 50_000
	benchPage = 4096
	benchSel  = 0.01
)

var benchPts = sync.OnceValue(func() []record.Point {
	return workload.UniformPoints(benchN, 1<<30, 42)
})

var benchIvs = sync.OnceValue(func() []record.Interval {
	return workload.UniformIntervals(benchN, 1<<30, 1<<24, 42)
})

type builtPST struct {
	store *disk.Store
	idx   extpst.PointIndex
}

func buildPST(b *testing.B, scheme extpst.Scheme) builtPST {
	b.Helper()
	s := disk.MustStore(benchPage)
	tr, err := extpst.Build(s, benchPts(), scheme)
	if err != nil {
		b.Fatal(err)
	}
	return builtPST{s, tr}
}

func runTwoSidedQueries(b *testing.B, s *disk.Store, idx extpst.PointIndex) {
	b.Helper()
	qs := workload.TwoSidedQueries(64, 1<<30, benchSel, 43)
	s.ResetStats()
	var results int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, _, err := idx.Query(qs[i%len(qs)].A, qs[i%len(qs)].B)
		if err != nil {
			b.Fatal(err)
		}
		results += int64(len(pts))
	}
	b.StopTimer()
	b.ReportMetric(float64(s.Stats().Reads)/float64(b.N), "reads/op")
	b.ReportMetric(float64(results)/float64(b.N), "results/op")
}

// E1: 2-sided queries, cached schemes vs the IKO baseline.
func BenchmarkE1TwoSidedQueryIKO(b *testing.B) {
	p := buildPST(b, extpst.IKO)
	runTwoSidedQueries(b, p.store, p.idx)
}

func BenchmarkE1TwoSidedQueryBasic(b *testing.B) {
	p := buildPST(b, extpst.Basic)
	runTwoSidedQueries(b, p.store, p.idx)
}

func BenchmarkE1TwoSidedQuerySegmented(b *testing.B) {
	p := buildPST(b, extpst.Segmented)
	runTwoSidedQueries(b, p.store, p.idx)
}

// E2: build cost and storage footprint per scheme (pages/op is the table's
// space column).
func benchBuild(b *testing.B, build func(*disk.Store) (int, error)) {
	var pages int
	for i := 0; i < b.N; i++ {
		s := disk.MustStore(benchPage)
		var err error
		pages, err = build(s)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(pages), "pages")
}

func BenchmarkE2SpaceSegmented(b *testing.B) {
	benchBuild(b, func(s *disk.Store) (int, error) {
		tr, err := extpst.Build(s, benchPts(), extpst.Segmented)
		if err != nil {
			return 0, err
		}
		return tr.TotalPages(), nil
	})
}

func BenchmarkE2SpaceTwoLevel(b *testing.B) {
	benchBuild(b, func(s *disk.Store) (int, error) {
		tr, err := extpst.BuildTwoLevel(s, benchPts())
		if err != nil {
			return 0, err
		}
		return tr.TotalPages(), nil
	})
}

// E3: queries on the recursive schemes.
func BenchmarkE3RecursiveQueryTwoLevel(b *testing.B) {
	s := disk.MustStore(benchPage)
	tr, err := extpst.BuildTwoLevel(s, benchPts())
	if err != nil {
		b.Fatal(err)
	}
	runTwoSidedQueries(b, s, tr)
}

func BenchmarkE3RecursiveQueryMultilevel(b *testing.B) {
	s := disk.MustStore(benchPage)
	tr, err := extpst.BuildMultilevel(s, benchPts())
	if err != nil {
		b.Fatal(err)
	}
	runTwoSidedQueries(b, s, tr)
}

// E4: dynamic updates and queries (Theorem 5.1).
func BenchmarkE4DynamicInsert(b *testing.B) {
	s := disk.MustStore(benchPage)
	tr, err := dynpst.New(s)
	if err != nil {
		b.Fatal(err)
	}
	pts := benchPts()
	s.ResetStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pts[i%len(pts)]
		p.ID = uint64(i + 1)
		if err := tr.Insert(p); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(s.Stats().Total())/float64(b.N), "IOs/op")
}

func BenchmarkE4DynamicQuery(b *testing.B) {
	s := disk.MustStore(benchPage)
	tr, err := dynpst.New(s)
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range benchPts()[:20_000] {
		if err := tr.Insert(p); err != nil {
			b.Fatal(err)
		}
	}
	qs := workload.TwoSidedQueries(64, 1<<30, benchSel, 43)
	s.ResetStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tr.Query(qs[i%len(qs)].A, qs[i%len(qs)].B); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(s.Stats().Reads)/float64(b.N), "reads/op")
}

// E5: segment tree stabbing, naive vs path-cached (Figure 3's message).
func benchSegStab(b *testing.B, v extseg.Variant) {
	s := disk.MustStore(benchPage)
	tr, err := extseg.Build(s, benchIvs(), v)
	if err != nil {
		b.Fatal(err)
	}
	qs := workload.StabQueries(64, 1<<30, 44)
	s.ResetStats()
	var wasteful int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, st, err := tr.Stab(qs[i%len(qs)])
		if err != nil {
			b.Fatal(err)
		}
		wasteful += int64(st.WastefulIOs)
	}
	b.StopTimer()
	b.ReportMetric(float64(s.Stats().Reads)/float64(b.N), "reads/op")
	b.ReportMetric(float64(wasteful)/float64(b.N), "wasteful/op")
}

func BenchmarkE5SegmentTreeNaive(b *testing.B)      { benchSegStab(b, extseg.Naive) }
func BenchmarkE5SegmentTreePathCached(b *testing.B) { benchSegStab(b, extseg.PathCached) }

// E6: interval tree stabbing (Theorem 3.5).
func BenchmarkE6IntervalTree(b *testing.B) {
	s := disk.MustStore(benchPage)
	tr, err := extint.Build(s, benchIvs(), extint.PathCached)
	if err != nil {
		b.Fatal(err)
	}
	qs := workload.StabQueries(64, 1<<30, 44)
	s.ResetStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tr.Stab(qs[i%len(qs)]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(s.Stats().Reads)/float64(b.N), "reads/op")
}

// E7: 3-sided queries (Theorems 3.3/4.5).
func BenchmarkE7ThreeSided(b *testing.B) {
	s := disk.MustStore(benchPage)
	tr, err := ext3side.Build(s, benchPts())
	if err != nil {
		b.Fatal(err)
	}
	qs := workload.ThreeSidedQueries(64, 1<<30, 0.1, 0.005, 45)
	s.ResetStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		if _, _, err := tr.Query(q.A1, q.A2, q.B); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(s.Stats().Reads)/float64(b.N), "reads/op")
}

// E8: the B+-tree baseline answering 2-sided queries by x-scan + filter.
func BenchmarkE8BTreeBaseline(b *testing.B) {
	s := disk.MustStore(benchPage)
	bt, err := bench.NewBTreeOnX(s, benchPts())
	if err != nil {
		b.Fatal(err)
	}
	yOf := make(map[uint64]int64, benchN)
	for _, p := range benchPts() {
		yOf[p.ID] = p.Y
	}
	qs := workload.TwoSidedQueries(64, 1<<30, benchSel, 43)
	s.ResetStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		err := bt.Range(q.A, 1<<62, func(_ int64, id uint64) bool {
			_ = yOf[id]
			return true
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(s.Stats().Reads)/float64(b.N), "reads/op")
}

// Public API overhead check: quickstart-style usage through pathcache.
func BenchmarkPublicTwoSidedQuery(b *testing.B) {
	pts := make([]pathcache.Point, benchN)
	for i, p := range benchPts() {
		pts[i] = pathcache.Point(p)
	}
	ix, err := pathcache.NewTwoSidedIndex(pts, pathcache.SchemeTwoLevel, &pathcache.Options{PageSize: benchPage})
	if err != nil {
		b.Fatal(err)
	}
	qs := workload.TwoSidedQueries(64, 1<<30, benchSel, 43)
	ix.ResetStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Query(qs[i%len(qs)].A, qs[i%len(qs)].B); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(ix.Stats().Reads)/float64(b.N), "reads/op")
}

// Public batch API: one op is a 64-query batch through a shared buffer
// pool. Compare workers=1 vs workers=8 for the fan-out overhead (on a
// multi-core machine or an I/O-bound pager the 8-worker batch also finishes
// proportionally faster; see pcbench -exp p1 for the latency-simulated
// throughput ladder).
func BenchmarkPublicQueryBatch(b *testing.B) {
	pts := make([]pathcache.Point, benchN)
	for i, p := range benchPts() {
		pts[i] = pathcache.Point(p)
	}
	ix, err := pathcache.NewTwoSidedIndex(pts, pathcache.SchemeSegmented, &pathcache.Options{PageSize: benchPage, BufferPoolPages: 256})
	if err != nil {
		b.Fatal(err)
	}
	raw := workload.TwoSidedQueries(64, 1<<30, benchSel, 47)
	qs := make([]pathcache.TwoSidedQuery, len(raw))
	for i, q := range raw {
		qs[i] = pathcache.TwoSidedQuery{A: q.A, B: q.B}
	}
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := ix.QueryBatch(qs, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
