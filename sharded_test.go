package pathcache

import (
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pathcache/internal/workload"
)

// Differential battery: a sharded store must answer byte-identically to a
// single store holding the same records, for every kind, serial and
// batched, with per-shard bound sentinels armed.

func shardedPoints(n int, seed int64) []Point {
	return fromRecPoints(workload.UniformPoints(n, 2000, seed))
}

func shardedIntervals(n int, seed int64) []Interval {
	return fromRecIntervals(workload.UniformIntervals(n, 2000, 200, seed))
}

func shardedBuildOpts() *Options { return &Options{PageSize: 256} }

func shardedOpenOpts() *Options { return &Options{PageSize: 256, StrictBounds: true} }

func twoSidedQueries(n int, seed int64) []TwoSidedQuery {
	rng := rand.New(rand.NewSource(seed))
	qs := make([]TwoSidedQuery, 0, n+2)
	for i := 0; i < n; i++ {
		qs = append(qs, TwoSidedQuery{A: rng.Int63n(2200) - 100, B: rng.Int63n(2200) - 100})
	}
	// Extremes: everything, and nothing.
	return append(qs, TwoSidedQuery{A: math.MinInt64, B: math.MinInt64}, TwoSidedQuery{A: 5000, B: 5000})
}

func TestShardedTwoSidedDifferential(t *testing.T) {
	pts := shardedPoints(800, 7)
	dir := t.TempDir()
	s, err := BuildShardedPoints(dir, "twosided", pts, ShardPlan{Shards: 5, Scheme: SchemeSegmented}, shardedBuildOpts())
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	s, err = OpenSharded(dir, shardedOpenOpts())
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s.Close()
	if s.NumShards() != 5 {
		t.Fatalf("NumShards = %d, want 5", s.NumShards())
	}
	if s.ContentKind() != "twosided" || s.Kind() != "shard" {
		t.Fatalf("kinds = %s/%s", s.Kind(), s.ContentKind())
	}
	if s.Len() != len(pts) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(pts))
	}
	oracle, err := NewTwoSidedIndex(pts, SchemeSegmented, nil)
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	defer oracle.Close()

	qs := twoSidedQueries(64, 8)
	for _, q := range qs {
		got, profs, err := s.QueryProfile(q.A, q.B)
		if err != nil {
			t.Fatalf("Query(%d,%d): %v", q.A, q.B, err)
		}
		want, err := oracle.Query(q.A, q.B)
		if err != nil {
			t.Fatalf("oracle: %v", err)
		}
		sortPoints(want)
		if !samePoints(got, want) {
			t.Fatalf("Query(%d,%d): %d results, want %d", q.A, q.B, len(got), len(want))
		}
		var profResults int
		for _, p := range profs {
			profResults += p.Results
		}
		if profResults != len(got) {
			t.Fatalf("Query(%d,%d): per-shard profile results %d != %d", q.A, q.B, profResults, len(got))
		}
	}

	for _, workers := range []int{1, 3, 8} {
		got, st, err := s.QueryBatch(qs, workers)
		if err != nil {
			t.Fatalf("QueryBatch(workers=%d): %v", workers, err)
		}
		want, _, err := oracle.QueryBatch(qs, workers)
		if err != nil {
			t.Fatalf("oracle batch: %v", err)
		}
		if st.Queries != len(qs) {
			t.Fatalf("batch Queries = %d, want %d", st.Queries, len(qs))
		}
		for i := range want {
			sortPoints(want[i])
			if !samePoints(got[i], want[i]) {
				t.Fatalf("batch query %d: %d results, want %d", i, len(got[i]), len(want[i]))
			}
		}
	}
}

// TestShardedBoundSentinels arms an absurdly tight per-shard bound and
// asserts a scatter-gathered sub-query still trips its kind's sentinel:
// sharding must not launder theorem-bound breaches.
func TestShardedBoundSentinels(t *testing.T) {
	pts := shardedPoints(600, 9)
	dir := t.TempDir()
	s, err := BuildShardedPoints(dir, "twosided", pts, ShardPlan{Shards: 3, Scheme: SchemeSegmented}, shardedBuildOpts())
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	s.Close()
	s, err = OpenSharded(dir, &Options{PageSize: 256, StrictBounds: true, BoundMaxRatio: 1e-9, BoundSlack: 1e-9})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s.Close()
	_, err = s.Query(math.MinInt64, math.MinInt64)
	if !errors.Is(err, ErrBoundExceeded) {
		t.Fatalf("tight sentinel: err = %v, want ErrBoundExceeded", err)
	}
	var be *BoundError
	if !errors.As(err, &be) {
		t.Fatalf("err %v does not carry *BoundError", err)
	}
	if _, _, err := s.QueryBatchShards(twoSidedQueries(8, 10), 2); !errors.Is(err, ErrBoundExceeded) {
		t.Fatalf("tight batch sentinel: err = %v, want ErrBoundExceeded", err)
	}
}

func TestShardedThreeSidedDifferential(t *testing.T) {
	pts := shardedPoints(700, 21)
	dir := t.TempDir()
	s, err := BuildShardedPoints(dir, "threeside", pts, ShardPlan{Shards: 4}, shardedBuildOpts())
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	s.Close()
	s, err = OpenSharded(dir, shardedOpenOpts())
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s.Close()
	oracle, err := NewThreeSidedIndex(pts, nil)
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	defer oracle.Close()

	rng := rand.New(rand.NewSource(22))
	var qs []ThreeSidedQuery
	for i := 0; i < 48; i++ {
		a1 := rng.Int63n(2200) - 100
		qs = append(qs, ThreeSidedQuery{A1: a1, A2: a1 + rng.Int63n(800), B: rng.Int63n(2200) - 100})
	}
	qs = append(qs, ThreeSidedQuery{A1: math.MinInt64, A2: math.MaxInt64, B: math.MinInt64})
	for _, q := range qs {
		got, err := s.QueryThreeSided(q.A1, q.A2, q.B)
		if err != nil {
			t.Fatalf("QueryThreeSided: %v", err)
		}
		want, err := oracle.Query(q.A1, q.A2, q.B)
		if err != nil {
			t.Fatalf("oracle: %v", err)
		}
		sortPoints(want)
		if !samePoints(got, want) {
			t.Fatalf("QueryThreeSided(%d,%d,%d): %d results, want %d", q.A1, q.A2, q.B, len(got), len(want))
		}
	}
	got, _, err := s.QueryThreeSidedBatch(qs, 4)
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	want, _, err := oracle.QueryBatch(qs, 4)
	if err != nil {
		t.Fatalf("oracle batch: %v", err)
	}
	for i := range want {
		sortPoints(want[i])
		if !samePoints(got[i], want[i]) {
			t.Fatalf("batch query %d mismatch", i)
		}
	}
}

func TestShardedWindowDifferential(t *testing.T) {
	pts := shardedPoints(700, 31)
	dir := t.TempDir()
	s, err := BuildShardedPoints(dir, "window", pts, ShardPlan{Shards: 4}, shardedBuildOpts())
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	s.Close()
	s, err = OpenSharded(dir, shardedOpenOpts())
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s.Close()
	oracle, err := NewWindowIndex(pts, nil)
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	defer oracle.Close()

	rng := rand.New(rand.NewSource(32))
	var qs []WindowQuery
	for i := 0; i < 48; i++ {
		x1 := rng.Int63n(2200) - 100
		y1 := rng.Int63n(2200) - 100
		qs = append(qs, WindowQuery{X1: x1, X2: x1 + rng.Int63n(900), Y1: y1, Y2: y1 + rng.Int63n(900)})
	}
	qs = append(qs, WindowQuery{X1: math.MinInt64, X2: math.MaxInt64, Y1: math.MinInt64, Y2: math.MaxInt64})
	for _, q := range qs {
		got, err := s.WindowQuery(q.X1, q.X2, q.Y1, q.Y2)
		if err != nil {
			t.Fatalf("WindowQuery: %v", err)
		}
		want, err := oracle.Query(q.X1, q.X2, q.Y1, q.Y2)
		if err != nil {
			t.Fatalf("oracle: %v", err)
		}
		sortPoints(want)
		if !samePoints(got, want) {
			t.Fatalf("WindowQuery(%+v): %d results, want %d", q, len(got), len(want))
		}
	}
	got, _, err := s.WindowQueryBatch(qs, 4)
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	want, _, err := oracle.QueryBatch(qs, 4)
	if err != nil {
		t.Fatalf("oracle batch: %v", err)
	}
	for i := range want {
		sortPoints(want[i])
		if !samePoints(got[i], want[i]) {
			t.Fatalf("batch query %d mismatch", i)
		}
	}
}

func TestShardedStabDifferential(t *testing.T) {
	ivs := shardedIntervals(500, 41)
	rng := rand.New(rand.NewSource(42))
	qs := make([]int64, 0, 50)
	for i := 0; i < 48; i++ {
		qs = append(qs, rng.Int63n(2400)-100)
	}
	qs = append(qs, 0, 2199)
	for _, kind := range []string{"segment", "interval", "stabbing"} {
		t.Run(kind, func(t *testing.T) {
			dir := t.TempDir()
			s, err := BuildShardedIntervals(dir, kind, ivs, ShardPlan{Shards: 4, Scheme: SchemeSegmented}, shardedBuildOpts())
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			s.Close()
			s, err = OpenSharded(dir, shardedOpenOpts())
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer s.Close()
			var stab func(q int64) ([]Interval, error)
			var stabBatch func(qs []int64, workers int) ([][]Interval, BatchStats, error)
			switch kind {
			case "segment":
				o, err := NewSegmentIndex(ivs, true, nil)
				if err != nil {
					t.Fatalf("oracle: %v", err)
				}
				defer o.Close()
				stab, stabBatch = o.Stab, o.StabBatch
			case "interval":
				o, err := NewIntervalIndex(ivs, true, nil)
				if err != nil {
					t.Fatalf("oracle: %v", err)
				}
				defer o.Close()
				stab, stabBatch = o.Stab, o.StabBatch
			default:
				o, err := NewStabbingIndex(ivs, SchemeSegmented, nil)
				if err != nil {
					t.Fatalf("oracle: %v", err)
				}
				defer o.Close()
				stab, stabBatch = o.Stab, o.StabBatch
			}
			for _, q := range qs {
				got, err := s.Stab(q)
				if err != nil {
					t.Fatalf("Stab(%d): %v", q, err)
				}
				want, err := stab(q)
				if err != nil {
					t.Fatalf("oracle: %v", err)
				}
				sortIntervals(want)
				if !sameIntervals(got, want) {
					t.Fatalf("Stab(%d): %d results, want %d", q, len(got), len(want))
				}
			}
			got, _, err := s.StabBatch(qs, 4)
			if err != nil {
				t.Fatalf("StabBatch: %v", err)
			}
			want, _, err := stabBatch(qs, 4)
			if err != nil {
				t.Fatalf("oracle batch: %v", err)
			}
			for i := range want {
				sortIntervals(want[i])
				if !sameIntervals(got[i], want[i]) {
					t.Fatalf("batch stab %d mismatch", i)
				}
			}
		})
	}
}

func TestShardedLSMDifferential(t *testing.T) {
	pts := shardedPoints(300, 51)
	dir := t.TempDir()
	opts := &Options{PageSize: 256, MemtableEntries: 32}
	s, err := BuildShardedPoints(dir, "lsm", pts, ShardPlan{Shards: 3}, opts)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	defer s.Close()
	if s.Base() != "twosided" {
		t.Fatalf("Base = %q, want twosided", s.Base())
	}
	oracle, err := BuildDynamic("twosided", pts, &Options{MemtableEntries: 32})
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	defer oracle.Close()

	rng := rand.New(rand.NewSource(52))
	for i := 0; i < 120; i++ {
		p := Point{X: rng.Int63n(2000), Y: rng.Int63n(2000), ID: uint64(10_000 + i)}
		if _, err := s.Insert(p); err != nil {
			t.Fatalf("Insert: %v", err)
		}
		if _, err := oracle.Insert(p); err != nil {
			t.Fatalf("oracle Insert: %v", err)
		}
	}
	for i := 0; i < 60; i++ {
		p := pts[rng.Intn(len(pts))]
		ok, _, err := s.Has(p)
		if err != nil {
			t.Fatalf("Has: %v", err)
		}
		wantOk, _, err := oracle.Has(p)
		if err != nil {
			t.Fatalf("oracle Has: %v", err)
		}
		if ok != wantOk {
			t.Fatalf("Has(%+v) = %v, oracle %v", p, ok, wantOk)
		}
		if !ok {
			continue
		}
		if _, err := s.Delete(p); err != nil {
			t.Fatalf("Delete: %v", err)
		}
		if _, err := oracle.Delete(p); err != nil {
			t.Fatalf("oracle Delete: %v", err)
		}
	}
	if s.Len() != oracle.Len() {
		t.Fatalf("Len = %d, oracle %d", s.Len(), oracle.Len())
	}

	qs := twoSidedQueries(40, 53)
	check := func(stage string) {
		t.Helper()
		for _, q := range qs {
			got, err := s.Query(q.A, q.B)
			if err != nil {
				t.Fatalf("%s Query: %v", stage, err)
			}
			want, _, err := oracle.Query(q.A, q.B)
			if err != nil {
				t.Fatalf("oracle: %v", err)
			}
			sortPoints(want)
			if !samePoints(got, want) {
				t.Fatalf("%s Query(%d,%d): %d results, want %d", stage, q.A, q.B, len(got), len(want))
			}
		}
		got, _, err := s.QueryBatch(qs, 3)
		if err != nil {
			t.Fatalf("%s QueryBatch: %v", stage, err)
		}
		want, _, err := oracle.QueryBatch(qs, 3)
		if err != nil {
			t.Fatalf("oracle batch: %v", err)
		}
		for i := range want {
			sortPoints(want[i])
			if !samePoints(got[i], want[i]) {
				t.Fatalf("%s batch query %d mismatch", stage, i)
			}
		}
	}
	check("live")
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	check("compacted")

	// Durability: reopen from disk and compare once more.
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	s, err = OpenSharded(dir, opts)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	check("reopened")
}

// TestShardedBatchCounterSums pins the exact-attribution contract: each
// shard's batch statistics must equal that shard's store-level counter
// diff, per worker and in total — no pool, so nothing is absorbed.
func TestShardedBatchCounterSums(t *testing.T) {
	pts := shardedPoints(900, 61)
	dir := t.TempDir()
	s, err := BuildShardedPoints(dir, "twosided", pts, ShardPlan{Shards: 4, Scheme: SchemeSegmented}, shardedBuildOpts())
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	s.Close()
	s, err = OpenSharded(dir, &Options{PageSize: 256})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s.Close()

	qs := twoSidedQueries(80, 62)
	before := s.ShardStats()
	_, per, err := s.QueryBatchShards(qs, 3)
	if err != nil {
		t.Fatalf("QueryBatchShards: %v", err)
	}
	after := s.ShardStats()
	if len(per) != len(before) || len(per) != 4 {
		t.Fatalf("per-shard stats for %d shards, want 4", len(per))
	}
	var sumReads int64
	for i := range per {
		dr := after[i].Reads - before[i].Reads
		dw := after[i].Writes - before[i].Writes
		if per[i].Stats.Reads != dr || per[i].Stats.Writes != dw {
			t.Fatalf("shard %d: batch counted %d/%d, store diff %d/%d",
				i, per[i].Stats.Reads, per[i].Stats.Writes, dr, dw)
		}
		var wr, ww int64
		var wq int
		for _, w := range per[i].Stats.PerWorker {
			wr += w.Reads
			ww += w.Writes
			wq += w.Queries
		}
		if wr != per[i].Stats.Reads || ww != per[i].Stats.Writes || wq != per[i].Queries {
			t.Fatalf("shard %d: per-worker sums %d/%d/%d != shard totals %d/%d/%d",
				i, wr, ww, wq, per[i].Stats.Reads, per[i].Stats.Writes, per[i].Queries)
		}
		sumReads += per[i].Stats.Reads
	}
	agg := foldShardStats(len(qs), per)
	if agg.Reads != sumReads || agg.Queries != len(qs) {
		t.Fatalf("aggregate fold %d reads/%d queries, want %d/%d", agg.Reads, agg.Queries, sumReads, len(qs))
	}
}

func TestShardedMetricsShardTags(t *testing.T) {
	pts := shardedPoints(400, 71)
	dir := t.TempDir()
	s, err := BuildShardedPoints(dir, "twosided", pts, ShardPlan{Shards: 3, Scheme: SchemeSegmented}, shardedBuildOpts())
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	defer s.Close()
	if _, err := s.Query(0, 0); err != nil {
		t.Fatalf("query: %v", err)
	}
	m := s.Metrics()
	if len(m.Ops) == 0 {
		t.Fatal("no metric series")
	}
	seen := map[int]bool{}
	for _, op := range m.Ops {
		if op.Shard < 0 {
			t.Fatalf("series %s/%s has Shard %d inside a sharded store", op.Kind, op.Name, op.Shard)
		}
		seen[op.Shard] = true
	}
	if len(seen) < 2 {
		t.Fatalf("series from %d shards, want >= 2", len(seen))
	}

	oracle, err := NewTwoSidedIndex(pts, SchemeSegmented, nil)
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	defer oracle.Close()
	for _, op := range oracle.Metrics().Ops {
		if op.Shard != NoShard {
			t.Fatalf("single-store series tagged Shard %d, want NoShard", op.Shard)
		}
	}
}

func TestOpenShardedDispatch(t *testing.T) {
	pts := shardedPoints(300, 81)
	dir := t.TempDir()
	s, err := BuildShardedPoints(dir, "twosided", pts, ShardPlan{Shards: 2, Scheme: SchemeSegmented}, shardedBuildOpts())
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	s.Close()

	ix, err := Open(dir)
	if err != nil {
		t.Fatalf("Open(dir): %v", err)
	}
	s2, ok := ix.(*Sharded)
	if !ok {
		t.Fatalf("Open(dir) = %T, want *Sharded", ix)
	}
	if s2.Kind() != "shard" {
		t.Fatalf("Kind = %q", s2.Kind())
	}
	if _, err := s2.Query(0, 0); err != nil {
		t.Fatalf("query via Open: %v", err)
	}
	s2.Close()

	// Opening the manifest file directly points at the directory API.
	_, err = Open(filepath.Join(dir, "shardmap.pc"))
	if err == nil || !strings.Contains(err.Error(), "OpenSharded") {
		t.Fatalf("Open(manifest file): err = %v, want OpenSharded hint", err)
	}
}

func TestShardedReload(t *testing.T) {
	pts := shardedPoints(300, 91)
	dir := t.TempDir()
	s, err := BuildShardedPoints(dir, "twosided", pts, ShardPlan{Shards: 3, Scheme: SchemeSegmented}, shardedBuildOpts())
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	defer s.Close()
	want, err := s.Query(math.MinInt64, math.MinInt64)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	for i := 0; i < s.NumShards(); i++ {
		if err := s.ReloadShard(i); err != nil {
			t.Fatalf("ReloadShard(%d): %v", i, err)
		}
	}
	got, err := s.Query(math.MinInt64, math.MinInt64)
	if err != nil {
		t.Fatalf("query after reload: %v", err)
	}
	if !samePoints(got, want) {
		t.Fatal("results changed across ReloadShard")
	}
	if err := s.ReloadShard(99); err == nil {
		t.Fatal("ReloadShard(99) succeeded")
	}
}

// TestShardedSplitRace is the online-rebalance acceptance battery: a
// squad of readers hammers the store while shards split underneath them.
// Zero wrong answers, zero blocked readers (progress is asserted around
// every split), and the post-split store — live and reopened — still
// matches the oracle.
func TestShardedSplitRace(t *testing.T) {
	pts := shardedPoints(600, 101)
	dir := t.TempDir()
	s, err := BuildShardedPoints(dir, "twosided", pts, ShardPlan{Shards: 2, Scheme: SchemeSegmented}, shardedBuildOpts())
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	defer s.Close()
	oracle, err := NewTwoSidedIndex(pts, SchemeSegmented, nil)
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	defer oracle.Close()

	qs := twoSidedQueries(32, 102)
	want := make([][]Point, len(qs))
	for i, q := range qs {
		w, err := oracle.Query(q.A, q.B)
		if err != nil {
			t.Fatalf("oracle: %v", err)
		}
		sortPoints(w)
		want[i] = w
	}

	stop := make(chan struct{})
	var wrong, reads atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				i := rng.Intn(len(qs))
				got, err := s.Query(qs[i].A, qs[i].B)
				if err != nil {
					t.Errorf("reader: Query(%d,%d): %v", qs[i].A, qs[i].B, err)
					wrong.Add(1)
					return
				}
				if !samePoints(got, want[i]) {
					wrong.Add(1)
				}
				reads.Add(1)
			}
		}(int64(200 + w))
	}

	waitProgress := func() {
		r0 := reads.Load()
		deadline := time.Now().Add(10 * time.Second)
		for reads.Load() == r0 {
			if time.Now().After(deadline) {
				t.Fatal("readers made no progress: blocked")
			}
			time.Sleep(time.Millisecond)
		}
	}
	for round := 0; round < 3; round++ {
		// Split the biggest shard.
		infos := s.Shards()
		target, best := 0, -1
		for _, in := range infos {
			if in.Len > best {
				target, best = in.Shard, in.Len
			}
		}
		if err := s.Split(target); err != nil {
			t.Fatalf("Split(%d): %v", target, err)
		}
		waitProgress()
	}
	close(stop)
	wg.Wait()
	if n := wrong.Load(); n > 0 {
		t.Fatalf("%d wrong answers during splits", n)
	}
	if reads.Load() == 0 {
		t.Fatal("no reads completed")
	}
	if s.NumShards() != 5 {
		t.Fatalf("NumShards after 3 splits = %d, want 5", s.NumShards())
	}
	if s.Epoch() != 4 {
		t.Fatalf("Epoch = %d, want 4", s.Epoch())
	}
	if s.Len() != len(pts) {
		t.Fatalf("Len after splits = %d, want %d", s.Len(), len(pts))
	}

	// The split map persisted: a fresh open answers identically, and the
	// retired shard files are gone.
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	s2, err := OpenSharded(dir, shardedOpenOpts())
	if err != nil {
		t.Fatalf("reopen after splits: %v", err)
	}
	defer s2.Close()
	if s2.NumShards() != 5 {
		t.Fatalf("reopened NumShards = %d, want 5", s2.NumShards())
	}
	for i, q := range qs {
		got, err := s2.Query(q.A, q.B)
		if err != nil {
			t.Fatalf("reopened Query: %v", err)
		}
		if !samePoints(got, want[i]) {
			t.Fatalf("reopened query %d mismatch", i)
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("readdir: %v", err)
	}
	if len(ents) != s2.NumShards()+1 {
		names := make([]string, len(ents))
		for i, e := range ents {
			names[i] = e.Name()
		}
		t.Fatalf("directory holds %v, want %d shard files + manifest", names, s2.NumShards())
	}
}

func TestShardedSplitUnsupportedKinds(t *testing.T) {
	ivs := shardedIntervals(200, 111)
	dir := t.TempDir()
	s, err := BuildShardedIntervals(dir, "segment", ivs, ShardPlan{Shards: 2}, shardedBuildOpts())
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	defer s.Close()
	if err := s.Split(0); err == nil || !strings.Contains(err.Error(), "unsupported") {
		t.Fatalf("Split on segment shards: err = %v, want unsupported", err)
	}
}

func TestShardedSplitLSM(t *testing.T) {
	pts := shardedPoints(260, 121)
	dir := t.TempDir()
	opts := &Options{PageSize: 256, MemtableEntries: 16}
	s, err := BuildShardedPoints(dir, "lsm", pts, ShardPlan{Shards: 2}, opts)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	defer s.Close()
	oracle, err := BuildDynamic("twosided", pts, &Options{MemtableEntries: 16})
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	defer oracle.Close()
	// Leave an unflushed memtable tail so the split must capture live,
	// not just sealed, records.
	rng := rand.New(rand.NewSource(122))
	for i := 0; i < 7; i++ {
		p := Point{X: rng.Int63n(2000), Y: rng.Int63n(2000), ID: uint64(20_000 + i)}
		if _, err := s.Insert(p); err != nil {
			t.Fatalf("insert: %v", err)
		}
		if _, err := oracle.Insert(p); err != nil {
			t.Fatalf("oracle insert: %v", err)
		}
	}
	if err := s.Split(0); err != nil {
		t.Fatalf("Split: %v", err)
	}
	if err := s.Split(1); err != nil {
		t.Fatalf("Split: %v", err)
	}
	if s.NumShards() != 4 {
		t.Fatalf("NumShards = %d, want 4", s.NumShards())
	}
	for _, q := range twoSidedQueries(32, 123) {
		got, err := s.Query(q.A, q.B)
		if err != nil {
			t.Fatalf("Query: %v", err)
		}
		want, _, err := oracle.Query(q.A, q.B)
		if err != nil {
			t.Fatalf("oracle: %v", err)
		}
		sortPoints(want)
		if !samePoints(got, want) {
			t.Fatalf("post-split Query(%d,%d) mismatch", q.A, q.B)
		}
	}
}

func TestShardedRange(t *testing.T) {
	r, err := NewShardedRange([]int64{100, 200, 300}, nil)
	if err != nil {
		t.Fatalf("NewShardedRange: %v", err)
	}
	defer r.Close()
	if r.NumShards() != 4 {
		t.Fatalf("NumShards = %d", r.NumShards())
	}
	oracle := map[int64][]uint64{}
	rng := rand.New(rand.NewSource(131))
	var keys []int64
	for i := 0; i < 500; i++ {
		k := rng.Int63n(400)
		v := uint64(i + 1)
		if err := r.Insert(k, v); err != nil {
			t.Fatalf("Insert: %v", err)
		}
		oracle[k] = append(oracle[k], v)
		keys = append(keys, k)
	}
	if r.Len() != 500 {
		t.Fatalf("Len = %d", r.Len())
	}
	checkKey := func(k int64, got []uint64) {
		t.Helper()
		want := append([]uint64(nil), oracle[k]...)
		sortU64(want)
		sortU64(got)
		if len(got) != len(want) {
			t.Fatalf("Search(%d): %d values, want %d", k, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Search(%d)[%d] = %d, want %d", k, i, got[i], want[i])
			}
		}
	}
	for k := int64(0); k < 400; k += 7 {
		got, err := r.Search(k)
		if err != nil {
			t.Fatalf("Search: %v", err)
		}
		checkKey(k, got)
	}
	// Batch over shard boundaries.
	probe := []int64{0, 99, 100, 150, 199, 200, 250, 299, 300, 399, 1000}
	out, per, err := r.SearchBatchShards(probe, 2)
	if err != nil {
		t.Fatalf("SearchBatchShards: %v", err)
	}
	for i, k := range probe {
		checkKey(k, out[i])
	}
	if len(per) != 4 {
		t.Fatalf("per-shard stats = %d rows", len(per))
	}
	// Ordered range walk across shards.
	var walked []int64
	if err := r.Range(50, 350, func(k int64, _ uint64) bool {
		walked = append(walked, k)
		return true
	}); err != nil {
		t.Fatalf("Range: %v", err)
	}
	for i := 1; i < len(walked); i++ {
		if walked[i] < walked[i-1] {
			t.Fatalf("Range out of order at %d: %v", i, walked[i-1:i+1])
		}
	}
	wantCount := 0
	for k, vs := range oracle {
		if k >= 50 && k <= 350 {
			wantCount += len(vs)
		}
	}
	if len(walked) != wantCount {
		t.Fatalf("Range visited %d pairs, want %d", len(walked), wantCount)
	}
	// Deletes route to the owning shard.
	k0 := keys[0]
	vs := oracle[k0]
	if err := r.Delete(k0, vs[0]); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	oracle[k0] = vs[1:]
	got, err := r.Search(k0)
	if err != nil {
		t.Fatalf("Search after delete: %v", err)
	}
	checkKey(k0, got)
}

func sortU64(v []uint64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
