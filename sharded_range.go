package pathcache

import (
	"fmt"
	"sync"

	"pathcache/internal/shard"
)

// ShardedRange is the horizontally partitioned form of the paper's
// 1-dimensional baseline: N independent B+-trees behind a range partition
// of the key space. Search routes to exactly the owning shard; Range walks
// the overlapping shards in ascending order, so iteration order matches a
// single tree's.
type ShardedRange struct {
	splits []int64
	shards []*RangeIndex
	mu     sync.Mutex // serializes Insert/Delete with Close
	closed bool
}

// NewShardedRange creates an empty sharded B+-tree with len(splits)+1
// shards: shard i owns keys in [splits[i-1], splits[i]), unbounded at the
// ends. Each shard gets its own store, pool and metric registry from opts.
func NewShardedRange(splits []int64, opts *Options) (*ShardedRange, error) {
	for i := 1; i < len(splits); i++ {
		if splits[i] <= splits[i-1] {
			return nil, fmt.Errorf("pathcache: shard splits must be strictly ascending")
		}
	}
	if len(splits)+1 > shard.MaxShards {
		return nil, fmt.Errorf("pathcache: %d shards exceeds the maximum %d", len(splits)+1, shard.MaxShards)
	}
	r := &ShardedRange{splits: append([]int64(nil), splits...)}
	for i := 0; i <= len(splits); i++ {
		ix, err := NewRangeIndex(cloneShardOptions(opts))
		if err != nil {
			r.Close()
			return nil, err
		}
		ix.backend().Obs().SetShard(i)
		r.shards = append(r.shards, ix)
	}
	return r, nil
}

// NumShards reports the shard count.
func (r *ShardedRange) NumShards() int { return len(r.shards) }

// Splits returns a copy of the split keys.
func (r *ShardedRange) Splits() []int64 { return append([]int64(nil), r.splits...) }

// Insert adds (key, val) to the owning shard.
func (r *ShardedRange) Insert(key int64, val uint64) error {
	return r.shards[shard.Locate(r.splits, key)].Insert(key, val)
}

// Delete removes one (key, val) pair from the owning shard.
func (r *ShardedRange) Delete(key int64, val uint64) error {
	return r.shards[shard.Locate(r.splits, key)].Delete(key, val)
}

// Search reports every value stored under key, consulting exactly the
// owning shard.
func (r *ShardedRange) Search(key int64) ([]uint64, error) {
	return r.shards[shard.Locate(r.splits, key)].Search(key)
}

// SearchBatch looks every key up concurrently with up to workers
// goroutines per shard; out[i] holds the values under keys[i]. No Insert
// or Delete may run during the batch.
func (r *ShardedRange) SearchBatch(keys []int64, workers int) ([][]uint64, BatchStats, error) {
	out, per, err := r.SearchBatchShards(keys, workers)
	return out, foldShardStats(len(keys), per), err
}

// SearchBatchShards is SearchBatch with per-shard execution statistics.
func (r *ShardedRange) SearchBatchShards(keys []int64, workers int) ([][]uint64, []ShardBatchStats, error) {
	out := make([][]uint64, len(keys))
	per := make([]ShardBatchStats, len(r.shards))
	subs := make([][]int64, len(r.shards))
	idxs := make([][]int, len(r.shards))
	for qi, k := range keys {
		si := shard.Locate(r.splits, k)
		subs[si] = append(subs[si], k)
		idxs[si] = append(idxs[si], qi)
	}
	results := make([][][]uint64, len(r.shards))
	errs := make([]error, len(r.shards))
	var wg sync.WaitGroup
	for si := range r.shards {
		per[si].Shard = si
		per[si].Queries = len(subs[si])
		if len(subs[si]) == 0 {
			continue
		}
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			results[si], per[si].Stats, errs[si] = r.shards[si].SearchBatch(subs[si], workers)
		}(si)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	for si := range r.shards {
		for j, qi := range idxs[si] {
			out[qi] = results[si][j]
		}
	}
	return out, per, nil
}

// Range visits every (key, val) with lo <= key <= hi in ascending key
// order across the overlapping shards; fn returning false stops the walk.
func (r *ShardedRange) Range(lo, hi int64, fn func(key int64, val uint64) bool) error {
	from, to := shard.Overlap(r.splits, lo, hi)
	stopped := false
	for si := from; si < to && !stopped; si++ {
		err := r.shards[si].Range(lo, hi, func(k int64, v uint64) bool {
			if !fn(k, v) {
				stopped = true
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// Len reports the summed pair count across shards.
func (r *ShardedRange) Len() int {
	n := 0
	for _, ix := range r.shards {
		n += ix.Len()
	}
	return n
}

// Pages reports the summed storage footprint.
func (r *ShardedRange) Pages() int {
	n := 0
	for _, ix := range r.shards {
		n += ix.Pages()
	}
	return n
}

// Stats sums each shard's store-level counters.
func (r *ShardedRange) Stats() Stats {
	var out Stats
	for _, ix := range r.shards {
		st := ix.Stats()
		out.Reads += st.Reads
		out.Writes += st.Writes
		out.Pages += st.Pages
	}
	return out
}

// Metrics merges every shard's metric series, each tagged with its shard.
func (r *ShardedRange) Metrics() Metrics {
	var out Metrics
	for _, ix := range r.shards {
		m := ix.Metrics()
		out.Inflight += m.Inflight
		out.Ops = append(out.Ops, m.Ops...)
	}
	return out
}

// Close closes every shard.
func (r *ShardedRange) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	r.closed = true
	var first error
	for _, ix := range r.shards {
		if ix == nil {
			continue
		}
		if err := ix.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
