package pathcache

import (
	"errors"
	"fmt"
	"sync"

	"pathcache/internal/disk"
	"pathcache/internal/engine"
	"pathcache/internal/lsm"
	"pathcache/internal/obs"
)

// kindLSM is the write tier's registry kind byte.
const kindLSM = 7

const lsmKindName = "lsm"

func init() {
	engine.Register(engine.Descriptor{Kind: kindLSM, Name: lsmKindName, Open: openLSM, Bound: obs.LSMBound})
}

// Compile-time check that the write tier's base kind bytes match the
// engine registry's kind bytes for the six static structures: any mismatch
// makes the array index non-zero and the build fails.
var _ = [1]struct{}{}[lsm.BaseTwoSided-kindTwoSided+lsm.BaseThreeSide-kindThreeSide+
	lsm.BaseSegment-kindSegment+lsm.BaseInterval-kindInterval+
	lsm.BaseStabbing-kindStabbing+lsm.BaseWindow-kindWindow]

// ErrStaleCompaction reports a background compaction that lost the race
// with concurrent flushes: nothing was committed and the attempt may simply
// be retried. Synchronous Compact never returns it.
var ErrStaleCompaction = lsm.ErrStale

// LSMLevel summarizes one sealed level of a dynamic index: its geometric
// slot (capacity MemtableEntries·2^Slot records), record count, and the
// page footprint of its static tree, sorted data chain and bloom filter.
type LSMLevel struct {
	Slot       int
	Records    int
	TreePages  int
	DataPages  int
	BloomPages int
}

// LSMIndex is the persistent dynamization of the static kinds: a crash-safe
// log-structured write tier. Updates append to a WAL (durable before the
// call returns on file-backed indexes) and land in a memtable; every
// MemtableEntries updates the memtable is sealed into a static level built
// with the base kind's builder, cascading a Bentley–Saxe merge; deletes
// tombstone; tombstones past B·⌈log_B n⌉ trigger a compaction rebuilding
// one tombstone-free level. A double-buffered manifest makes every flush
// and compaction atomic: a crash at any I/O point recovers the previous
// committed state plus a WAL replay of every acknowledged update.
//
// Queries pay the dynamization tax — every level answers — giving
// O(log(n/B)·bound_static + t/B) page reads, the declared bound the strict
// sentinels enforce. Queries may run concurrently with each other and with
// updates; updates are serialized internally.
//
// The base kind decides the query shapes: point bases ("twosided",
// "threeside", "window") answer Query; interval bases ("segment",
// "interval") answer Stab; "stabbing" answers both via the diagonal-corner
// reduction. The unsupported shape fails with lsm's unsupported error.
type LSMIndex struct {
	core
	mu sync.Mutex // serializes updates, flushes and compactions
	tr *lsm.Tree
}

// lsmBaseFor resolves a base kind's registry name ("twosided", "segment",
// ...) to its sealed-level builder.
func lsmBaseFor(name string) (lsm.Base, error) {
	for _, d := range engine.Kinds() {
		if d.Name == name {
			base, err := lsm.BaseFor(d.Kind)
			if err != nil {
				return nil, fmt.Errorf("pathcache: %q is not a dynamizable base kind", name)
			}
			return base, nil
		}
	}
	return nil, fmt.Errorf("pathcache: unknown base kind %q", name)
}

// lsmConfig wires a tree to a backend: all I/O through the backend's pager,
// WAL durability through its sync barrier, manifest commits through the
// metadata-page flip.
func lsmConfig(be *engine.Backend, base lsm.Base, flushEvery int, layout disk.Layout) lsm.Config {
	return lsm.Config{
		Pager:      be.Pager(),
		Base:       base,
		FlushEvery: flushEvery,
		Layout:     layout,
		Sync:       be.Sync,
		Commit: func(blob []byte) error {
			return be.ReplaceMeta(kindLSM, blob)
		},
	}
}

// BuildDynamic creates a dynamic index over the given base kind and seeds
// it with pts — for interval bases, the diagonal-corner encodings
// (X = -Lo, Y = Hi; see IntervalToDynamicPoint). Records must be unique by
// their full (X, Y, ID) triple; that triple is also the identity Delete
// matches on. An empty pts is fine: the index starts empty.
func BuildDynamic(base string, pts []Point, opts *Options) (*LSMIndex, error) {
	b, err := lsmBaseFor(base)
	if err != nil {
		return nil, err
	}
	c, err := newCore(opts)
	if err != nil {
		return nil, err
	}
	flushEvery := 0
	if opts != nil {
		flushEvery = opts.MemtableEntries
	}
	tr, err := lsm.New(lsmConfig(c.be, b, flushEvery, c.layout))
	if err != nil {
		c.be.Close()
		return nil, fmt.Errorf("pathcache: %w", err)
	}
	x := &LSMIndex{core: c, tr: tr}
	for _, p := range pts {
		if err := tr.Insert(c.be.Pager(), toRec(p)); err != nil {
			c.be.Close()
			return nil, fmt.Errorf("pathcache: %w", err)
		}
	}
	if len(pts) > 0 {
		if _, err := tr.Flush(c.be.Pager()); err != nil {
			c.be.Close()
			return nil, fmt.Errorf("pathcache: %w", err)
		}
	}
	c.recordBuild(lsmKindName, len(pts))
	return x, nil
}

// OpenDynamic reopens a file-backed dynamic index, replaying any WAL
// entries an interrupted session left behind. The base kind comes from the
// manifest; a file holding a different index kind fails with
// ErrKindMismatch.
func OpenDynamic(path string) (*LSMIndex, error) {
	return openTyped[*LSMIndex](path, kindLSM)
}

// openLSM is the registered opener: decode the base kind from the metadata
// blob, then recover the tree (manifest, levels, blooms, tombstones, WAL).
func openLSM(be *engine.Backend, blob []byte) (any, error) {
	baseKind, err := lsm.DecodeMetaBlob(blob)
	if err != nil {
		return nil, fmt.Errorf("pathcache: %w", err)
	}
	base, err := lsm.BaseFor(baseKind)
	if err != nil {
		return nil, fmt.Errorf("pathcache: %w", err)
	}
	tr, err := lsm.Open(lsmConfig(be, base, 0, disk.LayoutSorted), blob)
	if err != nil {
		return nil, fmt.Errorf("pathcache: %w", err)
	}
	return &LSMIndex{core: core{be: be}, tr: tr}, nil
}

// IntervalToDynamicPoint encodes an interval as the point a dynamic index
// over an interval base stores: the diagonal-corner reduction X = -Lo,
// Y = Hi. DynamicPointToInterval inverts it.
func IntervalToDynamicPoint(iv Interval) Point { return intervalToPoint(iv) }

// DynamicPointToInterval decodes a stored point back to its interval.
func DynamicPointToInterval(p Point) Interval { return pointToInterval(p) }

// liveBound captures the tree's actual shape — occupied levels and
// tombstone-chain pages — so each query is checked against the bound for
// the tree it actually ran on rather than the registry's worst-case
// estimate.
func (x *LSMIndex) liveBound() obs.BoundFunc {
	levels := x.tr.Levels()
	tombPages := x.tr.TombPages()
	return func(n, b, t int) float64 {
		return obs.LSMBoundAt(levels, tombPages, n, b, t)
	}
}

// Insert adds a record: one durable WAL append, then any flush or
// compaction the thresholds call for (recorded as separate "flush" and
// "compact" metric ops tagged with the level they seal). The profile covers
// the append alone — updates declare no read bound.
func (x *LSMIndex) Insert(p Point) (IOProfile, error) {
	return x.update("insert", func(pg disk.Pager) error {
		return x.tr.Insert(pg, toRec(p))
	})
}

// Delete removes a record previously inserted with the same (X, Y, ID):
// one durable WAL append that tombstones the sealed copy. Deleting a record
// that is not live corrupts the live count — callers guard with Has.
func (x *LSMIndex) Delete(p Point) (IOProfile, error) {
	return x.update("delete", func(pg disk.Pager) error {
		return x.tr.Delete(pg, toRec(p))
	})
}

func (x *LSMIndex) update(opName string, apply func(disk.Pager) error) (IOProfile, error) {
	x.mu.Lock()
	defer x.mu.Unlock()
	ctr, finish := x.startOp(lsmKindName, opName)
	if err := apply(x.be.OpPager(ctr)); err != nil {
		x.abortOp(finish)
		return IOProfile{}, fmt.Errorf("pathcache: %w", err)
	}
	prof, err := finish(0, x.tr.Len(), nil)
	if err != nil {
		return prof, err
	}
	return prof, x.maintainLocked()
}

// maintainLocked runs the threshold-triggered maintenance synchronously:
// seal a full memtable, then rebuild if tombstones crossed their cap.
func (x *LSMIndex) maintainLocked() error {
	if x.tr.NeedsFlush() {
		if err := x.flushLocked(); err != nil {
			return err
		}
	}
	if x.tr.NeedsCompact() {
		if err := x.compactLocked(); err != nil {
			return err
		}
	}
	return nil
}

// runMaint records one maintenance pass (flush or compaction) as a metric
// op tagged with the level it seals into, so per-level write amplification
// is visible in Metrics.
func (x *LSMIndex) runMaint(opName string, slot int, run func(disk.Pager) (int, error)) error {
	ctr := new(disk.Counter)
	op := x.be.Obs().Begin(lsmKindName, opName, slot)
	sealed, err := run(x.be.OpPager(ctr))
	cs := ctr.Stats()
	x.be.Obs().End(op, obs.Measure{
		Reads:     cs.Reads,
		Writes:    cs.Writes,
		CacheHits: ctr.Hits(),
		Results:   sealed,
	})
	if err != nil {
		return fmt.Errorf("pathcache: %w", err)
	}
	return nil
}

func (x *LSMIndex) flushLocked() error {
	return x.runMaint("flush", x.tr.NextFlushSlot(), func(pg disk.Pager) (int, error) {
		slot, err := x.tr.Flush(pg)
		if err != nil {
			return 0, err
		}
		return x.tr.LevelRecordsAt(slot), nil
	})
}

func (x *LSMIndex) compactLocked() error {
	return x.runMaint("compact", x.tr.CompactDest(), func(pg disk.Pager) (int, error) {
		slot, err := x.tr.Compact(pg)
		if err != nil {
			return 0, err
		}
		return x.tr.LevelRecordsAt(slot), nil
	})
}

// Flush seals the memtable now regardless of the threshold — a no-op when
// it is empty. Callers that want a pure reopen-from-manifest (no WAL
// replay) flush before Close.
func (x *LSMIndex) Flush() error {
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.tr.WALEntries() == 0 {
		return nil
	}
	return x.flushLocked()
}

// Compact rebuilds every sealed level into one tombstone-free level now,
// regardless of the tombstone cap. The memtable is flushed first so the
// rebuild covers everything.
func (x *LSMIndex) Compact() error {
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.tr.WALEntries() > 0 {
		if err := x.flushLocked(); err != nil {
			return err
		}
	}
	return x.compactLocked()
}

// CompactBackground starts a compaction over a copy-on-write snapshot of
// the sealed levels: concurrent queries and updates proceed unblocked, and
// the rebuild commits only if no flush or compaction landed in between —
// otherwise it discards its work and the returned channel delivers
// ErrStaleCompaction (retry if desired; the state that superseded the
// snapshot is already newer). The channel receives exactly one value.
func (x *LSMIndex) CompactBackground() <-chan error {
	done := make(chan error, 1)
	go func() {
		err := x.runMaint("compact", x.tr.CompactDest(), func(pg disk.Pager) (int, error) {
			slot, err := x.tr.CompactSnapshot(pg)
			if err != nil {
				return 0, err
			}
			return x.tr.LevelRecordsAt(slot), nil
		})
		if errors.Is(err, lsm.ErrStale) {
			done <- ErrStaleCompaction
			return
		}
		done <- err
	}()
	return done
}

// Query reports every live record with X >= a and Y >= b: every sealed
// level answers, the memtable and tombstones adjust, and the whole
// operation is checked against the dynamization bound. Unsupported on pure
// interval bases ("segment", "interval").
func (x *LSMIndex) Query(a, b int64) ([]Point, IOProfile, error) {
	ctr, finish := x.startOp(lsmKindName, "query")
	bound := x.liveBound()
	pts, err := x.tr.Query(x.be.OpPager(ctr), a, b)
	if err != nil {
		x.abortOp(finish)
		return nil, IOProfile{}, fmt.Errorf("pathcache: %w", err)
	}
	prof, err := finish(len(pts), x.tr.Len(), bound)
	return fromRecPoints(pts), prof, err
}

// Stab reports every live interval containing q, for bases that answer
// stabbing queries ("segment", "interval", "stabbing").
func (x *LSMIndex) Stab(q int64) ([]Interval, IOProfile, error) {
	ctr, finish := x.startOp(lsmKindName, "stab")
	bound := x.liveBound()
	pts, err := x.tr.Stab(x.be.OpPager(ctr), q)
	if err != nil {
		x.abortOp(finish)
		return nil, IOProfile{}, fmt.Errorf("pathcache: %w", err)
	}
	prof, err := finish(len(pts), x.tr.Len(), bound)
	ivs := make([]Interval, len(pts))
	for i, p := range pts {
		ivs[i] = pointToInterval(Point(p))
	}
	return ivs, prof, err
}

// Has reports whether the exact record (X, Y, ID) is live — the negative
// stab the per-level bloom filters serve: an absent record usually costs
// zero page reads per level; a present one costs a binary search of one
// level's data chain.
func (x *LSMIndex) Has(p Point) (bool, IOProfile, error) {
	ctr, finish := x.startOp(lsmKindName, "probe")
	bound := x.liveBound()
	ok, err := x.tr.Has(x.be.OpPager(ctr), toRec(p))
	if err != nil {
		x.abortOp(finish)
		return false, IOProfile{}, fmt.Errorf("pathcache: %w", err)
	}
	results := 0
	if ok {
		results = 1
	}
	prof, err := finish(results, x.tr.Len(), bound)
	return ok, prof, err
}

// QueryBatch answers every 2-sided query with up to workers concurrent
// goroutines; out[i] matches qs[i]. Updates may run concurrently — each
// query sees some committed state.
func (x *LSMIndex) QueryBatch(qs []TwoSidedQuery, workers int) ([][]Point, BatchStats, error) {
	out := make([][]Point, len(qs))
	bound := x.liveBound()
	st, err := runBatch(x.be, lsmKindName, "query", x.tr.Len(), len(qs), workers, bound, func(p disk.Pager) func(i int) (int, error) {
		return func(i int) (int, error) {
			pts, err := x.tr.Query(p, qs[i].A, qs[i].B)
			if err != nil {
				return 0, err
			}
			out[i] = fromRecPoints(pts)
			return len(out[i]), nil
		}
	})
	return out, st, err
}

// StabBatch answers every stabbing query concurrently; out[i] holds the
// intervals containing qs[i].
func (x *LSMIndex) StabBatch(qs []int64, workers int) ([][]Interval, BatchStats, error) {
	out := make([][]Interval, len(qs))
	bound := x.liveBound()
	st, err := runBatch(x.be, lsmKindName, "stab", x.tr.Len(), len(qs), workers, bound, func(p disk.Pager) func(i int) (int, error) {
		return func(i int) (int, error) {
			pts, err := x.tr.Stab(p, qs[i])
			if err != nil {
				return 0, err
			}
			ivs := make([]Interval, len(pts))
			for j, pt := range pts {
				ivs[j] = pointToInterval(Point(pt))
			}
			out[i] = ivs
			return len(ivs), nil
		}
	})
	return out, st, err
}

// Kind reports the registry name "lsm".
func (x *LSMIndex) Kind() string { return lsmKindName }

// Base reports the base kind's registry name — the static structure the
// levels are built with.
func (x *LSMIndex) Base() string { return x.tr.BaseName() }

// Len reports the number of live records (inserts minus deletes),
// including not-yet-flushed memtable updates.
func (x *LSMIndex) Len() int { return x.tr.Len() }

// Pages reports the storage footprint in pages: levels, WAL, manifest,
// tombstones and metadata.
func (x *LSMIndex) Pages() int { return x.be.NumPages() }

// Levels summarizes every sealed level, smallest slot first.
func (x *LSMIndex) Levels() []LSMLevel {
	infos := x.tr.LevelInfos()
	out := make([]LSMLevel, len(infos))
	for i, in := range infos {
		out[i] = LSMLevel(in)
	}
	return out
}

// MemtableLen reports the number of WAL entries since the last flush — the
// updates a reopen would replay.
func (x *LSMIndex) MemtableLen() int { return x.tr.WALEntries() }

// TombCount reports pending tombstones (deletes whose sealed copies await
// the next compaction).
func (x *LSMIndex) TombCount() int { return x.tr.TombCount() }
