package pathcache

import (
	"fmt"
	"runtime"
	"sync"
)

// This file is the parallel batch-query engine: every static (read-only)
// index type gains a *Batch method that fans a slice of queries across a
// bounded worker pool and returns the answers in input order.
//
// Work is partitioned deterministically — worker w owns queries w, w+W,
// w+2W, ... — so each worker's query/result counts depend only on the input,
// not on scheduling. I/O counters live in the store as atomics, so the
// batch-wide read/write deltas are exact even under concurrency (provided
// nothing else drives the same index during the batch).
//
// Batch methods are safe on static indexes (and on RangeIndex while no
// Insert/Delete runs); they must not race with dynamic updates.

// TwoSidedQuery is one query corner {x >= A, y >= B} for QueryBatch.
type TwoSidedQuery struct{ A, B int64 }

// ThreeSidedQuery is one query {A1 <= x <= A2, y >= B} for QueryBatch.
type ThreeSidedQuery struct{ A1, A2, B int64 }

// WorkerBatchStats is one worker's share of a batch: how many queries it
// ran and how many records they returned. The partition is by query index
// (worker w gets queries w, w+W, ...), so these numbers are deterministic.
type WorkerBatchStats struct {
	Queries int
	Results int
}

// BatchStats describes one batch execution.
type BatchStats struct {
	Workers int // workers actually used (≤ len(queries))
	Queries int
	Results int   // total records returned
	Reads   int64 // store pages read during the batch
	Writes  int64 // store pages written during the batch
	// PerWorker has one entry per worker; entries sum exactly to
	// Queries/Results.
	PerWorker []WorkerBatchStats
}

// batchWorkers clamps a requested worker count: non-positive means
// GOMAXPROCS, and a batch never uses more workers than it has queries.
func batchWorkers(n, workers int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// runBatch executes run(i) for every i in [0, n) across the given number of
// workers. run returns the result count for query i and must write its
// answer to a caller-owned slot (disjoint per i, so no synchronization is
// needed). The first error by query order aborts the batch's remaining work
// on that worker; other workers finish their partitions.
func runBatch(be *backend, n, workers int, run func(i int) (int, error)) (BatchStats, error) {
	workers = batchWorkers(n, workers)
	st := BatchStats{
		Workers:   workers,
		Queries:   n,
		PerWorker: make([]WorkerBatchStats, workers),
	}
	before := be.store.Stats()

	errs := make([]error, workers)
	errIdx := make([]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ws := &st.PerWorker[w]
			for i := w; i < n; i += workers {
				t, err := run(i)
				if err != nil {
					errs[w], errIdx[w] = err, i
					return
				}
				ws.Queries++
				ws.Results += t
			}
		}(w)
	}
	wg.Wait()

	d := be.store.Stats().Sub(before)
	st.Reads, st.Writes = d.Reads, d.Writes
	for _, ws := range st.PerWorker {
		st.Results += ws.Results
	}
	// Report the error with the smallest query index so the failure a
	// caller sees does not depend on worker scheduling.
	first, firstIdx := error(nil), n
	for w := range errs {
		if errs[w] != nil && errIdx[w] < firstIdx {
			first, firstIdx = errs[w], errIdx[w]
		}
	}
	if first != nil {
		return st, fmt.Errorf("pathcache: batch query %d: %w", firstIdx, first)
	}
	return st, nil
}

// QueryBatch answers every query with up to workers concurrent goroutines
// (workers <= 0 means GOMAXPROCS). out[i] holds the points matching qs[i],
// in input order. The index must not be mutated during the batch.
func (ix *TwoSidedIndex) QueryBatch(qs []TwoSidedQuery, workers int) ([][]Point, BatchStats, error) {
	out := make([][]Point, len(qs))
	st, err := runBatch(ix.be, len(qs), workers, func(i int) (int, error) {
		pts, err := ix.Query(qs[i].A, qs[i].B)
		if err != nil {
			return 0, err
		}
		out[i] = pts
		return len(pts), nil
	})
	return out, st, err
}

// QueryBatch answers every 3-sided query concurrently; out[i] matches qs[i].
func (ix *ThreeSidedIndex) QueryBatch(qs []ThreeSidedQuery, workers int) ([][]Point, BatchStats, error) {
	out := make([][]Point, len(qs))
	st, err := runBatch(ix.be, len(qs), workers, func(i int) (int, error) {
		pts, err := ix.Query(qs[i].A1, qs[i].A2, qs[i].B)
		if err != nil {
			return 0, err
		}
		out[i] = pts
		return len(pts), nil
	})
	return out, st, err
}

// StabBatch answers every stabbing query concurrently; out[i] holds the
// intervals containing qs[i].
func (ix *SegmentIndex) StabBatch(qs []int64, workers int) ([][]Interval, BatchStats, error) {
	out := make([][]Interval, len(qs))
	st, err := runBatch(ix.be, len(qs), workers, func(i int) (int, error) {
		ivs, err := ix.Stab(qs[i])
		if err != nil {
			return 0, err
		}
		out[i] = ivs
		return len(ivs), nil
	})
	return out, st, err
}

// StabBatch answers every stabbing query concurrently; out[i] holds the
// intervals containing qs[i].
func (ix *IntervalIndex) StabBatch(qs []int64, workers int) ([][]Interval, BatchStats, error) {
	out := make([][]Interval, len(qs))
	st, err := runBatch(ix.be, len(qs), workers, func(i int) (int, error) {
		ivs, err := ix.Stab(qs[i])
		if err != nil {
			return 0, err
		}
		out[i] = ivs
		return len(ivs), nil
	})
	return out, st, err
}

// StabBatch answers every stabbing query concurrently through the
// diagonal-corner reduction; out[i] holds the intervals containing qs[i].
func (si *StabbingIndex) StabBatch(qs []int64, workers int) ([][]Interval, BatchStats, error) {
	out := make([][]Interval, len(qs))
	st, err := runBatch(si.ix.be, len(qs), workers, func(i int) (int, error) {
		ivs, err := si.Stab(qs[i])
		if err != nil {
			return 0, err
		}
		out[i] = ivs
		return len(ivs), nil
	})
	return out, st, err
}

// SearchBatch looks up every key concurrently; out[i] holds the values
// stored under keys[i]. No Insert or Delete may run during the batch.
func (ix *RangeIndex) SearchBatch(keys []int64, workers int) ([][]uint64, BatchStats, error) {
	out := make([][]uint64, len(keys))
	st, err := runBatch(ix.be, len(keys), workers, func(i int) (int, error) {
		vals, err := ix.Search(keys[i])
		if err != nil {
			return 0, err
		}
		out[i] = vals
		return len(vals), nil
	})
	return out, st, err
}
