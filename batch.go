package pathcache

import (
	"fmt"
	"runtime"
	"sync"

	"pathcache/internal/disk"
	"pathcache/internal/engine"
	"pathcache/internal/obs"
)

// This file is the parallel batch-query engine: every static (read-only)
// index type gains a *Batch method that fans a slice of queries across a
// bounded worker pool and returns the answers in input order.
//
// Work is partitioned deterministically — worker w owns queries w, w+W,
// w+2W, ... — so each worker's query/result counts depend only on the input,
// not on scheduling. Each worker routes its page accesses through an
// op-scoped disk.Counter, so the per-worker and batch-wide I/O numbers are
// exact attributions of the work this batch caused — even when other
// batches or queries drive the same index concurrently.
//
// Batch methods are safe on static indexes (and on RangeIndex while no
// Insert/Delete runs); they must not race with dynamic updates.

// TwoSidedQuery is one query corner {x >= A, y >= B} for QueryBatch.
type TwoSidedQuery struct{ A, B int64 }

// ThreeSidedQuery is one query {A1 <= x <= A2, y >= B} for QueryBatch.
type ThreeSidedQuery struct{ A1, A2, B int64 }

// WorkerBatchStats is one worker's share of a batch. The partition is by
// query index (worker w gets queries w, w+W, ...), so Queries and Results
// are deterministic. Reads and Writes come from the worker's op counter:
// exact, but under a buffer pool they depend on what is already cached.
type WorkerBatchStats struct {
	Queries   int
	Results   int
	Reads     int64 // store pages this worker's queries read
	Writes    int64 // store pages this worker's queries wrote
	CacheHits int64 // buffer-pool hits this worker's queries scored
}

// BatchStats describes one batch execution.
type BatchStats struct {
	Workers   int // workers actually used (≤ len(queries))
	Queries   int
	Results   int   // total records returned
	Reads     int64 // store pages read for this batch (sum over PerWorker)
	Writes    int64 // store pages written for this batch (sum over PerWorker)
	CacheHits int64 // buffer-pool hits for this batch (sum over PerWorker)
	// PerWorker has one entry per worker; entries sum exactly to
	// Queries/Results/Reads/Writes/CacheHits.
	PerWorker []WorkerBatchStats
}

// batchWorkers clamps a requested worker count: non-positive means
// GOMAXPROCS, and a batch never uses more workers than it has queries.
func batchWorkers(n, workers int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// runBatch executes n queries across the given number of workers. newRun is
// called once per worker with that worker's counted pager and returns the
// function answering query i through it; the returned function reports the
// result count for i and must write its answer to a caller-owned slot
// (disjoint per i, so no synchronization is needed). The first error by
// query order aborts the batch's remaining work on that worker; other
// workers finish their partitions.
//
// Every query is additionally recorded as one metric op tagged with its
// worker — counter deltas around the query give exact per-op I/O without a
// second counting layer — and checked against the kind's theorem bound
// (idxLen records through a bound-declaring kind; bound may be nil). With
// strict bounds armed a breach aborts the worker like a query error.
func runBatch(be *engine.Backend, kindName, opName string, idxLen, n, workers int, bound obs.BoundFunc, newRun func(p disk.Pager) func(i int) (int, error)) (BatchStats, error) {
	workers = batchWorkers(n, workers)
	st := BatchStats{
		Workers:   workers,
		Queries:   n,
		PerWorker: make([]WorkerBatchStats, workers),
	}
	counters := make([]disk.Counter, workers)
	pageSize := be.Pager().PageSize()

	errs := make([]error, workers)
	errIdx := make([]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctr := &counters[w]
			run := newRun(be.OpPager(ctr))
			ws := &st.PerWorker[w]
			for i := w; i < n; i += workers {
				op := be.Obs().Begin(kindName, opName, w)
				before := ctr.Stats()
				beforeHits := ctr.Hits()
				t, err := run(i)
				after := ctr.Stats()
				m := obs.Measure{
					Reads:     after.Reads - before.Reads,
					Writes:    after.Writes - before.Writes,
					CacheHits: ctr.Hits() - beforeHits,
					Results:   t,
				}
				if err != nil {
					be.Obs().End(op, m) // close the op; the query error wins
					errs[w], errIdx[w] = err, i
					return
				}
				m.Bound = evalBound(bound, pageSize, idxLen, t)
				if _, serr := be.Obs().End(op, m); serr != nil {
					errs[w], errIdx[w] = publicErr(serr), i
					return
				}
				ws.Queries++
				ws.Results += t
			}
		}(w)
	}
	wg.Wait()

	for w := range st.PerWorker {
		ws := &st.PerWorker[w]
		cs := counters[w].Stats()
		ws.Reads, ws.Writes, ws.CacheHits = cs.Reads, cs.Writes, counters[w].Hits()
		st.Results += ws.Results
		st.Reads += ws.Reads
		st.Writes += ws.Writes
		st.CacheHits += ws.CacheHits
	}
	// Report the error with the smallest query index so the failure a
	// caller sees does not depend on worker scheduling.
	first, firstIdx := error(nil), n
	for w := range errs {
		if errs[w] != nil && errIdx[w] < firstIdx {
			first, firstIdx = errs[w], errIdx[w]
		}
	}
	if first != nil {
		return st, fmt.Errorf("pathcache: batch query %d: %w", firstIdx, first)
	}
	return st, nil
}

// QueryBatch answers every query with up to workers concurrent goroutines
// (workers <= 0 means GOMAXPROCS). out[i] holds the points matching qs[i],
// in input order. The index must not be mutated during the batch.
func (ix *TwoSidedIndex) QueryBatch(qs []TwoSidedQuery, workers int) ([][]Point, BatchStats, error) {
	out := make([][]Point, len(qs))
	st, err := runBatch(ix.be, ix.Kind(), "query", ix.idx.Len(), len(qs), workers, boundFor(ix.kind), func(p disk.Pager) func(i int) (int, error) {
		view := ix.idx.WithPager(p)
		return func(i int) (int, error) {
			pts, _, err := view.Query(qs[i].A, qs[i].B)
			if err != nil {
				return 0, err
			}
			out[i] = fromRecPoints(pts)
			return len(out[i]), nil
		}
	})
	return out, st, err
}

// QueryBatch answers every 3-sided query concurrently; out[i] matches qs[i].
func (ix *ThreeSidedIndex) QueryBatch(qs []ThreeSidedQuery, workers int) ([][]Point, BatchStats, error) {
	out := make([][]Point, len(qs))
	st, err := runBatch(ix.be, ix.Kind(), "query", ix.idx.Len(), len(qs), workers, boundFor(kindThreeSide), func(p disk.Pager) func(i int) (int, error) {
		view := ix.idx.WithPager(p)
		return func(i int) (int, error) {
			pts, _, err := view.Query(qs[i].A1, qs[i].A2, qs[i].B)
			if err != nil {
				return 0, err
			}
			out[i] = fromRecPoints(pts)
			return len(out[i]), nil
		}
	})
	return out, st, err
}

// StabBatch answers every stabbing query concurrently; out[i] holds the
// intervals containing qs[i].
func (ix *SegmentIndex) StabBatch(qs []int64, workers int) ([][]Interval, BatchStats, error) {
	out := make([][]Interval, len(qs))
	st, err := runBatch(ix.be, ix.Kind(), "stab", ix.idx.Len(), len(qs), workers, boundFor(kindSegment), func(p disk.Pager) func(i int) (int, error) {
		view := ix.idx.WithPager(p)
		return func(i int) (int, error) {
			ivs, _, err := view.Stab(qs[i])
			if err != nil {
				return 0, err
			}
			out[i] = fromRecIntervals(ivs)
			return len(out[i]), nil
		}
	})
	return out, st, err
}

// StabBatch answers every stabbing query concurrently; out[i] holds the
// intervals containing qs[i].
func (ix *IntervalIndex) StabBatch(qs []int64, workers int) ([][]Interval, BatchStats, error) {
	out := make([][]Interval, len(qs))
	st, err := runBatch(ix.be, ix.Kind(), "stab", ix.idx.Len(), len(qs), workers, boundFor(kindInterval), func(p disk.Pager) func(i int) (int, error) {
		view := ix.idx.WithPager(p)
		return func(i int) (int, error) {
			ivs, _, err := view.Stab(qs[i])
			if err != nil {
				return 0, err
			}
			out[i] = fromRecIntervals(ivs)
			return len(out[i]), nil
		}
	})
	return out, st, err
}

// StabBatch answers every stabbing query concurrently through the
// diagonal-corner reduction; out[i] holds the intervals containing qs[i].
func (si *StabbingIndex) StabBatch(qs []int64, workers int) ([][]Interval, BatchStats, error) {
	out := make([][]Interval, len(qs))
	st, err := runBatch(si.be, si.Kind(), "stab", si.ix.idx.Len(), len(qs), workers, boundFor(kindStabbing), func(p disk.Pager) func(i int) (int, error) {
		view := si.ix.idx.WithPager(p)
		return func(i int) (int, error) {
			pts, _, err := view.Query(-qs[i], qs[i])
			if err != nil {
				return 0, err
			}
			ivs := make([]Interval, len(pts))
			for j, pt := range pts {
				ivs[j] = pointToInterval(Point(pt))
			}
			out[i] = ivs
			return len(ivs), nil
		}
	})
	return out, st, err
}

// WindowQuery is one 4-sided query {x1 <= X <= x2, y1 <= Y <= y2} for
// WindowIndex.QueryBatch.
type WindowQuery struct{ X1, X2, Y1, Y2 int64 }

// QueryBatch answers every window query concurrently; out[i] matches qs[i].
func (ix *WindowIndex) QueryBatch(qs []WindowQuery, workers int) ([][]Point, BatchStats, error) {
	out := make([][]Point, len(qs))
	st, err := runBatch(ix.be, ix.Kind(), "query", ix.idx.Len(), len(qs), workers, boundFor(kindWindow), func(p disk.Pager) func(i int) (int, error) {
		view := ix.idx.WithPager(p)
		return func(i int) (int, error) {
			pts, _, err := view.Query(qs[i].X1, qs[i].X2, qs[i].Y1, qs[i].Y2)
			if err != nil {
				return 0, err
			}
			out[i] = fromRecPoints(pts)
			return len(out[i]), nil
		}
	})
	return out, st, err
}

// SearchBatch looks up every key concurrently; out[i] holds the values
// stored under keys[i]. No Insert or Delete may run during the batch.
func (ix *RangeIndex) SearchBatch(keys []int64, workers int) ([][]uint64, BatchStats, error) {
	out := make([][]uint64, len(keys))
	st, err := runBatch(ix.be, rangeKindName, "search", ix.idx.Len(), len(keys), workers, obs.LogBBound, func(p disk.Pager) func(i int) (int, error) {
		view := ix.idx.WithPager(p)
		return func(i int) (int, error) {
			vals, err := view.Search(keys[i])
			if err != nil {
				return 0, err
			}
			out[i] = vals
			return len(vals), nil
		}
	})
	return out, st, err
}
