package pathcache

import (
	"errors"
	"reflect"
	"testing"

	"pathcache/internal/disk"
	"pathcache/internal/workload"
)

// faultIndex adapts one public index type to the generic fault-injection
// harness: build it over a fault pager, run one fixed query.
type faultIndex struct {
	name  string
	build func(opts *Options) (query func() (int, error), err error)
}

// newFaultOptions returns Options whose pager is wrapped in a FaultPager
// (captured in fp) with an initially unlimited budget.
func newFaultOptions(fp **disk.FaultPager) *Options {
	return &Options{
		PageSize: 512,
		WrapPager: func(p disk.Pager) disk.Pager {
			*fp = disk.NewFaultPager(p, 1<<40)
			return *fp
		},
	}
}

// TestPublicFaultInjection drives every static public index type through
// injected I/O failures: queries must return an error wrapping
// disk.ErrInjected — never panic — and once the fault clears, answers must
// match the fault-free reference exactly (no state corrupted by the failed
// attempts). This extends the fault coverage of internal/dynpst (and the
// internal ext* packages) to the public API layer, including the
// wrapped-error contract of the pathcache package.
func TestPublicFaultInjection(t *testing.T) {
	pts := uniformPoints(2_000, 100_000, 931)
	ivs := uniformIntervals(2_000, 100_000, 8_000, 933)
	q2 := workload.TwoSidedQueries(1, 100_000, 0.05, 935)[0]
	q3 := workload.ThreeSidedQueries(1, 100_000, 0.3, 0.05, 937)[0]
	stab := workload.StabQueries(1, 100_000, 939)[0]

	cases := []faultIndex{
		{"twosided-iko", func(opts *Options) (func() (int, error), error) {
			ix, err := NewTwoSidedIndex(pts, SchemeIKO, opts)
			if err != nil {
				return nil, err
			}
			return func() (int, error) { r, err := ix.Query(q2.A, q2.B); return len(r), err }, nil
		}},
		{"twosided-segmented", func(opts *Options) (func() (int, error), error) {
			ix, err := NewTwoSidedIndex(pts, SchemeSegmented, opts)
			if err != nil {
				return nil, err
			}
			return func() (int, error) { r, err := ix.Query(q2.A, q2.B); return len(r), err }, nil
		}},
		{"twosided-twolevel", func(opts *Options) (func() (int, error), error) {
			ix, err := NewTwoSidedIndex(pts, SchemeTwoLevel, opts)
			if err != nil {
				return nil, err
			}
			return func() (int, error) { r, err := ix.Query(q2.A, q2.B); return len(r), err }, nil
		}},
		{"threeside", func(opts *Options) (func() (int, error), error) {
			ix, err := NewThreeSidedIndex(pts, opts)
			if err != nil {
				return nil, err
			}
			return func() (int, error) { r, err := ix.Query(q3.A1, q3.A2, q3.B); return len(r), err }, nil
		}},
		{"segment", func(opts *Options) (func() (int, error), error) {
			ix, err := NewSegmentIndex(ivs, true, opts)
			if err != nil {
				return nil, err
			}
			return func() (int, error) { r, err := ix.Stab(stab); return len(r), err }, nil
		}},
		{"stabbing", func(opts *Options) (func() (int, error), error) {
			ix, err := NewStabbingIndex(ivs, SchemeSegmented, opts)
			if err != nil {
				return nil, err
			}
			return func() (int, error) { r, err := ix.Stab(stab); return len(r), err }, nil
		}},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var fp *disk.FaultPager
			query, err := tc.build(newFaultOptions(&fp))
			if err != nil {
				t.Fatal(err)
			}
			if fp == nil {
				t.Fatal("WrapPager hook never ran")
			}
			// Fault-free reference, and the per-query operation count.
			before := fp.Remaining()
			want, err := query()
			if err != nil {
				t.Fatal(err)
			}
			used := before - fp.Remaining()
			budgets := []int64{0, 1, 2}
			if used > 3 {
				budgets = append(budgets, used/2, used-1)
			}
			for _, budget := range budgets {
				fp.SetBudget(budget)
				if _, err := query(); !errors.Is(err, disk.ErrInjected) {
					t.Fatalf("budget %d/%d: err=%v, want ErrInjected", budget, used, err)
				}
			}
			// Restoring the budget restores correct answers.
			fp.SetBudget(1 << 40)
			got, err := query()
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("results changed after failed queries: got %d, want %d", got, want)
			}
		})
	}
}

// Builds must also surface injected faults as errors, not panics, through
// the public constructors.
func TestPublicBuildFaultInjection(t *testing.T) {
	pts := uniformPoints(1_000, 100_000, 941)
	ivs := uniformIntervals(1_000, 100_000, 8_000, 943)
	builders := map[string]func(opts *Options) error{
		"twosided": func(opts *Options) error {
			_, err := NewTwoSidedIndex(pts, SchemeSegmented, opts)
			return err
		},
		"threeside": func(opts *Options) error {
			_, err := NewThreeSidedIndex(pts, opts)
			return err
		},
		"segment": func(opts *Options) error {
			_, err := NewSegmentIndex(ivs, true, opts)
			return err
		},
		"stabbing": func(opts *Options) error {
			_, err := NewStabbingIndex(ivs, SchemeSegmented, opts)
			return err
		},
	}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			for _, budget := range []int64{0, 1, 5, 50} {
				opts := &Options{PageSize: 512, WrapPager: func(p disk.Pager) disk.Pager {
					return disk.NewFaultPager(p, budget)
				}}
				if err := build(opts); !errors.Is(err, disk.ErrInjected) {
					t.Fatalf("budget %d: err=%v, want ErrInjected", budget, err)
				}
			}
		})
	}
}

// A faulted query must not poison a later query for a *different* range:
// per-query scratch state stays isolated.
func TestPublicFaultIsolationAcrossQueries(t *testing.T) {
	pts := uniformPoints(2_000, 100_000, 945)
	var fp *disk.FaultPager
	ix, err := NewTwoSidedIndex(pts, SchemeSegmented, newFaultOptions(&fp))
	if err != nil {
		t.Fatal(err)
	}
	qs := workload.TwoSidedQueries(8, 100_000, 0.02, 947)
	want := make([][]Point, len(qs))
	for i, q := range qs {
		if want[i], err = ix.Query(q.A, q.B); err != nil {
			t.Fatal(err)
		}
	}
	for i, q := range qs {
		fp.SetBudget(int64(i % 4))
		if _, err := ix.Query(q.A, q.B); !errors.Is(err, disk.ErrInjected) {
			t.Fatalf("query %d: err=%v, want ErrInjected", i, err)
		}
		fp.SetBudget(1 << 40)
		got, err := ix.Query(qs[(i+1)%len(qs)].A, qs[(i+1)%len(qs)].B)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want[(i+1)%len(qs)]) {
			t.Fatalf("query after fault %d returned different results", i)
		}
	}
}
