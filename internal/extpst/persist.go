package extpst

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"

	"pathcache/internal/disk"
	"pathcache/internal/record"
	"pathcache/internal/skeletal"
)

// Meta is the reopen metadata of a flat (IKO/Basic/Segmented) tree. The
// recursive schemes keep per-region sub-structure tables in memory and are
// not persistable; rebuild them on open.
type Meta struct {
	Scheme     Scheme
	N          int
	SegLen     int
	BlockPages int
	APages     int
	SPages     int
	Skel       skeletal.Meta
}

const metaMagic = uint32(0x70737431) // "pst1"

// Meta returns the tree's reopen metadata.
func (t *Tree) Meta() Meta {
	return Meta{
		Scheme:     t.scheme,
		N:          t.n,
		SegLen:     t.segLen,
		BlockPages: t.blockPages,
		APages:     t.aPages,
		SPages:     t.sPages,
		Skel:       t.skel.Meta(),
	}
}

// Encode serializes the meta.
func (m Meta) Encode() []byte {
	buf := make([]byte, 0, 64)
	var hdr [28]byte
	binary.LittleEndian.PutUint32(hdr[0:], metaMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(m.Scheme))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(m.N))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(m.BlockPages))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(m.APages))
	binary.LittleEndian.PutUint32(hdr[20:], uint32(m.SPages))
	binary.LittleEndian.PutUint32(hdr[24:], uint32(m.SegLen))
	buf = append(buf, hdr[:]...)
	return m.Skel.Append(buf)
}

// DecodeMeta deserializes a meta blob produced by Encode.
func DecodeMeta(buf []byte) (Meta, error) {
	if len(buf) < 28 {
		return Meta{}, errors.New("extpst: truncated meta")
	}
	if binary.LittleEndian.Uint32(buf[0:]) != metaMagic {
		return Meta{}, errors.New("extpst: bad meta magic")
	}
	m := Meta{
		Scheme:     Scheme(binary.LittleEndian.Uint32(buf[4:])),
		N:          int(int32(binary.LittleEndian.Uint32(buf[8:]))),
		BlockPages: int(int32(binary.LittleEndian.Uint32(buf[12:]))),
		APages:     int(int32(binary.LittleEndian.Uint32(buf[16:]))),
		SPages:     int(int32(binary.LittleEndian.Uint32(buf[20:]))),
		SegLen:     int(int32(binary.LittleEndian.Uint32(buf[24:]))),
	}
	var err error
	m.Skel, _, err = skeletal.DecodeMeta(buf[28:])
	return m, err
}

// Reopen attaches to a previously built tree persisted on p.
func Reopen(p disk.Pager, m Meta) (*Tree, error) {
	switch m.Scheme {
	case IKO, Basic, Segmented:
	default:
		return nil, fmt.Errorf("extpst: scheme %v is not persistable", m.Scheme)
	}
	b := disk.ChainCap(p.PageSize(), record.PointSize)
	if b < 2 {
		return nil, fmt.Errorf("extpst: page size %d too small", p.PageSize())
	}
	if m.Skel.PayloadSize != payloadSize {
		return nil, fmt.Errorf("extpst: payload size %d, want %d (format drift)", m.Skel.PayloadSize, payloadSize)
	}
	t := &Tree{
		pager:      p,
		scheme:     m.Scheme,
		b:          b,
		n:          m.N,
		blockPages: m.BlockPages,
		aPages:     m.APages,
		sPages:     m.SPages,
	}
	t.segLen = segLenFor(b)
	if m.SegLen > 0 {
		t.segLen = m.SegLen
	}
	skel, err := skeletal.Reopen(p, m.Skel)
	if err != nil {
		return nil, err
	}
	t.skel = skel
	return t, nil
}

// segLenFor is the chunk length used at build time for page capacity b:
// floor(log2 b), at least 1.
func segLenFor(b int) int {
	s := bits.Len(uint(b)) - 1
	if s < 1 {
		return 1
	}
	return s
}
