package extpst

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"

	"pathcache/internal/disk"
	"pathcache/internal/pstcore"
	"pathcache/internal/record"
	"pathcache/internal/skeletal"
)

// PointIndex is the query interface shared by the flat schemes (Tree) and
// the recursive region schemes (Hierarchical).
type PointIndex interface {
	// Query reports every indexed point with x >= a and y >= b.
	Query(a, b int64) ([]record.Point, QueryStats, error)
	// Len reports the number of indexed points.
	Len() int
	// TotalPages reports the storage footprint in pages.
	TotalPages() int
	// WithPager returns a read-only view of the index whose queries go
	// through p — the hook for per-operation I/O attribution: give each
	// concurrent operation a view over disk.WithCounter(pager, c).
	WithPager(p disk.Pager) PointIndex
}

// Hierarchical is the recursive scheme of Section 4. With two levels it is
// the structure of Theorem 4.3: a top-level priority search tree over
// regions of B·log B points, each region carrying X-, Y-, A- and S-lists
// plus a second-level Basic tree, for O((n/B)·log log B) pages and
// O(log_B n + t/B) queries. More levels shrink the region factor to
// log log B, log log log B, ... giving Theorem 4.4's O((n/B)·log* B) space
// at the cost of an O(log* B) additive query term.
type Hierarchical struct {
	pager  disk.Pager
	b      int
	levels int
	root   PointIndex
	n      int
}

// Region node payload layout (128 bytes):
//
//	0   regionIdx     uint32  index into the level's sub-structure table
//	4   count         uint32  points in this region
//	8   minY          int64
//	16  leftMinY      int64   child region's minY (MinInt64 when absent)
//	24  rightMinY     int64
//	32  xHead1 int64 / 40 xCount1 uint32    first X block (top B by x)
//	44  xHead2 int64 / 52 xCount2 uint32    X tail
//	56  yHead1 int64 / 64 yCount1 uint32    first Y block (top B by y)
//	68  yHead2 int64 / 76 yCount2 uint32    Y tail
//	80  aHead  int64 / 88 aCount  uint32    ancestor cache (x-descending)
//	92  sHead  int64 / 100 sCount uint32    sibling cache (y-descending)
//	104 firstXMin     int64   min x within the first X block
//	112 leftFirstYMin int64   child's first-Y-block min y (MinInt64 absent)
//	120 rightFirstYMin int64
const regionPayloadSize = 128

// regionTree is one level of the hierarchy: a PST over regions.
type regionTree struct {
	pager     disk.Pager
	b         int
	segLen    int
	skel      *skeletal.Tree
	subs      []PointIndex // indexed by regionIdx
	listPages int
	n         int
}

// BuildTwoLevel constructs the Theorem 4.3 structure (two levels).
func BuildTwoLevel(p disk.Pager, pts []record.Point) (*Hierarchical, error) {
	return BuildHierarchical(p, pts, 2)
}

// BuildMultilevel constructs the Theorem 4.4 structure, recursing until the
// region factor bottoms out (log* B levels).
func BuildMultilevel(p disk.Pager, pts []record.Point) (*Hierarchical, error) {
	return BuildHierarchical(p, pts, math.MaxInt32)
}

// BuildHierarchical constructs a scheme with at most `levels` levels:
// levels=1 degenerates to the Basic flat tree, levels=2 is the two-level
// scheme, and higher values recurse with shrinking region factors.
func BuildHierarchical(p disk.Pager, pts []record.Point, levels int) (*Hierarchical, error) {
	if levels < 1 {
		return nil, fmt.Errorf("extpst: levels %d < 1", levels)
	}
	b := disk.ChainCap(p.PageSize(), record.PointSize)
	if b < 2 {
		return nil, fmt.Errorf("extpst: page size %d holds %d points; need >= 2", p.PageSize(), b)
	}
	h := &Hierarchical{pager: p, b: b, levels: levels, n: len(pts)}
	root, err := buildLevel(p, b, pts, 1, levels)
	if err != nil {
		return nil, err
	}
	h.root = root
	return h, nil
}

// iterFactor returns g_level: log B, log log B, ... (floored at 1).
func iterFactor(b, level int) int {
	g := b
	for i := 0; i < level; i++ {
		g = bits.Len(uint(g)) - 1
		if g <= 1 {
			return 1
		}
	}
	return g
}

// buildLevel builds one level of the hierarchy over pts.
func buildLevel(p disk.Pager, b int, pts []record.Point, level, maxLevels int) (PointIndex, error) {
	g := iterFactor(b, level)
	regionCap := b * g
	if level >= maxLevels || g <= 1 || len(pts) <= regionCap {
		return Build(p, pts, Basic)
	}
	rt := &regionTree{pager: p, b: b, n: len(pts)}
	rt.segLen = bits.Len(uint(b)) - 1
	if rt.segLen < 1 {
		rt.segLen = 1
	}
	mem := pstcore.Build(pstcore.SortedAsc(pts), regionCap)
	bn, err := rt.persistRegion(mem, level, maxLevels, 0, nil, nil)
	if err != nil {
		return nil, err
	}
	skel, err := skeletal.Build(p, bn, regionPayloadSize)
	if err != nil {
		return nil, err
	}
	rt.skel = skel
	return rt, nil
}

// regionLists holds the per-region data needed by descendants during the
// build DFS.
type regionLists struct {
	firstX []record.Point // top B by x (descending)
	firstY []record.Point // top B by y (descending)
}

// persistRegion writes one region node: its X/Y lists, its A/S caches built
// from ancestor/sibling first blocks, and its sub-structure.
func (rt *regionTree) persistRegion(n *pstcore.MemNode, level, maxLevels, depth int, ancestors []regionLists, sibs []*regionLists) (*skeletal.BuildNode, error) {
	b := rt.b
	// X ordering.
	byX := append([]record.Point(nil), n.Pts...)
	pstcore.SortByXDesc(byX)
	fx := byX
	if len(fx) > b {
		fx = fx[:b]
	}
	xHead1, pages1, err := disk.WriteChain(rt.pager, record.PointSize, record.EncodePoints(fx))
	if err != nil {
		return nil, err
	}
	xTail := byX[len(fx):]
	xHead2, pages2, err := disk.WriteChain(rt.pager, record.PointSize, record.EncodePoints(xTail))
	if err != nil {
		return nil, err
	}
	rt.listPages += pages1 + pages2

	// Y ordering (n.Pts is already y-descending from buildMem).
	fy := n.Pts
	if len(fy) > b {
		fy = fy[:b]
	}
	yHead1, pages1, err := disk.WriteChain(rt.pager, record.PointSize, record.EncodePoints(fy))
	if err != nil {
		return nil, err
	}
	yTail := n.Pts[len(fy):]
	yHead2, pages2, err := disk.WriteChain(rt.pager, record.PointSize, record.EncodePoints(yTail))
	if err != nil {
		return nil, err
	}
	rt.listPages += pages1 + pages2

	// A/S caches from the chunk's ancestor/sibling first blocks.
	cs := (depth / rt.segLen) * rt.segLen
	var aPts, sPts []record.Point
	for i := cs; i < depth; i++ {
		aPts = append(aPts, ancestors[i].firstX...)
		if sibs[i] != nil {
			sPts = append(sPts, sibs[i].firstY...)
		}
	}
	pstcore.SortByXDesc(aPts)
	aHead, pagesA, err := disk.WriteChain(rt.pager, record.PointSize, record.EncodePoints(aPts))
	if err != nil {
		return nil, err
	}
	pstcore.SortByYDesc(sPts)
	sHead, pagesS, err := disk.WriteChain(rt.pager, record.PointSize, record.EncodePoints(sPts))
	if err != nil {
		return nil, err
	}
	rt.listPages += pagesA + pagesS

	// Sub-structure over this region's points.
	sub, err := buildLevel(rt.pager, b, n.Pts, level+1, maxLevels)
	if err != nil {
		return nil, err
	}
	regionIdx := len(rt.subs)
	rt.subs = append(rt.subs, sub)

	payload := make([]byte, regionPayloadSize)
	binary.LittleEndian.PutUint32(payload[0:], uint32(regionIdx))
	binary.LittleEndian.PutUint32(payload[4:], uint32(len(n.Pts)))
	binary.LittleEndian.PutUint64(payload[8:], uint64(n.MinY))
	putChildMinY(payload[16:], n.Left)
	putChildMinY(payload[24:], n.Right)
	putRegionList(payload[32:], xHead1, len(fx))
	putRegionList(payload[44:], xHead2, len(xTail))
	putRegionList(payload[56:], yHead1, len(fy))
	putRegionList(payload[68:], yHead2, len(yTail))
	putRegionList(payload[80:], aHead, len(aPts))
	putRegionList(payload[92:], sHead, len(sPts))
	binary.LittleEndian.PutUint64(payload[104:], uint64(fx[len(fx)-1].X))
	putChildFirstYMin(payload[112:], n.Left, b)
	putChildFirstYMin(payload[120:], n.Right, b)

	bn := &skeletal.BuildNode{Key: n.Split, Payload: payload}
	mine := regionLists{firstX: fx, firstY: fy}
	ancestors = append(ancestors, mine)
	if n.Left != nil {
		var rightLists *regionLists
		if n.Right != nil {
			rfy := n.Right.Pts
			if len(rfy) > b {
				rfy = rfy[:b]
			}
			rightLists = &regionLists{firstY: rfy}
		}
		bn.Left, err = rt.persistRegion(n.Left, level, maxLevels, depth+1, ancestors, append(sibs, rightLists))
		if err != nil {
			return nil, err
		}
	}
	if n.Right != nil {
		bn.Right, err = rt.persistRegion(n.Right, level, maxLevels, depth+1, ancestors, append(sibs, nil))
		if err != nil {
			return nil, err
		}
	}
	return bn, nil
}

func putRegionList(buf []byte, head disk.PageID, count int) {
	binary.LittleEndian.PutUint64(buf[0:8], uint64(head))
	binary.LittleEndian.PutUint32(buf[8:12], uint32(count))
}

func putChildFirstYMin(buf []byte, c *pstcore.MemNode, b int) {
	v := int64(math.MinInt64)
	if c != nil {
		fy := c.Pts
		if len(fy) > b {
			fy = fy[:b]
		}
		v = fy[len(fy)-1].Y
	}
	binary.LittleEndian.PutUint64(buf, uint64(v))
}

// Region payload accessors.
func rpRegionIdx(p []byte) int        { return int(binary.LittleEndian.Uint32(p[0:])) }
func rpMinY(p []byte) int64           { return int64(binary.LittleEndian.Uint64(p[8:])) }
func rpLeftMinY(p []byte) int64       { return int64(binary.LittleEndian.Uint64(p[16:])) }
func rpRightMinY(p []byte) int64      { return int64(binary.LittleEndian.Uint64(p[24:])) }
func rpFirstXMin(p []byte) int64      { return int64(binary.LittleEndian.Uint64(p[104:])) }
func rpLeftFirstYMin(p []byte) int64  { return int64(binary.LittleEndian.Uint64(p[112:])) }
func rpRightFirstYMin(p []byte) int64 { return int64(binary.LittleEndian.Uint64(p[120:])) }
func rpList(p []byte, off int) (disk.PageID, int) {
	return disk.PageID(binary.LittleEndian.Uint64(p[off:])), int(binary.LittleEndian.Uint32(p[off+8:]))
}

// List offsets within the region payload.
const (
	offX1 = 32
	offX2 = 44
	offY1 = 56
	offY2 = 68
	offA  = 80
	offS  = 92
)

// Query implements PointIndex for the hierarchy root.
func (h *Hierarchical) Query(a, b int64) ([]record.Point, QueryStats, error) {
	if h.n == 0 {
		return nil, QueryStats{}, nil
	}
	return h.root.Query(a, b)
}

// Len reports the number of indexed points.
func (h *Hierarchical) Len() int { return h.n }

// TotalPages reports the storage footprint of all levels in pages.
func (h *Hierarchical) TotalPages() int {
	if h.n == 0 {
		return 0
	}
	return h.root.TotalPages()
}

// Levels reports the requested maximum level count.
func (h *Hierarchical) Levels() int { return h.levels }

// B reports the page capacity in points.
func (h *Hierarchical) B() int { return h.b }

// WithPager implements PointIndex: the view rewires every level of the
// hierarchy (each region's skeleton and sub-structure) onto p, so one
// operation's reads are attributed wherever in the recursion they happen.
func (h *Hierarchical) WithPager(p disk.Pager) PointIndex {
	c := *h
	c.pager = p
	if c.root != nil {
		c.root = h.root.WithPager(p)
	}
	return &c
}

// WithPager implements PointIndex for one level: the region skeleton and
// every region's sub-structure are rewired onto p.
func (rt *regionTree) WithPager(p disk.Pager) PointIndex {
	c := *rt
	c.pager = p
	c.skel = rt.skel.WithPager(p)
	if len(rt.subs) > 0 {
		c.subs = make([]PointIndex, len(rt.subs))
		for i, sub := range rt.subs {
			c.subs[i] = sub.WithPager(p)
		}
	}
	return &c
}

// Len implements PointIndex.
func (rt *regionTree) Len() int { return rt.n }

// TotalPages implements PointIndex, including all sub-structures.
func (rt *regionTree) TotalPages() int {
	total := rt.skel.NumPages() + rt.listPages
	for _, sub := range rt.subs {
		total += sub.TotalPages()
	}
	return total
}
