// Package extpst implements the paper's external priority search trees for
// 2-sided queries {x >= a, y >= b} (Sections 3 and 4).
//
// Four static schemes share one binary priority-search-tree skeleton and
// differ in what they cache:
//
//   - IKO: the baseline of Icking, Klein and Ottmann. Each binary node
//     stores its top-B points; a query reads every node block on the corner
//     path and every right-sibling block directly, costing O(log n + t/B)
//     I/Os with O(n/B) pages.
//   - Basic (Lemma 3.1): every node carries an A-list (all ancestor points,
//     sorted by decreasing x) and an S-list (all right-sibling points,
//     sorted by decreasing y). Queries cost O(log_B n + t/B) I/Os; storage
//     grows to O((n/B)·log n) pages.
//   - Segmented (Theorem 3.2): the root-to-node path is cut into log B
//     sized chunks and each node's lists cover only its own chunk. Queries
//     walk O(log_B n) chunk boundaries, still O(log_B n + t/B) I/Os, with
//     storage O((n/B)·log B) pages.
//   - TwoLevel and Multilevel (Theorems 4.3/4.4) live in twolevel.go.
//
// Terminology follows Figure 4: the corner is the deepest node on the x=a
// descent whose region still reaches y >= b; nodes above it are ancestors;
// right children hanging off the descent are siblings; their subtrees are
// descendants and pay for themselves.
package extpst

import (
	"encoding/binary"
	"fmt"
	"math"

	"pathcache/internal/disk"
	"pathcache/internal/pstcore"
	"pathcache/internal/record"
	"pathcache/internal/skeletal"
)

// Scheme selects the caching construction.
type Scheme int

// Schemes.
const (
	// IKO stores no caches (the prior-work baseline).
	IKO Scheme = iota
	// Basic stores full-path A/S-lists at every node (Lemma 3.1).
	Basic
	// Segmented stores per-chunk A/S-lists (Theorem 3.2).
	Segmented
)

func (s Scheme) String() string {
	switch s {
	case IKO:
		return "iko"
	case Basic:
		return "basic"
	case Segmented:
		return "segmented"
	default:
		return fmt.Sprintf("scheme(%d)", int(s))
	}
}

// Node payload layout (60 bytes):
//
//	0  blockHead   int64   chain of this node's top-B points (y-descending)
//	8  blockCount  uint32
//	12 minY        int64   minimum y among stored points
//	20 leftMinY    int64   left child's minY (MinInt64 if absent)
//	28 rightMinY   int64   right child's minY (MinInt64 if absent)
//	36 aHead       int64   A-list chain (x-descending)
//	44 aCount      uint32
//	48 sHead       int64   S-list chain (y-descending)
//	56 sCount      uint32
const payloadSize = 60

// Tree is a static external priority search tree.
type Tree struct {
	pager  disk.Pager
	scheme Scheme
	skel   *skeletal.Tree
	b      int // points per page
	segLen int // chunk length in tree levels (Segmented only)
	n      int

	blockPages int
	aPages     int
	sPages     int
}

// QueryStats profiles one 2-sided query.
type QueryStats struct {
	PathPages   int // skeletal pages read during the corner descent
	ListPages   int // pages read from blocks, A-lists and S-lists
	UsefulIOs   int
	WastefulIOs int
	Results     int
}

// Build constructs a tree over pts with the given scheme under
// disk.LayoutSorted. The input slice is not modified.
func Build(p disk.Pager, pts []record.Point, scheme Scheme) (*Tree, error) {
	return BuildChunkedLayout(p, pts, scheme, 0, disk.LayoutSorted)
}

// BuildLayout is Build with an explicit skeletal page layout.
func BuildLayout(p disk.Pager, pts []record.Point, scheme Scheme, layout disk.Layout) (*Tree, error) {
	return BuildChunkedLayout(p, pts, scheme, 0, layout)
}

// BuildChunked is Build with an explicit cache chunk length in tree levels
// (0 means the default, floor(log2 B)). It is the ablation knob for
// Theorem 3.2's choice of log B-sized path segments: shorter chunks mean
// smaller caches but more chunk boundaries per query, longer chunks the
// reverse, with Basic as the limiting case.
func BuildChunked(p disk.Pager, pts []record.Point, scheme Scheme, chunkLen int) (*Tree, error) {
	return BuildChunkedLayout(p, pts, scheme, chunkLen, disk.LayoutSorted)
}

// BuildChunkedLayout is BuildChunked with an explicit skeletal page layout.
func BuildChunkedLayout(p disk.Pager, pts []record.Point, scheme Scheme, chunkLen int, layout disk.Layout) (*Tree, error) {
	b := disk.ChainCap(p.PageSize(), record.PointSize)
	if b < 2 {
		return nil, fmt.Errorf("extpst: page size %d holds %d points; need >= 2", p.PageSize(), b)
	}
	if chunkLen < 0 {
		return nil, fmt.Errorf("extpst: negative chunk length %d", chunkLen)
	}
	t := &Tree{pager: p, scheme: scheme, b: b, n: len(pts)}
	t.segLen = segLenFor(b)
	if chunkLen > 0 {
		t.segLen = chunkLen
	}
	root := pstcore.Build(pstcore.SortedAsc(pts), b)
	bn, err := t.persist(root, 0, nil, nil)
	if err != nil {
		return nil, err
	}
	skel, err := skeletal.BuildLayout(p, bn, payloadSize, layout)
	if err != nil {
		return nil, err
	}
	t.skel = skel
	return t, nil
}

// chunkStart returns the first level of the chunk containing depth.
func (t *Tree) chunkStart(depth int) int {
	if t.scheme == Basic {
		return 0
	}
	return (depth / t.segLen) * t.segLen
}

// persist writes node chains depth-first and assembles the skeletal tree.
// ancestors[i] holds the points of the depth-i ancestor; sibs[i] holds the
// points of the right sibling hanging off the path at level i (nil when the
// path went right there).
func (t *Tree) persist(n *pstcore.MemNode, depth int, ancestors, sibs [][]record.Point) (*skeletal.BuildNode, error) {
	if n == nil {
		return nil, nil
	}
	blockHead, pages, err := disk.WriteChain(t.pager, record.PointSize, record.EncodePoints(n.Pts))
	if err != nil {
		return nil, err
	}
	t.blockPages += pages

	payload := make([]byte, payloadSize)
	binary.LittleEndian.PutUint64(payload[0:], uint64(blockHead))
	binary.LittleEndian.PutUint32(payload[8:], uint32(len(n.Pts)))
	binary.LittleEndian.PutUint64(payload[12:], uint64(n.MinY))
	putChildMinY(payload[20:], n.Left)
	putChildMinY(payload[28:], n.Right)
	invalid := int64(disk.InvalidPage)
	binary.LittleEndian.PutUint64(payload[36:], uint64(invalid))
	binary.LittleEndian.PutUint64(payload[48:], uint64(invalid))

	if t.scheme != IKO && depth > 0 {
		cs := t.chunkStart(depth)
		var aPts, sPts []record.Point
		for i := cs; i < depth; i++ {
			aPts = append(aPts, ancestors[i]...)
			if sibs[i] != nil {
				sPts = append(sPts, sibs[i]...)
			}
		}
		pstcore.SortByXDesc(aPts)
		aHead, pages, err := disk.WriteChain(t.pager, record.PointSize, record.EncodePoints(aPts))
		if err != nil {
			return nil, err
		}
		t.aPages += pages
		binary.LittleEndian.PutUint64(payload[36:], uint64(aHead))
		binary.LittleEndian.PutUint32(payload[44:], uint32(len(aPts)))

		pstcore.SortByYDesc(sPts)
		sHead, pages, err := disk.WriteChain(t.pager, record.PointSize, record.EncodePoints(sPts))
		if err != nil {
			return nil, err
		}
		t.sPages += pages
		binary.LittleEndian.PutUint64(payload[48:], uint64(sHead))
		binary.LittleEndian.PutUint32(payload[56:], uint32(len(sPts)))
	}

	bn := &skeletal.BuildNode{Key: n.Split, Payload: payload}
	ancestors = append(ancestors, n.Pts)
	// Path goes left below this node: the right child is the sibling.
	var rightPts []record.Point
	if n.Right != nil {
		rightPts = n.Right.Pts
	}
	if n.Left != nil {
		bn.Left, err = t.persist(n.Left, depth+1, ancestors, append(sibs, rightPts))
		if err != nil {
			return nil, err
		}
	}
	if n.Right != nil {
		// Path goes right: the left child is a *left* sibling, outside every
		// 2-sided query's x-range, so no sibling points are recorded.
		bn.Right, err = t.persist(n.Right, depth+1, ancestors, append(sibs, nil))
		if err != nil {
			return nil, err
		}
	}
	return bn, nil
}

func putChildMinY(buf []byte, c *pstcore.MemNode) {
	v := int64(math.MinInt64)
	if c != nil {
		v = c.MinY
	}
	binary.LittleEndian.PutUint64(buf, uint64(v))
}

// payload accessors.
func plBlock(p []byte) (disk.PageID, int) {
	return disk.PageID(binary.LittleEndian.Uint64(p[0:])), int(binary.LittleEndian.Uint32(p[8:]))
}
func plMinY(p []byte) int64      { return int64(binary.LittleEndian.Uint64(p[12:])) }
func plLeftMinY(p []byte) int64  { return int64(binary.LittleEndian.Uint64(p[20:])) }
func plRightMinY(p []byte) int64 { return int64(binary.LittleEndian.Uint64(p[28:])) }
func plAList(p []byte) (disk.PageID, int) {
	return disk.PageID(binary.LittleEndian.Uint64(p[36:])), int(binary.LittleEndian.Uint32(p[44:]))
}
func plSList(p []byte) (disk.PageID, int) {
	return disk.PageID(binary.LittleEndian.Uint64(p[48:])), int(binary.LittleEndian.Uint32(p[56:]))
}

// WithPager implements PointIndex: the returned read-only view routes the
// skeleton descent and every chain scan through p, so a per-operation
// counted pager sees exactly this operation's transfers.
func (t *Tree) WithPager(p disk.Pager) PointIndex {
	c := *t
	c.pager = p
	c.skel = t.skel.WithPager(p)
	return &c
}

// Len reports the number of indexed points.
func (t *Tree) Len() int { return t.n }

// B reports the page capacity in points.
func (t *Tree) B() int { return t.b }

// Scheme reports the caching scheme.
func (t *Tree) Scheme() Scheme { return t.scheme }

// SegLen reports the chunk length in levels (meaningful for Segmented).
func (t *Tree) SegLen() int { return t.segLen }

// Layout reports the skeletal page layout the tree was built with.
func (t *Tree) Layout() disk.Layout { return t.skel.Layout() }

// Height reports the binary tree height.
func (t *Tree) Height() int { return t.skel.Height() }

// SpacePages breaks down storage: skeleton, point blocks, A-lists, S-lists.
func (t *Tree) SpacePages() (skeleton, blocks, aLists, sLists int) {
	return t.skel.NumPages(), t.blockPages, t.aPages, t.sPages
}

// TotalPages is the complete storage footprint in pages.
func (t *Tree) TotalPages() int {
	return t.skel.NumPages() + t.blockPages + t.aPages + t.sPages
}

// Destroy frees every page the tree owns — node blocks, A/S lists and the
// skeleton. The dynamic structure uses this to rebuild a region's
// second-level tree; the traversal's page reads are charged like any other
// rebuild I/O. The tree must not be used afterwards.
func (t *Tree) Destroy() error {
	if t.n == 0 {
		if t.skel != nil {
			return t.skel.Free()
		}
		return nil
	}
	w := t.skel.NewWalker()
	var free func(ref skeletal.NodeRef) error
	free = func(ref skeletal.NodeRef) error {
		if !ref.Valid() {
			return nil
		}
		n, err := w.Node(ref)
		if err != nil {
			return err
		}
		left, right := n.Left, n.Right
		heads := make([]disk.PageID, 0, 3)
		if h, c := plBlock(n.Payload); c > 0 {
			heads = append(heads, h)
		}
		if h, c := plAList(n.Payload); c > 0 {
			heads = append(heads, h)
		}
		if h, c := plSList(n.Payload); c > 0 {
			heads = append(heads, h)
		}
		for _, h := range heads {
			if err := disk.FreeChain(t.pager, h); err != nil {
				return err
			}
		}
		if err := free(left); err != nil {
			return err
		}
		return free(right)
	}
	if err := free(t.skel.Root()); err != nil {
		return err
	}
	t.blockPages, t.aPages, t.sPages, t.n = 0, 0, 0, 0
	return t.skel.Free()
}

// Points reads back every indexed point by traversing the node blocks —
// used when merging structures (e.g. the logarithmic-method baseline). The
// traversal costs O(n/B + skeleton) page reads, charged like any merge.
func (t *Tree) Points() ([]record.Point, error) {
	if t.n == 0 {
		return nil, nil
	}
	out := make([]record.Point, 0, t.n)
	w := t.skel.NewWalker()
	var walk func(ref skeletal.NodeRef) error
	walk = func(ref skeletal.NodeRef) error {
		if !ref.Valid() {
			return nil
		}
		n, err := w.Node(ref)
		if err != nil {
			return err
		}
		left, right := n.Left, n.Right
		head, count := plBlock(n.Payload)
		if count > 0 {
			if _, err := disk.ScanChain(t.pager, record.PointSize, head, func(rec []byte) bool {
				out = append(out, record.DecodePoint(rec))
				return true
			}); err != nil {
				return err
			}
		}
		if err := walk(left); err != nil {
			return err
		}
		return walk(right)
	}
	if err := walk(t.skel.Root()); err != nil {
		return nil, err
	}
	return out, nil
}
