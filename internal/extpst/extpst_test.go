package extpst

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"pathcache/internal/disk"
	"pathcache/internal/inmem"
	"pathcache/internal/record"
	"pathcache/internal/workload"
)

var allSchemes = []Scheme{IKO, Basic, Segmented}

func samePoints(a, b []record.Point) bool {
	if len(a) != len(b) {
		return false
	}
	key := func(p record.Point) [3]int64 { return [3]int64{p.X, p.Y, int64(p.ID)} }
	as := make([][3]int64, len(a))
	bs := make([][3]int64, len(b))
	for i := range a {
		as[i], bs[i] = key(a[i]), key(b[i])
	}
	less := func(s [][3]int64) func(i, j int) bool {
		return func(i, j int) bool {
			for k := 0; k < 3; k++ {
				if s[i][k] != s[j][k] {
					return s[i][k] < s[j][k]
				}
			}
			return false
		}
	}
	sort.Slice(as, less(as))
	sort.Slice(bs, less(bs))
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func TestEmptyTree(t *testing.T) {
	for _, sc := range allSchemes {
		s := disk.MustStore(512)
		tr, err := Build(s, nil, sc)
		if err != nil {
			t.Fatal(err)
		}
		out, st, err := tr.Query(0, 0)
		if err != nil || out != nil || st.Results != 0 {
			t.Fatalf("%v: query on empty: %v %v %v", sc, out, st, err)
		}
	}
}

func TestQueryMatchesOracle(t *testing.T) {
	for _, sc := range allSchemes {
		for _, n := range []int{1, 2, 5, 50, 1000, 5000} {
			pts := workload.UniformPoints(n, 100_000, int64(n)+13)
			s := disk.MustStore(512)
			tr, err := Build(s, pts, sc)
			if err != nil {
				t.Fatalf("%v n=%d: %v", sc, n, err)
			}
			if tr.Len() != n {
				t.Fatalf("Len = %d", tr.Len())
			}
			for _, sel := range []float64{0.001, 0.05, 0.5} {
				for _, q := range workload.TwoSidedQueries(15, 100_000, sel, 99) {
					got, st, err := tr.Query(q.A, q.B)
					if err != nil {
						t.Fatal(err)
					}
					want := inmem.TwoSided(pts, q.A, q.B)
					if !samePoints(got, want) {
						t.Fatalf("%v n=%d query (%d,%d): got %d want %d",
							sc, n, q.A, q.B, len(got), len(want))
					}
					if st.Results != len(got) {
						t.Fatalf("stats results %d != %d", st.Results, len(got))
					}
				}
			}
		}
	}
}

func TestQueryExtremeCorners(t *testing.T) {
	pts := workload.UniformPoints(2000, 10_000, 17)
	for _, sc := range allSchemes {
		s := disk.MustStore(512)
		tr, err := Build(s, pts, sc)
		if err != nil {
			t.Fatal(err)
		}
		cases := []struct{ a, b int64 }{
			{math.MinInt64, math.MinInt64}, // everything
			{0, 0},                         // everything (domain corner)
			{10_000, 10_000},               // nothing
			{math.MaxInt64, math.MaxInt64}, // nothing
			{-5, 9_999},                    // top stripe
			{9_999, -5},                    // right stripe
		}
		for _, c := range cases {
			got, _, err := tr.Query(c.a, c.b)
			if err != nil {
				t.Fatal(err)
			}
			if want := inmem.TwoSided(pts, c.a, c.b); !samePoints(got, want) {
				t.Fatalf("%v corner (%d,%d): got %d want %d", sc, c.a, c.b, len(got), len(want))
			}
		}
	}
}

func TestQueryDuplicateCoordinates(t *testing.T) {
	var pts []record.Point
	for i := 0; i < 800; i++ {
		pts = append(pts, record.Point{X: int64(i % 9), Y: int64(i % 11), ID: uint64(i + 1)})
	}
	for _, sc := range allSchemes {
		s := disk.MustStore(512)
		tr, err := Build(s, pts, sc)
		if err != nil {
			t.Fatal(err)
		}
		for a := int64(-1); a <= 10; a++ {
			for b := int64(-1); b <= 12; b++ {
				got, _, err := tr.Query(a, b)
				if err != nil {
					t.Fatal(err)
				}
				if want := inmem.TwoSided(pts, a, b); !samePoints(got, want) {
					t.Fatalf("%v corner (%d,%d): got %d want %d", sc, a, b, len(got), len(want))
				}
			}
		}
	}
}

func TestQueryClusteredAndSkewed(t *testing.T) {
	workloads := map[string][]record.Point{
		"clustered": workload.ClusteredPoints(3000, 6, 100_000, 2000, 23),
		"diagonal":  workload.DiagonalPoints(3000, 100_000, 5000, 29),
		"zipf":      workload.ZipfPoints(3000, 100_000, 1.3, 31),
	}
	for name, pts := range workloads {
		for _, sc := range allSchemes {
			s := disk.MustStore(512)
			tr, err := Build(s, pts, sc)
			if err != nil {
				t.Fatal(err)
			}
			for _, q := range workload.TwoSidedQueries(25, 100_000, 0.02, 37) {
				got, _, err := tr.Query(q.A, q.B)
				if err != nil {
					t.Fatal(err)
				}
				if want := inmem.TwoSided(pts, q.A, q.B); !samePoints(got, want) {
					t.Fatalf("%s/%v query (%d,%d): got %d want %d",
						name, sc, q.A, q.B, len(got), len(want))
				}
			}
		}
	}
}

// Property test: random small point sets, random corners, all schemes agree
// with brute force.
func TestQueryProperty(t *testing.T) {
	f := func(raw []struct{ X, Y int16 }, a, b int16) bool {
		pts := make([]record.Point, len(raw))
		for i, r := range raw {
			pts[i] = record.Point{X: int64(r.X), Y: int64(r.Y), ID: uint64(i + 1)}
		}
		want := inmem.TwoSided(pts, int64(a), int64(b))
		for _, sc := range allSchemes {
			s := disk.MustStore(512)
			tr, err := Build(s, pts, sc)
			if err != nil {
				return false
			}
			got, _, err := tr.Query(int64(a), int64(b))
			if err != nil || !samePoints(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func logB(n, b int) int {
	if b < 2 {
		b = 2
	}
	r := 1
	for v := 1; v < n; v *= b {
		r++
	}
	return r
}

func log2(n int) int {
	r := 0
	for v := 1; v < n; v *= 2 {
		r++
	}
	return r
}

// Theorem 3.2: Segmented (and Basic) queries cost O(log_B n + t/B) I/Os.
func TestCachedQueryIOBound(t *testing.T) {
	const n = 50_000
	pts := workload.UniformPoints(n, 1_000_000, 41)
	for _, sc := range []Scheme{Basic, Segmented} {
		s := disk.MustStore(512)
		tr, err := Build(s, pts, sc)
		if err != nil {
			t.Fatal(err)
		}
		b := tr.B()
		for _, sel := range []float64{0.0005, 0.01, 0.2} {
			for _, qy := range workload.TwoSidedQueries(25, 1_000_000, sel, 43) {
				s.ResetStats()
				got, st, err := tr.Query(qy.A, qy.B)
				if err != nil {
					t.Fatal(err)
				}
				reads := int(s.Stats().Reads)
				// Constants: skeletal path, boundary blocks and sibling
				// blocks per chunk (Segmented), cache tails.
				lb := logB(n, b)
				bound := 8*lb + 4*len(got)/b + 10
				if reads > bound {
					t.Fatalf("%v sel=%g corner (%d,%d): %d reads for t=%d (bound %d, logB=%d) stats=%+v",
						sc, sel, qy.A, qy.B, reads, len(got), bound, lb, st)
				}
			}
		}
	}
}

// The IKO baseline must pay ~log2(n/B) I/Os on low-selectivity queries where
// the cached schemes pay ~log_B n.
func TestIKOPaysBinaryLog(t *testing.T) {
	const n = 100_000
	pts := workload.UniformPoints(n, 1_000_000, 47)
	readsFor := func(sc Scheme) float64 {
		s := disk.MustStore(512)
		tr, err := Build(s, pts, sc)
		if err != nil {
			t.Fatal(err)
		}
		total := int64(0)
		queries := workload.TwoSidedQueries(40, 1_000_000, 0.0002, 53)
		for _, q := range queries {
			s.ResetStats()
			if _, _, err := tr.Query(q.A, q.B); err != nil {
				t.Fatal(err)
			}
			total += s.Stats().Reads
		}
		return float64(total) / float64(len(queries))
	}
	iko := readsFor(IKO)
	seg := readsFor(Segmented)
	if iko <= seg {
		t.Fatalf("IKO averaged %.1f reads <= segmented %.1f: caching shows no benefit", iko, seg)
	}
}

// The space ladder: IKO is O(n/B); Segmented is O((n/B)·log B), far below
// Basic's O((n/B)·log(n/B)).
func TestSpaceLadder(t *testing.T) {
	const n = 30_000
	pts := workload.UniformPoints(n, 1_000_000, 59)
	pages := map[Scheme]int{}
	var b int
	for _, sc := range allSchemes {
		s := disk.MustStore(512)
		tr, err := Build(s, pts, sc)
		if err != nil {
			t.Fatal(err)
		}
		b = tr.B()
		pages[sc] = tr.TotalPages()
		if s.NumPages() != tr.TotalPages() {
			t.Fatalf("%v: store %d pages, structure claims %d", sc, s.NumPages(), tr.TotalPages())
		}
	}
	base := n/b + 1
	if pages[IKO] > 4*base {
		t.Fatalf("IKO uses %d pages, want O(n/B)=~%d", pages[IKO], base)
	}
	if pages[Segmented] > 6*base*log2(b) {
		t.Fatalf("Segmented uses %d pages, want O((n/B)logB)=~%d", pages[Segmented], base*log2(b))
	}
	if pages[Basic] > 6*base*log2(n/b+2) {
		t.Fatalf("Basic uses %d pages, want O((n/B)log(n/B))=~%d", pages[Basic], base*log2(n/b+2))
	}
	if !(pages[IKO] < pages[Segmented] && pages[Segmented] < pages[Basic]) {
		t.Fatalf("space ladder violated: iko=%d segmented=%d basic=%d",
			pages[IKO], pages[Segmented], pages[Basic])
	}
}

// Wasteful I/Os per query must stay bounded for cached schemes (the whole
// point of path caching).
func TestWastefulBounded(t *testing.T) {
	pts := workload.UniformPoints(40_000, 1_000_000, 61)
	s := disk.MustStore(512)
	tr, err := Build(s, pts, Segmented)
	if err != nil {
		t.Fatal(err)
	}
	lb := logB(40_000, tr.B())
	for _, q := range workload.TwoSidedQueries(40, 1_000_000, 0.001, 67) {
		_, st, err := tr.Query(q.A, q.B)
		if err != nil {
			t.Fatal(err)
		}
		// At most O(1) wasteful per chunk (A tail, S tail, boundary block,
		// boundary sibling) plus the paid-for explores.
		if st.WastefulIOs > 6*lb+st.UsefulIOs+6 {
			t.Fatalf("query (%d,%d): wasteful=%d useful=%d logB=%d",
				q.A, q.B, st.WastefulIOs, st.UsefulIOs, lb)
		}
	}
}
