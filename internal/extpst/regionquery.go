package extpst

import (
	"pathcache/internal/disk"
	"pathcache/internal/record"
	"pathcache/internal/skeletal"
)

// regionQuery carries the state of one 2-sided query over a region tree.
type regionQuery struct {
	rt   *regionTree
	w    *skeletal.Walker
	a, b int64
	out  []record.Point
	st   QueryStats
}

// Query implements PointIndex for one level of the hierarchy, following
// Section 4.1: locate the corner region, query its second-level structure,
// serve ancestors/siblings from the A/S caches with X/Y-list continuation,
// and traverse descendants of fully-contained regions via their Y-lists.
func (rt *regionTree) Query(a, b int64) ([]record.Point, QueryStats, error) {
	q := &regionQuery{rt: rt, w: rt.skel.NewWalker(), a: a, b: b}
	path, err := q.w.Descend(rt.skel.Root(), func(n skeletal.Node) skeletal.Dir {
		if rpMinY(n.Payload) < b {
			return skeletal.Stop
		}
		if a <= n.Key {
			return skeletal.Left
		}
		return skeletal.Right
	})
	if err != nil {
		return nil, q.st, err
	}
	q.st.PathPages = q.w.PagesLoaded()
	depth := len(path) - 1
	corner := path[depth]

	// The corner region is resolved by its own second-level structure.
	sub := rt.subs[rpRegionIdx(corner.Payload)]
	pts, sst, err := sub.Query(a, b)
	if err != nil {
		return nil, q.st, err
	}
	q.out = append(q.out, pts...)
	q.st.ListPages += sst.ListPages + sst.PathPages
	q.st.UsefulIOs += sst.UsefulIOs
	q.st.WastefulIOs += sst.WastefulIOs

	// Descent that ended on a missing left child: the right child remains a
	// right sibling.
	if rpMinY(corner.Payload) >= b && a <= corner.Key && corner.Right.Valid() {
		if err := q.exploreRegion(corner.Right); err != nil {
			return nil, q.st, err
		}
	}

	cur := depth
	for {
		cs := q.chunkStart(cur)
		if err := q.scanCaches(path[cur].Payload); err != nil {
			return nil, q.st, err
		}
		for j := cs; j < cur; j++ {
			if err := q.continueAncestor(path[j].Payload); err != nil {
				return nil, q.st, err
			}
			if wentLeft(path, j) && path[j].Right.Valid() {
				if err := q.continueSibling(path[j], path[j].Right); err != nil {
					return nil, q.st, err
				}
			}
		}
		if cs == 0 {
			break
		}
		bj := cs - 1
		// Chunk boundary: the ancestor and its sibling are handled directly.
		if err := q.scanAncestorDirect(path[bj].Payload); err != nil {
			return nil, q.st, err
		}
		if wentLeft(path, bj) && path[bj].Right.Valid() {
			if err := q.exploreRegion(path[bj].Right); err != nil {
				return nil, q.st, err
			}
		}
		cur = bj
	}
	q.st.Results = len(q.out)
	return q.out, q.st, nil
}

func (q *regionQuery) chunkStart(depth int) int {
	return (depth / q.rt.segLen) * q.rt.segLen
}

// scanCaches reads the corner-or-boundary node's A and S caches.
func (q *regionQuery) scanCaches(payload []byte) error {
	if head, count := rpList(payload, offA); count > 0 {
		if _, err := q.scanXDesc(head); err != nil {
			return err
		}
	}
	if head, count := rpList(payload, offS); count > 0 {
		if _, err := q.scanYDesc(head, false); err != nil {
			return err
		}
	}
	return nil
}

// continueAncestor scans an ancestor's X tail when its entire first X block
// (already served by the A cache) was inside the query.
func (q *regionQuery) continueAncestor(payload []byte) error {
	if rpFirstXMin(payload) < q.a {
		return nil
	}
	if head, count := rpList(payload, offX2); count > 0 {
		if _, err := q.scanXDesc(head); err != nil {
			return err
		}
	}
	return nil
}

// continueSibling scans a sibling region's Y tail when its first Y block
// (served by the S cache) was fully inside, and descends into its children
// when the whole region is inside.
func (q *regionQuery) continueSibling(parent skeletal.Node, sibRef skeletal.NodeRef) error {
	if rpRightFirstYMin(parent.Payload) < q.b {
		return nil
	}
	sib, err := q.w.Node(sibRef)
	if err != nil {
		return err
	}
	payload := sib.Payload // walker view buffers are private and immutable
	left, right := sib.Left, sib.Right
	if head, count := rpList(payload, offY2); count > 0 {
		if _, err := q.scanYDesc(head, false); err != nil {
			return err
		}
	}
	if rpMinY(payload) >= q.b {
		if left.Valid() {
			if err := q.exploreRegion(left); err != nil {
				return err
			}
		}
		if right.Valid() {
			return q.exploreRegion(right)
		}
	}
	return nil
}

// scanAncestorDirect reads a chunk-boundary ancestor's X lists in full
// (while inside the query); every ancestor point has y >= b.
func (q *regionQuery) scanAncestorDirect(payload []byte) error {
	head1, count1 := rpList(payload, offX1)
	if count1 == 0 {
		return nil
	}
	stopped, err := q.scanXDesc(head1)
	if err != nil || stopped {
		return err
	}
	if head2, count2 := rpList(payload, offX2); count2 > 0 {
		_, err = q.scanXDesc(head2)
	}
	return err
}

// exploreRegion handles a region entirely right of x=a that is not covered
// by any cache: scan its Y-lists top-down and recurse while fully inside.
func (q *regionQuery) exploreRegion(ref skeletal.NodeRef) error {
	n, err := q.w.Node(ref)
	if err != nil {
		return err
	}
	payload := n.Payload // walker view buffers are private and immutable
	left, right := n.Left, n.Right
	head1, count1 := rpList(payload, offY1)
	if count1 > 0 {
		stopped, err := q.scanYDesc(head1, true)
		if err != nil {
			return err
		}
		if !stopped {
			if head2, count2 := rpList(payload, offY2); count2 > 0 {
				if _, err := q.scanYDesc(head2, true); err != nil {
					return err
				}
			}
		}
	}
	if rpMinY(payload) < q.b {
		return nil
	}
	if left.Valid() {
		if err := q.exploreRegion(left); err != nil {
			return err
		}
	}
	if right.Valid() {
		return q.exploreRegion(right)
	}
	return nil
}

// scanXDesc scans an x-descending chain, reporting until the first point
// with x < a. Callers guarantee y >= b for every point in the chain.
// It reports whether the scan stopped early.
func (q *regionQuery) scanXDesc(head disk.PageID) (stopped bool, err error) {
	matched := 0
	pages, err := disk.ScanChain(q.rt.pager, record.PointSize, head, func(rec []byte) bool {
		v := record.PointView(rec)
		if v.X() < q.a {
			stopped = true
			return false
		}
		if v.Y() >= q.b {
			q.out = append(q.out, v.Point())
			matched++
		}
		return true
	})
	if err != nil {
		return false, err
	}
	q.account(pages, matched)
	return stopped, nil
}

// scanYDesc scans a y-descending chain, reporting until the first point with
// y < b. filterX additionally checks x >= a (defensive; sibling and
// descendant regions lie entirely at x >= a).
func (q *regionQuery) scanYDesc(head disk.PageID, filterX bool) (stopped bool, err error) {
	matched := 0
	pages, err := disk.ScanChain(q.rt.pager, record.PointSize, head, func(rec []byte) bool {
		v := record.PointView(rec)
		if v.Y() < q.b {
			stopped = true
			return false
		}
		if !filterX || v.X() >= q.a {
			q.out = append(q.out, v.Point())
			matched++
		}
		return true
	})
	if err != nil {
		return false, err
	}
	q.account(pages, matched)
	return stopped, nil
}

func (q *regionQuery) account(pages, matched int) {
	q.st.ListPages += pages
	full := matched / q.rt.b
	q.st.UsefulIOs += full
	q.st.WastefulIOs += pages - full
}
