package extpst

import (
	"testing"

	"pathcache/internal/disk"
	"pathcache/internal/workload"
)

// Destroy must release every page the tree allocated, for every scheme —
// the dynamic structure depends on this for second-level rebuilds.
func TestDestroyReleasesAllPages(t *testing.T) {
	for _, sc := range allSchemes {
		s := disk.MustStore(512)
		pts := workload.UniformPoints(5_000, 100_000, 401)
		tr, err := Build(s, pts, sc)
		if err != nil {
			t.Fatal(err)
		}
		if s.NumPages() == 0 {
			t.Fatalf("%v: no pages allocated", sc)
		}
		if err := tr.Destroy(); err != nil {
			t.Fatalf("%v: destroy: %v", sc, err)
		}
		if got := s.NumPages(); got != 0 {
			t.Fatalf("%v: %d pages leaked after Destroy", sc, got)
		}
	}
}

func TestDestroyEmptyTree(t *testing.T) {
	s := disk.MustStore(512)
	tr, err := Build(s, nil, Basic)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Destroy(); err != nil {
		t.Fatal(err)
	}
	if s.NumPages() != 0 {
		t.Fatalf("%d pages leaked", s.NumPages())
	}
}
