package extpst

import (
	"pathcache/internal/disk"
	"pathcache/internal/record"
	"pathcache/internal/skeletal"
)

// pstQuery carries the state of one 2-sided query.
type pstQuery struct {
	t    *Tree
	w    *skeletal.Walker
	a, b int64
	out  []record.Point
	st   QueryStats
}

// Query reports every indexed point with x >= a and y >= b, together with
// the query's I/O profile. Cost: O(log_B n + t/B) for Basic and Segmented,
// O(log n + t/B) for IKO.
func (t *Tree) Query(a, b int64) ([]record.Point, QueryStats, error) {
	q := &pstQuery{t: t, w: t.skel.NewWalker(), a: a, b: b}
	if t.n == 0 {
		return nil, q.st, nil
	}

	// Corner descent: go toward x=a while the subtree can still hold points
	// with y >= b.
	path, err := q.w.Descend(t.skel.Root(), func(n skeletal.Node) skeletal.Dir {
		if plMinY(n.Payload) < b {
			return skeletal.Stop
		}
		if a <= n.Key {
			return skeletal.Left
		}
		return skeletal.Right
	})
	if err != nil {
		return nil, q.st, err
	}
	q.st.PathPages = q.w.PagesLoaded()

	depth := len(path) - 1
	corner := path[depth]

	// The corner's own points are filtered on both coordinates.
	if err := q.scanBlock(corner.Payload); err != nil {
		return nil, q.st, err
	}
	// If the descent ended because the left child is absent (not because of
	// the y cut-off), the corner's right child is still a right sibling.
	if plMinY(corner.Payload) >= b && a <= corner.Key && corner.Right.Valid() {
		if err := q.explore(corner.Right); err != nil {
			return nil, q.st, err
		}
	}

	if t.scheme == IKO {
		err = q.walkUncached(path, depth)
	} else {
		err = q.walkCached(path, depth)
	}
	if err != nil {
		return nil, q.st, err
	}
	q.st.Results = len(q.out)
	return q.out, q.st, nil
}

// wentLeft reports whether the path turned left at level j (so the right
// child of path[j] is a right sibling, entirely at x >= a).
func wentLeft(path []skeletal.Node, j int) bool {
	return path[j+1].Ref == path[j].Left
}

// walkUncached is the IKO baseline: read every ancestor block and every
// right-sibling block directly.
func (q *pstQuery) walkUncached(path []skeletal.Node, depth int) error {
	for j := depth - 1; j >= 0; j-- {
		if err := q.scanBlock(path[j].Payload); err != nil {
			return err
		}
		if wentLeft(path, j) && path[j].Right.Valid() {
			if err := q.explore(path[j].Right); err != nil {
				return err
			}
		}
	}
	return nil
}

// walkCached serves ancestors from A-lists and siblings from S-lists,
// chunk by chunk from the corner to the root. Basic has a single chunk
// covering the whole path; Segmented pays one direct block (plus one sibling
// block) per chunk boundary — O(log_B n) of them.
func (q *pstQuery) walkCached(path []skeletal.Node, depth int) error {
	cur := depth
	for {
		// Lists at path[cur] cover levels [chunkStart(cur), cur-1].
		cs := q.t.chunkStart(cur)
		aHead, aCount := plAList(path[cur].Payload)
		if aCount > 0 {
			if err := q.scanAList(aHead); err != nil {
				return err
			}
		}
		sHead, sCount := plSList(path[cur].Payload)
		if sCount > 0 {
			if err := q.scanSList(sHead); err != nil {
				return err
			}
		}
		// Siblings whose points were all inside the query continue into
		// their subtrees; the decision uses the parent's payload (free).
		for j := cs; j < cur; j++ {
			if wentLeft(path, j) && path[j].Right.Valid() && plRightMinY(path[j].Payload) >= q.b {
				if err := q.exploreChildren(path[j].Right); err != nil {
					return err
				}
			}
		}
		if cs == 0 {
			return nil
		}
		// Chunk boundary: process the ancestor at cs-1 and its sibling
		// directly, then continue from there.
		bj := cs - 1
		if err := q.scanBlock(path[bj].Payload); err != nil {
			return err
		}
		if wentLeft(path, bj) && path[bj].Right.Valid() {
			if err := q.explore(path[bj].Right); err != nil {
				return err
			}
		}
		cur = bj
	}
}

// scanBlock reads a node's point block, reporting points inside the query.
func (q *pstQuery) scanBlock(payload []byte) error {
	head, count := plBlock(payload)
	if count == 0 {
		return nil
	}
	matched := 0
	pages, err := disk.ScanChain(q.t.pager, record.PointSize, head, func(rec []byte) bool {
		v := record.PointView(rec)
		if v.X() >= q.a && v.Y() >= q.b {
			q.out = append(q.out, v.Point())
			matched++
		}
		return true
	})
	if err != nil {
		return err
	}
	q.account(pages, matched)
	return nil
}

// scanAList scans an x-descending ancestor cache, stopping at the first
// point left of the query. Every ancestor of the corner has minY >= b, so
// every reported point is inside the query.
func (q *pstQuery) scanAList(head disk.PageID) error {
	matched := 0
	pages, err := disk.ScanChain(q.t.pager, record.PointSize, head, func(rec []byte) bool {
		v := record.PointView(rec)
		if v.X() < q.a {
			return false
		}
		if v.Y() >= q.b {
			q.out = append(q.out, v.Point())
			matched++
		}
		return true
	})
	if err != nil {
		return err
	}
	q.account(pages, matched)
	return nil
}

// scanSList scans a y-descending sibling cache, stopping at the first point
// below the query. Right siblings lie entirely at x >= a.
func (q *pstQuery) scanSList(head disk.PageID) error {
	matched := 0
	pages, err := disk.ScanChain(q.t.pager, record.PointSize, head, func(rec []byte) bool {
		v := record.PointView(rec)
		if v.Y() < q.b {
			return false
		}
		if v.X() >= q.a {
			q.out = append(q.out, v.Point())
			matched++
		}
		return true
	})
	if err != nil {
		return err
	}
	q.account(pages, matched)
	return nil
}

// explore handles a subtree completely to the right of x=a: report the
// node's points above b and descend while the node was entirely inside the
// query (the descendants-pay-for-themselves argument of Section 3).
func (q *pstQuery) explore(ref skeletal.NodeRef) error {
	n, err := q.w.Node(ref)
	if err != nil {
		return err
	}
	// n.Payload aliases the walker's private immutable view buffer, which
	// outlives later walker reads — no defensive copy needed.
	payload := n.Payload
	left, right := n.Left, n.Right
	if err := q.scanBlock(payload); err != nil {
		return err
	}
	if plMinY(payload) < q.b {
		return nil
	}
	if left.Valid() {
		if err := q.explore(left); err != nil {
			return err
		}
	}
	if right.Valid() {
		return q.explore(right)
	}
	return nil
}

// exploreChildren descends into the children of a sibling whose own points
// were already reported from an S-list.
func (q *pstQuery) exploreChildren(ref skeletal.NodeRef) error {
	n, err := q.w.Node(ref)
	if err != nil {
		return err
	}
	left, right := n.Left, n.Right
	if left.Valid() {
		if err := q.explore(left); err != nil {
			return err
		}
	}
	if right.Valid() {
		return q.explore(right)
	}
	return nil
}

// account classifies list I/Os as useful (a full page of reported points)
// or wasteful, per Figure 3's accounting.
func (q *pstQuery) account(pages, matched int) {
	q.st.ListPages += pages
	full := matched / q.t.b
	q.st.UsefulIOs += full
	q.st.WastefulIOs += pages - full
}
