package extpst

import (
	"errors"
	"testing"

	"pathcache/internal/disk"
	"pathcache/internal/workload"
)

// Injected I/O failures during builds must surface as errors, never panics.
func TestBuildFaultInjection(t *testing.T) {
	pts := workload.UniformPoints(2_000, 100_000, 601)
	for _, sc := range allSchemes {
		// Measure a fault-free build's operation count.
		probe := disk.NewFaultPager(disk.MustStore(512), 1<<40)
		if _, err := Build(probe, pts, sc); err != nil {
			t.Fatal(err)
		}
		used := 1<<40 - probe.Remaining()
		for _, budget := range []int64{0, 1, 2, used / 3, used / 2, used - 1} {
			fp := disk.NewFaultPager(disk.MustStore(512), budget)
			if _, err := Build(fp, pts, sc); !errors.Is(err, disk.ErrInjected) {
				t.Fatalf("%v: build with budget %d/%d: err=%v, want ErrInjected", sc, budget, used, err)
			}
		}
	}
}

// Injected I/O failures during queries must surface as errors with no
// panic, at any point of the query.
func TestQueryFaultInjection(t *testing.T) {
	pts := workload.UniformPoints(2_000, 100_000, 601)
	q := workload.TwoSidedQueries(1, 100_000, 0.05, 603)[0]
	for _, sc := range allSchemes {
		fp := disk.NewFaultPager(disk.MustStore(512), 1<<40)
		tr, err := Build(fp, pts, sc)
		if err != nil {
			t.Fatal(err)
		}
		// Fault-free reference.
		want, _, err := tr.Query(q.A, q.B)
		if err != nil {
			t.Fatal(err)
		}
		for _, budget := range []int64{0, 1, 2, 5, 10} {
			fp.SetBudget(budget)
			_, _, err := tr.Query(q.A, q.B)
			if !errors.Is(err, disk.ErrInjected) {
				t.Fatalf("%v: query with budget %d: err=%v, want ErrInjected", sc, budget, err)
			}
		}
		// Restoring the budget restores correct answers: no state was
		// corrupted by the failed attempts.
		fp.SetBudget(1 << 40)
		got, _, err := tr.Query(q.A, q.B)
		if err != nil {
			t.Fatal(err)
		}
		if !samePoints(got, want) {
			t.Fatalf("%v: results changed after failed queries", sc)
		}
	}
}

// Hierarchical builds and queries propagate faults too.
func TestHierarchicalFaultInjection(t *testing.T) {
	pts := workload.UniformPoints(3_000, 100_000, 605)
	for _, budget := range []int64{0, 5, 200} {
		fp := disk.NewFaultPager(disk.MustStore(512), budget)
		if _, err := BuildHierarchical(fp, pts, 2); !errors.Is(err, disk.ErrInjected) {
			t.Fatalf("build with budget %d: err=%v, want ErrInjected", budget, err)
		}
	}
	fp := disk.NewFaultPager(disk.MustStore(512), 1<<40)
	h, err := BuildHierarchical(fp, pts, 2)
	if err != nil {
		t.Fatal(err)
	}
	fp.SetBudget(1)
	if _, _, err := h.Query(0, 0); !errors.Is(err, disk.ErrInjected) {
		t.Fatalf("starved query: err=%v, want ErrInjected", err)
	}
}
