package extpst

import (
	"testing"
	"testing/quick"

	"pathcache/internal/disk"
	"pathcache/internal/inmem"
	"pathcache/internal/record"
	"pathcache/internal/workload"
)

func buildHier(t *testing.T, pts []record.Point, levels int) (*Hierarchical, *disk.Store) {
	t.Helper()
	s := disk.MustStore(512)
	h, err := BuildHierarchical(s, pts, levels)
	if err != nil {
		t.Fatal(err)
	}
	return h, s
}

func TestHierarchicalEmpty(t *testing.T) {
	h, _ := buildHier(t, nil, 2)
	out, st, err := h.Query(0, 0)
	if err != nil || out != nil || st.Results != 0 {
		t.Fatalf("query on empty: %v %v %v", out, st, err)
	}
	if h.TotalPages() != 0 {
		t.Fatalf("empty hierarchy claims %d pages", h.TotalPages())
	}
}

func TestHierarchicalRejectsBadLevels(t *testing.T) {
	s := disk.MustStore(512)
	if _, err := BuildHierarchical(s, nil, 0); err == nil {
		t.Fatal("levels=0 accepted")
	}
}

func TestHierarchicalMatchesOracle(t *testing.T) {
	for _, levels := range []int{1, 2, 3, 100} {
		for _, n := range []int{1, 10, 300, 5000, 20_000} {
			pts := workload.UniformPoints(n, 100_000, int64(n)*7+int64(levels))
			h, _ := buildHier(t, pts, levels)
			if h.Len() != n {
				t.Fatalf("Len = %d", h.Len())
			}
			for _, sel := range []float64{0.002, 0.05, 0.4} {
				for _, q := range workload.TwoSidedQueries(10, 100_000, sel, 71) {
					got, _, err := h.Query(q.A, q.B)
					if err != nil {
						t.Fatal(err)
					}
					want := inmem.TwoSided(pts, q.A, q.B)
					if !samePoints(got, want) {
						t.Fatalf("levels=%d n=%d query (%d,%d): got %d want %d",
							levels, n, q.A, q.B, len(got), len(want))
					}
				}
			}
		}
	}
}

func TestHierarchicalExtremeCorners(t *testing.T) {
	pts := workload.UniformPoints(8000, 10_000, 73)
	for _, levels := range []int{2, 3} {
		h, _ := buildHier(t, pts, levels)
		for _, c := range []struct{ a, b int64 }{
			{-1 << 40, -1 << 40},
			{0, 0},
			{9_999, 9_999},
			{10_000, 0},
			{0, 10_000},
		} {
			got, _, err := h.Query(c.a, c.b)
			if err != nil {
				t.Fatal(err)
			}
			if want := inmem.TwoSided(pts, c.a, c.b); !samePoints(got, want) {
				t.Fatalf("levels=%d corner (%d,%d): got %d want %d",
					levels, c.a, c.b, len(got), len(want))
			}
		}
	}
}

func TestHierarchicalSkewedWorkloads(t *testing.T) {
	workloads := map[string][]record.Point{
		"clustered": workload.ClusteredPoints(12_000, 4, 100_000, 1500, 79),
		"diagonal":  workload.DiagonalPoints(12_000, 100_000, 3000, 83),
		"zipf":      workload.ZipfPoints(12_000, 100_000, 1.2, 89),
	}
	for name, pts := range workloads {
		h, _ := buildHier(t, pts, 2)
		for _, q := range workload.TwoSidedQueries(20, 100_000, 0.01, 97) {
			got, _, err := h.Query(q.A, q.B)
			if err != nil {
				t.Fatal(err)
			}
			if want := inmem.TwoSided(pts, q.A, q.B); !samePoints(got, want) {
				t.Fatalf("%s query (%d,%d): got %d want %d", name, q.A, q.B, len(got), len(want))
			}
		}
	}
}

func TestHierarchicalProperty(t *testing.T) {
	f := func(raw []struct{ X, Y int16 }, a, b int16) bool {
		pts := make([]record.Point, len(raw))
		for i, r := range raw {
			pts[i] = record.Point{X: int64(r.X), Y: int64(r.Y), ID: uint64(i + 1)}
		}
		want := inmem.TwoSided(pts, int64(a), int64(b))
		for _, levels := range []int{2, 3} {
			s := disk.MustStore(512)
			h, err := BuildHierarchical(s, pts, levels)
			if err != nil {
				return false
			}
			got, _, err := h.Query(int64(a), int64(b))
			if err != nil || !samePoints(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Theorem 4.3: the two-level scheme keeps optimal query I/O.
func TestHierarchicalQueryIOBound(t *testing.T) {
	const n = 60_000
	pts := workload.UniformPoints(n, 1_000_000, 101)
	for _, levels := range []int{2, 3} {
		h, s := buildHier(t, pts, levels)
		b := h.B()
		for _, sel := range []float64{0.0005, 0.01, 0.1} {
			for _, qy := range workload.TwoSidedQueries(20, 1_000_000, sel, 103) {
				s.ResetStats()
				got, st, err := h.Query(qy.A, qy.B)
				if err != nil {
					t.Fatal(err)
				}
				reads := int(s.Stats().Reads)
				lb := logB(n, b)
				bound := 10*lb + 10*levels + 4*len(got)/b + 10
				if reads > bound {
					t.Fatalf("levels=%d sel=%g: %d reads for t=%d (bound %d) stats=%+v",
						levels, sel, reads, len(got), bound, st)
				}
			}
		}
	}
}

// The space ladder of Section 4: two-level beats Segmented, and the
// recursive factor keeps shrinking (log B -> log log B -> log* B). The
// separation is asymptotic in B, so it is checked in the paper's regime
// B >> log B (4 KiB pages, B=170); at tiny B the constant factors of the
// extra X/Y lists dominate — E2 reports that crossover.
func TestHierarchicalSpaceLadder(t *testing.T) {
	const n = 200_000
	const pageSize = 4096
	pts := workload.UniformPoints(n, 10_000_000, 107)

	sSeg := disk.MustStore(pageSize)
	seg, err := Build(sSeg, pts, Segmented)
	if err != nil {
		t.Fatal(err)
	}
	sTwo := disk.MustStore(pageSize)
	two, err := BuildHierarchical(sTwo, pts, 2)
	if err != nil {
		t.Fatal(err)
	}
	sMulti := disk.MustStore(pageSize)
	multi, err := BuildHierarchical(sMulti, pts, 100)
	if err != nil {
		t.Fatal(err)
	}

	b := seg.B()
	base := n/b + 1
	if two.TotalPages() >= seg.TotalPages() {
		t.Fatalf("two-level (%d pages) not smaller than segmented (%d pages)",
			two.TotalPages(), seg.TotalPages())
	}
	// At realistic B, log* B equals log log B (both ~3 for B=170), so the
	// multilevel scheme cannot beat two-level — each extra level re-copies
	// the X/Y lists. It must stay within the same order.
	if multi.TotalPages() > 3*two.TotalPages() {
		t.Fatalf("multilevel (%d pages) not within 3x two-level (%d pages)",
			multi.TotalPages(), two.TotalPages())
	}
	if multi.TotalPages() >= seg.TotalPages()*2 {
		t.Fatalf("multilevel (%d pages) blew past segmented (%d pages)",
			multi.TotalPages(), seg.TotalPages())
	}
	// Two-level is O((n/B)·log log B): generous constant check.
	loglogB := log2(log2(b) + 1)
	if two.TotalPages() > 8*base*(loglogB+1) {
		t.Fatalf("two-level uses %d pages, want O((n/B)loglogB) ~ %d", two.TotalPages(), base*(loglogB+1))
	}
}

// Storage accounting must agree with the store.
func TestHierarchicalSpaceAccounting(t *testing.T) {
	pts := workload.UniformPoints(20_000, 1_000_000, 109)
	h, s := buildHier(t, pts, 2)
	if s.NumPages() != h.TotalPages() {
		t.Fatalf("store has %d pages, structure claims %d", s.NumPages(), h.TotalPages())
	}
}
