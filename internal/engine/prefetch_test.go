package engine

import (
	"strings"
	"sync"
	"testing"
	"time"

	"pathcache/internal/disk"
)

// TestPrefetchValidation covers checkPrefetch through both constructors:
// negative worker counts are rejected, and prefetch without a buffer pool
// is a configuration error (there is nothing to warm).
func TestPrefetchValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string // substring of the error; "" means success
	}{
		{"negative workers", Config{PrefetchWorkers: -1, BufferPoolPages: 8}, "invalid PrefetchWorkers -1"},
		{"workers without pool", Config{PrefetchWorkers: 2}, "requires BufferPoolPages > 0"},
		{"workers with pool", Config{PrefetchWorkers: 2, BufferPoolPages: 8}, ""},
		{"zero workers no pool", Config{}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			be, err := New(tc.cfg)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("New(%+v) = %v, want success", tc.cfg, err)
				}
				if err := be.Close(); err != nil {
					t.Fatalf("Close: %v", err)
				}
				return
			}
			if err == nil {
				be.Close()
				t.Fatalf("New(%+v) succeeded, want error containing %q", tc.cfg, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("New(%+v) = %q, want error containing %q", tc.cfg, err, tc.want)
			}
		})
	}
}

// TestPrefetchWarmsPool proves the pipeline's whole point: a page hinted
// to the prefetcher becomes a pool hit for the operation that later reads
// it — the op's counter sees a CacheHit, not a Read — while the hint
// itself never touches any op counter.
func TestPrefetchWarmsPool(t *testing.T) {
	be, err := New(Config{PageSize: 256, BufferPoolPages: 8, PrefetchWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer be.Close()

	id, err := be.Pager().Alloc()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	buf[0] = 0x42
	if err := be.Pager().Write(id, buf); err != nil {
		t.Fatal(err)
	}

	var ctr disk.Counter
	op := be.OpPager(&ctr)
	pf, ok := op.(interface{ Prefetch(disk.PageID) })
	if !ok {
		t.Fatalf("OpPager %T does not expose Prefetch with PrefetchWorkers set", op)
	}
	pf.Prefetch(id)

	// The hint is served by a background worker; wait for it to land.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if enq, _ := be.PrefetchStats(); enq == 1 {
			ctr.Reset()
			if err := op.Read(id, buf); err != nil {
				t.Fatal(err)
			}
			if ctr.Hits() == 1 && ctr.Stats().Reads == 0 {
				break // warmed: the foreground access was free
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("page never became a pool hit: reads=%d hits=%d", ctr.Stats().Reads, ctr.Hits())
		}
		time.Sleep(time.Millisecond)
	}
	if buf[0] != 0x42 {
		t.Fatalf("prefetched page content corrupted: %x", buf[0])
	}
	// The hint itself was attributed to no operation: the counter saw
	// exactly the one foreground access.
	if total := ctr.Stats().Reads + ctr.Hits(); total != 1 {
		t.Fatalf("op counter saw %d accesses, want 1 (prefetch must be unattributed)", total)
	}
}

// TestPrefetchDropWhenFull checks the bounded-queue contract directly on
// the Prefetcher: with no workers draining it, a queue of depth d accepts
// exactly d hints and drops the rest — it never blocks the caller.
func TestPrefetchDropWhenFull(t *testing.T) {
	s := disk.MustStore(256)
	pf := newPrefetcher(s, 0, 4) // no workers: nothing drains the queue
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10; i++ {
			pf.Prefetch(disk.PageID(i))
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Prefetch blocked on a full queue")
	}
	enq, dropped := pf.Stats()
	if enq != 4 || dropped != 6 {
		t.Fatalf("Stats() = (%d, %d), want (4, 6)", enq, dropped)
	}
	pf.Close()
}

// TestPrefetchCloseDrains checks Close semantics: it waits for the
// workers, and hints already queued are still served before shutdown.
// Concurrent hinting during Close must not panic the workers.
func TestPrefetchCloseDrains(t *testing.T) {
	s := disk.MustStore(256)
	var ids []disk.PageID
	buf := make([]byte, 256)
	for i := 0; i < 16; i++ {
		id, err := s.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Write(id, buf); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	pf := newPrefetcher(s, 2, 32)
	var wg sync.WaitGroup
	for _, id := range ids {
		wg.Add(1)
		go func(id disk.PageID) {
			defer wg.Done()
			pf.Prefetch(id)
		}(id)
	}
	wg.Wait()
	pf.Close() // must not return before queued hints are processed
	enq, dropped := pf.Stats()
	if enq+dropped != int64(len(ids)) {
		t.Fatalf("Stats() = (%d, %d), want sum %d", enq, dropped, len(ids))
	}
	if got := s.Stats().Reads; got != enq {
		t.Fatalf("store saw %d reads after Close, want %d (every accepted hint served)", got, enq)
	}
}
