package engine

import (
	"encoding/binary"
	"errors"
	"fmt"

	"pathcache/internal/disk"
)

// The metadata page makes an index file self-describing: one page holding a
// kind byte, a blob length, and the kind-specific metadata blob, reachable
// through the superblock's application head. Writing it is the commit point
// of a build — a crash before SetAppHead+Sync rolls the file back to
// ErrNoIndex.
//
// Errors raised here are user-facing and already carry the public package's
// "pathcache:" prefix, because the sentinels below are re-exported by the
// pathcache package and the texts predate this package. Callers must return
// them as-is, not wrap them again.

// ErrNoIndex reports a store file whose metadata head is unset: the file is
// structurally intact but no index build completed against it. A crash
// before the final metadata commit rolls the file back to this state.
var ErrNoIndex = errors.New("pathcache: file holds no index")

// ErrKindMismatch reports a file that holds a committed index of a
// different kind than the caller asked for (for example opening a segment
// file with the two-sided opener). Open the file with Open or the matching
// typed opener instead.
var ErrKindMismatch = errors.New("pathcache: index kind mismatch")

// SaveMeta commits an index header: kind byte, blob length and blob in a
// fresh page recorded as the application head, then a sync. It is a no-op
// for in-memory backends.
func (be *Backend) SaveMeta(kind byte, blob []byte) error {
	if be.file == nil {
		return nil // in-memory index: nothing to persist
	}
	page := make([]byte, be.file.PageSize())
	if 5+len(blob) > len(page) {
		return fmt.Errorf("pathcache: index metadata (%d bytes) exceeds one page", len(blob))
	}
	page[0] = kind
	binary.LittleEndian.PutUint32(page[1:5], uint32(len(blob)))
	copy(page[5:], blob)
	id, err := be.file.Alloc()
	if err != nil {
		return fmt.Errorf("pathcache: %w", err)
	}
	if err := be.file.Write(id, page); err != nil {
		return fmt.Errorf("pathcache: %w", err)
	}
	if err := be.file.SetAppHead(id); err != nil {
		return fmt.Errorf("pathcache: %w", err)
	}
	if err := be.file.Sync(); err != nil {
		return fmt.Errorf("pathcache: %w", err)
	}
	return nil
}

// ReplaceMeta is SaveMeta for indexes that commit repeatedly: it flushes
// any buffer pool so every page the new metadata references is on disk
// before the commit point, writes the new metadata page, and frees the
// superseded one. The write tier calls this once per manifest flip; without
// the free, every flip would leak a page. A crash between SetAppHead and
// the free only leaks the old metadata page — never corrupts state.
func (be *Backend) ReplaceMeta(kind byte, blob []byte) error {
	if be.file == nil {
		return nil // in-memory index: nothing to persist
	}
	if be.pool != nil {
		if err := be.pool.Flush(); err != nil {
			return fmt.Errorf("pathcache: flushing pool before metadata commit: %w", err)
		}
	}
	old := be.file.AppHead()
	if err := be.SaveMeta(kind, blob); err != nil {
		return err
	}
	if old != disk.InvalidPage {
		if err := be.file.Free(old); err != nil {
			return fmt.Errorf("pathcache: freeing superseded metadata page: %w", err)
		}
	}
	return nil
}

// Sync is the durability barrier update paths acknowledge writes behind:
// flush the buffer pool (when one is interposed) and fsync the backing
// file. In-memory backends treat it as a no-op.
func (be *Backend) Sync() error {
	if be.pool != nil {
		if err := be.pool.Flush(); err != nil {
			return err
		}
	}
	if be.file == nil {
		return nil
	}
	return be.file.Sync()
}

// ReadKind loads the metadata page and returns the kind byte and metadata
// blob without interpreting either — the primitive behind kind-agnostic
// open.
func (be *Backend) ReadKind() (byte, []byte, error) {
	head := be.file.AppHead()
	if head == disk.InvalidPage {
		return 0, nil, fmt.Errorf("%w: metadata head unset", ErrNoIndex)
	}
	page := make([]byte, be.file.PageSize())
	if err := be.file.Read(head, page); err != nil {
		return 0, nil, fmt.Errorf("pathcache: reading metadata page: %w", err)
	}
	n := int(binary.LittleEndian.Uint32(page[1:5]))
	if 5+n > len(page) {
		return 0, nil, fmt.Errorf("pathcache: corrupt index metadata (blob length %d exceeds page): %w", n, disk.ErrCorrupt)
	}
	return page[0], page[5 : 5+n], nil
}

// ReadMeta is ReadKind restricted to one expected kind: it returns the
// metadata blob, or an error wrapping ErrKindMismatch naming both kinds
// when the file holds something else.
func (be *Backend) ReadMeta(want byte) ([]byte, error) {
	kind, blob, err := be.ReadKind()
	if err != nil {
		return nil, err
	}
	if kind != want {
		return nil, fmt.Errorf("%w: file holds %s, not %s", ErrKindMismatch, KindName(kind), KindName(want))
	}
	return blob, nil
}

// MetaKind reads the kind byte of the metadata page of fs without
// interpreting the blob — the recovery-path helper behind VerifyFile,
// which opens the FileStore itself to scan checksums first.
func MetaKind(fs *disk.FileStore) (byte, error) {
	head := fs.AppHead()
	if head == disk.InvalidPage {
		return 0, fmt.Errorf("%w: metadata head unset", ErrNoIndex)
	}
	page := make([]byte, fs.PageSize())
	if err := fs.Read(head, page); err != nil {
		return 0, fmt.Errorf("pathcache: reading metadata page: %w", err)
	}
	return page[0], nil
}
