package engine

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"pathcache/internal/disk"
	"pathcache/internal/obs"
)

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string // substring of the error; "" means success
	}{
		{"defaults", Config{}, ""},
		{"negative page size", Config{PageSize: -1}, "invalid PageSize -1"},
		{"negative pool", Config{BufferPoolPages: -8}, "invalid BufferPoolPages -8"},
		{"page size below minimum", Config{PageSize: disk.MinPageSize / 2}, "page size too small"},
		{"pool of one frame", Config{BufferPoolPages: 1}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			be, err := New(tc.cfg)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("New(%+v) = %v, want success", tc.cfg, err)
				}
				if err := be.Close(); err != nil {
					t.Fatalf("Close: %v", err)
				}
				return
			}
			if err == nil {
				be.Close()
				t.Fatalf("New(%+v) succeeded, want error containing %q", tc.cfg, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("New(%+v) = %q, want error containing %q", tc.cfg, err, tc.want)
			}
		})
	}
}

func TestNewDefaultPageSize(t *testing.T) {
	be, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := be.Pager().PageSize(); got != DefaultPageSize {
		t.Fatalf("PageSize() = %d, want %d", got, DefaultPageSize)
	}
}

func TestMetaRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "idx.pc")
	be, err := New(Config{Path: path, PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	blob := []byte("segment metadata blob")
	if err := be.SaveMeta(3, blob); err != nil {
		t.Fatalf("SaveMeta: %v", err)
	}
	if err := be.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	be2, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer be2.Close()
	kind, got, err := be2.ReadKind()
	if err != nil {
		t.Fatalf("ReadKind: %v", err)
	}
	if kind != 3 || string(got) != string(blob) {
		t.Fatalf("ReadKind = (%d, %q), want (3, %q)", kind, got, blob)
	}
	if got, err := be2.ReadMeta(3); err != nil || string(got) != string(blob) {
		t.Fatalf("ReadMeta(3) = (%q, %v), want (%q, nil)", got, err, blob)
	}
}

func TestReadMetaKindMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "idx.pc")
	be, err := New(Config{Path: path, PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	if err := be.SaveMeta(201, []byte("x")); err != nil {
		t.Fatal(err)
	}
	_, err = be.ReadMeta(202)
	if !errors.Is(err, ErrKindMismatch) {
		t.Fatalf("ReadMeta(202) = %v, want ErrKindMismatch", err)
	}
	// The message names both kinds so the mismatch is actionable even for
	// callers that only surface the text.
	for _, want := range []string{KindName(201), KindName(202)} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("mismatch error %q does not name kind %q", err, want)
		}
	}
	be.Close()
}

func TestReadKindNoIndex(t *testing.T) {
	path := filepath.Join(t.TempDir(), "idx.pc")
	be, err := New(Config{Path: path, PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer be.Close()
	if _, _, err := be.ReadKind(); !errors.Is(err, ErrNoIndex) {
		t.Fatalf("ReadKind on fresh file = %v, want ErrNoIndex", err)
	}
}

func TestSaveMetaInMemoryNoop(t *testing.T) {
	be, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := be.SaveMeta(1, []byte("ignored")); err != nil {
		t.Fatalf("SaveMeta on in-memory backend = %v, want nil", err)
	}
}

func TestSaveMetaBlobTooLarge(t *testing.T) {
	path := filepath.Join(t.TempDir(), "idx.pc")
	be, err := New(Config{Path: path, PageSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer be.Close()
	blob := make([]byte, 4096)
	if err := be.SaveMeta(1, blob); err == nil || !strings.Contains(err.Error(), "exceeds one page") {
		t.Fatalf("SaveMeta(oversized) = %v, want exceeds-one-page error", err)
	}
}

func TestRegistry(t *testing.T) {
	d := Descriptor{
		Kind:  250,
		Name:  "testkind",
		Open:  func(be *Backend, meta []byte) (any, error) { return string(meta), nil },
		Bound: obs.LogBBound,
	}
	Register(d)
	got, ok := Lookup(250)
	if !ok || got.Name != "testkind" {
		t.Fatalf("Lookup(250) = (%+v, %v), want registered descriptor", got, ok)
	}
	if name := KindName(250); name != "testkind" {
		t.Fatalf("KindName(250) = %q, want %q", name, "testkind")
	}
	if name := KindName(251); name != "unknown(251)" {
		t.Fatalf("KindName(251) = %q, want %q", name, "unknown(251)")
	}
	found := false
	for _, k := range Kinds() {
		if k.Kind == 250 {
			found = true
		}
	}
	if !found {
		t.Fatal("Kinds() does not include registered kind 250")
	}

	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: want panic", name)
			}
		}()
		fn()
	}
	mustPanic("duplicate kind", func() { Register(Descriptor{Kind: 250, Name: "other", Open: d.Open, Bound: d.Bound}) })
	mustPanic("duplicate name", func() { Register(Descriptor{Kind: 251, Name: "testkind", Open: d.Open, Bound: d.Bound}) })
	mustPanic("nil open", func() { Register(Descriptor{Kind: 252, Name: "noopen", Bound: d.Bound}) })
	mustPanic("nil bound", func() { Register(Descriptor{Kind: 253, Name: "nobound", Open: d.Open}) })
}

func TestOpPagerAttributesToCounter(t *testing.T) {
	be, err := New(Config{PageSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	p := be.Pager()
	id, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, p.PageSize())
	if err := p.Write(id, buf); err != nil {
		t.Fatal(err)
	}
	be.ResetStats()

	var c disk.Counter
	op := be.OpPager(&c)
	if err := op.Read(id, buf); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Reads != 1 {
		t.Fatalf("counter reads = %d, want 1", s.Reads)
	}
	if s := be.Stats(); s.Reads != 1 {
		t.Fatalf("store reads = %d, want 1", s.Reads)
	}
}
