package engine

import (
	"sync"
	"sync/atomic"

	"pathcache/internal/disk"
)

// Prefetcher is the bounded async pipeline that warms the buffer pool ahead
// of a descent. Query paths that know the next pages of their cached path —
// the skeletal walker sees a node's external children as soon as the node is
// decoded — hand those page IDs to Prefetch; worker goroutines read them
// through the pool so that by the time the descent arrives the access is a
// pool hit.
//
// Accounting: prefetch reads run on the backend's shared pager, never on an
// operation's counted view, so they are invisible to per-op counters. The
// only per-op effect is the Reads/CacheHits split — a prefetched page the op
// would have read from the store becomes a zero-cost hit. The sum
// Reads+CacheHits (the pages an operation touches) is unchanged, which keeps
// the theorem-bound sentinels and the cross-layout I/O identities exact.
//
// The queue is a bounded hint channel: when it is full the hint is dropped,
// not queued or executed inline, so prefetch can never slow the foreground
// path down or distort its counters.
type Prefetcher struct {
	pager disk.Pager
	queue chan disk.PageID
	wg    sync.WaitGroup

	enqueued atomic.Int64
	dropped  atomic.Int64
}

// defaultPrefetchDepth bounds the hint queue when the config leaves it zero.
const defaultPrefetchDepth = 64

// newPrefetcher starts workers goroutines reading hints through p.
func newPrefetcher(p disk.Pager, workers, depth int) *Prefetcher {
	if depth <= 0 {
		depth = defaultPrefetchDepth
	}
	pf := &Prefetcher{pager: p, queue: make(chan disk.PageID, depth)}
	for i := 0; i < workers; i++ {
		pf.wg.Add(1)
		go pf.run()
	}
	return pf
}

func (pf *Prefetcher) run() {
	defer pf.wg.Done()
	buf := make([]byte, pf.pager.PageSize())
	for id := range pf.queue {
		// A failed prefetch is a no-op: the foreground read will surface
		// the error (or succeed) on its own.
		//pcvet:allow errwrapinjected -- best-effort warm-up; the foreground read re-performs the access and surfaces any fault
		_ = pf.pager.Read(id, buf)
	}
}

// Prefetch enqueues a page hint, dropping it when the queue is full.
func (pf *Prefetcher) Prefetch(id disk.PageID) {
	select {
	case pf.queue <- id:
		pf.enqueued.Add(1)
	default:
		pf.dropped.Add(1)
	}
}

// Stats reports how many hints were accepted and dropped since start.
func (pf *Prefetcher) Stats() (enqueued, dropped int64) {
	return pf.enqueued.Load(), pf.dropped.Load()
}

// Close drains the queue and stops the workers. Must be called before the
// underlying store closes.
func (pf *Prefetcher) Close() {
	close(pf.queue)
	pf.wg.Wait()
}

// prefetchPager decorates an operation's counted pager with the Prefetch
// extension the skeletal walker probes for. Hints bypass the embedded
// counted pager entirely — they go to the shared prefetcher.
type prefetchPager struct {
	disk.Pager
	pf *Prefetcher
}

// Prefetch forwards the hint to the backend's prefetcher.
func (pp prefetchPager) Prefetch(id disk.PageID) { pp.pf.Prefetch(id) }
