// Package engine is the storage core shared by every public index type:
// the backend (store, optional buffer pool, optional backing file), the
// metadata page that makes a file self-describing, and the kind registry
// that maps on-disk kind bytes to index openers.
//
// The package splits responsibilities with the public pathcache package as
// follows: engine owns construction, teardown, aggregate I/O accounting and
// persistence plumbing; pathcache owns the query structures and registers
// one registry descriptor per persisted kind.
package engine

import (
	"fmt"

	"pathcache/internal/disk"
	"pathcache/internal/obs"
)

// DefaultPageSize is used when Config.PageSize is zero.
const DefaultPageSize = 4096

// Metered is the store interface a backend needs: paging plus counters.
type Metered interface {
	disk.Pager
	Stats() disk.Stats
	NumPages() int
	ResetStats()
}

// Backend bundles the store every index builds on. The zero value is not
// usable; construct with New or Open.
type Backend struct {
	store Metered
	pager disk.Pager
	pool  *disk.BufferPool
	pf    *Prefetcher     // non-nil when the prefetch pipeline is enabled
	file  *disk.FileStore // non-nil when the backend is file-backed
	reg   *obs.Registry   // per-store metric registry; never nil
}

// Config selects the store behind a new backend.
type Config struct {
	// PageSize is the disk page size in bytes; zero selects
	// DefaultPageSize and negative values are rejected.
	PageSize int
	// BufferPoolPages, when positive, interposes a sharded LRU buffer pool
	// of that many frames; zero means no pool and negative values are
	// rejected.
	BufferPoolPages int
	// Path, when set, backs the store with a real file.
	Path string
	// File, when set, backs the store with a FileStore created on this
	// File — the hook crash harnesses use to interpose fault injectors.
	// Takes precedence over Path.
	File disk.File
	// WrapPager, when set, wraps the pager every structure sees — the
	// fault-injection hook.
	WrapPager func(disk.Pager) disk.Pager
	// Tracer, when set, receives OpStart/OpEnd events for every operation
	// recorded against this backend.
	Tracer obs.Tracer
	// StrictBounds arms the theorem-bound sentinels: operations whose
	// measured reads breach their kind's declared bound fail with an error
	// wrapping obs.ErrBoundExceeded.
	StrictBounds bool
	// BoundMaxRatio and BoundSlack tune the sentinel threshold
	// (reads > BoundMaxRatio·bound + BoundSlack); non-positive values keep
	// the obs defaults.
	BoundMaxRatio float64
	BoundSlack    float64
	// PrefetchWorkers, when positive, starts that many background workers
	// that warm the buffer pool with the path pages query descents hint at.
	// Requires BufferPoolPages > 0 — without a pool a prefetch read has
	// nowhere to land. Prefetch reads never touch per-op counters; they only
	// convert some op reads into pool hits.
	PrefetchWorkers int
	// PrefetchDepth bounds the prefetch hint queue (default 64). Hints
	// beyond the bound are dropped, never executed inline.
	PrefetchDepth int
}

// New builds a backend from cfg. Errors are returned unwrapped; the public
// layer adds its package prefix.
func New(cfg Config) (*Backend, error) {
	if cfg.PageSize < 0 {
		return nil, fmt.Errorf("invalid PageSize %d: must be positive (zero selects the default %d)", cfg.PageSize, DefaultPageSize)
	}
	if cfg.BufferPoolPages < 0 {
		return nil, fmt.Errorf("invalid BufferPoolPages %d: must be positive (zero disables the pool)", cfg.BufferPoolPages)
	}
	if err := cfg.checkPrefetch(); err != nil {
		return nil, err
	}
	ps := cfg.PageSize
	if ps == 0 {
		ps = DefaultPageSize
	}
	be := &Backend{reg: obs.NewRegistry()}
	be.reg.SetStrict(cfg.StrictBounds)
	be.reg.SetLimits(cfg.BoundMaxRatio, cfg.BoundSlack)
	if cfg.Tracer != nil {
		be.reg.SetTracer(cfg.Tracer)
	}
	switch {
	case cfg.File != nil:
		fs, err := disk.CreateFileStoreOn(cfg.File, ps)
		if err != nil {
			return nil, err
		}
		be.store, be.file = fs, fs
	case cfg.Path != "":
		fs, err := disk.CreateFileStore(cfg.Path, ps)
		if err != nil {
			return nil, err
		}
		be.store, be.file = fs, fs
	default:
		store, err := disk.NewStore(ps)
		if err != nil {
			return nil, err
		}
		be.store = store
	}
	be.pager = be.store
	if cfg.BufferPoolPages > 0 {
		bp, err := disk.NewBufferPool(be.store, cfg.BufferPoolPages)
		if err != nil {
			return nil, err
		}
		be.pager = bp
		be.pool = bp
	}
	if cfg.WrapPager != nil {
		be.pager = cfg.WrapPager(be.pager)
	}
	if cfg.PrefetchWorkers > 0 {
		be.pf = newPrefetcher(be.pager, cfg.PrefetchWorkers, cfg.PrefetchDepth)
	}
	return be, nil
}

// checkPrefetch validates the prefetch configuration.
func (cfg Config) checkPrefetch() error {
	if cfg.PrefetchWorkers < 0 {
		return fmt.Errorf("invalid PrefetchWorkers %d: must be positive (zero disables prefetch)", cfg.PrefetchWorkers)
	}
	if cfg.PrefetchWorkers > 0 && cfg.BufferPoolPages <= 0 {
		return fmt.Errorf("PrefetchWorkers %d requires BufferPoolPages > 0: prefetch warms the pool", cfg.PrefetchWorkers)
	}
	return nil
}

// Open attaches a backend to an existing index file. Like New, errors come
// back unwrapped.
func Open(path string) (*Backend, error) {
	return OpenWith(path, Config{})
}

// OpenWith attaches a backend to an existing index file with the runtime
// configuration New applies to fresh stores: buffer pool, pager wrapper,
// tracer and bound sentinels. The file's own page size rules, so
// cfg.PageSize, cfg.Path and cfg.File are ignored. The multi-store router
// opens each of its shards through this, so every shard gets its own pool
// and its own metric registry.
func OpenWith(path string, cfg Config) (*Backend, error) {
	if cfg.BufferPoolPages < 0 {
		return nil, fmt.Errorf("invalid BufferPoolPages %d: must be positive (zero disables the pool)", cfg.BufferPoolPages)
	}
	if err := cfg.checkPrefetch(); err != nil {
		return nil, err
	}
	fs, err := disk.OpenFileStore(path)
	if err != nil {
		return nil, err
	}
	be := &Backend{store: fs, pager: fs, file: fs, reg: obs.NewRegistry()}
	be.reg.SetStrict(cfg.StrictBounds)
	be.reg.SetLimits(cfg.BoundMaxRatio, cfg.BoundSlack)
	if cfg.Tracer != nil {
		be.reg.SetTracer(cfg.Tracer)
	}
	if cfg.BufferPoolPages > 0 {
		bp, err := disk.NewBufferPool(fs, cfg.BufferPoolPages)
		if err != nil {
			if cerr := fs.Close(); cerr != nil {
				err = fmt.Errorf("%w (and closing store: %w)", err, cerr)
			}
			return nil, err
		}
		be.pager = bp
		be.pool = bp
	}
	if cfg.WrapPager != nil {
		be.pager = cfg.WrapPager(be.pager)
	}
	if cfg.PrefetchWorkers > 0 {
		be.pf = newPrefetcher(be.pager, cfg.PrefetchWorkers, cfg.PrefetchDepth)
	}
	return be, nil
}

// Pager is the pager index structures build on and query through.
func (be *Backend) Pager() disk.Pager { return be.pager }

// OpPager returns a view of the backend's pager that attributes every page
// transfer it causes to c — the per-operation accounting hook. Views are
// cheap and safe for concurrent use (each operation should get its own
// counter).
func (be *Backend) OpPager(c *disk.Counter) disk.Pager {
	p := disk.WithCounter(be.pager, c)
	if be.pf != nil {
		// Expose the Prefetch extension so descent code can hint the next
		// path pages; hints bypass the counter by construction.
		return prefetchPager{Pager: p, pf: be.pf}
	}
	return p
}

// PrefetchStats reports accepted and dropped prefetch hints (zeros when
// prefetch is disabled).
func (be *Backend) PrefetchStats() (enqueued, dropped int64) {
	if be.pf == nil {
		return 0, 0
	}
	return be.pf.Stats()
}

// Obs returns the backend's metric registry. Every index operation on this
// backend is recorded here; the public Metrics()/WithTracer APIs are views
// of it.
func (be *Backend) Obs() *obs.Registry { return be.reg }

// Stats snapshots the store-level aggregate I/O counters.
func (be *Backend) Stats() disk.Stats { return be.store.Stats() }

// NumPages reports the number of live pages in the store.
func (be *Backend) NumPages() int { return be.store.NumPages() }

// ResetStats zeroes the store's I/O counters (and the buffer pool's when
// one is configured).
func (be *Backend) ResetStats() {
	be.store.ResetStats()
	if be.pool != nil {
		be.pool.ResetStats()
	}
}

// Close flushes and closes a file-backed backend (no-op for in-memory).
// Errors are returned unwrapped.
func (be *Backend) Close() error {
	if be.pf != nil {
		be.pf.Close()
		be.pf = nil
	}
	if be.pool != nil {
		if err := be.pool.Flush(); err != nil {
			return err
		}
	}
	if be.file != nil {
		return be.file.Close()
	}
	return nil
}
