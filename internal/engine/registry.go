package engine

import (
	"fmt"
	"sort"
	"sync"

	"pathcache/internal/obs"
)

// Descriptor describes one persisted index kind: its on-disk kind byte, its
// stable human-readable name (used in verify reports and mismatch errors),
// and how to rebuild the public index from an opened backend plus its
// metadata blob.
type Descriptor struct {
	Kind byte
	Name string
	// Open rebuilds the public index wrapper on be from the metadata blob.
	// The caller owns be and closes it on error — Open must not.
	Open func(be *Backend, meta []byte) (any, error)
	// Bound is the kind's theorem I/O bound in page reads for one query
	// over n records with page capacity b returning t results — the formula
	// the bound sentinels check measured reads against. Required: a
	// persisted kind without an executable bound has no story for why its
	// I/O is optimal.
	Bound obs.BoundFunc
}

var (
	regMu     sync.RWMutex
	regByKind = map[byte]Descriptor{}
	regByName = map[string]Descriptor{}
)

// Register adds a kind descriptor. Index packages call it from init, once
// per kind; duplicate kinds or names and incomplete descriptors panic.
func Register(d Descriptor) {
	if d.Name == "" || d.Open == nil || d.Bound == nil {
		panic(fmt.Sprintf("engine: incomplete descriptor for kind %d", d.Kind))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if prev, ok := regByKind[d.Kind]; ok {
		panic(fmt.Sprintf("engine: kind %d already registered as %q", d.Kind, prev.Name))
	}
	if _, ok := regByName[d.Name]; ok {
		panic(fmt.Sprintf("engine: kind name %q already registered", d.Name))
	}
	regByKind[d.Kind] = d
	regByName[d.Name] = d
}

// Lookup returns the descriptor registered for kind.
func Lookup(kind byte) (Descriptor, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	d, ok := regByKind[kind]
	return d, ok
}

// KindName returns the registered name for kind, or "unknown(kind)" for a
// kind byte no descriptor claims.
func KindName(kind byte) string {
	if d, ok := Lookup(kind); ok {
		return d.Name
	}
	return fmt.Sprintf("unknown(%d)", kind)
}

// Kinds returns every registered descriptor, ordered by kind byte.
func Kinds() []Descriptor {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Descriptor, 0, len(regByKind))
	for _, d := range regByKind {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kind < out[j].Kind })
	return out
}
