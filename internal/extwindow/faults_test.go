package extwindow

import (
	"errors"
	"testing"

	"pathcache/internal/disk"
	"pathcache/internal/workload"
)

func TestFaultInjection(t *testing.T) {
	pts := workload.UniformPoints(2_000, 100_000, 1201)
	probe := disk.NewFaultPager(disk.MustStore(512), 1<<40)
	if _, err := Build(probe, pts); err != nil {
		t.Fatal(err)
	}
	used := 1<<40 - probe.Remaining()
	for _, budget := range []int64{0, 1, used / 2, used - 1} {
		fp := disk.NewFaultPager(disk.MustStore(512), budget)
		if _, err := Build(fp, pts); !errors.Is(err, disk.ErrInjected) {
			t.Fatalf("build budget %d: err=%v", budget, err)
		}
	}
	fp := disk.NewFaultPager(disk.MustStore(512), 1<<40)
	tr, err := Build(fp, pts)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := tr.Query(10_000, 90_000, 10_000, 90_000)
	if err != nil {
		t.Fatal(err)
	}
	for _, budget := range []int64{0, 1, 3} {
		fp.SetBudget(budget)
		if _, _, err := tr.Query(10_000, 90_000, 10_000, 90_000); !errors.Is(err, disk.ErrInjected) {
			t.Fatalf("query budget %d: err=%v", budget, err)
		}
	}
	fp.SetBudget(1 << 40)
	got, _, err := tr.Query(10_000, 90_000, 10_000, 90_000)
	if err != nil || !samePoints(got, want) {
		t.Fatalf("results changed after failed queries (err=%v)", err)
	}
}

// Reopen round-trips through the meta encoding.
func TestMetaRoundTrip(t *testing.T) {
	s := disk.MustStore(512)
	pts := workload.UniformPoints(1_000, 10_000, 1203)
	tr, err := Build(s, pts)
	if err != nil {
		t.Fatal(err)
	}
	blob := tr.Meta().Encode()
	m, err := DecodeMeta(blob)
	if err != nil {
		t.Fatal(err)
	}
	re, err := Reopen(s, m)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := tr.Query(1000, 9000, 1000, 9000)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := re.Query(1000, 9000, 1000, 9000)
	if err != nil || !samePoints(got, want) {
		t.Fatalf("reopened query differs (err=%v)", err)
	}
	if _, err := DecodeMeta(blob[:10]); err == nil {
		t.Fatal("truncated meta accepted")
	}
	if _, err := DecodeMeta(make([]byte, 64)); err == nil {
		t.Fatal("zero meta accepted")
	}
}
