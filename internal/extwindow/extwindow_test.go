package extwindow

import (
	"sort"
	"testing"
	"testing/quick"

	"pathcache/internal/disk"
	"pathcache/internal/record"
	"pathcache/internal/workload"
)

func bruteWindow(pts []record.Point, x1, x2, y1, y2 int64) []record.Point {
	var out []record.Point
	for _, p := range pts {
		if p.X >= x1 && p.X <= x2 && p.Y >= y1 && p.Y <= y2 {
			out = append(out, p)
		}
	}
	return out
}

func samePoints(a, b []record.Point) bool {
	if len(a) != len(b) {
		return false
	}
	key := func(p record.Point) [3]int64 { return [3]int64{p.X, p.Y, int64(p.ID)} }
	as := make([][3]int64, len(a))
	bs := make([][3]int64, len(b))
	for i := range a {
		as[i], bs[i] = key(a[i]), key(b[i])
	}
	less := func(s [][3]int64) func(i, j int) bool {
		return func(i, j int) bool {
			for k := 0; k < 3; k++ {
				if s[i][k] != s[j][k] {
					return s[i][k] < s[j][k]
				}
			}
			return false
		}
	}
	sort.Slice(as, less(as))
	sort.Slice(bs, less(bs))
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func TestEmpty(t *testing.T) {
	s := disk.MustStore(512)
	tr, err := Build(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, st, err := tr.Query(0, 10, 0, 10)
	if err != nil || out != nil || st.Results != 0 {
		t.Fatalf("empty query: %v %v %v", out, st, err)
	}
}

func TestInvertedWindows(t *testing.T) {
	pts := workload.UniformPoints(100, 1000, 1101)
	s := disk.MustStore(512)
	tr, err := Build(s, pts)
	if err != nil {
		t.Fatal(err)
	}
	if out, _, _ := tr.Query(500, 100, 0, 1000); out != nil {
		t.Fatal("inverted x window returned points")
	}
	if out, _, _ := tr.Query(0, 1000, 500, 100); out != nil {
		t.Fatal("inverted y window returned points")
	}
}

func TestQueryMatchesOracle(t *testing.T) {
	for _, n := range []int{1, 2, 10, 300, 5000, 20_000} {
		pts := workload.UniformPoints(n, 100_000, int64(n)+11)
		s := disk.MustStore(512)
		tr, err := Build(s, pts)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Len() != n {
			t.Fatalf("Len = %d", tr.Len())
		}
		for _, q := range workload.ThreeSidedQueries(20, 100_000, 0.3, 0.05, 1103) {
			// Reuse 3-sided windows with a bounded top.
			y2 := q.B + 20_000
			got, st, err := tr.Query(q.A1, q.A2, q.B, y2)
			if err != nil {
				t.Fatal(err)
			}
			want := bruteWindow(pts, q.A1, q.A2, q.B, y2)
			if !samePoints(got, want) {
				t.Fatalf("n=%d window (%d,%d,%d,%d): got %d want %d",
					n, q.A1, q.A2, q.B, y2, len(got), len(want))
			}
			if st.Results != len(got) {
				t.Fatal("stats mismatch")
			}
		}
	}
}

func TestDegenerateWindows(t *testing.T) {
	pts := workload.UniformPoints(5000, 10_000, 1105)
	s := disk.MustStore(512)
	tr, err := Build(s, pts)
	if err != nil {
		t.Fatal(err)
	}
	cases := [][4]int64{
		{-1 << 40, 1 << 40, -1 << 40, 1 << 40}, // everything
		{5000, 5000, 0, 10_000},                // zero-width x
		{0, 10_000, 5000, 5000},                // zero-height y
		{10_001, 10_002, 0, 10_000},            // right of data
		{0, 10_000, 10_001, 10_002},            // above data
	}
	for _, c := range cases {
		got, _, err := tr.Query(c[0], c[1], c[2], c[3])
		if err != nil {
			t.Fatal(err)
		}
		if want := bruteWindow(pts, c[0], c[1], c[2], c[3]); !samePoints(got, want) {
			t.Fatalf("window %v: got %d want %d", c, len(got), len(want))
		}
	}
}

func TestQueryProperty(t *testing.T) {
	f := func(raw []struct{ X, Y int16 }, x1, x2, y1, y2 int16) bool {
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		if y1 > y2 {
			y1, y2 = y2, y1
		}
		pts := make([]record.Point, len(raw))
		for i, r := range raw {
			pts[i] = record.Point{X: int64(r.X), Y: int64(r.Y), ID: uint64(i + 1)}
		}
		s := disk.MustStore(512)
		tr, err := Build(s, pts)
		if err != nil {
			return false
		}
		got, _, err := tr.Query(int64(x1), int64(x2), int64(y1), int64(y2))
		if err != nil {
			return false
		}
		return samePoints(got, bruteWindow(pts, int64(x1), int64(x2), int64(y1), int64(y2)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func log2(n int) int {
	r := 0
	for v := 1; v < n; v *= 2 {
		r++
	}
	return r
}

// Query cost: O(log(n/B) + t/B) — one directory + one partial page per
// canonical node, plus the output.
func TestQueryIOBound(t *testing.T) {
	const n = 50_000
	pts := workload.UniformPoints(n, 1_000_000, 1107)
	s := disk.MustStore(512)
	tr, err := Build(s, pts)
	if err != nil {
		t.Fatal(err)
	}
	b := tr.B()
	canon := 2 * log2(n/b+2)
	for _, q := range workload.ThreeSidedQueries(30, 1_000_000, 0.2, 0.01, 1109) {
		y2 := q.B + 100_000
		s.ResetStats()
		got, _, err := tr.Query(q.A1, q.A2, q.B, y2)
		if err != nil {
			t.Fatal(err)
		}
		reads := int(s.Stats().Reads)
		bound := 3*canon + 2*len(got)/b + 10
		if reads > bound {
			t.Fatalf("window (%d,%d,%d,%d): %d reads for t=%d (bound %d)",
				q.A1, q.A2, q.B, y2, reads, len(got), bound)
		}
	}
}

// Space: O((n/B)·log(n/B)) pages.
func TestSpaceBound(t *testing.T) {
	const n = 30_000
	pts := workload.UniformPoints(n, 1_000_000, 1111)
	s := disk.MustStore(512)
	tr, err := Build(s, pts)
	if err != nil {
		t.Fatal(err)
	}
	b := tr.B()
	bound := 6 * (n/b + 1) * (log2(n/b+2) + 1)
	if got := tr.TotalPages(); got > bound {
		sk, lists, dirs := tr.SpacePages()
		t.Fatalf("pages=%d bound=%d (skel=%d lists=%d dirs=%d)", got, bound, sk, lists, dirs)
	}
	if s.NumPages() != tr.TotalPages() {
		t.Fatalf("store %d pages, structure claims %d", s.NumPages(), tr.TotalPages())
	}
}
