package extwindow

import (
	"encoding/binary"

	"pathcache/internal/disk"
	"pathcache/internal/record"
	"pathcache/internal/skeletal"
)

// winQuery carries the state of one window query.
type winQuery struct {
	t              *Tree
	x1, x2, y1, y2 int64
	w              *skeletal.Walker
	out            []record.Point
	st             QueryStats
}

// Query reports every point with x1 <= x <= x2 and y1 <= y <= y2.
func (t *Tree) Query(x1, x2, y1, y2 int64) ([]record.Point, QueryStats, error) {
	q := &winQuery{t: t, x1: x1, x2: x2, y1: y1, y2: y2, w: t.skel.NewWalker()}
	if t.n == 0 || x1 > x2 || y1 > y2 {
		return nil, q.st, nil
	}
	// Fork descent: internal nodes always have two children, so the walk
	// ends at a leaf or at the first node whose split lies in [x1, x2].
	fpath, err := q.w.Descend(t.skel.Root(), func(n skeletal.Node) skeletal.Dir {
		if n.IsLeaf() {
			return skeletal.Stop
		}
		if x2 < n.Key {
			return skeletal.Left
		}
		if x1 > n.Key {
			return skeletal.Right
		}
		return skeletal.Stop
	})
	if err != nil {
		return nil, q.st, err
	}
	q.st.PathPages = q.w.PagesLoaded()
	fork := fpath[len(fpath)-1]

	if fork.IsLeaf() {
		if err := q.scanFiltered(fork.Payload); err != nil {
			return nil, q.st, err
		}
		q.st.Results = len(q.out)
		return q.out, q.st, nil
	}
	// Left path toward x1: right children hanging off left turns are
	// canonical (their x-span lies inside [x1, x2]).
	if err := q.sidePath(fork.Left, true); err != nil {
		return nil, q.st, err
	}
	// Right path toward x2: mirror.
	if err := q.sidePath(fork.Right, false); err != nil {
		return nil, q.st, err
	}
	q.st.Results = len(q.out)
	return q.out, q.st, nil
}

// sidePath walks one boundary path, reporting canonical subtrees via their
// y-lists and the terminal leaf via a filtered scan.
func (q *winQuery) sidePath(ref skeletal.NodeRef, leftSide bool) error {
	for ref.Valid() {
		n, err := q.w.Node(ref)
		if err != nil {
			return err
		}
		payload := n.Payload // walker view buffers are private and immutable
		left, right, key, isLeaf := n.Left, n.Right, n.Key, n.IsLeaf()
		if isLeaf {
			return q.scanFiltered(payload)
		}
		if leftSide {
			if q.x1 > key {
				ref = right
				continue
			}
			// Going left: the right child is canonical.
			if err := q.scanCanonical(right); err != nil {
				return err
			}
			ref = left
		} else {
			if q.x2 < key {
				ref = left
				continue
			}
			// Going right: the left child is canonical.
			if err := q.scanCanonical(left); err != nil {
				return err
			}
			ref = right
		}
	}
	return nil
}

// scanCanonical reports the [y1, y2] slice of a canonical subtree's y-list,
// entering at the directory-located page.
func (q *winQuery) scanCanonical(ref skeletal.NodeRef) error {
	n, err := q.w.Node(ref)
	if err != nil {
		return err
	}
	head, count := plYList(n.Payload)
	dirHead, _ := plDir(n.Payload)
	if count == 0 {
		return nil
	}
	// Locate the last page whose first y is <= y1; start there.
	start := head
	pages, err := disk.ScanChain(q.t.pager, dirRecSize, dirHead, func(rec []byte) bool {
		page := disk.PageID(binary.LittleEndian.Uint64(rec[0:]))
		firstY := int64(binary.LittleEndian.Uint64(rec[8:]))
		if firstY > q.y1 {
			return false
		}
		start = page
		return true
	})
	if err != nil {
		return err
	}
	q.st.ListPages += pages

	matched := 0
	pages, err = disk.ScanChain(q.t.pager, record.PointSize, start, func(rec []byte) bool {
		v := record.PointView(rec)
		y := v.Y()
		if y > q.y2 {
			return false
		}
		if x := v.X(); y >= q.y1 && x >= q.x1 && x <= q.x2 {
			q.out = append(q.out, v.Point())
			matched++
		}
		return true
	})
	if err != nil {
		return err
	}
	q.account(pages, matched)
	return nil
}

// scanFiltered reads a boundary leaf's full list with both filters.
func (q *winQuery) scanFiltered(payload []byte) error {
	head, count := plYList(payload)
	if count == 0 {
		return nil
	}
	matched := 0
	pages, err := disk.ScanChain(q.t.pager, record.PointSize, head, func(rec []byte) bool {
		v := record.PointView(rec)
		y := v.Y()
		if y > q.y2 {
			return false
		}
		if x := v.X(); y >= q.y1 && x >= q.x1 && x <= q.x2 {
			q.out = append(q.out, v.Point())
			matched++
		}
		return true
	})
	if err != nil {
		return err
	}
	q.account(pages, matched)
	return nil
}

func (q *winQuery) account(pages, matched int) {
	q.st.ListPages += pages
	full := matched / q.t.b
	q.st.UsefulIOs += full
	q.st.WastefulIOs += pages - full
}
