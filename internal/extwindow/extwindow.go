// Package extwindow answers general (4-sided) window queries
// {x1 <= x <= x2, y1 <= y <= y2} — the outermost query class of the paper's
// Figure 1. The paper leaves general 2-dimensional search open (optimal
// external 4-sided search arrived only years later); this package is the
// repository's extension beyond the paper: an external range tree with
// per-node page directories.
//
// Structure: a binary tree over x with fat leaves of B points; every
// internal node stores its subtree's points in a y-ascending blocked list
// plus a small directory of (page, first-y) entries. A query decomposes
// [x1, x2] into O(log(n/B)) canonical subtrees; for each, the directory
// locates the first page reaching y1 and the scan stops past y2, so each
// canonical node costs O(1 + t_i/B) I/Os after O(log_B n) descent pages:
// O(log(n/B) + t/B) total, with O((n/B)·log(n/B)) pages of storage.
package extwindow

import (
	"encoding/binary"
	"fmt"

	"pathcache/internal/disk"
	"pathcache/internal/pstcore"
	"pathcache/internal/record"
	"pathcache/internal/skeletal"
)

// Node payload: ylist head(8) + count(4) + directory head(8) + dir count(4).
const payloadSize = 24

// dirRec is one directory entry: page id (8) + first y on that page (8).
const dirRecSize = 16

// Tree is a static external range tree for 4-sided window queries.
type Tree struct {
	pager disk.Pager
	skel  *skeletal.Tree
	b     int
	n     int

	listPages int
	dirPages  int
}

// QueryStats profiles one window query.
type QueryStats struct {
	PathPages   int
	ListPages   int
	UsefulIOs   int
	WastefulIOs int
	Results     int
}

// buildNode carries the per-node y-sorted points during construction.
type buildNode struct {
	pts         []record.Point // y-ascending
	split       int64
	left, right *buildNode
}

// Build constructs the tree over pts under disk.LayoutSorted. The input
// slice is not retained or modified.
func Build(p disk.Pager, pts []record.Point) (*Tree, error) {
	return BuildLayout(p, pts, disk.LayoutSorted)
}

// BuildLayout is Build with an explicit skeletal page layout.
func BuildLayout(p disk.Pager, pts []record.Point, layout disk.Layout) (*Tree, error) {
	b := disk.ChainCap(p.PageSize(), record.PointSize)
	if b < 2 {
		return nil, fmt.Errorf("extwindow: page size %d holds %d points; need >= 2", p.PageSize(), b)
	}
	t := &Tree{pager: p, b: b, n: len(pts)}
	if len(pts) == 0 {
		skel, err := skeletal.BuildLayout(p, nil, payloadSize, layout)
		if err != nil {
			return nil, err
		}
		t.skel = skel
		return t, nil
	}
	root := buildMem(pstcore.SortedAsc(pts), b)
	bn, err := t.persist(root)
	if err != nil {
		return nil, err
	}
	skel, err := skeletal.BuildLayout(p, bn, payloadSize, layout)
	if err != nil {
		return nil, err
	}
	t.skel = skel
	return t, nil
}

// buildMem builds the x-tree bottom-up, merging children's y-sorted lists.
func buildMem(sorted []record.Point, b int) *buildNode {
	n := &buildNode{}
	if len(sorted) <= b {
		n.pts = append([]record.Point(nil), sorted...)
		sortByYAsc(n.pts)
		n.split = sorted[len(sorted)/2].X
		return n
	}
	mid := len(sorted) / 2
	n.split = sorted[mid].X
	n.left = buildMem(sorted[:mid], b)
	n.right = buildMem(sorted[mid:], b)
	n.pts = mergeByY(n.left.pts, n.right.pts)
	return n
}

func sortByYAsc(pts []record.Point) {
	pstcore.SortByYDesc(pts)
	for i, j := 0, len(pts)-1; i < j; i, j = i+1, j-1 {
		pts[i], pts[j] = pts[j], pts[i]
	}
}

// mergeByY merges two y-ascending lists.
func mergeByY(a, b []record.Point) []record.Point {
	out := make([]record.Point, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].Y <= b[j].Y {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// persist writes each node's y-list and directory.
func (t *Tree) persist(n *buildNode) (*skeletal.BuildNode, error) {
	if n == nil {
		return nil, nil
	}
	w, err := disk.NewChainWriter(t.pager, record.PointSize)
	if err != nil {
		return nil, err
	}
	rec := make([]byte, record.PointSize)
	for _, p := range n.pts {
		p.Encode(rec)
		if err := w.Append(rec); err != nil {
			return nil, err
		}
	}
	head, pages, _, err := w.Close()
	if err != nil {
		return nil, err
	}
	t.listPages += pages

	// Directory: (page, first y) per chain page.
	ids := w.Pages()
	dir := make([]byte, 0, len(ids)*dirRecSize)
	perPage := t.b
	for i, id := range ids {
		var ent [dirRecSize]byte
		binary.LittleEndian.PutUint64(ent[0:], uint64(id))
		binary.LittleEndian.PutUint64(ent[8:], uint64(n.pts[i*perPage].Y))
		dir = append(dir, ent[:]...)
	}
	dirHead, dirPages, err := disk.WriteChain(t.pager, dirRecSize, dir)
	if err != nil {
		return nil, err
	}
	t.dirPages += dirPages

	payload := make([]byte, payloadSize)
	binary.LittleEndian.PutUint64(payload[0:], uint64(head))
	binary.LittleEndian.PutUint32(payload[8:], uint32(len(n.pts)))
	binary.LittleEndian.PutUint64(payload[12:], uint64(dirHead))
	binary.LittleEndian.PutUint32(payload[20:], uint32(len(ids)))

	bn := &skeletal.BuildNode{Key: n.split, Payload: payload}
	if bn.Left, err = t.persist(n.left); err != nil {
		return nil, err
	}
	if bn.Right, err = t.persist(n.right); err != nil {
		return nil, err
	}
	return bn, nil
}

func plYList(p []byte) (disk.PageID, int) {
	return disk.PageID(binary.LittleEndian.Uint64(p[0:])), int(binary.LittleEndian.Uint32(p[8:]))
}
func plDir(p []byte) (disk.PageID, int) {
	return disk.PageID(binary.LittleEndian.Uint64(p[12:])), int(binary.LittleEndian.Uint32(p[20:]))
}

// WithPager returns a read-only view of the tree whose queries run through
// p — the hook for per-operation I/O attribution via disk.WithCounter.
func (t *Tree) WithPager(p disk.Pager) *Tree {
	c := *t
	c.pager = p
	c.skel = t.skel.WithPager(p)
	return &c
}

// Len reports the number of indexed points.
func (t *Tree) Len() int { return t.n }

// B reports the page capacity in points.
func (t *Tree) B() int { return t.b }

// SpacePages breaks down storage: skeleton, y-lists, directories.
func (t *Tree) SpacePages() (skeleton, lists, dirs int) {
	return t.skel.NumPages(), t.listPages, t.dirPages
}

// TotalPages is the complete storage footprint in pages.
func (t *Tree) TotalPages() int {
	return t.skel.NumPages() + t.listPages + t.dirPages
}

// Layout reports the skeletal page layout the tree was built with.
func (t *Tree) Layout() disk.Layout { return t.skel.Layout() }

// Meta is the reopen metadata of a window tree.
type Meta struct {
	N         int
	ListPages int
	DirPages  int
	Skel      skeletal.Meta
}

const metaMagic = uint32(0x77696e31) // "win1"

// Meta returns the tree's reopen metadata.
func (t *Tree) Meta() Meta {
	return Meta{N: t.n, ListPages: t.listPages, DirPages: t.dirPages, Skel: t.skel.Meta()}
}

// Encode serializes the meta.
func (m Meta) Encode() []byte {
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], metaMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(m.N))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(m.ListPages))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(m.DirPages))
	return m.Skel.Append(hdr[:])
}

// DecodeMeta deserializes a meta blob produced by Encode.
func DecodeMeta(buf []byte) (Meta, error) {
	if len(buf) < 16 {
		return Meta{}, fmt.Errorf("extwindow: truncated meta")
	}
	if binary.LittleEndian.Uint32(buf[0:]) != metaMagic {
		return Meta{}, fmt.Errorf("extwindow: bad meta magic")
	}
	m := Meta{
		N:         int(int32(binary.LittleEndian.Uint32(buf[4:]))),
		ListPages: int(int32(binary.LittleEndian.Uint32(buf[8:]))),
		DirPages:  int(int32(binary.LittleEndian.Uint32(buf[12:]))),
	}
	var err error
	m.Skel, _, err = skeletal.DecodeMeta(buf[16:])
	return m, err
}

// Reopen attaches to a previously built tree persisted on p.
func Reopen(p disk.Pager, m Meta) (*Tree, error) {
	b := disk.ChainCap(p.PageSize(), record.PointSize)
	if b < 2 {
		return nil, fmt.Errorf("extwindow: page size %d too small", p.PageSize())
	}
	if m.Skel.PayloadSize != payloadSize {
		return nil, fmt.Errorf("extwindow: payload size %d, want %d (format drift)", m.Skel.PayloadSize, payloadSize)
	}
	skel, err := skeletal.Reopen(p, m.Skel)
	if err != nil {
		return nil, err
	}
	return &Tree{pager: p, skel: skel, b: b, n: m.N, listPages: m.ListPages, dirPages: m.DirPages}, nil
}
