package disk

import (
	"errors"
	"fmt"
	"sync"
)

// ErrCrashed marks every operation at or after a simulated kill point. A
// structure driven over a crashing store must surface an error chain that
// errors.Is-matches it — the same propagation contract the FaultPager tests
// enforce for ErrInjected.
var ErrCrashed = errors.New("disk: simulated crash")

// CrashFile wraps a File and simulates the process being killed at an
// arbitrary write: the first `limit` WriteAt calls pass through untouched,
// the next one lands only a prefix of its bytes (a torn write — zero bytes
// for a clean kill between I/Os), and every operation from that point on
// fails with ErrCrashed, as if the process were gone. Reads before the crash
// pass through, so a build behaves normally right up to the kill.
//
// With limit < 0 the file never crashes and merely counts writes — the
// instrumentation pass a crash sweep uses to enumerate its kill points.
//
// CrashFile is safe for concurrent use, though a crash sweep is inherently a
// single-goroutine protocol.
type CrashFile struct {
	mu      sync.Mutex
	inner   File
	limit   int64 // writes allowed before the crash; <0 = count only
	torn    int   // bytes of the crashing write that still land
	writes  int64
	crashed bool
}

// NewCrashFile arms a crash after `limit` complete writes; the crashing
// write itself lands only its first `torn` bytes. limit < 0 disables the
// crash (counting mode).
func NewCrashFile(inner File, limit int64, torn int) *CrashFile {
	if torn < 0 {
		torn = 0
	}
	return &CrashFile{inner: inner, limit: limit, torn: torn}
}

// Writes reports how many WriteAt calls completed (plus the torn one, if the
// crash fired).
func (c *CrashFile) Writes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.writes
}

// Crashed reports whether the kill point was reached.
func (c *CrashFile) Crashed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.crashed
}

// ReadAt implements File.
func (c *CrashFile) ReadAt(p []byte, off int64) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return 0, ErrCrashed
	}
	return c.inner.ReadAt(p, off)
}

// WriteAt implements File, firing the armed crash once `limit` writes have
// completed.
func (c *CrashFile) WriteAt(p []byte, off int64) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return 0, ErrCrashed
	}
	if c.limit >= 0 && c.writes >= c.limit {
		c.crashed = true
		n := c.torn
		if n > len(p) {
			n = len(p)
		}
		if n > 0 {
			// The torn prefix reaches the platter; the error below is the
			// process dying before the rest of the buffer made it.
			if _, werr := c.inner.WriteAt(p[:n], off); werr != nil {
				return 0, fmt.Errorf("disk: torn write: %w", werr)
			}
		}
		c.writes++
		return n, ErrCrashed
	}
	c.writes++
	return c.inner.WriteAt(p, off)
}

// Size implements File.
func (c *CrashFile) Size() (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return 0, ErrCrashed
	}
	return c.inner.Size()
}

// Sync implements File.
func (c *CrashFile) Sync() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return ErrCrashed
	}
	return c.inner.Sync()
}

// Close implements File. Closing a crashed file fails like every other
// post-crash operation; the underlying image remains readable through
// whatever handle the harness kept (e.g. MemFile.Bytes).
func (c *CrashFile) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return ErrCrashed
	}
	//pcvet:allow lockheldio -- terminal teardown; the handle must not close twice under a racing crash check
	return c.inner.Close()
}

// CrashPager bundles the pieces of one crash-simulation run: an in-memory
// image, a CrashFile armed at a chosen kill point, and a FileStore built on
// top. Drive a build through Store until it fails with ErrCrashed, then call
// Reopen to get a fresh FileStore over the bytes that actually landed — the
// post-crash on-disk state — and check it either recovers or fails with a
// wrapped ErrCorrupt.
type CrashPager struct {
	// Store is the live, checksummed store the build runs against.
	Store *FileStore
	// Crash is the armed injector; Writes()/Crashed() expose its state.
	Crash *CrashFile
	mem   *MemFile
}

// NewCrashPager creates a fresh store over an in-memory image that will
// crash after `limit` writes, tearing the crashing write to `torn` bytes.
// limit < 0 yields a non-crashing, write-counting store (the instrumentation
// pass). When the crash fires during store creation itself the error is
// returned alongside a CrashPager with a nil Store, so the surviving image
// stays reachable through Image/Reopen — a crash sweep treats that kill point
// like any other.
func NewCrashPager(pageSize int, limit int64, torn int) (*CrashPager, error) {
	mem := NewMemFile()
	cf := NewCrashFile(mem, limit, torn)
	cp := &CrashPager{Crash: cf, mem: mem}
	fs, err := CreateFileStoreOn(cf, pageSize)
	if err != nil {
		return cp, err
	}
	cp.Store = fs
	return cp, nil
}

// Image returns a copy of the bytes that reached the backing image so far —
// after a crash, the exact surviving on-disk state.
func (cp *CrashPager) Image() []byte { return cp.mem.Bytes() }

// Reopen opens a fresh FileStore over a snapshot of the surviving image, the
// way a restarted process would.
func (cp *CrashPager) Reopen() (*FileStore, error) {
	return OpenFileStoreOn(NewMemFileFrom(cp.mem.Bytes()))
}
