package disk

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// BenchmarkPoolParallel measures warm-cache read throughput through the
// sharded pool as reader concurrency grows, over a simulated device with
// per-page read latency (hits free, misses block). One benchmark iteration
// replays the whole trace, partitioned worker w -> accesses w, w+W, ....
// The interesting comparison is time/op across the workers=1..8
// sub-benchmarks: misses overlap, so more workers means proportionally less
// wall-clock per batch until shard contention bites.
func BenchmarkPoolParallel(b *testing.B) {
	const (
		pageSize = 512
		nPages   = 256
		capacity = 128
		length   = 1024
	)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			s := MustStore(pageSize)
			buf := make([]byte, pageSize)
			ids := make([]PageID, nPages)
			for i := range ids {
				id, err := s.Alloc()
				if err != nil {
					b.Fatal(err)
				}
				ids[i] = id
			}
			slow := &SlowPager{Inner: s, ReadDelay: 50 * time.Microsecond}
			p, err := NewBufferPool(slow, capacity)
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(17))
			trace := make([]PageID, length)
			for i := range trace {
				trace[i] = ids[rng.Intn(nPages)]
			}
			// Warm pass so every measured pass sees the steady state.
			for _, id := range trace {
				if err := p.Read(id, buf); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for g := 0; g < workers; g++ {
					wg.Add(1)
					go func(g int) {
						defer wg.Done()
						buf := make([]byte, pageSize)
						for j := g; j < len(trace); j += workers {
							if err := p.Read(trace[j], buf); err != nil {
								b.Error(err)
								return
							}
						}
					}(g)
				}
				wg.Wait()
			}
			st := p.Stats()
			total := st.Hits + st.Misses
			if total > 0 {
				b.ReportMetric(float64(st.Hits)/float64(total)*100, "hit%")
			}
		})
	}
}
