package disk

import "fmt"

// Layout selects the intra-page placement scheme of a fixed-width node or
// entry codec. The layout is chosen at build time, stamped into every page
// header (and into the structure's reopen metadata), and never changes for
// the lifetime of the structure: readers self-dispatch on the recorded byte.
//
// The layout only affects CPU behaviour inside a page. Node-to-page
// assignment, page allocation order and descent page sequences are layout
// independent, so two structures built from the same input under different
// layouts perform identical page I/O.
type Layout uint8

const (
	// LayoutSorted is the classic format: entries stored in key order,
	// searched by binary search over decoded entries.
	LayoutSorted Layout = 0
	// LayoutEytzinger stores entries in implicit-binary-tree (BFS/heap)
	// order: the root at slot 0, children of slot i at 2i+1 and 2i+2.
	// Searches descend by index arithmetic with branch-free compares, which
	// keeps the hot cache lines at the top of the tree and removes the
	// unpredictable branch per probe of binary search.
	LayoutEytzinger Layout = 1
)

// numLayouts bounds the valid layout bytes; anything >= this is corrupt.
const numLayouts = 2

// Valid reports whether l is a known layout byte.
func (l Layout) Valid() bool { return l < numLayouts }

// String names the layout for CLI output and error messages.
func (l Layout) String() string {
	switch l {
	case LayoutSorted:
		return "sorted"
	case LayoutEytzinger:
		return "eytzinger"
	default:
		return fmt.Sprintf("layout(%d)", uint8(l))
	}
}

// CheckLayout returns a corruption error (wrapping ErrCorrupt) when b is not
// a valid layout byte — the shared validation every page codec applies to
// its header before trusting the rest of the page.
func CheckLayout(b byte) (Layout, error) {
	l := Layout(b)
	if !l.Valid() {
		return 0, fmt.Errorf("invalid layout byte %d: %w", b, ErrCorrupt)
	}
	return l, nil
}
