package disk

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func newFileStore(t *testing.T, pageSize int) (*FileStore, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "store.pc")
	fs, err := CreateFileStore(path, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fs.Close() })
	return fs, path
}

func TestFileStoreRoundTrip(t *testing.T) {
	fs, _ := newFileStore(t, 128)
	id, err := fs.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 128)
	for i := range buf {
		buf[i] = byte(i * 3)
	}
	if err := fs.Write(id, buf); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 128)
	if err := fs.Read(id, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, got) {
		t.Fatal("round trip mismatch")
	}
	st := fs.Stats()
	if st.Reads != 1 || st.Writes != 1 || st.Allocs != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFileStorePersistence(t *testing.T) {
	fs, path := newFileStore(t, 128)
	var ids []PageID
	for i := 0; i < 10; i++ {
		id, err := fs.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 128)
		buf[0] = byte(i + 1)
		if err := fs.Write(id, buf); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// Free a couple to persist the free list too.
	if err := fs.Free(ids[3]); err != nil {
		t.Fatal(err)
	}
	if err := fs.Free(ids[7]); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.PageSize() != 128 {
		t.Fatalf("page size = %d", re.PageSize())
	}
	if re.NumPages() != 8 {
		t.Fatalf("NumPages = %d, want 8", re.NumPages())
	}
	buf := make([]byte, 128)
	for i, id := range ids {
		if i == 3 || i == 7 {
			if err := re.Read(id, buf); !errors.Is(err, ErrBadPage) {
				t.Fatalf("read of freed page %d: %v", id, err)
			}
			continue
		}
		if err := re.Read(id, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte(i+1) {
			t.Fatalf("page %d: got %d want %d", id, buf[0], i+1)
		}
	}
	// Freed pages are reused before the file grows.
	a, err := re.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if a != ids[7] && a != ids[3] {
		t.Fatalf("expected reuse of a freed page, got %d", a)
	}
	if err := re.Read(a, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0 {
		t.Fatal("reused page not zeroed")
	}
}

func TestFileStoreErrors(t *testing.T) {
	fs, path := newFileStore(t, 128)
	buf := make([]byte, 128)
	if err := fs.Read(5, buf); !errors.Is(err, ErrBadPage) {
		t.Fatalf("read unallocated: %v", err)
	}
	if err := fs.Read(0, make([]byte, 10)); !errors.Is(err, ErrShortBuf) {
		t.Fatalf("short buf: %v", err)
	}
	id, _ := fs.Alloc()
	if err := fs.Free(id); err != nil {
		t.Fatal(err)
	}
	if err := fs.Free(id); !errors.Is(err, ErrDoubleUse) {
		t.Fatalf("double free: %v", err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Alloc(); !errors.Is(err, errClosed) {
		t.Fatalf("alloc after close: %v", err)
	}
	if _, err := CreateFileStore(path, 1); err == nil {
		t.Fatal("tiny page accepted")
	}
	if _, err := OpenFileStore(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("opened missing file")
	}
}

func TestFileStoreRejectsForeignFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "not-a-store")
	if err := writeFile(path, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileStore(path); err == nil {
		t.Fatal("opened a non-store file")
	}
}

func TestFileStoreChains(t *testing.T) {
	fs, _ := newFileStore(t, 128)
	recs := make([]byte, 16*50)
	for i := range recs {
		recs[i] = byte(i)
	}
	head, _, err := WriteChain(fs, 16, recs)
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	if _, err := ScanChain(fs, 16, head, func(r []byte) bool {
		got = append(got, r...)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(recs, got) {
		t.Fatal("chain round trip on file store failed")
	}
	if err := FreeChain(fs, head); err != nil {
		t.Fatal(err)
	}
	if fs.NumPages() != 0 {
		t.Fatalf("pages leaked: %d", fs.NumPages())
	}
}

func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

// Property: any alloc/write/free sequence survives a close/reopen cycle
// with identical contents and free-set.
func TestFileStoreReopenProperty(t *testing.T) {
	f := func(ops []struct {
		Free bool
		Fill uint8
	}) bool {
		path := filepath.Join(t.TempDir(), "p.pc")
		fs, err := CreateFileStore(path, 128)
		if err != nil {
			return false
		}
		contents := map[PageID][]byte{}
		var liveIDs []PageID
		for _, op := range ops {
			if op.Free && len(liveIDs) > 0 {
				id := liveIDs[0]
				liveIDs = liveIDs[1:]
				if fs.Free(id) != nil {
					return false
				}
				delete(contents, id)
				continue
			}
			id, err := fs.Alloc()
			if err != nil {
				return false
			}
			buf := make([]byte, 128)
			for i := range buf {
				buf[i] = op.Fill
			}
			if fs.Write(id, buf) != nil {
				return false
			}
			contents[id] = buf
			liveIDs = append(liveIDs, id)
		}
		if fs.Close() != nil {
			return false
		}
		re, err := OpenFileStore(path)
		if err != nil {
			return false
		}
		defer re.Close()
		if re.NumPages() != len(contents) {
			return false
		}
		got := make([]byte, 128)
		for id, want := range contents {
			if re.Read(id, got) != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
