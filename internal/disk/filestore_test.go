package disk

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func newFileStore(t *testing.T, pageSize int) (*FileStore, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "store.pc")
	fs, err := CreateFileStore(path, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fs.Close() })
	return fs, path
}

func TestFileStoreUsablePageSize(t *testing.T) {
	fs, _ := newFileStore(t, 128)
	if got := fs.PageSize(); got != 128-pageTrailerSize {
		t.Fatalf("PageSize() = %d, want %d (physical minus checksum trailer)", got, 128-pageTrailerSize)
	}
	// B derives from the usable size, so chain packing stays exact.
	if c := ChainCap(fs.PageSize(), 16); c != (fs.PageSize()-chainHeader)/16 {
		t.Fatalf("ChainCap over usable size = %d", c)
	}
}

func TestFileStoreRoundTrip(t *testing.T) {
	fs, _ := newFileStore(t, 128)
	ps := fs.PageSize()
	id, err := fs.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, ps)
	for i := range buf {
		buf[i] = byte(i * 3)
	}
	if err := fs.Write(id, buf); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, ps)
	if err := fs.Read(id, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, got) {
		t.Fatal("round trip mismatch")
	}
	st := fs.Stats()
	if st.Reads != 1 || st.Writes != 1 || st.Allocs != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFileStorePersistence(t *testing.T) {
	fs, path := newFileStore(t, 128)
	ps := fs.PageSize()
	var ids []PageID
	for i := 0; i < 10; i++ {
		id, err := fs.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, ps)
		buf[0] = byte(i + 1)
		if err := fs.Write(id, buf); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// Free a couple to persist the free list too.
	if err := fs.Free(ids[3]); err != nil {
		t.Fatal(err)
	}
	if err := fs.Free(ids[7]); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.PageSize() != ps {
		t.Fatalf("page size = %d, want %d", re.PageSize(), ps)
	}
	if re.NumPages() != 8 {
		t.Fatalf("NumPages = %d, want 8", re.NumPages())
	}
	buf := make([]byte, ps)
	for i, id := range ids {
		if i == 3 || i == 7 {
			if err := re.Read(id, buf); !errors.Is(err, ErrBadPage) {
				t.Fatalf("read of freed page %d: %v", id, err)
			}
			continue
		}
		if err := re.Read(id, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte(i+1) {
			t.Fatalf("page %d: got %d want %d", id, buf[0], i+1)
		}
	}
	// Freed pages are reused before the file grows.
	a, err := re.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if a != ids[7] && a != ids[3] {
		t.Fatalf("expected reuse of a freed page, got %d", a)
	}
	if err := re.Read(a, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0 {
		t.Fatal("reused page not zeroed")
	}
}

func TestFileStoreErrors(t *testing.T) {
	fs, path := newFileStore(t, 128)
	buf := make([]byte, fs.PageSize())
	if err := fs.Read(5, buf); !errors.Is(err, ErrBadPage) {
		t.Fatalf("read unallocated: %v", err)
	}
	if err := fs.Read(0, make([]byte, 10)); !errors.Is(err, ErrShortBuf) {
		t.Fatalf("short buf: %v", err)
	}
	id, _ := fs.Alloc()
	if err := fs.Free(id); err != nil {
		t.Fatal(err)
	}
	if err := fs.Free(id); !errors.Is(err, ErrDoubleUse) {
		t.Fatalf("double free: %v", err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Alloc(); !errors.Is(err, errClosed) {
		t.Fatalf("alloc after close: %v", err)
	}
	if _, err := CreateFileStore(path, 1); err == nil {
		t.Fatal("tiny page accepted")
	}
	if _, err := CreateFileStore(path, MinFilePageSize-1); err == nil {
		t.Fatal("page below superblock slots accepted")
	}
	if _, err := OpenFileStore(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("opened missing file")
	}
}

func TestFileStoreRejectsForeignFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "not-a-store")
	if err := writeFile(path, make([]byte, 256)); err != nil {
		t.Fatal(err)
	}
	_, err := OpenFileStore(path)
	if err == nil {
		t.Fatal("opened a non-store file")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("foreign file error %v, want wrapped ErrCorrupt", err)
	}
}

func TestFileStoreChains(t *testing.T) {
	fs, _ := newFileStore(t, 128)
	recs := make([]byte, 16*50)
	for i := range recs {
		recs[i] = byte(i)
	}
	head, _, err := WriteChain(fs, 16, recs)
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	if _, err := ScanChain(fs, 16, head, func(r []byte) bool {
		got = append(got, r...)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(recs, got) {
		t.Fatal("chain round trip on file store failed")
	}
	if err := FreeChain(fs, head); err != nil {
		t.Fatal(err)
	}
	if fs.NumPages() != 0 {
		t.Fatalf("pages leaked: %d", fs.NumPages())
	}
}

func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

// Property: any alloc/write/free sequence survives a close/reopen cycle
// with identical contents and free-set.
func TestFileStoreReopenProperty(t *testing.T) {
	f := func(ops []struct {
		Free bool
		Fill uint8
	}) bool {
		path := filepath.Join(t.TempDir(), "p.pc")
		fs, err := CreateFileStore(path, 128)
		if err != nil {
			return false
		}
		ps := fs.PageSize()
		contents := map[PageID][]byte{}
		var liveIDs []PageID
		for _, op := range ops {
			if op.Free && len(liveIDs) > 0 {
				id := liveIDs[0]
				liveIDs = liveIDs[1:]
				if fs.Free(id) != nil {
					return false
				}
				delete(contents, id)
				continue
			}
			id, err := fs.Alloc()
			if err != nil {
				return false
			}
			buf := make([]byte, ps)
			for i := range buf {
				buf[i] = op.Fill
			}
			if fs.Write(id, buf) != nil {
				return false
			}
			contents[id] = buf
			liveIDs = append(liveIDs, id)
		}
		if fs.Close() != nil {
			return false
		}
		re, err := OpenFileStore(path)
		if err != nil {
			return false
		}
		defer re.Close()
		if re.NumPages() != len(contents) {
			return false
		}
		if _, err := re.Verify(); err != nil {
			return false
		}
		got := make([]byte, ps)
		for id, want := range contents {
			if re.Read(id, got) != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// A flipped bit anywhere in a page's payload or trailer must surface as a
// wrapped ErrCorrupt on the next read — never as silently different bytes.
func TestFileStoreDetectsBitFlips(t *testing.T) {
	fs, path := newFileStore(t, 128)
	ps := fs.PageSize()
	id, err := fs.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, ps)
	for i := range buf {
		buf[i] = byte(i)
	}
	if err := fs.Write(id, buf); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	for _, byteOff := range []int64{0, int64(ps) / 2, int64(ps), int64(ps) + pageTrailerSize - 1} {
		img, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		img[128+byteOff] ^= 0x40 // page 0 lives at the physical page offset
		flipped := filepath.Join(t.TempDir(), "flipped.pc")
		if err := writeFile(flipped, img); err != nil {
			t.Fatal(err)
		}
		re, err := OpenFileStore(flipped)
		if err != nil {
			t.Fatalf("open after payload flip at %d: %v", byteOff, err)
		}
		got := make([]byte, ps)
		if err := re.Read(id, got); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("read after flip at %d: err = %v, want wrapped ErrCorrupt", byteOff, err)
		}
		if _, err := re.Verify(); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Verify after flip at %d: err = %v, want wrapped ErrCorrupt", byteOff, err)
		}
		re.Close()
	}
}

// Destroying one superblock slot leaves the other in charge: the store
// opens with the surviving epoch, rolling back at most the single update
// that slot carried. Destroying both is a clean ErrCorrupt.
func TestFileStoreSuperblockFallback(t *testing.T) {
	fs, path := newFileStore(t, 128)
	id, err := fs.Alloc() // epoch 1 -> slot 1 (numPages = 1)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, fs.PageSize())
	buf[0] = 42
	if err := fs.Write(id, buf); err != nil {
		t.Fatal(err)
	}
	if err := fs.SetAppHead(id); err != nil { // epoch 2 -> slot 0 (appHead = id)
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	destroySlot := func(slot int) []byte {
		mangled := append([]byte(nil), img...)
		for i := 0; i < superSize; i++ {
			mangled[slot*superSlotSize+i] ^= 0xFF
		}
		return mangled
	}

	// Newest slot (0, epoch 2) destroyed: fall back to epoch 1 — the page
	// is still there, only the appHead update rolls back.
	re, err := OpenFileStoreOn(NewMemFileFrom(destroySlot(0)))
	if err != nil {
		t.Fatalf("open with newest slot destroyed: %v", err)
	}
	got := make([]byte, re.PageSize())
	if err := re.Read(id, got); err != nil || got[0] != 42 {
		t.Fatalf("fallback read = %v, byte %d", err, got[0])
	}
	if re.AppHead() != InvalidPage {
		t.Fatalf("fallback appHead = %d, want rollback to InvalidPage", re.AppHead())
	}
	re.Close()

	// Older slot (1, epoch 1) destroyed: the newest state survives intact.
	re, err = OpenFileStoreOn(NewMemFileFrom(destroySlot(1)))
	if err != nil {
		t.Fatalf("open with stale slot destroyed: %v", err)
	}
	if err := re.Read(id, got); err != nil || got[0] != 42 {
		t.Fatalf("read = %v, byte %d", err, got[0])
	}
	if re.AppHead() != id {
		t.Fatalf("appHead = %d, want %d", re.AppHead(), id)
	}
	re.Close()

	both := append([]byte(nil), img...)
	for i := 0; i < 2*superSlotSize; i++ {
		both[i] ^= 0xFF
	}
	p := filepath.Join(t.TempDir(), "no-slot.pc")
	if err := writeFile(p, both); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileStore(p); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open with both slots destroyed: %v, want wrapped ErrCorrupt", err)
	}
}

// A truncated file must fail cleanly: either the superblock no longer
// matches the file size, or page reads report ErrCorrupt.
func TestFileStoreTruncation(t *testing.T) {
	fs, path := newFileStore(t, 128)
	for i := 0; i < 4; i++ {
		id, err := fs.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, fs.PageSize())
		buf[0] = byte(i + 1)
		if err := fs.Write(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := len(img) - 1; cut > 0; cut -= 97 {
		_, err := OpenFileStoreOn(NewMemFileFrom(img[:cut]))
		if err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncated to %d: open error %v is not a wrapped ErrCorrupt", cut, err)
		}
	}
}

// Corrupting a free-list stub is caught when the list is walked at open.
func TestFileStoreFreeListStubChecksum(t *testing.T) {
	fs, path := newFileStore(t, 128)
	var ids []PageID
	for i := 0; i < 3; i++ {
		id, err := fs.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := fs.Free(ids[1]); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Mangle the freed page's next pointer without fixing its checksum.
	off := 128 * (1 + int(ids[1]))
	binary.LittleEndian.PutUint64(img[off:off+8], uint64(ids[0]))
	if _, err := OpenFileStoreOn(NewMemFileFrom(img)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open with mangled free stub: %v, want wrapped ErrCorrupt", err)
	}
}

func TestFileStoreVerifyClean(t *testing.T) {
	fs, _ := newFileStore(t, 128)
	var ids []PageID
	for i := 0; i < 6; i++ {
		id, err := fs.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, fs.PageSize())
		buf[0] = byte(i)
		if err := fs.Write(id, buf); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := fs.Free(ids[2]); err != nil {
		t.Fatal(err)
	}
	rep, err := fs.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Live != 5 || rep.Free != 1 || rep.PagesOK != 5 || rep.FreeStubsOK != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Usable != 128-pageTrailerSize || rep.PageSize != 128 {
		t.Fatalf("report sizes = %+v", rep)
	}
	// Verify must not disturb the I/O accounting.
	before := fs.Stats()
	if _, err := fs.Verify(); err != nil {
		t.Fatal(err)
	}
	if fs.Stats() != before {
		t.Fatal("Verify changed the I/O counters")
	}
}
