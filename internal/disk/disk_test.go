package disk

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestStoreAllocReadWrite(t *testing.T) {
	s := MustStore(128)
	id, err := s.Alloc()
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	buf := make([]byte, 128)
	if err := s.Read(id, buf); err != nil {
		t.Fatalf("Read fresh page: %v", err)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("fresh page byte %d = %d, want 0", i, b)
		}
	}
	for i := range buf {
		buf[i] = byte(i)
	}
	if err := s.Write(id, buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got := make([]byte, 128)
	if err := s.Read(id, got); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(buf, got) {
		t.Fatal("read back different bytes")
	}
}

func TestStorePageSizeValidation(t *testing.T) {
	if _, err := NewStore(MinPageSize - 1); err == nil {
		t.Fatal("NewStore accepted a too-small page size")
	}
	if _, err := NewStore(MinPageSize); err != nil {
		t.Fatalf("NewStore rejected minimum page size: %v", err)
	}
}

func TestStoreErrors(t *testing.T) {
	s := MustStore(128)
	buf := make([]byte, 128)
	if err := s.Read(99, buf); !errors.Is(err, ErrBadPage) {
		t.Errorf("Read of unallocated page: err=%v, want ErrBadPage", err)
	}
	if err := s.Write(99, buf); !errors.Is(err, ErrBadPage) {
		t.Errorf("Write of unallocated page: err=%v, want ErrBadPage", err)
	}
	if err := s.Read(0, make([]byte, 10)); !errors.Is(err, ErrShortBuf) {
		t.Errorf("short buffer read: err=%v, want ErrShortBuf", err)
	}
	id, _ := s.Alloc()
	if err := s.Free(id); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if err := s.Free(id); !errors.Is(err, ErrDoubleUse) {
		t.Errorf("double free: err=%v, want ErrDoubleUse", err)
	}
	if err := s.Read(id, buf); !errors.Is(err, ErrBadPage) {
		t.Errorf("read of freed page: err=%v, want ErrBadPage", err)
	}
}

func TestStoreFreeListReuse(t *testing.T) {
	s := MustStore(128)
	a, _ := s.Alloc()
	buf := make([]byte, 128)
	buf[0] = 0xFF
	if err := s.Write(a, buf); err != nil {
		t.Fatal(err)
	}
	if err := s.Free(a); err != nil {
		t.Fatal(err)
	}
	b, _ := s.Alloc()
	if a != b {
		t.Fatalf("expected freed page %d to be reused, got %d", a, b)
	}
	got := make([]byte, 128)
	if err := s.Read(b, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 {
		t.Fatal("reused page not zeroed")
	}
	if s.NumPages() != 1 {
		t.Fatalf("NumPages = %d, want 1", s.NumPages())
	}
}

func TestStoreStats(t *testing.T) {
	s := MustStore(128)
	id, _ := s.Alloc()
	buf := make([]byte, 128)
	_ = s.Write(id, buf)
	_ = s.Read(id, buf)
	_ = s.Read(id, buf)
	st := s.Stats()
	if st.Reads != 2 || st.Writes != 1 || st.Allocs != 1 || st.Frees != 0 {
		t.Fatalf("stats = %+v, want reads=2 writes=1 allocs=1 frees=0", st)
	}
	if st.Total() != 3 {
		t.Fatalf("Total = %d, want 3", st.Total())
	}
	before := st
	_ = s.Read(id, buf)
	d := s.Stats().Sub(before)
	if d.Reads != 1 || d.Writes != 0 {
		t.Fatalf("Sub = %+v, want reads=1", d)
	}
	s.ResetStats()
	if s.Stats().Total() != 0 {
		t.Fatal("ResetStats did not zero counters")
	}
}

func TestBufferPoolHitsAndEviction(t *testing.T) {
	s := MustStore(128)
	p, err := NewBufferPool(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	var ids []PageID
	buf := make([]byte, 128)
	for i := 0; i < 3; i++ {
		id, _ := p.Alloc()
		buf[0] = byte(i + 1)
		if err := p.Write(id, buf); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// Pool capacity 2: writing 3 pages evicted the first (dirty write-back).
	ps := p.Stats()
	if ps.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", ps.Evictions)
	}
	// The evicted page must have been written back to the store.
	got := make([]byte, 128)
	if err := s.Read(ids[0], got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 {
		t.Fatalf("evicted page not written back: got[0]=%d", got[0])
	}
	// Reading a cached page is a hit and costs no store I/O.
	before := s.Stats()
	if err := p.Read(ids[2], got); err != nil {
		t.Fatal(err)
	}
	if d := s.Stats().Sub(before); d.Reads != 0 {
		t.Fatalf("cached read hit the store: %+v", d)
	}
	if got[0] != 3 {
		t.Fatalf("cached read returned %d, want 3", got[0])
	}
}

func TestBufferPoolFlush(t *testing.T) {
	s := MustStore(128)
	p, _ := NewBufferPool(s, 4)
	id, _ := p.Alloc()
	buf := make([]byte, 128)
	buf[5] = 42
	if err := p.Write(id, buf); err != nil {
		t.Fatal(err)
	}
	// Dirty data lives only in the pool until Flush.
	got := make([]byte, 128)
	if err := s.Read(id, got); err != nil {
		t.Fatal(err)
	}
	if got[5] != 0 {
		t.Fatal("write-back happened before Flush")
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Read(id, got); err != nil {
		t.Fatal(err)
	}
	if got[5] != 42 {
		t.Fatal("Flush did not write back dirty page")
	}
	// After Flush the cache is cold: next read misses.
	p.ResetStats()
	if err := p.Read(id, got); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("post-flush read: %+v, want one miss", st)
	}
}

func TestBufferPoolFreeDropsFrame(t *testing.T) {
	s := MustStore(128)
	p, _ := NewBufferPool(s, 4)
	id, _ := p.Alloc()
	buf := make([]byte, 128)
	if err := p.Write(id, buf); err != nil {
		t.Fatal(err)
	}
	if err := p.Free(id); err != nil {
		t.Fatal(err)
	}
	if err := p.Read(id, buf); err == nil {
		t.Fatal("read of freed page succeeded")
	}
}

func TestBufferPoolCapacityValidation(t *testing.T) {
	s := MustStore(128)
	if _, err := NewBufferPool(s, 0); err == nil {
		t.Fatal("NewBufferPool accepted capacity 0")
	}
}

func TestChainCap(t *testing.T) {
	if c := ChainCap(4096, 24); c != (4096-chainHeader)/24 {
		t.Fatalf("ChainCap = %d", c)
	}
	if c := ChainCap(64, 100); c != 0 {
		t.Fatalf("oversized record: cap = %d, want 0", c)
	}
}

func TestChainRoundTrip(t *testing.T) {
	s := MustStore(128)
	const rec = 8
	w, err := NewChainWriter(s, rec)
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	for i := 0; i < n; i++ {
		b := make([]byte, rec)
		b[0] = byte(i)
		b[1] = byte(i >> 8)
		if err := w.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	head, pages, count, err := w.Close()
	if err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("count = %d, want %d", count, n)
	}
	wantPages := ChainPages(128, rec, n)
	if pages != wantPages {
		t.Fatalf("pages = %d, want %d", pages, wantPages)
	}
	var got []int
	reads, err := ScanChain(s, rec, head, func(r []byte) bool {
		got = append(got, int(r[0])|int(r[1])<<8)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if reads != wantPages {
		t.Fatalf("scan read %d pages, want %d", reads, wantPages)
	}
	if len(got) != n {
		t.Fatalf("scanned %d records, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("record %d = %d", i, v)
		}
	}
}

func TestChainEarlyStop(t *testing.T) {
	s := MustStore(128)
	const rec = 8
	recs := make([]byte, rec*100)
	head, _, err := WriteChain(s, rec, recs)
	if err != nil {
		t.Fatal(err)
	}
	s.ResetStats()
	seen := 0
	reads, err := ScanChain(s, rec, head, func(r []byte) bool {
		seen++
		return seen < 3
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != 3 {
		t.Fatalf("saw %d records, want 3", seen)
	}
	if reads != 1 {
		t.Fatalf("early stop read %d pages, want 1", reads)
	}
}

func TestChainEmpty(t *testing.T) {
	s := MustStore(128)
	w, _ := NewChainWriter(s, 8)
	head, pages, count, err := w.Close()
	if err != nil {
		t.Fatal(err)
	}
	if head != InvalidPage || pages != 0 || count != 0 {
		t.Fatalf("empty chain: head=%d pages=%d count=%d", head, pages, count)
	}
	reads, err := ScanChain(s, 8, head, func([]byte) bool { t.Fatal("callback on empty chain"); return false })
	if err != nil || reads != 0 {
		t.Fatalf("scan of empty chain: reads=%d err=%v", reads, err)
	}
}

func TestChainAppendErrors(t *testing.T) {
	s := MustStore(128)
	if _, err := NewChainWriter(s, 4096); err == nil {
		t.Fatal("NewChainWriter accepted oversized record")
	}
	w, _ := NewChainWriter(s, 8)
	if err := w.Append(make([]byte, 7)); err == nil {
		t.Fatal("Append accepted wrong-sized record")
	}
	_, _, _, _ = w.Close()
	if err := w.Append(make([]byte, 8)); err == nil {
		t.Fatal("Append after Close succeeded")
	}
}

func TestFreeChain(t *testing.T) {
	s := MustStore(128)
	recs := make([]byte, 8*100)
	head, pages, err := WriteChain(s, 8, recs)
	if err != nil {
		t.Fatal(err)
	}
	live := s.NumPages()
	if err := FreeChain(s, head); err != nil {
		t.Fatal(err)
	}
	if got := s.NumPages(); got != live-pages {
		t.Fatalf("after FreeChain: %d live pages, want %d", got, live-pages)
	}
	if err := FreeChain(s, InvalidPage); err != nil {
		t.Fatalf("FreeChain(InvalidPage): %v", err)
	}
}

// Property: a chain reproduces any record sequence exactly, in order, for
// arbitrary record contents and counts.
func TestChainRoundTripProperty(t *testing.T) {
	s := MustStore(256)
	f := func(payload []byte) bool {
		const rec = 16
		// Trim to a multiple of the record size.
		payload = payload[:len(payload)-len(payload)%rec]
		head, _, err := WriteChain(s, rec, payload)
		if err != nil {
			return false
		}
		var got []byte
		_, err = ScanChain(s, rec, head, func(r []byte) bool {
			got = append(got, r...)
			return true
		})
		if err != nil {
			return false
		}
		return bytes.Equal(payload, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
