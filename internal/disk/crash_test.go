package disk

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestMemFileSemantics(t *testing.T) {
	m := NewMemFile()
	if n, err := m.WriteAt([]byte("hello"), 3); n != 5 || err != nil {
		t.Fatalf("WriteAt = %d, %v", n, err)
	}
	if sz, err := m.Size(); sz != 8 || err != nil {
		t.Fatalf("Size = %d, %v", sz, err)
	}
	buf := make([]byte, 5)
	if n, err := m.ReadAt(buf, 3); n != 5 || err != nil || string(buf) != "hello" {
		t.Fatalf("ReadAt = %d, %v, %q", n, err, buf)
	}
	// The gap before the write reads as zeros, like a sparse file.
	if n, err := m.ReadAt(buf[:3], 0); n != 3 || err != nil || !bytes.Equal(buf[:3], []byte{0, 0, 0}) {
		t.Fatalf("gap ReadAt = %d, %v, %v", n, err, buf[:3])
	}
	// Reads crossing EOF return the available prefix plus io.EOF.
	if n, err := m.ReadAt(buf, 6); n != 2 || err != io.EOF {
		t.Fatalf("EOF ReadAt = %d, %v", n, err)
	}
	if n, err := m.ReadAt(buf, 100); n != 0 || err != io.EOF {
		t.Fatalf("past-EOF ReadAt = %d, %v", n, err)
	}
	// Bytes is a snapshot: mutating it must not alias the file.
	snap := m.Bytes()
	snap[3] = 'X'
	if _, err := m.ReadAt(buf[:1], 3); err != nil || buf[0] != 'h' {
		t.Fatalf("snapshot aliased the file: %q", buf[0])
	}
}

func TestCrashFileCountingMode(t *testing.T) {
	m := NewMemFile()
	cf := NewCrashFile(m, -1, 0)
	for i := 0; i < 7; i++ {
		if _, err := cf.WriteAt([]byte{byte(i)}, int64(i)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if cf.Writes() != 7 {
		t.Fatalf("Writes = %d, want 7", cf.Writes())
	}
	if cf.Crashed() {
		t.Fatal("counting-mode file crashed")
	}
}

func TestCrashFileKill(t *testing.T) {
	m := NewMemFile()
	cf := NewCrashFile(m, 2, 3)
	for i := 0; i < 2; i++ {
		if _, err := cf.WriteAt([]byte("abcdef"), int64(i*6)); err != nil {
			t.Fatalf("pre-crash write %d: %v", i, err)
		}
	}
	// The third write crashes, landing only its 3-byte torn prefix.
	n, err := cf.WriteAt([]byte("XYZQRS"), 12)
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("crashing write err = %v, want ErrCrashed", err)
	}
	if n != 3 {
		t.Fatalf("torn write landed %d bytes, want 3", n)
	}
	if !cf.Crashed() {
		t.Fatal("Crashed() = false after kill")
	}
	// Everything after the kill fails.
	if _, err := cf.WriteAt([]byte("x"), 0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash WriteAt err = %v", err)
	}
	if _, err := cf.ReadAt(make([]byte, 1), 0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash ReadAt err = %v", err)
	}
	if _, err := cf.Size(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash Size err = %v", err)
	}
	if err := cf.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash Sync err = %v", err)
	}
	if err := cf.Close(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash Close err = %v", err)
	}
	// The surviving image holds both full writes plus the torn prefix.
	got := m.Bytes()
	want := append([]byte("abcdefabcdef"), []byte("XYZ")...)
	if !bytes.Equal(got, want) {
		t.Fatalf("image = %q, want %q", got, want)
	}
}

// driveStoreWorkload runs a fixed mutation sequence against a store and
// returns the first error. The sequence exercises every write path: alloc,
// page write, app-head update, and free.
func driveStoreWorkload(fs *FileStore) error {
	usable := fs.PageSize()
	var ids []PageID
	for i := 0; i < 3; i++ {
		id, err := fs.Alloc()
		if err != nil {
			return err
		}
		buf := make([]byte, usable)
		for j := range buf {
			buf[j] = byte(int(id) + j)
		}
		if err := fs.Write(id, buf); err != nil {
			return err
		}
		ids = append(ids, id)
	}
	if err := fs.SetAppHead(ids[0]); err != nil {
		return err
	}
	if err := fs.Free(ids[2]); err != nil {
		return err
	}
	id, err := fs.Alloc() // reuses the freed slot
	if err != nil {
		return err
	}
	buf := make([]byte, usable)
	for j := range buf {
		buf[j] = byte(7 * j)
	}
	return fs.Write(id, buf)
}

// TestCrashSweepStoreLevel kills the store at every write I/O point of a
// mutation workload (with several torn-write variants) and asserts the
// reopened image is never silently inconsistent: either open fails wrapping
// ErrCorrupt, or it opens with a plausible app head and every page read
// either verifies checksum-clean or itself fails with a wrapped ErrCorrupt.
// A torn data-page write is allowed to survive a reopen — page writes are
// not covered by the superblock transaction — but it must be *detected* at
// read time, never served as garbage.
func TestCrashSweepStoreLevel(t *testing.T) {
	// Instrumentation pass: count the writes the workload performs.
	cp, err := NewCrashPager(MinFilePageSize, -1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := driveStoreWorkload(cp.Store); err != nil {
		t.Fatalf("instrumentation workload: %v", err)
	}
	total := cp.Crash.Writes()
	if total < 10 {
		t.Fatalf("workload only performed %d writes; sweep would be trivial", total)
	}

	// Valid app heads: InvalidPage (initial) or page 0 (after SetAppHead).
	for limit := int64(0); limit < total; limit++ {
		for _, torn := range []int{0, 1, superSize - 1, MinFilePageSize / 2} {
			cp, err := NewCrashPager(MinFilePageSize, limit, torn)
			if err != nil {
				// The crash fired during CreateFileStoreOn itself.
				if !errors.Is(err, ErrCrashed) {
					t.Fatalf("limit=%d torn=%d: create err = %v", limit, torn, err)
				}
			} else {
				werr := driveStoreWorkload(cp.Store)
				if !errors.Is(werr, ErrCrashed) {
					t.Fatalf("limit=%d torn=%d: workload err = %v, want ErrCrashed", limit, torn, werr)
				}
				if cerr := cp.Store.Close(); cerr != nil && !errors.Is(cerr, ErrCrashed) {
					t.Fatalf("limit=%d torn=%d: close err = %v", limit, torn, cerr)
				}
			}

			reopened, err := OpenFileStoreOn(NewMemFileFrom(cp.Image()))
			if err != nil {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("limit=%d torn=%d: open err = %v, want wrapped ErrCorrupt", limit, torn, err)
				}
				continue
			}
			rep, verr := reopened.Verify()
			if verr != nil && !errors.Is(verr, ErrCorrupt) {
				t.Fatalf("limit=%d torn=%d: Verify err = %v, want nil or wrapped ErrCorrupt (report %+v)", limit, torn, verr, rep)
			}
			if h := reopened.AppHead(); h != InvalidPage && h != 0 {
				t.Fatalf("limit=%d torn=%d: impossible app head %d", limit, torn, h)
			}
			// Every page read must either verify checksum-clean, be rejected
			// as a free slot (ErrBadPage), or flag the torn write as
			// ErrCorrupt — never hand back unflagged bytes.
			buf := make([]byte, reopened.PageSize())
			for id := PageID(0); int64(id) < rep.Slots; id++ {
				err := reopened.Read(id, buf)
				if err != nil && !errors.Is(err, ErrBadPage) && !errors.Is(err, ErrCorrupt) {
					t.Fatalf("limit=%d torn=%d: page %d read = %v", limit, torn, id, err)
				}
			}
			if err := reopened.Close(); err != nil {
				t.Fatalf("limit=%d torn=%d: close reopened: %v", limit, torn, err)
			}
		}
	}
}
