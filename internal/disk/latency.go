package disk

import "time"

// SlowPager wraps a Pager and charges a fixed wall-clock latency per page
// transfer, modelling a real device where a page read costs ~100µs (NVMe) to
// ~10ms (spinning disk). Layered beneath a BufferPool it makes the simulator
// behave like production hardware: cache hits are free, misses block — which
// is what parallel batch querying overlaps. Alloc and Free stay free, like
// the I/O model's accounting.
//
// SlowPager is safe for concurrent use when its inner pager is; sleeping
// happens outside any lock, so concurrent transfers overlap their latency
// exactly as independent device requests would.
type SlowPager struct {
	Inner      Pager
	ReadDelay  time.Duration
	WriteDelay time.Duration
}

// PageSize implements Pager.
func (s *SlowPager) PageSize() int { return s.Inner.PageSize() }

// Alloc implements Pager.
func (s *SlowPager) Alloc() (PageID, error) { return s.Inner.Alloc() }

// Free implements Pager.
func (s *SlowPager) Free(id PageID) error { return s.Inner.Free(id) }

// Read implements Pager, charging ReadDelay per call.
func (s *SlowPager) Read(id PageID, buf []byte) error {
	if s.ReadDelay > 0 {
		time.Sleep(s.ReadDelay)
	}
	return s.Inner.Read(id, buf)
}

// Write implements Pager, charging WriteDelay per call.
func (s *SlowPager) Write(id PageID, buf []byte) error {
	if s.WriteDelay > 0 {
		time.Sleep(s.WriteDelay)
	}
	return s.Inner.Write(id, buf)
}
