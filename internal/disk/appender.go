package disk

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ChainAppender is an incrementally appendable chain: the write-ahead-log
// substrate of the LSM tier. It shares the chain page layout
// ([next][count][records...]), so a chain built by appending replays with
// ScanChain — the recovery path needs no second format.
//
// Unlike ChainWriter, which buffers a page and writes it once when full, an
// appender rewrites the tail page on every Append so each record is on disk
// (and, after the caller's sync, durable) before the append is acknowledged.
// Appending k records therefore costs k page writes, not ⌈k/B⌉ — the price
// of per-record durability, paid only by the write-ahead log.
//
// Crash behaviour, relied on by the recovery state machine (DESIGN.md §11):
//
//   - A torn tail rewrite corrupts only the tail page: recovery surfaces a
//     checksum error wrapping ErrCorrupt for the one unacknowledged record.
//   - Rolling to a new page writes the new tail first and links the old tail
//     to it second, so a crash between the two leaves the old chain fully
//     intact and the new page unreachable (leaked, never misread).
type ChainAppender struct {
	recSize int
	cap     int
	head    PageID
	tail    PageID
	buf     []byte // tail page image, kept in sync with the store
	n       int    // records in the tail page
	count   int    // records in the whole chain
	pages   int
}

// NewChainAppender starts an empty appendable chain: its head page is
// allocated and written immediately so the chain has a stable identity to
// record in a manifest before the first record arrives.
func NewChainAppender(p Pager, recSize int) (*ChainAppender, error) {
	c := ChainCap(p.PageSize(), recSize)
	if recSize <= 0 || c < 1 {
		return nil, fmt.Errorf("%w: rec=%d page=%d", ErrRecordSize, recSize, p.PageSize())
	}
	head, err := p.Alloc()
	if err != nil {
		return nil, err
	}
	a := &ChainAppender{
		recSize: recSize,
		cap:     c,
		head:    head,
		tail:    head,
		buf:     make([]byte, p.PageSize()),
		pages:   1,
	}
	a.setHeader(InvalidPage)
	if err := p.Write(head, a.buf); err != nil {
		return nil, err
	}
	return a, nil
}

// OpenChainAppender resumes appending to an existing chain: it walks to the
// tail page and loads it, so the next Append continues where the last run
// stopped. Corrupt pages surface as read errors wrapping ErrCorrupt.
func OpenChainAppender(p Pager, recSize int, head PageID) (*ChainAppender, error) {
	c := ChainCap(p.PageSize(), recSize)
	if recSize <= 0 || c < 1 {
		return nil, fmt.Errorf("%w: rec=%d page=%d", ErrRecordSize, recSize, p.PageSize())
	}
	if head == InvalidPage {
		return nil, errors.New("disk: open chain appender on invalid head")
	}
	a := &ChainAppender{
		recSize: recSize,
		cap:     c,
		head:    head,
		buf:     make([]byte, p.PageSize()),
	}
	for id := head; id != InvalidPage; {
		if err := p.Read(id, a.buf); err != nil {
			return nil, err
		}
		a.pages++
		next := PageID(binary.LittleEndian.Uint64(a.buf[0:8]))
		n := int(binary.LittleEndian.Uint16(a.buf[8:10]))
		if n > c {
			return nil, fmt.Errorf("disk: corrupt chain page %d: count %d > cap %d: %w", id, n, c, ErrCorrupt)
		}
		if next != InvalidPage && n != c {
			return nil, fmt.Errorf("disk: corrupt chain page %d: non-tail holds %d of %d records: %w", id, n, c, ErrCorrupt)
		}
		a.tail, a.n = id, n
		a.count += n
		id = next
	}
	return a, nil
}

// Append adds one record to the chain and writes it through to the store
// via p, which must address the same store the appender was opened on (the
// explicit pager lets callers attribute each append to an op-scoped
// counter). The record is on disk when Append returns; durability
// additionally needs the caller's sync barrier (the appender does not own
// the file handle).
func (a *ChainAppender) Append(p Pager, rec []byte) error {
	if len(rec) != a.recSize {
		return fmt.Errorf("%w: got %d want %d", ErrRecordSize, len(rec), a.recSize)
	}
	if a.n == a.cap {
		next, err := p.Alloc()
		if err != nil {
			return err
		}
		// New tail first, link second: a crash between the two writes
		// leaves the acknowledged chain intact and only leaks `next`.
		nb := make([]byte, len(a.buf))
		none := InvalidPage
		binary.LittleEndian.PutUint64(nb[0:8], uint64(none))
		binary.LittleEndian.PutUint16(nb[8:10], 1)
		copy(nb[chainHeader:], rec)
		if err := p.Write(next, nb); err != nil {
			return err
		}
		binary.LittleEndian.PutUint64(a.buf[0:8], uint64(next))
		if err := p.Write(a.tail, a.buf); err != nil {
			return err
		}
		copy(a.buf, nb)
		a.tail = next
		a.n = 1
		a.count++
		a.pages++
		return nil
	}
	copy(a.buf[chainHeader+a.n*a.recSize:], rec)
	a.n++
	a.count++
	a.setHeader(InvalidPage)
	return p.Write(a.tail, a.buf)
}

// Head returns the chain head page (stable for the appender's lifetime).
func (a *ChainAppender) Head() PageID { return a.head }

// Count returns the number of records appended across the chain's lifetime.
func (a *ChainAppender) Count() int { return a.count }

// Pages returns the number of pages the chain occupies.
func (a *ChainAppender) Pages() int { return a.pages }

func (a *ChainAppender) setHeader(next PageID) {
	binary.LittleEndian.PutUint64(a.buf[0:8], uint64(next))
	binary.LittleEndian.PutUint16(a.buf[8:10], uint16(a.n))
}

// TrackPager is a pager decorator recording every page id it allocates —
// how the LSM tier learns the page set of a freshly built static level so
// the level can be freed wholesale after a later compaction. Not safe for
// concurrent use; builds are single-threaded.
type TrackPager struct {
	Pager
	ids []PageID
}

// Track wraps p so allocations are recorded.
func Track(p Pager) *TrackPager { return &TrackPager{Pager: p} }

// Alloc allocates through the wrapped pager and records the id.
func (t *TrackPager) Alloc() (PageID, error) {
	id, err := t.Pager.Alloc()
	if err == nil {
		t.ids = append(t.ids, id)
	}
	return id, err
}

// Free releases through the wrapped pager and forgets the id, so Allocated
// reports only pages still owned by the tracked build.
func (t *TrackPager) Free(id PageID) error {
	if err := t.Pager.Free(id); err != nil {
		return err
	}
	for i, v := range t.ids {
		if v == id {
			t.ids = append(t.ids[:i], t.ids[i+1:]...)
			break
		}
	}
	return nil
}

// Allocated returns the live page ids allocated through the tracker, in
// allocation order.
func (t *TrackPager) Allocated() []PageID { return t.ids }
