// Package disk simulates a secondary-storage device in the standard external
// memory (I/O) model used by the paper: data moves between memory and disk in
// fixed-size pages, and the cost of an algorithm is the number of pages it
// transfers. The package provides an allocating page store with exact I/O
// accounting, an optional LRU buffer pool, and helpers for blocked lists
// (chains of pages holding fixed-width records).
//
// All structures in this repository do their persistent work through a Pager
// so that every theorem's I/O bound can be checked by reading counters rather
// than by timing real hardware.
package disk

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// PageID identifies a page within a Store. IDs are dense and start at zero.
type PageID int64

// InvalidPage is the nil value for page references (an empty chain, a missing
// child, and so on).
const InvalidPage PageID = -1

// Errors returned by Store operations.
var (
	ErrBadPage   = errors.New("disk: page id out of range or freed")
	ErrShortBuf  = errors.New("disk: buffer smaller than page size")
	ErrPageSize  = errors.New("disk: page size too small")
	ErrDoubleUse = errors.New("disk: page freed twice")
)

// Stats is a snapshot of the I/O counters of a Store or BufferPool.
// Reads and Writes count page transfers; Allocs and Frees count lifecycle
// events (an Alloc is not an I/O by itself).
type Stats struct {
	Reads  int64
	Writes int64
	Allocs int64
	Frees  int64
}

// Total returns the total number of page transfers (reads plus writes).
func (s Stats) Total() int64 { return s.Reads + s.Writes }

// Sub returns the difference s minus o, useful for measuring the cost of a
// single operation between two snapshots.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Reads:  s.Reads - o.Reads,
		Writes: s.Writes - o.Writes,
		Allocs: s.Allocs - o.Allocs,
		Frees:  s.Frees - o.Frees,
	}
}

func (s Stats) String() string {
	return fmt.Sprintf("reads=%d writes=%d allocs=%d frees=%d", s.Reads, s.Writes, s.Allocs, s.Frees)
}

// Pager is the access interface shared by the raw Store and the BufferPool.
// Read and Write transfer exactly one page.
type Pager interface {
	// PageSize reports the fixed page size in bytes.
	PageSize() int
	// Alloc reserves a fresh zeroed page and returns its id.
	Alloc() (PageID, error)
	// Free releases a page. Reading a freed page is an error.
	Free(PageID) error
	// Read copies the page's contents into buf, which must be at least
	// PageSize bytes long.
	Read(id PageID, buf []byte) error
	// Write copies the first PageSize bytes of buf into the page.
	Write(id PageID, buf []byte) error
}

// Store is an in-memory simulated disk. It is safe for concurrent use.
//
// The zero value is not usable; call NewStore.
type Store struct {
	mu       sync.RWMutex
	pageSize int
	pages    [][]byte
	free     []PageID

	reads  atomic.Int64
	writes atomic.Int64
	allocs atomic.Int64
	frees  atomic.Int64
}

// MinPageSize is the smallest page the store accepts. Chains need a small
// header, and structures need room for at least a couple of records.
const MinPageSize = 64

// NewStore creates a simulated disk with the given page size in bytes.
func NewStore(pageSize int) (*Store, error) {
	if pageSize < MinPageSize {
		return nil, fmt.Errorf("%w: %d < %d", ErrPageSize, pageSize, MinPageSize)
	}
	return &Store{pageSize: pageSize}, nil
}

// MustStore is NewStore for callers with a known-good constant page size,
// such as tests.
func MustStore(pageSize int) *Store {
	s, err := NewStore(pageSize)
	if err != nil {
		panic(err)
	}
	return s
}

// PageSize reports the page size in bytes.
func (s *Store) PageSize() int { return s.pageSize }

// Alloc reserves a fresh zeroed page.
func (s *Store) Alloc() (PageID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.allocs.Add(1)
	if n := len(s.free); n > 0 {
		id := s.free[n-1]
		s.free = s.free[:n-1]
		s.pages[id] = make([]byte, s.pageSize)
		return id, nil
	}
	s.pages = append(s.pages, make([]byte, s.pageSize))
	return PageID(len(s.pages) - 1), nil
}

// Free releases a page back to the store.
func (s *Store) Free(id PageID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id < 0 || int(id) >= len(s.pages) {
		return fmt.Errorf("%w: %d", ErrBadPage, id)
	}
	if s.pages[id] == nil {
		return fmt.Errorf("%w: %d", ErrDoubleUse, id)
	}
	s.pages[id] = nil
	s.free = append(s.free, id)
	s.frees.Add(1)
	return nil
}

// Read copies the page into buf and counts one read I/O.
func (s *Store) Read(id PageID, buf []byte) error {
	if len(buf) < s.pageSize {
		return ErrShortBuf
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if id < 0 || int(id) >= len(s.pages) || s.pages[id] == nil {
		return fmt.Errorf("%w: %d", ErrBadPage, id)
	}
	s.reads.Add(1)
	copy(buf, s.pages[id])
	return nil
}

// Write copies buf into the page and counts one write I/O.
func (s *Store) Write(id PageID, buf []byte) error {
	if len(buf) < s.pageSize {
		return ErrShortBuf
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if id < 0 || int(id) >= len(s.pages) || s.pages[id] == nil {
		return fmt.Errorf("%w: %d", ErrBadPage, id)
	}
	s.writes.Add(1)
	copy(s.pages[id], buf[:s.pageSize])
	return nil
}

// NumPages reports the number of live (allocated, not freed) pages — the
// storage footprint every space theorem is checked against.
func (s *Store) NumPages() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.pages) - len(s.free)
}

// Stats returns a snapshot of the I/O counters.
func (s *Store) Stats() Stats {
	return Stats{
		Reads:  s.reads.Load(),
		Writes: s.writes.Load(),
		Allocs: s.allocs.Load(),
		Frees:  s.frees.Load(),
	}
}

// ResetStats zeroes the I/O counters without touching page contents.
func (s *Store) ResetStats() {
	s.reads.Store(0)
	s.writes.Store(0)
	s.allocs.Store(0)
	s.frees.Store(0)
}
