package disk

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"
)

// PoolStats reports buffer-pool effectiveness.
type PoolStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
}

// Add returns the component-wise sum of s and o, used to fold per-shard
// counters into a pool-wide snapshot.
func (s PoolStats) Add(o PoolStats) PoolStats {
	return PoolStats{
		Hits:      s.Hits + o.Hits,
		Misses:    s.Misses + o.Misses,
		Evictions: s.Evictions + o.Evictions,
	}
}

// Sharding policy. A pool with enough frames is striped across up to
// maxPoolShards independent LRU shards so concurrent readers contend only
// when they touch pages that hash to the same shard. Small pools stay
// single-sharded: with fewer than minShardFrames frames per shard the split
// would distort eviction behaviour for no concurrency benefit, and the
// single-shard pool is byte-for-byte the classical global LRU the I/O
// experiments were calibrated against.
const (
	maxPoolShards  = 16
	minShardFrames = 8
)

// poolShard is one LRU stripe: its own lock, frame map and recency list.
// Counters are atomics so Stats can sum a consistent-enough snapshot without
// taking any shard lock.
type poolShard struct {
	mu       sync.Mutex
	capacity int
	frames   map[PageID]*list.Element
	lru      *list.List // front = most recently used

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

// BufferPool is a write-back LRU page cache layered over a Store. It
// implements Pager, so structures can run either directly against the store
// (cold, worst-case I/O measurement) or through a pool (warm behaviour).
//
// The pool is lock-striped: frames are spread across power-of-two shards by
// a hash of the PageID, and each shard has its own mutex and LRU list, so
// concurrent readers scale instead of serializing on one lock. Capacity is
// split across shards; hit/miss/eviction accounting is kept per shard with
// atomics and summed exactly by Stats, which never blocks readers.
//
// BufferPool is safe for concurrent use. Accounting is deterministic in the
// no-eviction regime (every distinct page misses exactly once, every other
// access hits) regardless of goroutine interleaving; once shards evict, the
// conservation law hits+misses == accesses and misses-evictions-frees ==
// resident frames still holds exactly.
type BufferPool struct {
	store     Pager
	capacity  int
	shards    []poolShard
	shardBits uint // shard index = top shardBits bits of the mixed PageID
}

type frame struct {
	id    PageID
	data  []byte
	dirty bool
}

// NewBufferPool wraps a pager with an LRU cache of capacity pages, striped
// across an automatically chosen number of shards (1 for small pools, up to
// 16 as capacity grows past 8 frames per shard).
func NewBufferPool(store Pager, capacity int) (*BufferPool, error) {
	return NewBufferPoolShards(store, capacity, defaultShards(capacity))
}

// defaultShards picks the largest power-of-two shard count that keeps at
// least minShardFrames frames per shard, capped at maxPoolShards.
func defaultShards(capacity int) int {
	s := 1
	for s*2 <= maxPoolShards && capacity/(s*2) >= minShardFrames {
		s *= 2
	}
	return s
}

// NewBufferPoolShards wraps a pager with an LRU cache of capacity pages
// striped across exactly shards LRU shards. shards must be a power of two
// and no larger than capacity (every shard needs at least one frame).
func NewBufferPoolShards(store Pager, capacity, shards int) (*BufferPool, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("disk: buffer pool capacity %d < 1", capacity)
	}
	if shards < 1 || shards&(shards-1) != 0 {
		return nil, fmt.Errorf("disk: buffer pool shards %d not a power of two", shards)
	}
	if shards > capacity {
		return nil, fmt.Errorf("disk: buffer pool shards %d > capacity %d", shards, capacity)
	}
	bits := uint(0)
	for 1<<bits < shards {
		bits++
	}
	p := &BufferPool{
		store:     store,
		capacity:  capacity,
		shards:    make([]poolShard, shards),
		shardBits: bits,
	}
	base, extra := capacity/shards, capacity%shards
	for i := range p.shards {
		c := base
		if i < extra {
			c++
		}
		p.shards[i] = poolShard{
			capacity: c,
			frames:   make(map[PageID]*list.Element, c),
			lru:      list.New(),
		}
	}
	return p, nil
}

// shard returns the stripe owning id. Fibonacci multiplicative hashing mixes
// the dense, sequential PageIDs so neighbouring pages land on different
// shards; the top bits of the product are well distributed. A single-shard
// pool always maps to shard 0 (shifting a uint64 by 64 yields 0 in Go).
func (p *BufferPool) shard(id PageID) *poolShard {
	h := uint64(id) * 0x9E3779B97F4A7C15
	return &p.shards[h>>(64-p.shardBits)]
}

// PageSize reports the underlying store's page size.
func (p *BufferPool) PageSize() int { return p.store.PageSize() }

// NumShards reports how many LRU stripes the pool uses.
func (p *BufferPool) NumShards() int { return len(p.shards) }

// Alloc reserves a fresh page in the underlying store. The page is not
// brought into the cache until it is read or written.
func (p *BufferPool) Alloc() (PageID, error) { return p.store.Alloc() }

// Free drops any cached copy (discarding dirty data — the page is going
// away) and releases the page in the store.
func (p *BufferPool) Free(id PageID) error { return p.free(id, nil) }

func (p *BufferPool) free(id PageID, c *Counter) error {
	sh := p.shard(id)
	sh.mu.Lock()
	if el, ok := sh.frames[id]; ok {
		sh.lru.Remove(el)
		delete(sh.frames, id)
	}
	sh.mu.Unlock()
	if err := p.store.Free(id); err != nil {
		return err
	}
	c.addFree()
	return nil
}

// Read returns the page contents, from cache when possible.
func (p *BufferPool) Read(id PageID, buf []byte) error { return p.read(id, buf, nil) }

// read is the counted entry point: a hit is free for the operation, a miss
// attributes the store read (and any eviction write-back it forces) to c.
func (p *BufferPool) read(id PageID, buf []byte, c *Counter) error {
	if len(buf) < p.store.PageSize() {
		return ErrShortBuf
	}
	sh := p.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.frames[id]; ok {
		sh.hits.Add(1)
		c.addHit()
		sh.lru.MoveToFront(el)
		copy(buf, el.Value.(*frame).data)
		return nil
	}
	sh.misses.Add(1)
	data := make([]byte, p.store.PageSize())
	// The miss fill runs under the shard latch on purpose: it is what makes
	// per-page accounting deterministic (a concurrent second reader of the
	// same page waits and then hits instead of double-missing), and only
	// this shard's pages wait behind it. See DESIGN.md, "Statically-enforced
	// invariants".
	//pcvet:allow lockheldio -- sanctioned single-page miss fill under the shard latch
	if err := p.store.Read(id, data); err != nil {
		return err
	}
	c.addRead()
	//pcvet:allow lockheldio -- insert under the shard latch; eviction write-back is the sanctioned exception
	if err := p.insert(sh, &frame{id: id, data: data}, c); err != nil {
		return err
	}
	copy(buf, data)
	return nil
}

// Write updates the cached page, marking it dirty; the store is updated on
// eviction or Flush.
func (p *BufferPool) Write(id PageID, buf []byte) error { return p.write(id, buf, nil) }

func (p *BufferPool) write(id PageID, buf []byte, c *Counter) error {
	ps := p.store.PageSize()
	if len(buf) < ps {
		return ErrShortBuf
	}
	sh := p.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.frames[id]; ok {
		sh.hits.Add(1)
		c.addHit()
		sh.lru.MoveToFront(el)
		f := el.Value.(*frame)
		copy(f.data, buf[:ps])
		f.dirty = true
		return nil
	}
	sh.misses.Add(1)
	data := make([]byte, ps)
	copy(data, buf[:ps])
	//pcvet:allow lockheldio -- insert under the shard latch; eviction write-back is the sanctioned exception
	return p.insert(sh, &frame{id: id, data: data, dirty: true}, c)
}

// WithCounter returns a Pager view of the pool that attributes the store
// transfers each access actually causes — miss fills and the eviction
// write-backs they force — to c. Cache hits are free for the operation.
// Many views over one pool may run concurrently; each transfer lands on
// exactly one counter, so per-operation counts sum to the store-level diff.
func (p *BufferPool) WithCounter(c *Counter) Pager { return &poolOpView{p: p, c: c} }

// poolOpView is the per-operation handle WithCounter returns.
type poolOpView struct {
	p *BufferPool
	c *Counter
}

func (v *poolOpView) PageSize() int { return v.p.PageSize() }

func (v *poolOpView) Alloc() (PageID, error) {
	id, err := v.p.store.Alloc()
	if err == nil {
		v.c.addAlloc()
	}
	return id, err
}

func (v *poolOpView) Free(id PageID) error { return v.p.free(id, v.c) }

func (v *poolOpView) Read(id PageID, buf []byte) error { return v.p.read(id, buf, v.c) }

func (v *poolOpView) Write(id PageID, buf []byte) error { return v.p.write(id, buf, v.c) }

// insert adds a frame to sh, evicting the shard's LRU victim if the shard is
// full. Caller holds sh.mu. A dirty victim is written back first; if that
// write fails (an injected fault, or a real device error once the store is a
// file) the victim stays resident and dirty — dropping the frame would lose
// the only up-to-date copy of the page — and the error propagates to the
// access that triggered the eviction. That access's counter c (may be nil)
// is charged for the write-back: the op that forces an eviction pays for it.
func (p *BufferPool) insert(sh *poolShard, f *frame, c *Counter) error {
	for sh.lru.Len() >= sh.capacity {
		victim := sh.lru.Back()
		vf := victim.Value.(*frame)
		if vf.dirty {
			//pcvet:allow lockheldio -- eviction write-back under the shard latch keeps victim selection atomic
			if err := p.store.Write(vf.id, vf.data); err != nil {
				return fmt.Errorf("disk: writing back page %d on eviction: %w", vf.id, err)
			}
			vf.dirty = false
			c.addWrite()
		}
		sh.lru.Remove(victim)
		delete(sh.frames, vf.id)
		sh.evictions.Add(1)
	}
	sh.frames[f.id] = sh.lru.PushFront(f)
	return nil
}

// Flush writes back every dirty frame and empties the cache. Subsequent
// reads are cold, which is how per-query worst-case I/O is measured. Shards
// are drained one at a time; callers should not run Flush concurrently with
// writes they expect it to cover.
func (p *BufferPool) Flush() error {
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		for el := sh.lru.Front(); el != nil; el = el.Next() {
			f := el.Value.(*frame)
			if f.dirty {
				//pcvet:allow lockheldio -- Flush drains the shard under its latch so readers see written-back data, never stale store pages
				if err := p.store.Write(f.id, f.data); err != nil {
					sh.mu.Unlock()
					return err
				}
				f.dirty = false
			}
		}
		sh.lru.Init()
		sh.frames = make(map[PageID]*list.Element, sh.capacity)
		sh.mu.Unlock()
	}
	return nil
}

// Len reports the number of resident frames across all shards.
func (p *BufferPool) Len() int {
	n := 0
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		n += sh.lru.Len()
		sh.mu.Unlock()
	}
	return n
}

// Stats returns the pool-wide hit/miss/eviction counters: the exact sum of
// the per-shard atomics. It takes no locks and never blocks readers.
func (p *BufferPool) Stats() PoolStats {
	var out PoolStats
	for i := range p.shards {
		out = out.Add(p.shards[i].snapshot())
	}
	return out
}

// ShardStats returns one counter snapshot per shard, in shard order. The
// slice sums exactly to Stats (when no accesses race the walk).
func (p *BufferPool) ShardStats() []PoolStats {
	out := make([]PoolStats, len(p.shards))
	for i := range p.shards {
		out[i] = p.shards[i].snapshot()
	}
	return out
}

func (sh *poolShard) snapshot() PoolStats {
	return PoolStats{
		Hits:      sh.hits.Load(),
		Misses:    sh.misses.Load(),
		Evictions: sh.evictions.Load(),
	}
}

// ResetStats zeroes the pool counters on every shard.
func (p *BufferPool) ResetStats() {
	for i := range p.shards {
		sh := &p.shards[i]
		sh.hits.Store(0)
		sh.misses.Store(0)
		sh.evictions.Store(0)
	}
}
