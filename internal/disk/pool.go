package disk

import (
	"container/list"
	"fmt"
	"sync"
)

// PoolStats reports buffer-pool effectiveness.
type PoolStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
}

// BufferPool is a write-back LRU page cache layered over a Store. It
// implements Pager, so structures can run either directly against the store
// (cold, worst-case I/O measurement) or through a pool (warm behaviour).
//
// BufferPool is safe for concurrent use, though the experiments in this
// repository drive it single-threaded for deterministic counts.
type BufferPool struct {
	mu       sync.Mutex
	store    Pager
	capacity int
	frames   map[PageID]*list.Element
	lru      *list.List // front = most recently used
	stats    PoolStats
}

type frame struct {
	id    PageID
	data  []byte
	dirty bool
}

// NewBufferPool wraps a pager with an LRU cache of capacity pages.
func NewBufferPool(store Pager, capacity int) (*BufferPool, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("disk: buffer pool capacity %d < 1", capacity)
	}
	return &BufferPool{
		store:    store,
		capacity: capacity,
		frames:   make(map[PageID]*list.Element, capacity),
		lru:      list.New(),
	}, nil
}

// PageSize reports the underlying store's page size.
func (p *BufferPool) PageSize() int { return p.store.PageSize() }

// Alloc reserves a fresh page in the underlying store. The page is not
// brought into the cache until it is read or written.
func (p *BufferPool) Alloc() (PageID, error) { return p.store.Alloc() }

// Free drops any cached copy (discarding dirty data — the page is going
// away) and releases the page in the store.
func (p *BufferPool) Free(id PageID) error {
	p.mu.Lock()
	if el, ok := p.frames[id]; ok {
		p.lru.Remove(el)
		delete(p.frames, id)
	}
	p.mu.Unlock()
	return p.store.Free(id)
}

// Read returns the page contents, from cache when possible.
func (p *BufferPool) Read(id PageID, buf []byte) error {
	if len(buf) < p.store.PageSize() {
		return ErrShortBuf
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.frames[id]; ok {
		p.stats.Hits++
		p.lru.MoveToFront(el)
		copy(buf, el.Value.(*frame).data)
		return nil
	}
	p.stats.Misses++
	data := make([]byte, p.store.PageSize())
	if err := p.store.Read(id, data); err != nil {
		return err
	}
	p.insert(&frame{id: id, data: data})
	copy(buf, data)
	return nil
}

// Write updates the cached page, marking it dirty; the store is updated on
// eviction or Flush.
func (p *BufferPool) Write(id PageID, buf []byte) error {
	ps := p.store.PageSize()
	if len(buf) < ps {
		return ErrShortBuf
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.frames[id]; ok {
		p.stats.Hits++
		p.lru.MoveToFront(el)
		f := el.Value.(*frame)
		copy(f.data, buf[:ps])
		f.dirty = true
		return nil
	}
	p.stats.Misses++
	data := make([]byte, ps)
	copy(data, buf[:ps])
	p.insert(&frame{id: id, data: data, dirty: true})
	return nil
}

// insert adds a frame, evicting the LRU victim if the pool is full.
// Caller holds p.mu.
func (p *BufferPool) insert(f *frame) {
	for p.lru.Len() >= p.capacity {
		victim := p.lru.Back()
		vf := victim.Value.(*frame)
		if vf.dirty {
			// Best effort: eviction of a dirty page writes it back. An
			// error here means the page was freed underneath us, which the
			// structures never do for live data.
			_ = p.store.Write(vf.id, vf.data)
		}
		p.lru.Remove(victim)
		delete(p.frames, vf.id)
		p.stats.Evictions++
	}
	p.frames[f.id] = p.lru.PushFront(f)
}

// Flush writes back every dirty frame and empties the cache. Subsequent
// reads are cold, which is how per-query worst-case I/O is measured.
func (p *BufferPool) Flush() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for el := p.lru.Front(); el != nil; el = el.Next() {
		f := el.Value.(*frame)
		if f.dirty {
			if err := p.store.Write(f.id, f.data); err != nil {
				return err
			}
			f.dirty = false
		}
	}
	p.lru.Init()
	p.frames = make(map[PageID]*list.Element, p.capacity)
	return nil
}

// Stats returns a snapshot of hit/miss/eviction counters.
func (p *BufferPool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// ResetStats zeroes the pool counters.
func (p *BufferPool) ResetStats() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats = PoolStats{}
}
