package disk

import (
	"math/rand"
	"sync"
	"testing"
)

func TestDefaultShards(t *testing.T) {
	cases := []struct{ capacity, want int }{
		{1, 1}, {2, 1}, {8, 1}, {15, 1},
		{16, 2}, {32, 4}, {64, 8}, {128, 16},
		{1024, 16}, // capped at maxPoolShards
	}
	for _, c := range cases {
		if got := defaultShards(c.capacity); got != c.want {
			t.Errorf("defaultShards(%d) = %d, want %d", c.capacity, got, c.want)
		}
	}
}

func TestNewBufferPoolShardsValidation(t *testing.T) {
	s := MustStore(128)
	if _, err := NewBufferPoolShards(s, 8, 3); err == nil {
		t.Error("accepted non-power-of-two shard count")
	}
	if _, err := NewBufferPoolShards(s, 2, 4); err == nil {
		t.Error("accepted more shards than capacity")
	}
	if _, err := NewBufferPoolShards(s, 0, 1); err == nil {
		t.Error("accepted zero capacity")
	}
	p, err := NewBufferPoolShards(s, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumShards() != 4 {
		t.Fatalf("NumShards = %d, want 4", p.NumShards())
	}
	// Capacity splits exactly: 10 over 4 shards = 3+3+2+2.
	total := 0
	for i := range p.shards {
		total += p.shards[i].capacity
		if p.shards[i].capacity < 1 {
			t.Fatalf("shard %d has capacity %d", i, p.shards[i].capacity)
		}
	}
	if total != 10 {
		t.Fatalf("shard capacities sum to %d, want 10", total)
	}
}

// poolTrace allocates nPages pages with distinct contents and returns a
// deterministic access trace over them.
func poolTrace(t *testing.T, s *Store, nPages, length int, seed int64) ([]PageID, []byte) {
	t.Helper()
	ids := make([]PageID, nPages)
	buf := make([]byte, s.PageSize())
	for i := range ids {
		id, err := s.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		buf[0], buf[1] = byte(i), byte(i>>8)
		if err := s.Write(id, buf); err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	rng := rand.New(rand.NewSource(seed))
	trace := make([]PageID, length)
	for i := range trace {
		trace[i] = ids[rng.Intn(nPages)]
	}
	return trace, buf
}

// TestShardedPoolStatsExact replays the same access trace through the
// sharded pool once serially (8 sequential passes) and once with 8
// concurrent readers (one pass each), in the no-eviction regime. The summed
// shard counters must be identical in both runs — the accounting is
// deterministic even though the interleaving is not: each distinct page
// misses exactly once (the shard lock serializes the first touch) and every
// other access hits. Run with -race.
func TestShardedPoolStatsExact(t *testing.T) {
	const (
		nPages  = 200
		length  = 2048
		readers = 8
	)
	run := func(concurrent bool) PoolStats {
		s := MustStore(128)
		trace, _ := poolTrace(t, s, nPages, length, 99)
		p, err := NewBufferPoolShards(s, 256, 8)
		if err != nil {
			t.Fatal(err)
		}
		replay := func() {
			buf := make([]byte, 128)
			for _, id := range trace {
				if err := p.Read(id, buf); err != nil {
					t.Error(err)
					return
				}
			}
		}
		if concurrent {
			var wg sync.WaitGroup
			for g := 0; g < readers; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					replay()
				}()
			}
			wg.Wait()
		} else {
			for g := 0; g < readers; g++ {
				replay()
			}
		}
		// ShardStats must sum exactly to Stats once the pool is quiescent.
		var sum PoolStats
		for _, ss := range p.ShardStats() {
			sum = sum.Add(ss)
		}
		if sum != p.Stats() {
			t.Fatalf("ShardStats sum %+v != Stats %+v", sum, p.Stats())
		}
		return p.Stats()
	}

	serial := run(false)
	conc := run(true)
	if serial != conc {
		t.Fatalf("concurrent stats %+v != serial stats %+v", conc, serial)
	}
	distinct := map[PageID]bool{}
	s := MustStore(128)
	trace, _ := poolTrace(t, s, nPages, length, 99)
	for _, id := range trace {
		distinct[id] = true
	}
	wantMisses := int64(len(distinct))
	wantHits := int64(readers*length) - wantMisses
	if serial.Misses != wantMisses || serial.Hits != wantHits || serial.Evictions != 0 {
		t.Fatalf("stats %+v, want hits=%d misses=%d evictions=0", serial, wantHits, wantMisses)
	}
}

// Under eviction pressure the per-access interleaving changes which pages
// get evicted, but the accounting conservation laws hold exactly:
// hits+misses equals total accesses and misses-evictions equals the
// resident frame count. Run with -race.
func TestShardedPoolEvictionConservation(t *testing.T) {
	const (
		nPages  = 300
		length  = 1024
		readers = 8
	)
	s := MustStore(128)
	trace, _ := poolTrace(t, s, nPages, length, 7)
	p, err := NewBufferPoolShards(s, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 128)
			for _, id := range trace {
				if err := p.Read(id, buf); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	st := p.Stats()
	if got, want := st.Hits+st.Misses, int64(readers*length); got != want {
		t.Fatalf("hits+misses = %d, want %d accesses", got, want)
	}
	if st.Evictions == 0 {
		t.Fatal("expected evictions with working set 300 > capacity 64")
	}
	if got, want := st.Misses-st.Evictions, int64(p.Len()); got != want {
		t.Fatalf("misses-evictions = %d, want %d resident frames", got, want)
	}
}

// Concurrent readers through the sharded pool must always observe the page
// bytes the store holds (reads are copies under the shard lock). Run with
// -race.
func TestShardedPoolReadConsistency(t *testing.T) {
	s := MustStore(128)
	trace, _ := poolTrace(t, s, 64, 512, 13)
	want := map[PageID][2]byte{}
	buf := make([]byte, 128)
	for _, id := range trace {
		if err := s.Read(id, buf); err != nil {
			t.Fatal(err)
		}
		want[id] = [2]byte{buf[0], buf[1]}
	}
	p, err := NewBufferPoolShards(s, 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 128)
			for _, id := range trace {
				if err := p.Read(id, buf); err != nil {
					t.Error(err)
					return
				}
				if w := want[id]; buf[0] != w[0] || buf[1] != w[1] {
					t.Errorf("page %d: got %d,%d want %d,%d", id, buf[0], buf[1], w[0], w[1])
					return
				}
			}
		}()
	}
	wg.Wait()
}

// Dirty pages written through different shards all land in the store after
// Flush, and Free on one shard never disturbs frames on another.
func TestShardedPoolWriteBackAndFree(t *testing.T) {
	s := MustStore(128)
	p, err := NewBufferPoolShards(s, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	var ids []PageID
	buf := make([]byte, 128)
	for i := 0; i < 12; i++ {
		id, err := p.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		buf[0] = byte(i + 1)
		if err := p.Write(id, buf); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		if err := s.Read(id, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte(i+1) {
			t.Fatalf("page %d: flushed byte %d, want %d", id, buf[0], i+1)
		}
	}
	// Re-warm the cache, free one page, and check the others still hit.
	for _, id := range ids {
		if err := p.Read(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Free(ids[0]); err != nil {
		t.Fatal(err)
	}
	p.ResetStats()
	for _, id := range ids[1:] {
		if err := p.Read(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	if st := p.Stats(); st.Misses != 0 || st.Hits != int64(len(ids)-1) {
		t.Fatalf("after Free: %+v, want %d hits and no misses", st, len(ids)-1)
	}
}
