package disk

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sync"
)

// FileStore is a Pager backed by a real file, for running any of the
// structures against persistent storage instead of the in-memory simulator.
// The I/O accounting is identical, so bounds measured on a Store hold
// unchanged on a FileStore.
//
// Layout: a one-page superblock (magic, page size, page count, free-list
// head) followed by pages addressed as PageID 0..n-1 at byte offset
// (1+id)*pageSize. Freed pages form an intrusive on-disk free list: the
// first 8 bytes of a free page point at the next free page.
type FileStore struct {
	mu       sync.Mutex
	f        *os.File
	pageSize int
	numPages int64 // allocated-or-freed page slots in the file
	freeHead PageID
	appHead  PageID          // application metadata page (index headers)
	freeSet  map[PageID]bool // guards against double free / read-after-free

	reads  int64
	writes int64
	allocs int64
	frees  int64
}

const fileMagic = 0x70636163686500 // "pcache\0"

var errClosed = errors.New("disk: file store closed")

// CreateFileStore creates (or truncates) a file store at path.
func CreateFileStore(path string, pageSize int) (*FileStore, error) {
	if pageSize < MinPageSize {
		return nil, fmt.Errorf("%w: %d < %d", ErrPageSize, pageSize, MinPageSize)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	fs := &FileStore{f: f, pageSize: pageSize, freeHead: InvalidPage, appHead: InvalidPage, freeSet: map[PageID]bool{}}
	if err := fs.writeSuper(); err != nil {
		f.Close()
		return nil, err
	}
	return fs, nil
}

// OpenFileStore opens an existing file store.
func OpenFileStore(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, 40)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("disk: reading superblock: %w", err)
	}
	if binary.LittleEndian.Uint64(hdr[0:8]) != fileMagic {
		f.Close()
		return nil, errors.New("disk: not a pathcache file store")
	}
	fs := &FileStore{
		f:        f,
		pageSize: int(binary.LittleEndian.Uint32(hdr[8:12])),
		numPages: int64(binary.LittleEndian.Uint64(hdr[16:24])),
		freeHead: PageID(binary.LittleEndian.Uint64(hdr[24:32])),
		appHead:  PageID(binary.LittleEndian.Uint64(hdr[32:40])),
		freeSet:  map[PageID]bool{},
	}
	// Rebuild the free set by walking the on-disk free list.
	buf := make([]byte, 8)
	for id := fs.freeHead; id != InvalidPage; {
		fs.freeSet[id] = true
		if _, err := f.ReadAt(buf, fs.offset(id)); err != nil {
			f.Close()
			return nil, fmt.Errorf("disk: walking free list: %w", err)
		}
		id = PageID(binary.LittleEndian.Uint64(buf))
	}
	return fs, nil
}

func (fs *FileStore) offset(id PageID) int64 {
	return int64(fs.pageSize) * (int64(id) + 1)
}

// writeSuper persists the superblock. Caller holds fs.mu (or is the
// constructor).
func (fs *FileStore) writeSuper() error {
	hdr := make([]byte, fs.pageSize)
	binary.LittleEndian.PutUint64(hdr[0:8], fileMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(fs.pageSize))
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(fs.numPages))
	binary.LittleEndian.PutUint64(hdr[24:32], uint64(fs.freeHead))
	binary.LittleEndian.PutUint64(hdr[32:40], uint64(fs.appHead))
	_, err := fs.f.WriteAt(hdr, 0)
	return err
}

// SetAppHead records the application's metadata page (e.g. a serialized
// index header) in the superblock.
func (fs *FileStore) SetAppHead(id PageID) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.f == nil {
		return errClosed
	}
	fs.appHead = id
	return fs.writeSuper()
}

// AppHead returns the application's metadata page, or InvalidPage.
func (fs *FileStore) AppHead() PageID {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.appHead
}

// PageSize implements Pager.
func (fs *FileStore) PageSize() int { return fs.pageSize }

// Alloc implements Pager.
func (fs *FileStore) Alloc() (PageID, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.f == nil {
		return InvalidPage, errClosed
	}
	fs.allocs++
	if fs.freeHead != InvalidPage {
		id := fs.freeHead
		buf := make([]byte, 8)
		if _, err := fs.f.ReadAt(buf, fs.offset(id)); err != nil {
			return InvalidPage, err
		}
		fs.freeHead = PageID(binary.LittleEndian.Uint64(buf))
		delete(fs.freeSet, id)
		// Zero the reused page, matching Store semantics.
		if _, err := fs.f.WriteAt(make([]byte, fs.pageSize), fs.offset(id)); err != nil {
			return InvalidPage, err
		}
		return id, fs.writeSuper()
	}
	id := PageID(fs.numPages)
	fs.numPages++
	if _, err := fs.f.WriteAt(make([]byte, fs.pageSize), fs.offset(id)); err != nil {
		return InvalidPage, err
	}
	return id, fs.writeSuper()
}

// Free implements Pager.
func (fs *FileStore) Free(id PageID) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.f == nil {
		return errClosed
	}
	if id < 0 || int64(id) >= fs.numPages {
		return fmt.Errorf("%w: %d", ErrBadPage, id)
	}
	if fs.freeSet[id] {
		return fmt.Errorf("%w: %d", ErrDoubleUse, id)
	}
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint64(buf, uint64(fs.freeHead))
	if _, err := fs.f.WriteAt(buf, fs.offset(id)); err != nil {
		return err
	}
	fs.freeHead = id
	fs.freeSet[id] = true
	fs.frees++
	return fs.writeSuper()
}

// Read implements Pager.
func (fs *FileStore) Read(id PageID, buf []byte) error {
	if len(buf) < fs.pageSize {
		return ErrShortBuf
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.f == nil {
		return errClosed
	}
	if id < 0 || int64(id) >= fs.numPages || fs.freeSet[id] {
		return fmt.Errorf("%w: %d", ErrBadPage, id)
	}
	fs.reads++
	_, err := fs.f.ReadAt(buf[:fs.pageSize], fs.offset(id))
	return err
}

// Write implements Pager.
func (fs *FileStore) Write(id PageID, buf []byte) error {
	if len(buf) < fs.pageSize {
		return ErrShortBuf
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.f == nil {
		return errClosed
	}
	if id < 0 || int64(id) >= fs.numPages || fs.freeSet[id] {
		return fmt.Errorf("%w: %d", ErrBadPage, id)
	}
	fs.writes++
	_, err := fs.f.WriteAt(buf[:fs.pageSize], fs.offset(id))
	return err
}

// NumPages reports the number of live pages.
func (fs *FileStore) NumPages() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return int(fs.numPages) - len(fs.freeSet)
}

// Stats returns a snapshot of the I/O counters.
func (fs *FileStore) Stats() Stats {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return Stats{Reads: fs.reads, Writes: fs.writes, Allocs: fs.allocs, Frees: fs.frees}
}

// ResetStats zeroes the I/O counters.
func (fs *FileStore) ResetStats() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.reads, fs.writes, fs.allocs, fs.frees = 0, 0, 0, 0
}

// Sync flushes the file to stable storage.
func (fs *FileStore) Sync() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.f == nil {
		return errClosed
	}
	return fs.f.Sync()
}

// Close syncs and closes the file. The store is unusable afterwards.
func (fs *FileStore) Close() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.f == nil {
		return nil
	}
	if err := fs.f.Sync(); err != nil {
		fs.f.Close()
		fs.f = nil
		return err
	}
	err := fs.f.Close()
	fs.f = nil
	return err
}
