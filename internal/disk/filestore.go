package disk

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// FileStore is a Pager backed by a real byte device (an os file, or any
// File), for running any of the structures against persistent storage
// instead of the in-memory simulator. The I/O accounting is identical, so
// bounds measured on a Store hold unchanged on a FileStore.
//
// On-disk format (version 2 — crash-consistent):
//
//   - Two fixed 64-byte superblock slots at offsets 0 and 64, each holding
//     (magic, version, page size, epoch, page count, free-list head, app
//     head) plus a CRC32C over the fields. Superblock updates alternate
//     between the slots with a monotonically increasing epoch, so a torn
//     superblock write destroys at most one slot and Open falls back to the
//     other: metadata updates are atomic.
//   - Pages addressed as PageID 0..n-1 at byte offset (1+id)*pageSize. The
//     last 4 bytes of every page hold a CRC32C over the payload and the page
//     id, so a torn page write (or a misdirected one) is detected at read
//     time instead of silently returning wrong bytes. PageSize() therefore
//     reports the reduced usable size (pageSize - 4): B and all packing
//     arithmetic derive from it exactly.
//   - Freed pages form an intrusive on-disk free list: the first 12 bytes of
//     a free page are the next free page id plus a CRC32C over that pointer
//     and the page id, so a torn free-list update is detected when the list
//     is walked.
//
// Every integrity failure is reported as an error wrapping ErrCorrupt; the
// store never returns unverified bytes.
type FileStore struct {
	mu       sync.Mutex
	f        File
	pageSize int // physical page slot size; usable payload is 4 bytes less
	epoch    uint64
	numPages int64 // allocated-or-freed page slots in the file
	freeHead PageID
	appHead  PageID          // application metadata page (index headers)
	freeSet  map[PageID]bool // guards against double free / read-after-free

	reads  int64
	writes int64
	allocs int64
	frees  int64
}

// ErrCorrupt is wrapped by every integrity failure: a page or superblock
// checksum mismatch, a truncated file, an inconsistent free list, or
// malformed metadata. Callers classify recovery outcomes with
// errors.Is(err, ErrCorrupt).
var ErrCorrupt = errors.New("disk: corrupt data")

const fileMagic = 0x0032656863616370 // "pcache2\0", little-endian

const (
	fileFormatVersion = 2
	superSlotSize     = 64 // two slots precede the first page
	superSize         = 52 // encoded superblock bytes within a slot
	pageTrailerSize   = 4  // CRC32C over payload + page id
	freeStubSize      = 12 // next pointer + CRC32C over pointer + page id

	// MinFilePageSize is the smallest physical page a FileStore accepts: the
	// two superblock slots must fit before the first page, and the usable
	// payload (pageSize - 4) must still satisfy MinPageSize.
	MinFilePageSize = 2 * superSlotSize

	// maxOpenPageSize bounds the page size Open will believe from a header,
	// so a corrupted or hostile image cannot induce absurd allocations.
	maxOpenPageSize = 1 << 24
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

var errClosed = errors.New("disk: file store closed")

// pageCRC checksums a page payload bound to its id, so a page written to the
// wrong offset fails verification too.
func pageCRC(id PageID, payload []byte) uint32 {
	var idb [8]byte
	binary.LittleEndian.PutUint64(idb[:], uint64(id))
	c := crc32.Update(0, crcTable, payload)
	return crc32.Update(c, crcTable, idb[:])
}

// stubCRC checksums a free-list pointer bound to the page holding it.
func stubCRC(id PageID, next PageID) uint32 {
	var b [16]byte
	binary.LittleEndian.PutUint64(b[0:8], uint64(next))
	binary.LittleEndian.PutUint64(b[8:16], uint64(id))
	return crc32.Update(0, crcTable, b[:])
}

func validFilePageSize(pageSize int) error {
	if pageSize < MinFilePageSize || pageSize-pageTrailerSize < MinPageSize {
		return fmt.Errorf("%w: %d < %d", ErrPageSize, pageSize, MinFilePageSize)
	}
	return nil
}

// CreateFileStore creates (or truncates) a file store at path.
func CreateFileStore(path string, pageSize int) (*FileStore, error) {
	if err := validFilePageSize(pageSize); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	fs, err := CreateFileStoreOn(OSFile{f}, pageSize)
	if err != nil {
		f.Close()
		return nil, err
	}
	return fs, nil
}

// CreateFileStoreOn creates a file store on an arbitrary backing File (an
// in-memory image, a fault injector, ...). The store takes ownership of f.
func CreateFileStoreOn(f File, pageSize int) (*FileStore, error) {
	if err := validFilePageSize(pageSize); err != nil {
		return nil, err
	}
	fs := &FileStore{f: f, pageSize: pageSize, freeHead: InvalidPage, appHead: InvalidPage, freeSet: map[PageID]bool{}}
	// Both slots start at epoch 0 so a valid copy exists no matter which slot
	// the first real update lands in.
	enc := fs.encodeSuper()
	for slot := int64(0); slot < 2; slot++ {
		if _, err := f.WriteAt(enc, slot*superSlotSize); err != nil {
			return nil, fmt.Errorf("disk: writing superblock slot %d: %w", slot, err)
		}
	}
	return fs, nil
}

// OpenFileStore opens an existing file store.
func OpenFileStore(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	fs, err := OpenFileStoreOn(OSFile{f})
	if err != nil {
		f.Close()
		return nil, err
	}
	return fs, nil
}

// superblock is one decoded slot.
type superblock struct {
	pageSize int
	epoch    uint64
	numPages int64
	freeHead PageID
	appHead  PageID
}

// decodeSuper validates one superblock slot against the file size. It
// reports ok=false for a slot that is torn, truncated, or inconsistent, and
// hasMagic so Open can tell a foreign file from a corrupt store.
func decodeSuper(b []byte, fileSize int64) (sb superblock, ok, hasMagic bool) {
	if len(b) < superSize {
		return sb, false, false
	}
	if binary.LittleEndian.Uint64(b[0:8]) != fileMagic {
		return sb, false, false
	}
	hasMagic = true
	if binary.LittleEndian.Uint32(b[8:12]) != fileFormatVersion {
		return sb, false, true
	}
	if crc32.Checksum(b[:superSize-4], crcTable) != binary.LittleEndian.Uint32(b[superSize-4:superSize]) {
		return sb, false, true
	}
	sb = superblock{
		pageSize: int(binary.LittleEndian.Uint32(b[12:16])),
		epoch:    binary.LittleEndian.Uint64(b[16:24]),
		numPages: int64(binary.LittleEndian.Uint64(b[24:32])),
		freeHead: PageID(binary.LittleEndian.Uint64(b[32:40])),
		appHead:  PageID(binary.LittleEndian.Uint64(b[40:48])),
	}
	if sb.pageSize > maxOpenPageSize || validFilePageSize(sb.pageSize) != nil {
		return sb, false, true
	}
	if sb.numPages < 0 || sb.numPages > fileSize/int64(sb.pageSize) {
		return sb, false, true
	}
	if sb.numPages > 0 && fileSize < (1+sb.numPages)*int64(sb.pageSize) {
		return sb, false, true
	}
	inRange := func(id PageID) bool { return id == InvalidPage || (id >= 0 && int64(id) < sb.numPages) }
	if !inRange(sb.freeHead) || !inRange(sb.appHead) {
		return sb, false, true
	}
	return sb, true, true
}

// OpenFileStoreOn opens an existing file store over an arbitrary backing
// File. It picks the newest valid superblock slot (recovering from a torn
// superblock write), then rebuilds and verifies the free list; any
// inconsistency fails with a wrapped ErrCorrupt. On success the store takes
// ownership of f.
func OpenFileStoreOn(f File) (*FileStore, error) {
	size, err := f.Size()
	if err != nil {
		return nil, fmt.Errorf("disk: sizing store file: %w", err)
	}
	var best superblock
	valid, anyMagic := false, false
	slots := make([]byte, 2*superSlotSize)
	// A short read is fine: decodeSuper rejects truncated slots.
	if n, rerr := f.ReadAt(slots, 0); rerr != nil && n < superSize && !errors.Is(rerr, io.EOF) {
		return nil, fmt.Errorf("disk: reading superblocks: %w", rerr)
	} else {
		slots = slots[:n]
	}
	for slot := 0; slot < 2; slot++ {
		lo := slot * superSlotSize
		if lo > len(slots) {
			break
		}
		hi := lo + superSize
		if hi > len(slots) {
			hi = len(slots)
		}
		sb, ok, hasMagic := decodeSuper(slots[lo:hi], size)
		anyMagic = anyMagic || hasMagic
		if ok && (!valid || sb.epoch > best.epoch) {
			best, valid = sb, true
		}
	}
	if !valid {
		if !anyMagic {
			return nil, fmt.Errorf("disk: not a pathcache file store: %w", ErrCorrupt)
		}
		return nil, fmt.Errorf("disk: no intact superblock (both slots torn or stale): %w", ErrCorrupt)
	}
	fs := &FileStore{
		f:        f,
		pageSize: best.pageSize,
		epoch:    best.epoch,
		numPages: best.numPages,
		freeHead: best.freeHead,
		appHead:  best.appHead,
		freeSet:  map[PageID]bool{},
	}
	// Rebuild the free set by walking the on-disk free list. The walk is
	// bounded by numPages and every stub is checksum-verified, so a torn
	// free-list update, a cycle, or an out-of-range pointer all surface as
	// ErrCorrupt instead of corrupting allocation state.
	for id := fs.freeHead; id != InvalidPage; {
		if id < 0 || int64(id) >= fs.numPages {
			return nil, fmt.Errorf("disk: free list points at page %d outside 0..%d: %w", id, fs.numPages-1, ErrCorrupt)
		}
		if fs.freeSet[id] {
			return nil, fmt.Errorf("disk: free list cycles back to page %d: %w", id, ErrCorrupt)
		}
		next, err := fs.readFreeStub(id)
		if err != nil {
			return nil, err
		}
		fs.freeSet[id] = true
		id = next
	}
	return fs, nil
}

func (fs *FileStore) offset(id PageID) int64 {
	return int64(fs.pageSize) * (int64(id) + 1)
}

// usable is the per-page payload size: the physical page minus the checksum
// trailer. All packing arithmetic (B, chain capacities) derives from it.
func (fs *FileStore) usable() int { return fs.pageSize - pageTrailerSize }

// encodeSuper serializes the current metadata with its checksum.
func (fs *FileStore) encodeSuper() []byte {
	b := make([]byte, superSize)
	binary.LittleEndian.PutUint64(b[0:8], fileMagic)
	binary.LittleEndian.PutUint32(b[8:12], fileFormatVersion)
	binary.LittleEndian.PutUint32(b[12:16], uint32(fs.pageSize))
	binary.LittleEndian.PutUint64(b[16:24], fs.epoch)
	binary.LittleEndian.PutUint64(b[24:32], uint64(fs.numPages))
	binary.LittleEndian.PutUint64(b[32:40], uint64(fs.freeHead))
	binary.LittleEndian.PutUint64(b[40:48], uint64(fs.appHead))
	binary.LittleEndian.PutUint32(b[superSize-4:superSize], crc32.Checksum(b[:superSize-4], crcTable))
	return b
}

// writeSuper persists the superblock into the slot its next epoch selects,
// leaving the previous epoch's slot intact: a crash mid-write costs at most
// the update in flight, never the metadata. Caller holds fs.mu (or is the
// constructor).
func (fs *FileStore) writeSuper() error {
	fs.epoch++
	slot := int64(fs.epoch % 2)
	if _, err := fs.f.WriteAt(fs.encodeSuper(), slot*superSlotSize); err != nil {
		return fmt.Errorf("disk: writing superblock slot %d (epoch %d): %w", slot, fs.epoch, err)
	}
	return nil
}

// readFreeStub reads and verifies the free-list pointer stored in page id.
// Caller holds fs.mu (or is the opener).
func (fs *FileStore) readFreeStub(id PageID) (PageID, error) {
	stub := make([]byte, freeStubSize)
	if _, err := fs.f.ReadAt(stub, fs.offset(id)); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return InvalidPage, fmt.Errorf("disk: free page %d truncated: %w", id, ErrCorrupt)
		}
		return InvalidPage, fmt.Errorf("disk: reading free page %d: %w", id, err)
	}
	next := PageID(binary.LittleEndian.Uint64(stub[0:8]))
	if binary.LittleEndian.Uint32(stub[8:12]) != stubCRC(id, next) {
		return InvalidPage, fmt.Errorf("disk: free page %d pointer checksum mismatch: %w", id, ErrCorrupt)
	}
	return next, nil
}

// writeFreeStub links page id to next on the on-disk free list. Caller holds
// fs.mu.
func (fs *FileStore) writeFreeStub(id PageID, next PageID) error {
	stub := make([]byte, freeStubSize)
	binary.LittleEndian.PutUint64(stub[0:8], uint64(next))
	binary.LittleEndian.PutUint32(stub[8:12], stubCRC(id, next))
	if _, err := fs.f.WriteAt(stub, fs.offset(id)); err != nil {
		return fmt.Errorf("disk: writing free stub on page %d: %w", id, err)
	}
	return nil
}

// writePage seals the payload with its checksum trailer and writes the full
// physical page. Caller holds fs.mu.
func (fs *FileStore) writePage(id PageID, payload []byte) error {
	slotBuf := make([]byte, fs.pageSize)
	copy(slotBuf, payload[:fs.usable()])
	binary.LittleEndian.PutUint32(slotBuf[fs.pageSize-pageTrailerSize:], pageCRC(id, slotBuf[:fs.usable()]))
	if _, err := fs.f.WriteAt(slotBuf, fs.offset(id)); err != nil {
		return fmt.Errorf("disk: writing page %d: %w", id, err)
	}
	return nil
}

// readPage reads the full physical page and verifies its checksum before
// returning the payload. Caller holds fs.mu.
func (fs *FileStore) readPage(id PageID, payload []byte) error {
	slotBuf := make([]byte, fs.pageSize)
	if _, err := fs.f.ReadAt(slotBuf, fs.offset(id)); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return fmt.Errorf("disk: page %d truncated: %w", id, ErrCorrupt)
		}
		return fmt.Errorf("disk: reading page %d: %w", id, err)
	}
	want := binary.LittleEndian.Uint32(slotBuf[fs.pageSize-pageTrailerSize:])
	if got := pageCRC(id, slotBuf[:fs.usable()]); got != want {
		return fmt.Errorf("disk: page %d checksum mismatch (stored %08x, computed %08x): %w", id, want, got, ErrCorrupt)
	}
	copy(payload[:fs.usable()], slotBuf)
	return nil
}

// SetAppHead records the application's metadata page (e.g. a serialized
// index header) in the superblock.
func (fs *FileStore) SetAppHead(id PageID) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.f == nil {
		return errClosed
	}
	fs.appHead = id
	return fs.writeSuper()
}

// AppHead returns the application's metadata page, or InvalidPage.
func (fs *FileStore) AppHead() PageID {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.appHead
}

// PageSize implements Pager. It reports the usable payload size — the
// physical page minus the checksum trailer — so B is derived from the bytes
// a page can actually carry.
func (fs *FileStore) PageSize() int { return fs.pageSize - pageTrailerSize }

// Alloc implements Pager.
func (fs *FileStore) Alloc() (PageID, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.f == nil {
		return InvalidPage, errClosed
	}
	fs.allocs++
	zero := make([]byte, fs.usable())
	if fs.freeHead != InvalidPage {
		id := fs.freeHead
		next, err := fs.readFreeStub(id)
		if err != nil {
			return InvalidPage, err
		}
		// Zero the reused page (matching Store semantics) before the
		// superblock commits the pop: a crash in between leaves the page on
		// the free list with a destroyed stub, which the next Open reports
		// as ErrCorrupt instead of silently mis-allocating.
		if err := fs.writePage(id, zero); err != nil {
			return InvalidPage, err
		}
		fs.freeHead = next
		delete(fs.freeSet, id)
		return id, fs.writeSuper()
	}
	id := PageID(fs.numPages)
	if err := fs.writePage(id, zero); err != nil {
		return InvalidPage, err
	}
	fs.numPages++
	return id, fs.writeSuper()
}

// Free implements Pager.
func (fs *FileStore) Free(id PageID) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.f == nil {
		return errClosed
	}
	if id < 0 || int64(id) >= fs.numPages {
		return fmt.Errorf("%w: %d", ErrBadPage, id)
	}
	if fs.freeSet[id] {
		return fmt.Errorf("%w: %d", ErrDoubleUse, id)
	}
	if err := fs.writeFreeStub(id, fs.freeHead); err != nil {
		return err
	}
	fs.freeHead = id
	fs.freeSet[id] = true
	fs.frees++
	return fs.writeSuper()
}

// Read implements Pager. The page checksum is verified before any byte is
// returned; a torn or misdirected write surfaces as a wrapped ErrCorrupt.
func (fs *FileStore) Read(id PageID, buf []byte) error {
	if len(buf) < fs.PageSize() {
		return ErrShortBuf
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.f == nil {
		return errClosed
	}
	if id < 0 || int64(id) >= fs.numPages || fs.freeSet[id] {
		return fmt.Errorf("%w: %d", ErrBadPage, id)
	}
	fs.reads++
	return fs.readPage(id, buf)
}

// Write implements Pager.
func (fs *FileStore) Write(id PageID, buf []byte) error {
	if len(buf) < fs.PageSize() {
		return ErrShortBuf
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.f == nil {
		return errClosed
	}
	if id < 0 || int64(id) >= fs.numPages || fs.freeSet[id] {
		return fmt.Errorf("%w: %d", ErrBadPage, id)
	}
	fs.writes++
	return fs.writePage(id, buf)
}

// NumPages reports the number of live pages.
func (fs *FileStore) NumPages() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return int(fs.numPages) - len(fs.freeSet)
}

// Stats returns a snapshot of the I/O counters.
func (fs *FileStore) Stats() Stats {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return Stats{Reads: fs.reads, Writes: fs.writes, Allocs: fs.allocs, Frees: fs.frees}
}

// ResetStats zeroes the I/O counters.
func (fs *FileStore) ResetStats() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.reads, fs.writes, fs.allocs, fs.frees = 0, 0, 0, 0
}

// Sync flushes the file to stable storage.
func (fs *FileStore) Sync() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.f == nil {
		return errClosed
	}
	return fs.f.Sync()
}

// Close syncs and closes the file. The store is unusable afterwards.
func (fs *FileStore) Close() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.f == nil {
		return nil
	}
	if err := fs.f.Sync(); err != nil {
		//pcvet:allow lockheldio -- terminal teardown under fs.mu keeps close-vs-access ordering simple
		if cerr := fs.f.Close(); cerr != nil {
			err = errors.Join(err, cerr)
		}
		fs.f = nil
		return err
	}
	//pcvet:allow lockheldio -- terminal teardown under fs.mu keeps close-vs-access ordering simple
	err := fs.f.Close()
	fs.f = nil
	return err
}

// VerifyReport summarizes a full integrity scan of a FileStore.
type VerifyReport struct {
	Epoch       uint64 // superblock epoch in effect
	PageSize    int    // physical page size in bytes
	Usable      int    // payload bytes per page (PageSize - checksum trailer)
	Slots       int64  // allocated-or-freed page slots in the file
	Live        int    // pages holding data
	Free        int    // pages on the free list
	PagesOK     int    // live pages whose checksum verified
	FreeStubsOK int    // free pages whose pointer checksum verified
}

// Verify checks every page of the store against its checksum and re-walks
// the free list, without disturbing the I/O counters. It returns the scan
// summary and, on the first integrity failure, an error wrapping ErrCorrupt
// that names the offending page. A store that passes Verify serves every
// read without a checksum error.
func (fs *FileStore) Verify() (VerifyReport, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	rep := VerifyReport{
		Epoch:    fs.epoch,
		PageSize: fs.pageSize,
		Usable:   fs.pageSize - pageTrailerSize,
		Slots:    fs.numPages,
		Live:     int(fs.numPages) - len(fs.freeSet),
		Free:     len(fs.freeSet),
	}
	if fs.f == nil {
		return rep, errClosed
	}
	payload := make([]byte, fs.usable())
	for id := PageID(0); int64(id) < fs.numPages; id++ {
		if fs.freeSet[id] {
			if _, err := fs.readFreeStub(id); err != nil {
				return rep, err
			}
			rep.FreeStubsOK++
			continue
		}
		if err := fs.readPage(id, payload); err != nil {
			return rep, err
		}
		rep.PagesOK++
	}
	return rep, nil
}
