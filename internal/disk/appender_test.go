package disk

import (
	"errors"
	"testing"
)

// TestChainAppenderRoundTrip appends across several page rolls, reopens at
// the tail, appends more, and checks ScanChain replays every record in
// order — the WAL replay contract.
func TestChainAppenderRoundTrip(t *testing.T) {
	s := MustStore(128)
	const recSize = 16
	a, err := NewChainAppender(s, recSize)
	if err != nil {
		t.Fatalf("NewChainAppender: %v", err)
	}
	if a.Head() == InvalidPage {
		t.Fatal("appender head unset")
	}
	head := a.Head()

	rec := func(i int) []byte {
		b := make([]byte, recSize)
		b[0] = byte(i)
		b[1] = byte(i >> 8)
		return b
	}
	const first = 23
	for i := 0; i < first; i++ {
		if err := a.Append(s, rec(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if a.Count() != first {
		t.Fatalf("count = %d, want %d", a.Count(), first)
	}
	if a.Head() != head {
		t.Fatalf("head moved: %d -> %d", head, a.Head())
	}

	// Resume from disk state alone, as recovery does.
	b, err := OpenChainAppender(s, recSize, head)
	if err != nil {
		t.Fatalf("OpenChainAppender: %v", err)
	}
	if b.Count() != first {
		t.Fatalf("reopened count = %d, want %d", b.Count(), first)
	}
	const second = 9
	for i := first; i < first+second; i++ {
		if err := b.Append(s, rec(i)); err != nil {
			t.Fatalf("append after reopen %d: %v", i, err)
		}
	}

	var got []int
	if _, err := ScanChain(s, recSize, head, func(r []byte) bool {
		got = append(got, int(r[0])|int(r[1])<<8)
		return true
	}); err != nil {
		t.Fatalf("ScanChain: %v", err)
	}
	if len(got) != first+second {
		t.Fatalf("replayed %d records, want %d", len(got), first+second)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("record %d = %d, want %d", i, v, i)
		}
	}
	if want := ChainPages(128, recSize, first+second); b.Pages() != want {
		t.Fatalf("pages = %d, want %d", b.Pages(), want)
	}
}

// TestChainAppenderEmptyReopen reopens a chain that never saw an append.
func TestChainAppenderEmptyReopen(t *testing.T) {
	s := MustStore(128)
	a, err := NewChainAppender(s, 16)
	if err != nil {
		t.Fatalf("NewChainAppender: %v", err)
	}
	b, err := OpenChainAppender(s, 16, a.Head())
	if err != nil {
		t.Fatalf("OpenChainAppender: %v", err)
	}
	if b.Count() != 0 || b.Pages() != 1 {
		t.Fatalf("empty chain reopened as count=%d pages=%d", b.Count(), b.Pages())
	}
	if err := b.Append(s, make([]byte, 16)); err != nil {
		t.Fatalf("append on reopened empty chain: %v", err)
	}
}

// TestChainAppenderCorruptInterior rejects a chain whose interior page
// claims fewer records than its capacity — the shape only a lost update or
// corruption can produce.
func TestChainAppenderCorruptInterior(t *testing.T) {
	s := MustStore(128)
	a, err := NewChainAppender(s, 16)
	if err != nil {
		t.Fatalf("NewChainAppender: %v", err)
	}
	cap := ChainCap(128, 16)
	for i := 0; i < cap+1; i++ { // force a second page
		if err := a.Append(s, make([]byte, 16)); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	// Understate the head page's count while keeping its next link.
	buf := make([]byte, 128)
	if err := s.Read(a.Head(), buf); err != nil {
		t.Fatalf("read head: %v", err)
	}
	buf[8], buf[9] = 1, 0
	if err := s.Write(a.Head(), buf); err != nil {
		t.Fatalf("rewrite head: %v", err)
	}
	if _, err := OpenChainAppender(s, 16, a.Head()); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("reopen of corrupt chain = %v, want ErrCorrupt", err)
	}
}

// TestTrackPager records allocations, forgets frees, and passes reads and
// writes through untouched.
func TestTrackPager(t *testing.T) {
	s := MustStore(128)
	tr := Track(s)
	a, err := tr.Alloc()
	if err != nil {
		t.Fatalf("alloc: %v", err)
	}
	b, err := tr.Alloc()
	if err != nil {
		t.Fatalf("alloc: %v", err)
	}
	if got := tr.Allocated(); len(got) != 2 || got[0] != a || got[1] != b {
		t.Fatalf("Allocated = %v, want [%d %d]", got, a, b)
	}
	if err := tr.Free(a); err != nil {
		t.Fatalf("free: %v", err)
	}
	if got := tr.Allocated(); len(got) != 1 || got[0] != b {
		t.Fatalf("Allocated after free = %v, want [%d]", got, b)
	}
}
