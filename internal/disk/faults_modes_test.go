package disk

import (
	"errors"
	"testing"
)

// opOnPager runs one numbered pager operation, cycling through the four
// verbs so every mode test exercises Alloc, Free, Read, and Write.
func opOnPager(p Pager, inner *Store, i int) error {
	switch i % 4 {
	case 0:
		_, err := p.Alloc()
		return err
	case 1:
		id, err := inner.Alloc()
		if err != nil {
			return err
		}
		return p.Write(id, make([]byte, inner.PageSize()))
	case 2:
		id, err := inner.Alloc()
		if err != nil {
			return err
		}
		return p.Read(id, make([]byte, inner.PageSize()))
	default:
		id, err := inner.Alloc()
		if err != nil {
			return err
		}
		return p.Free(id)
	}
}

func TestFaultPagerModes(t *testing.T) {
	const ops = 64
	cases := []struct {
		name string
		mode FaultMode
		make func(inner Pager) *FaultPager
		// wantFail reports whether zero-indexed operation i must fail.
		wantFail func(i int) bool
	}{
		{
			name:     "after-budget",
			mode:     FailAfterBudget,
			make:     func(inner Pager) *FaultPager { return NewFaultPager(inner, 10) },
			wantFail: func(i int) bool { return i >= 10 },
		},
		{
			name:     "every-nth",
			mode:     FailEveryNth,
			make:     func(inner Pager) *FaultPager { return NewEveryNthFaultPager(inner, 5) },
			wantFail: func(i int) bool { return (i+1)%5 == 0 },
		},
		{
			name:     "every-op",
			mode:     FailEveryNth,
			make:     func(inner Pager) *FaultPager { return NewEveryNthFaultPager(inner, 1) },
			wantFail: func(i int) bool { return true },
		},
		{
			name:     "prob-zero",
			mode:     FailProb,
			make:     func(inner Pager) *FaultPager { return NewProbFaultPager(inner, 0, 7) },
			wantFail: func(i int) bool { return false },
		},
		{
			name:     "prob-one",
			mode:     FailProb,
			make:     func(inner Pager) *FaultPager { return NewProbFaultPager(inner, 1, 7) },
			wantFail: func(i int) bool { return true },
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			inner := MustStore(128)
			fp := tc.make(inner)
			if fp.Mode() != tc.mode {
				t.Fatalf("Mode() = %v, want %v", fp.Mode(), tc.mode)
			}
			for i := 0; i < ops; i++ {
				err := opOnPager(fp, inner, i)
				if tc.wantFail(i) {
					if !errors.Is(err, ErrInjected) {
						t.Fatalf("op %d: err = %v, want ErrInjected", i, err)
					}
				} else if err != nil {
					t.Fatalf("op %d: unexpected err %v", i, err)
				}
			}
			if tc.mode != FailAfterBudget {
				if got := fp.Ops(); got != ops {
					t.Fatalf("Ops() = %d, want %d", got, ops)
				}
			}
		})
	}
}

// TestProbFaultPagerDeterministic proves the probabilistic mode is exactly
// reproducible: two pagers with the same seed fail the same operations, and
// a different seed gives a different (but still seed-stable) pattern.
func TestProbFaultPagerDeterministic(t *testing.T) {
	const ops = 200
	pattern := func(seed int64) []bool {
		inner := MustStore(128)
		fp := NewProbFaultPager(inner, 0.3, seed)
		out := make([]bool, ops)
		for i := range out {
			out[i] = errors.Is(opOnPager(fp, inner, i), ErrInjected)
		}
		return out
	}
	a, b := pattern(42), pattern(42)
	fails := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at op %d", i)
		}
		if a[i] {
			fails++
		}
	}
	if fails == 0 || fails == ops {
		t.Fatalf("p=0.3 produced %d/%d failures; injector is degenerate", fails, ops)
	}
	c := pattern(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical failure patterns")
	}
}

func TestFaultModeString(t *testing.T) {
	for mode, want := range map[FaultMode]string{
		FailAfterBudget: "after-budget",
		FailEveryNth:    "every-nth",
		FailProb:        "probabilistic",
		FaultMode(99):   "unknown",
	} {
		if got := mode.String(); got != want {
			t.Errorf("FaultMode(%d).String() = %q, want %q", mode, got, want)
		}
	}
}

// TestEveryNthPropagatesThroughChain drives a chain build over an every-nth
// injector and checks the failure surfaces as a wrapped ErrInjected instead
// of corrupting the chain silently.
func TestEveryNthPropagatesThroughChain(t *testing.T) {
	inner := MustStore(128)
	fp := NewEveryNthFaultPager(inner, 7)
	w, err := NewChainWriter(fp, 24)
	if err != nil {
		t.Fatal(err)
	}
	rec := make([]byte, 24)
	var failed bool
	for i := 0; i < 200 && !failed; i++ {
		if err := w.Append(rec); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("append %d: err = %v, want wrapped ErrInjected", i, err)
			}
			failed = true
		}
	}
	if !failed {
		t.Fatal("200 appends over an every-7th injector never failed")
	}
}
