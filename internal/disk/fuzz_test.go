package disk

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzChainReadWrite round-trips arbitrary payloads through a chain
// append/scan cycle for several record and page sizes: every record comes
// back byte-identical and in order, the page count matches the ⌈k/B⌉
// arithmetic of the I/O model, and freeing the chain releases exactly its
// pages.
func FuzzChainReadWrite(f *testing.F) {
	f.Add([]byte{}, uint8(8), uint8(0))
	f.Add([]byte("hello world, this is a chain payload"), uint8(12), uint8(1))
	f.Add(bytes.Repeat([]byte{0xAB}, 300), uint8(24), uint8(2))
	f.Fuzz(func(t *testing.T, payload []byte, recSizeRaw, pageSel uint8) {
		pageSize := []int{64, 128, 512}[int(pageSel)%3]
		recSize := int(recSizeRaw)
		if recSize < 1 {
			recSize = 1
		}
		if c := ChainCap(pageSize, recSize); c < 1 {
			// Oversized records must be rejected, not mangled.
			s := MustStore(pageSize)
			if _, err := NewChainWriter(s, recSize); err == nil {
				t.Fatalf("NewChainWriter accepted rec=%d page=%d (cap 0)", recSize, pageSize)
			}
			return
		}
		payload = payload[:len(payload)-len(payload)%recSize]
		n := len(payload) / recSize

		s := MustStore(pageSize)
		w, err := NewChainWriter(s, recSize)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if err := w.Append(payload[i*recSize : (i+1)*recSize]); err != nil {
				t.Fatal(err)
			}
		}
		head, pages, count, err := w.Close()
		if err != nil {
			t.Fatal(err)
		}
		if count != n {
			t.Fatalf("count %d, want %d", count, n)
		}
		if want := ChainPages(pageSize, recSize, n); pages != want {
			t.Fatalf("pages %d, want %d", pages, want)
		}
		var got []byte
		reads, err := ScanChain(s, recSize, head, func(rec []byte) bool {
			got = append(got, rec...)
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if reads != pages {
			t.Fatalf("scan read %d pages, want %d", reads, pages)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("scan returned %d bytes != payload %d bytes", len(got), len(payload))
		}
		live := s.NumPages()
		if err := FreeChain(s, head); err != nil {
			t.Fatal(err)
		}
		if got := s.NumPages(); got != live-pages {
			t.Fatalf("FreeChain left %d pages, want %d", got, live-pages)
		}
	})
}

// FuzzChainThroughPool replays the same round trip through a sharded
// buffer pool, checking that write-back caching never changes chain
// contents and that Flush makes the store self-consistent.
func FuzzChainThroughPool(f *testing.F) {
	f.Add([]byte("pool payload pool payload"), uint8(8), uint8(3))
	f.Add(bytes.Repeat([]byte{7}, 200), uint8(16), uint8(17))
	f.Fuzz(func(t *testing.T, payload []byte, recSizeRaw, capRaw uint8) {
		const pageSize = 128
		recSize := int(recSizeRaw)
		if recSize < 1 {
			recSize = 1
		}
		if ChainCap(pageSize, recSize) < 1 {
			return
		}
		capacity := int(capRaw)%32 + 1
		payload = payload[:len(payload)-len(payload)%recSize]

		s := MustStore(pageSize)
		p, err := NewBufferPool(s, capacity)
		if err != nil {
			t.Fatal(err)
		}
		head, _, err := WriteChain(p, recSize, payload)
		if err != nil {
			t.Fatal(err)
		}
		// Read back through the pool (mixed hits and misses).
		var viaPool []byte
		if _, err := ScanChain(p, recSize, head, func(rec []byte) bool {
			viaPool = append(viaPool, rec...)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(viaPool, payload) {
			t.Fatal("pool scan differs from payload")
		}
		// After Flush the raw store must hold the same chain.
		if err := p.Flush(); err != nil {
			t.Fatal(err)
		}
		var viaStore []byte
		if _, err := ScanChain(s, recSize, head, func(rec []byte) bool {
			viaStore = append(viaStore, rec...)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(viaStore, payload) {
			t.Fatal("store scan after Flush differs from payload")
		}
	})
}

// FuzzFileStoreOpen feeds arbitrary images — seeded with genuine store
// files, then mutated by the fuzzer into truncated, bit-flipped, and
// garbage variants — to OpenFileStoreOn. The invariant is the crash-
// consistency contract: open either fails with an error (a corrupt image
// must wrap ErrCorrupt once the magic is present) or yields a store whose
// every surviving page read and full Verify pass checksum-clean or flag
// ErrCorrupt. No input may panic or be served as unflagged garbage.
func FuzzFileStoreOpen(f *testing.F) {
	// Seed corpus: an empty store, a store with live pages and an app head,
	// and one with free-list structure — plus the same images truncated and
	// bit-flipped so the fuzzer starts at the interesting boundaries.
	build := func(mutate func(fs *FileStore)) []byte {
		mem := NewMemFile()
		fs, err := CreateFileStoreOn(mem, MinFilePageSize)
		if err != nil {
			panic(err)
		}
		mutate(fs)
		return mem.Bytes()
	}
	empty := build(func(fs *FileStore) {})
	full := build(func(fs *FileStore) {
		buf := make([]byte, fs.PageSize())
		for i := 0; i < 3; i++ {
			id, _ := fs.Alloc()
			for j := range buf {
				buf[j] = byte(j + i)
			}
			_ = fs.Write(id, buf)
		}
		_ = fs.SetAppHead(1)
	})
	freed := build(func(fs *FileStore) {
		a, _ := fs.Alloc()
		b, _ := fs.Alloc()
		_ = fs.Free(a)
		_ = fs.Free(b)
	})
	f.Add(empty)
	f.Add(full)
	f.Add(freed)
	f.Add(full[:len(full)-37])
	f.Add(full[:superSlotSize+13])
	flip := append([]byte(nil), full...)
	flip[MinFilePageSize+5] ^= 0x40
	f.Add(flip)
	f.Add([]byte("not a store at all"))

	f.Fuzz(func(t *testing.T, img []byte) {
		fs, err := OpenFileStoreOn(NewMemFileFrom(img))
		if err != nil {
			return // rejected: fine, as long as it did not panic
		}
		// The store opened: everything it serves must be checksum-verified.
		// Verify and per-page reads may flag corruption, never panic or
		// return unflagged errors of another shape.
		rep, verr := fs.Verify()
		if verr != nil && !errors.Is(verr, ErrCorrupt) {
			t.Fatalf("Verify on fuzzed image: %v", verr)
		}
		buf := make([]byte, fs.PageSize())
		for id := PageID(0); int64(id) < rep.Slots; id++ {
			if rerr := fs.Read(id, buf); rerr != nil &&
				!errors.Is(rerr, ErrBadPage) && !errors.Is(rerr, ErrCorrupt) {
				t.Fatalf("page %d read on fuzzed image: %v", id, rerr)
			}
		}
		// The store must also keep working as a pager without touching
		// pages it cannot prove intact: an Alloc/Write/Read cycle on fresh
		// pages stays self-consistent.
		id, aerr := fs.Alloc()
		if aerr != nil {
			return
		}
		for j := range buf {
			buf[j] = 0x5A
		}
		if werr := fs.Write(id, buf); werr != nil {
			t.Fatalf("write to freshly allocated page: %v", werr)
		}
		got := make([]byte, fs.PageSize())
		if rerr := fs.Read(id, got); rerr != nil {
			t.Fatalf("read back freshly written page: %v", rerr)
		}
		if !bytes.Equal(got, buf) {
			t.Fatal("fresh page round trip mismatch on fuzzed image")
		}
	})
}
