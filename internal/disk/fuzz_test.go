package disk

import (
	"bytes"
	"testing"
)

// FuzzChainReadWrite round-trips arbitrary payloads through a chain
// append/scan cycle for several record and page sizes: every record comes
// back byte-identical and in order, the page count matches the ⌈k/B⌉
// arithmetic of the I/O model, and freeing the chain releases exactly its
// pages.
func FuzzChainReadWrite(f *testing.F) {
	f.Add([]byte{}, uint8(8), uint8(0))
	f.Add([]byte("hello world, this is a chain payload"), uint8(12), uint8(1))
	f.Add(bytes.Repeat([]byte{0xAB}, 300), uint8(24), uint8(2))
	f.Fuzz(func(t *testing.T, payload []byte, recSizeRaw, pageSel uint8) {
		pageSize := []int{64, 128, 512}[int(pageSel)%3]
		recSize := int(recSizeRaw)
		if recSize < 1 {
			recSize = 1
		}
		if c := ChainCap(pageSize, recSize); c < 1 {
			// Oversized records must be rejected, not mangled.
			s := MustStore(pageSize)
			if _, err := NewChainWriter(s, recSize); err == nil {
				t.Fatalf("NewChainWriter accepted rec=%d page=%d (cap 0)", recSize, pageSize)
			}
			return
		}
		payload = payload[:len(payload)-len(payload)%recSize]
		n := len(payload) / recSize

		s := MustStore(pageSize)
		w, err := NewChainWriter(s, recSize)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if err := w.Append(payload[i*recSize : (i+1)*recSize]); err != nil {
				t.Fatal(err)
			}
		}
		head, pages, count, err := w.Close()
		if err != nil {
			t.Fatal(err)
		}
		if count != n {
			t.Fatalf("count %d, want %d", count, n)
		}
		if want := ChainPages(pageSize, recSize, n); pages != want {
			t.Fatalf("pages %d, want %d", pages, want)
		}
		var got []byte
		reads, err := ScanChain(s, recSize, head, func(rec []byte) bool {
			got = append(got, rec...)
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if reads != pages {
			t.Fatalf("scan read %d pages, want %d", reads, pages)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("scan returned %d bytes != payload %d bytes", len(got), len(payload))
		}
		live := s.NumPages()
		if err := FreeChain(s, head); err != nil {
			t.Fatal(err)
		}
		if got := s.NumPages(); got != live-pages {
			t.Fatalf("FreeChain left %d pages, want %d", got, live-pages)
		}
	})
}

// FuzzChainThroughPool replays the same round trip through a sharded
// buffer pool, checking that write-back caching never changes chain
// contents and that Flush makes the store self-consistent.
func FuzzChainThroughPool(f *testing.F) {
	f.Add([]byte("pool payload pool payload"), uint8(8), uint8(3))
	f.Add(bytes.Repeat([]byte{7}, 200), uint8(16), uint8(17))
	f.Fuzz(func(t *testing.T, payload []byte, recSizeRaw, capRaw uint8) {
		const pageSize = 128
		recSize := int(recSizeRaw)
		if recSize < 1 {
			recSize = 1
		}
		if ChainCap(pageSize, recSize) < 1 {
			return
		}
		capacity := int(capRaw)%32 + 1
		payload = payload[:len(payload)-len(payload)%recSize]

		s := MustStore(pageSize)
		p, err := NewBufferPool(s, capacity)
		if err != nil {
			t.Fatal(err)
		}
		head, _, err := WriteChain(p, recSize, payload)
		if err != nil {
			t.Fatal(err)
		}
		// Read back through the pool (mixed hits and misses).
		var viaPool []byte
		if _, err := ScanChain(p, recSize, head, func(rec []byte) bool {
			viaPool = append(viaPool, rec...)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(viaPool, payload) {
			t.Fatal("pool scan differs from payload")
		}
		// After Flush the raw store must hold the same chain.
		if err := p.Flush(); err != nil {
			t.Fatal(err)
		}
		var viaStore []byte
		if _, err := ScanChain(s, recSize, head, func(rec []byte) bool {
			viaStore = append(viaStore, rec...)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(viaStore, payload) {
			t.Fatal("store scan after Flush differs from payload")
		}
	})
}
