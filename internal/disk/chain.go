package disk

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// A chain is a singly linked list of pages holding fixed-width records, the
// "blocked fashion" the paper stores cover-lists, caches, and X/Y/A/S lists
// in: B records per page, read sequentially, with early termination as soon
// as a record falls outside the query. Reading k records from a chain costs
// ⌈k/B⌉ I/Os.
//
// Page layout: [next PageID int64][count uint16][records...].
const chainHeader = 10

// ErrRecordSize reports a record size that does not fit the page.
var ErrRecordSize = errors.New("disk: record size does not fit page")

// ChainCap returns the number of records of size recSize that fit in one
// chain page of pageSize bytes — the "B" of the I/O model for that record
// type.
func ChainCap(pageSize, recSize int) int {
	return (pageSize - chainHeader) / recSize
}

// ChainWriter builds a chain by appending records. It buffers one page in
// memory and writes it when full, so building a chain of k records costs
// ⌈k/B⌉ write I/Os.
type ChainWriter struct {
	p       Pager
	recSize int
	cap     int
	head    PageID
	cur     PageID
	buf     []byte
	n       int // records in buf
	count   int // total records appended
	pages   int
	pageIDs []PageID
	closed  bool
}

// NewChainWriter prepares a writer for records of recSize bytes.
func NewChainWriter(p Pager, recSize int) (*ChainWriter, error) {
	c := ChainCap(p.PageSize(), recSize)
	if recSize <= 0 || c < 1 {
		return nil, fmt.Errorf("%w: rec=%d page=%d", ErrRecordSize, recSize, p.PageSize())
	}
	return &ChainWriter{
		p:       p,
		recSize: recSize,
		cap:     c,
		head:    InvalidPage,
		cur:     InvalidPage,
		buf:     make([]byte, p.PageSize()),
	}, nil
}

// Append adds one record to the chain.
func (w *ChainWriter) Append(rec []byte) error {
	if w.closed {
		return errors.New("disk: append to closed chain writer")
	}
	if len(rec) != w.recSize {
		return fmt.Errorf("%w: got %d want %d", ErrRecordSize, len(rec), w.recSize)
	}
	if w.n == w.cap || w.cur == InvalidPage {
		if err := w.rollPage(); err != nil {
			return err
		}
	}
	copy(w.buf[chainHeader+w.n*w.recSize:], rec)
	w.n++
	w.count++
	return nil
}

// rollPage flushes the current page (if any) and starts a new one linked
// after it.
func (w *ChainWriter) rollPage() error {
	next, err := w.p.Alloc()
	if err != nil {
		return err
	}
	if w.cur == InvalidPage {
		w.head = next
	} else {
		w.setHeader(next)
		if err := w.p.Write(w.cur, w.buf); err != nil {
			return err
		}
	}
	for i := range w.buf {
		w.buf[i] = 0
	}
	w.cur = next
	w.n = 0
	w.pages++
	w.pageIDs = append(w.pageIDs, next)
	return nil
}

// Pages returns the ids of the chain's pages in order, valid after Close.
// Callers use it to build page directories for positioned scans.
func (w *ChainWriter) Pages() []PageID { return w.pageIDs }

func (w *ChainWriter) setHeader(next PageID) {
	binary.LittleEndian.PutUint64(w.buf[0:8], uint64(next))
	binary.LittleEndian.PutUint16(w.buf[8:10], uint16(w.n))
}

// Close flushes the final page and returns the chain head (InvalidPage for
// an empty chain), the number of pages, and the number of records.
func (w *ChainWriter) Close() (head PageID, pages, count int, err error) {
	if w.closed {
		return w.head, w.pages, w.count, nil
	}
	w.closed = true
	if w.cur != InvalidPage {
		w.setHeader(InvalidPage)
		if err := w.p.Write(w.cur, w.buf); err != nil {
			return InvalidPage, 0, 0, err
		}
	}
	return w.head, w.pages, w.count, nil
}

// ScanChain reads a chain page by page, invoking fn for each record. fn
// returns false to stop the scan early (the standard "scan until out of
// range" pattern). The per-record slice aliases an internal buffer and must
// not be retained. ScanChain returns the number of page reads performed.
func ScanChain(p Pager, recSize int, head PageID, fn func(rec []byte) bool) (pageReads int, err error) {
	if head == InvalidPage {
		return 0, nil
	}
	c := ChainCap(p.PageSize(), recSize)
	if recSize <= 0 || c < 1 {
		return 0, fmt.Errorf("%w: rec=%d page=%d", ErrRecordSize, recSize, p.PageSize())
	}
	buf := make([]byte, p.PageSize())
	for id := head; id != InvalidPage; {
		if err := p.Read(id, buf); err != nil {
			return pageReads, err
		}
		pageReads++
		next := PageID(binary.LittleEndian.Uint64(buf[0:8]))
		n := int(binary.LittleEndian.Uint16(buf[8:10]))
		if n > c {
			return pageReads, fmt.Errorf("disk: corrupt chain page %d: count %d > cap %d: %w", id, n, c, ErrCorrupt)
		}
		for i := 0; i < n; i++ {
			if !fn(buf[chainHeader+i*recSize : chainHeader+(i+1)*recSize]) {
				return pageReads, nil
			}
		}
		id = next
	}
	return pageReads, nil
}

// FreeChain releases every page of a chain.
func FreeChain(p Pager, head PageID) error {
	buf := make([]byte, p.PageSize())
	for id := head; id != InvalidPage; {
		if err := p.Read(id, buf); err != nil {
			return err
		}
		next := PageID(binary.LittleEndian.Uint64(buf[0:8]))
		if err := p.Free(id); err != nil {
			return err
		}
		id = next
	}
	return nil
}

// ChainPages returns the number of pages a chain of count records of recSize
// occupies — used by space accounting in tests.
func ChainPages(pageSize, recSize, count int) int {
	if count == 0 {
		return 0
	}
	c := ChainCap(pageSize, recSize)
	return (count + c - 1) / c
}

// WriteChain is a convenience that writes all records (flattened into recs,
// len(recs) a multiple of recSize) as a chain and returns its head.
func WriteChain(p Pager, recSize int, recs []byte) (PageID, int, error) {
	w, err := NewChainWriter(p, recSize)
	if err != nil {
		return InvalidPage, 0, err
	}
	for off := 0; off < len(recs); off += recSize {
		if err := w.Append(recs[off : off+recSize]); err != nil {
			return InvalidPage, 0, err
		}
	}
	head, pages, _, err := w.Close()
	return head, pages, err
}
