package disk

import (
	"sync"
	"testing"
)

// A counted view over the raw store must count exactly what the store
// counts: one successful call, one increment, and failed calls nothing.
func TestCounterOverStore(t *testing.T) {
	s := MustStore(128)
	var c Counter
	p := WithCounter(s, &c)

	id, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 128)
	if err := p.Write(id, buf); err != nil {
		t.Fatal(err)
	}
	if err := p.Read(id, buf); err != nil {
		t.Fatal(err)
	}
	if err := p.Read(InvalidPage, buf); err == nil {
		t.Fatal("read of invalid page succeeded")
	}
	if err := p.Free(id); err != nil {
		t.Fatal(err)
	}
	got, want := c.Stats(), (Stats{Reads: 1, Writes: 1, Allocs: 1, Frees: 1})
	if got != want {
		t.Fatalf("counter = %v, want %v", got, want)
	}
	if ss := s.Stats(); ss != want {
		t.Fatalf("store = %v, want %v (counter and store must agree)", ss, want)
	}
	c.Reset()
	if got := c.Stats(); got != (Stats{}) {
		t.Fatalf("after Reset: %v", got)
	}
}

// Concurrent operations, each through its own counted view of one shared
// store, must attribute every transfer to exactly one counter: the sum of
// the per-op counters equals the store-level diff.
func TestCounterConcurrentExact(t *testing.T) {
	s := MustStore(128)
	const pages = 64
	ids := make([]PageID, pages)
	buf := make([]byte, 128)
	for i := range ids {
		id, err := s.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
		if err := s.Write(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	before := s.Stats()

	const workers = 8
	counters := make([]Counter, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := WithCounter(s, &counters[w])
			b := make([]byte, 128)
			for i := 0; i < 200; i++ {
				if err := p.Read(ids[(w*31+i)%pages], b); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	var sum Stats
	for w := range counters {
		cs := counters[w].Stats()
		if cs.Reads != 200 {
			t.Fatalf("worker %d reads = %d, want 200", w, cs.Reads)
		}
		sum.Reads += cs.Reads
		sum.Writes += cs.Writes
	}
	d := s.Stats().Sub(before)
	if sum.Reads != d.Reads || sum.Writes != d.Writes {
		t.Fatalf("op counters sum to %+v, store diff %+v", sum, d)
	}
}

// Through a buffer pool, an operation is charged only for the store
// transfers it causes: miss fills and the eviction write-backs they force.
// Hits are free.
func TestCounterThroughPoolHitsFree(t *testing.T) {
	s := MustStore(128)
	pool, err := NewBufferPool(s, 8)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 128)
	id, err := pool.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Write(id, buf); err != nil {
		t.Fatal(err)
	}

	var c Counter
	p := WithCounter(pool, &c)
	if _, ok := p.(*poolOpView); !ok {
		t.Fatalf("WithCounter over a pool returned %T, want the pool's own op view", p)
	}
	if err := p.Read(id, buf); err != nil { // cold: one store read
		t.Fatal(err)
	}
	if err := p.Read(id, buf); err != nil { // hit: free
		t.Fatal(err)
	}
	if got := c.Stats(); got.Reads != 1 || got.Writes != 0 {
		t.Fatalf("pool op counter = %v, want exactly 1 read", got)
	}
}

// Under a pool small enough to evict, concurrent counted operations still
// attribute every store transfer to exactly one counter: the per-op sums
// equal the store-level diff even while write-backs interleave with misses.
func TestCounterThroughPoolConcurrentExact(t *testing.T) {
	s := MustStore(128)
	pool, err := NewBufferPoolShards(s, 8, 2) // tiny: constant eviction
	if err != nil {
		t.Fatal(err)
	}
	const pages = 64
	ids := make([]PageID, pages)
	buf := make([]byte, 128)
	for i := range ids {
		id, err := pool.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
		if err := pool.Write(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := pool.Flush(); err != nil {
		t.Fatal(err)
	}
	before := s.Stats()

	const workers = 6
	counters := make([]Counter, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := WithCounter(pool, &counters[w])
			b := make([]byte, 128)
			for i := 0; i < 300; i++ {
				id := ids[(w*17+i*7)%pages]
				if i%5 == 4 {
					if err := p.Write(id, b); err != nil {
						t.Error(err)
						return
					}
					continue
				}
				if err := p.Read(id, b); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := pool.Flush(); err != nil { // write-backs outside any op: not attributed
		t.Fatal(err)
	}

	var sum Stats
	for w := range counters {
		cs := counters[w].Stats()
		if cs.Reads < 0 || cs.Writes < 0 {
			t.Fatalf("worker %d negative counts: %v", w, cs)
		}
		sum.Reads += cs.Reads
		sum.Writes += cs.Writes
	}
	d := s.Stats().Sub(before)
	if sum.Reads != d.Reads {
		t.Fatalf("op reads sum %d != store read diff %d", sum.Reads, d.Reads)
	}
	// Flush wrote back the frames still dirty at the end; those writes are
	// in the store diff but attributed to no operation.
	if sum.Writes > d.Writes {
		t.Fatalf("op writes sum %d exceeds store write diff %d", sum.Writes, d.Writes)
	}
}
