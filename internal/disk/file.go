package disk

import (
	"fmt"
	"io"
	"os"
	"sync"
)

// File is the byte-addressed backing device a FileStore writes through. It is
// the seam the crash-consistency tests inject faults at: a real *os.File (via
// OSFile), an in-memory image (MemFile), or a CrashFile that kills the device
// at an arbitrary write. Keeping the seam below the FileStore means torn
// writes corrupt raw bytes — exactly what the page checksums and the
// double-buffered superblock must catch.
type File interface {
	io.ReaderAt
	io.WriterAt
	// Size reports the current length of the backing device in bytes.
	Size() (int64, error)
	// Sync flushes buffered writes to stable storage.
	Sync() error
	// Close releases the device. Further operations fail.
	Close() error
}

// OSFile adapts an *os.File to the File interface.
type OSFile struct {
	*os.File
}

// Size implements File.
func (f OSFile) Size() (int64, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, fmt.Errorf("disk: stat backing file: %w", err)
	}
	return st.Size(), nil
}

// MemFile is an in-memory File: a growable byte image with os.File ReadAt /
// WriteAt semantics. The crash-simulation harness builds stores on a MemFile
// so that sweeping hundreds of kill points stays fast, then snapshots the
// bytes that "reached the platter" with Bytes.
//
// MemFile is safe for concurrent use.
type MemFile struct {
	mu   sync.Mutex
	data []byte
}

// NewMemFile returns an empty in-memory file.
func NewMemFile() *MemFile { return &MemFile{} }

// NewMemFileFrom returns an in-memory file holding a copy of data — e.g. a
// post-crash snapshot, or a fuzzed image.
func NewMemFileFrom(data []byte) *MemFile {
	return &MemFile{data: append([]byte(nil), data...)}
}

// ReadAt implements io.ReaderAt with os.File semantics: a read past the end
// returns the available bytes and io.EOF.
func (m *MemFile) ReadAt(p []byte, off int64) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if off < 0 {
		return 0, fmt.Errorf("disk: negative offset %d", off)
	}
	if off >= int64(len(m.data)) {
		return 0, io.EOF
	}
	n := copy(p, m.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// WriteAt implements io.WriterAt, growing the image as needed (the gap, if
// any, reads as zeros, matching a sparse file).
func (m *MemFile) WriteAt(p []byte, off int64) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if off < 0 {
		return 0, fmt.Errorf("disk: negative offset %d", off)
	}
	if end := off + int64(len(p)); end > int64(len(m.data)) {
		grown := make([]byte, end)
		copy(grown, m.data)
		m.data = grown
	}
	copy(m.data[off:], p)
	return len(p), nil
}

// Size implements File.
func (m *MemFile) Size() (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return int64(len(m.data)), nil
}

// Sync implements File (memory is always "stable").
func (m *MemFile) Sync() error { return nil }

// Close implements File. The image stays readable through Bytes so a crashed
// store can still be snapshotted.
func (m *MemFile) Close() error { return nil }

// Bytes returns a copy of the current image.
func (m *MemFile) Bytes() []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]byte(nil), m.data...)
}
