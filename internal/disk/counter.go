package disk

import "sync/atomic"

// Counter accumulates the page transfers of one logical operation — a
// single query, one batch worker's share of a batch, or any other unit the
// caller wants attributed exactly. It is the op-scoped counterpart of the
// store-global Stats counters: wrap the pager an operation uses with
// WithCounter and every transfer that operation causes lands here, exact
// under arbitrary concurrency, while the store's own aggregate counters keep
// counting as before.
//
// A Counter is safe for concurrent use; the zero value is ready.
type Counter struct {
	reads  atomic.Int64
	writes atomic.Int64
	allocs atomic.Int64
	frees  atomic.Int64
	hits   atomic.Int64
}

// Stats returns a snapshot of the counters.
func (c *Counter) Stats() Stats {
	return Stats{
		Reads:  c.reads.Load(),
		Writes: c.writes.Load(),
		Allocs: c.allocs.Load(),
		Frees:  c.frees.Load(),
	}
}

// Hits returns the number of page accesses this operation satisfied from a
// buffer pool without touching the store. Hits are free in the Stats sense
// — they are not transfers — but the observability layer histograms them
// to show how much I/O the pool absorbed per operation. A counter wrapped
// over a pool-less pager never accrues hits.
func (c *Counter) Hits() int64 { return c.hits.Load() }

// Reset zeroes the counters.
func (c *Counter) Reset() {
	c.reads.Store(0)
	c.writes.Store(0)
	c.allocs.Store(0)
	c.frees.Store(0)
	c.hits.Store(0)
}

// The add helpers are nil-tolerant so shared code paths (the buffer pool's
// counted and uncounted entry points) can thread an optional counter without
// branching at every increment site.

func (c *Counter) addRead() {
	if c != nil {
		c.reads.Add(1)
	}
}

func (c *Counter) addWrite() {
	if c != nil {
		c.writes.Add(1)
	}
}

func (c *Counter) addAlloc() {
	if c != nil {
		c.allocs.Add(1)
	}
}

func (c *Counter) addFree() {
	if c != nil {
		c.frees.Add(1)
	}
}

func (c *Counter) addHit() {
	if c != nil {
		c.hits.Add(1)
	}
}

// counterPager is implemented by pagers that can attribute their underlying
// store transfers to a per-operation Counter more precisely than an outer
// wrapper could. The BufferPool implements it so that pool hits cost an
// operation nothing and only real store transfers (miss fills, eviction
// write-backs) are attributed.
type counterPager interface {
	WithCounter(*Counter) Pager
}

// WithCounter returns a view of p that attributes every page transfer it
// performs to c in addition to p's own accounting. Hand each concurrent
// operation its own counted view over the shared pager and the per-operation
// counts are exact: their sum equals the store-level Stats difference over
// the same window, because every transfer is counted by exactly one view.
//
// When p knows how to attribute more precisely (the BufferPool counts only
// actual store transfers, not cache hits), its own op view is returned;
// otherwise a transparent decorator counts each successful call. Wrap the
// Pager the structure was built with — wrapping the raw store underneath a
// pool would count transfers the pool absorbs.
func WithCounter(p Pager, c *Counter) Pager {
	if v, ok := p.(counterPager); ok {
		return v.WithCounter(c)
	}
	return &countedPager{p: p, c: c}
}

// countedPager is the transparent decorator: one successful Read/Write is
// one counted transfer, mirroring how the Store and FileStore count
// themselves, so the op counters stay in lockstep with the store aggregate.
type countedPager struct {
	p Pager
	c *Counter
}

func (cp *countedPager) PageSize() int { return cp.p.PageSize() }

func (cp *countedPager) Alloc() (PageID, error) {
	id, err := cp.p.Alloc()
	if err == nil {
		cp.c.addAlloc()
	}
	return id, err
}

func (cp *countedPager) Free(id PageID) error {
	if err := cp.p.Free(id); err != nil {
		return err
	}
	cp.c.addFree()
	return nil
}

func (cp *countedPager) Read(id PageID, buf []byte) error {
	if err := cp.p.Read(id, buf); err != nil {
		return err
	}
	cp.c.addRead()
	return nil
}

func (cp *countedPager) Write(id PageID, buf []byte) error {
	if err := cp.p.Write(id, buf); err != nil {
		return err
	}
	cp.c.addWrite()
	return nil
}
