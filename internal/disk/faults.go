package disk

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
)

// ErrInjected is returned by a FaultPager when one of its failure modes
// fires.
var ErrInjected = errors.New("disk: injected fault")

// FaultMode selects how a FaultPager decides which operations fail.
type FaultMode int

const (
	// FailAfterBudget fails every operation once a fixed number of
	// successful ones have been spent (the classic "disk dies and stays
	// dead" model).
	FailAfterBudget FaultMode = iota
	// FailEveryNth fails exactly every Nth operation (operations N-1, 2N-1,
	// ... zero-indexed), deterministically — a periodically flaky device.
	FailEveryNth
	// FailProb fails each operation independently with probability P, drawn
	// from a seeded generator, so a run is random-looking but exactly
	// reproducible from its seed.
	FailProb
)

func (m FaultMode) String() string {
	switch m {
	case FailAfterBudget:
		return "after-budget"
	case FailEveryNth:
		return "every-nth"
	case FailProb:
		return "probabilistic"
	default:
		return "unknown"
	}
}

// FaultPager wraps a Pager and injects ErrInjected failures according to its
// mode. Tests use it to verify that the structures propagate I/O errors
// instead of panicking or corrupting in-memory state. All modes are
// deterministic: the same construction and the same operation sequence yield
// the same failures.
type FaultPager struct {
	Inner Pager
	mode  FaultMode

	// FailAfterBudget state: decremented on every operation; when it goes
	// negative the operation fails.
	budget atomic.Int64

	// FailEveryNth state.
	n   int64
	ops atomic.Int64

	// FailProb state: the seeded generator needs a lock, which also keeps
	// the draw order deterministic under the structures' sequential use.
	p   float64
	rmu sync.Mutex
	rng *rand.Rand
}

// NewFaultPager allows `budget` operations before failing every subsequent
// one.
func NewFaultPager(inner Pager, budget int64) *FaultPager {
	fp := &FaultPager{Inner: inner, mode: FailAfterBudget}
	fp.budget.Store(budget)
	return fp
}

// NewEveryNthFaultPager fails every nth operation (the (n-1)th, (2n-1)th, ...
// zero-indexed), deterministically. n must be at least 1; n == 1 fails every
// operation.
func NewEveryNthFaultPager(inner Pager, n int64) *FaultPager {
	if n < 1 {
		n = 1
	}
	return &FaultPager{Inner: inner, mode: FailEveryNth, n: n}
}

// NewProbFaultPager fails each operation independently with probability p,
// using a generator seeded with seed: two pagers built with the same seed
// fail the exact same operations.
func NewProbFaultPager(inner Pager, p float64, seed int64) *FaultPager {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return &FaultPager{Inner: inner, mode: FailProb, p: p, rng: rand.New(rand.NewSource(seed))}
}

// Mode reports the pager's failure mode.
func (f *FaultPager) Mode() FaultMode { return f.mode }

// SetBudget resets the remaining operation budget — e.g. unlimited during a
// build, then small to fail the next query. Only meaningful in
// FailAfterBudget mode.
func (f *FaultPager) SetBudget(n int64) { f.budget.Store(n) }

// Remaining reports the remaining budget (negative once exhausted). Only
// meaningful in FailAfterBudget mode.
func (f *FaultPager) Remaining() int64 { return f.budget.Load() }

// Ops reports how many operations the pager has seen (attempted, whether
// they failed or not).
func (f *FaultPager) Ops() int64 {
	if f.mode == FailAfterBudget {
		return 0 // the budget counter is the only state this mode keeps
	}
	return f.ops.Load()
}

func (f *FaultPager) take() error {
	switch f.mode {
	case FailEveryNth:
		if f.ops.Add(1)%f.n == 0 {
			return ErrInjected
		}
		return nil
	case FailProb:
		f.ops.Add(1)
		f.rmu.Lock()
		v := f.rng.Float64()
		f.rmu.Unlock()
		if v < f.p {
			return ErrInjected
		}
		return nil
	default:
		if f.budget.Add(-1) < 0 {
			return ErrInjected
		}
		return nil
	}
}

// PageSize implements Pager.
func (f *FaultPager) PageSize() int { return f.Inner.PageSize() }

// Alloc implements Pager.
func (f *FaultPager) Alloc() (PageID, error) {
	if err := f.take(); err != nil {
		return InvalidPage, err
	}
	return f.Inner.Alloc()
}

// Free implements Pager.
func (f *FaultPager) Free(id PageID) error {
	if err := f.take(); err != nil {
		return err
	}
	return f.Inner.Free(id)
}

// Read implements Pager.
func (f *FaultPager) Read(id PageID, buf []byte) error {
	if err := f.take(); err != nil {
		return err
	}
	return f.Inner.Read(id, buf)
}

// Write implements Pager.
func (f *FaultPager) Write(id PageID, buf []byte) error {
	if err := f.take(); err != nil {
		return err
	}
	return f.Inner.Write(id, buf)
}
