package disk

import (
	"errors"
	"sync/atomic"
)

// ErrInjected is returned by a FaultPager once its budget is exhausted.
var ErrInjected = errors.New("disk: injected fault")

// FaultPager wraps a Pager and fails every operation after a fixed number
// of successful ones. Tests use it to verify that the structures propagate
// I/O errors instead of panicking or corrupting in-memory state.
type FaultPager struct {
	Inner Pager
	// Budget is decremented on every operation; when it goes negative the
	// operation fails with ErrInjected.
	budget atomic.Int64
}

// NewFaultPager allows `budget` operations before failing.
func NewFaultPager(inner Pager, budget int64) *FaultPager {
	fp := &FaultPager{Inner: inner}
	fp.budget.Store(budget)
	return fp
}

// SetBudget resets the remaining operation budget — e.g. unlimited during a
// build, then small to fail the next query.
func (f *FaultPager) SetBudget(n int64) { f.budget.Store(n) }

// Remaining reports the remaining budget (negative once exhausted).
func (f *FaultPager) Remaining() int64 { return f.budget.Load() }

func (f *FaultPager) take() error {
	if f.budget.Add(-1) < 0 {
		return ErrInjected
	}
	return nil
}

// PageSize implements Pager.
func (f *FaultPager) PageSize() int { return f.Inner.PageSize() }

// Alloc implements Pager.
func (f *FaultPager) Alloc() (PageID, error) {
	if err := f.take(); err != nil {
		return InvalidPage, err
	}
	return f.Inner.Alloc()
}

// Free implements Pager.
func (f *FaultPager) Free(id PageID) error {
	if err := f.take(); err != nil {
		return err
	}
	return f.Inner.Free(id)
}

// Read implements Pager.
func (f *FaultPager) Read(id PageID, buf []byte) error {
	if err := f.take(); err != nil {
		return err
	}
	return f.Inner.Read(id, buf)
}

// Write implements Pager.
func (f *FaultPager) Write(id PageID, buf []byte) error {
	if err := f.take(); err != nil {
		return err
	}
	return f.Inner.Write(id, buf)
}
