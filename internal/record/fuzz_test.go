package record

import (
	"bytes"
	"testing"
)

// FuzzRecordRoundTrip checks that Point and Interval encoding is a lossless
// bijection on the struct side and stable on the byte side: any (x, y, id)
// triple round-trips through Encode/Decode unchanged, and any 24-byte
// buffer decodes to a record that re-encodes to the same bytes.
func FuzzRecordRoundTrip(f *testing.F) {
	f.Add(int64(0), int64(0), uint64(0))
	f.Add(int64(-1), int64(1), uint64(42))
	f.Add(int64(-1<<63), int64(1<<63-1), uint64(1)<<63)
	f.Add(int64(123456789), int64(-987654321), ^uint64(0))
	f.Fuzz(func(t *testing.T, a, b int64, id uint64) {
		p := Point{X: a, Y: b, ID: id}
		var pbuf [PointSize]byte
		p.Encode(pbuf[:])
		if got := DecodePoint(pbuf[:]); got != p {
			t.Fatalf("point round trip: got %v, want %v", got, p)
		}
		// Byte-side stability: decode(encode(decode(bytes))) is identity.
		var pbuf2 [PointSize]byte
		DecodePoint(pbuf[:]).Encode(pbuf2[:])
		if !bytes.Equal(pbuf[:], pbuf2[:]) {
			t.Fatalf("point bytes not stable: % x vs % x", pbuf, pbuf2)
		}

		iv := Interval{Lo: a, Hi: b, ID: id}
		var ibuf [IntervalSize]byte
		iv.Encode(ibuf[:])
		if got := DecodeInterval(ibuf[:]); got != iv {
			t.Fatalf("interval round trip: got %v, want %v", got, iv)
		}
		// The diagonal-corner reduction must invert exactly for any bits.
		if got := FromPoint(iv.ToPoint()); got != iv {
			t.Fatalf("ToPoint/FromPoint: got %v, want %v", got, iv)
		}

		// Less must be a strict total order generator: irreflexive and
		// asymmetric on any pair derived from the inputs.
		q := Point{X: b, Y: a, ID: id}
		if p.Less(p) {
			t.Fatal("Less is reflexive")
		}
		if p != q && p.Less(q) == q.Less(p) {
			t.Fatalf("Less not asymmetric for %v, %v", p, q)
		}
	})
}

// FuzzEncodePointsFlatten checks the bulk encoder against the scalar one.
func FuzzEncodePointsFlatten(f *testing.F) {
	f.Add(int64(1), int64(2), uint64(3), int64(4), int64(5), uint64(6))
	f.Fuzz(func(t *testing.T, x1, y1 int64, id1 uint64, x2, y2 int64, id2 uint64) {
		pts := []Point{{x1, y1, id1}, {x2, y2, id2}}
		flat := EncodePoints(pts)
		if len(flat) != 2*PointSize {
			t.Fatalf("flat length %d", len(flat))
		}
		for i, p := range pts {
			if got := DecodePoint(flat[i*PointSize:]); got != p {
				t.Fatalf("slot %d: got %v, want %v", i, got, p)
			}
		}
	})
}
