package record

import (
	"encoding/binary"
	"fmt"
)

// Zero-copy record views: bounds-checked byte-slice accessors over encoded
// records, used by the hot scan paths instead of decode-into-struct. A view
// aliases the page or chain buffer it was carved from, so it is subject to
// the same lifetime rule as every ScanChain callback slice: read it inside
// the callback (or copy what you keep). Field accessors re-slice to the
// exact record width, so a truncated view panics at the accessor — never a
// silent misread of a neighbouring record.

// PointView is an encoded Point viewed in place. It must be at least
// PointSize bytes; PointViewAt constructs checked views.
type PointView []byte

// PointViewAt returns a view of the i-th record in a flattened point buffer.
// The bounds of the whole record are validated up front.
func PointViewAt(buf []byte, i int) PointView {
	if i < 0 || (i+1)*PointSize > len(buf) {
		panic(fmt.Sprintf("record: point %d out of range of %d-byte buffer", i, len(buf)))
	}
	return PointView(buf[i*PointSize : (i+1)*PointSize])
}

// X returns the point's x-coordinate without decoding the rest.
func (v PointView) X() int64 { return int64(binary.LittleEndian.Uint64(v[0:8])) }

// Y returns the point's y-coordinate without decoding the rest.
func (v PointView) Y() int64 { return int64(binary.LittleEndian.Uint64(v[8:16])) }

// ID returns the point's tuple identifier.
func (v PointView) ID() uint64 { return binary.LittleEndian.Uint64(v[16:24]) }

// Point materializes the view into an owned struct — the one copy a scan
// pays, and only for records that matched.
func (v PointView) Point() Point { return Point{X: v.X(), Y: v.Y(), ID: v.ID()} }

// IntervalView is an encoded Interval viewed in place.
type IntervalView []byte

// IntervalViewAt returns a view of the i-th record in a flattened interval
// buffer, validating the whole record's bounds up front.
func IntervalViewAt(buf []byte, i int) IntervalView {
	if i < 0 || (i+1)*IntervalSize > len(buf) {
		panic(fmt.Sprintf("record: interval %d out of range of %d-byte buffer", i, len(buf)))
	}
	return IntervalView(buf[i*IntervalSize : (i+1)*IntervalSize])
}

// Lo returns the interval's left endpoint without decoding the rest.
func (v IntervalView) Lo() int64 { return int64(binary.LittleEndian.Uint64(v[0:8])) }

// Hi returns the interval's right endpoint without decoding the rest.
func (v IntervalView) Hi() int64 { return int64(binary.LittleEndian.Uint64(v[8:16])) }

// ID returns the interval's tuple identifier.
func (v IntervalView) ID() uint64 { return binary.LittleEndian.Uint64(v[16:24]) }

// Contains reports whether q stabs the viewed interval.
func (v IntervalView) Contains(q int64) bool { return v.Lo() <= q && q <= v.Hi() }

// Interval materializes the view into an owned struct.
func (v IntervalView) Interval() Interval { return Interval{Lo: v.Lo(), Hi: v.Hi(), ID: v.ID()} }
