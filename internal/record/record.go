// Package record defines the fixed-width binary encodings shared by every
// external structure in this repository: planar points and 1-dimensional
// intervals, each carrying an opaque 64-bit tuple identifier.
//
// Records are fixed width so that the page capacity B — the central parameter
// of the paper's I/O model — is a simple function of the page size:
// B = ChainCap(pageSize, record size). Coordinates are encoded
// order-preservingly so records can be compared in serialized form.
package record

import (
	"encoding/binary"
	"fmt"
)

// PointSize is the encoded size of a Point in bytes.
const PointSize = 24

// IntervalSize is the encoded size of an Interval in bytes.
const IntervalSize = 24

// Point is a point in the plane with an attached tuple identifier. X and Y
// are the two attributes being indexed (for interval management, X=lo and
// Y=hi after the diagonal-corner reduction).
type Point struct {
	X, Y int64
	ID   uint64
}

// Encode writes p into buf, which must be at least PointSize bytes.
func (p Point) Encode(buf []byte) {
	binary.LittleEndian.PutUint64(buf[0:8], uint64(p.X))
	binary.LittleEndian.PutUint64(buf[8:16], uint64(p.Y))
	binary.LittleEndian.PutUint64(buf[16:24], p.ID)
}

// DecodePoint reads a Point from buf.
func DecodePoint(buf []byte) Point {
	return Point{
		X:  int64(binary.LittleEndian.Uint64(buf[0:8])),
		Y:  int64(binary.LittleEndian.Uint64(buf[8:16])),
		ID: binary.LittleEndian.Uint64(buf[16:24]),
	}
}

// EncodePoints flattens pts into a new byte slice, PointSize bytes each.
func EncodePoints(pts []Point) []byte {
	out := make([]byte, len(pts)*PointSize)
	for i, p := range pts {
		p.Encode(out[i*PointSize:])
	}
	return out
}

func (p Point) String() string { return fmt.Sprintf("(%d,%d)#%d", p.X, p.Y, p.ID) }

// Less orders points by (X, Y, ID); a strict total order used for
// deterministic builds.
func (p Point) Less(q Point) bool {
	if p.X != q.X {
		return p.X < q.X
	}
	if p.Y != q.Y {
		return p.Y < q.Y
	}
	return p.ID < q.ID
}

// Interval is a closed 1-dimensional interval [Lo, Hi] with an attached
// tuple identifier.
type Interval struct {
	Lo, Hi int64
	ID     uint64
}

// Valid reports whether the interval is non-empty (Lo <= Hi).
func (iv Interval) Valid() bool { return iv.Lo <= iv.Hi }

// Contains reports whether q stabs the interval.
func (iv Interval) Contains(q int64) bool { return iv.Lo <= q && q <= iv.Hi }

// Encode writes iv into buf, which must be at least IntervalSize bytes.
func (iv Interval) Encode(buf []byte) {
	binary.LittleEndian.PutUint64(buf[0:8], uint64(iv.Lo))
	binary.LittleEndian.PutUint64(buf[8:16], uint64(iv.Hi))
	binary.LittleEndian.PutUint64(buf[16:24], iv.ID)
}

// DecodeInterval reads an Interval from buf.
func DecodeInterval(buf []byte) Interval {
	return Interval{
		Lo: int64(binary.LittleEndian.Uint64(buf[0:8])),
		Hi: int64(binary.LittleEndian.Uint64(buf[8:16])),
		ID: binary.LittleEndian.Uint64(buf[16:24]),
	}
}

// EncodeIntervals flattens ivs into a new byte slice, IntervalSize bytes each.
func EncodeIntervals(ivs []Interval) []byte {
	out := make([]byte, len(ivs)*IntervalSize)
	for i, iv := range ivs {
		iv.Encode(out[i*IntervalSize:])
	}
	return out
}

func (iv Interval) String() string { return fmt.Sprintf("[%d,%d]#%d", iv.Lo, iv.Hi, iv.ID) }

// ToPoint applies the diagonal-corner reduction of [KRV] used throughout the
// paper: interval [lo,hi] becomes the point (lo, hi) above the x=y diagonal.
// A stabbing query at q then becomes the 2-sided query {x <= q, y >= q}.
func (iv Interval) ToPoint() Point { return Point{X: iv.Lo, Y: iv.Hi, ID: iv.ID} }

// FromPoint inverts ToPoint.
func FromPoint(p Point) Interval { return Interval{Lo: p.X, Hi: p.Y, ID: p.ID} }
