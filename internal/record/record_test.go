package record

import (
	"testing"
	"testing/quick"
)

func TestPointRoundTrip(t *testing.T) {
	cases := []Point{
		{},
		{X: 1, Y: 2, ID: 3},
		{X: -5, Y: -9, ID: 0},
		{X: 1<<62 - 1, Y: -(1 << 62), ID: ^uint64(0)},
	}
	buf := make([]byte, PointSize)
	for _, p := range cases {
		p.Encode(buf)
		if got := DecodePoint(buf); got != p {
			t.Errorf("round trip %v -> %v", p, got)
		}
	}
}

func TestPointRoundTripProperty(t *testing.T) {
	f := func(x, y int64, id uint64) bool {
		p := Point{X: x, Y: y, ID: id}
		buf := make([]byte, PointSize)
		p.Encode(buf)
		return DecodePoint(buf) == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntervalRoundTripProperty(t *testing.T) {
	f := func(lo, hi int64, id uint64) bool {
		iv := Interval{Lo: lo, Hi: hi, ID: id}
		buf := make([]byte, IntervalSize)
		iv.Encode(buf)
		return DecodeInterval(buf) == iv
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodePoints(t *testing.T) {
	pts := []Point{{X: 1, Y: 2, ID: 3}, {X: -4, Y: 5, ID: 6}}
	raw := EncodePoints(pts)
	if len(raw) != 2*PointSize {
		t.Fatalf("len = %d", len(raw))
	}
	for i, want := range pts {
		if got := DecodePoint(raw[i*PointSize:]); got != want {
			t.Errorf("point %d: got %v want %v", i, got, want)
		}
	}
}

func TestEncodeIntervals(t *testing.T) {
	ivs := []Interval{{Lo: 1, Hi: 9, ID: 3}, {Lo: -4, Hi: 5, ID: 6}}
	raw := EncodeIntervals(ivs)
	if len(raw) != 2*IntervalSize {
		t.Fatalf("len = %d", len(raw))
	}
	for i, want := range ivs {
		if got := DecodeInterval(raw[i*IntervalSize:]); got != want {
			t.Errorf("interval %d: got %v want %v", i, got, want)
		}
	}
}

func TestIntervalContains(t *testing.T) {
	iv := Interval{Lo: 10, Hi: 20}
	for q, want := range map[int64]bool{9: false, 10: true, 15: true, 20: true, 21: false} {
		if got := iv.Contains(q); got != want {
			t.Errorf("Contains(%d) = %v, want %v", q, got, want)
		}
	}
	if !iv.Valid() || (Interval{Lo: 5, Hi: 4}).Valid() {
		t.Error("Valid misclassified")
	}
}

func TestPointLessTotalOrder(t *testing.T) {
	a := Point{X: 1, Y: 2, ID: 3}
	b := Point{X: 1, Y: 2, ID: 4}
	c := Point{X: 1, Y: 3, ID: 0}
	d := Point{X: 2, Y: 0, ID: 0}
	ordered := []Point{a, b, c, d}
	for i := range ordered {
		for j := range ordered {
			want := i < j
			if got := ordered[i].Less(ordered[j]); got != want {
				t.Errorf("Less(%v,%v) = %v, want %v", ordered[i], ordered[j], got, want)
			}
		}
	}
}

// Property: the diagonal-corner reduction is exact — a point stabs the
// interval iff the reduced point satisfies the 2-sided query {x<=q, y>=q}.
func TestDiagonalCornerReductionProperty(t *testing.T) {
	f := func(lo, hi, q int64) bool {
		if lo > hi {
			lo, hi = hi, lo
		}
		iv := Interval{Lo: lo, Hi: hi, ID: 1}
		p := iv.ToPoint()
		stab := iv.Contains(q)
		twoSided := p.X <= q && p.Y >= q
		return stab == twoSided && FromPoint(p) == iv
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
