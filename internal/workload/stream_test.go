package workload

import (
	"sync"
	"testing"
)

// The streams exist because the batch generators (TwoSidedQueries etc.)
// hand out fixed slices from one rand.Rand — fine for static suites,
// wrong for concurrent closed-loop drivers. These tests pin the stream
// contract: per-worker determinism, pairwise decorrelation, cross-worker
// ID uniqueness, and safety under concurrent use (this file runs under
// -race via `make test`).

func TestSubSeedDecorrelates(t *testing.T) {
	seen := make(map[int64]int)
	for w := 0; w < 1000; w++ {
		s := SubSeed(7, w)
		if prev, dup := seen[s]; dup {
			t.Fatalf("SubSeed(7, %d) == SubSeed(7, %d) == %d", w, prev, s)
		}
		seen[s] = w
	}
	if SubSeed(1, 0) == SubSeed(2, 0) {
		t.Fatalf("adjacent base seeds map to the same substream")
	}
}

func TestStreamsDeterministicPerWorker(t *testing.T) {
	for _, mix := range []Mix{MixUniform, MixZipf} {
		a := NewTwoSidedStream(mix, 100_000, 0.05, 42, 3)
		b := NewTwoSidedStream(mix, 100_000, 0.05, 42, 3)
		other := NewTwoSidedStream(mix, 100_000, 0.05, 42, 4)
		same, diff := true, false
		for i := 0; i < 200; i++ {
			qa, qb, qo := a.Next(), b.Next(), other.Next()
			if qa != qb {
				same = false
			}
			if qa != qo {
				diff = true
			}
		}
		if !same {
			t.Fatalf("%v: same (seed, worker) diverged", mix)
		}
		if !diff {
			t.Fatalf("%v: workers 3 and 4 emitted identical streams", mix)
		}
	}

	sa, sb := NewStabStream(MixZipf, 100_000, 42, 1), NewStabStream(MixZipf, 100_000, 42, 1)
	for i := 0; i < 200; i++ {
		if sa.Next() != sb.Next() {
			t.Fatalf("stab stream: same (seed, worker) diverged")
		}
	}
}

func TestStreamQueriesInDomain(t *testing.T) {
	const max = 10_000
	for _, mix := range []Mix{MixUniform, MixZipf} {
		qs := NewTwoSidedStream(mix, max, 0.05, 9, 0)
		st := NewStabStream(mix, max, 9, 0)
		for i := 0; i < 500; i++ {
			q := qs.Next()
			if q.A < 0 || q.A >= max || q.B < 0 || q.B >= max {
				t.Fatalf("%v query %d out of domain: %+v", mix, i, q)
			}
			if s := st.Next(); s < 0 || s >= max {
				t.Fatalf("%v stab %d out of domain: %d", mix, i, s)
			}
		}
	}
}

func TestPointStreamIDsUniqueAcrossWorkers(t *testing.T) {
	const workers, perWorker = 8, 500
	seen := make(map[uint64]int)
	for w := 0; w < workers; w++ {
		s := NewPointStream(10_000, 42, w, workers)
		for i := 0; i < perWorker; i++ {
			x, y, id := s.Next()
			if x < 0 || x >= 10_000 || y < 0 || y >= 10_000 {
				t.Fatalf("worker %d point %d out of domain: (%d, %d)", w, i, x, y)
			}
			if prev, dup := seen[id]; dup {
				t.Fatalf("ID %d emitted by both worker %d and worker %d", id, prev, w)
			}
			seen[id] = w
		}
	}
}

// TestStreamsConcurrent drives one stream per goroutine — the intended
// concurrency model — under the race detector, and checks the results
// match a serial replay of the same substreams.
func TestStreamsConcurrent(t *testing.T) {
	const workers, perWorker = 8, 300
	got := make([][]TwoSidedQuery, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := NewTwoSidedStream(MixZipf, 100_000, 0.05, 42, w)
			qs := make([]TwoSidedQuery, perWorker)
			for i := range qs {
				qs[i] = s.Next()
			}
			got[w] = qs
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		s := NewTwoSidedStream(MixZipf, 100_000, 0.05, 42, w)
		for i := 0; i < perWorker; i++ {
			if q := s.Next(); q != got[w][i] {
				t.Fatalf("worker %d query %d: concurrent %+v != serial %+v", w, i, got[w][i], q)
			}
		}
	}
}
