package workload

import "math/rand"

// Per-worker query streams: the closed-loop drivers the server load tests
// run want each concurrent worker to generate queries on the fly, forever,
// without sharing a rand.Rand (rand.Rand is not safe for concurrent use,
// and sharing one also destroys reproducibility — interleaving would
// depend on scheduling). Every stream therefore owns a private generator
// seeded by SubSeed(seed, worker): worker substreams are deterministic in
// isolation, pairwise decorrelated, and safe to drive from as many
// goroutines as there are streams.

// SubSeed derives worker w's substream seed from a base seed via one
// splitmix64 round — cheap, stateless, and avalanching, so adjacent worker
// indexes land on decorrelated streams (seed+1 and seed+2 into rand's LFSR
// would not).
func SubSeed(seed int64, worker int) int64 {
	z := uint64(seed) + uint64(worker+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Mix selects how a stream places its query corners over the key domain.
type Mix int

const (
	// MixUniform spreads queries uniformly over the domain.
	MixUniform Mix = iota
	// MixZipf skews queries toward the low end of the domain with a
	// Zipf(s=1.2) distribution — the hot-key traffic shape.
	MixZipf
)

// String names the mix for report labels ("uniform", "zipf").
func (m Mix) String() string {
	if m == MixZipf {
		return "zipf"
	}
	return "uniform"
}

// zipfFor builds the stream's skew generator over [0,max).
func zipfFor(rng *rand.Rand, max int64) *rand.Zipf {
	if max < 2 {
		max = 2
	}
	return rand.NewZipf(rng, 1.2, 1, uint64(max-1))
}

// TwoSidedStream generates an endless sequence of 2-sided query corners
// for one worker. Not safe for concurrent use — give each worker its own
// stream via NewTwoSidedStream(…, worker).
type TwoSidedStream struct {
	rng  *rand.Rand
	zipf *rand.Zipf
	mix  Mix
	max  int64
	base int64
}

// NewTwoSidedStream returns worker w's substream of query corners over the
// [0,max)^2 domain. MixUniform places corners so selectivity on uniform
// data averages the given fraction (like TwoSidedQueries); MixZipf places
// corners Zipf-skewed toward the origin, so most queries are large and a
// few are tiny — the skewed traffic shape.
func NewTwoSidedStream(mix Mix, max int64, selectivity float64, seed int64, worker int) *TwoSidedStream {
	rng := rand.New(rand.NewSource(SubSeed(seed, worker)))
	s := &TwoSidedStream{rng: rng, mix: mix, max: max}
	if mix == MixZipf {
		s.zipf = zipfFor(rng, max)
	} else {
		s.base = int64(float64(max) * (1 - sqrt(selectivity)))
	}
	return s
}

// Next returns the stream's next query corner.
func (s *TwoSidedStream) Next() TwoSidedQuery {
	if s.mix == MixZipf {
		return TwoSidedQuery{
			A: clampTo(int64(s.zipf.Uint64()), s.max),
			B: clampTo(int64(s.zipf.Uint64()), s.max),
		}
	}
	jx := s.rng.Int63n(s.max/64 + 1)
	jy := s.rng.Int63n(s.max/64 + 1)
	return TwoSidedQuery{A: clampTo(s.base+jx, s.max), B: clampTo(s.base+jy, s.max)}
}

// StabStream generates an endless sequence of stabbing points for one
// worker. Not safe for concurrent use — one stream per worker.
type StabStream struct {
	rng  *rand.Rand
	zipf *rand.Zipf
	mix  Mix
	max  int64
}

// NewStabStream returns worker w's substream of stabbing points over
// [0,max): uniform, or Zipf-skewed toward 0.
func NewStabStream(mix Mix, max int64, seed int64, worker int) *StabStream {
	rng := rand.New(rand.NewSource(SubSeed(seed, worker)))
	s := &StabStream{rng: rng, mix: mix, max: max}
	if mix == MixZipf {
		s.zipf = zipfFor(rng, max)
	}
	return s
}

// Next returns the stream's next stabbing point.
func (s *StabStream) Next() int64 {
	if s.mix == MixZipf {
		return clampTo(int64(s.zipf.Uint64()), s.max)
	}
	return s.rng.Int63n(s.max)
}

// PointStream generates an endless sequence of unique points for one
// writer worker: worker w emits IDs w+1, w+1+W, w+1+2W, … so concurrent
// writers never collide on the (X, Y, ID) identity the write tier keys on.
// Not safe for concurrent use — one stream per worker.
type PointStream struct {
	rng     *rand.Rand
	max     int64
	next    uint64
	workers uint64
}

// NewPointStream returns writer w's substream over a pool of workers
// total writers.
func NewPointStream(max int64, seed int64, worker, workers int) *PointStream {
	if workers < 1 {
		workers = 1
	}
	return &PointStream{
		rng:     rand.New(rand.NewSource(SubSeed(seed, worker))),
		max:     max,
		next:    uint64(worker + 1),
		workers: uint64(workers),
	}
}

// Next returns the stream's next point; its ID is unique across all
// streams drawn from the same worker pool.
func (s *PointStream) Next() (x, y int64, id uint64) {
	x, y = s.rng.Int63n(s.max), s.rng.Int63n(s.max)
	id = s.next
	s.next += s.workers
	return x, y, id
}
