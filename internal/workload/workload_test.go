package workload

import (
	"testing"
)

func TestUniformPointsDeterministic(t *testing.T) {
	a := UniformPoints(100, 1000, 7)
	b := UniformPoints(100, 1000, 7)
	if len(a) != 100 {
		t.Fatalf("len = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
		if a[i].X < 0 || a[i].X >= 1000 || a[i].Y < 0 || a[i].Y >= 1000 {
			t.Fatalf("point %v out of domain", a[i])
		}
		if a[i].ID != uint64(i+1) {
			t.Fatalf("point %d has ID %d", i, a[i].ID)
		}
	}
	c := UniformPoints(100, 1000, 8)
	same := 0
	for i := range a {
		if a[i].X == c[i].X && a[i].Y == c[i].Y {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical data")
	}
}

func TestClusteredPointsInDomain(t *testing.T) {
	pts := ClusteredPoints(500, 5, 10_000, 300, 3)
	for _, p := range pts {
		if p.X < 0 || p.X >= 10_000 || p.Y < 0 || p.Y >= 10_000 {
			t.Fatalf("point %v out of domain", p)
		}
	}
}

func TestDiagonalPointsAboveDiagonal(t *testing.T) {
	pts := DiagonalPoints(500, 10_000, 100, 4)
	for _, p := range pts {
		if p.Y < p.X || p.Y >= p.X+100 {
			t.Fatalf("point %v not within diagonal band", p)
		}
	}
}

func TestZipfPointsSkew(t *testing.T) {
	pts := ZipfPoints(2000, 10_000, 1.5, 5)
	low := 0
	for _, p := range pts {
		if p.Y < 0 || p.Y >= 10_000 {
			t.Fatalf("point %v out of domain", p)
		}
		if p.Y < 100 {
			low++
		}
	}
	// Zipf mass concentrates near zero: well over half in the bottom 1%.
	if low < len(pts)/2 {
		t.Fatalf("only %d/%d points in bottom 1%%: not skewed", low, len(pts))
	}
}

func TestUniformIntervalsValid(t *testing.T) {
	ivs := UniformIntervals(300, 1000, 50, 6)
	for _, iv := range ivs {
		if !iv.Valid() || iv.Hi-iv.Lo < 1 || iv.Hi-iv.Lo > 50 {
			t.Fatalf("bad interval %v", iv)
		}
	}
}

func TestNestedIntervalsNest(t *testing.T) {
	ivs := NestedIntervals(100, 10, 1_000_000, 7)
	if len(ivs) != 100 {
		t.Fatalf("len = %d", len(ivs))
	}
	// Within a nest (consecutive intervals until a restart), containment must
	// hold: each interval contains the next.
	contained := 0
	for i := 1; i < len(ivs); i++ {
		if ivs[i-1].Lo <= ivs[i].Lo && ivs[i].Hi <= ivs[i-1].Hi {
			contained++
		}
	}
	if contained < len(ivs)/2 {
		t.Fatalf("only %d/%d consecutive containments: not nested", contained, len(ivs))
	}
	for _, iv := range ivs {
		if !iv.Valid() {
			t.Fatalf("invalid interval %v", iv)
		}
	}
}

func TestTwoSidedQueriesSelectivity(t *testing.T) {
	const max = 1 << 20
	pts := UniformPoints(20_000, max, 11)
	for _, sel := range []float64{0.001, 0.01, 0.1} {
		qs := TwoSidedQueries(30, max, sel, 12)
		total := 0
		for _, q := range qs {
			for _, p := range pts {
				if p.X >= q.A && p.Y >= q.B {
					total++
				}
			}
		}
		avg := float64(total) / float64(len(qs)) / float64(len(pts))
		if avg < sel/4 || avg > sel*4 {
			t.Errorf("target selectivity %g: measured %g", sel, avg)
		}
	}
}

func TestThreeSidedQueriesSelectivity(t *testing.T) {
	const max = 1 << 20
	pts := UniformPoints(20_000, max, 13)
	qs := ThreeSidedQueries(30, max, 0.25, 0.05, 14)
	total := 0
	for _, q := range qs {
		if q.A1 > q.A2 || q.A1 < 0 || q.A2 >= max {
			t.Fatalf("bad window %+v", q)
		}
		for _, p := range pts {
			if p.X >= q.A1 && p.X <= q.A2 && p.Y >= q.B {
				total++
			}
		}
	}
	avg := float64(total) / float64(len(qs)) / float64(len(pts))
	if avg < 0.05/4 || avg > 0.05*4 {
		t.Errorf("target selectivity 0.05: measured %g", avg)
	}
}

func TestStabQueriesDomain(t *testing.T) {
	for _, q := range StabQueries(100, 500, 15) {
		if q < 0 || q >= 500 {
			t.Fatalf("stab %d out of domain", q)
		}
	}
}
