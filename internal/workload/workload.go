// Package workload generates the deterministic seeded datasets and query
// mixes used by the test suite and the benchmark harness: uniform, clustered,
// diagonal-correlated, and Zipf-skewed point sets; uniform and nested
// interval sets; and query generators with target selectivity.
//
// Everything is driven by an explicit seed so every experiment table in
// EXPERIMENTS.md is reproducible bit-for-bit.
package workload

import (
	"math"
	"math/rand"

	"pathcache/internal/record"
)

// UniformPoints returns n points uniform in [0,max) x [0,max) with IDs
// 1..n.
func UniformPoints(n int, max int64, seed int64) []record.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]record.Point, n)
	for i := range pts {
		pts[i] = record.Point{X: rng.Int63n(max), Y: rng.Int63n(max), ID: uint64(i + 1)}
	}
	return pts
}

// ClusteredPoints returns n points drawn from k Gaussian clusters whose
// centers are uniform in [0,max)^2 and whose standard deviation is spread.
// Coordinates are clamped to [0,max).
func ClusteredPoints(n, k int, max, spread int64, seed int64) []record.Point {
	rng := rand.New(rand.NewSource(seed))
	type center struct{ x, y int64 }
	centers := make([]center, k)
	for i := range centers {
		centers[i] = center{rng.Int63n(max), rng.Int63n(max)}
	}
	clamp := func(v int64) int64 {
		if v < 0 {
			return 0
		}
		if v >= max {
			return max - 1
		}
		return v
	}
	pts := make([]record.Point, n)
	for i := range pts {
		c := centers[rng.Intn(k)]
		pts[i] = record.Point{
			X:  clamp(c.x + int64(rng.NormFloat64()*float64(spread))),
			Y:  clamp(c.y + int64(rng.NormFloat64()*float64(spread))),
			ID: uint64(i + 1),
		}
	}
	return pts
}

// DiagonalPoints returns n points near the x=y diagonal with vertical offset
// uniform in [0,width) — the shape interval data takes under the
// diagonal-corner reduction (y = x + length).
func DiagonalPoints(n int, max, width int64, seed int64) []record.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]record.Point, n)
	for i := range pts {
		x := rng.Int63n(max)
		pts[i] = record.Point{X: x, Y: x + rng.Int63n(width), ID: uint64(i + 1)}
	}
	return pts
}

// ZipfPoints returns n points with uniform x and Zipf-skewed y in [0,max):
// most mass near y=0, a heavy tail toward max. Skew s must be > 1.
func ZipfPoints(n int, max int64, s float64, seed int64) []record.Point {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, s, 1, uint64(max-1))
	pts := make([]record.Point, n)
	for i := range pts {
		pts[i] = record.Point{X: rng.Int63n(max), Y: int64(z.Uint64()), ID: uint64(i + 1)}
	}
	return pts
}

// UniformIntervals returns n intervals with Lo uniform in [0,max) and length
// uniform in [1,maxLen].
func UniformIntervals(n int, max, maxLen int64, seed int64) []record.Interval {
	rng := rand.New(rand.NewSource(seed))
	ivs := make([]record.Interval, n)
	for i := range ivs {
		lo := rng.Int63n(max)
		ivs[i] = record.Interval{Lo: lo, Hi: lo + 1 + rng.Int63n(maxLen), ID: uint64(i + 1)}
	}
	return ivs
}

// NestedIntervals returns n intervals forming deep nests: interval i+1 is
// contained in interval i with random shrinkage, restarting a nest every
// depth intervals. Deep nesting maximizes cover-list imbalance in segment
// trees — the adversarial case for the naive external variant (Figure 3).
func NestedIntervals(n, depth int, max int64, seed int64) []record.Interval {
	rng := rand.New(rand.NewSource(seed))
	ivs := make([]record.Interval, 0, n)
	for len(ivs) < n {
		lo, hi := int64(0), max
		for d := 0; d < depth && len(ivs) < n && hi-lo > 4; d++ {
			ivs = append(ivs, record.Interval{Lo: lo, Hi: hi, ID: uint64(len(ivs) + 1)})
			span := hi - lo
			lo += 1 + rng.Int63n(span/4+1)
			hi -= 1 + rng.Int63n(span/4+1)
			if lo > hi {
				break
			}
		}
	}
	return ivs
}

// TwoSidedQuery is a query corner for the paper's quadrant {x>=A, y>=B}.
type TwoSidedQuery struct{ A, B int64 }

// ThreeSidedQuery is {A1 <= x <= A2, y >= B}.
type ThreeSidedQuery struct{ A1, A2, B int64 }

// TwoSidedQueries returns q query corners over the [0,max)^2 domain chosen
// so that, on uniform data, each query matches about selectivity*n points
// (the matched region is a square in the top-right corner).
func TwoSidedQueries(q int, max int64, selectivity float64, seed int64) []TwoSidedQuery {
	rng := rand.New(rand.NewSource(seed))
	// Side fraction of the matched square.
	side := sqrt(selectivity)
	base := int64(float64(max) * (1 - side))
	out := make([]TwoSidedQuery, q)
	for i := range out {
		// Jitter the corner a little so queries differ while keeping the
		// target selectivity on average.
		jx := rng.Int63n(max/64 + 1)
		jy := rng.Int63n(max/64 + 1)
		out[i] = TwoSidedQuery{A: clampTo(base+jx, max), B: clampTo(base+jy, max)}
	}
	return out
}

// ThreeSidedQueries returns q window queries over [0,max)^2 with x-window
// width widthFrac*max and y cut so that on uniform data each matches about
// selectivity*n points.
func ThreeSidedQueries(q int, max int64, widthFrac, selectivity float64, seed int64) []ThreeSidedQuery {
	rng := rand.New(rand.NewSource(seed))
	w := int64(float64(max) * widthFrac)
	if w < 1 {
		w = 1
	}
	// selectivity = widthFrac * (1 - b/max)  =>  b = max*(1 - selectivity/widthFrac)
	frac := 1 - selectivity/widthFrac
	if frac < 0 {
		frac = 0
	}
	b := int64(float64(max) * frac)
	out := make([]ThreeSidedQuery, q)
	for i := range out {
		a1 := rng.Int63n(max - w + 1)
		out[i] = ThreeSidedQuery{A1: a1, A2: a1 + w - 1, B: clampTo(b, max)}
	}
	return out
}

// StabQueries returns q stabbing points uniform in [0,max).
func StabQueries(q int, max int64, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int64, q)
	for i := range out {
		out[i] = rng.Int63n(max)
	}
	return out
}

func clampTo(v, max int64) int64 {
	if v < 0 {
		return 0
	}
	if v >= max {
		return max - 1
	}
	return v
}

// sqrt clamps negative input to zero before taking the square root, so
// selectivity arithmetic is total.
func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}
