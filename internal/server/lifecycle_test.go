package server

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pathcache"
	"pathcache/internal/disk"
)

// Lifecycle battery: graceful drain lets in-flight requests finish while
// refusing new ones; hot reload swaps the served index without dropping a
// reader; background compaction never blocks or corrupts concurrent reads.

func TestServeDrain(t *testing.T) {
	ts, sp := slowServer(t, Config{})

	// One request in flight, held mid-store.
	type result struct {
		status int
		body   map[string]any
	}
	inflight := make(chan result, 1)
	go func() {
		status, body := ts.post(t, "/v1/query", map[string]any{"a": 150, "b": 150})
		inflight <- result{status, body}
	}()
	<-sp.entered

	// Phase one: the drain flag flips, the listener stays open.
	ts.srv.StartDrain()

	// New work is refused with the typed drain error…
	status, body := ts.post(t, "/v1/query", map[string]any{"a": 0, "b": 0})
	wantCode(t, status, body, 503, "draining")
	// …and the health probe reports unhealthy so balancers rotate us out.
	if status, raw := ts.get(t, "/healthz"); status != 503 {
		t.Fatalf("healthz during drain = %d %q, want 503", status, raw)
	}

	// Phase two: full drain must wait for the held request.
	drained := make(chan error, 1)
	go func() {
		ctx, cancel := testContext(10 * time.Second)
		defer cancel()
		drained <- ts.srv.Drain(ctx)
	}()
	select {
	case err := <-drained:
		t.Fatalf("drain returned %v with a request still in flight", err)
	case <-time.After(100 * time.Millisecond):
	}

	// Release the held request: it completes with its full, correct answer
	// — zero dropped in-flight requests.
	close(sp.release)
	res := <-inflight
	if res.status != 200 || count(t, res.body) != 50 {
		t.Fatalf("in-flight request during drain: status %d body %v", res.status, res.body)
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if got := ts.srv.Metrics().DrainDenials; got < 1 {
		t.Fatalf("DrainDenials = %d, want >= 1", got)
	}
}

// rebuildAt builds an n-point twosided index beside path and renames it
// over path — the atomic-replace contract /admin/reload picks up.
func rebuildAt(t testing.TB, path string, n int) {
	t.Helper()
	tmp := path + ".next"
	ix, err := pathcache.NewTwoSidedIndex(fixturePoints(n), pathcache.SchemeSegmented, fixtureOpts(tmp))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if err := ix.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		t.Fatalf("rename: %v", err)
	}
}

func TestServeHotReload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "live.pc")
	rebuildAt(t, path, 100)
	ts := startServer(t, path, Config{})

	if status, body := ts.post(t, "/v1/query", map[string]any{"a": 0, "b": 0}); status != 200 || count(t, body) != 100 {
		t.Fatalf("pre-reload: status %d body %v", status, body)
	}

	rebuildAt(t, path, 200)
	status, body := ts.post(t, "/admin/reload", nil)
	if status != 200 {
		t.Fatalf("reload: status %d body %v", status, body)
	}
	if gen := ts.handle.Generation(); gen != 1 {
		t.Fatalf("generation after reload = %d, want 1", gen)
	}
	if status, body := ts.post(t, "/v1/query", map[string]any{"a": 0, "b": 0}); status != 200 || count(t, body) != 200 {
		t.Fatalf("post-reload: status %d body %v", status, body)
	}
}

// TestServeReloadNeverBlocksReaders holds a reader mid-request across a
// reload: the reader finishes on its pinned snapshot with the old answer,
// post-swap requests answer from the new index immediately, and neither
// waits on the other.
func TestServeReloadNeverBlocksReaders(t *testing.T) {
	path := filepath.Join(t.TempDir(), "live.pc")

	// The initial 100-point index reads through a parking pager; the
	// reloaded index is reopened from disk and is full speed.
	sp := &slowPager{entered: make(chan struct{}), release: make(chan struct{})}
	var armed atomic.Bool
	opts := fixtureOpts(path)
	opts.WrapPager = func(p disk.Pager) disk.Pager {
		sp.Pager = p
		return pagerFunc{p, func(id disk.PageID, buf []byte) error {
			if armed.Load() {
				return sp.Read(id, buf)
			}
			return p.Read(id, buf)
		}}
	}
	ix, err := pathcache.NewTwoSidedIndex(fixturePoints(100), pathcache.SchemeSegmented, opts)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	armed.Store(true)
	handle := pathcache.NewHandle(path, ix)
	defer handle.Close()
	ts := startServerOn(t, handle, Config{})

	held := make(chan int, 1)
	go func() {
		status, body := ts.post(t, "/v1/query", map[string]any{"a": 0, "b": 0})
		if status != 200 {
			held <- -status
			return
		}
		held <- count(t, body)
	}()
	<-sp.entered

	// Swap in a 200-point index while the reader is stalled on the old one.
	rebuildAt(t, path, 200)
	if status, body := ts.post(t, "/admin/reload", nil); status != 200 {
		t.Fatalf("reload with reader in flight: %d %v", status, body)
	}

	if status, body := ts.post(t, "/v1/query", map[string]any{"a": 0, "b": 0}); status != 200 || count(t, body) != 200 {
		t.Fatalf("post-swap query: status %d body %v", status, body)
	}

	// The held reader completes on its snapshot: the OLD answer, exactly.
	close(sp.release)
	if got := <-held; got != 100 {
		t.Fatalf("held reader answered %d, want 100 (its pinned snapshot)", got)
	}
}

func TestServeCompactBackgroundConsistency(t *testing.T) {
	ts := startServer(t, buildKind(t, t.TempDir(), "lsm"), Config{})

	// Readers hammer the index while background compactions race them: the
	// fixture is static, so every answer is exactly checkable throughout.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				a := int64(i % 200)
				status, body := ts.post(t, "/v1/query", map[string]any{"a": a, "b": a})
				if status != 200 {
					errs <- fmt.Sprintf("query during compaction: status %d body %v", status, body)
					return
				}
				if got, want := count(t, body), int(200-a); got != want {
					errs <- fmt.Sprintf("query {a:%d} during compaction = %d results, want %d", a, got, want)
					return
				}
			}
		}()
	}

	for i := 0; i < 5; i++ {
		status, body := ts.post(t, "/v1/compact", map[string]any{"background": true})
		if status != 200 {
			t.Fatalf("background compact %d: status %d body %v", i, status, body)
		}
		time.Sleep(20 * time.Millisecond)
	}
	// Every background attempt settles as committed or stale — never failed.
	waitUntil(t, func() bool {
		return ts.srv.compactOK.Load()+ts.srv.compactStale.Load()+ts.srv.compactFail.Load() == 5
	})
	close(stop)
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if n := ts.srv.compactFail.Load(); n != 0 {
		t.Fatalf("background compactions failed: %d", n)
	}
}

// waitUntil polls cond to true within 10s.
func waitUntil(t testing.TB, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("condition not reached within 10s")
}
