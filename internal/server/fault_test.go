package server

import (
	"bufio"
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pathcache"
	"pathcache/internal/disk"
)

// Fault battery: mid-request store faults, expired deadlines, exhausted
// quotas, saturated inflight and slow clients. The contract under every
// failure is the same — a typed error status, never a wrong answer, and
// full recovery once the fault clears.

// faultServer builds a twosided index whose pager routes through a
// FaultPager (budget initially unlimited) and serves it.
func faultServer(t *testing.T, cfg Config) (*testServer, *disk.FaultPager) {
	t.Helper()
	var fp *disk.FaultPager
	path := filepath.Join(t.TempDir(), "fault.pc")
	ix, err := pathcache.NewTwoSidedIndex(fixturePoints(200), pathcache.SchemeSegmented, &pathcache.Options{
		PageSize: 512,
		Path:     path,
		WrapPager: func(p disk.Pager) disk.Pager {
			fp = disk.NewFaultPager(p, 1<<40)
			return fp
		},
	})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	handle := pathcache.NewHandle(path, ix)
	t.Cleanup(func() { handle.Close() })
	return startServerOn(t, handle, cfg), fp
}

func TestServeMidRequestStoreFault(t *testing.T) {
	ts, fp := faultServer(t, Config{})

	status, body := ts.post(t, "/v1/query", map[string]any{"a": 150, "b": 150})
	if status != 200 || count(t, body) != 50 {
		t.Fatalf("pre-fault query: status %d body %v", status, body)
	}

	fp.SetBudget(0)
	status, body = ts.post(t, "/v1/query", map[string]any{"a": 150, "b": 150})
	wantCode(t, status, body, 500, "store_fault")

	// Fault cleared: the exact pre-fault answer comes back — the failed
	// attempt corrupted nothing.
	fp.SetBudget(1 << 40)
	status, body = ts.post(t, "/v1/query", map[string]any{"a": 150, "b": 150})
	if status != 200 || count(t, body) != 50 {
		t.Fatalf("post-fault query: status %d body %v", status, body)
	}
}

func TestServeFaultDuringBatch(t *testing.T) {
	ts, fp := faultServer(t, Config{BatchWorkers: 4})
	qs := make([]map[string]any, 32)
	for i := range qs {
		qs[i] = map[string]any{"a": i, "b": i}
	}

	fp.SetBudget(10) // a few queries in, the store starts failing
	status, body := ts.post(t, "/v1/query/batch", map[string]any{"queries": qs})
	wantCode(t, status, body, 500, "store_fault")

	fp.SetBudget(1 << 40)
	status, body = ts.post(t, "/v1/query/batch", map[string]any{"queries": qs})
	if status != 200 {
		t.Fatalf("post-fault batch: status %d body %v", status, body)
	}
}

// slowPager delays every read until the test releases it, so a request can
// be held mid-store deterministically.
type slowPager struct {
	disk.Pager
	entered chan struct{} // closed on first delayed read
	release chan struct{} // reads block until this closes
	once    sync.Once
}

func (s *slowPager) Read(id disk.PageID, buf []byte) error {
	s.once.Do(func() { close(s.entered) })
	<-s.release
	return s.Pager.Read(id, buf)
}

// slowServer serves a twosided index whose first read blocks until release.
func slowServer(t *testing.T, cfg Config) (*testServer, *slowPager) {
	t.Helper()
	sp := &slowPager{entered: make(chan struct{}), release: make(chan struct{})}
	path := filepath.Join(t.TempDir(), "slow.pc")
	var armed atomic.Bool
	ix, err := pathcache.NewTwoSidedIndex(fixturePoints(200), pathcache.SchemeSegmented, &pathcache.Options{
		PageSize: 512,
		Path:     path,
		WrapPager: func(p disk.Pager) disk.Pager {
			sp.Pager = p
			// The build itself must not block; arm the slow path only
			// after construction by checking the flag per read.
			return pagerFunc{p, func(id disk.PageID, buf []byte) error {
				if armed.Load() {
					return sp.Read(id, buf)
				}
				return p.Read(id, buf)
			}}
		},
	})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	armed.Store(true)
	handle := pathcache.NewHandle(path, ix)
	t.Cleanup(func() { handle.Close() })
	return startServerOn(t, handle, cfg), sp
}

// pagerFunc overrides just Read on an embedded pager.
type pagerFunc struct {
	disk.Pager
	read func(disk.PageID, []byte) error
}

func (p pagerFunc) Read(id disk.PageID, buf []byte) error { return p.read(id, buf) }

func TestServeDeadlineExpiry(t *testing.T) {
	ts, sp := slowServer(t, Config{})

	start := time.Now()
	status, body := ts.post(t, "/v1/query?deadline_ms=50", map[string]any{"a": 0, "b": 0})
	wantCode(t, status, body, 504, "deadline_exceeded")
	if e := time.Since(start); e > 5*time.Second {
		t.Fatalf("timeout answer took %v; deadline did not cut the wait", e)
	}

	// Release the stalled operation; the server must be fully usable.
	close(sp.release)
	status, body = ts.post(t, "/v1/query", map[string]any{"a": 150, "b": 150})
	if status != 200 || count(t, body) != 50 {
		t.Fatalf("post-expiry query: status %d body %v", status, body)
	}
}

func TestServeQuotaExhaustion(t *testing.T) {
	ts, _ := faultServer(t, Config{QuotaRate: 0.1, QuotaBurst: 2})
	c := &http.Client{}

	for i := 0; i < 2; i++ {
		status, body := ts.postClient(t, c, "/v1/query", "client-a", map[string]any{"a": 0, "b": 0})
		if status != 200 {
			t.Fatalf("request %d within burst: status %d body %v", i, status, body)
		}
	}

	// Bucket empty: typed 429 with a Retry-After hint.
	req, _ := http.NewRequest(http.MethodPost, ts.base+"/v1/query", nil)
	req.Header.Set("X-Client", "client-a")
	resp, err := c.Do(req)
	if err != nil {
		t.Fatalf("over-quota request: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 429 {
		t.Fatalf("over-quota status = %d, want 429", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want a positive integer", resp.Header.Get("Retry-After"))
	}

	// Quotas are per client: another identity is unaffected.
	status, body := ts.postClient(t, c, "/v1/query", "client-b", map[string]any{"a": 150, "b": 150})
	if status != 200 || count(t, body) != 50 {
		t.Fatalf("other client: status %d body %v", status, body)
	}
}

func TestServeInflightOverload(t *testing.T) {
	ts, sp := slowServer(t, Config{MaxInflight: 1})

	blocked := make(chan struct{})
	go func() {
		defer close(blocked)
		status, body := ts.post(t, "/v1/query", map[string]any{"a": 0, "b": 0})
		if status != 200 {
			t.Errorf("held request finished %d %v, want 200", status, body)
		}
	}()
	<-sp.entered // the held request owns the only slot, stalled in the store

	status, body := ts.post(t, "/v1/query", map[string]any{"a": 0, "b": 0})
	wantCode(t, status, body, 429, "overloaded")

	close(sp.release)
	<-blocked
	if status, body := ts.post(t, "/v1/query", map[string]any{"a": 150, "b": 150}); status != 200 || count(t, body) != 50 {
		t.Fatalf("after release: status %d body %v", status, body)
	}
	if got := ts.srv.Metrics().OverloadDenials; got != 1 {
		t.Fatalf("OverloadDenials = %d, want 1", got)
	}
}

// TestServeSlowClient holds a request body open past the deadline: the
// server answers the typed timeout rather than hanging a slot on the
// trickling peer.
func TestServeSlowClient(t *testing.T) {
	ts, _ := faultServer(t, Config{DefaultDeadline: 100 * time.Millisecond})

	conn, err := net.Dial("tcp", ts.base[len("http://"):])
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	// Promise 512 body bytes, deliver 9, stall.
	fmt.Fprintf(conn, "POST /v1/query HTTP/1.1\r\nHost: x\r\nContent-Type: application/json\r\nContent-Length: 512\r\n\r\n")
	fmt.Fprintf(conn, `{"a": 1, `)

	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	resp, err := http.ReadResponse(bufio.NewReader(conn), nil)
	if err != nil {
		t.Fatalf("no response for slow client: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 504 {
		t.Fatalf("slow client got %d, want 504 (deadline_exceeded)", resp.StatusCode)
	}

	// The stalled slot is not leaked: fresh requests still serve.
	status, body := ts.post(t, "/v1/query", map[string]any{"a": 150, "b": 150})
	if status != 200 || count(t, body) != 50 {
		t.Fatalf("after slow client: status %d body %v", status, body)
	}
}
