package server

import (
	"encoding/json"
	"os"
	"sort"
	"sync"
	"testing"
	"time"

	"pathcache"
	"pathcache/internal/workload"
)

// Load battery: closed-loop clients drive uniform and Zipf query mixes
// from internal/workload through a real TCP listener, recording wall-clock
// latency quantiles client-side and EXACT per-op I/O server-side (each
// response carries its op-scoped counter, so the totals are sums of exact
// per-request attributions, not a global diff). With PCSERVE_BENCH_OUT
// set the run writes the BENCH_serve.json measurement family; `make
// bench-serve` wires that up.

type serveBenchMix struct {
	Mix        string  `json:"mix"`
	Endpoint   string  `json:"endpoint"`
	Requests   int     `json:"requests"`
	Workers    int     `json:"workers"`
	P50US      int64   `json:"p50_us"`
	P99US      int64   `json:"p99_us"`
	AvgReads   float64 `json:"avg_reads"`
	AvgResults float64 `json:"avg_results"`
	Reads      int64   `json:"total_reads"`
	Writes     int64   `json:"total_writes"`
	CacheHits  int64   `json:"total_cache_hits"`
	Denials    int64   `json:"denials"`
}

type serveBench struct {
	Name     string          `json:"name"`
	PageSize int             `json:"page_size"`
	Seed     int64           `json:"seed"`
	Small    bool            `json:"small"`
	N        int             `json:"n"`
	Domain   int64           `json:"domain"`
	Mixes    []serveBenchMix `json:"measurements"`
}

func TestServeLoadBench(t *testing.T) {
	const (
		n          = 2_000
		domain     = 100_000
		seed       = 42
		workers    = 4
		perWorker  = 150
		pageSize   = 512
		selectivty = 0.05
	)

	// A deterministic point set from the workload package's own stream.
	stream := workload.NewPointStream(domain, seed, 0, 1)
	pts := make([]pathcache.Point, n)
	for i := range pts {
		x, y, id := stream.Next()
		pts[i] = pathcache.Point{X: x, Y: y, ID: id}
	}
	dir := t.TempDir()
	opts := &pathcache.Options{PageSize: pageSize, BufferPoolPages: 32, Path: dir + "/load.pc", MemtableEntries: 256}
	ix, err := pathcache.BuildDynamic("twosided", pts, opts)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if err := ix.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	ts := startServer(t, dir+"/load.pc", Config{BatchWorkers: workers})

	bench := serveBench{Name: "serve", PageSize: pageSize, Seed: seed, Small: true, N: n, Domain: domain}
	for _, mix := range []workload.Mix{workload.MixUniform, workload.MixZipf} {
		var (
			mu        sync.Mutex
			latencies []time.Duration
			reads     int64
			writes    int64
			hits      int64
			results   int64
			denials   int64
		)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				qs := workload.NewTwoSidedStream(mix, domain, selectivty, seed, w)
				for i := 0; i < perWorker; i++ {
					q := qs.Next()
					start := time.Now()
					status, body := ts.post(t, "/v1/query", map[string]any{"a": q.A, "b": q.B})
					lat := time.Since(start)
					mu.Lock()
					if status != 200 {
						denials++
					} else {
						latencies = append(latencies, lat)
						results += int64(count(t, body))
						io, _ := body["io"].(map[string]any)
						r, _ := io["reads"].(float64)
						w, _ := io["writes"].(float64)
						h, _ := io["cache_hits"].(float64)
						reads += int64(r)
						writes += int64(w)
						hits += int64(h)
					}
					mu.Unlock()
				}
			}(w)
		}
		wg.Wait()

		if denials != 0 {
			t.Fatalf("%s mix: %d of %d requests failed", mix, denials, workers*perWorker)
		}
		if reads == 0 {
			t.Fatalf("%s mix: zero reads attributed; per-op I/O accounting broken", mix)
		}
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		total := len(latencies)
		p50 := latencies[total/2].Microseconds()
		p99 := latencies[total*99/100].Microseconds()
		if p50 <= 0 || p99 < p50 {
			t.Fatalf("%s mix: implausible quantiles p50=%dus p99=%dus", mix, p50, p99)
		}
		bench.Mixes = append(bench.Mixes, serveBenchMix{
			Mix:        mix.String(),
			Endpoint:   "query",
			Requests:   total,
			Workers:    workers,
			P50US:      p50,
			P99US:      p99,
			AvgReads:   float64(reads) / float64(total),
			AvgResults: float64(results) / float64(total),
			Reads:      reads,
			Writes:     writes,
			CacheHits:  hits,
			Denials:    denials,
		})
		t.Logf("%s: %d reqs, p50=%dus p99=%dus, avg reads %.2f, avg results %.1f",
			mix, total, p50, p99, float64(reads)/float64(total), float64(results)/float64(total))
	}

	// The Zipf mix skews toward the origin corner, so it sweeps far more
	// of the index per query than the selectivity-bounded uniform mix —
	// check the shape difference actually shows up in the exact I/O.
	if bench.Mixes[1].AvgResults <= bench.Mixes[0].AvgResults {
		t.Logf("note: zipf avg results %.1f <= uniform %.1f", bench.Mixes[1].AvgResults, bench.Mixes[0].AvgResults)
	}

	if out := os.Getenv("PCSERVE_BENCH_OUT"); out != "" {
		raw, err := json.MarshalIndent(bench, "", "  ")
		if err != nil {
			t.Fatalf("marshal bench: %v", err)
		}
		if err := os.WriteFile(out, append(raw, '\n'), 0o644); err != nil {
			t.Fatalf("write %s: %v", out, err)
		}
		t.Logf("wrote %s", out)
	}
}
