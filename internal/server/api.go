package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"pathcache"
)

// The wire protocol: every operation is a POST with a small JSON body and
// a JSON response. Decoding is strict — unknown fields, trailing garbage,
// oversized bodies and oversized batches are all 4xx, decided before any
// store work happens — so a malformed request can never reach the index
// (FuzzServerRequestDecode pins exactly that).

// apiError is the typed failure every handler returns: an HTTP status, a
// stable machine-readable code, and a human-readable message. Every
// failure mode of the service maps onto one — a request either succeeds
// or carries a typed error, never a wrong answer.
type apiError struct {
	Status     int    `json:"-"`
	Code       string `json:"code"`
	Message    string `json:"error"`
	RetryAfter int    `json:"-"` // seconds; emitted as a Retry-After header when > 0
}

func (e *apiError) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Message) }

// The error codes the service emits. Tests assert on these, so they are
// part of the wire contract.
const (
	codeBadRequest       = "bad_request"        // 400: malformed body, unknown fields, bad ranges
	codeBatchTooLarge    = "batch_too_large"    // 400: batch above Config.MaxBatch
	codeUnsupportedShape = "unsupported_shape"  // 400: operation the index kind cannot answer
	codeReadOnlyKind     = "read_only_kind"     // 400: write op against a static kind
	codeNotFound         = "not_found"          // 404: unknown route
	codeMethodNotAllowed = "method_not_allowed" // 405
	codeQuotaExhausted   = "quota_exhausted"    // 429: per-client token bucket empty
	codeOverloaded       = "overloaded"         // 429: max-inflight ceiling hit
	codeDraining         = "draining"           // 503: received during graceful drain
	codeClosed           = "closed"             // 503: handle closed underneath the server
	codeDeadlineExceeded = "deadline_exceeded"  // 504: per-request deadline expired
	codeStoreFault       = "store_fault"        // 500: the store failed mid-request
	codeBoundExceeded    = "bound_exceeded"     // 500: strict theorem-bound sentinel tripped
	codeReloadFailed     = "reload_failed"      // 500: hot reload could not open the file
)

func errBadRequest(format string, args ...any) *apiError {
	return &apiError{Status: http.StatusBadRequest, Code: codeBadRequest, Message: fmt.Sprintf(format, args...)}
}

func errUnsupported(kind, op string) *apiError {
	return &apiError{
		Status:  http.StatusBadRequest,
		Code:    codeUnsupportedShape,
		Message: fmt.Sprintf("index kind %q does not answer %s", kind, op),
	}
}

// mapStoreErr converts an index operation's failure to its typed wire
// error. The distinction matters to clients: a bound breach is a sentinel
// tripping on a correct answer, a store fault is an I/O failure whose
// request must not be trusted.
func mapStoreErr(err error) *apiError {
	if errors.Is(err, pathcache.ErrBoundExceeded) {
		return &apiError{Status: http.StatusInternalServerError, Code: codeBoundExceeded, Message: err.Error()}
	}
	if errors.Is(err, pathcache.ErrHandleClosed) {
		return &apiError{Status: http.StatusServiceUnavailable, Code: codeClosed, Message: err.Error()}
	}
	return &apiError{Status: http.StatusInternalServerError, Code: codeStoreFault, Message: err.Error()}
}

// decodeStrict decodes body into v: unknown fields, trailing data and
// syntax errors are all bad_request. An empty body decodes the zero value
// (so bodyless POSTs to /v1/flush and friends work).
func decodeStrict(body []byte, v any) *apiError {
	if len(bytes.TrimSpace(body)) == 0 {
		return nil
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return errBadRequest("invalid JSON body: %v", err)
	}
	if dec.More() {
		return errBadRequest("trailing data after JSON body")
	}
	return nil
}

// readBody reads at most max bytes of the request body; one byte over is
// bad_request without reading further.
func readBody(r *http.Request, max int64) ([]byte, *apiError) {
	body, err := io.ReadAll(io.LimitReader(r.Body, max+1))
	if err != nil {
		return nil, errBadRequest("reading request body: %v", err)
	}
	if int64(len(body)) > max {
		return nil, errBadRequest("request body exceeds %d bytes", max)
	}
	return body, nil
}

// Request shapes. Required fields are pointers so "absent" and "zero" are
// distinguishable — a 2-sided query for the origin corner is {"a":0,"b":0},
// while {} is a 400.

// queryReq covers /v1/query for both 2-sided ({a, b}) and 3-sided
// ({a1, a2, b}) kinds; the handler enforces the shape its kind answers.
type queryReq struct {
	A  *int64 `json:"a,omitempty"`
	B  *int64 `json:"b,omitempty"`
	A1 *int64 `json:"a1,omitempty"`
	A2 *int64 `json:"a2,omitempty"`
}

type windowReq struct {
	X1 *int64 `json:"x1"`
	X2 *int64 `json:"x2"`
	Y1 *int64 `json:"y1"`
	Y2 *int64 `json:"y2"`
}

// validate checks presence and range order; a window with x1 > x2 is a
// malformed range, not an empty result.
func (q *windowReq) validate() *apiError {
	if q.X1 == nil || q.X2 == nil || q.Y1 == nil || q.Y2 == nil {
		return errBadRequest("window query needs x1, x2, y1, y2")
	}
	if *q.X1 > *q.X2 || *q.Y1 > *q.Y2 {
		return errBadRequest("malformed window: need x1 <= x2 and y1 <= y2")
	}
	return nil
}

type stabReq struct {
	Q *int64 `json:"q"`
}

// recordReq names one exact record — the write-path identity and the
// /v1/search probe target.
type recordReq struct {
	X  *int64  `json:"x"`
	Y  *int64  `json:"y"`
	ID *uint64 `json:"id"`
}

func (q *recordReq) validate() *apiError {
	if q.X == nil || q.Y == nil || q.ID == nil {
		return errBadRequest("record needs x, y, id")
	}
	return nil
}

func (q *recordReq) point() pathcache.Point {
	return pathcache.Point{X: *q.X, Y: *q.Y, ID: *q.ID}
}

type queryBatchReq struct {
	Queries []queryReq `json:"queries"`
	Workers int        `json:"workers,omitempty"`
}

type windowBatchReq struct {
	Queries []windowReq `json:"queries"`
	Workers int         `json:"workers,omitempty"`
}

type stabBatchReq struct {
	Qs      []int64 `json:"qs"`
	Workers int     `json:"workers,omitempty"`
}

type compactReq struct {
	Background bool `json:"background,omitempty"`
}

// reloadReq selects what /admin/reload swaps: the whole store (empty
// body), or one shard of a sharded store.
type reloadReq struct {
	Shard *int `json:"shard,omitempty"`
}

// Response shapes.

type pointJSON struct {
	X  int64  `json:"x"`
	Y  int64  `json:"y"`
	ID uint64 `json:"id"`
}

type intervalJSON struct {
	Lo int64  `json:"lo"`
	Hi int64  `json:"hi"`
	ID uint64 `json:"id"`
}

// ioJSON is the per-request exact I/O attribution: the op-scoped counter's
// page transfers, never a global diff, so load tests can sum per-op counts
// straight off the responses.
type ioJSON struct {
	Reads     int64   `json:"reads"`
	Writes    int64   `json:"writes"`
	CacheHits int64   `json:"cache_hits"`
	Bound     float64 `json:"bound,omitempty"`
	Ratio     float64 `json:"ratio,omitempty"`
}

func ioOf(p pathcache.IOProfile) ioJSON {
	return ioJSON{Reads: p.Reads, Writes: p.Writes, CacheHits: p.CacheHits, Bound: p.Bound, Ratio: p.BoundRatio}
}

func ioOfBatch(st pathcache.BatchStats) ioJSON {
	return ioJSON{Reads: st.Reads, Writes: st.Writes, CacheHits: st.CacheHits}
}

// ioOfShards sums the per-shard profiles of a scatter-gathered serial
// operation — still the request's exact op-scoped attribution, shard by
// shard.
func ioOfShards(profs []pathcache.ShardProfile) ioJSON {
	var out ioJSON
	for _, p := range profs {
		out.Reads += p.Reads
		out.Writes += p.Writes
		out.CacheHits += p.CacheHits
	}
	return out
}

type queryResponse struct {
	Count     int            `json:"count"`
	Points    []pointJSON    `json:"points,omitempty"`
	Intervals []intervalJSON `json:"intervals,omitempty"`
	IO        ioJSON         `json:"io"`
}

type searchResponse struct {
	Found bool   `json:"found"`
	IO    ioJSON `json:"io"`
}

type batchResponse struct {
	Queries   int              `json:"queries"`
	Workers   int              `json:"workers"`
	Results   int              `json:"results"`
	Points    [][]pointJSON    `json:"point_results,omitempty"`
	Intervals [][]intervalJSON `json:"interval_results,omitempty"`
	IO        ioJSON           `json:"io"`
}

type updateResponse struct {
	Records int    `json:"records"`
	IO      ioJSON `json:"io"`
}

type okResponse struct {
	OK         bool `json:"ok"`
	Background bool `json:"background,omitempty"`
}

func toPointsJSON(pts []pathcache.Point) []pointJSON {
	out := make([]pointJSON, len(pts))
	for i, p := range pts {
		out[i] = pointJSON{X: p.X, Y: p.Y, ID: p.ID}
	}
	return out
}

func toIntervalsJSON(ivs []pathcache.Interval) []intervalJSON {
	out := make([]intervalJSON, len(ivs))
	for i, iv := range ivs {
		out[i] = intervalJSON{Lo: iv.Lo, Hi: iv.Hi, ID: iv.ID}
	}
	return out
}
