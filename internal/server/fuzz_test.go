package server

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"pathcache"
	"pathcache/internal/disk"
)

// FuzzServerRequestDecode throws arbitrary bodies at every decoding
// endpoint. The contract under fuzz: the server never panics, answers
// every malformed request with a 4xx, and — the load-bearing half — a
// rejected request performs ZERO store I/O: admission and validation run
// strictly before the index is touched.
func FuzzServerRequestDecode(f *testing.F) {
	endpoints := []string{
		"/v1/query", "/v1/query/batch", "/v1/window", "/v1/window/batch",
		"/v1/stab", "/v1/stab/batch", "/v1/search", "/v1/insert",
		"/v1/delete", "/v1/flush", "/v1/compact", "/admin/reload",
	}

	var pagerOps atomic.Int64
	path := filepath.Join(f.TempDir(), "fuzz.pc")
	ix, err := pathcache.NewTwoSidedIndex(fixturePoints(64), pathcache.SchemeSegmented, &pathcache.Options{
		PageSize: 512,
		Path:     path,
		WrapPager: func(p disk.Pager) disk.Pager {
			return countingPager{p, &pagerOps}
		},
	})
	if err != nil {
		f.Fatalf("build: %v", err)
	}
	handle := pathcache.NewHandle(path, ix)
	defer handle.Close()
	srv := New(handle, Config{MaxBodyBytes: 1 << 16, MaxBatch: 64})
	h := srv.Handler()

	f.Add(uint8(0), `{"a": 1, "b": 2}`)
	f.Add(uint8(0), `{"a1": 1, "a2": 2, "b": 3}`)
	f.Add(uint8(1), `{"queries": [{"a": 1, "b": 2}], "workers": 2}`)
	f.Add(uint8(1), `{"queries": [`+strings.Repeat(`{"a":1,"b":2},`, 100)+`{"a":1,"b":2}]}`)
	f.Add(uint8(2), `{"x1": 0, "x2": -5, "y1": 3, "y2": 1}`)
	f.Add(uint8(4), `{"q": 9}`)
	f.Add(uint8(6), `{"x": 1, "y": 2, "id": 3}`)
	f.Add(uint8(7), `{"x": 9223372036854775807, "y": -9223372036854775808, "id": 18446744073709551615}`)
	f.Add(uint8(0), `{"a": 1, "b": 2} trailing`)
	f.Add(uint8(0), `{"a": null, "b": 2}`)
	f.Add(uint8(0), `[[[[[[`)
	f.Add(uint8(10), `{"background": true}`)
	f.Add(uint8(5), strings.Repeat("9", 1<<10))

	f.Fuzz(func(t *testing.T, which uint8, body string) {
		path := endpoints[int(which)%len(endpoints)]
		req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader([]byte(body)))
		rec := httptest.NewRecorder()

		before := pagerOps.Load()
		h.ServeHTTP(rec, req) // must not panic
		status := rec.Code

		switch {
		case status >= 200 && status < 300:
			// A well-formed request against the right kind; fine.
		case status >= 400 && status < 500:
			// Rejected: the store must not have been touched.
			if after := pagerOps.Load(); after != before {
				t.Fatalf("%s rejected with %d but performed %d pager ops on body %q",
					path, status, after-before, body)
			}
		default:
			t.Fatalf("%s answered %d on body %q; want 2xx or 4xx", path, status, body)
		}
	})
}

// countingPager counts every pager operation that reaches the store.
type countingPager struct {
	disk.Pager
	ops *atomic.Int64
}

func (c countingPager) Read(id disk.PageID, buf []byte) error {
	c.ops.Add(1)
	return c.Pager.Read(id, buf)
}

func (c countingPager) Write(id disk.PageID, buf []byte) error {
	c.ops.Add(1)
	return c.Pager.Write(id, buf)
}

func (c countingPager) Alloc() (disk.PageID, error) {
	c.ops.Add(1)
	return c.Pager.Alloc()
}

func (c countingPager) Free(id disk.PageID) error {
	c.ops.Add(1)
	return c.Pager.Free(id)
}
