package server

import (
	"fmt"
	"io"
	"math"
	"strconv"

	"pathcache"
	"pathcache/internal/obs"
)

// /metrics renders both metric surfaces in text exposition format:
//
//   - pcserve_* — the serving layer's own series (request counts, failure
//     counts, latency distributions, admission denials), per endpoint;
//   - pathcache_* — every (kind, op, worker) series the store's obs
//     registry recorded, with exact per-op I/O sums and the theorem
//     bound-ratio buckets.
//
// Both writers render series in sorted order with counts, sums and buckets
// only — no wall-clock-dependent values in the pathcache_* section — so a
// deterministic load produces a byte-identical index dump (cmd/pcindex's
// golden transcript pins exactly that via `stats -serve`).

// WriteServeMetrics renders the serving layer's snapshot.
func WriteServeMetrics(w io.Writer, s obs.ServeSnapshot) {
	fmt.Fprintf(w, "pcserve_quota_denials_total %d\n", s.QuotaDenials)
	fmt.Fprintf(w, "pcserve_overload_denials_total %d\n", s.OverloadDenials)
	fmt.Fprintf(w, "pcserve_drain_denials_total %d\n", s.DrainDenials)
	fmt.Fprintf(w, "pcserve_inflight %d\n", s.Inflight)
	for _, e := range s.Endpoints {
		fmt.Fprintf(w, "pcserve_requests_total{endpoint=%q} %d\n", e.Endpoint, e.Requests)
		fmt.Fprintf(w, "pcserve_failures_total{endpoint=%q} %d\n", e.Endpoint, e.Failures)
		fmt.Fprintf(w, "pcserve_results_total{endpoint=%q} %d\n", e.Endpoint, e.Results)
		writeHist(w, "pcserve_latency_us", fmt.Sprintf("endpoint=%q", e.Endpoint), hist(e.LatencyUS))
	}
}

// WriteIndexMetrics renders the store-side snapshot. Exported so
// cmd/pcindex's `stats -serve` prints the identical exposition a running
// pcserve would, letting the golden transcript pin the series names and
// exact counts without booting a listener.
func WriteIndexMetrics(w io.Writer, m pathcache.Metrics) {
	fmt.Fprintf(w, "pathcache_inflight %d\n", m.Inflight)
	for _, op := range m.Ops {
		labels := fmt.Sprintf("kind=%q,op=%q,worker=%q", op.Kind, op.Name, workerLabel(op.Worker))
		if op.Shard != pathcache.NoShard {
			labels += fmt.Sprintf(",shard=\"%d\"", op.Shard)
		}
		fmt.Fprintf(w, "pathcache_op_ops_total{%s} %d\n", labels, op.Ops)
		fmt.Fprintf(w, "pathcache_op_results_total{%s} %d\n", labels, op.Results)
		writeHist(w, "pathcache_op_reads", labels, op.Reads)
		writeHist(w, "pathcache_op_writes", labels, op.Writes)
		writeHist(w, "pathcache_op_cache_hits", labels, op.CacheHits)
		if op.BoundRatios.Count > 0 {
			writeHist(w, "pathcache_op_bound_ratio_pct", labels, op.BoundRatios)
			fmt.Fprintf(w, "pathcache_op_bound_ratio_max{%s} %.2f\n", labels, op.MaxBoundRatio)
		}
	}
}

// writeHist renders one log₂ histogram: cumulative le-labeled buckets in
// the exposition idiom, then the exact count and sum.
func writeHist(w io.Writer, name, labels string, h pathcache.Histogram) {
	var cum int64
	for _, b := range h.Buckets {
		cum += b.Count
		fmt.Fprintf(w, "%s_bucket{%s,le=%q} %d\n", name, labels, leLabel(b.Hi), cum)
	}
	if len(h.Buckets) > 0 {
		fmt.Fprintf(w, "%s_bucket{%s,le=\"+Inf\"} %d\n", name, labels, cum)
	}
	fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, h.Count)
	fmt.Fprintf(w, "%s_sum{%s} %d\n", name, labels, h.Sum)
}

func leLabel(hi int64) string {
	if hi == math.MaxInt64 {
		return "+Inf"
	}
	return strconv.FormatInt(hi, 10)
}

func workerLabel(w int) string {
	if w == pathcache.SerialWorker {
		return "serial"
	}
	return strconv.Itoa(w)
}

// hist converts an obs histogram snapshot to the public shape so both
// writers share writeHist.
func hist(s obs.HistSnapshot) pathcache.Histogram {
	h := pathcache.Histogram{Count: s.Count, Sum: s.Sum, Min: s.Min, Max: s.Max}
	for _, b := range s.Buckets {
		h.Buckets = append(h.Buckets, pathcache.HistogramBucket{Lo: b.Lo, Hi: b.Hi, Count: b.Count})
	}
	return h
}
