// Package server is pcserve's engine: a concurrent HTTP/JSON query
// service over any registered pathcache index kind, including the LSM
// write tier.
//
// The request lifecycle (DESIGN.md §12) is: admission (drain flag →
// per-client token bucket → max-inflight ceiling) → per-request deadline
// (a context the operation runs under) → snapshot pin (Handle.Acquire) →
// the index operation through the public pathcache API (so every op lands
// in the store's obs registry with exact op-scoped I/O) → typed JSON
// response. Every failure maps to a typed error code — a client sees a
// correct answer or a typed refusal, never a wrong answer.
//
// Readers never block on maintenance: hot reload swaps a copy-on-write
// handle (pathcache.Handle), and LSM background compaction runs over the
// write tier's own level snapshots (pathcache.LSMIndex.CompactBackground).
// Graceful drain (SIGTERM in cmd/pcserve) refuses new work with 503 and
// lets in-flight requests finish.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"pathcache"
	"pathcache/internal/obs"
)

// Config tunes one Server. The zero value serves with sane defaults: no
// quotas, GOMAXPROCS batch workers, a 30s default deadline.
type Config struct {
	// QuotaRate and QuotaBurst shape each client's token bucket
	// (tokens/second and bucket depth). Rate <= 0 disables quotas.
	QuotaRate  float64
	QuotaBurst float64
	// MaxInflight caps concurrently executing requests; excess requests
	// are shed with 429/overloaded. <= 0 means no ceiling.
	MaxInflight int
	// DefaultDeadline bounds requests that name no deadline_ms;
	// MaxDeadline clamps ones that do. Zero values pick 30s and 60s.
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// BatchWorkers is the worker-pool width batch endpoints fan out to
	// (also clamped by the per-request "workers" field). <= 0 means
	// GOMAXPROCS.
	BatchWorkers int
	// MaxBatch caps batch sizes; MaxBodyBytes caps request bodies. Zero
	// values pick 8192 queries and 1 MiB.
	MaxBatch     int
	MaxBodyBytes int64
}

func (c Config) withDefaults() Config {
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 60 * time.Second
	}
	if c.BatchWorkers <= 0 {
		c.BatchWorkers = runtime.GOMAXPROCS(0)
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8192
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	return c
}

// Server serves one index handle over HTTP. Create with New, mount
// Handler on a listener (or use Serve), stop with Drain.
type Server struct {
	cfg    Config
	handle *pathcache.Handle

	set      *obs.ServeSet
	seq      atomic.Uint64
	draining atomic.Bool
	start    time.Time

	quotas *quotaTable
	gate   *inflightGate

	// Background-compaction outcomes, surfaced in /varz: ok commits,
	// stale discards (lost the race with a concurrent flush — benign),
	// and failures.
	compactOK    atomic.Int64
	compactStale atomic.Int64
	compactFail  atomic.Int64

	httpSrv *http.Server
}

// New wraps handle in a Server. The handle stays owned by the caller:
// Drain stops serving but does not close it.
func New(handle *pathcache.Handle, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:    cfg,
		handle: handle,
		set:    obs.NewServeSet(),
		start:  time.Now(),
		quotas: newQuotaTable(cfg.QuotaRate, cfg.QuotaBurst),
		gate:   newInflightGate(cfg.MaxInflight),
	}
	return s
}

// Handler returns the server's route table — everything under /v1, the
// admin endpoints, and the observability surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/query", s.op("query", s.opQuery))
	mux.HandleFunc("/v1/query/batch", s.op("query_batch", s.opQueryBatch))
	mux.HandleFunc("/v1/window", s.op("window", s.opWindow))
	mux.HandleFunc("/v1/window/batch", s.op("window_batch", s.opWindowBatch))
	mux.HandleFunc("/v1/stab", s.op("stab", s.opStab))
	mux.HandleFunc("/v1/stab/batch", s.op("stab_batch", s.opStabBatch))
	mux.HandleFunc("/v1/search", s.op("search", s.opSearch))
	mux.HandleFunc("/v1/insert", s.op("insert", s.opInsert))
	mux.HandleFunc("/v1/delete", s.op("delete", s.opDelete))
	mux.HandleFunc("/v1/flush", s.op("flush", s.opFlush))
	mux.HandleFunc("/v1/compact", s.op("compact", s.opCompact))
	mux.HandleFunc("/admin/reload", s.op("reload", s.opReload))
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/varz", s.handleVarz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeErr(w, &apiError{Status: http.StatusNotFound, Code: codeNotFound,
			Message: fmt.Sprintf("no route %s", r.URL.Path)})
	})
	return mux
}

// Serve accepts connections on ln until Drain. Conservative read/write
// timeouts bound what a stalled peer can hold: a client that trickles its
// body still burns only its own handler goroutine, and the deadline
// machinery answers 504 long before the socket timeouts fire.
func (s *Server) Serve(ln net.Listener) error {
	s.httpSrv = &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * s.cfg.MaxDeadline,
		WriteTimeout:      2 * s.cfg.MaxDeadline,
	}
	err := s.httpSrv.Serve(ln)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// StartDrain flips the server into draining without closing the listener:
// new requests get the typed 503, /healthz reports unhealthy (so load
// balancers rotate the instance out), and in-flight requests keep running.
// Follow with Drain to finish the shutdown.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Drain gracefully stops the server: new requests are refused with
// 503/draining immediately, in-flight requests run to completion, and
// Drain returns when the last one finished or ctx expired. cmd/pcserve
// calls this on SIGTERM.
func (s *Server) Drain(ctx context.Context) error {
	s.StartDrain()
	if s.httpSrv == nil {
		return nil
	}
	if err := s.httpSrv.Shutdown(ctx); err != nil {
		return fmt.Errorf("server: drain: %w", err)
	}
	return nil
}

// Draining reports whether a drain has started.
func (s *Server) Draining() bool { return s.draining.Load() }

// Metrics returns the serve-side metric snapshot (endpoint series and
// admission counters).
func (s *Server) Metrics() obs.ServeSnapshot { return s.set.Snapshot() }

// opFunc runs one decoded operation. It executes on a worker goroutine
// under the request's deadline context and must not touch the
// ResponseWriter; it returns the JSON-able response value plus the result
// count for the serve metrics, or a typed error.
type opFunc func(ctx context.Context, body []byte) (any, int, *apiError)

// opResult crosses from the worker goroutine back to the request
// goroutine.
type opResult struct {
	out     any
	results int
	apiErr  *apiError
}

// op wraps an opFunc in the full request lifecycle: method check,
// admission, deadline, execution, typed response. The operation runs on
// its own goroutine so an expired deadline answers 504 immediately; the
// abandoned operation finishes against its pinned snapshot (releasing its
// inflight slot and handle reference) with nobody waiting.
func (s *Server) op(endpoint string, fn opFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		hint := s.seq.Add(1)
		observe := func(status, results int) {
			s.set.Observe(endpoint, status, results, time.Since(start), hint)
		}

		if r.Method != http.MethodPost {
			writeErr(w, &apiError{Status: http.StatusMethodNotAllowed, Code: codeMethodNotAllowed,
				Message: endpoint + " is POST-only"})
			observe(http.StatusMethodNotAllowed, 0)
			return
		}

		// Admission gates, cheapest first; denials never touch the store.
		if s.draining.Load() {
			s.set.DrainDenials.Add(hint, 1)
			writeErr(w, &apiError{Status: http.StatusServiceUnavailable, Code: codeDraining,
				Message: "server is draining", RetryAfter: 1})
			observe(http.StatusServiceUnavailable, 0)
			return
		}
		if ok, retry := s.quotas.take(clientKey(r), start); !ok {
			s.set.QuotaDenials.Add(hint, 1)
			writeErr(w, &apiError{Status: http.StatusTooManyRequests, Code: codeQuotaExhausted,
				Message: "client quota exhausted", RetryAfter: retry})
			observe(http.StatusTooManyRequests, 0)
			return
		}
		if !s.gate.tryAcquire() {
			s.set.OverloadDenials.Add(hint, 1)
			writeErr(w, &apiError{Status: http.StatusTooManyRequests, Code: codeOverloaded,
				Message: "server at max inflight", RetryAfter: 1})
			observe(http.StatusTooManyRequests, 0)
			return
		}
		s.set.Inflight.Inc()

		ctx, cancel := s.requestContext(r)
		defer cancel()

		ch := make(chan opResult, 1)
		go func() {
			defer s.set.Inflight.Dec()
			defer s.gate.release()
			body, aerr := readBody(r, s.cfg.MaxBodyBytes)
			if aerr != nil {
				ch <- opResult{apiErr: aerr}
				return
			}
			out, results, aerr := fn(ctx, body)
			ch <- opResult{out: out, results: results, apiErr: aerr}
		}()

		select {
		case res := <-ch:
			if res.apiErr != nil {
				writeErr(w, res.apiErr)
				observe(res.apiErr.Status, 0)
				return
			}
			writeJSON(w, http.StatusOK, res.out)
			observe(http.StatusOK, res.results)
		case <-ctx.Done():
			// A slow client may have the worker goroutine stalled reading
			// the request body, and net/http flushes a response only after
			// that read lets go — expire the connection's read deadline so
			// the stall breaks and the typed timeout actually reaches the
			// peer.
			http.NewResponseController(w).SetReadDeadline(time.Now()) //nolint:errcheck
			// The operation keeps running against its pinned snapshot and
			// releases its slot when it finishes; the client hears the
			// typed timeout now.
			writeErr(w, &apiError{Status: http.StatusGatewayTimeout, Code: codeDeadlineExceeded,
				Message: "request deadline exceeded"})
			observe(http.StatusGatewayTimeout, 0)
		}
	}
}

// requestContext derives the request's deadline context: deadline_ms from
// the query string, clamped to MaxDeadline, defaulting to DefaultDeadline.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultDeadline
	if v := r.URL.Query().Get("deadline_ms"); v != "" {
		ms, err := strconv.ParseInt(v, 10, 64)
		if err == nil && ms > 0 {
			d = time.Duration(ms) * time.Millisecond
		}
	}
	if d > s.cfg.MaxDeadline {
		d = s.cfg.MaxDeadline
	}
	return context.WithTimeout(r.Context(), d)
}

// acquire pins the handle's current index for one operation.
func (s *Server) acquire() (pathcache.Index, func() error, *apiError) {
	ix, release, err := s.handle.Acquire()
	if err != nil {
		return nil, nil, &apiError{Status: http.StatusServiceUnavailable, Code: codeClosed, Message: err.Error()}
	}
	return ix, release, nil
}

// finish releases the snapshot pin, folding a close error (the releaser
// may be the last reader of a swapped-out index) into the response.
func finish(out any, results int, release func() error) (any, int, *apiError) {
	if err := release(); err != nil {
		return nil, 0, mapStoreErr(err)
	}
	return out, results, nil
}

// opQuery answers /v1/query: {a, b} on 2-sided kinds (twosided, and lsm
// over a point base), {a1, a2, b} on the 3-sided kind.
func (s *Server) opQuery(ctx context.Context, body []byte) (any, int, *apiError) {
	var req queryReq
	if aerr := decodeStrict(body, &req); aerr != nil {
		return nil, 0, aerr
	}
	if aerr := ctxErr(ctx); aerr != nil {
		return nil, 0, aerr
	}
	ix, release, aerr := s.acquire()
	if aerr != nil {
		return nil, 0, aerr
	}

	var (
		pts  []pathcache.Point
		prof pathcache.IOProfile
		err  error
	)
	switch v := ix.(type) {
	case *pathcache.TwoSidedIndex:
		if aerr := req.need2Sided(); aerr != nil {
			release()
			return nil, 0, aerr
		}
		pts, prof, err = v.QueryProfile(*req.A, *req.B)
	case *pathcache.ThreeSidedIndex:
		if aerr := req.need3Sided(); aerr != nil {
			release()
			return nil, 0, aerr
		}
		pts, prof, err = v.QueryProfile(*req.A1, *req.A2, *req.B)
	case *pathcache.LSMIndex:
		if aerr := req.need2Sided(); aerr != nil {
			release()
			return nil, 0, aerr
		}
		pts, prof, err = v.Query(*req.A, *req.B)
	case *pathcache.Sharded:
		// A sharded store answers the query shape of its content kind; the
		// scatter-gather profiles sum into the response's exact I/O.
		var profs []pathcache.ShardProfile
		switch v.ContentKind() {
		case "twosided", "lsm":
			if aerr := req.need2Sided(); aerr != nil {
				release()
				return nil, 0, aerr
			}
			pts, profs, err = v.QueryProfile(*req.A, *req.B)
		case "threeside":
			if aerr := req.need3Sided(); aerr != nil {
				release()
				return nil, 0, aerr
			}
			pts, profs, err = v.QueryThreeSidedProfile(*req.A1, *req.A2, *req.B)
		default:
			release()
			return nil, 0, errUnsupported(shardedKind(v), "query")
		}
		if err != nil {
			release()
			return nil, 0, mapStoreErr(err)
		}
		resp := &queryResponse{Count: len(pts), Points: toPointsJSON(pts), IO: ioOfShards(profs)}
		return finish(resp, len(pts), release)
	default:
		release()
		return nil, 0, errUnsupported(ix.Kind(), "query")
	}
	if err != nil {
		release()
		return nil, 0, mapStoreErr(err)
	}
	resp := &queryResponse{Count: len(pts), Points: toPointsJSON(pts), IO: ioOf(prof)}
	return finish(resp, len(pts), release)
}

// shardedKind renders a sharded store's kind for error messages, e.g.
// "shard(twosided)".
func shardedKind(s *pathcache.Sharded) string {
	return fmt.Sprintf("shard(%s)", s.ContentKind())
}

// need2Sided/need3Sided enforce the query shape the kind answers.
func (q *queryReq) need2Sided() *apiError {
	if q.A == nil || q.B == nil {
		return errBadRequest("2-sided query needs a and b")
	}
	if q.A1 != nil || q.A2 != nil {
		return errBadRequest("2-sided query takes only a and b")
	}
	return nil
}

func (q *queryReq) need3Sided() *apiError {
	if q.A1 == nil || q.A2 == nil || q.B == nil {
		return errBadRequest("3-sided query needs a1, a2 and b")
	}
	if q.A != nil {
		return errBadRequest("3-sided query takes only a1, a2 and b")
	}
	if *q.A1 > *q.A2 {
		return errBadRequest("malformed range: need a1 <= a2")
	}
	return nil
}

// opWindow answers /v1/window on the window kind.
func (s *Server) opWindow(ctx context.Context, body []byte) (any, int, *apiError) {
	var req windowReq
	if aerr := decodeStrict(body, &req); aerr != nil {
		return nil, 0, aerr
	}
	if aerr := req.validate(); aerr != nil {
		return nil, 0, aerr
	}
	if aerr := ctxErr(ctx); aerr != nil {
		return nil, 0, aerr
	}
	ix, release, aerr := s.acquire()
	if aerr != nil {
		return nil, 0, aerr
	}
	var (
		pts []pathcache.Point
		io  ioJSON
		err error
	)
	switch v := ix.(type) {
	case *pathcache.WindowIndex:
		var prof pathcache.IOProfile
		pts, prof, err = v.QueryProfile(*req.X1, *req.X2, *req.Y1, *req.Y2)
		io = ioOf(prof)
	case *pathcache.Sharded:
		if v.ContentKind() != "window" {
			release()
			return nil, 0, errUnsupported(shardedKind(v), "window")
		}
		var profs []pathcache.ShardProfile
		pts, profs, err = v.WindowQueryProfile(*req.X1, *req.X2, *req.Y1, *req.Y2)
		io = ioOfShards(profs)
	default:
		release()
		return nil, 0, errUnsupported(ix.Kind(), "window")
	}
	if err != nil {
		release()
		return nil, 0, mapStoreErr(err)
	}
	resp := &queryResponse{Count: len(pts), Points: toPointsJSON(pts), IO: io}
	return finish(resp, len(pts), release)
}

// opStab answers /v1/stab on the interval kinds (segment, interval,
// stabbing, and lsm over an interval base).
func (s *Server) opStab(ctx context.Context, body []byte) (any, int, *apiError) {
	var req stabReq
	if aerr := decodeStrict(body, &req); aerr != nil {
		return nil, 0, aerr
	}
	if req.Q == nil {
		return nil, 0, errBadRequest("stab query needs q")
	}
	if aerr := ctxErr(ctx); aerr != nil {
		return nil, 0, aerr
	}
	ix, release, aerr := s.acquire()
	if aerr != nil {
		return nil, 0, aerr
	}
	var (
		ivs  []pathcache.Interval
		prof pathcache.IOProfile
		err  error
	)
	switch v := ix.(type) {
	case *pathcache.SegmentIndex:
		ivs, prof, err = v.StabProfile(*req.Q)
	case *pathcache.IntervalIndex:
		ivs, prof, err = v.StabProfile(*req.Q)
	case *pathcache.StabbingIndex:
		ivs, prof, err = v.StabProfile(*req.Q)
	case *pathcache.LSMIndex:
		ivs, prof, err = v.Stab(*req.Q)
	case *pathcache.Sharded:
		switch v.ContentKind() {
		case "segment", "interval", "stabbing", "lsm":
		default:
			release()
			return nil, 0, errUnsupported(shardedKind(v), "stab")
		}
		var profs []pathcache.ShardProfile
		ivs, profs, err = v.StabProfile(*req.Q)
		if err != nil {
			release()
			return nil, 0, mapStoreErr(err)
		}
		resp := &queryResponse{Count: len(ivs), Intervals: toIntervalsJSON(ivs), IO: ioOfShards(profs)}
		return finish(resp, len(ivs), release)
	default:
		release()
		return nil, 0, errUnsupported(ix.Kind(), "stab")
	}
	if err != nil {
		release()
		return nil, 0, mapStoreErr(err)
	}
	resp := &queryResponse{Count: len(ivs), Intervals: toIntervalsJSON(ivs), IO: ioOf(prof)}
	return finish(resp, len(ivs), release)
}

// opSearch answers /v1/search — the exact-record membership probe the
// write tier serves through its bloom filters.
func (s *Server) opSearch(ctx context.Context, body []byte) (any, int, *apiError) {
	var req recordReq
	if aerr := decodeStrict(body, &req); aerr != nil {
		return nil, 0, aerr
	}
	if aerr := req.validate(); aerr != nil {
		return nil, 0, aerr
	}
	if aerr := ctxErr(ctx); aerr != nil {
		return nil, 0, aerr
	}
	ix, release, aerr := s.acquire()
	if aerr != nil {
		return nil, 0, aerr
	}
	var (
		found bool
		prof  pathcache.IOProfile
		err   error
	)
	switch v := ix.(type) {
	case *pathcache.LSMIndex:
		found, prof, err = v.Has(req.point())
	case *pathcache.Sharded:
		if v.ContentKind() != "lsm" {
			release()
			return nil, 0, errUnsupported(shardedKind(v), "search")
		}
		found, prof, err = v.Has(req.point())
	default:
		release()
		return nil, 0, errUnsupported(ix.Kind(), "search")
	}
	if err != nil {
		release()
		return nil, 0, mapStoreErr(err)
	}
	results := 0
	if found {
		results = 1
	}
	return finish(&searchResponse{Found: found, IO: ioOf(prof)}, results, release)
}

// batchWorkers resolves a request's worker ask against the server pool
// width.
func (s *Server) batchWorkers(asked int) int {
	if asked <= 0 || asked > s.cfg.BatchWorkers {
		return s.cfg.BatchWorkers
	}
	return asked
}

// opQueryBatch fans /v1/query/batch across the worker pool via the
// index's QueryBatch.
func (s *Server) opQueryBatch(ctx context.Context, body []byte) (any, int, *apiError) {
	var req queryBatchReq
	if aerr := decodeStrict(body, &req); aerr != nil {
		return nil, 0, aerr
	}
	if aerr := s.checkBatch(len(req.Queries)); aerr != nil {
		return nil, 0, aerr
	}
	if aerr := ctxErr(ctx); aerr != nil {
		return nil, 0, aerr
	}
	ix, release, aerr := s.acquire()
	if aerr != nil {
		return nil, 0, aerr
	}
	workers := s.batchWorkers(req.Workers)

	var (
		out [][]pathcache.Point
		st  pathcache.BatchStats
		err error
	)
	switch v := ix.(type) {
	case *pathcache.TwoSidedIndex:
		qs := make([]pathcache.TwoSidedQuery, len(req.Queries))
		for i, q := range req.Queries {
			if aerr := q.need2Sided(); aerr != nil {
				release()
				return nil, 0, aerr
			}
			qs[i] = pathcache.TwoSidedQuery{A: *q.A, B: *q.B}
		}
		out, st, err = v.QueryBatch(qs, workers)
	case *pathcache.ThreeSidedIndex:
		qs := make([]pathcache.ThreeSidedQuery, len(req.Queries))
		for i, q := range req.Queries {
			if aerr := q.need3Sided(); aerr != nil {
				release()
				return nil, 0, aerr
			}
			qs[i] = pathcache.ThreeSidedQuery{A1: *q.A1, A2: *q.A2, B: *q.B}
		}
		out, st, err = v.QueryBatch(qs, workers)
	case *pathcache.LSMIndex:
		qs := make([]pathcache.TwoSidedQuery, len(req.Queries))
		for i, q := range req.Queries {
			if aerr := q.need2Sided(); aerr != nil {
				release()
				return nil, 0, aerr
			}
			qs[i] = pathcache.TwoSidedQuery{A: *q.A, B: *q.B}
		}
		out, st, err = v.QueryBatch(qs, workers)
	case *pathcache.Sharded:
		switch v.ContentKind() {
		case "twosided", "lsm":
			qs := make([]pathcache.TwoSidedQuery, len(req.Queries))
			for i, q := range req.Queries {
				if aerr := q.need2Sided(); aerr != nil {
					release()
					return nil, 0, aerr
				}
				qs[i] = pathcache.TwoSidedQuery{A: *q.A, B: *q.B}
			}
			out, st, err = v.QueryBatch(qs, workers)
		case "threeside":
			qs := make([]pathcache.ThreeSidedQuery, len(req.Queries))
			for i, q := range req.Queries {
				if aerr := q.need3Sided(); aerr != nil {
					release()
					return nil, 0, aerr
				}
				qs[i] = pathcache.ThreeSidedQuery{A1: *q.A1, A2: *q.A2, B: *q.B}
			}
			out, st, err = v.QueryThreeSidedBatch(qs, workers)
		default:
			release()
			return nil, 0, errUnsupported(shardedKind(v), "query/batch")
		}
	default:
		release()
		return nil, 0, errUnsupported(ix.Kind(), "query/batch")
	}
	if err != nil {
		release()
		return nil, 0, mapStoreErr(err)
	}
	resp := &batchResponse{Queries: st.Queries, Workers: st.Workers, Results: st.Results, IO: ioOfBatch(st)}
	resp.Points = make([][]pointJSON, len(out))
	for i, pts := range out {
		resp.Points[i] = toPointsJSON(pts)
	}
	return finish(resp, st.Results, release)
}

// opWindowBatch fans /v1/window/batch across the worker pool.
func (s *Server) opWindowBatch(ctx context.Context, body []byte) (any, int, *apiError) {
	var req windowBatchReq
	if aerr := decodeStrict(body, &req); aerr != nil {
		return nil, 0, aerr
	}
	if aerr := s.checkBatch(len(req.Queries)); aerr != nil {
		return nil, 0, aerr
	}
	if aerr := ctxErr(ctx); aerr != nil {
		return nil, 0, aerr
	}
	ix, release, aerr := s.acquire()
	if aerr != nil {
		return nil, 0, aerr
	}
	qs := make([]pathcache.WindowQuery, len(req.Queries))
	for i, q := range req.Queries {
		if aerr := q.validate(); aerr != nil {
			release()
			return nil, 0, aerr
		}
		qs[i] = pathcache.WindowQuery{X1: *q.X1, X2: *q.X2, Y1: *q.Y1, Y2: *q.Y2}
	}
	var (
		out [][]pathcache.Point
		st  pathcache.BatchStats
		err error
	)
	switch v := ix.(type) {
	case *pathcache.WindowIndex:
		out, st, err = v.QueryBatch(qs, s.batchWorkers(req.Workers))
	case *pathcache.Sharded:
		if v.ContentKind() != "window" {
			release()
			return nil, 0, errUnsupported(shardedKind(v), "window/batch")
		}
		out, st, err = v.WindowQueryBatch(qs, s.batchWorkers(req.Workers))
	default:
		release()
		return nil, 0, errUnsupported(ix.Kind(), "window/batch")
	}
	if err != nil {
		release()
		return nil, 0, mapStoreErr(err)
	}
	resp := &batchResponse{Queries: st.Queries, Workers: st.Workers, Results: st.Results, IO: ioOfBatch(st)}
	resp.Points = make([][]pointJSON, len(out))
	for i, pts := range out {
		resp.Points[i] = toPointsJSON(pts)
	}
	return finish(resp, st.Results, release)
}

// opStabBatch fans /v1/stab/batch across the worker pool.
func (s *Server) opStabBatch(ctx context.Context, body []byte) (any, int, *apiError) {
	var req stabBatchReq
	if aerr := decodeStrict(body, &req); aerr != nil {
		return nil, 0, aerr
	}
	if aerr := s.checkBatch(len(req.Qs)); aerr != nil {
		return nil, 0, aerr
	}
	if aerr := ctxErr(ctx); aerr != nil {
		return nil, 0, aerr
	}
	ix, release, aerr := s.acquire()
	if aerr != nil {
		return nil, 0, aerr
	}
	workers := s.batchWorkers(req.Workers)
	var (
		out [][]pathcache.Interval
		st  pathcache.BatchStats
		err error
	)
	switch v := ix.(type) {
	case *pathcache.SegmentIndex:
		out, st, err = v.StabBatch(req.Qs, workers)
	case *pathcache.IntervalIndex:
		out, st, err = v.StabBatch(req.Qs, workers)
	case *pathcache.StabbingIndex:
		out, st, err = v.StabBatch(req.Qs, workers)
	case *pathcache.LSMIndex:
		out, st, err = v.StabBatch(req.Qs, workers)
	case *pathcache.Sharded:
		switch v.ContentKind() {
		case "segment", "interval", "stabbing", "lsm":
		default:
			release()
			return nil, 0, errUnsupported(shardedKind(v), "stab/batch")
		}
		out, st, err = v.StabBatch(req.Qs, workers)
	default:
		release()
		return nil, 0, errUnsupported(ix.Kind(), "stab/batch")
	}
	if err != nil {
		release()
		return nil, 0, mapStoreErr(err)
	}
	resp := &batchResponse{Queries: st.Queries, Workers: st.Workers, Results: st.Results, IO: ioOfBatch(st)}
	resp.Intervals = make([][]intervalJSON, len(out))
	for i, ivs := range out {
		resp.Intervals[i] = toIntervalsJSON(ivs)
	}
	return finish(resp, st.Results, release)
}

func (s *Server) checkBatch(n int) *apiError {
	if n == 0 {
		return errBadRequest("batch needs at least one query")
	}
	if n > s.cfg.MaxBatch {
		return &apiError{Status: http.StatusBadRequest, Code: codeBatchTooLarge,
			Message: fmt.Sprintf("batch of %d exceeds limit %d", n, s.cfg.MaxBatch)}
	}
	return nil
}

// writeTier is the write-path seam /v1/insert through /v1/compact need.
// The LSM tier satisfies it directly; a sharded store of lsm shards
// satisfies it by routing each record to its owning shard.
type writeTier interface {
	Insert(pathcache.Point) (pathcache.IOProfile, error)
	Delete(pathcache.Point) (pathcache.IOProfile, error)
	Flush() error
	Compact() error
	Len() int
}

// writable pins the index and requires a write tier: the lsm kind, or a
// sharded store whose shards are lsm.
func (s *Server) writable(op string) (writeTier, func() error, *apiError) {
	ix, release, aerr := s.acquire()
	if aerr != nil {
		return nil, nil, aerr
	}
	switch v := ix.(type) {
	case *pathcache.LSMIndex:
		return v, release, nil
	case *pathcache.Sharded:
		if v.ContentKind() == "lsm" {
			return v, release, nil
		}
		release()
		return nil, nil, &apiError{Status: http.StatusBadRequest, Code: codeReadOnlyKind,
			Message: fmt.Sprintf("index kind %q is static; %s needs the lsm write tier", shardedKind(v), op)}
	default:
		release()
		return nil, nil, &apiError{Status: http.StatusBadRequest, Code: codeReadOnlyKind,
			Message: fmt.Sprintf("index kind %q is static; %s needs the lsm write tier", ix.Kind(), op)}
	}
}

// opInsert appends one record through the write tier's WAL.
func (s *Server) opInsert(ctx context.Context, body []byte) (any, int, *apiError) {
	return s.update(ctx, body, "insert", writeTier.Insert)
}

// opDelete tombstones one record.
func (s *Server) opDelete(ctx context.Context, body []byte) (any, int, *apiError) {
	return s.update(ctx, body, "delete", writeTier.Delete)
}

func (s *Server) update(ctx context.Context, body []byte, op string,
	apply func(writeTier, pathcache.Point) (pathcache.IOProfile, error)) (any, int, *apiError) {
	var req recordReq
	if aerr := decodeStrict(body, &req); aerr != nil {
		return nil, 0, aerr
	}
	if aerr := req.validate(); aerr != nil {
		return nil, 0, aerr
	}
	if aerr := ctxErr(ctx); aerr != nil {
		return nil, 0, aerr
	}
	w, release, aerr := s.writable(op)
	if aerr != nil {
		return nil, 0, aerr
	}
	prof, err := apply(w, req.point())
	if err != nil {
		release()
		return nil, 0, mapStoreErr(err)
	}
	return finish(&updateResponse{Records: w.Len(), IO: ioOf(prof)}, 1, release)
}

// opFlush seals the memtable now.
func (s *Server) opFlush(ctx context.Context, body []byte) (any, int, *apiError) {
	if aerr := decodeStrict(body, &struct{}{}); aerr != nil {
		return nil, 0, aerr
	}
	if aerr := ctxErr(ctx); aerr != nil {
		return nil, 0, aerr
	}
	w, release, aerr := s.writable("flush")
	if aerr != nil {
		return nil, 0, aerr
	}
	if err := w.Flush(); err != nil {
		release()
		return nil, 0, mapStoreErr(err)
	}
	return finish(&okResponse{OK: true}, 0, release)
}

// opCompact rebuilds the write tier's levels: synchronously by default, or
// as a racing background compaction over a copy-on-write level snapshot
// ({"background": true}) that never blocks readers. A background attempt
// that loses the race with a concurrent flush discards its work (counted
// as stale in /varz) — the state that superseded it is already newer.
func (s *Server) opCompact(ctx context.Context, body []byte) (any, int, *apiError) {
	var req compactReq
	if aerr := decodeStrict(body, &req); aerr != nil {
		return nil, 0, aerr
	}
	if aerr := ctxErr(ctx); aerr != nil {
		return nil, 0, aerr
	}
	w, release, aerr := s.writable("compact")
	if aerr != nil {
		return nil, 0, aerr
	}
	if !req.Background {
		if err := w.Compact(); err != nil {
			release()
			return nil, 0, mapStoreErr(err)
		}
		return finish(&okResponse{OK: true}, 0, release)
	}
	done := compactBackground(w)
	go func() {
		err := <-done
		switch {
		case err == nil:
			s.compactOK.Add(1)
		case err == pathcache.ErrStaleCompaction:
			s.compactStale.Add(1)
		default:
			s.compactFail.Add(1)
		}
		// The snapshot pin outlives the request: the compaction reads the
		// pinned index, so it is released only here.
		release() //nolint:errcheck // surfaced via compactFail on next request
	}()
	return &okResponse{OK: true, Background: true}, 0, nil
}

// compactBackground starts a non-blocking compaction. The LSM tier races
// over its own copy-on-write level snapshot; a sharded store compacts
// shard by shard on a goroutine — its readers run over router snapshots
// and never block on the maintenance lock.
func compactBackground(w writeTier) <-chan error {
	if lsm, ok := w.(*pathcache.LSMIndex); ok {
		return lsm.CompactBackground()
	}
	done := make(chan error, 1)
	go func() { done <- w.Compact() }()
	return done
}

// opReload hot-swaps the served index: reopen the handle's path and
// install the fresh snapshot; readers in flight finish on the old one.
// Against a sharded store, {"shard": i} reloads only shard i — the shard's
// own hot-swap handle installs the fresh file while pinned readers finish
// on the snapshot they hold.
func (s *Server) opReload(ctx context.Context, body []byte) (any, int, *apiError) {
	var req reloadReq
	if aerr := decodeStrict(body, &req); aerr != nil {
		return nil, 0, aerr
	}
	if aerr := ctxErr(ctx); aerr != nil {
		return nil, 0, aerr
	}
	if req.Shard == nil {
		if err := s.handle.Reload(); err != nil {
			return nil, 0, &apiError{Status: http.StatusInternalServerError, Code: codeReloadFailed, Message: err.Error()}
		}
		return &okResponse{OK: true}, 0, nil
	}
	ix, release, aerr := s.acquire()
	if aerr != nil {
		return nil, 0, aerr
	}
	sh, ok := ix.(*pathcache.Sharded)
	if !ok {
		release()
		return nil, 0, errBadRequest("index kind %q has no shards to reload", ix.Kind())
	}
	if *req.Shard < 0 || *req.Shard >= sh.NumShards() {
		release()
		return nil, 0, errBadRequest("no shard %d (store has %d)", *req.Shard, sh.NumShards())
	}
	if err := sh.ReloadShard(*req.Shard); err != nil {
		release()
		return nil, 0, &apiError{Status: http.StatusInternalServerError, Code: codeReloadFailed, Message: err.Error()}
	}
	return finish(&okResponse{OK: true}, 0, release)
}

// ctxErr converts an already-expired request context into the typed
// deadline error — a cheap pre-flight so expired requests skip the store.
func ctxErr(ctx context.Context) *apiError {
	if ctx.Err() != nil {
		return &apiError{Status: http.StatusGatewayTimeout, Code: codeDeadlineExceeded,
			Message: "request deadline exceeded"}
	}
	return nil
}

// handleHealthz is the liveness probe: 200 while serving, 503 once
// draining.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

// varz is the human-oriented JSON state dump.
type varz struct {
	Kind        string            `json:"kind"`
	ContentKind string            `json:"content_kind,omitempty"` // shard content, for sharded stores
	Records     int               `json:"records"`
	Pages       int               `json:"pages"`
	Stats       pathcache.Stats   `json:"stats"`
	Generation  uint64            `json:"generation"`
	Draining    bool              `json:"draining"`
	UptimeMS    int64             `json:"uptime_ms"`
	Serve       obs.ServeSnapshot `json:"serve"`
	Compact     compactVarz       `json:"compactions"`
	ShardEpoch  uint64            `json:"shard_epoch,omitempty"`
	Shards      []shardVarz       `json:"shards,omitempty"`
}

// shardVarz is one shard's row in /varz: its file, size and key range.
type shardVarz struct {
	Shard   int    `json:"shard"`
	File    string `json:"file"`
	Records int    `json:"records"`
	Pages   int    `json:"pages"`
	Lo      int64  `json:"lo"`
	Hi      int64  `json:"hi"`
}

type compactVarz struct {
	OK    int64 `json:"ok"`
	Stale int64 `json:"stale"`
	Fail  int64 `json:"fail"`
}

func (s *Server) handleVarz(w http.ResponseWriter, r *http.Request) {
	ix, release, err := s.handle.Acquire()
	if err != nil {
		writeErr(w, &apiError{Status: http.StatusServiceUnavailable, Code: codeClosed, Message: err.Error()})
		return
	}
	v := varz{
		Kind:       ix.Kind(),
		Records:    ix.Len(),
		Pages:      ix.Pages(),
		Stats:      ix.Stats(),
		Generation: s.handle.Generation(),
		Draining:   s.draining.Load(),
		UptimeMS:   time.Since(s.start).Milliseconds(),
		Serve:      s.set.Snapshot(),
		Compact: compactVarz{
			OK:    s.compactOK.Load(),
			Stale: s.compactStale.Load(),
			Fail:  s.compactFail.Load(),
		},
	}
	if sh, ok := ix.(*pathcache.Sharded); ok {
		v.ContentKind = sh.ContentKind()
		v.ShardEpoch = sh.Epoch()
		for _, info := range sh.Shards() {
			v.Shards = append(v.Shards, shardVarz{
				Shard: info.Shard, File: info.File,
				Records: info.Len, Pages: info.Pages,
				Lo: info.Lo, Hi: info.Hi,
			})
		}
	}
	if err := release(); err != nil {
		writeErr(w, mapStoreErr(err))
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// handleMetrics writes the exposition-format dump: serve-side series
// first, then every index-side (kind, op, worker) series the store's obs
// registry recorded.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	ix, release, err := s.handle.Acquire()
	if err != nil {
		writeErr(w, &apiError{Status: http.StatusServiceUnavailable, Code: codeClosed, Message: err.Error()})
		return
	}
	m := ix.Metrics()
	if err := release(); err != nil {
		writeErr(w, mapStoreErr(err))
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	WriteServeMetrics(w, s.set.Snapshot())
	WriteIndexMetrics(w, m)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v) //nolint:errcheck // a failed response write has no one to tell
}

func writeErr(w http.ResponseWriter, e *apiError) {
	if e.RetryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(e.RetryAfter))
	}
	writeJSON(w, e.Status, e)
}
