package server

import (
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pathcache"
	"pathcache/internal/workload"
)

// Soak: concurrent queries, inserts, deletes, flushes and racing
// background compactions against one served LSM index — run under -race
// by `make test`. The oracle cross-checks every query response against
// the acknowledged write history: zero wrong answers, zero dropped
// requests, under every interleaving the scheduler finds.

// soakOracle orders writes and queries on one logical clock. Each point
// carries four stamps: insert submitted/acked, delete submitted/acked.
// A query spanning [start, end) must then see:
//   - every point insert-ACKED before start whose delete was never even
//     SUBMITTED before end (it was provably live for the whole query);
//   - no point delete-acked before start;
//   - nothing that was never submitted at all.
type soakOracle struct {
	clock atomic.Uint64

	mu     sync.Mutex
	points map[pathcache.Point]*soakStamps
}

type soakStamps struct {
	insSubmit, insAck, delSubmit, delAck uint64
}

func newSoakOracle() *soakOracle {
	return &soakOracle{points: make(map[pathcache.Point]*soakStamps)}
}

func (o *soakOracle) tick() uint64 { return o.clock.Add(1) }

func (o *soakOracle) stamp(p pathcache.Point, set func(*soakStamps, uint64)) {
	t := o.tick()
	o.mu.Lock()
	s := o.points[p]
	if s == nil {
		s = &soakStamps{}
		o.points[p] = s
	}
	set(s, t)
	o.mu.Unlock()
}

// check validates one 2-sided query answer observed over [start, end).
func (o *soakOracle) check(a, b int64, got []pathcache.Point, start, end uint64) error {
	have := make(map[pathcache.Point]bool, len(got))
	for _, p := range got {
		if p.X < a || p.Y < b {
			return fmt.Errorf("query {a:%d b:%d} returned out-of-range point %+v", a, b, p)
		}
		have[p] = true
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, p := range got {
		s := o.points[p]
		if s == nil || s.insSubmit == 0 {
			return fmt.Errorf("query returned phantom point %+v (insert never submitted)", p)
		}
		if s.delAck != 0 && s.delAck < start {
			return fmt.Errorf("query returned point %+v whose delete was acked before the query began", p)
		}
	}
	for p, s := range o.points {
		if p.X < a || p.Y < b {
			continue
		}
		mustSee := s.insAck != 0 && s.insAck < start && (s.delSubmit == 0 || s.delSubmit > end)
		if mustSee && !have[p] {
			return fmt.Errorf("query {a:%d b:%d} dropped point %+v (insert acked before query, never deleted)", a, b, p)
		}
	}
	return nil
}

// live returns the exact point set at quiescence (every submitted op acked).
func (o *soakOracle) live() map[pathcache.Point]bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make(map[pathcache.Point]bool)
	for p, s := range o.points {
		if s.insAck != 0 && s.delAck == 0 {
			out[p] = true
		}
	}
	return out
}

func TestServeSoak(t *testing.T) {
	const (
		domain   = 10_000
		duration = 1200 * time.Millisecond
		writers  = 2
		readers  = 4
	)
	// Start empty so the oracle owns the full history of every live point.
	path := filepath.Join(t.TempDir(), "soak.pc")
	opts := fixtureOpts(path)
	opts.MemtableEntries = 32
	empty, err := pathcache.BuildDynamic("twosided", nil, opts)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if err := empty.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	ts := startServer(t, path, Config{})
	oracle := newSoakOracle()

	stop := make(chan struct{})
	failures := make(chan string, 128)
	fail := func(format string, args ...any) {
		select {
		case failures <- fmt.Sprintf(format, args...):
		default:
		}
	}
	var wg sync.WaitGroup
	var requests, denials atomic.Int64

	// Writers: mostly insert fresh points (collision-free IDs via strided
	// PointStream), sometimes delete one of their own acked points.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			stream := workload.NewPointStream(domain, 42, w, writers)
			var owned []pathcache.Point
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				requests.Add(1)
				if i%4 == 3 && len(owned) > 0 {
					p := owned[len(owned)-1]
					owned = owned[:len(owned)-1]
					oracle.stamp(p, func(s *soakStamps, t uint64) { s.delSubmit = t })
					status, body := ts.post(t, "/v1/delete", map[string]any{"x": p.X, "y": p.Y, "id": p.ID})
					if status != 200 {
						denials.Add(1)
						fail("delete %+v: status %d body %v", p, status, body)
						return
					}
					oracle.stamp(p, func(s *soakStamps, t uint64) { s.delAck = t })
					continue
				}
				x, y, id := stream.Next()
				p := pathcache.Point{X: x, Y: y, ID: id}
				oracle.stamp(p, func(s *soakStamps, t uint64) { s.insSubmit = t })
				status, body := ts.post(t, "/v1/insert", map[string]any{"x": x, "y": y, "id": id})
				if status != 200 {
					denials.Add(1)
					fail("insert %+v: status %d body %v", p, status, body)
					return
				}
				oracle.stamp(p, func(s *soakStamps, t uint64) { s.insAck = t })
				owned = append(owned, p)
			}
		}(w)
	}

	// Readers: uniform 2-sided queries, every answer checked against the
	// oracle's stamp order.
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			stream := workload.NewTwoSidedStream(workload.MixUniform, domain, 0.1, 77, r)
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := stream.Next()
				requests.Add(1)
				start := oracle.tick()
				status, body := ts.post(t, "/v1/query", map[string]any{"a": q.A, "b": q.B})
				end := oracle.tick()
				if status != 200 {
					denials.Add(1)
					fail("query %+v: status %d body %v", q, status, body)
					return
				}
				pts := decodePoints(body)
				if err := oracle.check(q.A, q.B, pts, start, end); err != nil {
					fail("%v", err)
					return
				}
			}
		}(r)
	}

	// Maintenance: explicit flushes and racing background compactions.
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(60 * time.Millisecond)
		defer tick.Stop()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-tick.C:
			}
			requests.Add(1)
			if i%3 == 2 {
				if status, body := ts.post(t, "/v1/compact", map[string]any{"background": true}); status != 200 {
					denials.Add(1)
					fail("background compact: status %d body %v", status, body)
					return
				}
			} else {
				if status, body := ts.post(t, "/v1/flush", nil); status != 200 {
					denials.Add(1)
					fail("flush: status %d body %v", status, body)
					return
				}
			}
		}
	}()

	time.Sleep(duration)
	close(stop)
	wg.Wait()
	close(failures)
	for f := range failures {
		t.Error(f)
	}
	if t.Failed() {
		return
	}
	if denials.Load() != 0 {
		t.Fatalf("%d requests dropped of %d", denials.Load(), requests.Load())
	}

	// Quiescent exactness: the full-domain query returns precisely the
	// acked-live set.
	want := oracle.live()
	status, body := ts.post(t, "/v1/query", map[string]any{"a": 0, "b": 0})
	if status != 200 {
		t.Fatalf("final query: status %d body %v", status, body)
	}
	got := decodePoints(body)
	if len(got) != len(want) {
		t.Fatalf("final live set: %d points, oracle has %d", len(got), len(want))
	}
	for _, p := range got {
		if !want[p] {
			t.Fatalf("final live set contains %+v which the oracle does not", p)
		}
	}
	t.Logf("soak: %d requests, %d live points, compactions ok=%d stale=%d",
		requests.Load(), len(want), ts.srv.compactOK.Load(), ts.srv.compactStale.Load())
}

// decodePoints pulls the points array out of a decoded query response.
func decodePoints(body map[string]any) []pathcache.Point {
	raw, _ := body["points"].([]any)
	pts := make([]pathcache.Point, 0, len(raw))
	for _, v := range raw {
		m, _ := v.(map[string]any)
		x, _ := m["x"].(float64)
		y, _ := m["y"].(float64)
		id, _ := m["id"].(float64)
		pts = append(pts, pathcache.Point{X: int64(x), Y: int64(y), ID: uint64(id)})
	}
	return pts
}
