package server

import (
	"math"
	"net"
	"net/http"
	"sync"
	"time"
)

// Request admission: before any store work, a request passes three gates —
// the drain flag, its client's token bucket, and the server-wide
// max-inflight ceiling. Every denial is a typed 4xx/5xx with Retry-After
// where retrying makes sense, and every denial is counted in the serve
// metrics, so saturation is observable rather than silent.

// clientKey identifies the quota principal of a request: the X-Client
// header when the caller names itself, otherwise the remote IP (so one
// misbehaving host cannot starve the rest by default).
func clientKey(r *http.Request) string {
	if c := r.Header.Get("X-Client"); c != "" {
		return c
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// tokenBucket is one client's quota state: a continuously refilling bucket
// of rate tokens/second up to burst. Lazy refill on take keeps the state
// two floats and a timestamp.
type tokenBucket struct {
	tokens float64
	last   time.Time
}

// quotaTable maps client keys to token buckets. rate <= 0 disables
// quotas entirely (every take succeeds).
type quotaTable struct {
	rate  float64
	burst float64

	mu      sync.Mutex
	buckets map[string]*tokenBucket
}

func newQuotaTable(rate, burst float64) *quotaTable {
	if burst < 1 {
		burst = 1
	}
	return &quotaTable{rate: rate, burst: burst, buckets: make(map[string]*tokenBucket)}
}

// take spends one token from client's bucket. On an empty bucket it
// reports the wait until the next token accrues, rounded up to whole
// seconds for the Retry-After header (minimum 1).
func (q *quotaTable) take(client string, now time.Time) (ok bool, retryAfter int) {
	if q == nil || q.rate <= 0 {
		return true, 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	b := q.buckets[client]
	if b == nil {
		b = &tokenBucket{tokens: q.burst, last: now}
		q.buckets[client] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(q.burst, b.tokens+dt*q.rate)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := (1 - b.tokens) / q.rate
	retryAfter = int(math.Ceil(wait))
	if retryAfter < 1 {
		retryAfter = 1
	}
	return false, retryAfter
}

// inflightGate is the server-wide concurrency ceiling: a semaphore sized
// at Config.MaxInflight. A nil gate (no configured ceiling) admits
// everything.
type inflightGate struct {
	sem chan struct{}
}

func newInflightGate(max int) *inflightGate {
	if max <= 0 {
		return nil
	}
	return &inflightGate{sem: make(chan struct{}, max)}
}

// tryAcquire takes a slot without blocking — an overloaded server sheds
// load with 429 rather than queueing unboundedly.
func (g *inflightGate) tryAcquire() bool {
	if g == nil {
		return true
	}
	select {
	case g.sem <- struct{}{}:
		return true
	default:
		return false
	}
}

func (g *inflightGate) release() {
	if g == nil {
		return
	}
	<-g.sem
}
