package server

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// Endpoint basics: every kind answers its own query shape with exact
// results and exact per-op I/O attribution, and every mismatch between a
// request and the served kind is a typed 400 — decided without touching
// the store.

func TestServeQueryTwoSided(t *testing.T) {
	ts := startServer(t, buildKind(t, t.TempDir(), "twosided"), Config{})
	status, body := ts.post(t, "/v1/query", map[string]any{"a": 150, "b": 150})
	if status != 200 {
		t.Fatalf("status = %d, body %v", status, body)
	}
	// Diagonal fixture: {x >= 150, y >= 150} over 200 points hits 50.
	if got := count(t, body); got != 50 {
		t.Fatalf("count = %d, want 50", got)
	}
	io, ok := body["io"].(map[string]any)
	if !ok {
		t.Fatalf("response has no io block: %v", body)
	}
	if reads, _ := io["reads"].(float64); reads <= 0 {
		t.Fatalf("io.reads = %v, want > 0 (exact op-scoped attribution)", io["reads"])
	}
}

func TestServeQueryThreeSided(t *testing.T) {
	ts := startServer(t, buildKind(t, t.TempDir(), "threeside"), Config{})
	status, body := ts.post(t, "/v1/query", map[string]any{"a1": 50, "a2": 99, "b": 0})
	if status != 200 {
		t.Fatalf("status = %d, body %v", status, body)
	}
	// {50 <= x <= 99, y >= 0} on the diagonal hits exactly 50 points.
	if got := count(t, body); got != 50 {
		t.Fatalf("count = %d, want 50", got)
	}
}

func TestServeWindow(t *testing.T) {
	ts := startServer(t, buildKind(t, t.TempDir(), "window"), Config{})
	status, body := ts.post(t, "/v1/window", map[string]any{"x1": 10, "x2": 19, "y1": 0, "y2": 199})
	if status != 200 {
		t.Fatalf("status = %d, body %v", status, body)
	}
	if got := count(t, body); got != 10 {
		t.Fatalf("count = %d, want 10", got)
	}
}

func TestServeStabKinds(t *testing.T) {
	for _, kind := range []string{"segment", "interval", "stabbing"} {
		t.Run(kind, func(t *testing.T) {
			ts := startServer(t, buildKind(t, t.TempDir(), kind), Config{})
			status, body := ts.post(t, "/v1/stab", map[string]any{"q": 50})
			if status != 200 {
				t.Fatalf("status = %d, body %v", status, body)
			}
			// Intervals [i, i+10]: q=50 is inside [40,50] … [50,60] — 11 of them.
			if got := count(t, body); got != 11 {
				t.Fatalf("count = %d, want 11", got)
			}
		})
	}
}

func TestServeLSMReadPath(t *testing.T) {
	ts := startServer(t, buildKind(t, t.TempDir(), "lsm"), Config{})

	status, body := ts.post(t, "/v1/query", map[string]any{"a": 150, "b": 150})
	if status != 200 {
		t.Fatalf("query status = %d, body %v", status, body)
	}
	if got := count(t, body); got != 50 {
		t.Fatalf("query count = %d, want 50", got)
	}

	status, body = ts.post(t, "/v1/search", map[string]any{"x": 7, "y": 7, "id": 8})
	if status != 200 {
		t.Fatalf("search status = %d, body %v", status, body)
	}
	if found, _ := body["found"].(bool); !found {
		t.Fatalf("search: fixture record not found: %v", body)
	}
	status, body = ts.post(t, "/v1/search", map[string]any{"x": 7, "y": 7, "id": 9999})
	if status != 200 {
		t.Fatalf("negative search status = %d, body %v", status, body)
	}
	if found, _ := body["found"].(bool); found {
		t.Fatalf("negative search: phantom record found: %v", body)
	}
}

func TestServeLSMWritePath(t *testing.T) {
	ts := startServer(t, buildKind(t, t.TempDir(), "lsm"), Config{})

	status, body := ts.post(t, "/v1/insert", map[string]any{"x": 1000, "y": 1000, "id": 9001})
	if status != 200 {
		t.Fatalf("insert status = %d, body %v", status, body)
	}
	if recs, _ := body["records"].(float64); recs != 201 {
		t.Fatalf("records after insert = %v, want 201", body["records"])
	}

	status, body = ts.post(t, "/v1/query", map[string]any{"a": 1000, "b": 1000})
	if status != 200 || count(t, body) != 1 {
		t.Fatalf("query after insert: status %d count %v", status, body)
	}

	status, body = ts.post(t, "/v1/flush", nil)
	if status != 200 {
		t.Fatalf("flush status = %d, body %v", status, body)
	}
	status, body = ts.post(t, "/v1/delete", map[string]any{"x": 1000, "y": 1000, "id": 9001})
	if status != 200 {
		t.Fatalf("delete status = %d, body %v", status, body)
	}
	status, body = ts.post(t, "/v1/query", map[string]any{"a": 1000, "b": 1000})
	if status != 200 || count(t, body) != 0 {
		t.Fatalf("query after delete: status %d body %v", status, body)
	}

	status, body = ts.post(t, "/v1/compact", nil)
	if status != 200 {
		t.Fatalf("compact status = %d, body %v", status, body)
	}
	status, body = ts.post(t, "/v1/query", map[string]any{"a": 0, "b": 0})
	if status != 200 || count(t, body) != 200 {
		t.Fatalf("query after compact: status %d count %v", status, body)
	}
}

func TestServeBatchEndpoints(t *testing.T) {
	t.Run("query", func(t *testing.T) {
		ts := startServer(t, buildKind(t, t.TempDir(), "twosided"), Config{BatchWorkers: 4})
		qs := make([]map[string]any, 16)
		for i := range qs {
			qs[i] = map[string]any{"a": i * 10, "b": i * 10}
		}
		status, body := ts.post(t, "/v1/query/batch", map[string]any{"queries": qs, "workers": 4})
		if status != 200 {
			t.Fatalf("status = %d, body %v", status, body)
		}
		// Query i returns 200 - 10i points; sum over i=0..15 is 2000.
		if results, _ := body["results"].(float64); results != 2000 {
			t.Fatalf("results = %v, want 2000", body["results"])
		}
		if workers, _ := body["workers"].(float64); workers != 4 {
			t.Fatalf("workers = %v, want 4", body["workers"])
		}
	})
	t.Run("window", func(t *testing.T) {
		ts := startServer(t, buildKind(t, t.TempDir(), "window"), Config{BatchWorkers: 2})
		qs := []map[string]any{
			{"x1": 0, "x2": 9, "y1": 0, "y2": 199},
			{"x1": 100, "x2": 119, "y1": 0, "y2": 199},
		}
		status, body := ts.post(t, "/v1/window/batch", map[string]any{"queries": qs})
		if status != 200 {
			t.Fatalf("status = %d, body %v", status, body)
		}
		if results, _ := body["results"].(float64); results != 30 {
			t.Fatalf("results = %v, want 30", body["results"])
		}
	})
	t.Run("stab", func(t *testing.T) {
		ts := startServer(t, buildKind(t, t.TempDir(), "segment"), Config{BatchWorkers: 2})
		status, body := ts.post(t, "/v1/stab/batch", map[string]any{"qs": []int64{50, 60, 5}})
		if status != 200 {
			t.Fatalf("status = %d, body %v", status, body)
		}
		// 11 + 11 + 6 results ([0,10] … [5,15] contain q=5).
		if results, _ := body["results"].(float64); results != 28 {
			t.Fatalf("results = %v, want 28", body["results"])
		}
	})
}

// TestServeErrorMapping is the wire-contract table: one row per failure
// mode, each asserting (status, code) — and by construction none of these
// requests can return a wrong answer, because none returns 200.
func TestServeErrorMapping(t *testing.T) {
	dir := t.TempDir()
	twosided := startServer(t, buildKind(t, dir, "twosided"), Config{MaxBatch: 4})
	threeside := startServer(t, buildKind(t, dir, "threeside"), Config{})
	window := startServer(t, buildKind(t, dir, "window"), Config{})

	cases := []struct {
		name   string
		ts     *testServer
		path   string
		body   any
		status int
		code   string
	}{
		{"malformed json", twosided, "/v1/query", `{"a": 1,`, 400, "bad_request"},
		{"unknown field", twosided, "/v1/query", `{"a": 1, "b": 2, "frob": 3}`, 400, "bad_request"},
		{"trailing garbage", twosided, "/v1/query", `{"a": 1, "b": 2} {"x": 1}`, 400, "bad_request"},
		{"missing field", twosided, "/v1/query", `{"a": 1}`, 400, "bad_request"},
		{"wrong shape for kind", twosided, "/v1/query", `{"a1": 1, "a2": 2, "b": 3}`, 400, "bad_request"},
		{"window on twosided", twosided, "/v1/window", map[string]any{"x1": 0, "x2": 1, "y1": 0, "y2": 1}, 400, "unsupported_shape"},
		{"query on window kind", window, "/v1/query", map[string]any{"a": 1, "b": 2}, 400, "unsupported_shape"},
		{"stab on twosided", twosided, "/v1/stab", map[string]any{"q": 1}, 400, "unsupported_shape"},
		{"search on static kind", twosided, "/v1/search", map[string]any{"x": 1, "y": 1, "id": 1}, 400, "unsupported_shape"},
		{"insert on static kind", twosided, "/v1/insert", map[string]any{"x": 1, "y": 1, "id": 1}, 400, "read_only_kind"},
		{"flush on static kind", twosided, "/v1/flush", nil, 400, "read_only_kind"},
		{"compact on static kind", twosided, "/v1/compact", nil, 400, "read_only_kind"},
		{"malformed window range", window, "/v1/window", map[string]any{"x1": 9, "x2": 0, "y1": 0, "y2": 1}, 400, "bad_request"},
		{"malformed 3-sided range", threeside, "/v1/query", `{"a1": 9, "a2": 0, "b": 1}`, 400, "bad_request"},
		{"2-sided shape on threeside", threeside, "/v1/query", `{"a": 1, "b": 2}`, 400, "bad_request"},
		{"empty batch", twosided, "/v1/query/batch", map[string]any{"queries": []any{}}, 400, "bad_request"},
		{"oversized batch", twosided, "/v1/query/batch",
			map[string]any{"queries": []map[string]any{{"a": 1, "b": 1}, {"a": 1, "b": 1}, {"a": 1, "b": 1}, {"a": 1, "b": 1}, {"a": 1, "b": 1}}},
			400, "batch_too_large"},
		{"unknown route", twosided, "/v1/frobnicate", nil, 404, "not_found"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body := tc.ts.post(t, tc.path, tc.body)
			wantCode(t, status, body, tc.status, tc.code)
		})
	}

	t.Run("method not allowed", func(t *testing.T) {
		status, body := twosided.get(t, "/v1/query")
		if status != 405 {
			t.Fatalf("GET /v1/query = %d %s, want 405", status, body)
		}
	})
}

func TestServeOversizedBody(t *testing.T) {
	ts := startServer(t, buildKind(t, t.TempDir(), "twosided"), Config{MaxBodyBytes: 64})
	huge := `{"a": 1, "b": 2,` + strings.Repeat(" ", 100) + `}`
	status, body := ts.post(t, "/v1/query", huge)
	wantCode(t, status, body, 400, "bad_request")
}

func TestServeHealthzAndVarz(t *testing.T) {
	ts := startServer(t, buildKind(t, t.TempDir(), "lsm"), Config{})

	status, raw := ts.get(t, "/healthz")
	if status != 200 || !bytes.Contains(raw, []byte("ok")) {
		t.Fatalf("healthz = %d %q", status, raw)
	}

	ts.post(t, "/v1/query", map[string]any{"a": 0, "b": 0})
	status, raw = ts.get(t, "/varz")
	if status != 200 {
		t.Fatalf("varz = %d %s", status, raw)
	}
	var v struct {
		Kind    string `json:"kind"`
		Records int    `json:"records"`
		Serve   struct {
			Endpoints []struct {
				Endpoint string `json:"Endpoint"`
				Requests int64  `json:"Requests"`
			} `json:"Endpoints"`
		} `json:"serve"`
	}
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("varz decode: %v\n%s", err, raw)
	}
	if v.Kind != "lsm" || v.Records != 200 {
		t.Fatalf("varz kind=%q records=%d, want lsm/200", v.Kind, v.Records)
	}
	found := false
	for _, e := range v.Serve.Endpoints {
		if e.Endpoint == "query" && e.Requests >= 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("varz missing query endpoint series: %s", raw)
	}
}

func TestServeMetricsExposition(t *testing.T) {
	ts := startServer(t, buildKind(t, t.TempDir(), "twosided"), Config{})
	ts.post(t, "/v1/query", map[string]any{"a": 0, "b": 0})

	status, raw := ts.get(t, "/metrics")
	if status != 200 {
		t.Fatalf("metrics = %d", status)
	}
	for _, want := range []string{
		`pcserve_requests_total{endpoint="query"} 1`,
		"pcserve_quota_denials_total 0",
		"pcserve_inflight 0",
		`pathcache_op_ops_total{kind="twosided",op="query",worker="serial"} 1`,
		`pathcache_op_reads_sum{kind="twosided",op="query",worker="serial"}`,
		`pathcache_op_bound_ratio_max{kind="twosided",op="query",worker="serial"}`,
	} {
		if !bytes.Contains(raw, []byte(want)) {
			t.Errorf("metrics missing %q:\n%s", want, raw)
		}
	}
}
