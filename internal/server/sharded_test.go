package server

import (
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pathcache"
)

// The server must serve a sharded store transparently: the same wire
// protocol, the same typed errors, with scatter-gather underneath and the
// per-shard admin surface (shard reload, shard rows in /varz, shard-tagged
// series in /metrics) on top.

// buildShardedKind persists a small sharded store of the named kind under
// dir and returns its directory path.
func buildShardedKind(t testing.TB, dir, kind string, shards int) string {
	t.Helper()
	store := filepath.Join(dir, kind+".shards")
	opts := &pathcache.Options{PageSize: 512, BufferPoolPages: 16}
	plan := pathcache.ShardPlan{Shards: shards, Scheme: pathcache.SchemeSegmented}
	var (
		s   *pathcache.Sharded
		err error
	)
	switch kind {
	case "twosided", "threeside", "window":
		s, err = pathcache.BuildShardedPoints(store, kind, fixturePoints(200), plan, opts)
	case "stabbing":
		s, err = pathcache.BuildShardedIntervals(store, kind, fixtureIntervals(100), plan, opts)
	case "lsm":
		opts.MemtableEntries = 32
		s, err = pathcache.BuildShardedPoints(store, kind, fixturePoints(200), plan, opts)
	default:
		t.Fatalf("buildShardedKind: unknown kind %q", kind)
	}
	if err != nil {
		t.Fatalf("build sharded %s: %v", kind, err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close sharded %s: %v", kind, err)
	}
	return store
}

// TestServeSharded runs the read path, the admin surface and the typed
// refusals against a sharded static store.
func TestServeSharded(t *testing.T) {
	store := buildShardedKind(t, t.TempDir(), "twosided", 3)
	ts := startServer(t, store, Config{})

	// The diagonal fixture: {x >= a, y >= b} returns 200 - max(a, b).
	status, body := ts.post(t, "/v1/query", map[string]any{"a": 150, "b": 0})
	if status != http.StatusOK || count(t, body) != 50 {
		t.Fatalf("query: status=%d body=%v, want 50 points", status, body)
	}
	// A query crossing every shard still merges exactly.
	status, body = ts.post(t, "/v1/query", map[string]any{"a": 0, "b": 0})
	if status != http.StatusOK || count(t, body) != 200 {
		t.Fatalf("full query: status=%d body=%v, want 200 points", status, body)
	}
	if io, ok := body["io"].(map[string]any); !ok || io["reads"].(float64) <= 0 {
		t.Fatalf("query response carries no I/O attribution: %v", body)
	}

	status, body = ts.post(t, "/v1/query/batch", map[string]any{
		"queries": []map[string]any{{"a": 0, "b": 0}, {"a": 150, "b": 0}, {"a": 199, "b": 199}},
		"workers": 3,
	})
	if status != http.StatusOK {
		t.Fatalf("batch: status=%d body=%v", status, body)
	}
	if got := body["results"].(float64); got != 200+50+1 {
		t.Fatalf("batch results = %v, want 251", got)
	}

	// Shapes the content kind cannot answer are typed 400s, not 500s.
	status, body = ts.post(t, "/v1/window", map[string]any{"x1": 0, "x2": 10, "y1": 0, "y2": 10})
	wantCode(t, status, body, http.StatusBadRequest, codeUnsupportedShape)
	status, body = ts.post(t, "/v1/stab", map[string]any{"q": 5})
	wantCode(t, status, body, http.StatusBadRequest, codeUnsupportedShape)
	status, body = ts.post(t, "/v1/search", map[string]any{"x": 1, "y": 1, "id": 2})
	wantCode(t, status, body, http.StatusBadRequest, codeUnsupportedShape)
	status, body = ts.post(t, "/v1/insert", map[string]any{"x": 1, "y": 1, "id": 999})
	wantCode(t, status, body, http.StatusBadRequest, codeReadOnlyKind)

	// /varz names the sharded kind and lists every shard's key range.
	status, raw := ts.get(t, "/varz")
	if status != http.StatusOK {
		t.Fatalf("varz: status=%d", status)
	}
	vz := string(raw)
	for _, want := range []string{`"kind":"shard"`, `"content_kind":"twosided"`, `"shards":[`, `"file":"shard-0000.pc"`} {
		if !strings.Contains(vz, want) {
			t.Errorf("varz missing %s:\n%s", want, vz)
		}
	}

	// /metrics tags every index series with its shard.
	status, raw = ts.get(t, "/metrics")
	if status != http.StatusOK {
		t.Fatalf("metrics: status=%d", status)
	}
	if !strings.Contains(string(raw), `shard="0"`) || !strings.Contains(string(raw), `shard="2"`) {
		t.Errorf("metrics missing shard-tagged series:\n%s", raw)
	}

	// Per-shard reload swaps one shard; the full reload swaps the store.
	status, body = ts.post(t, "/admin/reload", map[string]any{"shard": 1})
	if status != http.StatusOK || body["ok"] != true {
		t.Fatalf("shard reload: status=%d body=%v", status, body)
	}
	status, body = ts.post(t, "/admin/reload", map[string]any{"shard": 99})
	wantCode(t, status, body, http.StatusBadRequest, codeBadRequest)
	status, body = ts.post(t, "/admin/reload", nil)
	if status != http.StatusOK || body["ok"] != true {
		t.Fatalf("full reload: status=%d body=%v", status, body)
	}
	if gen := ts.handle.Generation(); gen != 1 {
		t.Fatalf("generation after full reload = %d, want 1", gen)
	}
	// The store still answers after both swaps.
	status, body = ts.post(t, "/v1/query", map[string]any{"a": 150, "b": 0})
	if status != http.StatusOK || count(t, body) != 50 {
		t.Fatalf("query after reloads: status=%d body=%v, want 50 points", status, body)
	}
}

// TestServeShardedStab runs the interval read path against sharded
// stabbing shards.
func TestServeShardedStab(t *testing.T) {
	store := buildShardedKind(t, t.TempDir(), "stabbing", 2)
	ts := startServer(t, store, Config{})

	// fixtureIntervals: interval i covers [i, i+10], so q = 50 hits the 11
	// intervals i in [40, 50].
	status, body := ts.post(t, "/v1/stab", map[string]any{"q": 50})
	if status != http.StatusOK || count(t, body) != 11 {
		t.Fatalf("stab: status=%d body=%v, want 11 intervals", status, body)
	}
	status, body = ts.post(t, "/v1/stab/batch", map[string]any{"qs": []int64{20, 50, 80}, "workers": 2})
	if status != http.StatusOK || body["results"].(float64) != 33 {
		t.Fatalf("stab batch: status=%d body=%v, want 33 results", status, body)
	}
	status, body = ts.post(t, "/v1/query", map[string]any{"a": 0, "b": 0})
	wantCode(t, status, body, http.StatusBadRequest, codeUnsupportedShape)
}

// TestServeShardedLSM exercises the write path routed through per-shard
// write tiers: insert, search, delete, flush and compact (sync and
// background) against a sharded lsm store.
func TestServeShardedLSM(t *testing.T) {
	store := buildShardedKind(t, t.TempDir(), "lsm", 3)
	ts := startServer(t, store, Config{})

	status, body := ts.post(t, "/v1/search", map[string]any{"x": 10, "y": 10, "id": 11})
	if status != http.StatusOK || body["found"] != true {
		t.Fatalf("search built record: status=%d body=%v", status, body)
	}

	// Insert records landing in different shards, then find them.
	for _, x := range []int64{5, 100, 190} {
		status, body = ts.post(t, "/v1/insert", map[string]any{"x": x, "y": x, "id": 1000 + x})
		if status != http.StatusOK {
			t.Fatalf("insert x=%d: status=%d body=%v", x, status, body)
		}
	}
	if got := body["records"].(float64); got != 203 {
		t.Fatalf("records after inserts = %v, want 203", got)
	}
	for _, x := range []int64{5, 100, 190} {
		status, body = ts.post(t, "/v1/search", map[string]any{"x": x, "y": x, "id": 1000 + x})
		if status != http.StatusOK || body["found"] != true {
			t.Fatalf("search x=%d: status=%d body=%v", x, status, body)
		}
	}

	status, body = ts.post(t, "/v1/delete", map[string]any{"x": 100, "y": 100, "id": 1100})
	if status != http.StatusOK {
		t.Fatalf("delete: status=%d body=%v", status, body)
	}
	status, body = ts.post(t, "/v1/search", map[string]any{"x": 100, "y": 100, "id": 1100})
	if status != http.StatusOK || body["found"] != false {
		t.Fatalf("search deleted record: status=%d body=%v", status, body)
	}

	status, body = ts.post(t, "/v1/flush", nil)
	if status != http.StatusOK || body["ok"] != true {
		t.Fatalf("flush: status=%d body=%v", status, body)
	}
	status, body = ts.post(t, "/v1/compact", nil)
	if status != http.StatusOK || body["ok"] != true {
		t.Fatalf("compact: status=%d body=%v", status, body)
	}

	// Background compaction of a sharded store completes and counts in
	// /varz without blocking the response.
	status, body = ts.post(t, "/v1/compact", map[string]any{"background": true})
	if status != http.StatusOK || body["background"] != true {
		t.Fatalf("background compact: status=%d body=%v", status, body)
	}
	counted := false
	for i := 0; i < 500 && !counted; i++ {
		_, raw := ts.get(t, "/varz")
		counted = strings.Contains(string(raw), `"compactions":{"ok":1`)
		if !counted {
			time.Sleep(10 * time.Millisecond)
		}
	}
	if !counted {
		t.Fatal("background compaction never counted in /varz")
	}

	// The survivors: 200 built + 3 inserted - 1 deleted.
	status, body = ts.post(t, "/v1/query", map[string]any{"a": 0, "b": 0})
	if status != http.StatusOK || count(t, body) != 202 {
		t.Fatalf("query after maintenance: status=%d body=%v, want 202 points", status, body)
	}
}
