package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"pathcache"
)

// Shared fixtures: small deterministic indexes of every kind, a booted
// server on a real listener, and JSON request helpers.

// fixturePoints lays n points on the diagonal — point i is (i, i) with
// ID i+1 — so query answers are computable by hand: a 2-sided query
// {x >= a, y >= b} returns exactly n - max(a, b) points.
func fixturePoints(n int) []pathcache.Point {
	pts := make([]pathcache.Point, n)
	for i := range pts {
		pts[i] = pathcache.Point{X: int64(i), Y: int64(i), ID: uint64(i + 1)}
	}
	return pts
}

func fixtureIntervals(n int) []pathcache.Interval {
	ivs := make([]pathcache.Interval, n)
	for i := range ivs {
		// interval i covers [i, i+10], so a stab at q hits ~10 intervals.
		ivs[i] = pathcache.Interval{Lo: int64(i), Hi: int64(i + 10), ID: uint64(i + 1)}
	}
	return ivs
}

func fixtureOpts(path string) *pathcache.Options {
	return &pathcache.Options{PageSize: 512, BufferPoolPages: 16, Path: path}
}

// buildKind persists one small index of the named kind under dir and
// returns its path.
func buildKind(t testing.TB, dir, kind string) string {
	t.Helper()
	path := filepath.Join(dir, kind+".pc")
	var (
		ix  interface{ Close() error }
		err error
	)
	switch kind {
	case "twosided":
		ix, err = pathcache.NewTwoSidedIndex(fixturePoints(200), pathcache.SchemeSegmented, fixtureOpts(path))
	case "threeside":
		ix, err = pathcache.NewThreeSidedIndex(fixturePoints(200), fixtureOpts(path))
	case "window":
		ix, err = pathcache.NewWindowIndex(fixturePoints(200), fixtureOpts(path))
	case "segment":
		ix, err = pathcache.NewSegmentIndex(fixtureIntervals(100), true, fixtureOpts(path))
	case "interval":
		ix, err = pathcache.NewIntervalIndex(fixtureIntervals(100), true, fixtureOpts(path))
	case "stabbing":
		ix, err = pathcache.NewStabbingIndex(fixtureIntervals(100), pathcache.SchemeSegmented, fixtureOpts(path))
	case "lsm":
		o := fixtureOpts(path)
		o.MemtableEntries = 32
		ix, err = pathcache.BuildDynamic("twosided", fixturePoints(200), o)
	default:
		t.Fatalf("buildKind: unknown kind %q", kind)
	}
	if err != nil {
		t.Fatalf("build %s: %v", kind, err)
	}
	if err := ix.Close(); err != nil {
		t.Fatalf("close %s: %v", kind, err)
	}
	return path
}

// testServer is one booted pcserve engine on a real TCP listener.
type testServer struct {
	srv    *Server
	handle *pathcache.Handle
	base   string
	done   chan error
}

// startServer opens path into a Handle and serves it on 127.0.0.1:0.
func startServer(t testing.TB, path string, cfg Config) *testServer {
	t.Helper()
	handle, err := pathcache.OpenHandle(path)
	if err != nil {
		t.Fatalf("open handle: %v", err)
	}
	ts := startServerOn(t, handle, cfg)
	t.Cleanup(func() { handle.Close() })
	return ts
}

// startServerOn serves an existing handle (ownership stays with the
// caller) on a fresh listener, draining it at test end.
func startServerOn(t testing.TB, handle *pathcache.Handle, cfg Config) *testServer {
	t.Helper()
	srv := New(handle, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	ts := &testServer{
		srv:    srv,
		handle: handle,
		base:   "http://" + ln.Addr().String(),
		done:   make(chan error, 1),
	}
	go func() { ts.done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := testContext(5 * time.Second)
		defer cancel()
		srv.Drain(ctx)
		<-ts.done
	})
	return ts
}

// post sends body as JSON to path and returns the status plus decoded
// response object.
func (ts *testServer) post(t testing.TB, path string, body any) (int, map[string]any) {
	t.Helper()
	return ts.postClient(t, http.DefaultClient, path, "", body)
}

// postClient is post with an explicit client and X-Client identity.
func (ts *testServer) postClient(t testing.TB, c *http.Client, path, client string, body any) (int, map[string]any) {
	t.Helper()
	var buf bytes.Buffer
	switch b := body.(type) {
	case nil:
	case string:
		buf.WriteString(b)
	default:
		if err := json.NewEncoder(&buf).Encode(b); err != nil {
			t.Fatalf("encode body: %v", err)
		}
	}
	req, err := http.NewRequest(http.MethodPost, ts.base+path, &buf)
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	if client != "" {
		req.Header.Set("X-Client", client)
	}
	resp, err := c.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	var out map[string]any
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("POST %s: non-JSON response %q: %v", path, raw, err)
		}
	}
	return resp.StatusCode, out
}

// get fetches path and returns status plus raw body.
func (ts *testServer) get(t testing.TB, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(ts.base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	return resp.StatusCode, raw
}

// wantCode asserts a typed error response: the status and the wire code.
func wantCode(t testing.TB, status int, body map[string]any, wantStatus int, wantCode string) {
	t.Helper()
	if status != wantStatus {
		t.Fatalf("status = %d (body %v), want %d", status, body, wantStatus)
	}
	if got, _ := body["code"].(string); got != wantCode {
		t.Fatalf("code = %q (body %v), want %q", got, body, wantCode)
	}
}

// count extracts the "count" field of a query response.
func count(t testing.TB, body map[string]any) int {
	t.Helper()
	v, ok := body["count"].(float64)
	if !ok {
		t.Fatalf("response has no count: %v", body)
	}
	return int(v)
}

func testContext(d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), d)
}
