package extint

import (
	"pathcache/internal/disk"
	"pathcache/internal/record"
	"pathcache/internal/skeletal"
)

// stabQuery carries the state of one stabbing query.
type stabQuery struct {
	t   *Tree
	q   int64
	out []record.Interval
	st  QueryStats
}

// Stab reports every interval containing q, with the query's I/O profile.
// Cost: O(log_B n + t/B) for PathCached, O(log n + t/B) for Naive.
func (t *Tree) Stab(q int64) ([]record.Interval, QueryStats, error) {
	s := &stabQuery{t: t, q: q}
	if t.n == 0 {
		return nil, s.st, nil
	}
	w := t.skel.NewWalker()
	path, err := w.Descend(t.skel.Root(), func(n skeletal.Node) skeletal.Dir {
		if n.IsLeaf() {
			return skeletal.Stop
		}
		if q < n.Key {
			return skeletal.Left
		}
		return skeletal.Right
	})
	if err != nil {
		return nil, s.st, err
	}
	s.st.PathPages = w.PagesLoaded()
	depth := len(path) - 1

	// Fat-leaf local intervals: filtered on containment.
	if head, count := getList(path[depth].Payload, offLocal); count > 0 {
		if err := s.scanFiltered(head); err != nil {
			return nil, s.st, err
		}
	}

	if t.variant == Naive {
		for j := 0; j < depth; j++ {
			if err := s.scanDirect(path, j); err != nil {
				return nil, s.st, err
			}
		}
	} else {
		cur := depth
		for {
			cs := (cur / t.segLen()) * t.segLen()
			// Merged caches over this chunk.
			if head, count := getList(path[cur].Payload, offLC); count > 0 {
				if _, err := s.scanLoAsc(head); err != nil {
					return nil, s.st, err
				}
			}
			if head, count := getList(path[cur].Payload, offRC); count > 0 {
				if _, err := s.scanHiDesc(head); err != nil {
					return nil, s.st, err
				}
			}
			// Tail continuation for ancestors whose first block was fully
			// inside the query — those tails are paid for.
			for j := cs; j < cur; j++ {
				if err := s.continueTail(path[j].Payload, wentLeft(path, j)); err != nil {
					return nil, s.st, err
				}
			}
			if cs == 0 {
				break
			}
			bj := cs - 1
			if err := s.scanDirect(path, bj); err != nil {
				return nil, s.st, err
			}
			cur = bj
		}
	}
	s.st.Results = len(s.out)
	return s.out, s.st, nil
}

// wentLeft reports whether the descent turned left at level j.
func wentLeft(path []skeletal.Node, j int) bool {
	return path[j+1].Ref == path[j].Left
}

// scanDirect reads an ancestor's relevant list (L when the path went left,
// R when it went right) from the beginning.
func (s *stabQuery) scanDirect(path []skeletal.Node, j int) error {
	p := path[j].Payload
	if wentLeft(path, j) {
		head, count := getList(p, offL1)
		if count == 0 {
			return nil
		}
		stopped, err := s.scanLoAsc(head)
		if err != nil || stopped {
			return err
		}
		if head2, count2 := getList(p, offL2); count2 > 0 {
			_, err = s.scanLoAsc(head2)
		}
		return err
	}
	head, count := getList(p, offR1)
	if count == 0 {
		return nil
	}
	stopped, err := s.scanHiDesc(head)
	if err != nil || stopped {
		return err
	}
	if head2, count2 := getList(p, offR2); count2 > 0 {
		_, err = s.scanHiDesc(head2)
	}
	return err
}

// continueTail scans an ancestor's list tail when the cached first block was
// entirely inside the query.
func (s *stabQuery) continueTail(p []byte, left bool) error {
	if left {
		if _, count := getList(p, offL1); count == 0 || firstLMaxLo(p) > s.q {
			return nil
		}
		if head, count := getList(p, offL2); count > 0 {
			_, err := s.scanLoAsc(head)
			return err
		}
		return nil
	}
	if _, count := getList(p, offR1); count == 0 || firstRMinHi(p) < s.q {
		return nil
	}
	if head, count := getList(p, offR2); count > 0 {
		_, err := s.scanHiDesc(head)
		return err
	}
	return nil
}

// scanLoAsc scans a Lo-ascending chain, reporting while Lo <= q. Intervals
// in these chains come from left-descent ancestors, whose entries all have
// Hi >= center > q, so Lo <= q implies containment.
func (s *stabQuery) scanLoAsc(head disk.PageID) (stopped bool, err error) {
	matched := 0
	pages, err := disk.ScanChain(s.t.pager, record.IntervalSize, head, func(rec []byte) bool {
		iv := record.DecodeInterval(rec)
		if iv.Lo > s.q {
			stopped = true
			return false
		}
		s.out = append(s.out, iv)
		matched++
		return true
	})
	if err != nil {
		return false, err
	}
	s.account(pages, matched)
	return stopped, nil
}

// scanHiDesc scans a Hi-descending chain, reporting while Hi >= q. Entries
// come from right-descent ancestors, whose intervals all have Lo <= center
// <= q, so Hi >= q implies containment.
func (s *stabQuery) scanHiDesc(head disk.PageID) (stopped bool, err error) {
	matched := 0
	pages, err := disk.ScanChain(s.t.pager, record.IntervalSize, head, func(rec []byte) bool {
		iv := record.DecodeInterval(rec)
		if iv.Hi < s.q {
			stopped = true
			return false
		}
		s.out = append(s.out, iv)
		matched++
		return true
	})
	if err != nil {
		return false, err
	}
	s.account(pages, matched)
	return stopped, nil
}

// scanFiltered scans a leaf-local chain with an explicit containment filter.
func (s *stabQuery) scanFiltered(head disk.PageID) error {
	matched := 0
	pages, err := disk.ScanChain(s.t.pager, record.IntervalSize, head, func(rec []byte) bool {
		iv := record.DecodeInterval(rec)
		if iv.Contains(s.q) {
			s.out = append(s.out, iv)
			matched++
		}
		return true
	})
	if err != nil {
		return err
	}
	s.account(pages, matched)
	return nil
}

func (s *stabQuery) account(pages, matched int) {
	s.st.ListPages += pages
	full := matched / s.t.b
	s.st.UsefulIOs += full
	s.st.WastefulIOs += pages - full
}
