package extint

import (
	"sort"
	"testing"
	"testing/quick"

	"pathcache/internal/disk"
	"pathcache/internal/inmem"
	"pathcache/internal/record"
	"pathcache/internal/workload"
)

func sameIntervals(a, b []record.Interval) bool {
	if len(a) != len(b) {
		return false
	}
	key := func(iv record.Interval) [3]int64 { return [3]int64{iv.Lo, iv.Hi, int64(iv.ID)} }
	as := make([][3]int64, len(a))
	bs := make([][3]int64, len(b))
	for i := range a {
		as[i], bs[i] = key(a[i]), key(b[i])
	}
	less := func(s [][3]int64) func(i, j int) bool {
		return func(i, j int) bool {
			for k := 0; k < 3; k++ {
				if s[i][k] != s[j][k] {
					return s[i][k] < s[j][k]
				}
			}
			return false
		}
	}
	sort.Slice(as, less(as))
	sort.Slice(bs, less(bs))
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func TestEmptyTree(t *testing.T) {
	for _, v := range []Variant{Naive, PathCached} {
		s := disk.MustStore(512)
		tr, err := Build(s, nil, v)
		if err != nil {
			t.Fatal(err)
		}
		out, st, err := tr.Stab(7)
		if err != nil || out != nil || st.Results != 0 {
			t.Fatalf("%v: stab on empty: %v %v %v", v, out, st, err)
		}
	}
}

func TestRejectsInvalid(t *testing.T) {
	s := disk.MustStore(512)
	if _, err := Build(s, []record.Interval{{Lo: 9, Hi: 2}}, Naive); err == nil {
		t.Fatal("inverted interval accepted")
	}
}

func TestStabMatchesOracle(t *testing.T) {
	for _, v := range []Variant{Naive, PathCached} {
		for _, n := range []int{1, 2, 10, 200, 3000} {
			ivs := workload.UniformIntervals(n, 100_000, 25_000, int64(n)+3)
			s := disk.MustStore(512)
			tr, err := Build(s, ivs, v)
			if err != nil {
				t.Fatalf("%v n=%d: %v", v, n, err)
			}
			if tr.Len() != n {
				t.Fatalf("Len = %d", tr.Len())
			}
			for _, q := range workload.StabQueries(60, 130_000, 19) {
				got, _, err := tr.Stab(q)
				if err != nil {
					t.Fatal(err)
				}
				if want := inmem.Stab(ivs, q); !sameIntervals(got, want) {
					t.Fatalf("%v n=%d stab %d: got %d want %d", v, n, q, len(got), len(want))
				}
			}
		}
	}
}

func TestStabNestedAndBoundary(t *testing.T) {
	ivs := workload.NestedIntervals(2000, 80, 1_000_000, 21)
	for _, v := range []Variant{Naive, PathCached} {
		s := disk.MustStore(512)
		tr, err := Build(s, ivs, v)
		if err != nil {
			t.Fatal(err)
		}
		// Hit exact endpoints: the q == center path must be exact.
		queries := workload.StabQueries(40, 1_000_000, 23)
		for _, iv := range ivs[:30] {
			queries = append(queries, iv.Lo, iv.Hi)
		}
		for _, q := range queries {
			got, _, err := tr.Stab(q)
			if err != nil {
				t.Fatal(err)
			}
			if want := inmem.Stab(ivs, q); !sameIntervals(got, want) {
				t.Fatalf("%v stab %d: got %d want %d", v, q, len(got), len(want))
			}
		}
	}
}

func TestStabPointIntervals(t *testing.T) {
	// Degenerate intervals [x,x] plus heavy duplication.
	var ivs []record.Interval
	for i := 0; i < 600; i++ {
		x := int64(i % 13)
		ivs = append(ivs, record.Interval{Lo: x, Hi: x + int64(i%3), ID: uint64(i + 1)})
	}
	for _, v := range []Variant{Naive, PathCached} {
		s := disk.MustStore(512)
		tr, err := Build(s, ivs, v)
		if err != nil {
			t.Fatal(err)
		}
		for q := int64(-1); q <= 16; q++ {
			got, _, err := tr.Stab(q)
			if err != nil {
				t.Fatal(err)
			}
			if want := inmem.Stab(ivs, q); !sameIntervals(got, want) {
				t.Fatalf("%v stab %d: got %d want %d", v, q, len(got), len(want))
			}
		}
	}
}

func TestStabProperty(t *testing.T) {
	f := func(raw []struct{ Lo, Len uint8 }, q uint8) bool {
		ivs := make([]record.Interval, len(raw))
		for i, r := range raw {
			ivs[i] = record.Interval{Lo: int64(r.Lo), Hi: int64(r.Lo) + int64(r.Len), ID: uint64(i + 1)}
		}
		want := inmem.Stab(ivs, int64(q))
		for _, v := range []Variant{Naive, PathCached} {
			s := disk.MustStore(512)
			tr, err := Build(s, ivs, v)
			if err != nil {
				return false
			}
			got, _, err := tr.Stab(int64(q))
			if err != nil || !sameIntervals(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func logB(n, b int) int {
	if b < 2 {
		b = 2
	}
	r := 1
	for v := 1; v < n; v *= b {
		r++
	}
	return r
}

func log2(n int) int {
	r := 0
	for v := 1; v < n; v *= 2 {
		r++
	}
	return r
}

// Theorem 3.5: stabbing costs O(log_B n + t/B) with path caching.
func TestStabIOBound(t *testing.T) {
	const n = 30_000
	ivs := workload.UniformIntervals(n, 10_000_000, 300_000, 27)
	s := disk.MustStore(512)
	tr, err := Build(s, ivs, PathCached)
	if err != nil {
		t.Fatal(err)
	}
	b := tr.B()
	lb := logB(n, b)
	for _, q := range workload.StabQueries(80, 10_000_000, 29) {
		s.ResetStats()
		got, st, err := tr.Stab(q)
		if err != nil {
			t.Fatal(err)
		}
		reads := int(s.Stats().Reads)
		// Per chunk: 2 caches + boundary L/R + tails (paid); plus skeleton
		// and the leaf-local page.
		bound := 8*lb + 4*len(got)/b + 8
		if reads > bound {
			t.Fatalf("stab %d: %d reads for t=%d (bound %d) stats=%+v", q, reads, len(got), bound, st)
		}
	}
}

// The naive variant pays ~log2(n/B) per query on nested data; caching wins.
func TestCachingBeatsNaive(t *testing.T) {
	ivs := workload.NestedIntervals(30_000, 300, 1<<40, 31)
	readsFor := func(v Variant) float64 {
		s := disk.MustStore(512)
		tr, err := Build(s, ivs, v)
		if err != nil {
			t.Fatal(err)
		}
		total := int64(0)
		queries := workload.StabQueries(50, 1<<40, 33)
		for _, q := range queries {
			s.ResetStats()
			if _, _, err := tr.Stab(q); err != nil {
				t.Fatal(err)
			}
			total += s.Stats().Reads
		}
		return float64(total) / float64(len(queries))
	}
	naive := readsFor(Naive)
	cached := readsFor(PathCached)
	if cached >= naive {
		t.Fatalf("caching did not pay: naive=%.1f cached=%.1f reads/query", naive, cached)
	}
}

// Space: O((n/B)·log B) pages.
func TestSpaceBound(t *testing.T) {
	const n = 30_000
	ivs := workload.UniformIntervals(n, 10_000_000, 300_000, 35)
	s := disk.MustStore(512)
	tr, err := Build(s, ivs, PathCached)
	if err != nil {
		t.Fatal(err)
	}
	b := tr.B()
	bound := 8 * (n/b + 1) * (log2(b) + 1)
	if got := tr.TotalPages(); got > bound {
		sk, lists, caches, locals := tr.SpacePages()
		t.Fatalf("pages=%d bound=%d (skel=%d lists=%d caches=%d locals=%d)",
			got, bound, sk, lists, caches, locals)
	}
	if s.NumPages() != tr.TotalPages() {
		t.Fatalf("store has %d pages, structure claims %d", s.NumPages(), tr.TotalPages())
	}
}
