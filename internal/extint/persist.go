package extint

import (
	"encoding/binary"
	"errors"
	"fmt"

	"pathcache/internal/disk"
	"pathcache/internal/record"
	"pathcache/internal/skeletal"
)

// Meta is the reopen metadata of an external interval tree.
type Meta struct {
	Variant    Variant
	N          int
	ListPages  int
	CachePages int
	LocalPages int
	Skel       skeletal.Meta
}

const metaMagic = uint32(0x69747631) // "itv1"

// Meta returns the tree's reopen metadata.
func (t *Tree) Meta() Meta {
	return Meta{
		Variant:    t.variant,
		N:          t.n,
		ListPages:  t.listPages,
		CachePages: t.cachePages,
		LocalPages: t.localPages,
		Skel:       t.skel.Meta(),
	}
}

// Encode serializes the meta.
func (m Meta) Encode() []byte {
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:], metaMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(m.Variant))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(m.N))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(m.ListPages))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(m.CachePages))
	binary.LittleEndian.PutUint32(hdr[20:], uint32(m.LocalPages))
	return m.Skel.Append(hdr[:])
}

// DecodeMeta deserializes a meta blob produced by Encode.
func DecodeMeta(buf []byte) (Meta, error) {
	if len(buf) < 24 {
		return Meta{}, errors.New("extint: truncated meta")
	}
	if binary.LittleEndian.Uint32(buf[0:]) != metaMagic {
		return Meta{}, errors.New("extint: bad meta magic")
	}
	m := Meta{
		Variant:    Variant(binary.LittleEndian.Uint32(buf[4:])),
		N:          int(int32(binary.LittleEndian.Uint32(buf[8:]))),
		ListPages:  int(int32(binary.LittleEndian.Uint32(buf[12:]))),
		CachePages: int(int32(binary.LittleEndian.Uint32(buf[16:]))),
		LocalPages: int(int32(binary.LittleEndian.Uint32(buf[20:]))),
	}
	var err error
	m.Skel, _, err = skeletal.DecodeMeta(buf[24:])
	return m, err
}

// Reopen attaches to a previously built tree persisted on p.
func Reopen(p disk.Pager, m Meta) (*Tree, error) {
	b := disk.ChainCap(p.PageSize(), record.IntervalSize)
	if b < 2 {
		return nil, fmt.Errorf("extint: page size %d too small", p.PageSize())
	}
	if m.Skel.PayloadSize != payloadSize {
		return nil, fmt.Errorf("extint: payload size %d, want %d (format drift)", m.Skel.PayloadSize, payloadSize)
	}
	skel, err := skeletal.Reopen(p, m.Skel)
	if err != nil {
		return nil, err
	}
	return &Tree{
		pager:      p,
		variant:    m.Variant,
		skel:       skel,
		b:          b,
		n:          m.N,
		listPages:  m.ListPages,
		cachePages: m.CachePages,
		localPages: m.LocalPages,
	}, nil
}
