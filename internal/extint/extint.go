// Package extint implements the paper's external interval tree
// (Theorem 3.5): stabbing queries in O(log_B n + t/B) I/Os using
// O((n/B)·log B) pages.
//
// The classic interval tree hangs every interval off the highest node whose
// center it contains, in two orderings: by increasing left endpoint (the
// L-list, scanned when the query point is left of the center) and by
// decreasing right endpoint (the R-list, scanned when it is right). The
// external "restricted" version here groups endpoints into fat leaves of B,
// blocks the binary tree into a skeletal B-tree, and path-caches the lists:
//
// The direction taken at every ancestor is a function of the leaf alone, so
// each node stores two merged caches over its chunk of the path — the first
// L-blocks of left-descent ancestors (sorted by Lo) and the first R-blocks
// of right-descent ancestors (sorted by Hi, descending). A query reads one
// cache pair per chunk (O(log_B n) of them) plus list tails whose first
// block was entirely inside the query — those are paid for.
package extint

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sort"

	"pathcache/internal/disk"
	"pathcache/internal/record"
	"pathcache/internal/skeletal"
)

// Variant selects between the uncached strawman and the cached structure.
type Variant int

// Variants.
const (
	// Naive reads every ancestor's list directly: O(log n + t/B) I/Os.
	Naive Variant = iota
	// PathCached uses per-chunk direction-aware caches: O(log_B n + t/B).
	PathCached
)

func (v Variant) String() string {
	if v == PathCached {
		return "path-cached"
	}
	return "naive"
}

// Node payload layout (100 bytes):
//
//	0   l1Head/l1Count   first L block (lowest Lo values)
//	12  l2Head/l2Count   L tail
//	24  r1Head/r1Count   first R block (highest Hi values)
//	36  r2Head/r2Count   R tail
//	48  lcHead/lcCount   L cache: chunk ancestors' first L blocks (Lo asc)
//	60  rcHead/rcCount   R cache: chunk ancestors' first R blocks (Hi desc)
//	72  localHead/localCount  fat-leaf local intervals
//	84  firstLMaxLo int64     largest Lo within the first L block
//	92  firstRMinHi int64     smallest Hi within the first R block
const payloadSize = 100

// List offsets within the payload.
const (
	offL1    = 0
	offL2    = 12
	offR1    = 24
	offR2    = 36
	offLC    = 48
	offRC    = 60
	offLocal = 72
)

// Tree is a static external interval tree.
type Tree struct {
	pager   disk.Pager
	variant Variant
	skel    *skeletal.Tree
	b       int
	n       int

	listPages  int
	cachePages int
	localPages int
}

// QueryStats profiles one stabbing query.
type QueryStats struct {
	PathPages   int
	ListPages   int
	UsefulIOs   int
	WastefulIOs int
	Results     int
}

// memNode is the in-memory tree used during construction.
type memNode struct {
	gLo, gHi    int // group index range [gLo, gHi)
	center      int64
	byLo        []record.Interval
	byHi        []record.Interval
	local       []record.Interval
	left, right *memNode
}

// Build constructs the tree over ivs under disk.LayoutSorted. Intervals
// must satisfy Lo <= Hi.
func Build(p disk.Pager, ivs []record.Interval, v Variant) (*Tree, error) {
	return BuildLayout(p, ivs, v, disk.LayoutSorted)
}

// BuildLayout is Build with an explicit skeletal page layout.
func BuildLayout(p disk.Pager, ivs []record.Interval, v Variant, layout disk.Layout) (*Tree, error) {
	b := disk.ChainCap(p.PageSize(), record.IntervalSize)
	if b < 2 {
		return nil, fmt.Errorf("extint: page size %d holds %d intervals; need >= 2", p.PageSize(), b)
	}
	for _, iv := range ivs {
		if !iv.Valid() {
			return nil, fmt.Errorf("extint: invalid interval %v", iv)
		}
	}
	t := &Tree{pager: p, variant: v, b: b, n: len(ivs)}
	if len(ivs) == 0 {
		skel, err := skeletal.BuildLayout(p, nil, payloadSize, layout)
		if err != nil {
			return nil, err
		}
		t.skel = skel
		return t, nil
	}

	ends := make([]int64, 0, 2*len(ivs))
	for _, iv := range ivs {
		ends = append(ends, iv.Lo, iv.Hi)
	}
	sort.Slice(ends, func(i, j int) bool { return ends[i] < ends[j] })
	uniq := ends[:1]
	for _, e := range ends[1:] {
		if e != uniq[len(uniq)-1] {
			uniq = append(uniq, e)
		}
	}
	groups := (len(uniq) + b - 1) / b
	root := buildTree(uniq, 0, groups, b)
	for _, iv := range ivs {
		insert(root, iv)
	}
	bn, err := t.persist(root, uniq, 0, nil)
	if err != nil {
		return nil, err
	}
	skel, err := skeletal.BuildLayout(p, bn, payloadSize, layout)
	if err != nil {
		return nil, err
	}
	t.skel = skel
	return t, nil
}

// buildTree builds the binary tree over endpoint groups [gLo, gHi).
func buildTree(ends []int64, gLo, gHi, b int) *memNode {
	n := &memNode{gLo: gLo, gHi: gHi}
	if gHi-gLo <= 1 {
		return n
	}
	mid := (gLo + gHi) / 2
	n.center = ends[mid*b]
	n.left = buildTree(ends, gLo, mid, b)
	n.right = buildTree(ends, mid, gHi, b)
	return n
}

// insert places iv at the highest node whose center it contains, or in the
// fat-leaf local list if it contains none.
func insert(n *memNode, iv record.Interval) {
	for {
		if n.left == nil {
			n.local = append(n.local, iv)
			return
		}
		switch {
		case iv.Contains(n.center):
			n.byLo = append(n.byLo, iv)
			return
		case iv.Hi < n.center:
			n = n.left
		default:
			n = n.right
		}
	}
}

// pathEntry carries an ancestor's first-block contribution for the caches.
type pathEntry struct {
	wentLeft bool
	firstL   []record.Interval // first L block (if wentLeft)
	firstR   []record.Interval // first R block (if !wentLeft)
}

func (t *Tree) segLen() int {
	s := bits.Len(uint(t.b)) - 1
	if s < 1 {
		s = 1
	}
	return s
}

// persist writes a node's chains and returns the skeletal build node.
func (t *Tree) persist(n *memNode, ends []int64, depth int, path []pathEntry) (*skeletal.BuildNode, error) {
	payload := make([]byte, payloadSize)
	for _, off := range []int{offL1, offL2, offR1, offR2, offLC, offRC, offLocal} {
		putList(payload[off:], disk.InvalidPage, 0)
	}

	// Node lists (internal nodes only; leaves keep everything local).
	var firstL, firstR []record.Interval
	if n.left != nil {
		n.byHi = append([]record.Interval(nil), n.byLo...)
		sort.Slice(n.byLo, func(i, j int) bool {
			if n.byLo[i].Lo != n.byLo[j].Lo {
				return n.byLo[i].Lo < n.byLo[j].Lo
			}
			return n.byLo[i].ID < n.byLo[j].ID
		})
		sort.Slice(n.byHi, func(i, j int) bool {
			if n.byHi[i].Hi != n.byHi[j].Hi {
				return n.byHi[i].Hi > n.byHi[j].Hi
			}
			return n.byHi[i].ID < n.byHi[j].ID
		})
		firstL = n.byLo
		if len(firstL) > t.b {
			firstL = firstL[:t.b]
		}
		firstR = n.byHi
		if len(firstR) > t.b {
			firstR = firstR[:t.b]
		}
		if err := t.writeList(payload[offL1:], firstL); err != nil {
			return nil, err
		}
		if err := t.writeList(payload[offL2:], n.byLo[len(firstL):]); err != nil {
			return nil, err
		}
		if err := t.writeList(payload[offR1:], firstR); err != nil {
			return nil, err
		}
		if err := t.writeList(payload[offR2:], n.byHi[len(firstR):]); err != nil {
			return nil, err
		}
		if len(firstL) > 0 {
			binary.LittleEndian.PutUint64(payload[84:], uint64(firstL[len(firstL)-1].Lo))
			binary.LittleEndian.PutUint64(payload[92:], uint64(firstR[len(firstR)-1].Hi))
		}
	}

	// Per-chunk direction-aware caches.
	if t.variant == PathCached && depth > 0 {
		cs := (depth / t.segLen()) * t.segLen()
		var lc, rc []record.Interval
		for i := cs; i < depth; i++ {
			if path[i].wentLeft {
				lc = append(lc, path[i].firstL...)
			} else {
				rc = append(rc, path[i].firstR...)
			}
		}
		sort.Slice(lc, func(i, j int) bool {
			if lc[i].Lo != lc[j].Lo {
				return lc[i].Lo < lc[j].Lo
			}
			return lc[i].ID < lc[j].ID
		})
		sort.Slice(rc, func(i, j int) bool {
			if rc[i].Hi != rc[j].Hi {
				return rc[i].Hi > rc[j].Hi
			}
			return rc[i].ID < rc[j].ID
		})
		head, pages, err := disk.WriteChain(t.pager, record.IntervalSize, record.EncodeIntervals(lc))
		if err != nil {
			return nil, err
		}
		t.cachePages += pages
		putList(payload[offLC:], head, len(lc))
		head, pages, err = disk.WriteChain(t.pager, record.IntervalSize, record.EncodeIntervals(rc))
		if err != nil {
			return nil, err
		}
		t.cachePages += pages
		putList(payload[offRC:], head, len(rc))
	}

	bn := &skeletal.BuildNode{Payload: payload}
	if n.left == nil {
		bn.Key = ends[n.gLo*t.b]
		head, pages, err := disk.WriteChain(t.pager, record.IntervalSize, record.EncodeIntervals(n.local))
		if err != nil {
			return nil, err
		}
		t.localPages += pages
		putList(payload[offLocal:], head, len(n.local))
		return bn, nil
	}
	bn.Key = n.center
	var err error
	bn.Left, err = t.persist(n.left, ends, depth+1, append(path, pathEntry{wentLeft: true, firstL: firstL}))
	if err != nil {
		return nil, err
	}
	bn.Right, err = t.persist(n.right, ends, depth+1, append(path, pathEntry{wentLeft: false, firstR: firstR}))
	if err != nil {
		return nil, err
	}
	return bn, nil
}

func (t *Tree) writeList(buf []byte, ivs []record.Interval) error {
	head, pages, err := disk.WriteChain(t.pager, record.IntervalSize, record.EncodeIntervals(ivs))
	if err != nil {
		return err
	}
	t.listPages += pages
	putList(buf, head, len(ivs))
	return nil
}

func putList(buf []byte, head disk.PageID, count int) {
	binary.LittleEndian.PutUint64(buf[0:8], uint64(head))
	binary.LittleEndian.PutUint32(buf[8:12], uint32(count))
}

func getList(p []byte, off int) (disk.PageID, int) {
	return disk.PageID(binary.LittleEndian.Uint64(p[off:])), int(binary.LittleEndian.Uint32(p[off+8:]))
}

func firstLMaxLo(p []byte) int64 { return int64(binary.LittleEndian.Uint64(p[84:])) }
func firstRMinHi(p []byte) int64 { return int64(binary.LittleEndian.Uint64(p[92:])) }

// WithPager returns a read-only view of the tree whose queries run through
// p — the hook for per-operation I/O attribution via disk.WithCounter.
func (t *Tree) WithPager(p disk.Pager) *Tree {
	c := *t
	c.pager = p
	c.skel = t.skel.WithPager(p)
	return &c
}

// Len reports the number of indexed intervals.
func (t *Tree) Len() int { return t.n }

// B reports the page capacity in intervals.
func (t *Tree) B() int { return t.b }

// Layout reports the skeletal page layout the tree was built with.
func (t *Tree) Layout() disk.Layout { return t.skel.Layout() }

// Variant reports the construction variant.
func (t *Tree) Variant() Variant { return t.variant }

// SpacePages breaks down storage: skeleton, L/R lists, caches, leaf locals.
func (t *Tree) SpacePages() (skeleton, lists, caches, locals int) {
	return t.skel.NumPages(), t.listPages, t.cachePages, t.localPages
}

// TotalPages is the complete storage footprint in pages.
func (t *Tree) TotalPages() int {
	return t.skel.NumPages() + t.listPages + t.cachePages + t.localPages
}
