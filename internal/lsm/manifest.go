package lsm

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"pathcache/internal/disk"
	"pathcache/internal/record"
)

// The manifest is the write tier's root: one variable-length record naming
// the WAL chain, the tombstone chain, and every sealed level (its slot,
// record count, static-tree metadata, data/tree page sets and bloom
// parameters). It is serialized into a byte chain of fresh pages on every
// flush or compaction; the commit point is the engine metadata page flip
// (SetAppHead + sync on the double-buffered, CRC-guarded superblock), which
// atomically swaps the file from the old manifest to the new one. Nothing
// the old manifest references is freed before that flip, so a crash on
// either side of it recovers a consistent state. See DESIGN.md §11.

// manifestMagic and metaMagic version the two encodings.
const (
	manifestMagic = 0x316d736c // "lsm1"
	metaMagic     = 0x4d6d736c // "lsmM"
)

// blobRec is the record width blob chains (manifest, bloom filters) are
// chunked into.
const blobRec = 8

// castagnoli matches the FileStore's checksum polynomial.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// writeBlobChain chunks raw into a chain of blobRec-wide records, padding
// the tail chunk with zeros. The byte length is not self-describing;
// callers persist it next to the head.
func writeBlobChain(p disk.Pager, raw []byte) (disk.PageID, int, error) {
	w, err := disk.NewChainWriter(p, blobRec)
	if err != nil {
		return disk.InvalidPage, 0, err
	}
	var chunk [blobRec]byte
	for off := 0; off < len(raw); off += blobRec {
		for i := range chunk {
			chunk[i] = 0
		}
		copy(chunk[:], raw[off:])
		if err := w.Append(chunk[:]); err != nil {
			return disk.InvalidPage, 0, err
		}
	}
	head, pages, _, err := w.Close()
	return head, pages, err
}

// readBlobChain reads a blob chain back and truncates to size bytes.
func readBlobChain(p disk.Pager, head disk.PageID, size int) ([]byte, error) {
	raw := make([]byte, 0, size+blobRec)
	_, err := disk.ScanChain(p, blobRec, head, func(rec []byte) bool {
		raw = append(raw, rec...)
		return true
	})
	if err != nil {
		return nil, err
	}
	if len(raw) < size {
		return nil, fmt.Errorf("lsm: blob chain holds %d bytes, need %d: %w", len(raw), size, disk.ErrCorrupt)
	}
	return raw[:size], nil
}

// manifest is the decoded root record.
type manifest struct {
	baseKind   byte
	seq        uint64
	liveN      uint64
	flushEvery uint32
	walHead    disk.PageID
	tombHead   disk.PageID
	tombCount  uint32
	tombPages  uint32
	levels     []levelRecord
}

// levelRecord describes one sealed level in the manifest.
type levelRecord struct {
	slot      uint32
	n         uint64
	dataHead  disk.PageID
	dataPages []disk.PageID
	treePages []disk.PageID
	bloomHead disk.PageID
	bloomBits uint64
	treeMeta  []byte
}

func putU32(buf []byte, v uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return append(buf, b[:]...)
}

func putU64(buf []byte, v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return append(buf, b[:]...)
}

func putPage(buf []byte, id disk.PageID) []byte { return putU64(buf, uint64(id)) }

func putPages(buf []byte, ids []disk.PageID) []byte {
	buf = putU32(buf, uint32(len(ids)))
	for _, id := range ids {
		buf = putPage(buf, id)
	}
	return buf
}

// encode serializes the manifest.
func (m *manifest) encode() []byte {
	buf := make([]byte, 0, 256)
	buf = putU32(buf, manifestMagic)
	buf = append(buf, m.baseKind)
	buf = putU64(buf, m.seq)
	buf = putU64(buf, m.liveN)
	buf = putU32(buf, m.flushEvery)
	buf = putPage(buf, m.walHead)
	buf = putPage(buf, m.tombHead)
	buf = putU32(buf, m.tombCount)
	buf = putU32(buf, m.tombPages)
	buf = putU32(buf, uint32(len(m.levels)))
	for _, lv := range m.levels {
		buf = putU32(buf, lv.slot)
		buf = putU64(buf, lv.n)
		buf = putPage(buf, lv.dataHead)
		buf = putPages(buf, lv.dataPages)
		buf = putPages(buf, lv.treePages)
		buf = putPage(buf, lv.bloomHead)
		buf = putU64(buf, lv.bloomBits)
		buf = putU32(buf, uint32(len(lv.treeMeta)))
		buf = append(buf, lv.treeMeta...)
	}
	return buf
}

// manifestReader decodes with bounds checking; any overrun marks corruption.
type manifestReader struct {
	buf []byte
	off int
	err error
}

func (r *manifestReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.err = fmt.Errorf("lsm: manifest truncated at offset %d: %w", r.off, disk.ErrCorrupt)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *manifestReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *manifestReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *manifestReader) page() disk.PageID { return disk.PageID(r.u64()) }

func (r *manifestReader) pages() []disk.PageID {
	n := int(r.u32())
	if r.err != nil || n < 0 || n > len(r.buf) {
		if r.err == nil {
			r.err = fmt.Errorf("lsm: manifest page list of %d entries: %w", n, disk.ErrCorrupt)
		}
		return nil
	}
	ids := make([]disk.PageID, 0, n)
	for i := 0; i < n; i++ {
		ids = append(ids, r.page())
	}
	return ids
}

// decodeManifest parses raw into a manifest.
func decodeManifest(raw []byte) (*manifest, error) {
	r := &manifestReader{buf: raw}
	if magic := r.u32(); r.err == nil && magic != manifestMagic {
		return nil, fmt.Errorf("lsm: bad manifest magic %#x: %w", magic, disk.ErrCorrupt)
	}
	m := &manifest{}
	if b := r.take(1); b != nil {
		m.baseKind = b[0]
	}
	m.seq = r.u64()
	m.liveN = r.u64()
	m.flushEvery = r.u32()
	m.walHead = r.page()
	m.tombHead = r.page()
	m.tombCount = r.u32()
	m.tombPages = r.u32()
	nLevels := int(r.u32())
	if r.err == nil && (nLevels < 0 || nLevels > 64) {
		return nil, fmt.Errorf("lsm: manifest names %d levels: %w", nLevels, disk.ErrCorrupt)
	}
	for i := 0; i < nLevels && r.err == nil; i++ {
		var lv levelRecord
		lv.slot = r.u32()
		lv.n = r.u64()
		lv.dataHead = r.page()
		lv.dataPages = r.pages()
		lv.treePages = r.pages()
		lv.bloomHead = r.page()
		lv.bloomBits = r.u64()
		metaLen := int(r.u32())
		if meta := r.take(metaLen); meta != nil {
			lv.treeMeta = append([]byte(nil), meta...)
		}
		m.levels = append(m.levels, lv)
	}
	if r.err != nil {
		return nil, r.err
	}
	return m, nil
}

// metaBlobSize is the fixed width of the engine metadata blob: magic, base
// kind, manifest head, manifest length, manifest CRC. It fits the metadata
// page at every supported page size.
const metaBlobSize = 4 + 1 + 8 + 4 + 4

// encodeMetaBlob builds the engine metadata page blob pointing at a
// manifest chain. The CRC covers the manifest bytes, so a manifest whose
// pages pass their per-page checksums but decode to a different record
// (impossible short of a store bug, but cheap to rule out) still surfaces
// as corruption.
func encodeMetaBlob(baseKind byte, head disk.PageID, manifestLen int, sum uint32) []byte {
	buf := make([]byte, 0, metaBlobSize)
	buf = putU32(buf, metaMagic)
	buf = append(buf, baseKind)
	buf = putPage(buf, head)
	buf = putU32(buf, uint32(manifestLen))
	buf = putU32(buf, sum)
	return buf
}

// metaBlob is the decoded engine metadata blob.
type metaBlob struct {
	baseKind    byte
	head        disk.PageID
	manifestLen int
	sum         uint32
}

// DecodeMetaBlob parses the engine metadata blob. Exported so the public
// layer can learn the base kind before constructing the tree.
func DecodeMetaBlob(blob []byte) (baseKind byte, err error) {
	mb, err := decodeMetaBlob(blob)
	if err != nil {
		return 0, err
	}
	return mb.baseKind, nil
}

func decodeMetaBlob(blob []byte) (metaBlob, error) {
	if len(blob) != metaBlobSize {
		return metaBlob{}, fmt.Errorf("lsm: metadata blob is %d bytes, want %d: %w", len(blob), metaBlobSize, disk.ErrCorrupt)
	}
	if magic := binary.LittleEndian.Uint32(blob[0:4]); magic != metaMagic {
		return metaBlob{}, fmt.Errorf("lsm: bad metadata magic %#x: %w", magic, disk.ErrCorrupt)
	}
	return metaBlob{
		baseKind:    blob[4],
		head:        disk.PageID(binary.LittleEndian.Uint64(blob[5:13])),
		manifestLen: int(binary.LittleEndian.Uint32(blob[13:17])),
		sum:         binary.LittleEndian.Uint32(blob[17:21]),
	}, nil
}

// writeManifest persists m as a fresh blob chain and returns the metadata
// blob that commits it.
func writeManifest(p disk.Pager, m *manifest) (head disk.PageID, blob []byte, err error) {
	raw := m.encode()
	head, _, err = writeBlobChain(p, raw)
	if err != nil {
		return disk.InvalidPage, nil, fmt.Errorf("lsm: writing manifest chain: %w", err)
	}
	if head == disk.InvalidPage {
		return disk.InvalidPage, nil, fmt.Errorf("lsm: empty manifest encoding")
	}
	sum := crc32.Checksum(raw, castagnoli)
	return head, encodeMetaBlob(m.baseKind, head, len(raw), sum), nil
}

// readManifest loads and validates the manifest a metadata blob points at.
func readManifest(p disk.Pager, blob []byte) (*manifest, error) {
	mb, err := decodeMetaBlob(blob)
	if err != nil {
		return nil, err
	}
	if mb.manifestLen <= 0 {
		return nil, fmt.Errorf("lsm: metadata names a %d-byte manifest: %w", mb.manifestLen, disk.ErrCorrupt)
	}
	raw, err := readBlobChain(p, mb.head, mb.manifestLen)
	if err != nil {
		return nil, fmt.Errorf("lsm: reading manifest chain: %w", err)
	}
	if sum := crc32.Checksum(raw, castagnoli); sum != mb.sum {
		return nil, fmt.Errorf("lsm: manifest checksum mismatch (%#x != %#x): %w", sum, mb.sum, disk.ErrCorrupt)
	}
	m, err := decodeManifest(raw)
	if err != nil {
		return nil, err
	}
	if m.baseKind != mb.baseKind {
		return nil, fmt.Errorf("lsm: manifest base kind %d != metadata base kind %d: %w", m.baseKind, mb.baseKind, disk.ErrCorrupt)
	}
	return m, nil
}

// writeTombChain persists the tombstone set as a point chain in sorted
// order (deterministic bytes for a given set) and returns head and pages.
func writeTombChain(p disk.Pager, tombs map[record.Point]bool) (disk.PageID, int, error) {
	if len(tombs) == 0 {
		return disk.InvalidPage, 0, nil
	}
	pts := make([]record.Point, 0, len(tombs))
	for pt := range tombs {
		pts = append(pts, pt)
	}
	sortPoints(pts)
	w, err := disk.NewChainWriter(p, record.PointSize)
	if err != nil {
		return disk.InvalidPage, 0, err
	}
	var rec [record.PointSize]byte
	for _, pt := range pts {
		pt.Encode(rec[:])
		if err := w.Append(rec[:]); err != nil {
			return disk.InvalidPage, 0, err
		}
	}
	head, pages, _, err := w.Close()
	return head, pages, err
}

// readTombChain loads a tombstone chain into a set.
func readTombChain(p disk.Pager, head disk.PageID, count int) (map[record.Point]bool, error) {
	tombs := make(map[record.Point]bool, count)
	_, err := disk.ScanChain(p, record.PointSize, head, func(rec []byte) bool {
		tombs[record.DecodePoint(rec)] = true
		return true
	})
	if err != nil {
		return nil, err
	}
	if len(tombs) != count {
		return nil, fmt.Errorf("lsm: tombstone chain holds %d records, manifest says %d: %w", len(tombs), count, disk.ErrCorrupt)
	}
	return tombs, nil
}
