package lsm

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"pathcache/internal/disk"
	"pathcache/internal/record"
)

// volatileTree builds a Tree on an in-memory store whose "engine metadata
// page" is a byte slice the Commit hook swaps, so reopen-from-blob works
// without a FileStore.
type volatileTree struct {
	store *disk.Store
	base  Base
	blob  []byte
	fe    int
}

func newVolatile(t *testing.T, kind byte, pageSize, flushEvery int) (*volatileTree, *Tree) {
	t.Helper()
	base, err := BaseFor(kind)
	if err != nil {
		t.Fatalf("BaseFor(%d): %v", kind, err)
	}
	v := &volatileTree{store: disk.MustStore(pageSize), base: base, fe: flushEvery}
	tr, err := New(v.config())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return v, tr
}

func (v *volatileTree) config() Config {
	return Config{
		Pager:      v.store,
		Base:       v.base,
		FlushEvery: v.fe,
		Commit: func(blob []byte) error {
			v.blob = append([]byte(nil), blob...)
			return nil
		},
	}
}

func (v *volatileTree) reopen(t *testing.T) *Tree {
	t.Helper()
	tr, err := Open(v.config(), v.blob)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return tr
}

func pt(x, y int64, id uint64) record.Point { return record.Point{X: x, Y: y, ID: id} }

func sortedCopy(pts []record.Point) []record.Point {
	out := append([]record.Point(nil), pts...)
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

func wantQuery(live map[record.Point]bool, a, b int64) []record.Point {
	var out []record.Point
	for p := range live {
		if p.X >= a && p.Y >= b {
			out = append(out, p)
		}
	}
	return sortedCopy(out)
}

func checkQuery(t *testing.T, tr *Tree, s *disk.Store, live map[record.Point]bool, a, b int64) {
	t.Helper()
	got, err := tr.Query(s, a, b)
	if err != nil {
		t.Fatalf("Query(%d,%d): %v", a, b, err)
	}
	want := wantQuery(live, a, b)
	gs := sortedCopy(got)
	if len(gs) != len(want) {
		t.Fatalf("Query(%d,%d) returned %d points, want %d\ngot  %v\nwant %v", a, b, len(gs), len(want), gs, want)
	}
	for i := range gs {
		if gs[i] != want[i] {
			t.Fatalf("Query(%d,%d)[%d] = %v, want %v", a, b, i, gs[i], want[i])
		}
	}
}

// TestTreeLifecycle drives insert/flush/delete/compact/reopen on the
// 2-sided base and cross-checks every query against a map oracle.
func TestTreeLifecycle(t *testing.T) {
	v, tr := newVolatile(t, BaseTwoSided, 256, 4)
	live := map[record.Point]bool{}
	rng := rand.New(rand.NewSource(7))

	insert := func(p record.Point) {
		t.Helper()
		if err := tr.Insert(v.store, p); err != nil {
			t.Fatalf("Insert(%v): %v", p, err)
		}
		live[p] = true
		if tr.NeedsFlush() {
			if _, err := tr.Flush(v.store); err != nil {
				t.Fatalf("Flush: %v", err)
			}
		}
	}
	remove := func(p record.Point) {
		t.Helper()
		if err := tr.Delete(v.store, p); err != nil {
			t.Fatalf("Delete(%v): %v", p, err)
		}
		delete(live, p)
		if tr.NeedsFlush() {
			if _, err := tr.Flush(v.store); err != nil {
				t.Fatalf("Flush: %v", err)
			}
		}
	}

	var all []record.Point
	for i := 0; i < 60; i++ {
		p := pt(rng.Int63n(100), rng.Int63n(100), uint64(i))
		all = append(all, p)
		insert(p)
	}
	if tr.Len() != 60 {
		t.Fatalf("Len = %d, want 60", tr.Len())
	}
	checkQuery(t, tr, v.store, live, 0, 0)
	checkQuery(t, tr, v.store, live, 50, 50)

	// Delete a third, including some still in the memtable.
	for i := 0; i < 20; i++ {
		remove(all[i*3])
	}
	checkQuery(t, tr, v.store, live, 0, 0)
	checkQuery(t, tr, v.store, live, 30, 10)

	// Re-insert a deleted point: the revive path.
	revived := all[0]
	insert(revived)
	checkQuery(t, tr, v.store, live, 0, 0)

	// Force everything through a flush, compact, and check again.
	if _, err := tr.Flush(v.store); err != nil {
		t.Fatalf("final flush: %v", err)
	}
	if _, err := tr.Compact(v.store); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if tr.TombCount() != 0 {
		t.Fatalf("TombCount after compact = %d", tr.TombCount())
	}
	if tr.Levels() != 1 {
		t.Fatalf("Levels after compact = %d, want 1", tr.Levels())
	}
	checkQuery(t, tr, v.store, live, 0, 0)
	checkQuery(t, tr, v.store, live, 70, 20)

	// Reopen from the committed blob and compare.
	re := v.reopen(t)
	if re.Len() != tr.Len() {
		t.Fatalf("reopened Len = %d, want %d", re.Len(), tr.Len())
	}
	checkQuery(t, re, v.store, live, 0, 0)
	checkQuery(t, re, v.store, live, 50, 50)
}

// TestTreeWALReplay leaves entries in the WAL (no flush) and checks a
// reopen replays them exactly.
func TestTreeWALReplay(t *testing.T) {
	v, tr := newVolatile(t, BaseTwoSided, 256, 100)
	live := map[record.Point]bool{}
	for i := 0; i < 7; i++ {
		p := pt(int64(i), int64(10-i), uint64(i))
		if err := tr.Insert(v.store, p); err != nil {
			t.Fatalf("Insert: %v", err)
		}
		live[p] = true
	}
	if err := tr.Delete(v.store, pt(3, 7, 3)); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	delete(live, pt(3, 7, 3))

	re := v.reopen(t)
	if re.Len() != len(live) {
		t.Fatalf("reopened Len = %d, want %d", re.Len(), len(live))
	}
	if re.WALEntries() != 8 {
		t.Fatalf("reopened WALEntries = %d, want 8", re.WALEntries())
	}
	checkQuery(t, re, v.store, live, 0, 0)

	// The replayed tree keeps accepting updates on the same WAL.
	p := pt(42, 42, 99)
	if err := re.Insert(v.store, p); err != nil {
		t.Fatalf("Insert after replay: %v", err)
	}
	live[p] = true
	re2 := v.reopen(t)
	checkQuery(t, re2, v.store, live, 0, 0)
}

// TestTreeStab checks the stabbing shape on the interval base: points are
// diagonal-corner interval encodings.
func TestTreeStab(t *testing.T) {
	for _, kind := range []byte{BaseSegment, BaseInterval, BaseStabbing} {
		kind := kind
		t.Run(fmt.Sprintf("kind%d", kind), func(t *testing.T) {
			v, tr := newVolatile(t, kind, 256, 3)
			type iv struct{ lo, hi int64 }
			ivs := []iv{{0, 10}, {5, 15}, {12, 20}, {-3, 4}, {8, 9}, {14, 30}, {1, 2}}
			for i, s := range ivs {
				p := record.Point{X: -s.lo, Y: s.hi, ID: uint64(i)}
				if err := tr.Insert(v.store, p); err != nil {
					t.Fatalf("Insert: %v", err)
				}
				if tr.NeedsFlush() {
					if _, err := tr.Flush(v.store); err != nil {
						t.Fatalf("Flush: %v", err)
					}
				}
			}
			for _, q := range []int64{-5, 0, 4, 9, 13, 21, 31} {
				got, err := tr.Stab(v.store, q)
				if err != nil {
					t.Fatalf("Stab(%d): %v", q, err)
				}
				var want int
				for _, s := range ivs {
					if s.lo <= q && q <= s.hi {
						want++
					}
				}
				if len(got) != want {
					t.Fatalf("Stab(%d) = %d intervals, want %d", q, len(got), want)
				}
				for _, p := range got {
					if !(-p.X <= q && q <= p.Y) {
						t.Fatalf("Stab(%d) returned non-stabbed interval [%d,%d]", q, -p.X, p.Y)
					}
				}
			}
			// The 2-sided shape is unsupported on pure interval bases.
			if kind != BaseStabbing {
				if _, err := tr.Query(v.store, 0, 0); !errors.Is(err, ErrUnsupported) {
					t.Fatalf("Query on kind %d = %v, want ErrUnsupported", kind, err)
				}
			}
		})
	}
}

// TestTreeHas exercises the bloom-guided membership probe.
func TestTreeHas(t *testing.T) {
	v, tr := newVolatile(t, BaseTwoSided, 256, 2)
	pts := []record.Point{pt(1, 1, 1), pt(2, 2, 2), pt(3, 3, 3), pt(4, 4, 4), pt(5, 5, 5)}
	for _, p := range pts {
		if err := tr.Insert(v.store, p); err != nil {
			t.Fatalf("Insert: %v", err)
		}
		if tr.NeedsFlush() {
			if _, err := tr.Flush(v.store); err != nil {
				t.Fatalf("Flush: %v", err)
			}
		}
	}
	for _, p := range pts {
		ok, err := tr.Has(v.store, p)
		if err != nil {
			t.Fatalf("Has(%v): %v", p, err)
		}
		if !ok {
			t.Fatalf("Has(%v) = false for a live record", p)
		}
	}
	for _, p := range []record.Point{pt(1, 1, 9), pt(100, 100, 100), pt(-1, -1, 0)} {
		ok, err := tr.Has(v.store, p)
		if err != nil {
			t.Fatalf("Has(%v): %v", p, err)
		}
		if ok {
			t.Fatalf("Has(%v) = true for an absent record", p)
		}
	}
	// Tombstoned records probe false immediately and after flush.
	if err := tr.Delete(v.store, pts[0]); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	for i := 0; i < 2; i++ {
		ok, err := tr.Has(v.store, pts[0])
		if err != nil {
			t.Fatalf("Has: %v", err)
		}
		if ok {
			t.Fatalf("Has = true for deleted record (pass %d)", i)
		}
		if _, err := tr.Flush(v.store); err != nil {
			t.Fatalf("Flush: %v", err)
		}
	}
}

// TestTreeCascade checks the Bentley–Saxe level shape: flushing k times
// with a full memtable occupies the binary-counter pattern of slots.
func TestTreeCascade(t *testing.T) {
	v, tr := newVolatile(t, BaseTwoSided, 256, 2)
	id := uint64(0)
	fill := func() {
		t.Helper()
		for i := 0; i < 2; i++ {
			id++
			if err := tr.Insert(v.store, pt(int64(id), int64(id), id)); err != nil {
				t.Fatalf("Insert: %v", err)
			}
		}
		if !tr.NeedsFlush() {
			t.Fatal("memtable full but NeedsFlush is false")
		}
		if _, err := tr.Flush(v.store); err != nil {
			t.Fatalf("Flush: %v", err)
		}
	}
	// Flush counts 1..3: slots follow a binary counter (1 -> 10 -> 11).
	fill()
	if got := tr.LevelInfos(); len(got) != 1 || got[0].Slot != 0 {
		t.Fatalf("after 1 flush: %+v", got)
	}
	fill()
	if got := tr.LevelInfos(); len(got) != 1 || got[0].Slot != 1 || got[0].Records != 4 {
		t.Fatalf("after 2 flushes: %+v", got)
	}
	fill()
	got := tr.LevelInfos()
	if len(got) != 2 || got[0].Slot != 0 || got[1].Slot != 1 {
		t.Fatalf("after 3 flushes: %+v", got)
	}
	if tr.Seq() != 3 {
		t.Fatalf("Seq = %d, want 3", tr.Seq())
	}
}

// TestCompactSnapshotConcurrent races background compactions against
// writers; every compaction either lands or reports ErrStale, and the final
// state matches the oracle.
func TestCompactSnapshotConcurrent(t *testing.T) {
	v, tr := newVolatile(t, BaseTwoSided, 256, 4)
	var mu sync.Mutex // serializes store access ordering for the oracle only
	live := map[record.Point]bool{}

	done := make(chan struct{})
	var compactErrs []error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if _, err := tr.CompactSnapshot(v.store); err != nil && !errors.Is(err, ErrStale) {
				mu.Lock()
				compactErrs = append(compactErrs, err)
				mu.Unlock()
				return
			}
		}
	}()

	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		p := pt(rng.Int63n(50), rng.Int63n(50), uint64(i))
		if err := tr.Insert(v.store, p); err != nil {
			t.Fatalf("Insert: %v", err)
		}
		mu.Lock()
		live[p] = true
		mu.Unlock()
		if tr.NeedsFlush() {
			if _, err := tr.Flush(v.store); err != nil {
				t.Fatalf("Flush: %v", err)
			}
		}
	}
	close(done)
	wg.Wait()
	for _, err := range compactErrs {
		t.Fatalf("CompactSnapshot: %v", err)
	}
	if _, err := tr.Flush(v.store); err != nil {
		t.Fatalf("final flush: %v", err)
	}
	checkQuery(t, tr, v.store, live, 0, 0)
	re := v.reopen(t)
	checkQuery(t, re, v.store, live, 0, 0)
}

// TestTreeOpenWrongBase rejects a blob committed under a different base.
func TestTreeOpenWrongBase(t *testing.T) {
	v, tr := newVolatile(t, BaseTwoSided, 256, 4)
	if err := tr.Insert(v.store, pt(1, 1, 1)); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	other, err := BaseFor(BaseWindow)
	if err != nil {
		t.Fatalf("BaseFor: %v", err)
	}
	cfg := v.config()
	cfg.Base = other
	if _, err := Open(cfg, v.blob); err == nil {
		t.Fatal("Open with mismatched base succeeded")
	}
}

// TestTreePageAccounting flushes and compacts repeatedly and checks the
// store's live page count stays bounded — superseded chains, tree pages and
// manifests really are freed.
func TestTreePageAccounting(t *testing.T) {
	v, tr := newVolatile(t, BaseTwoSided, 256, 4)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 128; i++ {
		if err := tr.Insert(v.store, pt(rng.Int63n(1000), rng.Int63n(1000), uint64(i))); err != nil {
			t.Fatalf("Insert: %v", err)
		}
		if tr.NeedsFlush() {
			if _, err := tr.Flush(v.store); err != nil {
				t.Fatalf("Flush: %v", err)
			}
		}
	}
	if _, err := tr.Compact(v.store); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	liveBefore := v.store.NumPages()
	// Churn: insert-then-delete batches with compactions in between; live
	// pages must stay in the same ballpark rather than growing monotonically.
	for round := 0; round < 3; round++ {
		var batch []record.Point
		for i := 0; i < 64; i++ {
			p := pt(rng.Int63n(1000), rng.Int63n(1000), uint64(1000+round*100+i))
			batch = append(batch, p)
			if err := tr.Insert(v.store, p); err != nil {
				t.Fatalf("Insert: %v", err)
			}
			if tr.NeedsFlush() {
				if _, err := tr.Flush(v.store); err != nil {
					t.Fatalf("Flush: %v", err)
				}
			}
		}
		for _, p := range batch {
			if err := tr.Delete(v.store, p); err != nil {
				t.Fatalf("Delete: %v", err)
			}
			if tr.NeedsFlush() {
				if _, err := tr.Flush(v.store); err != nil {
					t.Fatalf("Flush: %v", err)
				}
			}
		}
		if _, err := tr.Compact(v.store); err != nil {
			t.Fatalf("Compact: %v", err)
		}
	}
	liveAfter := v.store.NumPages()
	if liveAfter > liveBefore*4+64 {
		t.Fatalf("live pages grew from %d to %d across churn; superseded state is leaking", liveBefore, liveAfter)
	}
}
