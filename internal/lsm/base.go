// Package lsm is the disk-resident write tier of the repository: a
// log-structured dynamization of the paper's static path-cached structures.
// Updates land in a WAL-backed memtable; every FlushEvery records the
// memtable is sealed into a static level built with one of the six existing
// builders, cascading a Bentley–Saxe merge through the occupied level
// prefix; deletes tombstone; a crash-safe manifest names the live levels.
// See DESIGN.md §11 for the on-disk format and the recovery state machine.
package lsm

import (
	"errors"
	"fmt"
	"math"

	"pathcache/internal/disk"
	"pathcache/internal/ext3side"
	"pathcache/internal/extint"
	"pathcache/internal/extpst"
	"pathcache/internal/extseg"
	"pathcache/internal/extwindow"
	"pathcache/internal/record"
)

// Base kind bytes, matching the engine registry's kind bytes for the six
// static structures (asserted by the public layer's tests).
const (
	BaseTwoSided  byte = 1
	BaseThreeSide byte = 2
	BaseSegment   byte = 3
	BaseInterval  byte = 4
	BaseStabbing  byte = 5
	BaseWindow    byte = 6
)

// ErrUnsupported reports a query shape the configured base kind cannot
// answer: Stab on a point base, or a 2-sided Query on the segment and
// interval trees (which only answer stabbing queries).
var ErrUnsupported = errors.New("lsm: query shape unsupported by base kind")

// LevelTree is one sealed static level as the write tier sees it: an
// immutable structure that can re-encode its metadata for the manifest and
// answer the two query shapes. Implementations route every page access
// through the pager passed per call, so callers attribute the I/O to
// op-scoped counters.
//
// Records are stored points. For interval bases a point encodes the
// interval under the diagonal-corner reduction the public layer uses:
// X = -Lo, Y = Hi, so the stabbing predicate is {X >= -q, Y >= q}.
type LevelTree interface {
	Len() int
	EncodeMeta() []byte
	// Query answers the 2-sided query {x >= a, y >= b} over stored points.
	Query(p disk.Pager, a, b int64) ([]record.Point, error)
	// Stab answers the stabbing query at q over stored interval encodings.
	Stab(p disk.Pager, q int64) ([]record.Point, error)
}

// Base builds and reopens sealed levels of one static kind.
type Base interface {
	// Kind is the engine registry kind byte of the base structure.
	Kind() byte
	Name() string
	// Build seals pts (sorted by record.Point.Less) into a fresh static
	// structure on p with the given page layout. Build is never called
	// with an empty slice.
	Build(p disk.Pager, pts []record.Point, layout disk.Layout) (LevelTree, error)
	Reopen(p disk.Pager, meta []byte) (LevelTree, error)
}

// BaseFor returns the Base for an engine kind byte.
func BaseFor(kind byte) (Base, error) {
	switch kind {
	case BaseTwoSided:
		return pstBase{kind: BaseTwoSided, name: "twosided"}, nil
	case BaseThreeSide:
		return threeSideBase{}, nil
	case BaseSegment:
		return segBase{}, nil
	case BaseInterval:
		return intBase{}, nil
	case BaseStabbing:
		return pstBase{kind: BaseStabbing, name: "stabbing", stab: true}, nil
	case BaseWindow:
		return windowBase{}, nil
	default:
		return nil, fmt.Errorf("lsm: no base registered for kind %d", kind)
	}
}

// pstBase seals levels as Segmented external priority search trees — the
// 2-sided structure, doubling as the stabbing base via the diagonal-corner
// reduction (Stab(q) is the 2-sided query {x >= -q, y >= q}).
type pstBase struct {
	kind byte
	name string
	stab bool
}

func (b pstBase) Kind() byte   { return b.kind }
func (b pstBase) Name() string { return b.name }

func (b pstBase) Build(p disk.Pager, pts []record.Point, layout disk.Layout) (LevelTree, error) {
	t, err := extpst.BuildLayout(p, pts, extpst.Segmented, layout)
	if err != nil {
		return nil, fmt.Errorf("lsm: sealing %s level: %w", b.name, err)
	}
	return pstLevel{t: t, stab: b.stab}, nil
}

func (b pstBase) Reopen(p disk.Pager, meta []byte) (LevelTree, error) {
	m, err := extpst.DecodeMeta(meta)
	if err != nil {
		return nil, fmt.Errorf("lsm: decoding %s level: %w", b.name, err)
	}
	t, err := extpst.Reopen(p, m)
	if err != nil {
		return nil, fmt.Errorf("lsm: reopening %s level: %w", b.name, err)
	}
	return pstLevel{t: t, stab: b.stab}, nil
}

type pstLevel struct {
	t    *extpst.Tree
	stab bool
}

func (l pstLevel) Len() int           { return l.t.Len() }
func (l pstLevel) EncodeMeta() []byte { return l.t.Meta().Encode() }

func (l pstLevel) Query(p disk.Pager, a, b int64) ([]record.Point, error) {
	pts, _, err := l.t.WithPager(p).Query(a, b)
	return pts, err
}

func (l pstLevel) Stab(p disk.Pager, q int64) ([]record.Point, error) {
	if !l.stab {
		return nil, ErrUnsupported
	}
	pts, _, err := l.t.WithPager(p).Query(-q, q)
	return pts, err
}

// threeSideBase seals levels as external 3-sided trees; the 2-sided query
// {x >= a, y >= b} is the 3-sided query {a <= x <= +inf, y >= b}.
type threeSideBase struct{}

func (threeSideBase) Kind() byte   { return BaseThreeSide }
func (threeSideBase) Name() string { return "threeside" }

func (threeSideBase) Build(p disk.Pager, pts []record.Point, layout disk.Layout) (LevelTree, error) {
	t, err := ext3side.BuildLayout(p, pts, layout)
	if err != nil {
		return nil, fmt.Errorf("lsm: sealing threeside level: %w", err)
	}
	return threeSideLevel{t: t}, nil
}

func (threeSideBase) Reopen(p disk.Pager, meta []byte) (LevelTree, error) {
	m, err := ext3side.DecodeMeta(meta)
	if err != nil {
		return nil, fmt.Errorf("lsm: decoding threeside level: %w", err)
	}
	t, err := ext3side.Reopen(p, m)
	if err != nil {
		return nil, fmt.Errorf("lsm: reopening threeside level: %w", err)
	}
	return threeSideLevel{t: t}, nil
}

type threeSideLevel struct{ t *ext3side.Tree }

func (l threeSideLevel) Len() int           { return l.t.Len() }
func (l threeSideLevel) EncodeMeta() []byte { return l.t.Meta().Encode() }

func (l threeSideLevel) Query(p disk.Pager, a, b int64) ([]record.Point, error) {
	pts, _, err := l.t.WithPager(p).Query(a, math.MaxInt64, b)
	return pts, err
}

func (l threeSideLevel) Stab(disk.Pager, int64) ([]record.Point, error) {
	return nil, ErrUnsupported
}

// windowBase seals levels as external range trees; the 2-sided query is the
// window query [a, +inf] × [b, +inf].
type windowBase struct{}

func (windowBase) Kind() byte   { return BaseWindow }
func (windowBase) Name() string { return "window" }

func (windowBase) Build(p disk.Pager, pts []record.Point, layout disk.Layout) (LevelTree, error) {
	t, err := extwindow.BuildLayout(p, pts, layout)
	if err != nil {
		return nil, fmt.Errorf("lsm: sealing window level: %w", err)
	}
	return windowLevel{t: t}, nil
}

func (windowBase) Reopen(p disk.Pager, meta []byte) (LevelTree, error) {
	m, err := extwindow.DecodeMeta(meta)
	if err != nil {
		return nil, fmt.Errorf("lsm: decoding window level: %w", err)
	}
	t, err := extwindow.Reopen(p, m)
	if err != nil {
		return nil, fmt.Errorf("lsm: reopening window level: %w", err)
	}
	return windowLevel{t: t}, nil
}

type windowLevel struct{ t *extwindow.Tree }

func (l windowLevel) Len() int           { return l.t.Len() }
func (l windowLevel) EncodeMeta() []byte { return l.t.Meta().Encode() }

func (l windowLevel) Query(p disk.Pager, a, b int64) ([]record.Point, error) {
	pts, _, err := l.t.WithPager(p).Query(a, math.MaxInt64, b, math.MaxInt64)
	return pts, err
}

func (l windowLevel) Stab(disk.Pager, int64) ([]record.Point, error) {
	return nil, ErrUnsupported
}

// segBase seals levels as path-cached external segment trees over the
// interval decodings of the stored points.
type segBase struct{}

func (segBase) Kind() byte   { return BaseSegment }
func (segBase) Name() string { return "segment" }

func (segBase) Build(p disk.Pager, pts []record.Point, layout disk.Layout) (LevelTree, error) {
	t, err := extseg.BuildLayout(p, toIntervals(pts), extseg.PathCached, layout)
	if err != nil {
		return nil, fmt.Errorf("lsm: sealing segment level: %w", err)
	}
	return segLevel{t: t}, nil
}

func (segBase) Reopen(p disk.Pager, meta []byte) (LevelTree, error) {
	m, err := extseg.DecodeMeta(meta)
	if err != nil {
		return nil, fmt.Errorf("lsm: decoding segment level: %w", err)
	}
	t, err := extseg.Reopen(p, m)
	if err != nil {
		return nil, fmt.Errorf("lsm: reopening segment level: %w", err)
	}
	return segLevel{t: t}, nil
}

type segLevel struct{ t *extseg.Tree }

func (l segLevel) Len() int           { return l.t.Len() }
func (l segLevel) EncodeMeta() []byte { return l.t.Meta().Encode() }

func (l segLevel) Query(disk.Pager, int64, int64) ([]record.Point, error) {
	return nil, ErrUnsupported
}

func (l segLevel) Stab(p disk.Pager, q int64) ([]record.Point, error) {
	ivs, _, err := l.t.WithPager(p).Stab(q)
	if err != nil {
		return nil, err
	}
	return toPoints(ivs), nil
}

// intBase seals levels as path-cached external interval trees.
type intBase struct{}

func (intBase) Kind() byte   { return BaseInterval }
func (intBase) Name() string { return "interval" }

func (intBase) Build(p disk.Pager, pts []record.Point, layout disk.Layout) (LevelTree, error) {
	t, err := extint.BuildLayout(p, toIntervals(pts), extint.PathCached, layout)
	if err != nil {
		return nil, fmt.Errorf("lsm: sealing interval level: %w", err)
	}
	return intLevel{t: t}, nil
}

func (intBase) Reopen(p disk.Pager, meta []byte) (LevelTree, error) {
	m, err := extint.DecodeMeta(meta)
	if err != nil {
		return nil, fmt.Errorf("lsm: decoding interval level: %w", err)
	}
	t, err := extint.Reopen(p, m)
	if err != nil {
		return nil, fmt.Errorf("lsm: reopening interval level: %w", err)
	}
	return intLevel{t: t}, nil
}

type intLevel struct{ t *extint.Tree }

func (l intLevel) Len() int           { return l.t.Len() }
func (l intLevel) EncodeMeta() []byte { return l.t.Meta().Encode() }

func (l intLevel) Query(disk.Pager, int64, int64) ([]record.Point, error) {
	return nil, ErrUnsupported
}

func (l intLevel) Stab(p disk.Pager, q int64) ([]record.Point, error) {
	ivs, _, err := l.t.WithPager(p).Stab(q)
	if err != nil {
		return nil, err
	}
	return toPoints(ivs), nil
}

// toIntervals decodes the diagonal-corner point encoding back to intervals
// for the segment- and interval-tree builders.
func toIntervals(pts []record.Point) []record.Interval {
	out := make([]record.Interval, len(pts))
	for i, p := range pts {
		out[i] = record.Interval{Lo: -p.X, Hi: p.Y, ID: p.ID}
	}
	return out
}

// toPoints re-encodes intervals as diagonal-corner points.
func toPoints(ivs []record.Interval) []record.Point {
	out := make([]record.Point, len(ivs))
	for i, iv := range ivs {
		out[i] = record.Point{X: -iv.Lo, Y: iv.Hi, ID: iv.ID}
	}
	return out
}
