package lsm

import (
	"fmt"

	"pathcache/internal/disk"
	"pathcache/internal/record"
)

// Each sealed level carries a bloom filter over its record encodings so a
// membership probe (Has — the "negative stab") skips levels that cannot
// hold the record without spending a single page read. Filters are sized at
// bloomBitsPerRec bits per record with bloomHashes probes, giving a false
// positive rate around 1%; they are persisted as a byte chain next to the
// level and loaded whole at open (a level of n records costs n·10 bits,
// a fraction of its data chain).
const (
	bloomBitsPerRec = 10
	bloomHashes     = 7
)

// bloom is a standard double-hashed Bloom filter over fixed-width record
// encodings.
type bloom struct {
	bits  []byte
	nbits uint64
}

// newBloom sizes a filter for n records (n >= 1).
func newBloom(n int) *bloom {
	nbits := uint64(n) * bloomBitsPerRec
	// Round up to whole bytes, minimum one word, so the chain encoding is
	// byte-exact.
	if nbits < 64 {
		nbits = 64
	}
	nbits = (nbits + 7) &^ 7
	return &bloom{bits: make([]byte, nbits/8), nbits: nbits}
}

// hash2 derives the two FNV-style hashes double hashing combines.
func hash2(key []byte) (uint64, uint64) {
	const (
		offset1 = 14695981039346656037
		offset2 = 0x9e3779b97f4a7c15
		prime   = 1099511628211
	)
	h1, h2 := uint64(offset1), uint64(offset2)
	for _, b := range key {
		h1 = (h1 ^ uint64(b)) * prime
		h2 = (h2 + uint64(b)) * prime
		h2 ^= h2 >> 29
	}
	return h1, h2
}

func (f *bloom) add(key []byte) {
	h1, h2 := hash2(key)
	for i := uint64(0); i < bloomHashes; i++ {
		bit := (h1 + i*h2) % f.nbits
		f.bits[bit/8] |= 1 << (bit % 8)
	}
}

// may reports whether the key may be in the set (false is definitive).
func (f *bloom) may(key []byte) bool {
	h1, h2 := hash2(key)
	for i := uint64(0); i < bloomHashes; i++ {
		bit := (h1 + i*h2) % f.nbits
		if f.bits[bit/8]&(1<<(bit%8)) == 0 {
			return false
		}
	}
	return true
}

// addPoint hashes a point's canonical fixed-width encoding.
func (f *bloom) addPoint(pt record.Point) {
	var key [record.PointSize]byte
	pt.Encode(key[:])
	f.add(key[:])
}

// mayPoint is may over a point's canonical encoding.
func (f *bloom) mayPoint(pt record.Point) bool {
	var key [record.PointSize]byte
	pt.Encode(key[:])
	return f.may(key[:])
}

// writeBloom persists the filter as a byte chain and returns its head and
// page count.
func writeBloom(p disk.Pager, f *bloom) (disk.PageID, int, error) {
	head, pages, err := writeBlobChain(p, f.bits)
	if err != nil {
		return disk.InvalidPage, 0, fmt.Errorf("lsm: writing bloom chain: %w", err)
	}
	return head, pages, nil
}

// readBloom loads a persisted filter of nbits bits from its chain.
func readBloom(p disk.Pager, head disk.PageID, nbits uint64) (*bloom, error) {
	raw, err := readBlobChain(p, head, int(nbits/8))
	if err != nil {
		return nil, fmt.Errorf("lsm: reading bloom chain: %w", err)
	}
	return &bloom{bits: raw, nbits: nbits}, nil
}
