package lsm

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"pathcache/internal/disk"
	"pathcache/internal/record"
)

// WAL entry encoding: one op byte, seven bytes of padding, then the
// fixed-width point — 32 bytes, so the entry capacity of a WAL page is
// ChainCap(pageSize, entrySize).
const entrySize = 8 + record.PointSize

const (
	opInsert byte = 1
	opDelete byte = 2
)

// ErrStale reports a snapshot compaction that lost the race with a
// concurrent flush or compaction: nothing was committed, the freshly built
// pages were released, and the caller may simply retry.
var ErrStale = errors.New("lsm: compaction superseded by concurrent writes")

// Config wires a Tree to its environment.
type Config struct {
	// Pager is the store the tree lives on; used for recovery reads, WAL
	// creation and any operation invoked without an explicit pager view.
	Pager disk.Pager
	// Base seals and reopens the static levels.
	Base Base
	// FlushEvery is the number of WAL entries that triggers a memtable
	// flush; zero selects DefaultFlushEvery.
	FlushEvery int
	// Layout is the skeletal page layout newly sealed levels are built
	// with. Existing levels self-describe (the layout is recorded in their
	// page headers and metadata), so a tree may legitimately mix layouts
	// across levels after a reopen under a different Layout.
	Layout disk.Layout
	// Sync is the durability barrier run after every acknowledged WAL
	// append (engine.Backend.Sync for file-backed trees); nil means none.
	Sync func() error
	// Commit atomically installs a new manifest-pointing metadata blob
	// (engine.Backend.ReplaceMeta for file-backed trees); nil means the
	// tree is volatile. Commit must be durable when it returns.
	Commit func(blob []byte) error
}

// DefaultFlushEvery is the memtable capacity when Config.FlushEvery is 0.
const DefaultFlushEvery = 64

// levelState is one sealed level: the reopened static structure plus the
// sidecars the manifest tracks for it. Immutable once built — compactions
// replace whole levelState values under the write lock, so concurrent
// readers holding the read lock never observe a level mutating.
type levelState struct {
	slot       int
	n          int
	tree       LevelTree
	dataHead   disk.PageID
	dataPages  []disk.PageID
	treePages  []disk.PageID
	bloomHead  disk.PageID
	bloomBits  uint64
	bloomPages int
	bloom      *bloom
}

// LevelInfo is the public per-level summary (pcindex info).
type LevelInfo struct {
	Slot       int
	Records    int
	TreePages  int
	DataPages  int
	BloomPages int
}

// Tree is the write tier: a WAL-backed memtable over sealed static levels.
// Queries may run concurrently with each other and with updates; updates
// are serialized by the internal lock.
type Tree struct {
	cfg        Config
	b          int // page capacity in points
	flushEvery int

	mu     sync.RWMutex
	wal    *disk.ChainAppender
	mem    map[record.Point]int // net memtable effect: +1 insert, -1 delete
	memOps int                  // raw WAL entries since the last flush
	// levels and tombs are published as bare copy-on-write snapshots:
	// CompactSnapshot reads them under RLock and then works lock-free, so
	// writers must build a fresh value and install it wholesale — never
	// mutate in place. pcvet's snapshotimmutable analyzer enforces this.
	//pcvet:snapshot
	levels []*levelState
	//pcvet:snapshot
	tombs    map[record.Point]bool
	tombHead disk.PageID
	tombPg   int
	n        int    // live records including the memtable's net effect
	flushedN int    // live records excluding the memtable (manifest liveN)
	seq      uint64 // manifest sequence, bumped by every flush/compaction

	manifestHead disk.PageID
}

// New creates an empty tree and commits its first (empty) manifest, so a
// crash immediately after creation still recovers a valid empty index.
func New(cfg Config) (*Tree, error) {
	t, err := prepare(cfg)
	if err != nil {
		return nil, err
	}
	p := cfg.Pager
	wal, err := disk.NewChainAppender(p, entrySize)
	if err != nil {
		return nil, fmt.Errorf("lsm: creating WAL: %w", err)
	}
	t.wal = wal
	head, blob, err := writeManifest(p, t.manifest())
	if err != nil {
		return nil, err
	}
	if err := t.commit(blob); err != nil {
		return nil, err
	}
	t.manifestHead = head
	return t, nil
}

// Open recovers a tree from the engine metadata blob: read and verify the
// manifest, reopen every sealed level and its bloom filter, load the
// tombstone set, and replay the WAL into the memtable. A replayed memtable
// at or past the flush threshold is flushed by the next update, not here —
// recovery performs no writes.
func Open(cfg Config, blob []byte) (*Tree, error) {
	t, err := prepare(cfg)
	if err != nil {
		return nil, err
	}
	p := cfg.Pager
	m, err := readManifest(p, blob)
	if err != nil {
		return nil, err
	}
	if m.baseKind != cfg.Base.Kind() {
		return nil, fmt.Errorf("lsm: file base kind %d, configured base %q is kind %d", m.baseKind, cfg.Base.Name(), cfg.Base.Kind())
	}
	if m.flushEvery >= 1 && cfg.FlushEvery == 0 {
		t.flushEvery = int(m.flushEvery)
	}
	mb, err := decodeMetaBlob(blob)
	if err != nil {
		return nil, err
	}
	t.manifestHead = mb.head
	t.seq = m.seq
	t.flushedN = int(m.liveN)
	t.n = t.flushedN
	var levels []*levelState
	for _, lr := range m.levels {
		lv, err := reopenLevel(p, cfg.Base, lr)
		if err != nil {
			return nil, err
		}
		for len(levels) <= lv.slot {
			levels = append(levels, nil)
		}
		if levels[lv.slot] != nil {
			return nil, fmt.Errorf("lsm: manifest names slot %d twice: %w", lv.slot, disk.ErrCorrupt)
		}
		levels[lv.slot] = lv
	}
	t.levels = levels
	t.tombHead, t.tombPg = m.tombHead, int(m.tombPages)
	tombs, err := readTombChain(p, m.tombHead, int(m.tombCount))
	if err != nil {
		return nil, fmt.Errorf("lsm: reading tombstone chain: %w", err)
	}
	t.tombs = tombs
	wal, err := disk.OpenChainAppender(p, entrySize, m.walHead)
	if err != nil {
		return nil, fmt.Errorf("lsm: reopening WAL: %w", err)
	}
	t.wal = wal
	if err := t.replayWAL(p, m.walHead); err != nil {
		return nil, err
	}
	return t, nil
}

func prepare(cfg Config) (*Tree, error) {
	if cfg.Pager == nil || cfg.Base == nil {
		return nil, errors.New("lsm: config needs a pager and a base")
	}
	b := disk.ChainCap(cfg.Pager.PageSize(), record.PointSize)
	if b < 2 {
		return nil, fmt.Errorf("lsm: page size %d holds %d points; need >= 2", cfg.Pager.PageSize(), b)
	}
	if cfg.FlushEvery < 0 {
		return nil, fmt.Errorf("lsm: negative FlushEvery %d", cfg.FlushEvery)
	}
	fe := cfg.FlushEvery
	if fe == 0 {
		fe = DefaultFlushEvery
	}
	return &Tree{
		cfg:        cfg,
		b:          b,
		flushEvery: fe,
		mem:        map[record.Point]int{},
		tombs:      map[record.Point]bool{},
		tombHead:   disk.InvalidPage,
	}, nil
}

// reopenLevel rebuilds one levelState from its manifest record.
func reopenLevel(p disk.Pager, base Base, lr levelRecord) (*levelState, error) {
	tree, err := base.Reopen(p, lr.treeMeta)
	if err != nil {
		return nil, err
	}
	bl, err := readBloom(p, lr.bloomHead, lr.bloomBits)
	if err != nil {
		return nil, err
	}
	bloomBytes := int(lr.bloomBits / 8)
	return &levelState{
		slot:       int(lr.slot),
		n:          int(lr.n),
		tree:       tree,
		dataHead:   lr.dataHead,
		dataPages:  lr.dataPages,
		treePages:  lr.treePages,
		bloomHead:  lr.bloomHead,
		bloomBits:  lr.bloomBits,
		bloomPages: disk.ChainPages(p.PageSize(), blobRec, (bloomBytes+blobRec-1)/blobRec),
		bloom:      bl,
	}, nil
}

// replayWAL applies the persisted WAL to the memtable.
func (t *Tree) replayWAL(p disk.Pager, head disk.PageID) error {
	var replayErr error
	_, err := disk.ScanChain(p, entrySize, head, func(rec []byte) bool {
		op := rec[0]
		pt := record.DecodePoint(rec[8:])
		switch op {
		case opInsert:
			t.applyMem(pt, +1)
		case opDelete:
			t.applyMem(pt, -1)
		default:
			replayErr = fmt.Errorf("lsm: WAL entry with op byte %d: %w", op, disk.ErrCorrupt)
			return false
		}
		t.memOps++
		return true
	})
	if err != nil {
		return fmt.Errorf("lsm: replaying WAL: %w", err)
	}
	return replayErr
}

// applyMem folds one update into the memtable's net-effect map. Records are
// unique (an insert of a record currently live elsewhere is the caller's
// contract violation), so an insert and a delete of the same record cancel
// regardless of order.
func (t *Tree) applyMem(pt record.Point, d int) {
	t.mem[pt] += d
	if t.mem[pt] == 0 {
		delete(t.mem, pt)
	}
	t.n += d
}

// manifest snapshots the tree's durable state (caller holds the lock or
// has exclusive access).
func (t *Tree) manifest() *manifest {
	m := &manifest{
		baseKind:   t.cfg.Base.Kind(),
		seq:        t.seq,
		liveN:      uint64(t.flushedN),
		flushEvery: uint32(t.flushEvery),
		walHead:    t.wal.Head(),
		tombHead:   t.tombHead,
		tombCount:  uint32(len(t.tombs)),
		tombPages:  uint32(t.tombPg),
	}
	for _, lv := range t.levels {
		if lv == nil {
			continue
		}
		m.levels = append(m.levels, levelRecord{
			slot:      uint32(lv.slot),
			n:         uint64(lv.n),
			dataHead:  lv.dataHead,
			dataPages: lv.dataPages,
			treePages: lv.treePages,
			bloomHead: lv.bloomHead,
			bloomBits: lv.bloomBits,
			treeMeta:  lv.tree.EncodeMeta(),
		})
	}
	return m
}

func (t *Tree) commit(blob []byte) error {
	if t.cfg.Commit == nil {
		return nil
	}
	if err := t.cfg.Commit(blob); err != nil {
		return fmt.Errorf("lsm: committing manifest: %w", err)
	}
	return nil
}

func (t *Tree) sync() error {
	if t.cfg.Sync == nil {
		return nil
	}
	if err := t.cfg.Sync(); err != nil {
		return fmt.Errorf("lsm: syncing WAL: %w", err)
	}
	return nil
}

// Insert appends an insert to the WAL (durable before return) and folds it
// into the memtable. The caller is responsible for flushing when NeedsFlush
// reports true — typically right after, under its own metric op.
func (t *Tree) Insert(p disk.Pager, pt record.Point) error {
	return t.update(p, opInsert, pt)
}

// Delete appends a delete. Deleting a record not currently live is the
// caller's contract violation (blind deletes corrupt the live count).
func (t *Tree) Delete(p disk.Pager, pt record.Point) error {
	return t.update(p, opDelete, pt)
}

func (t *Tree) update(p disk.Pager, op byte, pt record.Point) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	var rec [entrySize]byte
	rec[0] = op
	pt.Encode(rec[8:])
	if err := t.wal.Append(p, rec[:]); err != nil {
		return fmt.Errorf("lsm: appending to WAL: %w", err)
	}
	if err := t.sync(); err != nil {
		return err
	}
	// The entry is durable: fold it into the memtable mirror.
	if op == opInsert {
		t.applyMem(pt, +1)
	} else {
		t.applyMem(pt, -1)
	}
	t.memOps++
	return nil
}

// NeedsFlush reports whether the memtable has reached the flush threshold.
func (t *Tree) NeedsFlush() bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.memOps >= t.flushEvery
}

// NeedsCompact reports whether tombstones exceed the cap B·⌈log_B n⌉ —
// logmethod's bound keeping the per-query tombstone scan inside the search
// term.
func (t *Tree) NeedsCompact() bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.tombs) >= t.tombCap()
}

func (t *Tree) tombCap() int {
	lb := 1
	for v := 1; v < t.n || v < t.b; v *= t.b {
		lb++
	}
	return t.b * lb
}

// NextFlushSlot predicts the slot the next flush seals into — the first
// unoccupied level, since a flush cascade merges the whole occupied prefix.
func (t *Tree) NextFlushSlot() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.nextSlotLocked()
}

func (t *Tree) nextSlotLocked() int {
	slot := 0
	for slot < len(t.levels) && t.levels[slot] != nil {
		slot++
	}
	return slot
}

// CompactDest predicts the slot a compaction rebuilds into: the smallest
// level whose capacity FlushEvery·2^slot holds every live record.
func (t *Tree) CompactDest() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	slot := 0
	for c := t.flushEvery; c < t.n; c *= 2 {
		slot++
	}
	return slot
}

// Flush seals the memtable into a static level (no-op when the memtable is
// empty and the tombstone chain is current), returning the sealed slot or
// -1 when nothing was flushed. All I/O routes through p.
func (t *Tree) Flush(p disk.Pager) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.memOps == 0 {
		return -1, nil
	}
	return t.flushLocked(p)
}

// oldResources collects everything a committed manifest no longer
// references, freed strictly after the commit point (Free destroys page
// content, so freeing early would corrupt the previous state).
type oldResources struct {
	chains []disk.PageID
	levels []*levelState
}

func (t *Tree) freeOld(p disk.Pager, old oldResources) error {
	for _, head := range old.chains {
		if head == disk.InvalidPage {
			continue
		}
		if err := disk.FreeChain(p, head); err != nil {
			return fmt.Errorf("lsm: freeing superseded chain: %w", err)
		}
	}
	for _, lv := range old.levels {
		if err := freeLevel(p, lv); err != nil {
			return err
		}
	}
	return nil
}

func freeLevel(p disk.Pager, lv *levelState) error {
	if err := disk.FreeChain(p, lv.dataHead); err != nil {
		return fmt.Errorf("lsm: freeing level %d data chain: %w", lv.slot, err)
	}
	if lv.bloomHead != disk.InvalidPage {
		if err := disk.FreeChain(p, lv.bloomHead); err != nil {
			return fmt.Errorf("lsm: freeing level %d bloom chain: %w", lv.slot, err)
		}
	}
	for _, id := range lv.treePages {
		if err := p.Free(id); err != nil {
			return fmt.Errorf("lsm: freeing level %d tree page %d: %w", lv.slot, id, err)
		}
	}
	return nil
}

// buildLevel seals pts (sorted) into a fresh level at slot: static tree
// (pages tracked for later wholesale free), sorted data chain (compaction
// and membership probes read it), and bloom filter.
func buildLevel(p disk.Pager, base Base, slot int, pts []record.Point, layout disk.Layout) (*levelState, error) {
	tracked := disk.Track(p)
	tree, err := base.Build(tracked, pts, layout)
	if err != nil {
		return nil, err
	}
	w, err := disk.NewChainWriter(p, record.PointSize)
	if err != nil {
		return nil, fmt.Errorf("lsm: starting level %d data chain: %w", slot, err)
	}
	bl := newBloom(len(pts))
	var rec [record.PointSize]byte
	for _, pt := range pts {
		pt.Encode(rec[:])
		if err := w.Append(rec[:]); err != nil {
			return nil, fmt.Errorf("lsm: writing level %d data chain: %w", slot, err)
		}
		bl.addPoint(pt)
	}
	dataHead, _, _, err := w.Close()
	if err != nil {
		return nil, fmt.Errorf("lsm: sealing level %d data chain: %w", slot, err)
	}
	bloomHead, bloomPages, err := writeBloom(p, bl)
	if err != nil {
		return nil, err
	}
	return &levelState{
		slot:       slot,
		n:          len(pts),
		tree:       tree,
		dataHead:   dataHead,
		dataPages:  append([]disk.PageID(nil), w.Pages()...),
		treePages:  append([]disk.PageID(nil), tracked.Allocated()...),
		bloomHead:  bloomHead,
		bloomBits:  bl.nbits,
		bloomPages: bloomPages,
		bloom:      bl,
	}, nil
}

// levelRecords reads a level's record set back from its data chain.
func levelRecords(p disk.Pager, lv *levelState) ([]record.Point, error) {
	out := make([]record.Point, 0, lv.n)
	_, err := disk.ScanChain(p, record.PointSize, lv.dataHead, func(rec []byte) bool {
		out = append(out, record.DecodePoint(rec))
		return true
	})
	if err != nil {
		return nil, fmt.Errorf("lsm: reading level %d data chain: %w", lv.slot, err)
	}
	return out, nil
}

// flushLocked seals the memtable: partition its net effect into live
// inserts and new tombstones, cascade-merge the occupied level prefix
// (Bentley–Saxe), rewrite the tombstone chain, start a fresh WAL, write
// and commit the new manifest, and only then free what the old manifest
// referenced. A crash anywhere before the commit recovers the old state
// with a full WAL replay; after it, the new state with an empty WAL.
func (t *Tree) flushLocked(p disk.Pager) (int, error) {
	newTombs := make(map[record.Point]bool, len(t.tombs))
	for pt := range t.tombs {
		newTombs[pt] = true
	}
	var adds []record.Point
	for pt, d := range t.mem {
		switch {
		case d < 0:
			newTombs[pt] = true
		case newTombs[pt]:
			// Re-insert of a tombstoned record: cancel the tombstone, the
			// identical sealed copy revives.
			delete(newTombs, pt)
		default:
			adds = append(adds, pt)
		}
	}

	// A tomb-only flush (every entry was a delete, or inserts canceled out)
	// leaves the sealed levels alone: only the tombstone chain and WAL turn
	// over. Otherwise cascade-merge the occupied prefix with the new records.
	var old oldResources
	var sealed *levelState
	slot := -1
	if len(adds) > 0 {
		carry := adds
		slot = 0
		for slot < len(t.levels) && t.levels[slot] != nil {
			recs, err := levelRecords(p, t.levels[slot])
			if err != nil {
				return 0, err
			}
			carry = append(carry, recs...)
			old.levels = append(old.levels, t.levels[slot])
			slot++
		}
		sortPoints(carry)
		var err error
		sealed, err = buildLevel(p, t.cfg.Base, slot, carry, t.cfg.Layout)
		if err != nil {
			return 0, err
		}
	}

	tombHead, tombPages, err := writeTombChain(p, newTombs)
	if err != nil {
		return 0, fmt.Errorf("lsm: writing tombstone chain: %w", err)
	}
	wal, err := disk.NewChainAppender(p, entrySize)
	if err != nil {
		return 0, fmt.Errorf("lsm: starting fresh WAL: %w", err)
	}

	// Assemble the post-flush state on the side (copy-on-write: concurrent
	// snapshot readers keep the old slice).
	levels := make([]*levelState, len(t.levels))
	copy(levels, t.levels)
	if sealed != nil {
		for i := 0; i < slot; i++ {
			levels[i] = nil
		}
		for len(levels) <= slot {
			levels = append(levels, nil)
		}
		levels[slot] = sealed
	}

	next := &manifest{
		baseKind:   t.cfg.Base.Kind(),
		seq:        t.seq + 1,
		liveN:      uint64(t.n),
		flushEvery: uint32(t.flushEvery),
		walHead:    wal.Head(),
		tombHead:   tombHead,
		tombCount:  uint32(len(newTombs)),
		tombPages:  uint32(tombPages),
	}
	for _, lv := range levels {
		if lv == nil {
			continue
		}
		next.levels = append(next.levels, levelRecord{
			slot:      uint32(lv.slot),
			n:         uint64(lv.n),
			dataHead:  lv.dataHead,
			dataPages: lv.dataPages,
			treePages: lv.treePages,
			bloomHead: lv.bloomHead,
			bloomBits: lv.bloomBits,
			treeMeta:  lv.tree.EncodeMeta(),
		})
	}
	mHead, blob, err := writeManifest(p, next)
	if err != nil {
		return 0, err
	}
	if err := t.commit(blob); err != nil {
		return 0, err // nothing swapped: the old state stays live
	}

	old.chains = append(old.chains, t.manifestHead, t.wal.Head(), t.tombHead)
	t.manifestHead = mHead
	t.levels = levels
	t.wal = wal
	t.mem = map[record.Point]int{}
	t.memOps = 0
	t.tombs = newTombs
	t.tombHead, t.tombPg = tombHead, tombPages
	t.flushedN = t.n
	t.seq++
	if err := t.freeOld(p, old); err != nil {
		return slot, err
	}
	return slot, nil
}

// Compact rebuilds every sealed level into one tombstone-free level (the
// full rebuild logmethod triggers when tombstones hit their cap) and clears
// the tombstone set. The memtable and WAL are untouched.
func (t *Tree) Compact(p disk.Pager) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	live, old, err := t.gatherLive(p, t.levels, t.tombs)
	if err != nil {
		return 0, err
	}
	return t.commitCompactLocked(p, live, old)
}

// gatherLive reads every record of the given levels, dropping tombstoned
// ones.
func (t *Tree) gatherLive(p disk.Pager, levels []*levelState, tombs map[record.Point]bool) ([]record.Point, oldResources, error) {
	var live []record.Point
	var old oldResources
	for _, lv := range levels {
		if lv == nil {
			continue
		}
		recs, err := levelRecords(p, lv)
		if err != nil {
			return nil, oldResources{}, err
		}
		for _, pt := range recs {
			if !tombs[pt] {
				live = append(live, pt)
			}
		}
		old.levels = append(old.levels, lv)
	}
	sortPoints(live)
	return live, old, nil
}

// commitCompactLocked seals live into a single level, commits, and frees
// the old levels and tombstone chain. Caller holds the write lock.
func (t *Tree) commitCompactLocked(p disk.Pager, live []record.Point, old oldResources) (int, error) {
	slot := 0
	for c := t.flushEvery; c < len(live); c *= 2 {
		slot++
	}
	var sealed *levelState
	if len(live) > 0 {
		var err error
		sealed, err = buildLevel(p, t.cfg.Base, slot, live, t.cfg.Layout)
		if err != nil {
			return 0, err
		}
	}
	levels := make([]*levelState, slot+1)
	if sealed != nil {
		levels[slot] = sealed
	}
	next := &manifest{
		baseKind:   t.cfg.Base.Kind(),
		seq:        t.seq + 1,
		liveN:      uint64(t.flushedN),
		flushEvery: uint32(t.flushEvery),
		walHead:    t.wal.Head(),
		tombHead:   disk.InvalidPage,
	}
	if sealed != nil {
		next.levels = append(next.levels, levelRecord{
			slot:      uint32(sealed.slot),
			n:         uint64(sealed.n),
			dataHead:  sealed.dataHead,
			dataPages: sealed.dataPages,
			treePages: sealed.treePages,
			bloomHead: sealed.bloomHead,
			bloomBits: sealed.bloomBits,
			treeMeta:  sealed.tree.EncodeMeta(),
		})
	}
	mHead, blob, err := writeManifest(p, next)
	if err != nil {
		return 0, err
	}
	if err := t.commit(blob); err != nil {
		return 0, err
	}
	old.chains = append(old.chains, t.manifestHead, t.tombHead)
	t.manifestHead = mHead
	t.levels = levels
	t.tombs = map[record.Point]bool{}
	t.tombHead, t.tombPg = disk.InvalidPage, 0
	t.seq++
	if err := t.freeOld(p, old); err != nil {
		return slot, err
	}
	return slot, nil
}

// CompactSnapshot is the background form: it gathers and seals from a
// copy-on-write snapshot of the sealed levels without blocking readers or
// writers, then takes the write lock only to commit. If any flush or
// compaction landed in between, it frees its own work and returns ErrStale
// (the state it built from is gone); callers retry or fall back to Compact.
func (t *Tree) CompactSnapshot(p disk.Pager) (int, error) {
	t.mu.RLock()
	seq0 := t.seq
	levels := t.levels // copy-on-write: flushes replace, never mutate
	tombs := t.tombs
	t.mu.RUnlock()

	live, old, err := t.gatherLive(p, levels, tombs)
	if err != nil {
		return 0, err
	}
	slot := 0
	for c := t.flushEvery; c < len(live); c *= 2 {
		slot++
	}
	var sealed *levelState
	if len(live) > 0 {
		sealed, err = buildLevel(p, t.cfg.Base, slot, live, t.cfg.Layout)
		if err != nil {
			return 0, err
		}
	}

	t.mu.Lock()
	if t.seq != seq0 {
		t.mu.Unlock()
		if sealed != nil {
			// The sealed level was built by this call and never named by any
			// manifest: freeing it discards private work, not published state.
			//pcvet:allow commitprotocol -- frees this call's own uncommitted pages on the stale path; no manifest references them
			if ferr := freeLevel(p, sealed); ferr != nil {
				return 0, ferr
			}
		}
		return 0, ErrStale
	}
	defer t.mu.Unlock()
	newLevels := make([]*levelState, slot+1)
	if sealed != nil {
		newLevels[slot] = sealed
	}
	next := &manifest{
		baseKind:   t.cfg.Base.Kind(),
		seq:        t.seq + 1,
		liveN:      uint64(t.flushedN),
		flushEvery: uint32(t.flushEvery),
		walHead:    t.wal.Head(),
		tombHead:   disk.InvalidPage,
	}
	if sealed != nil {
		next.levels = append(next.levels, levelRecord{
			slot:      uint32(sealed.slot),
			n:         uint64(sealed.n),
			dataHead:  sealed.dataHead,
			dataPages: sealed.dataPages,
			treePages: sealed.treePages,
			bloomHead: sealed.bloomHead,
			bloomBits: sealed.bloomBits,
			treeMeta:  sealed.tree.EncodeMeta(),
		})
	}
	mHead, blob, err := writeManifest(p, next)
	if err != nil {
		return 0, err
	}
	if err := t.commit(blob); err != nil {
		return 0, err
	}
	old.chains = append(old.chains, t.manifestHead, t.tombHead)
	t.manifestHead = mHead
	t.levels = newLevels
	t.tombs = map[record.Point]bool{}
	t.tombHead, t.tombPg = disk.InvalidPage, 0
	t.seq++
	if err := t.freeOld(p, old); err != nil {
		return slot, err
	}
	return slot, nil
}

// Query answers the 2-sided query {x >= a, y >= b}: every sealed level is
// queried (the Bentley–Saxe per-level tax), results are filtered through
// tombstones and pending memtable deletes, the memtable contributes its
// pending inserts for free (it is in memory — the WAL already paid its
// I/O), and the tombstone chain is charged like logmethod does.
func (t *Tree) Query(p disk.Pager, a, b int64) ([]record.Point, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.runLocked(p, func(lv *levelState) ([]record.Point, error) {
		return lv.tree.Query(p, a, b)
	}, func(pt record.Point) bool {
		return pt.X >= a && pt.Y >= b
	})
}

// Stab answers the stabbing query at q over the diagonal-corner encoding:
// which stored intervals [-X, Y] contain q.
func (t *Tree) Stab(p disk.Pager, q int64) ([]record.Point, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.runLocked(p, func(lv *levelState) ([]record.Point, error) {
		return lv.tree.Stab(p, q)
	}, func(pt record.Point) bool {
		return pt.X >= -q && pt.Y >= q
	})
}

func (t *Tree) runLocked(p disk.Pager, run func(*levelState) ([]record.Point, error), match func(record.Point) bool) ([]record.Point, error) {
	out := []record.Point{}
	for _, lv := range t.levels {
		if lv == nil {
			continue
		}
		pts, err := run(lv)
		if err != nil {
			return nil, fmt.Errorf("lsm: level %d: %w", lv.slot, err)
		}
		for _, pt := range pts {
			if t.tombs[pt] || t.mem[pt] < 0 {
				continue
			}
			out = append(out, pt)
		}
	}
	for pt, d := range t.mem {
		if d > 0 && match(pt) {
			out = append(out, pt)
		}
	}
	if len(t.tombs) > 0 {
		// Charge the tombstone chain read; the in-memory mirror filtered.
		if _, err := disk.ScanChain(p, record.PointSize, t.tombHead, func([]byte) bool { return true }); err != nil {
			return nil, fmt.Errorf("lsm: scanning tombstone chain: %w", err)
		}
	}
	return out, nil
}

// Has is the point-membership probe the per-level bloom filters serve: a
// record absent from the tree costs zero page reads per level with ~99%
// probability (the filters are in memory); a present or false-positive
// record costs a binary search over that level's sorted data chain.
func (t *Tree) Has(p disk.Pager, pt record.Point) (bool, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if d, ok := t.mem[pt]; ok {
		return d > 0, nil
	}
	if t.tombs[pt] {
		return false, nil
	}
	for _, lv := range t.levels {
		if lv == nil {
			continue
		}
		if !lv.bloom.mayPoint(pt) {
			continue
		}
		found, err := searchData(p, lv, pt)
		if err != nil {
			return false, err
		}
		if found {
			return true, nil
		}
	}
	return false, nil
}

// searchData binary-searches a level's sorted data chain through its page
// directory: O(log₂(pages)) reads.
func searchData(p disk.Pager, lv *levelState, pt record.Point) (bool, error) {
	if len(lv.dataPages) == 0 {
		return false, nil
	}
	buf := make([]byte, p.PageSize())
	cap := disk.ChainCap(p.PageSize(), record.PointSize)
	// Find the rightmost page whose first record is <= pt.
	lo, hi, found := 0, len(lv.dataPages)-1, -1
	for lo <= hi {
		mid := (lo + hi) / 2
		first, _, err := readDataPage(p, lv.dataPages[mid], buf, cap)
		if err != nil {
			return false, fmt.Errorf("lsm: level %d data page %d: %w", lv.slot, lv.dataPages[mid], err)
		}
		if pt.Less(first) {
			hi = mid - 1
		} else {
			found = mid
			lo = mid + 1
		}
	}
	if found < 0 {
		return false, nil
	}
	_, recs, err := readDataPage(p, lv.dataPages[found], buf, cap)
	if err != nil {
		return false, fmt.Errorf("lsm: level %d data page %d: %w", lv.slot, lv.dataPages[found], err)
	}
	for _, r := range recs {
		if r == pt {
			return true, nil
		}
		if pt.Less(r) {
			break
		}
	}
	return false, nil
}

// readDataPage reads one chain page of points, returning the first record
// and the decoded page contents.
func readDataPage(p disk.Pager, id disk.PageID, buf []byte, cap int) (record.Point, []record.Point, error) {
	var first record.Point
	if err := p.Read(id, buf); err != nil {
		return first, nil, err
	}
	n := int(uint16(buf[8]) | uint16(buf[9])<<8)
	if n < 1 || n > cap {
		return first, nil, fmt.Errorf("lsm: data page %d holds %d records (cap %d): %w", id, n, cap, disk.ErrCorrupt)
	}
	recs := make([]record.Point, n)
	for i := 0; i < n; i++ {
		recs[i] = record.DecodePoint(buf[10+i*record.PointSize:])
	}
	return recs[0], recs, nil
}

// Len reports the number of live records (inserts minus deletes).
func (t *Tree) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.n
}

// B reports the page capacity in points.
func (t *Tree) B() int { return t.b }

// FlushEvery reports the memtable flush threshold.
func (t *Tree) FlushEvery() int { return t.flushEvery }

// Levels reports how many slots are occupied — the query multiplier.
func (t *Tree) Levels() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	c := 0
	for _, lv := range t.levels {
		if lv != nil {
			c++
		}
	}
	return c
}

// LevelInfos summarizes every occupied slot for diagnostics.
func (t *Tree) LevelInfos() []LevelInfo {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []LevelInfo
	for _, lv := range t.levels {
		if lv == nil {
			continue
		}
		out = append(out, LevelInfo{
			Slot:       lv.slot,
			Records:    lv.n,
			TreePages:  len(lv.treePages),
			DataPages:  len(lv.dataPages),
			BloomPages: lv.bloomPages,
		})
	}
	return out
}

// LevelRecordsAt reports the record count of the level at slot, 0 when the
// slot is empty or out of range.
func (t *Tree) LevelRecordsAt(slot int) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if slot < 0 || slot >= len(t.levels) || t.levels[slot] == nil {
		return 0
	}
	return t.levels[slot].n
}

// TombCount reports the number of pending tombstones.
func (t *Tree) TombCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.tombs)
}

// TombPages reports the tombstone chain's length in pages — the additive
// term every query bound carries.
func (t *Tree) TombPages() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.tombPg
}

// WALEntries reports the raw entries in the current WAL (the memtable's
// op count since the last flush).
func (t *Tree) WALEntries() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.memOps
}

// Seq reports the manifest sequence number (one per flush/compaction).
func (t *Tree) Seq() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.seq
}

// BaseName reports the configured base kind's registry name.
func (t *Tree) BaseName() string { return t.cfg.Base.Name() }

// BaseKind reports the configured base kind's registry byte.
func (t *Tree) BaseKind() byte { return t.cfg.Base.Kind() }

func sortPoints(pts []record.Point) {
	sort.Slice(pts, func(i, j int) bool { return pts[i].Less(pts[j]) })
}
