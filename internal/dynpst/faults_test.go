package dynpst

import (
	"errors"
	"testing"

	"pathcache/internal/disk"
	"pathcache/internal/workload"
)

// The dynamic structure must propagate injected I/O failures during updates
// and queries without panicking.
func TestFaultInjection(t *testing.T) {
	fp := disk.NewFaultPager(disk.MustStore(512), 1<<40)
	tr, err := New(fp)
	if err != nil {
		t.Fatal(err)
	}
	pts := workload.UniformPoints(2_000, 100_000, 1005)
	for _, p := range pts {
		if err := tr.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	fp.SetBudget(0)
	if err := tr.Insert(pts[0]); !errors.Is(err, disk.ErrInjected) {
		t.Fatalf("starved insert: err=%v", err)
	}
	if _, _, err := tr.Query(0, 0); !errors.Is(err, disk.ErrInjected) {
		t.Fatalf("starved query: err=%v", err)
	}
	// Note: unlike the static trees, a failed dynamic update may leave the
	// structure partially applied — real systems pair this with a
	// write-ahead log. We only assert that errors surface cleanly.
}
