package dynpst

import (
	"math/rand"
	"sort"
	"testing"

	"pathcache/internal/disk"
	"pathcache/internal/inmem"
	"pathcache/internal/record"
	"pathcache/internal/workload"
)

func samePoints(a, b []record.Point) bool {
	if len(a) != len(b) {
		return false
	}
	key := func(p record.Point) [3]int64 { return [3]int64{p.X, p.Y, int64(p.ID)} }
	as := make([][3]int64, len(a))
	bs := make([][3]int64, len(b))
	for i := range a {
		as[i], bs[i] = key(a[i]), key(b[i])
	}
	less := func(s [][3]int64) func(i, j int) bool {
		return func(i, j int) bool {
			for k := 0; k < 3; k++ {
				if s[i][k] != s[j][k] {
					return s[i][k] < s[j][k]
				}
			}
			return false
		}
	}
	sort.Slice(as, less(as))
	sort.Slice(bs, less(bs))
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func newTree(t *testing.T, pageSize int) (*Tree, *disk.Store) {
	t.Helper()
	s := disk.MustStore(pageSize)
	tr, err := New(s)
	if err != nil {
		t.Fatal(err)
	}
	return tr, s
}

func TestEmptyTree(t *testing.T) {
	tr, _ := newTree(t, 512)
	out, st, err := tr.Query(0, 0)
	if err != nil || out != nil || st.Results != 0 {
		t.Fatalf("query on empty: %v %v %v", out, st, err)
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestInsertOnlyMatchesOracle(t *testing.T) {
	tr, _ := newTree(t, 512)
	pts := workload.UniformPoints(5000, 100_000, 201)
	var live []record.Point
	for i, p := range pts {
		if err := tr.Insert(p); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		live = append(live, p)
		if (i+1)%977 == 0 {
			q := workload.TwoSidedQueries(1, 100_000, 0.05, int64(i))[0]
			got, _, err := tr.Query(q.A, q.B)
			if err != nil {
				t.Fatal(err)
			}
			if want := inmem.TwoSided(live, q.A, q.B); !samePoints(got, want) {
				t.Fatalf("after %d inserts, query (%d,%d): got %d want %d",
					i+1, q.A, q.B, len(got), len(want))
			}
		}
	}
	if tr.Len() != len(pts) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(pts))
	}
	for _, q := range workload.TwoSidedQueries(30, 100_000, 0.02, 203) {
		got, _, err := tr.Query(q.A, q.B)
		if err != nil {
			t.Fatal(err)
		}
		if want := inmem.TwoSided(live, q.A, q.B); !samePoints(got, want) {
			t.Fatalf("final query (%d,%d): got %d want %d", q.A, q.B, len(got), len(want))
		}
	}
}

// The central correctness test: a long random interleaving of inserts,
// deletes and queries must always match a brute-force oracle.
func TestMixedWorkloadMatchesOracle(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		tr, _ := newTree(t, 512)
		rng := rand.New(rand.NewSource(seed))
		live := map[record.Point]bool{}
		var liveSlice func() []record.Point
		liveSlice = func() []record.Point {
			out := make([]record.Point, 0, len(live))
			for p := range live {
				out = append(out, p)
			}
			return out
		}
		nextID := uint64(1)
		const steps = 6000
		for step := 0; step < steps; step++ {
			r := rng.Float64()
			switch {
			case r < 0.55 || len(live) == 0:
				p := record.Point{X: rng.Int63n(50_000), Y: rng.Int63n(50_000), ID: nextID}
				nextID++
				if err := tr.Insert(p); err != nil {
					t.Fatalf("seed %d step %d insert: %v", seed, step, err)
				}
				live[p] = true
			case r < 0.85:
				// Delete a random live point.
				var victim record.Point
				k := rng.Intn(len(live))
				for p := range live {
					if k == 0 {
						victim = p
						break
					}
					k--
				}
				if err := tr.Delete(victim); err != nil {
					t.Fatalf("seed %d step %d delete: %v", seed, step, err)
				}
				delete(live, victim)
			default:
				a := rng.Int63n(60_000) - 5_000
				b := rng.Int63n(60_000) - 5_000
				got, _, err := tr.Query(a, b)
				if err != nil {
					t.Fatalf("seed %d step %d query: %v", seed, step, err)
				}
				if want := inmem.TwoSided(liveSlice(), a, b); !samePoints(got, want) {
					t.Fatalf("seed %d step %d query (%d,%d): got %d want %d (n=%d)",
						seed, step, a, b, len(got), len(want), len(live))
				}
			}
		}
		if tr.Len() != len(live) {
			t.Fatalf("seed %d: Len=%d oracle=%d", seed, tr.Len(), len(live))
		}
		// Exhaustive final checks.
		ls := liveSlice()
		for _, q := range workload.TwoSidedQueries(40, 50_000, 0.03, seed+100) {
			got, _, err := tr.Query(q.A, q.B)
			if err != nil {
				t.Fatal(err)
			}
			if want := inmem.TwoSided(ls, q.A, q.B); !samePoints(got, want) {
				t.Fatalf("seed %d final query (%d,%d): got %d want %d", seed, q.A, q.B, len(got), len(want))
			}
		}
	}
}

func TestDeleteEverything(t *testing.T) {
	tr, s := newTree(t, 512)
	pts := workload.UniformPoints(3000, 10_000, 205)
	for _, p := range pts {
		if err := tr.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range pts {
		if err := tr.Delete(p); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting all", tr.Len())
	}
	got, _, err := tr.Query(-1<<40, -1<<40)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("query after deleting all returned %d points", len(got))
	}
	_ = s
}

func TestDuplicateCoordinates(t *testing.T) {
	tr, _ := newTree(t, 512)
	var live []record.Point
	for i := 0; i < 2000; i++ {
		p := record.Point{X: int64(i % 7), Y: int64(i % 5), ID: uint64(i + 1)}
		if err := tr.Insert(p); err != nil {
			t.Fatal(err)
		}
		live = append(live, p)
	}
	for a := int64(-1); a <= 8; a++ {
		for b := int64(-1); b <= 6; b++ {
			got, _, err := tr.Query(a, b)
			if err != nil {
				t.Fatal(err)
			}
			if want := inmem.TwoSided(live, a, b); !samePoints(got, want) {
				t.Fatalf("query (%d,%d): got %d want %d", a, b, len(got), len(want))
			}
		}
	}
}

func logB(n, b int) int {
	if b < 2 {
		b = 2
	}
	r := 1
	for v := 1; v < n; v *= b {
		r++
	}
	return r
}

// Theorem 5.1: amortized update cost O(log_B n) I/Os.
func TestAmortizedUpdateCost(t *testing.T) {
	tr, s := newTree(t, 512)
	const n = 30_000
	pts := workload.UniformPoints(n, 1_000_000, 207)
	s.ResetStats()
	for _, p := range pts {
		if err := tr.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	insertIOs := s.Stats().Total()
	perInsert := float64(insertIOs) / float64(n)
	// Generous constant: buffer rewrites (~4/op) + amortized distribution,
	// re-levelling and rebuilds.
	lb := float64(logB(n, tr.B()))
	if perInsert > 40*lb {
		t.Fatalf("amortized insert cost %.1f I/Os, want O(log_B n)=~%.0f", perInsert, lb)
	}

	// Deletes in random order.
	rng := rand.New(rand.NewSource(209))
	perm := rng.Perm(n)
	s.ResetStats()
	for _, i := range perm[:n/2] {
		if err := tr.Delete(pts[i]); err != nil {
			t.Fatal(err)
		}
	}
	perDelete := float64(s.Stats().Total()) / float64(n/2)
	if perDelete > 40*lb {
		t.Fatalf("amortized delete cost %.1f I/Os, want O(log_B n)=~%.0f", perDelete, lb)
	}
}

// Queries on the dynamic structure stay O(log_B n + t/B)-shaped.
func TestQueryIOCost(t *testing.T) {
	tr, s := newTree(t, 512)
	const n = 30_000
	pts := workload.UniformPoints(n, 1_000_000, 211)
	for _, p := range pts {
		if err := tr.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	lb := logB(n, tr.B())
	for _, sel := range []float64{0.001, 0.02} {
		for _, q := range workload.TwoSidedQueries(20, 1_000_000, sel, 213) {
			s.ResetStats()
			got, st, err := tr.Query(q.A, q.B)
			if err != nil {
				t.Fatal(err)
			}
			reads := int(s.Stats().Reads)
			// Per chunk: caches + boundary + buffers + directory, plus the
			// corner's second-level query and paid-for continuations.
			bound := 14*lb + 6*len(got)/tr.B() + 16
			if reads > bound {
				t.Fatalf("query (%d,%d): %d reads for t=%d (bound %d) stats=%+v",
					q.A, q.B, reads, len(got), bound, st)
			}
		}
	}
}

// Space stays within the two-level budget (plus buffers and directories).
func TestSpaceBudget(t *testing.T) {
	tr, s := newTree(t, 512)
	const n = 30_000
	pts := workload.UniformPoints(n, 1_000_000, 217)
	for _, p := range pts {
		if err := tr.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	b := tr.B()
	segLen := 1
	for v := 2; v < b; v *= 2 {
		segLen++
	}
	// X+Y lists (2), caches (~2), second-level trees (O(log log B) with its
	// own constants), buffers and directories.
	bound := 40 * (n/b + 1)
	if got := s.NumPages(); got > bound {
		t.Fatalf("space %d pages for n=%d (bound %d)", got, n, bound)
	}
}

// After deleting everything, the structure must release (almost) all pages.
func TestSpaceReclaimed(t *testing.T) {
	tr, s := newTree(t, 512)
	pts := workload.UniformPoints(5000, 100_000, 219)
	for _, p := range pts {
		if err := tr.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	peak := s.NumPages()
	for _, p := range pts {
		if err := tr.Delete(p); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.NumPages(); got > peak/4 {
		t.Fatalf("after deleting all: %d pages live (peak %d)", got, peak)
	}
}

// BulkLoad must produce the same query answers as incremental insertion,
// in far fewer I/Os, and remain fully updatable afterwards.
func TestBulkLoad(t *testing.T) {
	pts := workload.UniformPoints(20_000, 100_000, 221)

	inc, sInc := newTree(t, 512)
	sInc.ResetStats()
	for _, p := range pts {
		if err := inc.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	incIOs := sInc.Stats().Total()

	bulk, sBulk := newTree(t, 512)
	sBulk.ResetStats()
	if err := bulk.BulkLoad(pts); err != nil {
		t.Fatal(err)
	}
	bulkIOs := sBulk.Stats().Total()
	if bulk.Len() != len(pts) {
		t.Fatalf("Len = %d", bulk.Len())
	}
	if bulkIOs*3 > incIOs {
		t.Fatalf("bulk load cost %d I/Os vs incremental %d: no speedup", bulkIOs, incIOs)
	}
	for _, q := range workload.TwoSidedQueries(20, 100_000, 0.02, 223) {
		a, _, err := bulk.Query(q.A, q.B)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := inc.Query(q.A, q.B)
		if err != nil {
			t.Fatal(err)
		}
		if !samePoints(a, b) {
			t.Fatalf("bulk vs incremental differ at (%d,%d): %d vs %d", q.A, q.B, len(a), len(b))
		}
	}
	// Still updatable.
	extra := record.Point{X: 1, Y: 99_999, ID: 1 << 40}
	if err := bulk.Insert(extra); err != nil {
		t.Fatal(err)
	}
	got, _, err := bulk.Query(0, 99_999)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range got {
		if p == extra {
			found = true
		}
	}
	if !found {
		t.Fatal("post-bulk insert not visible")
	}
	if err := bulk.Delete(extra); err != nil {
		t.Fatal(err)
	}
}

// BulkLoad over a non-empty tree replaces the contents.
func TestBulkLoadReplaces(t *testing.T) {
	tr, _ := newTree(t, 512)
	old := workload.UniformPoints(1000, 1000, 225)
	for _, p := range old {
		if err := tr.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	fresh := workload.UniformPoints(500, 1000, 227)
	if err := tr.BulkLoad(fresh); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 500 {
		t.Fatalf("Len = %d", tr.Len())
	}
	got, _, err := tr.Query(-1<<40, -1<<40)
	if err != nil {
		t.Fatal(err)
	}
	if !samePoints(got, fresh) {
		t.Fatalf("contents not replaced: %d points", len(got))
	}
}

// The on-disk buffer chain must round-trip the mirror exactly.
func TestBufferDiskMirror(t *testing.T) {
	tr, s := newTree(t, 512)
	pts := workload.UniformPoints(10, 1000, 229)
	for i, p := range pts {
		var err error
		if i%2 == 0 {
			err = tr.Insert(p)
		} else {
			err = tr.Delete(p)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	buf := &tr.root.sn.u
	if buf.head == disk.InvalidPage {
		t.Fatal("buffer chain not persisted")
	}
	var decoded []op
	if _, err := disk.ScanChain(s, opSize, buf.head, func(rec []byte) bool {
		decoded = append(decoded, decodeOp(rec))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(buf.ops) {
		t.Fatalf("disk has %d ops, mirror %d", len(decoded), len(buf.ops))
	}
	for i := range decoded {
		if decoded[i] != buf.ops[i] {
			t.Fatalf("op %d differs: disk %+v mirror %+v", i, decoded[i], buf.ops[i])
		}
	}
}
