// Package dynpst implements the fully dynamic secondary-memory structure for
// 2-sided queries of Section 5 (Theorem 5.1): optimal O(log_B n + t/B)
// queries, amortized O(log_B n) insertions and deletions, and
// O((n/B)·log log B)-class storage.
//
// The design follows the paper's two-level view:
//
//   - The plane is decomposed by a priority search tree over regions of
//     ~B·log B points. Subtrees of height log B form super nodes; each super
//     node owns a directory page (the skeletal page read when a search
//     passes through) and an update buffer U of ~B operations. Each region
//     owns X/Y lists, chunk-scoped A/S caches (caches never cross a super
//     node boundary), a second-level static tree, and a local buffer u.
//   - Updates are logged at the root super node's U. When U overflows, its
//     operations trickle down: operations for regions inside the super node
//     rebuild those regions' lists immediately and are logged in u (which
//     defers only the second-level rebuild); operations bound deeper are
//     pushed into child super nodes' U buffers, cascading. Every ~B·log B
//     updates a super node re-levels its regions (keeping x-divisions,
//     moving y-lines, pushing surplus points down as logged inserts), and a
//     2x weight imbalance rebuilds the whole subtree.
//   - Queries run the static two-level algorithm and then merge the update
//     buffers along the corner path (and of any super node they enter),
//     newest operation winning per tuple ID.
//
// Documented deviations from the abstract (DESIGN.md §4): re-levelling
// pushes surplus points down but does not borrow points back up (underfull
// regions are tolerated until an imbalance rebuild), and rebuild I/Os flow
// through the same pager as everything else.
package dynpst

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
	"sort"

	"pathcache/internal/disk"
	"pathcache/internal/extpst"
	"pathcache/internal/pstcore"
	"pathcache/internal/record"
)

// op is one buffered update.
type op struct {
	insert bool
	p      record.Point
}

// opSize is the encoded size of an op: kind(1) + pad(7) + point(24).
const opSize = 32

func encodeOp(o op, buf []byte) {
	if o.insert {
		buf[0] = 1
	} else {
		buf[0] = 0
	}
	o.p.Encode(buf[8:])
}

func decodeOp(buf []byte) op {
	return op{insert: buf[0] == 1, p: record.DecodePoint(buf[8:])}
}

// buffer is a disk-backed operation log with an in-memory mirror. Appends
// rewrite the chain (a page or two); reads charge the chain length.
type buffer struct {
	head  disk.PageID
	pages int
	ops   []op
}

// region is one node of the dynamic priority search tree.
type region struct {
	depth   int
	split   int64
	splitPt record.Point // full split point; left holds exactly points Less than it
	parent  *region
	left    *region
	right   *region
	dead    bool // set when a subtree rebuild destroyed this region

	// List state (the region's authoritative point set).
	count     int
	minY      int64 // MaxInt64 when empty
	firstXMin int64 // min x within the first X block
	firstYMin int64 // min y within the first Y block
	xHead     disk.PageID
	xPages    int
	yHead     disk.PageID
	yPages    int

	// Chunk-scoped caches (ancestor first-X blocks, x-descending; right
	// sibling first-Y blocks, y-descending).
	aHead  disk.PageID
	aPages int
	aCount int
	sHead  disk.PageID
	sPages int
	sCount int

	// Second-level structure over the region's points; u logs operations
	// already merged into the lists but not yet into sub.
	sub *extpst.Tree
	u   buffer

	weight int // list points in this subtree

	// Super-node state (regions at depth % segLen == 0 only).
	sn *supernode
}

// supernode holds the shared state of one height-segLen subtree.
type supernode struct {
	u        buffer // the U update buffer
	dirHead  disk.PageID
	dirPages int
	updates  int // operations distributed since the last re-level
}

// Tree is the dynamic 2-sided index. Not safe for concurrent use.
type Tree struct {
	pager     disk.Pager
	b         int // points per page
	segLen    int // super-node height and cache chunk length: log B - log log B
	regionCap int // target region size (B·log B)
	opCap     int // buffer capacity in operations (one page of ops)
	root      *region
	n         int
}

// QueryStats profiles one query.
type QueryStats struct {
	DirPages    int
	BufferPages int
	ListPages   int
	Results     int
}

// New creates an empty dynamic tree on p.
func New(p disk.Pager) (*Tree, error) {
	b := disk.ChainCap(p.PageSize(), record.PointSize)
	if b < 2 {
		return nil, fmt.Errorf("dynpst: page size %d holds %d points; need >= 2", p.PageSize(), b)
	}
	t := &Tree{pager: p, b: b}
	logB := bits.Len(uint(b)) - 1
	if logB < 1 {
		logB = 1
	}
	// The paper's super-node height is log B - log log B, giving B/log B
	// regions per super node so that refreshing every cache in a super node
	// costs O(B) I/Os — O(1) amortized per distributed update. Region size
	// stays B·log B.
	t.segLen = logB - (bits.Len(uint(logB)) - 1)
	if t.segLen < 1 {
		t.segLen = 1
	}
	t.regionCap = b * logB
	t.opCap = disk.ChainCap(p.PageSize(), opSize)
	if t.opCap < 2 {
		return nil, fmt.Errorf("dynpst: page size %d holds %d ops; need >= 2", p.PageSize(), t.opCap)
	}
	root, err := t.newRegion(0, nil)
	if err != nil {
		return nil, err
	}
	t.root = root
	return t, nil
}

// newRegion allocates an empty region, attaching super-node state at chunk
// boundaries.
func (t *Tree) newRegion(depth int, parent *region) (*region, error) {
	r := &region{
		depth:  depth,
		parent: parent,
		minY:   math.MaxInt64,
		xHead:  disk.InvalidPage,
		yHead:  disk.InvalidPage,
		aHead:  disk.InvalidPage,
		sHead:  disk.InvalidPage,
	}
	r.u.head = disk.InvalidPage
	if depth%t.segLen == 0 {
		r.sn = &supernode{dirHead: disk.InvalidPage}
		r.sn.u.head = disk.InvalidPage
	}
	return r, nil
}

// Len reports the number of live points (inserts minus deletes applied).
func (t *Tree) Len() int { return t.n }

// B reports the page capacity in points.
func (t *Tree) B() int { return t.b }

// RegionCap reports the target region size in points.
func (t *Tree) RegionCap() int { return t.regionCap }

// Insert adds a point. Amortized cost O(log_B n) I/Os.
func (t *Tree) Insert(p record.Point) error {
	if err := t.enqueue(op{insert: true, p: p}); err != nil {
		return err
	}
	t.n++
	return nil
}

// Delete removes a point (matched by exact coordinates and ID). Deleting an
// absent point is silently dropped when its buffered operation reaches the
// bottom of the tree.
func (t *Tree) Delete(p record.Point) error {
	if err := t.enqueue(op{insert: false, p: p}); err != nil {
		return err
	}
	t.n--
	return nil
}

// enqueue logs an operation at the root super node, distributing on
// overflow.
func (t *Tree) enqueue(o op) error {
	if err := t.bufAppend(&t.root.sn.u, o); err != nil {
		return err
	}
	if len(t.root.sn.u.ops) >= t.opCap {
		if err := t.distribute(t.root); err != nil {
			return err
		}
		// Distribution is the only step that moves list weight around.
		return t.checkBalance(t.root)
	}
	return nil
}

// --- buffer plumbing -------------------------------------------------------

// bufAppend adds an operation, rewriting the chain.
func (t *Tree) bufAppend(b *buffer, o op) error {
	b.ops = append(b.ops, o)
	return t.bufRewrite(b)
}

// bufRewrite re-persists the mirror.
func (t *Tree) bufRewrite(b *buffer) error {
	if b.head != disk.InvalidPage {
		if err := disk.FreeChain(t.pager, b.head); err != nil {
			return err
		}
		b.head, b.pages = disk.InvalidPage, 0
	}
	if len(b.ops) == 0 {
		return nil
	}
	raw := make([]byte, len(b.ops)*opSize)
	for i, o := range b.ops {
		encodeOp(o, raw[i*opSize:])
	}
	head, pages, err := disk.WriteChain(t.pager, opSize, raw)
	if err != nil {
		return err
	}
	b.head, b.pages = head, pages
	return nil
}

// bufCharge reads the chain (for I/O accounting); the mirror is
// authoritative.
func (t *Tree) bufCharge(b *buffer) error {
	if b.head == disk.InvalidPage {
		return nil
	}
	_, err := disk.ScanChain(t.pager, opSize, b.head, func([]byte) bool { return true })
	return err
}

// bufClear empties the buffer.
func (t *Tree) bufClear(b *buffer) error {
	b.ops = nil
	return t.bufRewrite(b)
}

// --- list plumbing ----------------------------------------------------------

func (t *Tree) writePoints(pts []record.Point) (disk.PageID, int, error) {
	return disk.WriteChain(t.pager, record.PointSize, record.EncodePoints(pts))
}

// readPoints scans a full chain (charged).
func (t *Tree) readPoints(head disk.PageID) ([]record.Point, error) {
	var pts []record.Point
	_, err := disk.ScanChain(t.pager, record.PointSize, head, func(rec []byte) bool {
		pts = append(pts, record.DecodePoint(rec))
		return true
	})
	return pts, err
}

func (t *Tree) freeIf(head disk.PageID) error {
	if head == disk.InvalidPage {
		return nil
	}
	return disk.FreeChain(t.pager, head)
}

// setLists rewrites a region's X/Y chains from pts and refreshes the derived
// metadata. pts may be in any order.
func (t *Tree) setLists(r *region, pts []record.Point) error {
	if err := t.freeIf(r.xHead); err != nil {
		return err
	}
	if err := t.freeIf(r.yHead); err != nil {
		return err
	}
	byX := append([]record.Point(nil), pts...)
	pstcore.SortByXDesc(byX)
	var err error
	r.xHead, r.xPages, err = t.writePoints(byX)
	if err != nil {
		return err
	}
	byY := append([]record.Point(nil), pts...)
	pstcore.SortByYDesc(byY)
	r.yHead, r.yPages, err = t.writePoints(byY)
	if err != nil {
		return err
	}
	delta := len(pts) - r.count
	r.count = len(pts)
	if len(pts) == 0 {
		r.minY = math.MaxInt64
		r.firstXMin, r.firstYMin = 0, 0
	} else {
		r.minY = byY[len(byY)-1].Y
		fx := byX
		if len(fx) > t.b {
			fx = fx[:t.b]
		}
		r.firstXMin = fx[len(fx)-1].X
		fy := byY
		if len(fy) > t.b {
			fy = fy[:t.b]
		}
		r.firstYMin = fy[len(fy)-1].Y
	}
	for a := r; a != nil; a = a.parent {
		a.weight += delta
	}
	return nil
}

// rebuildSub rebuilds the region's second-level tree from its current list
// content (pts must equal the list content) and clears u.
func (t *Tree) rebuildSub(r *region, pts []record.Point) error {
	if r.sub != nil {
		if err := r.sub.Destroy(); err != nil {
			return err
		}
		r.sub = nil
	}
	if len(pts) > 0 {
		sub, err := extpst.Build(t.pager, pts, extpst.Basic)
		if err != nil {
			return err
		}
		r.sub = sub
	}
	return t.bufClear(&r.u)
}

// --- super-node helpers ------------------------------------------------------

// snRoot returns the root of the super node containing r.
func (t *Tree) snRoot(r *region) *region {
	for r.sn == nil {
		r = r.parent
	}
	return r
}

// snRegions lists the regions of the super node rooted at sr, top-down.
func (t *Tree) snRegions(sr *region) []*region {
	var out []*region
	limit := sr.depth + t.segLen
	var walk func(r *region)
	walk = func(r *region) {
		if r == nil || r.depth >= limit {
			return
		}
		out = append(out, r)
		walk(r.left)
		walk(r.right)
	}
	walk(sr)
	return out
}

// firstBlock reads the first up-to-B records of a chain (one page).
func (t *Tree) firstBlock(head disk.PageID) ([]record.Point, error) {
	if head == disk.InvalidPage {
		return nil, nil
	}
	var pts []record.Point
	_, err := disk.ScanChain(t.pager, record.PointSize, head, func(rec []byte) bool {
		pts = append(pts, record.DecodePoint(rec))
		return len(pts) < t.b
	})
	return pts, err
}

// refreshSupernode rebuilds every region's A/S caches within the super node
// rooted at sr and rewrites its directory chain — the O(B) I/O step the
// paper charges once per B distributed updates.
func (t *Tree) refreshSupernode(sr *region) error {
	regions := t.snRegions(sr)
	firstX := make(map[*region][]record.Point, len(regions))
	firstY := make(map[*region][]record.Point, len(regions))
	for _, r := range regions {
		fx, err := t.firstBlock(r.xHead)
		if err != nil {
			return err
		}
		fy, err := t.firstBlock(r.yHead)
		if err != nil {
			return err
		}
		firstX[r], firstY[r] = fx, fy
	}
	var build func(r *region, anc []record.Point, sib []record.Point) error
	build = func(r *region, anc, sib []record.Point) error {
		aPts := append([]record.Point(nil), anc...)
		pstcore.SortByXDesc(aPts)
		sPts := append([]record.Point(nil), sib...)
		pstcore.SortByYDesc(sPts)
		if err := t.freeIf(r.aHead); err != nil {
			return err
		}
		if err := t.freeIf(r.sHead); err != nil {
			return err
		}
		var err error
		r.aHead, r.aPages, err = t.writePoints(aPts)
		if err != nil {
			return err
		}
		r.aCount = len(aPts)
		r.sHead, r.sPages, err = t.writePoints(sPts)
		if err != nil {
			return err
		}
		r.sCount = len(sPts)
		if r.depth+1 >= sr.depth+t.segLen {
			return nil
		}
		childAnc := append(append([]record.Point(nil), anc...), firstX[r]...)
		if r.left != nil {
			childSib := append([]record.Point(nil), sib...)
			if r.right != nil {
				childSib = append(childSib, firstY[r.right]...)
			}
			if err := build(r.left, childAnc, childSib); err != nil {
				return err
			}
		}
		if r.right != nil {
			if err := build(r.right, childAnc, append([]record.Point(nil), sib...)); err != nil {
				return err
			}
		}
		return nil
	}
	if err := build(sr, nil, nil); err != nil {
		return err
	}
	return t.writeDirectory(sr, regions)
}

// descSize is the fixed width of one region descriptor in the super-node
// directory chain: depth(4) count(4) split(8) minY(8) firstXMin(8)
// firstYMin(8) pad(8). Writer and readers must share this one constant so
// the chain's page capacity stays in sync with the encoder.
const descSize = 48

// writeDirectory serializes the super node's region descriptors — the
// skeletal pages a search reads when passing through.
func (t *Tree) writeDirectory(sr *region, regions []*region) error {
	if err := t.freeIf(sr.sn.dirHead); err != nil {
		return err
	}
	raw := make([]byte, len(regions)*descSize)
	for i, r := range regions {
		off := i * descSize
		binary.LittleEndian.PutUint32(raw[off:], uint32(r.depth))
		binary.LittleEndian.PutUint32(raw[off+4:], uint32(r.count))
		binary.LittleEndian.PutUint64(raw[off+8:], uint64(r.split))
		binary.LittleEndian.PutUint64(raw[off+16:], uint64(r.minY))
		binary.LittleEndian.PutUint64(raw[off+24:], uint64(r.firstXMin))
		binary.LittleEndian.PutUint64(raw[off+32:], uint64(r.firstYMin))
	}
	head, pages, err := disk.WriteChain(t.pager, descSize, raw)
	if err != nil {
		return err
	}
	sr.sn.dirHead, sr.sn.dirPages = head, pages
	return nil
}

// chargeDirectory reads the directory chain (accounting only).
func (t *Tree) chargeDirectory(sr *region) error {
	if sr.sn.dirHead == disk.InvalidPage {
		return nil
	}
	_, err := disk.ScanChain(t.pager, descSize, sr.sn.dirHead, func([]byte) bool { return true })
	return err
}

// --- distribution -----------------------------------------------------------

// distribute empties the super node's U buffer: operations for regions in
// this super node are applied (rebuilding their lists), operations bound
// deeper are pushed into child super nodes' buffers, cascading.
func (t *Tree) distribute(sr *region) error {
	work := []*region{sr}
	for len(work) > 0 {
		cur := work[0]
		work = work[1:]
		if cur.dead {
			// A subtree rebuild already gathered this buffer's operations.
			continue
		}
		next, err := t.distributeOne(cur)
		if err != nil {
			return err
		}
		work = append(work, next...)
	}
	return nil
}

// distributeOne processes one super node's buffer and returns child super
// nodes whose buffers overflowed.
func (t *Tree) distributeOne(sr *region) ([]*region, error) {
	if err := t.bufCharge(&sr.sn.u); err != nil {
		return nil, err
	}
	ops := sr.sn.u.ops
	if err := t.bufClear(&sr.sn.u); err != nil {
		return nil, err
	}
	limit := sr.depth + t.segLen

	pending := map[*region][]op{}
	pushDown := map[*region][]op{}
	for _, o := range ops {
		r := sr
		for {
			if t.belongsHere(r, o) {
				pending[r] = append(pending[r], o)
				break
			}
			c := t.routeChild(r, o.p)
			if c.depth >= limit {
				pushDown[c] = append(pushDown[c], o)
				break
			}
			r = c
		}
	}

	// Apply top-down so cascaded deletes flow downward deterministically.
	var oversized []*region
	for {
		var r *region
		for cand := range pending {
			if r == nil || cand.depth < r.depth {
				r = cand
			}
		}
		if r == nil {
			break
		}
		rops := pending[r]
		delete(pending, r)
		casc, grown, err := t.applyToRegion(r, rops)
		if err != nil {
			return nil, err
		}
		if grown {
			oversized = append(oversized, r)
		}
		for cr, cops := range casc {
			if cr.depth >= limit {
				pushDown[cr] = append(pushDown[cr], cops...)
			} else {
				pending[cr] = append(pending[cr], cops...)
			}
		}
	}

	var overflowed []*region
	for c, cops := range pushDown {
		for _, o := range cops {
			c.sn.u.ops = append(c.sn.u.ops, o)
		}
		if err := t.bufRewrite(&c.sn.u); err != nil {
			return nil, err
		}
		if len(c.sn.u.ops) >= t.opCap {
			overflowed = append(overflowed, c)
		}
	}

	if err := t.refreshSupernode(sr); err != nil {
		return nil, err
	}
	// Oversized leaves grow children via a local rebuild, deferred to here
	// so the routing maps above never hold destroyed regions.
	for _, r := range oversized {
		if r.left == nil && r.right == nil && r.count > 2*t.regionCap {
			if err := t.rebuildSubtree(r); err != nil {
				return nil, err
			}
		}
	}
	sr.sn.updates += len(ops)
	if sr.sn.updates >= t.regionCap {
		more, err := t.relevel(sr)
		if err != nil {
			return nil, err
		}
		overflowed = append(overflowed, more...)
	}
	return overflowed, nil
}

// belongsHere reports whether the operation's point lives in region r:
// leaves (and missing x-side children) absorb everything; otherwise the
// first region on the x-path whose stored y-range reaches the point.
func (t *Tree) belongsHere(r *region, o op) bool {
	if t.routeChild(r, o.p) == nil {
		return true
	}
	return r.count > 0 && o.p.Y >= r.minY
}

// routeChild picks the child on the x-path of p, or nil when that side has
// no child (the point then belongs to r itself). Routing compares the full
// (X, Y, ID) order against the split point, matching exactly how rebuilds
// partition points — x-ties at the split are unambiguous.
func (t *Tree) routeChild(r *region, p record.Point) *region {
	if p.Less(r.splitPt) {
		return r.left
	}
	return r.right
}

// applyToRegion merges operations into a region's lists. Deletes that do not
// match a stored point cascade toward the children; matched operations are
// logged in u, rebuilding the second-level tree on overflow. grown reports
// an oversized leaf that needs a local rebuild.
func (t *Tree) applyToRegion(r *region, ops []op) (cascades map[*region][]op, grown bool, err error) {
	pts, err := t.readPoints(r.xHead)
	if err != nil {
		return nil, false, err
	}
	cascades = map[*region][]op{}
	applied := make([]op, 0, len(ops))
	for _, o := range ops {
		if o.insert {
			pts = append(pts, o.p)
			applied = append(applied, o)
			continue
		}
		found := -1
		for i, p := range pts {
			if p == o.p {
				found = i
				break
			}
		}
		if found >= 0 {
			pts = append(pts[:found], pts[found+1:]...)
			applied = append(applied, o)
			continue
		}
		// Cascade the delete down the x-path.
		if c := t.routeChild(r, o.p); c != nil {
			cascades[c] = append(cascades[c], o)
		}
	}
	if err := t.setLists(r, pts); err != nil {
		return nil, false, err
	}
	r.u.ops = append(r.u.ops, applied...)
	if err := t.bufRewrite(&r.u); err != nil {
		return nil, false, err
	}
	if len(r.u.ops) >= t.opCap {
		if err := t.rebuildSub(r, pts); err != nil {
			return nil, false, err
		}
	}
	grown = r.left == nil && r.right == nil && r.count > 2*t.regionCap
	return cascades, grown, nil
}

// --- re-levelling and rebuilding ---------------------------------------------

// relevel redistributes points among the super node's regions: x-divisions
// stay, y-lines move so each region again holds ~regionCap points; the
// surplus at the bottom is pushed into child super nodes as logged inserts.
func (t *Tree) relevel(sr *region) ([]*region, error) {
	sr.sn.updates = 0
	limit := sr.depth + t.segLen
	regions := t.snRegions(sr)
	avail := map[*region][]record.Point{}
	for _, r := range regions {
		pts, err := t.readPoints(r.xHead)
		if err != nil {
			return nil, err
		}
		avail[sr] = append(avail[sr], pts...)
		_ = r
	}
	// Reassign top-down with fixed x-divisions.
	pushOut := map[*region][]op{}
	var assign func(r *region) error
	assign = func(r *region) error {
		pts := avail[r]
		keep := pts
		var rest []record.Point
		if len(pts) > t.regionCap && (r.left != nil || r.right != nil) {
			pstcore.SortByYDesc(pts)
			keep = pts[:t.regionCap]
			rest = pts[t.regionCap:]
		}
		if err := t.setLists(r, keep); err != nil {
			return err
		}
		if err := t.rebuildSub(r, keep); err != nil {
			return err
		}
		for _, p := range rest {
			c := t.routeChild(r, p)
			if c == nil {
				// No child on that side: keep the point here after all.
				continue
			}
			if c.depth >= limit {
				pushOut[c] = append(pushOut[c], op{insert: true, p: p})
				continue
			}
			avail[c] = append(avail[c], p)
		}
		// Points kept because a child was missing are re-merged.
		if len(rest) > 0 {
			var kept []record.Point
			for _, p := range rest {
				if t.routeChild(r, p) == nil {
					kept = append(kept, p)
				}
			}
			if len(kept) > 0 {
				merged := append(append([]record.Point(nil), keep...), kept...)
				if err := t.setLists(r, merged); err != nil {
					return err
				}
				if err := t.rebuildSub(r, merged); err != nil {
					return err
				}
			}
		}
		if r.depth+1 < limit {
			if r.left != nil {
				if err := assign(r.left); err != nil {
					return err
				}
			}
			if r.right != nil {
				if err := assign(r.right); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := assign(sr); err != nil {
		return nil, err
	}
	var overflowed []*region
	for c, cops := range pushOut {
		c.sn.u.ops = append(c.sn.u.ops, cops...)
		if err := t.bufRewrite(&c.sn.u); err != nil {
			return nil, err
		}
		if len(c.sn.u.ops) >= t.opCap {
			overflowed = append(overflowed, c)
		}
	}
	if err := t.refreshSupernode(sr); err != nil {
		return nil, err
	}
	return overflowed, nil
}

// checkBalance rebuilds the highest weight-imbalanced subtree, if any.
func (t *Tree) checkBalance(r *region) error {
	var victim *region
	var scan func(r *region)
	scan = func(r *region) {
		if r == nil || victim != nil {
			return
		}
		lw, rw := 0, 0
		if r.left != nil {
			lw = r.left.weight
		}
		if r.right != nil {
			rw = r.right.weight
		}
		hi, lo := lw, rw
		if rw > lw {
			hi, lo = rw, lw
		}
		if hi > 2*lo+2*t.regionCap {
			victim = r
			return
		}
		scan(r.left)
		scan(r.right)
	}
	scan(r)
	if victim == nil {
		return nil
	}
	return t.rebuildSubtree(victim)
}

// gather collects every point in the subtree: list contents plus pending
// buffered operations, resolved newest-first per tuple ID.
func (t *Tree) gather(r *region) ([]record.Point, error) {
	var pts []record.Point
	var bufs []*buffer // ordered deepest-first (oldest ops first)
	var walk func(r *region, depth int) error
	walk = func(r *region, depth int) error {
		if r == nil {
			return nil
		}
		if err := walk(r.left, depth+1); err != nil {
			return err
		}
		if err := walk(r.right, depth+1); err != nil {
			return err
		}
		got, err := t.readPoints(r.xHead)
		if err != nil {
			return err
		}
		pts = append(pts, got...)
		return nil
	}
	if err := walk(r, r.depth); err != nil {
		return nil, err
	}
	// U buffers, deepest super nodes first so later (shallower) ops win.
	var collect func(r *region)
	depthOf := map[*buffer]int{}
	collect = func(r *region) {
		if r == nil {
			return
		}
		collect(r.left)
		collect(r.right)
		if r.sn != nil {
			bufs = append(bufs, &r.sn.u)
			depthOf[&r.sn.u] = r.depth
		}
	}
	collect(r)
	sort.SliceStable(bufs, func(i, j int) bool { return depthOf[bufs[i]] > depthOf[bufs[j]] })

	present := map[record.Point]int{}
	for _, p := range pts {
		present[p]++
	}
	for _, b := range bufs {
		if err := t.bufCharge(b); err != nil {
			return nil, err
		}
		for _, o := range b.ops {
			if o.insert {
				present[o.p]++
			} else if present[o.p] > 0 {
				present[o.p]--
			}
		}
	}
	out := make([]record.Point, 0, len(present))
	for p, c := range present {
		for i := 0; i < c; i++ {
			out = append(out, p)
		}
	}
	return out, nil
}

// destroySubtree frees every page below and including r and marks the
// regions dead so stale references (distribution worklists) skip them.
func (t *Tree) destroySubtree(r *region) error {
	if r == nil {
		return nil
	}
	if err := t.destroySubtree(r.left); err != nil {
		return err
	}
	if err := t.destroySubtree(r.right); err != nil {
		return err
	}
	for _, h := range []disk.PageID{r.xHead, r.yHead, r.aHead, r.sHead, r.u.head} {
		if err := t.freeIf(h); err != nil {
			return err
		}
	}
	if r.sub != nil {
		if err := r.sub.Destroy(); err != nil {
			return err
		}
	}
	if r.sn != nil {
		if err := t.freeIf(r.sn.dirHead); err != nil {
			return err
		}
		if err := t.freeIf(r.sn.u.head); err != nil {
			return err
		}
	}
	r.dead = true
	return nil
}

// rebuildSubtree rebuilds the subtree rooted at victim from scratch with
// fresh x-divisions, fresh regions of regionCap points, fresh caches,
// directories and second-level trees, and empty buffers. The victim struct
// is reused as the new subtree root, so references held by in-flight
// distribution work stay valid.
func (t *Tree) rebuildSubtree(victim *region) error {
	pts, err := t.gather(victim)
	if err != nil {
		return err
	}
	return t.rebuildWith(victim, pts)
}

// BulkLoad replaces the tree's entire contents with pts — the fast path for
// initial loading, costing one bottom-up build instead of n buffered
// updates. Any pending buffered operations are discarded.
func (t *Tree) BulkLoad(pts []record.Point) error {
	// SortedAsc skips the defensive copy when the input arrives pre-sorted
	// (the LSM and shard rebuild pipelines feed merge-sorted runs);
	// rebuildWith's in-place sort is then a no-op on the aliased slice.
	if err := t.rebuildWith(t.root, pstcore.SortedAsc(pts)); err != nil {
		return err
	}
	t.n = len(pts)
	return nil
}

// rebuildWith rebuilds the subtree at victim from the given point set,
// reusing the victim struct as the new root.
func (t *Tree) rebuildWith(victim *region, pts []record.Point) error {
	oldWeight := victim.weight
	parent := victim.parent
	depth := victim.depth
	sn := victim.sn
	if err := t.destroySubtree(victim); err != nil {
		return err
	}
	// Reset the victim in place; keep its super-node struct (buffers were
	// gathered and freed) so stale references see an empty buffer.
	*victim = region{
		depth:  depth,
		parent: parent,
		minY:   math.MaxInt64,
		xHead:  disk.InvalidPage,
		yHead:  disk.InvalidPage,
		aHead:  disk.InvalidPage,
		sHead:  disk.InvalidPage,
	}
	victim.u.head = disk.InvalidPage
	if sn != nil {
		*sn = supernode{dirHead: disk.InvalidPage}
		sn.u.head = disk.InvalidPage
		victim.sn = sn
	}
	for a := parent; a != nil; a = a.parent {
		a.weight -= oldWeight
	}
	if len(pts) > 0 {
		pstcore.SortAsc(pts)
		mem := pstcore.Build(pts, t.regionCap)
		victim.split = mem.Split
		victim.splitPt = mem.SplitPt
		if err := t.setLists(victim, mem.Pts); err != nil {
			return err
		}
		if err := t.rebuildSub(victim, mem.Pts); err != nil {
			return err
		}
		var err error
		if victim.left, err = t.fromMem(mem.Left, depth+1, victim); err != nil {
			return err
		}
		if victim.right, err = t.fromMem(mem.Right, depth+1, victim); err != nil {
			return err
		}
	}
	// Fresh caches and directories for every super node in the new subtree,
	// plus the (partial) super node containing the rebuild point.
	return t.refreshContaining(victim)
}

// fromMem converts a pstcore tree into persisted regions.
func (t *Tree) fromMem(m *pstcore.MemNode, depth int, parent *region) (*region, error) {
	if m == nil {
		return nil, nil
	}
	r, err := t.newRegion(depth, parent)
	if err != nil {
		return nil, err
	}
	r.split = m.Split
	r.splitPt = m.SplitPt
	if err := t.setLists(r, m.Pts); err != nil {
		return nil, err
	}
	if err := t.rebuildSub(r, m.Pts); err != nil {
		return nil, err
	}
	if r.left, err = t.fromMem(m.Left, depth+1, r); err != nil {
		return nil, err
	}
	if r.right, err = t.fromMem(m.Right, depth+1, r); err != nil {
		return nil, err
	}
	return r, nil
}

// ensureSupernodeState attaches super-node state when required by depth.
func (t *Tree) ensureSupernodeState(r *region) error {
	if r.depth%t.segLen == 0 && r.sn == nil {
		r.sn = &supernode{dirHead: disk.InvalidPage}
		r.sn.u.head = disk.InvalidPage
	}
	return nil
}

// refreshContaining refreshes caches/directories of the super node that
// contains r, and of every super node rooted inside r's subtree.
func (t *Tree) refreshContaining(r *region) error {
	var roots []*region
	var walk func(x *region)
	walk = func(x *region) {
		if x == nil {
			return
		}
		if x.sn != nil {
			roots = append(roots, x)
		}
		walk(x.left)
		walk(x.right)
	}
	walk(r)
	if r.sn == nil {
		roots = append(roots, t.snRoot(r))
	}
	for _, sr := range roots {
		if err := t.refreshSupernode(sr); err != nil {
			return err
		}
	}
	return nil
}

// TotalPages reports the structure's storage footprint via its store when
// available.
func (t *Tree) TotalPages() int {
	if s, ok := t.pager.(*disk.Store); ok {
		return s.NumPages()
	}
	return -1
}
