package dynpst

import (
	"sort"

	"pathcache/internal/disk"
	"pathcache/internal/record"
)

// pendingBuf captures one U buffer's operations with its depth; deeper
// buffers hold older operations.
type pendingBuf struct {
	depth int
	ops   []op
}

// dynQuery carries the state of one query.
type dynQuery struct {
	t       *Tree
	a, b    int64
	listed  []record.Point // points found in lists / second-level trees
	pending []pendingBuf
	st      QueryStats
}

// Query reports every live point with x >= a and y >= b: the static
// two-level walk over the current lists merged with the buffered operations
// along every super node the walk enters.
func (t *Tree) Query(a, b int64) ([]record.Point, QueryStats, error) {
	q := &dynQuery{t: t, a: a, b: b}

	// Corner descent, charging directory and U pages per super node.
	var path []*region
	r := t.root
	stoppedOnY := false
	for r != nil {
		if r.sn != nil {
			if err := q.enterSupernode(r); err != nil {
				return nil, q.st, err
			}
		}
		path = append(path, r)
		if r.count > 0 && r.minY < b {
			stoppedOnY = true
			break
		}
		var next *region
		if a <= r.split {
			next = r.left
		} else {
			next = r.right
		}
		if next == nil {
			break
		}
		r = next
	}
	corner := path[len(path)-1]

	// Corner region: second-level query merged with its u buffer.
	if err := q.cornerResults(corner); err != nil {
		return nil, q.st, err
	}
	// Descent that stopped on a missing left child: the right child is
	// still a right sibling.
	if !stoppedOnY && a <= corner.split && corner.left == nil && corner.right != nil {
		if err := q.exploreRegion(corner.right); err != nil {
			return nil, q.st, err
		}
	}

	// Chunk walk from the corner to the root. Chunks coincide with super
	// nodes, so caches never reference content outside their chunk.
	cur := len(path) - 1
	for {
		cs := (path[cur].depth / t.segLen) * t.segLen
		if err := q.scanCaches(path[cur]); err != nil {
			return nil, q.st, err
		}
		for j := cs; j < cur; j++ {
			if err := q.continueAncestor(path[j]); err != nil {
				return nil, q.st, err
			}
			if path[j+1] == path[j].left && path[j].right != nil {
				if err := q.continueSibling(path[j].right); err != nil {
					return nil, q.st, err
				}
			}
		}
		if cs == 0 {
			break
		}
		bj := cs - 1
		if err := q.directAncestor(path[bj]); err != nil {
			return nil, q.st, err
		}
		if path[bj+1] == path[bj].left && path[bj].right != nil {
			if err := q.exploreRegion(path[bj].right); err != nil {
				return nil, q.st, err
			}
		}
		cur = bj
	}

	out := q.merge()
	q.st.Results = len(out)
	return out, q.st, nil
}

// enterSupernode charges the directory and U pages and records the pending
// operations.
func (q *dynQuery) enterSupernode(sr *region) error {
	if err := q.t.chargeDirectory(sr); err != nil {
		return err
	}
	q.st.DirPages += sr.sn.dirPages
	if err := q.t.bufCharge(&sr.sn.u); err != nil {
		return err
	}
	q.st.BufferPages += sr.sn.u.pages
	if len(sr.sn.u.ops) > 0 {
		q.pending = append(q.pending, pendingBuf{depth: sr.depth, ops: sr.sn.u.ops})
	}
	return nil
}

// cornerResults resolves the corner region: its second-level tree merged
// with the u buffer (operations already in the lists but not in the tree).
func (q *dynQuery) cornerResults(corner *region) error {
	present := map[record.Point]bool{}
	if corner.sub != nil {
		pts, sst, err := corner.sub.Query(q.a, q.b)
		if err != nil {
			return err
		}
		q.st.ListPages += sst.PathPages + sst.ListPages
		for _, p := range pts {
			present[p] = true
		}
	}
	if err := q.t.bufCharge(&corner.u); err != nil {
		return err
	}
	q.st.BufferPages += corner.u.pages
	for _, o := range corner.u.ops {
		if o.insert {
			if o.p.X >= q.a && o.p.Y >= q.b {
				present[o.p] = true
			}
		} else {
			delete(present, o.p)
		}
	}
	for p := range present {
		q.listed = append(q.listed, p)
	}
	return nil
}

// scanCaches reads a node's A and S caches.
func (q *dynQuery) scanCaches(r *region) error {
	if r.aCount > 0 {
		if err := q.scanXDesc(r.aHead, 0); err != nil {
			return err
		}
	}
	if r.sCount > 0 {
		if err := q.scanYDesc(r.sHead, 0); err != nil {
			return err
		}
	}
	return nil
}

// continueAncestor scans an ancestor's X list past the cached first block
// when that block was entirely inside the query.
func (q *dynQuery) continueAncestor(anc *region) error {
	if anc.count == 0 || anc.firstXMin < q.a {
		return nil
	}
	skip := anc.count
	if skip > q.t.b {
		skip = q.t.b
	}
	if skip >= anc.count {
		return nil
	}
	return q.scanXDesc(anc.xHead, skip)
}

// continueSibling scans a sibling's Y list past the cached first block and
// descends into its children when the sibling was entirely above b.
func (q *dynQuery) continueSibling(sib *region) error {
	if sib.count > 0 && sib.firstYMin >= q.b {
		skip := sib.count
		if skip > q.t.b {
			skip = q.t.b
		}
		if skip < sib.count {
			if err := q.scanYDesc(sib.yHead, skip); err != nil {
				return err
			}
		}
	}
	if sib.minY >= q.b {
		return q.exploreChildren(sib)
	}
	return nil
}

// directAncestor reads a chunk-boundary ancestor's full X list.
func (q *dynQuery) directAncestor(anc *region) error {
	if anc.count == 0 {
		return nil
	}
	return q.scanXDesc(anc.xHead, 0)
}

// exploreRegion handles a region entirely right of x=a that no cache
// covers: scan its Y list and recurse while it was entirely above b.
// Entering a super node charges its directory and collects its buffer.
func (q *dynQuery) exploreRegion(r *region) error {
	if r.sn != nil {
		if err := q.enterSupernode(r); err != nil {
			return err
		}
	}
	if r.count > 0 {
		if err := q.scanYDesc(r.yHead, 0); err != nil {
			return err
		}
	}
	if r.minY >= q.b {
		return q.exploreChildren(r)
	}
	return nil
}

func (q *dynQuery) exploreChildren(r *region) error {
	if r.left != nil {
		if err := q.exploreRegion(r.left); err != nil {
			return err
		}
	}
	if r.right != nil {
		return q.exploreRegion(r.right)
	}
	return nil
}

// scanXDesc scans an x-descending chain, skipping already-reported records,
// reporting while x >= a.
func (q *dynQuery) scanXDesc(head disk.PageID, skip int) error {
	seen := 0
	pages, err := disk.ScanChain(q.t.pager, record.PointSize, head, func(rec []byte) bool {
		seen++
		if seen <= skip {
			return true
		}
		p := record.DecodePoint(rec)
		if p.X < q.a {
			return false
		}
		if p.Y >= q.b {
			q.listed = append(q.listed, p)
		}
		return true
	})
	q.st.ListPages += pages
	return err
}

// scanYDesc scans a y-descending chain, skipping already-reported records,
// reporting while y >= b.
func (q *dynQuery) scanYDesc(head disk.PageID, skip int) error {
	seen := 0
	pages, err := disk.ScanChain(q.t.pager, record.PointSize, head, func(rec []byte) bool {
		seen++
		if seen <= skip {
			return true
		}
		p := record.DecodePoint(rec)
		if p.Y < q.b {
			return false
		}
		if p.X >= q.a {
			q.listed = append(q.listed, p)
		}
		return true
	})
	q.st.ListPages += pages
	return err
}

// merge applies the pending buffered operations over the listed results:
// any point with a pending operation is dropped from the list results, and
// re-added when its newest pending operation is a matching insert.
func (q *dynQuery) merge() []record.Point {
	if len(q.pending) == 0 {
		return q.listed
	}
	// Deeper buffers are older; apply oldest first so newer ops overwrite.
	sort.SliceStable(q.pending, func(i, j int) bool { return q.pending[i].depth > q.pending[j].depth })
	final := map[record.Point]bool{} // point -> newest op is insert
	for _, pb := range q.pending {
		for _, o := range pb.ops {
			final[o.p] = o.insert
		}
	}
	out := q.listed[:0]
	for _, p := range q.listed {
		if _, ok := final[p]; !ok {
			out = append(out, p)
		}
	}
	for p, ins := range final {
		if ins && p.X >= q.a && p.Y >= q.b {
			out = append(out, p)
		}
	}
	return out
}
