package dynpst

import (
	"math/rand"
	"testing"

	"pathcache/internal/inmem"
	"pathcache/internal/record"
	"pathcache/internal/workload"
)

// Rapid delete/re-insert cycles of the same points exercise the
// newest-op-wins merge logic across buffer generations.
func TestReinsertCycles(t *testing.T) {
	tr, _ := newTree(t, 512)
	pts := workload.UniformPoints(500, 10_000, 501)
	for _, p := range pts {
		if err := tr.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(503))
	live := map[record.Point]bool{}
	for _, p := range pts {
		live[p] = true
	}
	for cycle := 0; cycle < 6; cycle++ {
		// Delete a random half, query, re-insert them, query again.
		var victims []record.Point
		for p := range live {
			if rng.Intn(2) == 0 {
				victims = append(victims, p)
			}
		}
		for _, p := range victims {
			if err := tr.Delete(p); err != nil {
				t.Fatal(err)
			}
			delete(live, p)
		}
		q := workload.TwoSidedQueries(1, 10_000, 0.2, int64(cycle))[0]
		check := func() {
			got, _, err := tr.Query(q.A, q.B)
			if err != nil {
				t.Fatal(err)
			}
			ls := make([]record.Point, 0, len(live))
			for p := range live {
				ls = append(ls, p)
			}
			want := inmem.TwoSided(ls, q.A, q.B)
			if !samePoints(got, want) {
				t.Fatalf("cycle %d: got %d want %d (live %d)", cycle, len(got), len(want), len(live))
			}
		}
		check()
		for _, p := range victims {
			if err := tr.Insert(p); err != nil {
				t.Fatal(err)
			}
			live[p] = true
		}
		check()
	}
	if tr.Len() != len(live) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(live))
	}
}

// A tree fed through many full churns (insert all, delete all, repeat) must
// not leak pages or lose correctness.
func TestChurnStability(t *testing.T) {
	tr, s := newTree(t, 512)
	pts := workload.UniformPoints(800, 10_000, 505)
	var peak int
	for round := 0; round < 4; round++ {
		for _, p := range pts {
			if err := tr.Insert(p); err != nil {
				t.Fatal(err)
			}
		}
		if p := s.NumPages(); p > peak {
			peak = p
		}
		got, _, err := tr.Query(0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(pts) {
			t.Fatalf("round %d: query found %d of %d", round, len(got), len(pts))
		}
		for _, p := range pts {
			if err := tr.Delete(p); err != nil {
				t.Fatal(err)
			}
		}
		if tr.Len() != 0 {
			t.Fatalf("round %d: Len = %d", round, tr.Len())
		}
	}
	// Page usage must not grow monotonically across churns.
	if final := s.NumPages(); final > peak {
		t.Fatalf("pages grew beyond peak: final=%d peak=%d", final, peak)
	}
}
