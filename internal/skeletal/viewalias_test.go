package skeletal

import (
	"encoding/binary"
	"testing"

	"pathcache/internal/disk"
)

// TestViewAliasSurvivesEviction pins down the zero-copy contract the query
// layers rely on when they retain Node.Payload without a defensive copy:
// a View's buffer is private and immutable, so a payload alias stays valid
// after the underlying page has been evicted from the buffer pool, reused
// for other data, and even overwritten in the store. Runs under both
// layouts, since the slot a node's bytes live in differs between them.
func TestViewAliasSurvivesEviction(t *testing.T) {
	for _, layout := range []disk.Layout{disk.LayoutSorted, disk.LayoutEytzinger} {
		t.Run(layout.String(), func(t *testing.T) {
			const pageSize = 256
			s := disk.MustStore(pageSize)
			keys := make([]int64, 300)
			for i := range keys {
				keys[i] = int64(i) * 2
			}
			tr, err := BuildLayout(s, buildBST(keys), 8, layout)
			if err != nil {
				t.Fatal(err)
			}

			// A pool small enough that any two descents evict each other.
			pool, err := disk.NewBufferPoolShards(s, 2, 1)
			if err != nil {
				t.Fatal(err)
			}
			pooled := tr.WithPager(pool)

			// Descend to several targets, retaining the path nodes (whose
			// payloads alias the walkers' view buffers).
			var retained []Node
			for _, target := range []int64{0, 150, 298, 599} {
				path, err := pooled.Descend(func(n Node) Dir {
					switch {
					case n.Key == target:
						return Stop
					case target < n.Key:
						return Left
					default:
						return Right
					}
				})
				if err != nil {
					t.Fatal(err)
				}
				retained = append(retained, path...)
			}

			// Thrash the pool so every retained node's page is evicted, then
			// overwrite every tree page in the raw store. If any retained
			// payload aliased pool frames or shared store memory, it would
			// now read 0xDB garbage.
			junk := make([]byte, pageSize)
			for i := 0; i < 64; i++ {
				id, err := pool.Alloc()
				if err != nil {
					t.Fatal(err)
				}
				if err := pool.Write(id, junk); err != nil {
					t.Fatal(err)
				}
				if err := pool.Read(id, junk); err != nil {
					t.Fatal(err)
				}
			}
			for j := range junk {
				junk[j] = 0xDB
			}
			for _, id := range tr.pages {
				if err := s.Write(id, junk); err != nil {
					t.Fatal(err)
				}
			}

			if len(retained) == 0 {
				t.Fatal("no nodes retained")
			}
			for _, n := range retained {
				if got := int64(binary.LittleEndian.Uint64(n.Payload)); got != n.Key {
					t.Fatalf("retained payload of node %v decodes to %d, want key %d (alias invalidated)",
						n.Ref, got, n.Key)
				}
			}
		})
	}
}
