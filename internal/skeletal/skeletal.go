// Package skeletal implements the skeletal B-tree of Section 2 of the paper
// (Figure 2): a static binary search tree whose nodes are packed into disk
// pages so that each page holds a subtree of height Θ(log B). Descending a
// root-to-leaf path of the binary tree then costs O(log_B n) page reads
// instead of O(log n).
//
// Every external structure in this repository (segment tree, priority search
// trees, interval tree) stores its binary tree through this package. Each
// binary node carries a caller-defined fixed-width payload: page references
// to cover-lists, top-B point blocks, caches, and so on.
//
// Pages support two intra-page placement schemes, selected at build time and
// stamped into every page header and the reopen metadata (disk.Layout):
// LayoutSorted packs the subtree's nodes contiguously in BFS order, while
// LayoutEytzinger places each node at its implicit heap slot (root at 0,
// children of slot i at 2i+1 and 2i+2), so the top of every subtree shares
// cache lines across probes. Both layouts use the same subtree height and
// the same page allocation order, so the page-level shape of the tree — and
// therefore every descent's I/O count — is identical across layouts.
package skeletal

import (
	"encoding/binary"
	"errors"
	"fmt"

	"pathcache/internal/disk"
)

// BuildNode is an in-memory binary tree node handed to Build. Key is the
// routing key (semantics are up to the caller: an x-coordinate separator for
// priority search trees, an endpoint for segment trees). Payload must be
// exactly the payload size passed to Build.
type BuildNode struct {
	Key     int64
	Payload []byte
	Left    *BuildNode
	Right   *BuildNode
}

// NodeRef addresses a node: the page it lives in and its index within the
// page. The zero NodeRef is not nil; use NilRef.
type NodeRef struct {
	Page disk.PageID
	Idx  uint16
}

// NilRef is the absent-child reference.
var NilRef = NodeRef{Page: disk.InvalidPage}

// Valid reports whether the reference addresses a node.
func (r NodeRef) Valid() bool { return r.Page != disk.InvalidPage }

func (r NodeRef) String() string { return fmt.Sprintf("%d:%d", r.Page, r.Idx) }

// Node is a decoded node. Payload aliases the page buffer of the View it was
// read from; Views are immutable once loaded, so the alias stays valid for
// as long as the View (or a Walker holding it) is reachable.
type Node struct {
	Ref     NodeRef
	Key     int64
	Left    NodeRef
	Right   NodeRef
	Payload []byte
}

// IsLeaf reports whether the node has no children.
func (n Node) IsLeaf() bool { return !n.Left.Valid() && !n.Right.Valid() }

// Fixed per-entry overhead: key(8) + left page(8) + left idx(2) +
// right page(8) + right idx(2).
const entryOverhead = 28

// Page header: node count (uint16) + layout byte. An occupancy bitmap of
// (pageCap+7)/8 bytes follows the header under both layouts: sorted pages
// occupy slots 0..count-1 contiguously, Eytzinger pages occupy the heap
// slots of the nodes present. The bitmap is authoritative — a reference to
// an unoccupied slot is a corruption, not a decode of stale bytes (slot 0
// would otherwise decode child page 0, a valid page ID).
const pageHeader = 3

// bitmapLen is the occupancy bitmap size for a page holding up to cap nodes.
func bitmapLen(cap int) int { return (cap + 7) / 8 }

// fitSubHeight returns the largest subtree height h such that a full binary
// subtree of height h — header, occupancy bitmap and (2^h - 1) entries —
// fits in pageSize, or 0 when not even a single node fits. The height is
// layout independent by construction, which is what makes the two layouts'
// page shapes (and I/O counts) identical.
func fitSubHeight(pageSize, entry int) int {
	h := 0
	for {
		cap := (1 << (h + 1)) - 1
		if pageHeader+bitmapLen(cap)+cap*entry > pageSize {
			return h
		}
		h++
	}
}

// Tree is a skeletal tree persisted to a pager.
type Tree struct {
	pager       disk.Pager
	payloadSize int
	entrySize   int
	pageCap     int // slots per page: 2^subHeight - 1
	subHeight   int // height of the subtree packed per page
	entryBase   int // offset of slot 0: pageHeader + bitmap
	layout      disk.Layout
	root        NodeRef
	numNodes    int
	numPages    int
	height      int // height of the logical binary tree (edges on longest path)
	pages       []disk.PageID
}

// Build persists the binary tree rooted at root under LayoutSorted, packing
// height-subHeight subtrees into pages. payloadSize is the fixed width of
// every node payload.
func Build(p disk.Pager, root *BuildNode, payloadSize int) (*Tree, error) {
	return BuildLayout(p, root, payloadSize, disk.LayoutSorted)
}

// BuildLayout is Build with an explicit intra-page layout scheme.
func BuildLayout(p disk.Pager, root *BuildNode, payloadSize int, layout disk.Layout) (*Tree, error) {
	if payloadSize < 0 {
		return nil, errors.New("skeletal: negative payload size")
	}
	if !layout.Valid() {
		return nil, fmt.Errorf("skeletal: unknown layout %d", layout)
	}
	entry := entryOverhead + payloadSize
	h := fitSubHeight(p.PageSize(), entry)
	if h < 1 {
		return nil, fmt.Errorf("skeletal: payload %d too large for page %d", payloadSize, p.PageSize())
	}
	cap := (1 << h) - 1
	t := &Tree{
		pager:       p,
		payloadSize: payloadSize,
		entrySize:   entry,
		pageCap:     cap,
		subHeight:   h,
		entryBase:   pageHeader + bitmapLen(cap),
		layout:      layout,
	}
	if root == nil {
		t.root = NilRef
		return t, nil
	}
	ref, err := t.writeSub(root)
	if err != nil {
		return nil, err
	}
	t.root = ref
	t.height = measureHeight(root)
	return t, nil
}

func measureHeight(n *BuildNode) int {
	if n == nil {
		return -1
	}
	l, r := measureHeight(n.Left), measureHeight(n.Right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// writeSub packs the top height-subHeight levels of the subtree rooted at n
// into one page, recursing for the frontier children, and returns n's ref.
// The node set per page and the recursion (hence allocation) order are the
// same under both layouts; only the slot each node lands in differs.
func (t *Tree) writeSub(n *BuildNode) (NodeRef, error) {
	page, err := t.pager.Alloc()
	if err != nil {
		return NilRef, err
	}
	t.numPages++
	t.pages = append(t.pages, page)

	// BFS-collect up to subHeight levels. slot is the heap position within
	// the page's implicit subtree; sorted pages compact to BFS order while
	// Eytzinger pages keep the heap slot (holes stay unoccupied).
	type qent struct {
		n     *BuildNode
		depth int
		slot  int
	}
	type placed struct {
		n   *BuildNode
		idx int
	}
	var nodes []placed
	idxOf := make(map[*BuildNode]uint16)
	queue := []qent{{n, 0, 0}}
	for len(queue) > 0 {
		e := queue[0]
		queue = queue[1:]
		idx := len(nodes)
		if t.layout == disk.LayoutEytzinger {
			idx = e.slot
		}
		idxOf[e.n] = uint16(idx)
		nodes = append(nodes, placed{e.n, idx})
		if e.depth+1 < t.subHeight {
			if e.n.Left != nil {
				queue = append(queue, qent{e.n.Left, e.depth + 1, 2*e.slot + 1})
			}
			if e.n.Right != nil {
				queue = append(queue, qent{e.n.Right, e.depth + 1, 2*e.slot + 2})
			}
		}
	}
	if len(nodes) > t.pageCap {
		return NilRef, fmt.Errorf("skeletal: internal error: %d nodes > page cap %d", len(nodes), t.pageCap)
	}

	childRef := func(c *BuildNode) (NodeRef, error) {
		if c == nil {
			return NilRef, nil
		}
		if idx, ok := idxOf[c]; ok {
			return NodeRef{Page: page, Idx: idx}, nil
		}
		return t.writeSub(c)
	}

	buf := make([]byte, t.pager.PageSize())
	binary.LittleEndian.PutUint16(buf[0:2], uint16(len(nodes)))
	buf[2] = byte(t.layout)
	bitmap := buf[pageHeader:t.entryBase]
	for _, pl := range nodes {
		bn := pl.n
		if len(bn.Payload) != t.payloadSize {
			return NilRef, fmt.Errorf("skeletal: node payload %d bytes, want %d", len(bn.Payload), t.payloadSize)
		}
		l, err := childRef(bn.Left)
		if err != nil {
			return NilRef, err
		}
		r, err := childRef(bn.Right)
		if err != nil {
			return NilRef, err
		}
		bitmap[pl.idx/8] |= 1 << (pl.idx % 8)
		off := t.entryBase + pl.idx*t.entrySize
		binary.LittleEndian.PutUint64(buf[off:], uint64(bn.Key))
		binary.LittleEndian.PutUint64(buf[off+8:], uint64(l.Page))
		binary.LittleEndian.PutUint16(buf[off+16:], l.Idx)
		binary.LittleEndian.PutUint64(buf[off+18:], uint64(r.Page))
		binary.LittleEndian.PutUint16(buf[off+26:], r.Idx)
		copy(buf[off+entryOverhead:off+t.entrySize], bn.Payload)
	}
	if err := t.pager.Write(page, buf); err != nil {
		return NilRef, err
	}
	t.numNodes += len(nodes)
	return NodeRef{Page: page, Idx: 0}, nil
}

// WithPager returns a read-only view of the tree whose page reads go
// through p instead of the pager the tree was built with. The view shares
// the immutable structure (node layout, page table); it exists so that
// concurrent operations can each route their I/O through a per-operation
// counted pager (disk.WithCounter) for exact attribution.
func (t *Tree) WithPager(p disk.Pager) *Tree {
	c := *t
	c.pager = p
	return &c
}

// Root returns the root reference (NilRef for an empty tree).
func (t *Tree) Root() NodeRef { return t.root }

// NumNodes reports the number of binary nodes.
func (t *Tree) NumNodes() int { return t.numNodes }

// NumPages reports the number of pages occupied by the skeleton itself.
func (t *Tree) NumPages() int { return t.numPages }

// Height reports the height (longest root-to-leaf edge count) of the logical
// binary tree.
func (t *Tree) Height() int { return t.height }

// SubHeight reports the subtree height packed per page (the Θ(log B) of the
// construction).
func (t *Tree) SubHeight() int { return t.subHeight }

// PayloadSize reports the fixed node payload width.
func (t *Tree) PayloadSize() int { return t.payloadSize }

// Layout reports the intra-page placement scheme the tree was built with.
func (t *Tree) Layout() disk.Layout { return t.layout }

// Meta is the handful of values needed to reopen a persisted skeletal tree.
type Meta struct {
	Root        NodeRef
	PayloadSize int
	SubHeight   int
	NumNodes    int
	NumPages    int
	Height      int
	Layout      disk.Layout
}

// Meta returns the tree's reopen metadata.
func (t *Tree) Meta() Meta {
	return Meta{
		Root:        t.root,
		PayloadSize: t.payloadSize,
		SubHeight:   t.subHeight,
		NumNodes:    t.numNodes,
		NumPages:    t.numPages,
		Height:      t.height,
		Layout:      t.layout,
	}
}

// metaSize is the encoded size of Meta.
const metaSize = 8 + 2 + 5*4 + 1

// Append serializes the meta after buf.
func (m Meta) Append(buf []byte) []byte {
	var tmp [metaSize]byte
	binary.LittleEndian.PutUint64(tmp[0:], uint64(m.Root.Page))
	binary.LittleEndian.PutUint16(tmp[8:], m.Root.Idx)
	binary.LittleEndian.PutUint32(tmp[10:], uint32(m.PayloadSize))
	binary.LittleEndian.PutUint32(tmp[14:], uint32(m.SubHeight))
	binary.LittleEndian.PutUint32(tmp[18:], uint32(m.NumNodes))
	binary.LittleEndian.PutUint32(tmp[22:], uint32(m.NumPages))
	binary.LittleEndian.PutUint32(tmp[26:], uint32(m.Height))
	tmp[30] = byte(m.Layout)
	return append(buf, tmp[:]...)
}

// DecodeMeta reads a Meta from the front of buf, returning the remainder.
func DecodeMeta(buf []byte) (Meta, []byte, error) {
	if len(buf) < metaSize {
		return Meta{}, nil, errors.New("skeletal: truncated meta")
	}
	layout, err := disk.CheckLayout(buf[30])
	if err != nil {
		return Meta{}, nil, fmt.Errorf("skeletal: meta: %w", err)
	}
	m := Meta{
		Root: NodeRef{
			Page: disk.PageID(binary.LittleEndian.Uint64(buf[0:])),
			Idx:  binary.LittleEndian.Uint16(buf[8:]),
		},
		PayloadSize: int(int32(binary.LittleEndian.Uint32(buf[10:]))),
		SubHeight:   int(int32(binary.LittleEndian.Uint32(buf[14:]))),
		NumNodes:    int(int32(binary.LittleEndian.Uint32(buf[18:]))),
		NumPages:    int(int32(binary.LittleEndian.Uint32(buf[22:]))),
		Height:      int(int32(binary.LittleEndian.Uint32(buf[26:]))),
		Layout:      layout,
	}
	return m, buf[metaSize:], nil
}

// Reopen attaches to a previously persisted skeletal tree. The reopened
// tree supports all read operations; Free is not supported (the page list
// is not reconstructed).
func Reopen(p disk.Pager, m Meta) (*Tree, error) {
	if m.PayloadSize < 0 {
		return nil, errors.New("skeletal: negative payload size in meta")
	}
	if !m.Layout.Valid() {
		return nil, fmt.Errorf("skeletal: unknown layout %d in meta", m.Layout)
	}
	entry := entryOverhead + m.PayloadSize
	if fitSubHeight(p.PageSize(), entry) < 1 {
		return nil, fmt.Errorf("skeletal: payload %d too large for page %d", m.PayloadSize, p.PageSize())
	}
	// The sub-height bounds every slot computation (page capacity, bitmap
	// width, entry offsets), so an out-of-range value from a corrupt meta
	// must be rejected here, before any page is decoded against it. Build
	// always records exactly fitSubHeight, so anything else is corruption.
	if m.SubHeight < 1 || m.SubHeight > fitSubHeight(p.PageSize(), entry) {
		return nil, fmt.Errorf("skeletal: sub-height %d out of range for page size %d: %w",
			m.SubHeight, p.PageSize(), disk.ErrCorrupt)
	}
	if m.NumNodes < 0 || m.NumPages < 0 || m.Height < -1 {
		return nil, fmt.Errorf("skeletal: negative counters in meta: %w", disk.ErrCorrupt)
	}
	cap := (1 << m.SubHeight) - 1
	return &Tree{
		pager:       p,
		payloadSize: m.PayloadSize,
		entrySize:   entry,
		pageCap:     cap,
		subHeight:   m.SubHeight,
		entryBase:   pageHeader + bitmapLen(cap),
		layout:      m.Layout,
		root:        m.Root,
		numNodes:    m.NumNodes,
		numPages:    m.NumPages,
		height:      m.Height,
	}, nil
}

// Free releases every page of the skeleton. The tree must not be used
// afterwards. Node payload chains are the caller's to free first.
func (t *Tree) Free() error {
	for _, id := range t.pages {
		if err := t.pager.Free(id); err != nil {
			return err
		}
	}
	t.pages = nil
	t.root = NilRef
	t.numPages = 0
	return nil
}

// View is one page read into memory. Navigating nodes inside a View is free;
// only loading the View costs an I/O. The buffer is private to the View and
// immutable after the load, so decoded payload aliases survive pool eviction
// of the underlying page.
type View struct {
	t    *Tree
	page disk.PageID
	buf  []byte
}

// LoadPage reads one page (one I/O) and returns a View over it.
func (t *Tree) LoadPage(id disk.PageID) (*View, error) {
	buf := make([]byte, t.pager.PageSize())
	if err := t.pager.Read(id, buf); err != nil {
		return nil, err
	}
	return &View{t: t, page: id, buf: buf}, nil
}

// Page reports which page this view holds.
func (v *View) Page() disk.PageID { return v.page }

// Node decodes the node at idx. The payload aliases the view's buffer. The
// header is validated before any slot bytes are trusted: a bad layout byte,
// an impossible count or a reference into an unoccupied slot all fail with
// an error wrapping disk.ErrCorrupt.
func (v *View) Node(idx uint16) (Node, error) {
	n := int(binary.LittleEndian.Uint16(v.buf[0:2]))
	if n > v.t.pageCap {
		return Node{}, fmt.Errorf("skeletal: page %d count %d exceeds capacity %d: %w", v.page, n, v.t.pageCap, disk.ErrCorrupt)
	}
	if _, err := disk.CheckLayout(v.buf[2]); err != nil {
		return Node{}, fmt.Errorf("skeletal: page %d: %w", v.page, err)
	}
	if int(idx) >= v.t.pageCap {
		return Node{}, fmt.Errorf("skeletal: node %d out of range (page %d holds %d slots): %w", idx, v.page, v.t.pageCap, disk.ErrCorrupt)
	}
	if v.buf[pageHeader+int(idx)/8]&(1<<(idx%8)) == 0 {
		return Node{}, fmt.Errorf("skeletal: node %d of page %d is unoccupied: %w", idx, v.page, disk.ErrCorrupt)
	}
	off := v.t.entryBase + int(idx)*v.t.entrySize
	return Node{
		Ref: NodeRef{Page: v.page, Idx: idx},
		Key: int64(binary.LittleEndian.Uint64(v.buf[off:])),
		Left: NodeRef{
			Page: disk.PageID(binary.LittleEndian.Uint64(v.buf[off+8:])),
			Idx:  binary.LittleEndian.Uint16(v.buf[off+16:]),
		},
		Right: NodeRef{
			Page: disk.PageID(binary.LittleEndian.Uint64(v.buf[off+18:])),
			Idx:  binary.LittleEndian.Uint16(v.buf[off+26:]),
		},
		Payload: v.buf[off+entryOverhead : off+v.t.entrySize],
	}, nil
}

// pagePrefetcher is the optional extension a pager can implement to accept
// prefetch hints (engine's prefetch-enabled op pagers do). Hints are
// background pool fills: they never touch the issuing operation's counters.
type pagePrefetcher interface {
	Prefetch(disk.PageID)
}

// Walker navigates the tree during one logical operation (one query), caching
// every page it has loaded so far. This models the standard working-memory
// assumption of the I/O model: a query holds the O(log_B n) pages of its
// search path in memory and never pays twice for the same page. Page reads
// are counted by the underlying pager.
type Walker struct {
	t     *Tree
	views map[disk.PageID]*View
	pf    pagePrefetcher
}

// NewWalker starts a fresh walker with an empty page cache.
func (t *Tree) NewWalker() *Walker {
	w := &Walker{t: t, views: make(map[disk.PageID]*View, 8)}
	w.pf, _ = t.pager.(pagePrefetcher)
	return w
}

// Node loads the node addressed by ref, reading its page only if this walker
// has not seen it yet. When the pager accepts prefetch hints, the node's
// external children are enqueued as soon as the node is decoded, so the pool
// warms the next level of the path while the caller is still deciding which
// way to descend.
func (w *Walker) Node(ref NodeRef) (Node, error) {
	if !ref.Valid() {
		return Node{}, errors.New("skeletal: walk to nil reference")
	}
	v, ok := w.views[ref.Page]
	if !ok {
		var err error
		v, err = w.t.LoadPage(ref.Page)
		if err != nil {
			return Node{}, err
		}
		w.views[ref.Page] = v
	}
	n, err := v.Node(ref.Idx)
	if err != nil {
		return Node{}, err
	}
	if w.pf != nil {
		if n.Left.Valid() && n.Left.Page != ref.Page {
			w.pf.Prefetch(n.Left.Page)
		}
		if n.Right.Valid() && n.Right.Page != ref.Page {
			w.pf.Prefetch(n.Right.Page)
		}
	}
	return n, nil
}

// PagesLoaded reports how many distinct pages the walker has read.
func (w *Walker) PagesLoaded() int { return len(w.views) }

// Dir is a descent decision.
type Dir int

// Descent decisions returned by a chooser.
const (
	Stop Dir = iota
	Left
	Right
)

// Descend walks from the root, calling choose at each node to pick a
// direction, and returns the visited path. Payloads alias the walker's page
// views — zero copies per node; the views stay reachable through the
// returned nodes, so the aliases are safe to retain. The walk stops when
// choose returns Stop, or when the chosen child is absent. The I/O cost is
// one read per distinct page on the path: O(log_B n).
func (t *Tree) Descend(choose func(n Node) Dir) ([]Node, error) {
	if !t.root.Valid() {
		return nil, nil
	}
	return t.NewWalker().Descend(t.root, choose)
}

// Descend walks from ref using this walker's page cache, so a query that
// continues navigating after the descent does not pay again for path pages.
// Semantics match Tree.Descend.
func (w *Walker) Descend(ref NodeRef, choose func(n Node) Dir) ([]Node, error) {
	var path []Node
	for ref.Valid() {
		n, err := w.Node(ref)
		if err != nil {
			return nil, err
		}
		path = append(path, n)
		switch choose(n) {
		case Left:
			ref = n.Left
		case Right:
			ref = n.Right
		default:
			return path, nil
		}
	}
	return path, nil
}
