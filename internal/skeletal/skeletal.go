// Package skeletal implements the skeletal B-tree of Section 2 of the paper
// (Figure 2): a static binary search tree whose nodes are packed into disk
// pages so that each page holds a subtree of height Θ(log B). Descending a
// root-to-leaf path of the binary tree then costs O(log_B n) page reads
// instead of O(log n).
//
// Every external structure in this repository (segment tree, priority search
// trees, interval tree) stores its binary tree through this package. Each
// binary node carries a caller-defined fixed-width payload: page references
// to cover-lists, top-B point blocks, caches, and so on.
package skeletal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"

	"pathcache/internal/disk"
)

// BuildNode is an in-memory binary tree node handed to Build. Key is the
// routing key (semantics are up to the caller: an x-coordinate separator for
// priority search trees, an endpoint for segment trees). Payload must be
// exactly the payload size passed to Build.
type BuildNode struct {
	Key     int64
	Payload []byte
	Left    *BuildNode
	Right   *BuildNode
}

// NodeRef addresses a node: the page it lives in and its index within the
// page. The zero NodeRef is not nil; use NilRef.
type NodeRef struct {
	Page disk.PageID
	Idx  uint16
}

// NilRef is the absent-child reference.
var NilRef = NodeRef{Page: disk.InvalidPage}

// Valid reports whether the reference addresses a node.
func (r NodeRef) Valid() bool { return r.Page != disk.InvalidPage }

func (r NodeRef) String() string { return fmt.Sprintf("%d:%d", r.Page, r.Idx) }

// Node is a decoded node. Payload aliases the page buffer of the View it was
// read from; callers that retain it across page loads must copy it.
type Node struct {
	Ref     NodeRef
	Key     int64
	Left    NodeRef
	Right   NodeRef
	Payload []byte
}

// IsLeaf reports whether the node has no children.
func (n Node) IsLeaf() bool { return !n.Left.Valid() && !n.Right.Valid() }

// Fixed per-entry overhead: key(8) + left page(8) + left idx(2) +
// right page(8) + right idx(2).
const entryOverhead = 28

// Page header: node count.
const pageHeader = 2

// Tree is a skeletal tree persisted to a pager.
type Tree struct {
	pager       disk.Pager
	payloadSize int
	entrySize   int
	pageCap     int // max nodes per page
	subHeight   int // height of the subtree packed per page
	root        NodeRef
	numNodes    int
	numPages    int
	height      int // height of the logical binary tree (edges on longest path)
	pages       []disk.PageID
}

// Build persists the binary tree rooted at root, packing height-subHeight
// subtrees into pages. payloadSize is the fixed width of every node payload.
func Build(p disk.Pager, root *BuildNode, payloadSize int) (*Tree, error) {
	if payloadSize < 0 {
		return nil, errors.New("skeletal: negative payload size")
	}
	entry := entryOverhead + payloadSize
	cap := (p.PageSize() - pageHeader) / entry
	if cap < 1 {
		return nil, fmt.Errorf("skeletal: payload %d too large for page %d", payloadSize, p.PageSize())
	}
	// Largest h with 2^h - 1 <= cap: a full binary subtree of height h fits.
	h := bits.Len(uint(cap+1)) - 1
	t := &Tree{
		pager:       p,
		payloadSize: payloadSize,
		entrySize:   entry,
		pageCap:     (1 << h) - 1,
		subHeight:   h,
	}
	if root == nil {
		t.root = NilRef
		return t, nil
	}
	ref, err := t.writeSub(root)
	if err != nil {
		return nil, err
	}
	t.root = ref
	t.height = measureHeight(root)
	return t, nil
}

func measureHeight(n *BuildNode) int {
	if n == nil {
		return -1
	}
	l, r := measureHeight(n.Left), measureHeight(n.Right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// writeSub packs the top height-subHeight levels of the subtree rooted at n
// into one page, recursing for the frontier children, and returns n's ref.
func (t *Tree) writeSub(n *BuildNode) (NodeRef, error) {
	page, err := t.pager.Alloc()
	if err != nil {
		return NilRef, err
	}
	t.numPages++
	t.pages = append(t.pages, page)

	// BFS-collect up to subHeight levels.
	type qent struct {
		n     *BuildNode
		depth int
	}
	var nodes []*BuildNode
	idxOf := make(map[*BuildNode]uint16)
	queue := []qent{{n, 0}}
	for len(queue) > 0 {
		e := queue[0]
		queue = queue[1:]
		idxOf[e.n] = uint16(len(nodes))
		nodes = append(nodes, e.n)
		if e.depth+1 < t.subHeight {
			if e.n.Left != nil {
				queue = append(queue, qent{e.n.Left, e.depth + 1})
			}
			if e.n.Right != nil {
				queue = append(queue, qent{e.n.Right, e.depth + 1})
			}
		}
	}
	if len(nodes) > t.pageCap {
		return NilRef, fmt.Errorf("skeletal: internal error: %d nodes > page cap %d", len(nodes), t.pageCap)
	}

	childRef := func(c *BuildNode) (NodeRef, error) {
		if c == nil {
			return NilRef, nil
		}
		if idx, ok := idxOf[c]; ok {
			return NodeRef{Page: page, Idx: idx}, nil
		}
		return t.writeSub(c)
	}

	buf := make([]byte, t.pager.PageSize())
	binary.LittleEndian.PutUint16(buf[0:2], uint16(len(nodes)))
	for i, bn := range nodes {
		if len(bn.Payload) != t.payloadSize {
			return NilRef, fmt.Errorf("skeletal: node payload %d bytes, want %d", len(bn.Payload), t.payloadSize)
		}
		l, err := childRef(bn.Left)
		if err != nil {
			return NilRef, err
		}
		r, err := childRef(bn.Right)
		if err != nil {
			return NilRef, err
		}
		off := pageHeader + i*t.entrySize
		binary.LittleEndian.PutUint64(buf[off:], uint64(bn.Key))
		binary.LittleEndian.PutUint64(buf[off+8:], uint64(l.Page))
		binary.LittleEndian.PutUint16(buf[off+16:], l.Idx)
		binary.LittleEndian.PutUint64(buf[off+18:], uint64(r.Page))
		binary.LittleEndian.PutUint16(buf[off+26:], r.Idx)
		copy(buf[off+entryOverhead:off+t.entrySize], bn.Payload)
	}
	if err := t.pager.Write(page, buf); err != nil {
		return NilRef, err
	}
	t.numNodes += len(nodes)
	return NodeRef{Page: page, Idx: 0}, nil
}

// WithPager returns a read-only view of the tree whose page reads go
// through p instead of the pager the tree was built with. The view shares
// the immutable structure (node layout, page table); it exists so that
// concurrent operations can each route their I/O through a per-operation
// counted pager (disk.WithCounter) for exact attribution.
func (t *Tree) WithPager(p disk.Pager) *Tree {
	c := *t
	c.pager = p
	return &c
}

// Root returns the root reference (NilRef for an empty tree).
func (t *Tree) Root() NodeRef { return t.root }

// NumNodes reports the number of binary nodes.
func (t *Tree) NumNodes() int { return t.numNodes }

// NumPages reports the number of pages occupied by the skeleton itself.
func (t *Tree) NumPages() int { return t.numPages }

// Height reports the height (longest root-to-leaf edge count) of the logical
// binary tree.
func (t *Tree) Height() int { return t.height }

// SubHeight reports the subtree height packed per page (the Θ(log B) of the
// construction).
func (t *Tree) SubHeight() int { return t.subHeight }

// PayloadSize reports the fixed node payload width.
func (t *Tree) PayloadSize() int { return t.payloadSize }

// Meta is the handful of values needed to reopen a persisted skeletal tree.
type Meta struct {
	Root        NodeRef
	PayloadSize int
	SubHeight   int
	NumNodes    int
	NumPages    int
	Height      int
}

// Meta returns the tree's reopen metadata.
func (t *Tree) Meta() Meta {
	return Meta{
		Root:        t.root,
		PayloadSize: t.payloadSize,
		SubHeight:   t.subHeight,
		NumNodes:    t.numNodes,
		NumPages:    t.numPages,
		Height:      t.height,
	}
}

// metaSize is the encoded size of Meta.
const metaSize = 8 + 2 + 5*4

// Append serializes the meta after buf.
func (m Meta) Append(buf []byte) []byte {
	var tmp [metaSize]byte
	binary.LittleEndian.PutUint64(tmp[0:], uint64(m.Root.Page))
	binary.LittleEndian.PutUint16(tmp[8:], m.Root.Idx)
	binary.LittleEndian.PutUint32(tmp[10:], uint32(m.PayloadSize))
	binary.LittleEndian.PutUint32(tmp[14:], uint32(m.SubHeight))
	binary.LittleEndian.PutUint32(tmp[18:], uint32(m.NumNodes))
	binary.LittleEndian.PutUint32(tmp[22:], uint32(m.NumPages))
	binary.LittleEndian.PutUint32(tmp[26:], uint32(m.Height))
	return append(buf, tmp[:]...)
}

// DecodeMeta reads a Meta from the front of buf, returning the remainder.
func DecodeMeta(buf []byte) (Meta, []byte, error) {
	if len(buf) < metaSize {
		return Meta{}, nil, errors.New("skeletal: truncated meta")
	}
	m := Meta{
		Root: NodeRef{
			Page: disk.PageID(binary.LittleEndian.Uint64(buf[0:])),
			Idx:  binary.LittleEndian.Uint16(buf[8:]),
		},
		PayloadSize: int(int32(binary.LittleEndian.Uint32(buf[10:]))),
		SubHeight:   int(int32(binary.LittleEndian.Uint32(buf[14:]))),
		NumNodes:    int(int32(binary.LittleEndian.Uint32(buf[18:]))),
		NumPages:    int(int32(binary.LittleEndian.Uint32(buf[22:]))),
		Height:      int(int32(binary.LittleEndian.Uint32(buf[26:]))),
	}
	return m, buf[metaSize:], nil
}

// Reopen attaches to a previously persisted skeletal tree. The reopened
// tree supports all read operations; Free is not supported (the page list
// is not reconstructed).
func Reopen(p disk.Pager, m Meta) (*Tree, error) {
	if m.PayloadSize < 0 {
		return nil, errors.New("skeletal: negative payload size in meta")
	}
	entry := entryOverhead + m.PayloadSize
	if (p.PageSize()-pageHeader)/entry < 1 {
		return nil, fmt.Errorf("skeletal: payload %d too large for page %d", m.PayloadSize, p.PageSize())
	}
	return &Tree{
		pager:       p,
		payloadSize: m.PayloadSize,
		entrySize:   entry,
		pageCap:     (1 << m.SubHeight) - 1,
		subHeight:   m.SubHeight,
		root:        m.Root,
		numNodes:    m.NumNodes,
		numPages:    m.NumPages,
		height:      m.Height,
	}, nil
}

// Free releases every page of the skeleton. The tree must not be used
// afterwards. Node payload chains are the caller's to free first.
func (t *Tree) Free() error {
	for _, id := range t.pages {
		if err := t.pager.Free(id); err != nil {
			return err
		}
	}
	t.pages = nil
	t.root = NilRef
	t.numPages = 0
	return nil
}

// View is one page read into memory. Navigating nodes inside a View is free;
// only loading the View costs an I/O.
type View struct {
	t    *Tree
	page disk.PageID
	buf  []byte
}

// LoadPage reads one page (one I/O) and returns a View over it.
func (t *Tree) LoadPage(id disk.PageID) (*View, error) {
	buf := make([]byte, t.pager.PageSize())
	if err := t.pager.Read(id, buf); err != nil {
		return nil, err
	}
	return &View{t: t, page: id, buf: buf}, nil
}

// Page reports which page this view holds.
func (v *View) Page() disk.PageID { return v.page }

// Node decodes the node at idx. The payload aliases the view's buffer.
func (v *View) Node(idx uint16) (Node, error) {
	n := int(binary.LittleEndian.Uint16(v.buf[0:2]))
	if int(idx) >= n {
		return Node{}, fmt.Errorf("skeletal: node %d out of range (page %d has %d)", idx, v.page, n)
	}
	off := pageHeader + int(idx)*v.t.entrySize
	return Node{
		Ref: NodeRef{Page: v.page, Idx: idx},
		Key: int64(binary.LittleEndian.Uint64(v.buf[off:])),
		Left: NodeRef{
			Page: disk.PageID(binary.LittleEndian.Uint64(v.buf[off+8:])),
			Idx:  binary.LittleEndian.Uint16(v.buf[off+16:]),
		},
		Right: NodeRef{
			Page: disk.PageID(binary.LittleEndian.Uint64(v.buf[off+18:])),
			Idx:  binary.LittleEndian.Uint16(v.buf[off+26:]),
		},
		Payload: v.buf[off+entryOverhead : off+v.t.entrySize],
	}, nil
}

// Walker navigates the tree during one logical operation (one query), caching
// every page it has loaded so far. This models the standard working-memory
// assumption of the I/O model: a query holds the O(log_B n) pages of its
// search path in memory and never pays twice for the same page. Page reads
// are counted by the underlying pager.
type Walker struct {
	t     *Tree
	views map[disk.PageID]*View
}

// NewWalker starts a fresh walker with an empty page cache.
func (t *Tree) NewWalker() *Walker {
	return &Walker{t: t, views: make(map[disk.PageID]*View, 8)}
}

// Node loads the node addressed by ref, reading its page only if this walker
// has not seen it yet.
func (w *Walker) Node(ref NodeRef) (Node, error) {
	if !ref.Valid() {
		return Node{}, errors.New("skeletal: walk to nil reference")
	}
	v, ok := w.views[ref.Page]
	if !ok {
		var err error
		v, err = w.t.LoadPage(ref.Page)
		if err != nil {
			return Node{}, err
		}
		w.views[ref.Page] = v
	}
	return v.Node(ref.Idx)
}

// PagesLoaded reports how many distinct pages the walker has read.
func (w *Walker) PagesLoaded() int { return len(w.views) }

// Dir is a descent decision.
type Dir int

// Descent decisions returned by a chooser.
const (
	Stop Dir = iota
	Left
	Right
)

// Descend walks from the root, calling choose at each node to pick a
// direction, and returns the visited path (payloads copied, safe to retain).
// The walk stops when choose returns Stop, or when the chosen child is
// absent. The I/O cost is one read per distinct page on the path:
// O(log_B n).
func (t *Tree) Descend(choose func(n Node) Dir) ([]Node, error) {
	if !t.root.Valid() {
		return nil, nil
	}
	return t.NewWalker().Descend(t.root, choose)
}

// Descend walks from ref using this walker's page cache, so a query that
// continues navigating after the descent does not pay again for path pages.
// Semantics match Tree.Descend.
func (w *Walker) Descend(ref NodeRef, choose func(n Node) Dir) ([]Node, error) {
	var path []Node
	for ref.Valid() {
		n, err := w.Node(ref)
		if err != nil {
			return nil, err
		}
		cp := n
		cp.Payload = append([]byte(nil), n.Payload...)
		path = append(path, cp)
		switch choose(cp) {
		case Left:
			ref = n.Left
		case Right:
			ref = n.Right
		default:
			return path, nil
		}
	}
	return path, nil
}
