package skeletal

import (
	"errors"
	"testing"

	"pathcache/internal/disk"
)

// tolerable classifies what the read path may surface on a corrupted
// image: a header/bitmap violation (wrapping disk.ErrCorrupt) or a node
// reference into a freed/out-of-range page (disk.ErrBadPage). Anything
// else — above all a panic — is a bug.
func tolerable(err error) bool {
	return err == nil ||
		errors.Is(err, disk.ErrCorrupt) ||
		errors.Is(err, disk.ErrBadPage)
}

// FuzzLayoutPageDecode splices arbitrary bytes into one page of a valid
// skeletal tree, under both layouts, then decodes every slot and runs a
// bounded descent. View.Node validates the header and the occupancy
// bitmap before trusting any slot bytes, so every failure must classify
// as disk.ErrCorrupt or disk.ErrBadPage — never a panic, never garbage
// served as a node from an unoccupied slot.
func FuzzLayoutPageDecode(f *testing.F) {
	f.Add(uint8(0), uint16(0), uint16(0), []byte{})
	f.Add(uint8(1), uint16(1), uint16(0), []byte{0xFF, 0xFF, 0x02})
	f.Add(uint8(1), uint16(0), uint16(2), []byte{9})          // layout byte
	f.Add(uint8(0), uint16(2), uint16(3), []byte{0xFF, 0xFF}) // bitmap
	f.Add(uint8(0), uint16(0), uint16(40), []byte{1, 2, 3, 4, 5, 6, 7, 8})

	f.Fuzz(func(t *testing.T, layoutSel uint8, pageSel, off uint16, patch []byte) {
		const pageSize = 256
		layout := disk.Layout(layoutSel % 2)
		s := disk.MustStore(pageSize)
		keys := make([]int64, 200)
		for i := range keys {
			keys[i] = int64(i) * 3
		}
		tr, err := BuildLayout(s, buildBST(keys), 8, layout)
		if err != nil {
			t.Fatal(err)
		}

		victim := disk.PageID(int(pageSel) % s.NumPages())
		buf := make([]byte, pageSize)
		if err := s.Read(victim, buf); err != nil {
			t.Fatal(err)
		}
		copy(buf[int(off)%pageSize:], patch)
		if err := s.Write(victim, buf); err != nil {
			t.Fatal(err)
		}

		// Every slot of the damaged page decodes or classifies.
		v, err := tr.LoadPage(victim)
		if err != nil {
			t.Fatal(err) // the store itself is intact; only contents changed
		}
		for idx := 0; idx < (1<<tr.SubHeight())-1; idx++ {
			if _, err := v.Node(uint16(idx)); !tolerable(err) {
				t.Fatalf("Node(%d) on corrupted page %d: %v", idx, victim, err)
			}
		}

		// A full descent over the damaged tree. Corrupt child references can
		// point anywhere — including back at pages the walker has cached, so
		// the chooser bounds the walk; the budget error is the test's, not
		// the tree's.
		steps := 0
		_, err = tr.Descend(func(n Node) Dir {
			if steps++; steps > 128 {
				return Stop
			}
			if len(n.Payload) != 8 {
				t.Fatalf("descent yielded %d-byte payload, want 8", len(n.Payload))
			}
			if steps%2 == 0 {
				return Right
			}
			return Left
		})
		if !tolerable(err) {
			t.Fatalf("Descend over corrupted page %d: %v", victim, err)
		}
	})
}

// FuzzMetaReopen feeds arbitrary bytes to DecodeMeta/Reopen. A reopened
// tree's geometry (sub-height, payload size, counters) drives every slot
// offset computation, so corrupt meta must be rejected up front: decode
// either fails cleanly or yields a meta that Reopen validates, and a tree
// that does reopen must survive a bounded descent with classified errors
// only. An invalid layout byte must be flagged as disk.ErrCorrupt.
func FuzzMetaReopen(f *testing.F) {
	s := disk.MustStore(256)
	keys := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	tr, err := BuildLayout(s, buildBST(keys), 8, disk.LayoutEytzinger)
	if err != nil {
		f.Fatal(err)
	}
	genuine := tr.Meta().Append(nil)
	f.Add(genuine)
	for i := 0; i < len(genuine); i++ {
		mut := append([]byte(nil), genuine...)
		mut[i] ^= 0x80
		f.Add(mut)
	}
	f.Add(genuine[:len(genuine)-1])
	f.Add([]byte("not a meta"))

	f.Fuzz(func(t *testing.T, raw []byte) {
		m, rest, err := DecodeMeta(raw)
		if err != nil {
			return // rejected: fine, as long as it did not panic
		}
		if len(raw)-len(rest) != metaSize {
			t.Fatalf("DecodeMeta consumed %d bytes, want %d", len(raw)-len(rest), metaSize)
		}
		if !m.Layout.Valid() {
			t.Fatalf("DecodeMeta accepted invalid layout %d", m.Layout)
		}
		store := disk.MustStore(256)
		keys := make([]int64, 100)
		for i := range keys {
			keys[i] = int64(i)
		}
		if _, err := BuildLayout(store, buildBST(keys), 8, m.Layout); err != nil {
			t.Fatal(err)
		}
		re, err := Reopen(store, m)
		if err != nil {
			return // geometry rejected before any page was decoded against it
		}
		steps := 0
		_, err = re.Descend(func(n Node) Dir {
			if steps++; steps > 64 {
				return Stop
			}
			return Right
		})
		if !tolerable(err) {
			t.Fatalf("Descend on reopened fuzzed meta %+v: %v", m, err)
		}
	})
}
