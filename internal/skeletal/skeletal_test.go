package skeletal

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"pathcache/internal/disk"
)

// buildBST builds a balanced in-memory BST over sorted keys with an 8-byte
// payload echoing the key, for round-trip checks.
func buildBST(keys []int64) *BuildNode {
	if len(keys) == 0 {
		return nil
	}
	mid := len(keys) / 2
	pl := make([]byte, 8)
	binary.LittleEndian.PutUint64(pl, uint64(keys[mid]))
	return &BuildNode{
		Key:     keys[mid],
		Payload: pl,
		Left:    buildBST(keys[:mid]),
		Right:   buildBST(keys[mid+1:]),
	}
}

func sortedKeys(n int) []int64 {
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = int64(i * 3)
	}
	return keys
}

func TestBuildEmpty(t *testing.T) {
	s := disk.MustStore(256)
	tr, err := Build(s, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Root().Valid() {
		t.Fatal("empty tree has a root")
	}
	path, err := tr.Descend(func(Node) Dir { return Left })
	if err != nil || path != nil {
		t.Fatalf("descend on empty tree: path=%v err=%v", path, err)
	}
}

func TestBuildSingleNode(t *testing.T) {
	s := disk.MustStore(256)
	tr, err := Build(s, buildBST([]int64{7}), 8)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumNodes() != 1 || tr.NumPages() != 1 || tr.Height() != 0 {
		t.Fatalf("nodes=%d pages=%d height=%d", tr.NumNodes(), tr.NumPages(), tr.Height())
	}
	w := tr.NewWalker()
	n, err := w.Node(tr.Root())
	if err != nil {
		t.Fatal(err)
	}
	if n.Key != 7 || !n.IsLeaf() {
		t.Fatalf("root = %+v", n)
	}
	if got := int64(binary.LittleEndian.Uint64(n.Payload)); got != 7 {
		t.Fatalf("payload = %d", got)
	}
}

func TestBuildRejectsBadPayload(t *testing.T) {
	s := disk.MustStore(256)
	if _, err := Build(s, nil, -1); err == nil {
		t.Fatal("negative payload size accepted")
	}
	if _, err := Build(s, nil, 1000); err == nil {
		t.Fatal("payload larger than page accepted")
	}
	bad := &BuildNode{Key: 1, Payload: make([]byte, 4)} // declared size 8
	if _, err := Build(s, bad, 8); err == nil {
		t.Fatal("mismatched payload width accepted")
	}
}

// Every key must be findable by standard BST descent, and its payload must
// round-trip.
func TestDescendFindsEveryKey(t *testing.T) {
	s := disk.MustStore(256)
	keys := sortedKeys(500)
	tr, err := Build(s, buildBST(keys), 8)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumNodes() != len(keys) {
		t.Fatalf("NumNodes = %d, want %d", tr.NumNodes(), len(keys))
	}
	for _, k := range keys {
		var found *Node
		path, err := tr.Descend(func(n Node) Dir {
			if n.Key == k {
				found = &n
				return Stop
			}
			if k < n.Key {
				return Left
			}
			return Right
		})
		if err != nil {
			t.Fatal(err)
		}
		if found == nil {
			t.Fatalf("key %d not found (path len %d)", k, len(path))
		}
		if got := int64(binary.LittleEndian.Uint64(found.Payload)); got != k {
			t.Fatalf("key %d: payload %d", k, got)
		}
	}
}

// The point of the skeletal blocking: a root-to-leaf descent reads
// O(height/subHeight) pages, not O(height).
func TestDescentIOCost(t *testing.T) {
	s := disk.MustStore(512)
	keys := sortedKeys(1 << 12)
	tr, err := Build(s, buildBST(keys), 8)
	if err != nil {
		t.Fatal(err)
	}
	maxPages := tr.Height()/tr.SubHeight() + 2
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		k := keys[rng.Intn(len(keys))]
		s.ResetStats()
		_, err := tr.Descend(func(n Node) Dir {
			if n.Key == k {
				return Stop
			}
			if k < n.Key {
				return Left
			}
			return Right
		})
		if err != nil {
			t.Fatal(err)
		}
		if reads := s.Stats().Reads; int(reads) > maxPages {
			t.Fatalf("descent to %d cost %d reads, want <= %d (height=%d subHeight=%d)",
				k, reads, maxPages, tr.Height(), tr.SubHeight())
		}
	}
}

// A walker must read each distinct page at most once, however often nodes on
// it are visited.
func TestWalkerCachesPages(t *testing.T) {
	s := disk.MustStore(512)
	keys := sortedKeys(1000)
	tr, err := Build(s, buildBST(keys), 8)
	if err != nil {
		t.Fatal(err)
	}
	w := tr.NewWalker()
	s.ResetStats()
	// Visit the root node many times.
	for i := 0; i < 10; i++ {
		if _, err := w.Node(tr.Root()); err != nil {
			t.Fatal(err)
		}
	}
	if reads := s.Stats().Reads; reads != 1 {
		t.Fatalf("10 visits cost %d reads, want 1", reads)
	}
	if w.PagesLoaded() != 1 {
		t.Fatalf("PagesLoaded = %d, want 1", w.PagesLoaded())
	}
}

// Full in-order traversal via Walker must reproduce the key sequence.
func TestInOrderTraversal(t *testing.T) {
	s := disk.MustStore(512)
	keys := sortedKeys(777)
	tr, err := Build(s, buildBST(keys), 8)
	if err != nil {
		t.Fatal(err)
	}
	w := tr.NewWalker()
	var got []int64
	var visit func(ref NodeRef) error
	visit = func(ref NodeRef) error {
		if !ref.Valid() {
			return nil
		}
		n, err := w.Node(ref)
		if err != nil {
			return err
		}
		// Copy what we need before the next Node call (payload aliases).
		key, left, right := n.Key, n.Left, n.Right
		if err := visit(left); err != nil {
			return err
		}
		got = append(got, key)
		return visit(right)
	}
	if err := visit(tr.Root()); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(keys) {
		t.Fatalf("traversed %d keys, want %d", len(got), len(keys))
	}
	for i := range keys {
		if got[i] != keys[i] {
			t.Fatalf("in-order position %d: got %d want %d", i, got[i], keys[i])
		}
	}
}

func TestNodeIndexOutOfRange(t *testing.T) {
	s := disk.MustStore(256)
	tr, err := Build(s, buildBST([]int64{1}), 8)
	if err != nil {
		t.Fatal(err)
	}
	v, err := tr.LoadPage(tr.Root().Page)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Node(5); err == nil {
		t.Fatal("out-of-range node index accepted")
	}
}

// Space: the skeleton must use O(n / subtree-size) pages.
func TestPageBudget(t *testing.T) {
	s := disk.MustStore(512)
	keys := sortedKeys(1 << 12)
	tr, err := Build(s, buildBST(keys), 8)
	if err != nil {
		t.Fatal(err)
	}
	perPage := (1 << tr.SubHeight()) - 1
	// Fragmentation at subtree frontiers costs at most a small constant
	// factor over the perfect packing.
	if maxPages := 4 * (len(keys)/perPage + 1); tr.NumPages() > maxPages {
		t.Fatalf("pages = %d, want <= %d (perPage=%d)", tr.NumPages(), maxPages, perPage)
	}
}

// Reopen must attach to a persisted skeleton and answer descents exactly as
// the original.
func TestReopen(t *testing.T) {
	s := disk.MustStore(512)
	keys := sortedKeys(1000)
	tr, err := Build(s, buildBST(keys), 8)
	if err != nil {
		t.Fatal(err)
	}
	re, err := Reopen(s, tr.Meta())
	if err != nil {
		t.Fatal(err)
	}
	if re.NumNodes() != tr.NumNodes() || re.Height() != tr.Height() || re.SubHeight() != tr.SubHeight() {
		t.Fatalf("reopened metadata differs: %+v vs %+v", re.Meta(), tr.Meta())
	}
	for _, k := range []int64{keys[0], keys[len(keys)/2], keys[len(keys)-1]} {
		found := false
		_, err := re.Descend(func(n Node) Dir {
			if n.Key == k {
				found = true
				return Stop
			}
			if k < n.Key {
				return Left
			}
			return Right
		})
		if err != nil {
			t.Fatal(err)
		}
		if !found {
			t.Fatalf("key %d not found after reopen", k)
		}
	}
}

// Meta must survive its binary encoding.
func TestMetaRoundTrip(t *testing.T) {
	m := Meta{
		Root:        NodeRef{Page: 42, Idx: 7},
		PayloadSize: 60,
		SubHeight:   5,
		NumNodes:    1234,
		NumPages:    99,
		Height:      17,
	}
	buf := m.Append([]byte("prefix")[6:])
	got, rest, err := DecodeMeta(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Fatalf("round trip: %+v vs %+v", got, m)
	}
	if len(rest) != 0 {
		t.Fatalf("leftover bytes: %d", len(rest))
	}
	if _, _, err := DecodeMeta(buf[:5]); err == nil {
		t.Fatal("truncated meta accepted")
	}
}
