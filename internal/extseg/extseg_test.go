package extseg

import (
	"math"
	"sort"
	"testing"

	"pathcache/internal/disk"
	"pathcache/internal/inmem"
	"pathcache/internal/record"
	"pathcache/internal/workload"
)

func sameIntervals(a, b []record.Interval) bool {
	if len(a) != len(b) {
		return false
	}
	key := func(iv record.Interval) [3]int64 { return [3]int64{iv.Lo, iv.Hi, int64(iv.ID)} }
	as := make([][3]int64, len(a))
	bs := make([][3]int64, len(b))
	for i := range a {
		as[i], bs[i] = key(a[i]), key(b[i])
	}
	less := func(s [][3]int64) func(i, j int) bool {
		return func(i, j int) bool {
			for k := 0; k < 3; k++ {
				if s[i][k] != s[j][k] {
					return s[i][k] < s[j][k]
				}
			}
			return false
		}
	}
	sort.Slice(as, less(as))
	sort.Slice(bs, less(bs))
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func TestEmptyTree(t *testing.T) {
	for _, v := range []Variant{Naive, PathCached} {
		s := disk.MustStore(512)
		tr, err := Build(s, nil, v)
		if err != nil {
			t.Fatal(err)
		}
		out, st, err := tr.Stab(5)
		if err != nil || out != nil || st.Results != 0 {
			t.Fatalf("%v: stab on empty: %v %v %v", v, out, st, err)
		}
	}
}

func TestRejectsInvalid(t *testing.T) {
	s := disk.MustStore(512)
	if _, err := Build(s, []record.Interval{{Lo: 5, Hi: 1}}, Naive); err == nil {
		t.Fatal("inverted interval accepted")
	}
	if _, err := Build(s, []record.Interval{{Lo: 0, Hi: math.MaxInt64}}, Naive); err == nil {
		t.Fatal("MaxInt64 Hi accepted")
	}
}

func TestStabMatchesOracle(t *testing.T) {
	for _, v := range []Variant{Naive, PathCached} {
		for _, n := range []int{1, 2, 10, 100, 2000} {
			ivs := workload.UniformIntervals(n, 100_000, 20_000, int64(n))
			s := disk.MustStore(512)
			tr, err := Build(s, ivs, v)
			if err != nil {
				t.Fatalf("%v n=%d: %v", v, n, err)
			}
			if tr.Len() != n {
				t.Fatalf("Len = %d", tr.Len())
			}
			for _, q := range workload.StabQueries(60, 130_000, 7) {
				got, st, err := tr.Stab(q)
				if err != nil {
					t.Fatal(err)
				}
				want := inmem.Stab(ivs, q)
				if !sameIntervals(got, want) {
					t.Fatalf("%v n=%d stab %d: got %d want %d", v, n, q, len(got), len(want))
				}
				if st.Results != len(got) {
					t.Fatalf("stats results %d != %d", st.Results, len(got))
				}
			}
		}
	}
}

func TestStabNestedWorkload(t *testing.T) {
	ivs := workload.NestedIntervals(1500, 60, 1_000_000, 9)
	for _, v := range []Variant{Naive, PathCached} {
		s := disk.MustStore(512)
		tr, err := Build(s, ivs, v)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range workload.StabQueries(50, 1_000_000, 10) {
			got, _, err := tr.Stab(q)
			if err != nil {
				t.Fatal(err)
			}
			if want := inmem.Stab(ivs, q); !sameIntervals(got, want) {
				t.Fatalf("%v stab %d: got %d want %d", v, q, len(got), len(want))
			}
		}
	}
}

func TestStabBoundaryQueries(t *testing.T) {
	ivs := []record.Interval{
		{Lo: 10, Hi: 20, ID: 1},
		{Lo: 20, Hi: 30, ID: 2},
		{Lo: 15, Hi: 15, ID: 3},
	}
	for _, v := range []Variant{Naive, PathCached} {
		s := disk.MustStore(512)
		tr, err := Build(s, ivs, v)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range []int64{9, 10, 15, 16, 20, 30, 31} {
			got, _, err := tr.Stab(q)
			if err != nil {
				t.Fatal(err)
			}
			if want := inmem.Stab(ivs, q); !sameIntervals(got, want) {
				t.Fatalf("%v stab %d: got %v want %v", v, q, got, want)
			}
		}
	}
}

func TestDuplicateEndpointsCorrect(t *testing.T) {
	// The paper assumes distinct endpoints for the space bound; correctness
	// must hold regardless.
	var ivs []record.Interval
	for i := 0; i < 500; i++ {
		ivs = append(ivs, record.Interval{Lo: 100, Hi: 200 + int64(i%3), ID: uint64(i + 1)})
	}
	for _, v := range []Variant{Naive, PathCached} {
		s := disk.MustStore(512)
		tr, err := Build(s, ivs, v)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range []int64{99, 100, 150, 200, 201, 202, 203} {
			got, _, err := tr.Stab(q)
			if err != nil {
				t.Fatal(err)
			}
			if want := inmem.Stab(ivs, q); !sameIntervals(got, want) {
				t.Fatalf("%v stab %d: got %d want %d", v, q, len(got), len(want))
			}
		}
	}
}

// The headline claim (Theorem 3.4): path-cached stabbing queries cost
// O(log_B n + t/B) I/Os; the naive variant pays up to one I/O per path node.
func TestQueryIOBound(t *testing.T) {
	const n = 20_000
	ivs := workload.UniformIntervals(n, 1_000_000, 50_000, 3)
	s := disk.MustStore(512)
	tr, err := Build(s, ivs, PathCached)
	if err != nil {
		t.Fatal(err)
	}
	b := tr.B()
	// log_B n path pages + cache + local + paid-for list pages.
	for _, q := range workload.StabQueries(80, 1_000_000, 4) {
		s.ResetStats()
		got, st, err := tr.Stab(q)
		if err != nil {
			t.Fatal(err)
		}
		reads := int(s.Stats().Reads)
		bound := logB(2*n, (512-2)/64) + 3*len(got)/b + 8
		if reads > bound {
			t.Fatalf("stab %d: %d reads for t=%d (bound %d), stats %+v",
				q, reads, len(got), bound, st)
		}
		// Wasteful I/Os must be O(1) + paid: at most useful + additive
		// constant (cache tail, local list, last cover pages).
		if st.WastefulIOs > st.UsefulIOs+6 {
			t.Fatalf("stab %d: wasteful=%d useful=%d", q, st.WastefulIOs, st.UsefulIOs)
		}
	}
}

// The naive variant must show the Figure 3 pathology on nested data: many
// wasteful I/Os per query, roughly one per underfull cover-list on the path.
func TestNaiveWastefulGrowsWithDepth(t *testing.T) {
	ivs := workload.NestedIntervals(20_000, 200, 1<<40, 5)
	sNaive := disk.MustStore(512)
	naive, err := Build(sNaive, ivs, Naive)
	if err != nil {
		t.Fatal(err)
	}
	sCached := disk.MustStore(512)
	cached, err := Build(sCached, ivs, PathCached)
	if err != nil {
		t.Fatal(err)
	}
	var wNaive, wCached, queries int
	for _, q := range workload.StabQueries(60, 1<<40, 6) {
		_, stN, err := naive.Stab(q)
		if err != nil {
			t.Fatal(err)
		}
		_, stC, err := cached.Stab(q)
		if err != nil {
			t.Fatal(err)
		}
		wNaive += stN.WastefulIOs
		wCached += stC.WastefulIOs
		queries++
	}
	if wCached >= wNaive {
		t.Fatalf("caching did not reduce wasteful I/Os: naive=%d cached=%d over %d queries",
			wNaive, wCached, queries)
	}
}

// Space: the cached tree costs O((n/B) log n) pages.
func TestSpaceBound(t *testing.T) {
	const n = 20_000
	ivs := workload.UniformIntervals(n, 10_000_000, 500_000, 8)
	s := disk.MustStore(512)
	tr, err := Build(s, ivs, PathCached)
	if err != nil {
		t.Fatal(err)
	}
	b := tr.B()
	logN := 1
	for v := 2 * n; v > 1; v /= 2 {
		logN++
	}
	bound := 6 * (n/b + 1) * logN
	if got := tr.TotalPages(); got > bound {
		sk, cov, loc, cache := tr.SpacePages()
		t.Fatalf("pages=%d bound=%d (skel=%d cover=%d local=%d cache=%d)",
			got, bound, sk, cov, loc, cache)
	}
	// And the store agrees with the structure's own accounting.
	if s.NumPages() != tr.TotalPages() {
		t.Fatalf("store has %d pages, structure claims %d", s.NumPages(), tr.TotalPages())
	}
}

func logB(n, b int) int {
	if b < 2 {
		b = 2
	}
	r := 1
	for v := 1; v < n; v *= b {
		r++
	}
	return r
}
