// Package extseg implements the external segment tree of Section 2 of the
// paper, in two variants that differ exactly by path caching:
//
//   - Naive: the strawman of Figure 3. The segment tree is blocked into a
//     skeletal B-tree and every cover-list on the search path is read
//     directly. Underfull cover-lists (fewer than B intervals) each cost a
//     wasteful I/O, so a stabbing query costs O(log n + t/B) I/Os.
//   - PathCached: for every leaf, the underfull cover-lists along its
//     root-to-leaf path are coalesced into a blocked cache stored with the
//     leaf. A query reads full cover-lists directly (those I/Os are paid for
//     by their output) and one cache, giving O(log_B n + t/B) I/Os.
//
// Following the paper's skeletal-leaf optimization, the tree is built over
// "fat leaves" of B consecutive elementary slabs, so the binary tree has
// O(n/B) nodes and the caches take O((n/B)·log n) pages — the bound of
// Theorem 3.4. Intervals that only partially overlap a fat leaf's span live
// in that leaf's local list.
//
// As in the paper, the space analysis assumes inputs do not share endpoints;
// with heavy endpoint duplication local lists can exceed one page, which
// degrades space and the additive query constant but never correctness.
package extseg

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"pathcache/internal/disk"
	"pathcache/internal/record"
	"pathcache/internal/skeletal"
)

// Variant selects between the strawman and the path-cached structure.
type Variant int

// Variants.
const (
	// Naive reads every cover-list on the path directly.
	Naive Variant = iota
	// PathCached coalesces underfull cover-lists into per-leaf caches.
	PathCached
)

func (v Variant) String() string {
	if v == PathCached {
		return "path-cached"
	}
	return "naive"
}

// Node payload layout: cover head (8) + cover count (4) +
// local head (8) + local count (4) + cache head (8) + cache count (4).
const payloadSize = 36

// Tree is a static external segment tree answering stabbing queries.
type Tree struct {
	pager   disk.Pager
	variant Variant
	skel    *skeletal.Tree
	b       int   // intervals per page: the B of the I/O model
	lo, hi  int64 // domain [lo, hi) covered by the tree
	n       int

	// Space accounting, in pages.
	coverPages int
	localPages int
	cachePages int
}

// QueryStats describes the I/O behaviour of one stabbing query, using the
// paper's accounting: a list I/O is useful if it returns a full page of B
// reported intervals and wasteful otherwise (Figure 3).
type QueryStats struct {
	PathPages   int // skeletal pages read to locate the leaf
	ListPages   int // pages read from cover-lists, local lists and caches
	UsefulIOs   int
	WastefulIOs int
	Results     int
}

// buildNode is the in-memory tree used during construction.
type buildNode struct {
	loIdx, hiIdx int // boundary index span [loIdx, hiIdx)
	cover        []record.Interval
	local        []record.Interval // leaves only
	left, right  *buildNode
}

// Build constructs the tree over ivs with the given variant under
// disk.LayoutSorted. Intervals with Lo > Hi or Hi = MaxInt64 are rejected.
func Build(p disk.Pager, ivs []record.Interval, v Variant) (*Tree, error) {
	return BuildLayout(p, ivs, v, disk.LayoutSorted)
}

// BuildLayout is Build with an explicit skeletal page layout.
func BuildLayout(p disk.Pager, ivs []record.Interval, v Variant, layout disk.Layout) (*Tree, error) {
	b := disk.ChainCap(p.PageSize(), record.IntervalSize)
	if b < 2 {
		return nil, fmt.Errorf("extseg: page size %d holds %d intervals; need >= 2", p.PageSize(), b)
	}
	for _, iv := range ivs {
		if !iv.Valid() {
			return nil, fmt.Errorf("extseg: invalid interval %v", iv)
		}
		if iv.Hi == math.MaxInt64 {
			return nil, errors.New("extseg: interval Hi must be < MaxInt64")
		}
	}
	t := &Tree{pager: p, variant: v, b: b, n: len(ivs)}
	if len(ivs) == 0 {
		skel, err := skeletal.BuildLayout(p, nil, payloadSize, layout)
		if err != nil {
			return nil, err
		}
		t.skel = skel
		return t, nil
	}

	// Elementary boundaries.
	bounds := make([]int64, 0, 2*len(ivs))
	for _, iv := range ivs {
		bounds = append(bounds, iv.Lo, iv.Hi+1)
	}
	ends := sortedUnique(bounds)
	t.lo, t.hi = ends[0], ends[len(ends)-1]

	// Fat leaves: groups of b consecutive elementary slabs.
	slabs := len(ends) - 1
	root := buildTree(ends, 0, slabs, b)

	// Allocate every interval to cover-lists (fat-leaf aligned) and local
	// lists.
	for _, iv := range ivs {
		insert(root, ends, iv)
	}

	// Persist lists bottom-up, building caches along the way when cached.
	bn, err := t.persist(root, ends, nil)
	if err != nil {
		return nil, err
	}
	skel, err := skeletal.BuildLayout(p, bn, payloadSize, layout)
	if err != nil {
		return nil, err
	}
	t.skel = skel
	return t, nil
}

func sortedUnique(xs []int64) []int64 {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	out := xs[:1]
	for _, x := range xs[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// buildTree builds the binary tree over slab index range [lo, hi), stopping
// at fat leaves of at most b slabs.
func buildTree(ends []int64, lo, hi, b int) *buildNode {
	n := &buildNode{loIdx: lo, hiIdx: hi}
	if hi-lo <= b {
		return n
	}
	// Split on a slab boundary, keeping both halves multiples of b where
	// possible so leaves stay aligned.
	slabs := hi - lo
	leaves := (slabs + b - 1) / b
	mid := lo + (leaves/2)*b
	n.left = buildTree(ends, lo, mid, b)
	n.right = buildTree(ends, mid, hi, b)
	return n
}

// insert allocates iv: it lands on the cover-list of every node whose span
// it covers (and whose parent's span it does not), and on the local list of
// every fat leaf it partially overlaps.
func insert(n *buildNode, ends []int64, iv record.Interval) {
	nLo, nHi := ends[n.loIdx], ends[n.hiIdx]
	if iv.Lo >= nHi || iv.Hi+1 <= nLo {
		return // disjoint
	}
	if iv.Lo <= nLo && nHi <= iv.Hi+1 {
		n.cover = append(n.cover, iv)
		return
	}
	if n.left == nil {
		n.local = append(n.local, iv)
		return
	}
	insert(n.left, ends, iv)
	insert(n.right, ends, iv)
}

// persist writes a node's chains and returns the skeletal build node. path
// carries the underfull cover-lists of ancestors for cache construction.
func (t *Tree) persist(n *buildNode, ends []int64, path []record.Interval) (*skeletal.BuildNode, error) {
	coverHead, pages, err := disk.WriteChain(t.pager, record.IntervalSize, record.EncodeIntervals(n.cover))
	if err != nil {
		return nil, err
	}
	t.coverPages += pages

	childPath := path
	if t.variant == PathCached && len(n.cover) > 0 && len(n.cover) < t.b {
		childPath = append(append([]record.Interval(nil), path...), n.cover...)
	}

	payload := make([]byte, payloadSize)
	putList(payload[0:], coverHead, len(n.cover))
	putList(payload[12:], disk.InvalidPage, 0)
	putList(payload[24:], disk.InvalidPage, 0)

	bn := &skeletal.BuildNode{Payload: payload}
	if n.left == nil {
		// Leaf: local list, cache, and routing key = span start.
		bn.Key = ends[n.loIdx]
		localHead, pages, err := disk.WriteChain(t.pager, record.IntervalSize, record.EncodeIntervals(n.local))
		if err != nil {
			return nil, err
		}
		t.localPages += pages
		putList(payload[12:], localHead, len(n.local))
		if t.variant == PathCached {
			cacheHead, pages, err := disk.WriteChain(t.pager, record.IntervalSize, record.EncodeIntervals(childPath))
			if err != nil {
				return nil, err
			}
			t.cachePages += pages
			putList(payload[24:], cacheHead, len(childPath))
		}
		return bn, nil
	}
	// Internal: routing key is the split boundary (left child's upper end).
	bn.Key = ends[n.left.hiIdx]
	if bn.Left, err = t.persist(n.left, ends, childPath); err != nil {
		return nil, err
	}
	if bn.Right, err = t.persist(n.right, ends, childPath); err != nil {
		return nil, err
	}
	return bn, nil
}

func putList(buf []byte, head disk.PageID, count int) {
	binary.LittleEndian.PutUint64(buf[0:8], uint64(head))
	binary.LittleEndian.PutUint32(buf[8:12], uint32(count))
}

func getList(buf []byte) (disk.PageID, int) {
	return disk.PageID(binary.LittleEndian.Uint64(buf[0:8])), int(binary.LittleEndian.Uint32(buf[8:12]))
}

// Stab reports every interval containing q, together with the query's I/O
// profile.
func (t *Tree) Stab(q int64) ([]record.Interval, QueryStats, error) {
	var st QueryStats
	if t.n == 0 || q < t.lo || q >= t.hi {
		return nil, st, nil
	}
	w := t.skel.NewWalker()
	path, err := w.Descend(t.skel.Root(), func(n skeletal.Node) skeletal.Dir {
		if n.IsLeaf() {
			return skeletal.Stop
		}
		if q < n.Key {
			return skeletal.Left
		}
		return skeletal.Right
	})
	if err != nil {
		return nil, st, err
	}
	st.PathPages = w.PagesLoaded()

	var out []record.Interval
	scan := func(head disk.PageID, filter bool) error {
		matched := 0
		pages, err := disk.ScanChain(t.pager, record.IntervalSize, head, func(rec []byte) bool {
			iv := record.DecodeInterval(rec)
			if !filter || iv.Contains(q) {
				out = append(out, iv)
				matched++
			}
			return true
		})
		if err != nil {
			return err
		}
		st.ListPages += pages
		full := matched / t.b
		st.UsefulIOs += full
		st.WastefulIOs += pages - full
		return nil
	}

	for i, n := range path {
		head, count := getList(n.Payload[0:])
		isLeaf := i == len(path)-1
		// Cover-lists: with caching, underfull ones are served by the leaf
		// cache; full ones are always read directly.
		if count > 0 && (t.variant == Naive || count >= t.b) {
			if err := scan(head, false); err != nil {
				return nil, st, err
			}
		}
		if isLeaf {
			if lh, lc := getList(n.Payload[12:]); lc > 0 {
				if err := scan(lh, true); err != nil {
					return nil, st, err
				}
			}
			if t.variant == PathCached {
				if ch, cc := getList(n.Payload[24:]); cc > 0 {
					if err := scan(ch, false); err != nil {
						return nil, st, err
					}
				}
			}
		}
	}
	st.Results = len(out)
	return out, st, nil
}

// WithPager returns a read-only view of the tree whose queries run through
// p — the hook for per-operation I/O attribution via disk.WithCounter.
func (t *Tree) WithPager(p disk.Pager) *Tree {
	c := *t
	c.pager = p
	c.skel = t.skel.WithPager(p)
	return &c
}

// Len reports the number of indexed intervals.
func (t *Tree) Len() int { return t.n }

// B reports the page capacity in intervals.
func (t *Tree) B() int { return t.b }

// Variant reports which construction this tree uses.
func (t *Tree) Variant() Variant { return t.variant }

// SpacePages breaks down the structure's storage footprint in pages.
func (t *Tree) SpacePages() (skeleton, cover, local, cache int) {
	return t.skel.NumPages(), t.coverPages, t.localPages, t.cachePages
}

// TotalPages is the full storage footprint in pages.
func (t *Tree) TotalPages() int {
	return t.skel.NumPages() + t.coverPages + t.localPages + t.cachePages
}

// Height reports the height of the underlying binary tree.
func (t *Tree) Height() int { return t.skel.Height() }

// Layout reports the skeletal page layout the tree was built with.
func (t *Tree) Layout() disk.Layout { return t.skel.Layout() }
