package extseg

import (
	"errors"
	"testing"

	"pathcache/internal/disk"
	"pathcache/internal/workload"
)

// Injected I/O failures must surface as errors, never panics, and must not
// corrupt results once the fault clears.
func TestFaultInjection(t *testing.T) {
	ivs := workload.UniformIntervals(2_000, 100_000, 20_000, 1001)
	for _, v := range []Variant{Naive, PathCached} {
		probe := disk.NewFaultPager(disk.MustStore(512), 1<<40)
		if _, err := Build(probe, ivs, v); err != nil {
			t.Fatal(err)
		}
		used := 1<<40 - probe.Remaining()
		for _, budget := range []int64{0, 1, used / 2, used - 1} {
			fp := disk.NewFaultPager(disk.MustStore(512), budget)
			if _, err := Build(fp, ivs, v); !errors.Is(err, disk.ErrInjected) {
				t.Fatalf("%v: build budget %d: err=%v", v, budget, err)
			}
		}
		fp := disk.NewFaultPager(disk.MustStore(512), 1<<40)
		tr, err := Build(fp, ivs, v)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := tr.Stab(50_000)
		if err != nil {
			t.Fatal(err)
		}
		for _, budget := range []int64{0, 1, 3} {
			fp.SetBudget(budget)
			if _, _, err := tr.Stab(50_000); !errors.Is(err, disk.ErrInjected) {
				t.Fatalf("%v: stab budget %d: err=%v", v, budget, err)
			}
		}
		fp.SetBudget(1 << 40)
		got, _, err := tr.Stab(50_000)
		if err != nil || !sameIntervals(got, want) {
			t.Fatalf("%v: results changed after failed queries (err=%v)", v, err)
		}
	}
}
