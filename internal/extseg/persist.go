package extseg

import (
	"encoding/binary"
	"errors"
	"fmt"

	"pathcache/internal/disk"
	"pathcache/internal/record"
	"pathcache/internal/skeletal"
)

// Meta is the reopen metadata of an external segment tree.
type Meta struct {
	Variant    Variant
	N          int
	Lo, Hi     int64
	CoverPages int
	LocalPages int
	CachePages int
	Skel       skeletal.Meta
}

const metaMagic = uint32(0x73656731) // "seg1"

// Meta returns the tree's reopen metadata.
func (t *Tree) Meta() Meta {
	return Meta{
		Variant:    t.variant,
		N:          t.n,
		Lo:         t.lo,
		Hi:         t.hi,
		CoverPages: t.coverPages,
		LocalPages: t.localPages,
		CachePages: t.cachePages,
		Skel:       t.skel.Meta(),
	}
}

// Encode serializes the meta.
func (m Meta) Encode() []byte {
	var hdr [40]byte
	binary.LittleEndian.PutUint32(hdr[0:], metaMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(m.Variant))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(m.N))
	binary.LittleEndian.PutUint64(hdr[12:], uint64(m.Lo))
	binary.LittleEndian.PutUint64(hdr[20:], uint64(m.Hi))
	binary.LittleEndian.PutUint32(hdr[28:], uint32(m.CoverPages))
	binary.LittleEndian.PutUint32(hdr[32:], uint32(m.LocalPages))
	binary.LittleEndian.PutUint32(hdr[36:], uint32(m.CachePages))
	return m.Skel.Append(hdr[:])
}

// DecodeMeta deserializes a meta blob produced by Encode.
func DecodeMeta(buf []byte) (Meta, error) {
	if len(buf) < 40 {
		return Meta{}, errors.New("extseg: truncated meta")
	}
	if binary.LittleEndian.Uint32(buf[0:]) != metaMagic {
		return Meta{}, errors.New("extseg: bad meta magic")
	}
	m := Meta{
		Variant:    Variant(binary.LittleEndian.Uint32(buf[4:])),
		N:          int(int32(binary.LittleEndian.Uint32(buf[8:]))),
		Lo:         int64(binary.LittleEndian.Uint64(buf[12:])),
		Hi:         int64(binary.LittleEndian.Uint64(buf[20:])),
		CoverPages: int(int32(binary.LittleEndian.Uint32(buf[28:]))),
		LocalPages: int(int32(binary.LittleEndian.Uint32(buf[32:]))),
		CachePages: int(int32(binary.LittleEndian.Uint32(buf[36:]))),
	}
	var err error
	m.Skel, _, err = skeletal.DecodeMeta(buf[40:])
	return m, err
}

// Reopen attaches to a previously built tree persisted on p.
func Reopen(p disk.Pager, m Meta) (*Tree, error) {
	b := disk.ChainCap(p.PageSize(), record.IntervalSize)
	if b < 2 {
		return nil, fmt.Errorf("extseg: page size %d too small", p.PageSize())
	}
	if m.Skel.PayloadSize != payloadSize {
		return nil, fmt.Errorf("extseg: payload size %d, want %d (format drift)", m.Skel.PayloadSize, payloadSize)
	}
	skel, err := skeletal.Reopen(p, m.Skel)
	if err != nil {
		return nil, err
	}
	return &Tree{
		pager:      p,
		variant:    m.Variant,
		skel:       skel,
		b:          b,
		lo:         m.Lo,
		hi:         m.Hi,
		n:          m.N,
		coverPages: m.CoverPages,
		localPages: m.LocalPages,
		cachePages: m.CachePages,
	}, nil
}
