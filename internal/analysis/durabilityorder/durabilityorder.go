// Package durabilityorder enforces the WAL acknowledgement contract of the
// LSM tier: a record appended to the write-ahead chain may only be
// acknowledged — a nil error returned to the caller — after a durability
// barrier (fsync) whose error was checked. Returning success while an
// append is still sitting in the OS page cache is the classic
// lost-acknowledged-write bug: the caller moves on, the machine loses
// power, and a write it was told is durable evaporates.
//
// The analysis runs per function on the control-flow graph. A WAL append
// (disk.ChainAppender.Append, or a call into a package-local function that
// transitively appends without issuing its own barrier) sets a pending bit;
// a barrier call whose error is consumed clears it; the bit meets by OR
// across predecessors. A `return ..., nil` reached with the bit set is the
// violation. A barrier whose error result is discarded (expression
// statement, blank assignment) gets its own diagnostic: an fsync that
// failed is not a barrier, and acking past it is the same lost write with
// extra steps.
//
// Barriers are recognised by terminal name — Sync, Commit, ReplaceMeta,
// SaveMeta — because the LSM tier reaches its fsyncs through func-valued
// config fields (cfg.Sync, cfg.Commit) that the type checker cannot resolve
// to a *types.Func. A package-local callee that transitively issues a
// barrier (Tree.sync wrapping cfg.Sync) counts as a barrier at its call
// sites.
package durabilityorder

import (
	"go/ast"
	"go/types"

	"pathcache/internal/analysis"
	"pathcache/internal/analysis/cfg"
)

// Analyzer is the durabilityorder check.
var Analyzer = &analysis.Analyzer{
	Name: "durabilityorder",
	Doc:  "every path from a WAL append to a successful return must pass a checked fsync barrier",
	Run:  run,
}

// barrierNames are the terminal identifiers that establish durability: the
// engine's fsync and meta-flip entry points plus the LSM config hooks.
// Matched by name so calls through func-valued fields (t.cfg.Sync) count.
var barrierNames = map[string]bool{
	"Sync": true, "Commit": true, "ReplaceMeta": true, "SaveMeta": true,
}

func run(pass *analysis.Pass) error {
	cg := analysis.NewCallGraph(pass.TypesInfo, pass.Files)
	// Local functions that transitively issue a barrier / a WAL append.
	barrierFns := cg.Taint(func(call *ast.CallExpr) bool {
		return barrierNames[analysis.CallName(call)]
	})
	appendFns := cg.Taint(func(call *ast.CallExpr) bool {
		return isWALAppend(pass.TypesInfo, call)
	})
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			a := &checker{
				pass:       pass,
				cg:         cg,
				barrierFns: barrierFns,
				appendFns:  appendFns,
			}
			a.check(fd)
		}
	}
	return nil
}

// isWALAppend reports whether call appends to the write-ahead chain:
// disk.ChainAppender.Append. ChainWriter.Append is deliberately excluded —
// level-build writes are made durable by the commit flip that publishes
// them, not by a per-record barrier.
func isWALAppend(info *types.Info, call *ast.CallExpr) bool {
	fn := analysis.CalleeOf(info, call)
	if fn == nil || fn.Name() != "Append" || !analysis.PkgIs(fn.Pkg(), "internal/disk") {
		return false
	}
	named := analysis.RecvNamed(fn)
	return named != nil && named.Obj().Name() == "ChainAppender"
}

type checker struct {
	pass       *analysis.Pass
	cg         *analysis.CallGraph
	barrierFns map[*types.Func]bool
	appendFns  map[*types.Func]bool
}

// event is one durability-relevant call in a block, in execution order.
type event struct {
	call    *ast.CallExpr
	kind    int  // evAppend or evBarrier
	checked bool // barrier only: error result consumed
}

const (
	evAppend = iota
	evBarrier
)

func (c *checker) check(fd *ast.FuncDecl) {
	g := cfg.New(fd.Body)
	events := make([][]event, len(g.Blocks))
	any := false
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			events[b.Index] = append(events[b.Index], c.nodeEvents(n)...)
		}
		for _, e := range events[b.Index] {
			if e.kind == evAppend {
				any = true
			}
		}
	}
	if !any {
		return // no WAL appends: nothing to order
	}

	// Forward dataflow: pending[b] = an append is un-barriered on some path
	// into b. Meet is OR; the transfer runs the block's events in order.
	in := make([]bool, len(g.Blocks))
	out := make([]bool, len(g.Blocks))
	for changed := true; changed; {
		changed = false
		for _, b := range g.Blocks {
			pin := false
			for _, p := range b.Preds {
				pin = pin || out[p.Index]
			}
			in[b.Index] = pin
			pout := pin
			for _, e := range events[b.Index] {
				if e.kind == evAppend {
					pout = true
				} else {
					// Any barrier clears the bit — an unchecked one is
					// reported at its own position instead of cascading a
					// second diagnostic onto every return it reaches.
					pout = false
				}
			}
			if pout != out[b.Index] {
				out[b.Index] = pout
				changed = true
			}
		}
	}

	// Reporting pass: replay each block from its converged in-state.
	for _, b := range g.Blocks {
		pending := in[b.Index]
		for _, n := range b.Nodes {
			for _, e := range c.nodeEvents(n) {
				switch {
				case e.kind == evAppend:
					pending = true
				case e.checked:
					pending = false
				case pending:
					c.pass.Reportf(e.call.Pos(),
						"durability barrier error discarded while a WAL append is pending: a failed fsync is not a barrier; check the error before acknowledging (or justify with %s durabilityorder)",
						analysis.DirectivePrefix)
					pending = false // reported once; do not cascade to the return
				}
			}
			if ret, ok := n.(*ast.ReturnStmt); ok && pending && isSuccessReturn(ret) {
				c.pass.Reportf(ret.Pos(),
					"successful return acknowledges a WAL append with no fsync barrier on this path: the write can be lost after the caller was told it is durable; sync (and check the error) first, or justify with %s durabilityorder",
					analysis.DirectivePrefix)
			}
		}
	}
}

// nodeEvents extracts the durability events of one CFG node in source
// order. The enclosing statement form decides whether a barrier's error is
// consumed: an expression statement or an all-blank assignment discards it;
// everything else (if-init assignment, return, condition) consumes it.
func (c *checker) nodeEvents(n ast.Node) []event {
	discarded := map[*ast.CallExpr]bool{}
	switch s := n.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			discarded[call] = true
		}
	case *ast.AssignStmt:
		allBlank := true
		for _, lhs := range s.Lhs {
			if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
				allBlank = false
			}
		}
		if allBlank {
			for _, rhs := range s.Rhs {
				if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
					discarded[call] = true
				}
			}
		}
	case *ast.DeferStmt:
		// A deferred barrier runs after the result values are bound: it
		// cannot turn a failed fsync into a non-nil return, so it neither
		// clears pending nor counts as checked. Deferred appends do not
		// occur in this codebase; skip the whole statement.
		return nil
	case *ast.GoStmt:
		// A goroutine's durability is its own function's problem.
		return nil
	}

	var evs []event
	ast.Inspect(n, func(nd ast.Node) bool {
		if _, ok := nd.(*ast.FuncLit); ok {
			return false // analyzed as its own function
		}
		call, ok := nd.(*ast.CallExpr)
		if !ok {
			return true
		}
		if e, ok := c.classify(call, !discarded[call]); ok {
			evs = append(evs, e)
		}
		return true
	})
	return evs
}

// classify maps a call to a durability event, if it is one.
func (c *checker) classify(call *ast.CallExpr, checked bool) (event, bool) {
	if isWALAppend(c.pass.TypesInfo, call) {
		return event{call: call, kind: evAppend}, true
	}
	if local := c.cg.LocalCallee(call); local != nil {
		switch {
		case c.barrierFns[local]:
			// A local wrapper that reaches a barrier (Tree.sync): the
			// wrapper's own body is checked separately for discarding the
			// fsync error, so the call site only needs its result consumed.
			return event{call: call, kind: evBarrier, checked: checked}, true
		case c.appendFns[local]:
			// Appends transitively, never barriers: the pending bit
			// transfers to this caller.
			return event{call: call, kind: evAppend}, true
		}
		return event{}, false
	}
	if barrierNames[analysis.CallName(call)] {
		return event{call: call, kind: evBarrier, checked: checked}, true
	}
	return event{}, false
}

// isSuccessReturn reports whether ret acknowledges success: its final
// result is the predeclared nil. Returns that propagate an error (or a
// call's results) are failure paths or delegate the decision.
func isSuccessReturn(ret *ast.ReturnStmt) bool {
	if len(ret.Results) == 0 {
		return false // named results: out of scope for this check
	}
	id, ok := ast.Unparen(ret.Results[len(ret.Results)-1]).(*ast.Ident)
	return ok && id.Name == "nil"
}
