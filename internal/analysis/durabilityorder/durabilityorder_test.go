package durabilityorder_test

import (
	"testing"

	"pathcache/internal/analysis/analysistest"
	"pathcache/internal/analysis/durabilityorder"
)

func TestViolations(t *testing.T) {
	analysistest.Run(t, "testdata/src/durabilityorder_bad", durabilityorder.Analyzer)
}

func TestSanctionedPatterns(t *testing.T) {
	analysistest.NoDiagnostics(t, "testdata/src/durabilityorder_good", durabilityorder.Analyzer)
}
