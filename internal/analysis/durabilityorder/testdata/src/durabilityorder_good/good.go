// Package durabilityorder_good exercises the approved shapes: barrier (with
// the error checked) before every success return, barriers reached through
// a package-local wrapper, error propagation, and a justified suppression.
package durabilityorder_good

import (
	"fmt"

	"pathcache/internal/disk"
)

type config struct {
	Sync func() error
}

type writer struct {
	wal *disk.ChainAppender
	p   disk.Pager
	cfg config
}

// sync wraps the config hook the way lsm.Tree.sync does; callers treating
// it as a barrier is the call-graph summary at work.
func (w *writer) sync() error {
	if w.cfg.Sync == nil {
		return nil
	}
	if err := w.cfg.Sync(); err != nil {
		return fmt.Errorf("sync: %w", err)
	}
	return nil
}

// ackAfterBarrier is the canonical append -> fsync -> ack sequence.
func (w *writer) ackAfterBarrier(rec []byte) error {
	if err := w.wal.Append(w.p, rec); err != nil {
		return err
	}
	if err := w.sync(); err != nil {
		return err
	}
	return nil
}

// propagateSync returns the barrier's error directly: success implies the
// fsync succeeded.
func (w *writer) propagateSync(rec []byte) error {
	if err := w.wal.Append(w.p, rec); err != nil {
		return err
	}
	return w.cfg.Sync()
}

// groupCommit batches appends under one barrier — the shape appendLoop in
// the bad fixture gets wrong.
func (w *writer) groupCommit(recs [][]byte) error {
	for _, r := range recs {
		if err := w.wal.Append(w.p, r); err != nil {
			return err
		}
	}
	if err := w.sync(); err != nil {
		return err
	}
	return nil
}

// branchBarrier syncs on both arms before the shared ack.
func (w *writer) branchBarrier(rec []byte, fast bool) error {
	if err := w.wal.Append(w.p, rec); err != nil {
		return err
	}
	if fast {
		if err := w.cfg.Sync(); err != nil {
			return err
		}
	} else {
		if err := w.sync(); err != nil {
			return err
		}
	}
	return nil
}

// sanctioned carries the mandatory justification for deferring the barrier
// to a caller.
func (w *writer) sanctioned(rec []byte) error {
	if err := w.wal.Append(w.p, rec); err != nil {
		return err
	}
	//pcvet:allow durabilityorder -- fixture mirror of a batched ack whose group barrier runs in the caller
	return nil
}
