// Package durabilityorder_bad collects the forbidden shapes: acknowledging
// a WAL append (returning nil) without an intervening fsync barrier, or
// issuing the barrier and throwing its error away.
package durabilityorder_bad

import (
	"pathcache/internal/disk"
)

type config struct {
	Sync func() error
}

type writer struct {
	wal *disk.ChainAppender
	p   disk.Pager
	cfg config
}

// ackWithoutBarrier returns success straight after the append: the record
// may still be in the OS page cache when the caller moves on.
func (w *writer) ackWithoutBarrier(rec []byte) error {
	if err := w.wal.Append(w.p, rec); err != nil {
		return err
	}
	return nil // want `successful return acknowledges a WAL append with no fsync barrier`
}

// syncOneBranchOnly barriers the slow path but acks the fast path raw.
func (w *writer) syncOneBranchOnly(rec []byte, fast bool) error {
	if err := w.wal.Append(w.p, rec); err != nil {
		return err
	}
	if !fast {
		if err := w.cfg.Sync(); err != nil {
			return err
		}
	}
	return nil // want `successful return acknowledges a WAL append with no fsync barrier`
}

// dropSyncError issues the barrier but discards its result: a failed fsync
// acks a write that never reached the platter.
func (w *writer) dropSyncError(rec []byte) error {
	if err := w.wal.Append(w.p, rec); err != nil {
		return err
	}
	w.cfg.Sync() // want `durability barrier error discarded while a WAL append is pending`
	return nil
}

// blankSyncError is the same bug spelled with a blank assignment.
func (w *writer) blankSyncError(rec []byte) error {
	if err := w.wal.Append(w.p, rec); err != nil {
		return err
	}
	_ = w.cfg.Sync() // want `durability barrier error discarded while a WAL append is pending`
	return nil
}

// appendOnly delegates the ack decision to its caller (no nil return of its
// own), so the pending append transfers to every call site.
func (w *writer) appendOnly(rec []byte) error {
	return w.wal.Append(w.p, rec)
}

// ackViaHelper acks a helper's append without a barrier of its own.
func (w *writer) ackViaHelper(rec []byte) error {
	if err := w.appendOnly(rec); err != nil {
		return err
	}
	return nil // want `successful return acknowledges a WAL append with no fsync barrier`
}

// appendLoop leaks the pending bit out of the loop: the batch is acked with
// no group barrier.
func (w *writer) appendLoop(recs [][]byte) error {
	for _, r := range recs {
		if err := w.wal.Append(w.p, r); err != nil {
			return err
		}
	}
	return nil // want `successful return acknowledges a WAL append with no fsync barrier`
}
