package commitprotocol_test

import (
	"testing"

	"pathcache/internal/analysis/analysistest"
	"pathcache/internal/analysis/commitprotocol"
)

func TestViolations(t *testing.T) {
	analysistest.Run(t, "testdata/src/commitprotocol_bad", commitprotocol.Analyzer)
}

func TestSanctionedPatterns(t *testing.T) {
	analysistest.NoDiagnostics(t, "testdata/src/commitprotocol_good", commitprotocol.Analyzer)
}
