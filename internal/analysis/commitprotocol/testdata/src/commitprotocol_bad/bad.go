// Package commitprotocol_bad collects the forbidden orderings around the
// commit flip: freeing superseded pages before (or without) the flip, and
// writing new-chain pages after it.
package commitprotocol_bad

import (
	"pathcache/internal/disk"
)

type config struct {
	Commit func([]byte) error
}

type store struct {
	p   disk.Pager
	fs  *disk.FileStore
	cfg config
}

// freeBeforeFlip destroys the old page while the live metadata still
// references it: a crash before the flip recovers into corruption.
func (s *store) freeBeforeFlip(old disk.PageID, blob []byte) error {
	if err := s.p.Free(old); err != nil { // want `freed with no commit flip`
		return err
	}
	if err := s.cfg.Commit(blob); err != nil {
		return err
	}
	return nil
}

// freeOnFliplessPath frees on a branch the flip never reaches. The
// post-flip free at the end is fine: every path to it passed the commit.
func (s *store) freeOnFliplessPath(stale bool, old disk.PageID, blob []byte) error {
	if stale {
		return disk.FreeChain(s.p, old) // want `freed with no commit flip`
	}
	if err := s.cfg.Commit(blob); err != nil {
		return err
	}
	return disk.FreeChain(s.p, old)
}

// writeAfterFlip publishes metadata that references a page not yet
// written: the flip must be the last mutation of the new state.
func (s *store) writeAfterFlip(id disk.PageID, page, blob []byte) error {
	if err := s.cfg.Commit(blob); err != nil {
		return err
	}
	return s.p.Write(id, page) // want `write reachable after a commit flip`
}

// sealTail delegates its writes; the caller's ordering is still checked
// through the call-graph summary.
func (s *store) sealTail(ids []disk.PageID, page []byte) error {
	for _, id := range ids {
		if err := s.p.Write(id, page); err != nil {
			return err
		}
	}
	return nil
}

// helperWriteAfterFlip writes through a package-local helper after the
// commit.
func (s *store) helperWriteAfterFlip(ids []disk.PageID, page, blob []byte) error {
	if err := s.cfg.Commit(blob); err != nil {
		return err
	}
	return s.sealTail(ids, page) // want `write reachable after a commit flip`
}

// earlyFree frees the superseded metadata page before the superblock flip
// (SetAppHead) publishes its replacement.
func (s *store) earlyFree(oldMeta, newMeta disk.PageID) error {
	if err := s.p.Free(oldMeta); err != nil { // want `freed with no commit flip`
		return err
	}
	return s.fs.SetAppHead(newMeta)
}
