// Package commitprotocol_good exercises the approved commit shapes:
// write-all-new, flip, free-old — with the flip reached directly, through a
// package-local wrapper, and with a justified stale-path suppression.
package commitprotocol_good

import (
	"pathcache/internal/disk"
)

type config struct {
	Commit func([]byte) error
}

type store struct {
	p   disk.Pager
	fs  *disk.FileStore
	cfg config
}

// commit wraps the config hook the way lsm.Tree.commit does.
func (s *store) commit(blob []byte) error {
	if s.cfg.Commit == nil {
		return nil
	}
	return s.cfg.Commit(blob)
}

// freeAll is a free-only helper: its ordering is its callers' concern.
func (s *store) freeAll(ids []disk.PageID) error {
	for _, id := range ids {
		if err := s.p.Free(id); err != nil {
			return err
		}
	}
	return nil
}

// canonical is the full discipline: write the new page, flip through the
// local wrapper, then free the superseded pages through a helper.
func (s *store) canonical(old []disk.PageID, id disk.PageID, page, blob []byte) error {
	if err := s.p.Write(id, page); err != nil {
		return err
	}
	if err := s.commit(blob); err != nil {
		return err
	}
	return s.freeAll(old)
}

// superblockFlip mirrors engine.ReplaceMeta: write, SetAppHead, then free
// the old metadata page under the flip's dominance.
func (s *store) superblockFlip(oldMeta disk.PageID, page []byte) error {
	id, err := s.p.Alloc()
	if err != nil {
		return err
	}
	if err := s.p.Write(id, page); err != nil {
		return err
	}
	if err := s.fs.SetAppHead(id); err != nil {
		return err
	}
	if oldMeta != disk.InvalidPage {
		if err := s.p.Free(oldMeta); err != nil {
			return err
		}
	}
	return nil
}

// batchThenFlip loops all new-chain writes before the single flip.
func (s *store) batchThenFlip(ids []disk.PageID, page, blob []byte) error {
	for _, id := range ids {
		if err := s.p.Write(id, page); err != nil {
			return err
		}
	}
	return s.commit(blob)
}

// staleAbort frees pages this call built itself and never published — the
// sanctioned exception, carrying its justification.
func (s *store) staleAbort(sealed disk.PageID, stale bool, blob []byte) error {
	if stale {
		//pcvet:allow commitprotocol -- fixture mirror of freeing this call's own uncommitted pages on the stale path
		return s.p.Free(sealed)
	}
	return s.commit(blob)
}
