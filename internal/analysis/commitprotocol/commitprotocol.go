// Package commitprotocol enforces the write-all-new -> flip -> free-old
// commit discipline of the storage stack. The flip — publishing new state
// by writing the metadata head (SetAppHead, SaveMeta, ReplaceMeta) or
// committing a manifest blob (cfg.Commit) — is the single atomic point a
// crash pivots on. Two orderings around it are load-bearing:
//
//   - No page may be freed before the flip. Free destroys page content and
//     recycles the ID; a crash after an early free leaves the still-live
//     old metadata pointing at corrupt or reused pages.
//
//   - No new-chain page may be written after the flip. The flipped metadata
//     references those pages, so they must be durable (written, then synced
//     by the flip path) before it becomes visible.
//
// The analysis runs on functions that contain a flip (directly or through
// a package-local wrapper like Tree.commit). A free must be dominated by
// some flip — on every path from the entry, a flip already happened; a
// write must not be reachable from any flip. Sync and Flush are
// deliberately not writes: the engine syncs after SetAppHead by design
// (the flip itself must reach the platter).
package commitprotocol

import (
	"go/ast"
	"go/types"

	"pathcache/internal/analysis"
	"pathcache/internal/analysis/cfg"
)

// Analyzer is the commitprotocol check.
var Analyzer = &analysis.Analyzer{
	Name: "commitprotocol",
	Doc:  "commit flips must follow every new-chain write and precede every free of superseded pages",
	Run:  run,
}

// flipNames are the terminal identifiers that publish new state. Matched by
// name so calls through func-valued config fields (cfg.Commit) and
// cross-package engine methods both count.
var flipNames = map[string]bool{
	"SetAppHead": true, "SaveMeta": true, "ReplaceMeta": true, "Commit": true,
}

// freeNames / writeNames classify disk-package I/O (methods and package
// funcs) into the two ordered classes. Read, ScanChain, Sync and Flush are
// in neither: reading old state and syncing around the flip are legal on
// both sides.
var freeNames = map[string]bool{
	"Free": true, "FreeChain": true,
}
var writeNames = map[string]bool{
	"Write": true, "Alloc": true, "Append": true, "Close": true,
	"WriteChain": true, "NewChainWriter": true, "NewChainAppender": true,
}

func run(pass *analysis.Pass) error {
	cg := analysis.NewCallGraph(pass.TypesInfo, pass.Files)
	flipFns := cg.Taint(func(call *ast.CallExpr) bool {
		return flipNames[analysis.CallName(call)]
	})
	freeFns := cg.Taint(func(call *ast.CallExpr) bool {
		return classifyIO(pass.TypesInfo, call) == evFree
	})
	writeFns := cg.Taint(func(call *ast.CallExpr) bool {
		return classifyIO(pass.TypesInfo, call) == evWrite
	})
	c := &checker{pass: pass, cg: cg, flipFns: flipFns, freeFns: freeFns, writeFns: writeFns}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				c.check(fd)
			}
		}
	}
	return nil
}

const (
	evNone = iota
	evFlip
	evFree
	evWrite
)

// classifyIO classifies a resolved disk-package I/O call, ignoring local
// and unresolvable callees (handled via the call graph and flip names).
func classifyIO(info *types.Info, call *ast.CallExpr) int {
	fn := analysis.CalleeOf(info, call)
	if fn == nil || !analysis.PkgIs(fn.Pkg(), "internal/disk") {
		return evNone
	}
	switch {
	case freeNames[fn.Name()]:
		return evFree
	case writeNames[fn.Name()]:
		return evWrite
	}
	return evNone
}

type checker struct {
	pass     *analysis.Pass
	cg       *analysis.CallGraph
	flipFns  map[*types.Func]bool
	freeFns  map[*types.Func]bool
	writeFns map[*types.Func]bool
}

// event is one ordered call: its block, its ordinal within the block's
// event sequence, and its class.
type event struct {
	call  *ast.CallExpr
	kind  int
	block *cfg.Block
	ord   int
}

func (c *checker) check(fd *ast.FuncDecl) {
	g := cfg.New(fd.Body)
	var flips, frees, writes []event
	for _, b := range g.Blocks {
		ord := 0
		for _, n := range b.Nodes {
			ast.Inspect(n, func(nd ast.Node) bool {
				if _, ok := nd.(*ast.FuncLit); ok {
					return false // a literal's body is its own function
				}
				call, ok := nd.(*ast.CallExpr)
				if !ok {
					return true
				}
				for _, kind := range c.classify(call) {
					e := event{call: call, kind: kind, block: b, ord: ord}
					ord++
					switch kind {
					case evFlip:
						flips = append(flips, e)
					case evFree:
						frees = append(frees, e)
					case evWrite:
						writes = append(writes, e)
					}
				}
				return true
			})
		}
	}
	if len(flips) == 0 {
		return // no commit point: ordering is some caller's concern
	}

	dom := g.Dominators()
	for _, f := range frees {
		if !dominatedByAny(dom, flips, f) {
			c.pass.Reportf(f.call.Pos(),
				"page freed with no commit flip on some path from the entry: Free destroys content the still-live old metadata references; flip first, or justify with %s commitprotocol",
				analysis.DirectivePrefix)
		}
	}
	for _, w := range writes {
		if reachableFromAny(g, flips, w) {
			c.pass.Reportf(w.call.Pos(),
				"new-chain write reachable after a commit flip: every page the flipped metadata references must be written before the flip publishes it; reorder, or justify with %s commitprotocol",
				analysis.DirectivePrefix)
		}
	}
}

// classify maps a call to its ordered classes. A local callee can both
// free and write; a flip-tainted callee is a flip only (its internal
// ordering is checked at its own declaration).
func (c *checker) classify(call *ast.CallExpr) []int {
	if flipNames[analysis.CallName(call)] {
		return []int{evFlip}
	}
	if local := c.cg.LocalCallee(call); local != nil {
		if c.flipFns[local] {
			return []int{evFlip}
		}
		var kinds []int
		if c.freeFns[local] {
			kinds = append(kinds, evFree)
		}
		if c.writeFns[local] {
			kinds = append(kinds, evWrite)
		}
		return kinds
	}
	if k := classifyIO(c.pass.TypesInfo, call); k != evNone {
		return []int{k}
	}
	return nil
}

// dominatedByAny reports whether some flip happens-before e on every path:
// an earlier event in the same block, or a flip whose block dominates e's.
func dominatedByAny(dom *cfg.Dominators, flips []event, e event) bool {
	for _, p := range flips {
		if p.block == e.block {
			if p.ord < e.ord {
				return true
			}
			continue
		}
		if dom.Dominates(p.block, e.block) {
			return true
		}
	}
	return false
}

// reachableFromAny reports whether some flip can happen before e on any
// path: an earlier event in the same block, or a flip whose block reaches
// e's block.
func reachableFromAny(g *cfg.Graph, flips []event, e event) bool {
	for _, p := range flips {
		if p.block == e.block && p.ord < e.ord {
			return true
		}
		// Distinct blocks, or the same block on a cycle (a later event
		// reaches an earlier one through the back edge).
		if (p.block != e.block || g.Reachable(p.block, p.block)) && g.Reachable(p.block, e.block) {
			return true
		}
	}
	return false
}
