// Package lockheldio_bad holds shard mutexes across pager I/O in every way
// the lockheldio analyzer models: direct Pager calls, package-local helpers
// that transitively reach the pager, deferred I/O, and read locks.
package lockheldio_bad

import (
	"sync"

	"pathcache/internal/disk"
)

type shard struct {
	mu    sync.Mutex
	pager disk.Pager
	buf   []byte
}

// readHeld blocks every other access to this shard behind a device read.
func (s *shard) readHeld(id disk.PageID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pager.Read(id, s.buf) // want `Pager\.Read performs pager I/O while s\.mu\.Lock is held`
}

// fill performs I/O with no lock held — fine on its own, but it taints
// callers that invoke it under a latch.
func (s *shard) fill(id disk.PageID) error {
	data := make([]byte, s.pager.PageSize())
	return s.pager.Read(id, data)
}

// refresh calls the tainted helper while latched.
func (s *shard) refresh(id disk.PageID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fill(id) // want `call to shard\.fill, which performs pager I/O, while s\.mu\.Lock is held`
}

// deferredWrite registers the write-back after the unlock defer, so it still
// runs with the latch held.
func (s *shard) deferredWrite(id disk.PageID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.pager.Write(id, s.buf) // want `Pager\.Write performs pager I/O while s\.mu\.Lock is held`
}

// scanHeld walks a whole overflow chain — many device reads — under the latch.
func (s *shard) scanHeld(head disk.PageID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := disk.ScanChain(s.pager, 16, head, func(rec []byte) bool { return true }) // want `ScanChain performs pager I/O while s\.mu\.Lock is held`
	return err
}

type table struct {
	mu    sync.RWMutex
	pager disk.Pager
}

// lookup shows that a read lock serializes pager I/O just the same.
func (t *table) lookup(id disk.PageID, buf []byte) error {
	t.mu.RLock()
	err := t.pager.Read(id, buf) // want `Pager\.Read performs pager I/O while t\.mu\.Lock is held`
	t.mu.RUnlock()
	return err
}
