// Package lockheldio_good exercises the approved shapes: release the latch
// before pager I/O, hand the I/O to an unlatched goroutine, or carry a
// //pcvet:allow directive at a design-reviewed site.
package lockheldio_good

import (
	"sync"

	"pathcache/internal/disk"
)

type shard struct {
	mu    sync.Mutex
	pager disk.Pager
	cache map[disk.PageID][]byte
}

// lookupThenFill releases the latch before touching the pager and
// re-acquires it to publish the filled frame.
func (s *shard) lookupThenFill(id disk.PageID, buf []byte) error {
	s.mu.Lock()
	data, ok := s.cache[id]
	s.mu.Unlock()
	if ok {
		copy(buf, data)
		return nil
	}
	if err := s.pager.Read(id, buf); err != nil {
		return err
	}
	s.mu.Lock()
	dst := make([]byte, len(buf))
	copy(dst, buf)
	s.cache[id] = dst
	s.mu.Unlock()
	return nil
}

// sanctioned mirrors the pool's miss fill, with the mandatory justification.
func (s *shard) sanctioned(id disk.PageID, buf []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	//pcvet:allow lockheldio -- fixture mirror of the pool's sanctioned single-page miss fill
	return s.pager.Read(id, buf)
}

// spawn hands the I/O to a goroutine, which does not inherit the latch.
func (s *shard) spawn(id disk.PageID, buf []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		_ = s.pager.Read(id, buf)
	}()
}

// branchRelease unlocks on one path and performs I/O only there.
func (s *shard) branchRelease(id disk.PageID, buf []byte, hot bool) error {
	s.mu.Lock()
	if hot {
		copy(buf, s.cache[id])
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()
	return s.pager.Read(id, buf)
}
