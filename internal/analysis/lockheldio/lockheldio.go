// Package lockheldio enforces the PR-1 concurrency contract of the sharded
// buffer pool: a sync.Mutex/RWMutex must not be held across a call that can
// block on pager I/O.
//
// The sharded pool exists so that concurrent readers contend only on the
// shard owning their page. Holding a shard mutex while transferring a page
// through a Pager serializes every other access to that shard behind a
// device-speed operation (a SlowPager read models ~100µs–10ms), and — worse —
// re-entering the pool from under its own shard lock self-deadlocks. The few
// sites where the pool intentionally fills or writes back a frame under its
// shard latch carry //pcvet:allow lockheldio directives with the design
// justification; everything else is a bug.
//
// The analysis is intra-procedural with one package-local extension: a
// function in the analyzed package that (transitively) performs pager I/O
// taints its callers, so `sh.mu.Lock(); p.insert(...)` is flagged even
// though the Write happens two frames down.
package lockheldio

import (
	"go/ast"
	"go/token"
	"go/types"

	"pathcache/internal/analysis"
)

// Analyzer is the lockheldio check.
var Analyzer = &analysis.Analyzer{
	Name: "lockheldio",
	Doc:  "no call may block on pager I/O while a sync.Mutex or sync.RWMutex is held",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	// The package-local taint closure: functions whose bodies transitively
	// perform pager I/O, via the shared call-graph summary layer.
	tainted := analysis.NewCallGraph(pass.TypesInfo, pass.Files).Taint(func(call *ast.CallExpr) bool {
		return analysis.IsPagerIO(analysis.CalleeOf(pass.TypesInfo, call))
	})
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &lockWalker{pass: pass, tainted: tainted}
			w.stmts(fd.Body.List, lockSet{})
		}
	}
	return nil
}

// lockSet maps a lock's receiver expression (printed form) to the position
// where it was acquired.
type lockSet map[string]token.Pos

func (ls lockSet) clone() lockSet {
	c := make(lockSet, len(ls))
	for k, v := range ls {
		c[k] = v
	}
	return c
}

// any returns an arbitrary held lock name, for the diagnostic.
func (ls lockSet) any() string {
	for k := range ls {
		return k
	}
	return ""
}

// lockWalker tracks held mutexes through a statement list. Branches are
// walked with a copy of the state; the straight-line state only changes at
// Lock/Unlock calls, which matches the repository's lock discipline
// (acquire, work, release — optionally via defer, which keeps the lock to
// function end and is modeled by simply never removing it).
type lockWalker struct {
	pass    *analysis.Pass
	tainted map[*types.Func]bool
}

func (w *lockWalker) stmts(list []ast.Stmt, held lockSet) {
	for _, s := range list {
		w.stmt(s, held)
	}
}

func (w *lockWalker) stmt(s ast.Stmt, held lockSet) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		w.expr(s.X, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e, held)
		}
	case *ast.DeclStmt:
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				w.expr(e, held)
				return false
			}
			return true
		})
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, held)
		}
	case *ast.DeferStmt:
		// defer mu.Unlock() releases at return; the lock stays held for the
		// remainder, which is exactly what not removing it models. A
		// deferred I/O call still runs with any still-held locks.
		if w.lockOp(s.Call) == opNone {
			w.expr(s.Call, held)
		}
	case *ast.GoStmt:
		// The goroutine does not inherit the caller's locks.
		w.expr(s.Call, lockSet{})
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.expr(s.Cond, held)
		w.stmts(s.Body.List, held.clone())
		if s.Else != nil {
			w.stmt(s.Else, held.clone())
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			w.expr(s.Cond, held)
		}
		body := held.clone()
		w.stmts(s.Body.List, body)
		if s.Post != nil {
			w.stmt(s.Post, body)
		}
	case *ast.RangeStmt:
		w.expr(s.X, held)
		w.stmts(s.Body.List, held.clone())
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			w.expr(s.Tag, held)
		}
		for _, c := range s.Body.List {
			w.stmts(c.(*ast.CaseClause).Body, held.clone())
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			w.stmts(c.(*ast.CaseClause).Body, held.clone())
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			w.stmts(c.(*ast.CommClause).Body, held.clone())
		}
	case *ast.BlockStmt:
		w.stmts(s.List, held.clone())
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, held)
	case *ast.SendStmt:
		w.expr(s.Chan, held)
		w.expr(s.Value, held)
	}
}

type lockOp int

const (
	opNone lockOp = iota
	opLock
	opUnlock
)

// lockOp classifies a call as acquiring or releasing a sync mutex.
func (w *lockWalker) lockOp(call *ast.CallExpr) lockOp {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return opNone
	}
	var op lockOp
	switch sel.Sel.Name {
	case "Lock", "RLock", "TryLock", "TryRLock":
		op = opLock
	case "Unlock", "RUnlock":
		op = opUnlock
	default:
		return opNone
	}
	t := w.pass.TypesInfo.TypeOf(sel.X)
	if t == nil {
		return opNone
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return opNone
	}
	switch named.Obj().Name() {
	case "Mutex", "RWMutex", "Locker":
		return op
	}
	return opNone
}

// expr walks an expression in evaluation order, updating held at
// Lock/Unlock calls and flagging pager I/O performed while held.
func (w *lockWalker) expr(e ast.Expr, held lockSet) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A literal's body runs when called, not here; analyze it as an
			// independent function.
			w.stmts(n.Body.List, lockSet{})
			return false
		case *ast.CallExpr:
			sel, _ := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			switch w.lockOp(n) {
			case opLock:
				held[exprKey(sel.X)] = n.Pos()
				return true
			case opUnlock:
				delete(held, exprKey(sel.X))
				return true
			}
			if len(held) == 0 {
				return true
			}
			callee := analysis.CalleeOf(w.pass.TypesInfo, n)
			switch {
			case analysis.IsPagerIO(callee):
				w.pass.Reportf(n.Pos(),
					"%s performs pager I/O while %s is held: a blocked page transfer serializes every access to this lock (and re-entering the pool self-deadlocks); release the lock first or justify with %s lockheldio",
					calleeName(callee), held.any()+".Lock", analysis.DirectivePrefix)
			case callee != nil && w.tainted[callee]:
				w.pass.Reportf(n.Pos(),
					"call to %s, which performs pager I/O, while %s is held; release the lock around the I/O or justify with %s lockheldio",
					calleeName(callee), held.any()+".Lock", analysis.DirectivePrefix)
			}
		}
		return true
	})
}

func calleeName(fn *types.Func) string {
	if fn == nil {
		return "call"
	}
	if named := analysis.RecvNamed(fn); named != nil {
		return named.Obj().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// exprKey renders the lock receiver for the held-set key.
func exprKey(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprKey(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprKey(e.X) + "[i]"
	case *ast.StarExpr:
		return exprKey(e.X)
	case *ast.UnaryExpr:
		return exprKey(e.X)
	default:
		return "mutex"
	}
}
