package lockheldio_test

import (
	"testing"

	"pathcache/internal/analysis/analysistest"
	"pathcache/internal/analysis/lockheldio"
)

func TestViolations(t *testing.T) {
	analysistest.Run(t, "testdata/src/lockheldio_bad", lockheldio.Analyzer)
}

func TestSanctionedPatterns(t *testing.T) {
	analysistest.NoDiagnostics(t, "testdata/src/lockheldio_good", lockheldio.Analyzer)
}
