// Package load turns a package directory into the parsed, type-checked
// analysis.Package the analyzers consume, using only the standard library.
//
// Dependencies are type-checked from source through go/importer's "source"
// importer, which resolves standard-library packages under GOROOT and
// module-local packages through the go command — no network, no export
// data, no golang.org/x/tools. One process-wide importer (and FileSet)
// caches every dependency, so loading the whole repository type-checks the
// stdlib closure once.
package load

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"path/filepath"
	"strings"
	"sync"

	"pathcache/internal/analysis"
)

var (
	mu     sync.Mutex
	fset   = token.NewFileSet()
	source = importer.ForCompiler(fset, "source", nil)
)

// Dir loads the (non-test) package rooted at dir. importPath is used as the
// type-checker's package path; pass "" to use the directory's package name,
// which is what fixture packages under testdata want.
func Dir(dir, importPath string) (*analysis.Package, error) {
	mu.Lock()
	defer mu.Unlock()

	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("load %s: %w", dir, err)
	}
	var names []string
	names = append(names, bp.GoFiles...)
	if importPath == "" {
		importPath = bp.Name
	}

	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := analysis.NewInfo()
	conf := &types.Config{
		Importer: importerFunc(func(path string) (*types.Package, error) {
			if path == "unsafe" {
				return types.Unsafe, nil
			}
			return source.Import(path)
		}),
		Sizes: types.SizesFor(build.Default.Compiler, build.Default.GOARCH),
	}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", importPath, err)
	}
	return &analysis.Package{Fset: fset, Syntax: files, Pkg: pkg, Info: info}, nil
}

// A Target is one package directory to analyze and the import path it is
// known by.
type Target struct {
	Dir        string
	ImportPath string
}

// Targets expands args into load targets. Supported forms: "./...",
// "<dir>/...", and plain directory paths. modulePath is the module's import
// path prefix (from go.mod) used to derive each package's import path.
func Targets(root, modulePath string, args []string) ([]Target, error) {
	var out []Target
	seen := map[string]bool{}
	add := func(dir string) {
		abs, err := filepath.Abs(dir)
		if err != nil || seen[abs] {
			return
		}
		seen[abs] = true
		bp, err := build.ImportDir(abs, 0)
		if err != nil || len(bp.GoFiles) == 0 {
			return // no non-test Go files here
		}
		out = append(out, Target{Dir: abs, ImportPath: importPathFor(root, modulePath, abs)})
	}
	for _, arg := range args {
		base, recursive := strings.CutSuffix(arg, "/...")
		if base == "." || base == "" {
			base = root
		}
		if !recursive {
			add(arg)
			continue
		}
		if err := walkGoDirs(base, add); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func walkGoDirs(base string, add func(dir string)) error {
	return filepath.WalkDir(base, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if name == "testdata" || (len(name) > 1 && (name[0] == '.' || name[0] == '_')) {
			return fs.SkipDir
		}
		add(path)
		return nil
	})
}

// importPathFor derives the import path of dir from the module root.
func importPathFor(root, modulePath, dir string) string {
	rel, err := filepath.Rel(root, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.Base(dir)
	}
	if rel == "." {
		return modulePath
	}
	return modulePath + "/" + filepath.ToSlash(rel)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
