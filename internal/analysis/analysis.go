// Package analysis is a small, dependency-free analogue of
// golang.org/x/tools/go/analysis: just enough framework to write the
// repository's custom static checks and run them from cmd/pcvet, both
// standalone and as a `go vet -vettool` backend.
//
// The checks exist because the paper's theorems rest on conventions the
// compiler cannot see: all page transfers must flow through the accounting
// disk.Pager, record encodings must stay fixed-width so B = ⌊page/record⌋
// arithmetic holds, shard mutexes must not be held across pager I/O, and
// fault-path errors must stay errors.Is-able. Each convention gets one
// Analyzer; drivers decide which packages each analyzer runs on.
//
// A finding can be suppressed for a sanctioned site with a directive on the
// offending line or the line above:
//
//	//pcvet:allow lockheldio -- single-page miss fill, see DESIGN.md
//
// The reason after “--” is mandatory; a directive without one is itself
// reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and directives.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run reports findings for one package via pass.Reportf.
	Run func(pass *Pass) error
}

// A Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// A Package bundles everything a driver loads for one package: shared
// position information, syntax, and type information.
type Package struct {
	Fset   *token.FileSet
	Syntax []*ast.File // every parsed file of the package, tests included
	Pkg    *types.Package
	Info   *types.Info
}

// NewInfo allocates a types.Info with every map analyzers rely on.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// A Pass carries one analyzer's view of one package. Files holds only the
// non-test files: the conventions are production-code conventions, and tests
// legitimately poke through abstractions (e.g. driving a bare Store).
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf records one finding.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Run executes the analyzers on pkg and returns the surviving diagnostics
// sorted by position: findings on lines covered by a matching
// //pcvet:allow directive are dropped, and malformed directives are reported.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	dirs, bad := directives(pkg.Fset, pkg.Syntax)

	var files []*ast.File
	for _, f := range pkg.Syntax {
		if !strings.HasSuffix(pkg.Fset.Position(f.Pos()).Filename, "_test.go") {
			files = append(files, f)
		}
	}

	var out []Diagnostic
	out = append(out, bad...)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.Info,
			report: func(d Diagnostic) {
				if !dirs.allows(pkg.Fset, d) {
					out = append(out, d)
				}
			},
		}
		if err := a.Run(pass); err != nil {
			return out, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.Pkg.Path(), err)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out, nil
}

// directiveKey identifies one suppression: an analyzer name at a file:line.
type directiveKey struct {
	file string
	line int
	name string
}

type directiveSet map[directiveKey]bool

// DirectivePrefix introduces a suppression comment.
const DirectivePrefix = "//pcvet:allow"

// directives collects every //pcvet:allow comment, returning the suppression
// set and a diagnostic for each directive missing its “-- reason” tail.
func directives(fset *token.FileSet, files []*ast.File) (directiveSet, []Diagnostic) {
	set := directiveSet{}
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, DirectivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, DirectivePrefix)
				names, reason, found := strings.Cut(rest, "--")
				if !found || strings.TrimSpace(reason) == "" {
					bad = append(bad, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "pcvet",
						Message:  "pcvet:allow directive needs a justification: //pcvet:allow <analyzer> -- <reason>",
					})
					continue
				}
				pos := fset.Position(c.Pos())
				for _, name := range strings.Split(names, ",") {
					name = strings.TrimSpace(name)
					if name == "" {
						continue
					}
					set[directiveKey{pos.Filename, pos.Line, name}] = true
				}
			}
		}
	}
	return set, bad
}

// allows reports whether d is covered by a directive on its line or the line
// directly above.
func (s directiveSet) allows(fset *token.FileSet, d Diagnostic) bool {
	pos := fset.Position(d.Pos)
	return s[directiveKey{pos.Filename, pos.Line, d.Analyzer}] ||
		s[directiveKey{pos.Filename, pos.Line - 1, d.Analyzer}]
}

// ---- shared type-level helpers used by several analyzers ----

// CalleeOf resolves the statically-known function or method a call invokes,
// or nil for builtins, conversions, and calls through function values.
func CalleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// PkgIs reports whether pkg's import path is path itself or ends in /path —
// so "internal/disk" matches both the in-module spelling and the full
// module-qualified one.
func PkgIs(pkg *types.Package, path string) bool {
	if pkg == nil {
		return false
	}
	return pkg.Path() == path || strings.HasSuffix(pkg.Path(), "/"+path)
}

// RecvNamed returns the named type of a method's receiver (through one
// pointer), or nil if fn is not a method or the receiver is unnamed.
func RecvNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// pagerIOMethods are the Pager-shaped methods that transfer or release pages.
// Flush is the pool's bulk write-back; Append/Close are ChainWriter's
// page-emitting operations.
var pagerIOMethods = map[string]bool{
	"Read": true, "Write": true, "Alloc": true, "Free": true,
	"Flush": true, "Append": true, "Close": true,
}

// pagerIOFuncs are the package-level disk helpers that perform page I/O.
var pagerIOFuncs = map[string]bool{
	"ScanChain": true, "FreeChain": true, "WriteChain": true,
}

// IsPagerIO reports whether fn is a disk-package function or method that
// performs (or can perform) page I/O through a Pager. PageSize, Stats and
// friends are metadata and excluded.
func IsPagerIO(fn *types.Func) bool {
	if fn == nil || !PkgIs(fn.Pkg(), "internal/disk") {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return pagerIOMethods[fn.Name()]
	}
	return pagerIOFuncs[fn.Name()]
}

// ErrorResultIndex returns the index of fn's trailing error result, or -1.
func ErrorResultIndex(fn *types.Func) int {
	if fn == nil {
		return -1
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return -1
	}
	last := sig.Results().Len() - 1
	if named, ok := sig.Results().At(last).Type().(*types.Named); ok &&
		named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
		return last
	}
	return -1
}
