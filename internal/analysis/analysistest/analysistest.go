// Package analysistest runs an analyzer over a fixture package and checks
// its diagnostics against // want annotations, mirroring the x/tools
// package of the same name with only the standard library.
//
// A fixture line expecting diagnostics carries one or more quoted regular
// expressions:
//
//	sink = rec // want `aliases a reused page buffer`
//	_ = p.store.Write(id, buf) // want "dropped" "second finding"
//
// Every want must be matched by a diagnostic on its line and every
// diagnostic must be matched by a want, or the test fails.
package analysistest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"pathcache/internal/analysis"
	"pathcache/internal/analysis/load"
)

// Run loads the fixture package in dir, applies the analyzers, and verifies
// the diagnostics against the fixture's // want comments. It returns the
// diagnostics for any further assertions.
func Run(t *testing.T, dir string, analyzers ...*analysis.Analyzer) []analysis.Diagnostic {
	t.Helper()
	pkg, err := load.Dir(dir, "")
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := analysis.Run(pkg, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", dir, err)
	}

	wants, err := collectWants(pkg)
	if err != nil {
		t.Fatal(err)
	}
	matched := make([]bool, len(wants))
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		ok := false
		for i, w := range wants {
			if !matched[i] && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: unexpected diagnostic [%s]: %s", pos, d.Analyzer, d.Message)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
	return diags
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

// wantRx matches one quoted expectation: a Go string or backquote literal.
var wantRx = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// collectWants parses // want comments from every fixture file.
func collectWants(pkg *analysis.Package) ([]want, error) {
	var out []want
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, found := strings.CutPrefix(c.Text, "// want ")
				if !found {
					if text, found = strings.CutPrefix(c.Text, "//want "); !found {
						continue
					}
				}
				pos := pkg.Fset.Position(c.Pos())
				quoted := wantRx.FindAllString(text, -1)
				if len(quoted) == 0 {
					return nil, fmt.Errorf("%s: malformed want comment %q", pos, c.Text)
				}
				for _, q := range quoted {
					pat, err := unquote(q)
					if err != nil {
						return nil, fmt.Errorf("%s: %w", pos, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want pattern: %w", pos, err)
					}
					out = append(out, want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return out, nil
}

func unquote(q string) (string, error) {
	if strings.HasPrefix(q, "`") {
		return strings.Trim(q, "`"), nil
	}
	return strconv.Unquote(q)
}

// NoDiagnostics asserts the analyzers stay silent on the fixture in dir —
// used for the “good” fixtures that exercise the sanctioned patterns.
func NoDiagnostics(t *testing.T, dir string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	pkg, err := load.Dir(dir, "")
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := analysis.Run(pkg, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", dir, err)
	}
	for _, d := range diags {
		t.Errorf("%s: unexpected diagnostic [%s]: %s", pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
	}
}
