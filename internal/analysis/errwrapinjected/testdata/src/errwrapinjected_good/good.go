// Package errwrapinjected_good keeps the errors.Is chain intact: %w
// wrapping, handled pager errors, and defers that capture the error.
package errwrapinjected_good

import (
	"errors"
	"fmt"

	"pathcache/internal/disk"
)

func wraps(p disk.Pager, id disk.PageID, buf []byte) error {
	if err := p.Read(id, buf); err != nil {
		return fmt.Errorf("reading page %d: %w", id, err)
	}
	return nil
}

func handles(p *disk.BufferPool) error {
	if err := p.Flush(); err != nil && !errors.Is(err, disk.ErrInjected) {
		return err
	}
	return nil
}

func deferredChecked(w *disk.ChainWriter) (err error) {
	defer func() {
		if _, _, _, cerr := w.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	return nil
}

func twoWraps(errA, errB error) error {
	return fmt.Errorf("a: %w; b: %w", errA, errB)
}

func nonErrorVerbs(id disk.PageID, n int) error {
	return fmt.Errorf("page %d holds %d records", id, n)
}

// Declaring the sentinel is the sanctioned errors.New leaf for a
// corruption message; everything else must wrap it.
var ErrHeaderCorrupt = errors.New("good: corrupt header")

func corruptWrapped(id disk.PageID) error {
	return fmt.Errorf("page %d corrupt: %w", id, disk.ErrCorrupt)
}

func corruptSentinelWrapped() error {
	return fmt.Errorf("reopening after crash: %w", ErrHeaderCorrupt)
}
