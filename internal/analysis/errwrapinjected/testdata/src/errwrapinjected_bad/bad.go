// Package errwrapinjected_bad severs the errors.Is chain in every way the
// errwrapinjected analyzer reports: %v wrapping, err.Error() stringification,
// and pager errors dropped on the floor.
package errwrapinjected_bad

import (
	"errors"
	"fmt"

	"pathcache/internal/disk"
	"pathcache/internal/record"
)

func wrapsWithV(p disk.Pager, id disk.PageID, buf []byte) error {
	if err := p.Read(id, buf); err != nil {
		return fmt.Errorf("reading page %d: %v", id, err) // want `fmt\.Errorf receives 1 error argument\(s\) but the format has 0 %w verb\(s\)`
	}
	return nil
}

func stringifies(p disk.Pager, id disk.PageID, buf []byte) error {
	if err := p.Read(id, buf); err != nil {
		return fmt.Errorf("reading page %d: %s", id, err.Error()) // want `err\.Error\(\) stringifies the error before wrapping`
	}
	return nil
}

func oneOfTwoWrapped(errA, errB error) error {
	return fmt.Errorf("a: %w; b: %v", errA, errB) // want `receives 2 error argument\(s\) but the format has 1 %w verb\(s\)`
}

func dropsFlush(p *disk.BufferPool) {
	p.Flush() // want `error from BufferPool\.Flush is dropped \(its result is discarded by the bare call\)`
}

func deferredClose(w *disk.ChainWriter) {
	defer w.Close() // want `error from ChainWriter\.Close is dropped \(a deferred call discards its result\)`
}

func blanks(p disk.Pager, id disk.PageID, buf []byte) {
	_ = p.Write(id, buf) // want `error from Pager\.Write is assigned to _`
}

func blankScan(p disk.Pager, head disk.PageID) int {
	n, _ := disk.ScanChain(p, record.PointSize, head, func([]byte) bool { return true }) // want `error from disk\.ScanChain is assigned to _`
	return n
}

func corruptLeaf() error {
	return errors.New("segment header corrupt") // want `corruption reported as a fresh errors\.New leaf`
}

func corruptNoWrap(id disk.PageID, kind int) error {
	return fmt.Errorf("node %d kind %d is Corrupted", id, kind) // want `error message reports corruption without wrapping`
}
