package errwrapinjected_test

import (
	"testing"

	"pathcache/internal/analysis/analysistest"
	"pathcache/internal/analysis/errwrapinjected"
)

func TestViolations(t *testing.T) {
	analysistest.Run(t, "testdata/src/errwrapinjected_bad", errwrapinjected.Analyzer)
}

func TestSanctionedPatterns(t *testing.T) {
	analysistest.NoDiagnostics(t, "testdata/src/errwrapinjected_good", errwrapinjected.Analyzer)
}
