// Package errwrapinjected keeps the fault-injection contract testable:
// faults_test.go drives every structure with a disk.FaultPager and asserts
// errors.Is(err, disk.ErrInjected) on each failure, so an error that crosses
// a package boundary without %w — or a pager error that is silently
// discarded — breaks the one oracle the fault-path tests have.
//
// Reported:
//
//   - fmt.Errorf calls that receive an error argument but whose constant
//     format string has fewer %w verbs than error arguments (the classic %v
//     wrap that severs the errors.Is chain);
//   - err.Error() stringification passed into fmt.Errorf, which severs the
//     chain even through %s;
//   - pager I/O calls whose error result is dropped: a bare expression
//     statement, an assignment to _, or a deferred call. An injected fault
//     (or a real device error, once the store is a file) disappears without
//     a trace at such a site.
package errwrapinjected

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"pathcache/internal/analysis"
)

// Analyzer is the errwrapinjected check.
var Analyzer = &analysis.Analyzer{
	Name: "errwrapinjected",
	Doc:  "fault-path errors must be wrapped with %w and pager errors must not be discarded, so errors.Is(err, disk.ErrInjected) keeps working",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkErrorf(pass, n)
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkDropped(pass, call, "its result is discarded by the bare call")
				}
			case *ast.DeferStmt:
				checkDropped(pass, n.Call, "a deferred call discards its result")
			case *ast.GoStmt:
				checkDropped(pass, n.Call, "a go statement discards its result")
			case *ast.AssignStmt:
				checkBlankAssign(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkErrorf flags fmt.Errorf calls that lose the error chain.
func checkErrorf(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.CalleeOf(pass.TypesInfo, call)
	if fn == nil || fn.Name() != "Errorf" || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return // non-constant format: nothing to prove
	}
	format := constant.StringVal(tv.Value)
	wraps := strings.Count(format, "%w")

	errArgs := 0
	for _, arg := range call.Args[1:] {
		t := pass.TypesInfo.TypeOf(arg)
		if t != nil && isErrorType(t) {
			errArgs++
			continue
		}
		// err.Error() as an argument severs the chain just as thoroughly.
		if inner, ok := ast.Unparen(arg).(*ast.CallExpr); ok {
			if m := analysis.CalleeOf(pass.TypesInfo, inner); m != nil && m.Name() == "Error" {
				if sig, ok := m.Type().(*types.Signature); ok && sig.Recv() != nil && isErrorType(sig.Recv().Type()) {
					pass.Reportf(arg.Pos(),
						"err.Error() stringifies the error before wrapping: errors.Is(err, disk.ErrInjected) will no longer match; pass the error itself with %%w")
				}
			}
		}
	}
	if errArgs > wraps {
		pass.Reportf(call.Pos(),
			"fmt.Errorf receives %d error argument(s) but the format has %d %%w verb(s): the error chain is severed and errors.Is(err, disk.ErrInjected) will no longer match; wrap with %%w", errArgs, wraps)
	}
}

// checkDropped flags a pager I/O call whose error result goes nowhere.
func checkDropped(pass *analysis.Pass, call *ast.CallExpr, how string) {
	fn := analysis.CalleeOf(pass.TypesInfo, call)
	if !analysis.IsPagerIO(fn) || analysis.ErrorResultIndex(fn) < 0 {
		return
	}
	pass.Reportf(call.Pos(),
		"error from %s.%s is dropped (%s): an injected fault or real device error would vanish silently; handle or propagate it", recvName(fn), fn.Name(), how)
}

// checkBlankAssign flags `_ = pagerCall(...)` and multi-result forms that
// blank out the error position.
func checkBlankAssign(pass *analysis.Pass, asg *ast.AssignStmt) {
	if len(asg.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(asg.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	fn := analysis.CalleeOf(pass.TypesInfo, call)
	errIdx := analysis.ErrorResultIndex(fn)
	if !analysis.IsPagerIO(fn) || errIdx < 0 || errIdx >= len(asg.Lhs) {
		return
	}
	if id, ok := asg.Lhs[errIdx].(*ast.Ident); ok && id.Name == "_" {
		pass.Reportf(asg.Pos(),
			"error from %s.%s is assigned to _: an injected fault or real device error would vanish silently; handle or propagate it", recvName(fn), fn.Name())
	}
}

func recvName(fn *types.Func) string {
	if named := analysis.RecvNamed(fn); named != nil {
		return named.Obj().Name()
	}
	return "disk"
}

// isErrorType reports whether t implements the built-in error interface.
func isErrorType(t types.Type) bool {
	return types.Implements(t, errorInterface) ||
		types.Implements(types.NewPointer(t), errorInterface)
}

var errorInterface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
