// Package errwrapinjected keeps the fault-injection contract testable:
// faults_test.go drives every structure with a disk.FaultPager and asserts
// errors.Is(err, disk.ErrInjected) on each failure, so an error that crosses
// a package boundary without %w — or a pager error that is silently
// discarded — breaks the one oracle the fault-path tests have.
//
// Reported:
//
//   - fmt.Errorf calls that receive an error argument but whose constant
//     format string has fewer %w verbs than error arguments (the classic %v
//     wrap that severs the errors.Is chain);
//   - err.Error() stringification passed into fmt.Errorf, which severs the
//     chain even through %s;
//   - pager I/O calls whose error result is dropped: a bare expression
//     statement, an assignment to _, or a deferred call. An injected fault
//     (or a real device error, once the store is a file) disappears without
//     a trace at such a site;
//   - corruption reported outside the disk.ErrCorrupt chain: an errors.New
//     leaf or an fmt.Errorf with no %w whose constant message mentions
//     "corrupt". The crash-recovery sweep and `pcindex verify` classify
//     damage with errors.Is(err, disk.ErrCorrupt), so a corruption error
//     that does not wrap the sentinel is invisible to both. Declaring a
//     package-level Err*/err* sentinel is the one sanctioned leaf.
package errwrapinjected

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"pathcache/internal/analysis"
)

// Analyzer is the errwrapinjected check.
var Analyzer = &analysis.Analyzer{
	Name: "errwrapinjected",
	Doc:  "fault-path errors must be wrapped with %w, pager errors must not be discarded, and corruption errors must wrap disk.ErrCorrupt, so the errors.Is oracles keep working",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	exempt := sentinelDecls(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkErrorf(pass, n)
				checkCorruptLeaf(pass, n, exempt)
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkDropped(pass, call, "its result is discarded by the bare call")
				}
			case *ast.DeferStmt:
				checkDropped(pass, n.Call, "a deferred call discards its result")
			case *ast.GoStmt:
				checkDropped(pass, n.Call, "a go statement discards its result")
			case *ast.AssignStmt:
				checkBlankAssign(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkErrorf flags fmt.Errorf calls that lose the error chain.
func checkErrorf(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.CalleeOf(pass.TypesInfo, call)
	if fn == nil || fn.Name() != "Errorf" || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return
	}
	if len(call.Args) == 0 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return // non-constant format: nothing to prove
	}
	format := constant.StringVal(tv.Value)
	wraps := strings.Count(format, "%w")
	if wraps == 0 && mentionsCorruption(format) {
		pass.Reportf(call.Pos(),
			"error message reports corruption without wrapping: errors.Is(err, disk.ErrCorrupt) — the oracle crash recovery and `pcindex verify` rely on — will not match; wrap the sentinel with %%w")
	}

	errArgs := 0
	for _, arg := range call.Args[1:] {
		t := pass.TypesInfo.TypeOf(arg)
		if t != nil && isErrorType(t) {
			errArgs++
			continue
		}
		// err.Error() as an argument severs the chain just as thoroughly.
		if inner, ok := ast.Unparen(arg).(*ast.CallExpr); ok {
			if m := analysis.CalleeOf(pass.TypesInfo, inner); m != nil && m.Name() == "Error" {
				if sig, ok := m.Type().(*types.Signature); ok && sig.Recv() != nil && isErrorType(sig.Recv().Type()) {
					pass.Reportf(arg.Pos(),
						"err.Error() stringifies the error before wrapping: errors.Is(err, disk.ErrInjected) will no longer match; pass the error itself with %%w")
				}
			}
		}
	}
	if errArgs > wraps {
		pass.Reportf(call.Pos(),
			"fmt.Errorf receives %d error argument(s) but the format has %d %%w verb(s): the error chain is severed and errors.Is(err, disk.ErrInjected) will no longer match; wrap with %%w", errArgs, wraps)
	}
}

// checkDropped flags a pager I/O call whose error result goes nowhere.
func checkDropped(pass *analysis.Pass, call *ast.CallExpr, how string) {
	fn := analysis.CalleeOf(pass.TypesInfo, call)
	if !analysis.IsPagerIO(fn) || analysis.ErrorResultIndex(fn) < 0 {
		return
	}
	pass.Reportf(call.Pos(),
		"error from %s.%s is dropped (%s): an injected fault or real device error would vanish silently; handle or propagate it", recvName(fn), fn.Name(), how)
}

// checkBlankAssign flags `_ = pagerCall(...)` and multi-result forms that
// blank out the error position.
func checkBlankAssign(pass *analysis.Pass, asg *ast.AssignStmt) {
	if len(asg.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(asg.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	fn := analysis.CalleeOf(pass.TypesInfo, call)
	errIdx := analysis.ErrorResultIndex(fn)
	if !analysis.IsPagerIO(fn) || errIdx < 0 || errIdx >= len(asg.Lhs) {
		return
	}
	if id, ok := asg.Lhs[errIdx].(*ast.Ident); ok && id.Name == "_" {
		pass.Reportf(asg.Pos(),
			"error from %s.%s is assigned to _: an injected fault or real device error would vanish silently; handle or propagate it", recvName(fn), fn.Name())
	}
}

// checkCorruptLeaf flags errors.New calls whose constant message mentions
// corruption. Such a leaf starts a fresh chain, so errors.Is(err,
// disk.ErrCorrupt) — the one oracle the crash-recovery sweep, FileStore.Verify
// and `pcindex verify` classify damage with — can never match it. The
// sanctioned exception is the declaration of a sentinel variable itself
// (collected by sentinelDecls): that is where the oracle is born.
func checkCorruptLeaf(pass *analysis.Pass, call *ast.CallExpr, exempt map[*ast.CallExpr]bool) {
	if exempt[call] {
		return
	}
	fn := analysis.CalleeOf(pass.TypesInfo, call)
	if fn == nil || fn.Name() != "New" || fn.Pkg() == nil || fn.Pkg().Path() != "errors" {
		return
	}
	if len(call.Args) != 1 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	if !mentionsCorruption(constant.StringVal(tv.Value)) {
		return
	}
	pass.Reportf(call.Pos(),
		"corruption reported as a fresh errors.New leaf: errors.Is(err, disk.ErrCorrupt) — the oracle crash recovery and `pcindex verify` rely on — will not match; wrap the sentinel with fmt.Errorf and %%w")
}

// sentinelDecls collects the initializer calls of package-level Err*/err*
// variable declarations. Declaring a sentinel (`var ErrCorrupt =
// errors.New("disk: corrupt data")`) is the one place a corruption message
// legitimately appears as a new error leaf.
func sentinelDecls(pass *analysis.Pass) map[*ast.CallExpr]bool {
	exempt := make(map[*ast.CallExpr]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i >= len(vs.Values) {
						break
					}
					if !strings.HasPrefix(name.Name, "Err") && !strings.HasPrefix(name.Name, "err") {
						continue
					}
					if call, ok := ast.Unparen(vs.Values[i]).(*ast.CallExpr); ok {
						exempt[call] = true
					}
				}
			}
		}
	}
	return exempt
}

// mentionsCorruption reports whether a constant error message claims
// corruption, in any casing.
func mentionsCorruption(s string) bool {
	return strings.Contains(strings.ToLower(s), "corrupt")
}

func recvName(fn *types.Func) string {
	if named := analysis.RecvNamed(fn); named != nil {
		return named.Obj().Name()
	}
	return "disk"
}

// isErrorType reports whether t implements the built-in error interface.
func isErrorType(t types.Type) bool {
	return types.Implements(t, errorInterface) ||
		types.Implements(types.NewPointer(t), errorInterface)
}

var errorInterface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
