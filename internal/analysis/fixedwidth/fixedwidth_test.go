package fixedwidth_test

import (
	"testing"

	"pathcache/internal/analysis/analysistest"
	"pathcache/internal/analysis/fixedwidth"
)

func TestViolations(t *testing.T) {
	analysistest.Run(t, "testdata/src/fixedwidth_bad", fixedwidth.Analyzer)
}

func TestSanctionedPatterns(t *testing.T) {
	analysistest.NoDiagnostics(t, "testdata/src/fixedwidth_good", fixedwidth.Analyzer)
}
