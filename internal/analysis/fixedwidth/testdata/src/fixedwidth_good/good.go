// Package fixedwidth_good encodes the approved way: explicit fixed-width
// byte-order calls and named size constants shared between encoder and the
// chain helpers.
package fixedwidth_good

import (
	"encoding/binary"

	"pathcache/internal/btree"
	"pathcache/internal/disk"
	"pathcache/internal/record"
	"pathcache/internal/skeletal"
)

// descSize is the fixture's one named record width; the encoder below and
// every chain call share it.
const descSize = 16

func encode(dst []byte, count uint32, next uint64) {
	binary.LittleEndian.PutUint32(dst[0:4], count)
	binary.LittleEndian.PutUint64(dst[8:16], next)
}

func decode(src []byte) (uint32, uint64) {
	return binary.LittleEndian.Uint32(src[0:4]), binary.LittleEndian.Uint64(src[8:16])
}

func scanNamed(p disk.Pager, head disk.PageID) (int, error) {
	return disk.ScanChain(p, descSize, head, func([]byte) bool { return true })
}

func scanShared(p disk.Pager, head disk.PageID) (int, error) {
	return disk.ScanChain(p, record.PointSize, head, func([]byte) bool { return true })
}

func capNamed(pageSize int) int {
	return disk.ChainCap(pageSize, descSize)
}

func pagesDerived(pageSize, count int) int {
	return disk.ChainPages(pageSize, 2*record.PointSize, count)
}

func layoutNamed(p disk.Pager, root *skeletal.BuildNode) (*skeletal.Tree, error) {
	return skeletal.BuildLayout(p, root, descSize, disk.LayoutEytzinger)
}

func layoutForwarded(p disk.Pager, l disk.Layout) (*btree.Tree, error) {
	return btree.NewLayout(p, l)
}

func layoutFromByte(b byte) (disk.Layout, error) {
	return disk.CheckLayout(b) // runtime header bytes go through the checker
}
