// Package fixedwidth_bad commits every encoding sin the fixedwidth analyzer
// reports: reflect-based binary codecs, varints, reflection serializers, and
// magic record sizes handed to the disk chain helpers.
package fixedwidth_bad

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"encoding/json"

	"pathcache/internal/btree"
	"pathcache/internal/disk"
	"pathcache/internal/skeletal"
)

type header struct {
	Count uint32
	Next  uint64
}

func encodeReflect(buf *bytes.Buffer, h header) error {
	return binary.Write(buf, binary.LittleEndian, h) // want `reflect-based binary\.Write`
}

func decodeReflect(buf *bytes.Buffer, h *header) error {
	return binary.Read(buf, binary.LittleEndian, h) // want `reflect-based binary\.Read`
}

func encodeVarint(dst []byte, v int64) int {
	return binary.PutVarint(dst, v) // want `binary\.PutVarint is a variable-width encoding`
}

func appendVar(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v) // want `binary\.AppendUvarint is a variable-width encoding`
}

func encodeGob(buf *bytes.Buffer, h header) error {
	enc := gob.NewEncoder(buf) // want `reflection codec gob\.NewEncoder`
	return enc.Encode(h)       // want `reflection codec gob\.Encode`
}

func encodeJSON(h header) ([]byte, error) {
	return json.Marshal(h) // want `reflection codec json\.Marshal`
}

func chainMagic(p disk.Pager, head disk.PageID) (int, error) {
	return disk.ScanChain(p, 24, head, func([]byte) bool { return true }) // want `magic record size 24 passed to disk\.ScanChain`
}

func capMagic(pageSize int) int {
	return disk.ChainCap(pageSize, 48) // want `magic record size 48 passed to disk\.ChainCap`
}

func writerMagic(p disk.Pager) (*disk.ChainWriter, error) {
	return disk.NewChainWriter(p, 32) // want `magic record size 32 passed to disk\.NewChainWriter`
}

func layoutMagicSkeletal(p disk.Pager, root *skeletal.BuildNode) (*skeletal.Tree, error) {
	return skeletal.BuildLayout(p, root, 8, 1) // want `magic layout 1 passed to skeletal\.BuildLayout`
}

func layoutMagicBtree(p disk.Pager) (*btree.Tree, error) {
	return btree.NewLayout(p, 0) // want `magic layout 0 passed to btree\.NewLayout`
}

func layoutMagicConversion() disk.Layout {
	return disk.Layout(1) // want `magic layout disk\.Layout\(1\)`
}

func layoutMagicConvertedArg(p disk.Pager) (*btree.Tree, error) {
	return btree.NewLayout(p, disk.Layout(2)) // want `magic layout disk\.Layout\(2\)`
}
