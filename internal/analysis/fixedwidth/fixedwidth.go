// Package fixedwidth protects the B = ⌊pageSize/recordSize⌋ arithmetic that
// every I/O bound in the paper is computed from. Records and node payloads
// must be fixed-width and their sizes must be named compile-time constants;
// anything that lets the encoded size drift away from the constant the
// capacity derivation uses silently invalidates measured bounds.
//
// Reported:
//
//   - reflect-based encoding/binary.Read and binary.Write: their encoded
//     size is whatever reflection walks at run time, they allocate, and they
//     are orders of magnitude slower than the explicit PutUintXX calls on
//     the record hot path;
//   - the varint family (PutVarint, AppendUvarint, ReadVarint, ...):
//     variable-width by construction;
//   - reflection codecs (encoding/gob, encoding/json) in record-layout code;
//   - magic integer literals passed as the record size to the disk chain
//     helpers (ScanChain, ChainCap, NewChainWriter, WriteChain, ChainPages):
//     a literal cannot be cross-checked against the encoder, so the one
//     constant the B-derivation uses must be named (record.PointSize,
//     opSize, dirRecSize, ...);
//   - magic integer literals where a disk.Layout is expected — as the layout
//     argument of the layout-taking constructors (skeletal.BuildLayout,
//     btree.NewLayout) or inside a disk.Layout conversion. The layout byte is
//     part of the persisted page header: readers dispatch their search on it,
//     so its value must come from the named disk.LayoutSorted /
//     disk.LayoutEytzinger constants the codecs are written against, never
//     from a raw number that can drift when a layout is added.
package fixedwidth

import (
	"go/ast"
	"go/token"
	"go/types"

	"pathcache/internal/analysis"
)

// Analyzer is the fixedwidth check.
var Analyzer = &analysis.Analyzer{
	Name: "fixedwidth",
	Doc:  "record encodings must stay fixed-width with named size constants so page-capacity arithmetic holds",
	Run:  run,
}

// varintFuncs are encoding/binary's variable-width encoders and decoders.
var varintFuncs = map[string]bool{
	"PutVarint": true, "PutUvarint": true,
	"AppendVarint": true, "AppendUvarint": true,
	"Varint": true, "Uvarint": true,
	"ReadVarint": true, "ReadUvarint": true,
}

// chainRecSizeArg maps each disk chain helper to the index of its record
// size parameter.
var chainRecSizeArg = map[string]int{
	"ScanChain": 1, "ChainCap": 1, "ChainPages": 1,
	"NewChainWriter": 1, "WriteChain": 1,
}

// layoutArg maps each layout-taking constructor (package path suffix plus
// function name) to the index of its disk.Layout parameter.
var layoutArg = map[[2]string]int{
	{"internal/skeletal", "BuildLayout"}: 3,
	{"internal/btree", "NewLayout"}:      1,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkLayoutConversion(pass, call)
			fn := analysis.CalleeOf(pass.TypesInfo, call)
			if fn == nil {
				return true
			}
			switch {
			case analysis.PkgIs(fn.Pkg(), "encoding/binary"):
				switch {
				case fn.Name() == "Read" || fn.Name() == "Write":
					pass.Reportf(call.Pos(),
						"reflect-based binary.%s: encoded size is decided by reflection at run time and the call allocates on the record hot path; use explicit fixed-width PutUintXX/UintXX against the named size constant", fn.Name())
				case varintFuncs[fn.Name()]:
					pass.Reportf(call.Pos(),
						"binary.%s is a variable-width encoding: record size would depend on the value, breaking B = pageSize/recordSize arithmetic; use fixed-width PutUintXX", fn.Name())
				}
			case analysis.PkgIs(fn.Pkg(), "encoding/gob") || analysis.PkgIs(fn.Pkg(), "encoding/json"):
				pass.Reportf(call.Pos(),
					"reflection codec %s.%s in record-layout code: encoded size is not a compile-time constant; records must be fixed-width", fn.Pkg().Name(), fn.Name())
			case analysis.PkgIs(fn.Pkg(), "internal/disk"):
				idx, ok := chainRecSizeArg[fn.Name()]
				if !ok || analysis.RecvNamed(fn) != nil || idx >= len(call.Args) {
					return true
				}
				if lit := intLiteral(call.Args[idx]); lit != nil {
					pass.Reportf(lit.Pos(),
						"magic record size %s passed to disk.%s: if the encoder changes width this call silently desynchronizes from it; name the constant next to the encoder (like record.PointSize) and use it here", lit.Value, fn.Name())
				}
			case analysis.RecvNamed(fn) == nil:
				for pkg, idx := range layoutArg {
					if pkg[1] != fn.Name() || !analysis.PkgIs(fn.Pkg(), pkg[0]) || idx >= len(call.Args) {
						continue
					}
					if lit := layoutLiteral(pass, call.Args[idx]); lit != nil {
						pass.Reportf(lit.Pos(),
							"magic layout %s passed to %s.%s: the layout byte is persisted in every page header and dispatches the read path; use the named disk.LayoutSorted/disk.LayoutEytzinger constants", lit.Value, fn.Pkg().Name(), fn.Name())
					}
				}
			}
			return true
		})
	}
	return nil
}

// checkLayoutConversion flags disk.Layout(<int literal>) conversions. The
// named constants exist so the header byte and the codecs that dispatch on
// it cannot desynchronize; a literal inside the conversion defeats that.
// The disk package itself (where the constants are defined) is exempt.
func checkLayoutConversion(pass *analysis.Pass, call *ast.CallExpr) {
	if analysis.PkgIs(pass.Pkg, "internal/disk") {
		return
	}
	if len(call.Args) != 1 || !pass.TypesInfo.Types[call.Fun].IsType() {
		return
	}
	named, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Named)
	if !ok || named.Obj().Name() != "Layout" || !analysis.PkgIs(named.Obj().Pkg(), "internal/disk") {
		return
	}
	if lit := intLiteral(call.Args[0]); lit != nil {
		pass.Reportf(lit.Pos(),
			"magic layout disk.Layout(%s): the layout byte is persisted in every page header; use the named disk.LayoutSorted/disk.LayoutEytzinger constants", lit.Value)
	}
}

// layoutLiteral unwraps a layout argument to its integer literal, if any:
// either a bare literal or one wrapped in a disk.Layout conversion (the
// conversion case is reported by checkLayoutConversion at its own position,
// so only the bare literal is returned here).
func layoutLiteral(pass *analysis.Pass, e ast.Expr) *ast.BasicLit {
	e = ast.Unparen(e)
	if call, ok := e.(*ast.CallExpr); ok && len(call.Args) == 1 && pass.TypesInfo.Types[call.Fun].IsType() {
		return nil
	}
	return intLiteral(e)
}

// intLiteral unwraps parens and returns e's integer literal, if that is what
// it is. Named constants arrive as identifiers and pass.
func intLiteral(e ast.Expr) *ast.BasicLit {
	if lit, ok := ast.Unparen(e).(*ast.BasicLit); ok && lit.Kind == token.INT {
		return lit
	}
	return nil
}
