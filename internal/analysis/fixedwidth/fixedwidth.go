// Package fixedwidth protects the B = ⌊pageSize/recordSize⌋ arithmetic that
// every I/O bound in the paper is computed from. Records and node payloads
// must be fixed-width and their sizes must be named compile-time constants;
// anything that lets the encoded size drift away from the constant the
// capacity derivation uses silently invalidates measured bounds.
//
// Reported:
//
//   - reflect-based encoding/binary.Read and binary.Write: their encoded
//     size is whatever reflection walks at run time, they allocate, and they
//     are orders of magnitude slower than the explicit PutUintXX calls on
//     the record hot path;
//   - the varint family (PutVarint, AppendUvarint, ReadVarint, ...):
//     variable-width by construction;
//   - reflection codecs (encoding/gob, encoding/json) in record-layout code;
//   - magic integer literals passed as the record size to the disk chain
//     helpers (ScanChain, ChainCap, NewChainWriter, WriteChain, ChainPages):
//     a literal cannot be cross-checked against the encoder, so the one
//     constant the B-derivation uses must be named (record.PointSize,
//     opSize, dirRecSize, ...).
package fixedwidth

import (
	"go/ast"
	"go/token"

	"pathcache/internal/analysis"
)

// Analyzer is the fixedwidth check.
var Analyzer = &analysis.Analyzer{
	Name: "fixedwidth",
	Doc:  "record encodings must stay fixed-width with named size constants so page-capacity arithmetic holds",
	Run:  run,
}

// varintFuncs are encoding/binary's variable-width encoders and decoders.
var varintFuncs = map[string]bool{
	"PutVarint": true, "PutUvarint": true,
	"AppendVarint": true, "AppendUvarint": true,
	"Varint": true, "Uvarint": true,
	"ReadVarint": true, "ReadUvarint": true,
}

// chainRecSizeArg maps each disk chain helper to the index of its record
// size parameter.
var chainRecSizeArg = map[string]int{
	"ScanChain": 1, "ChainCap": 1, "ChainPages": 1,
	"NewChainWriter": 1, "WriteChain": 1,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.CalleeOf(pass.TypesInfo, call)
			if fn == nil {
				return true
			}
			switch {
			case analysis.PkgIs(fn.Pkg(), "encoding/binary"):
				switch {
				case fn.Name() == "Read" || fn.Name() == "Write":
					pass.Reportf(call.Pos(),
						"reflect-based binary.%s: encoded size is decided by reflection at run time and the call allocates on the record hot path; use explicit fixed-width PutUintXX/UintXX against the named size constant", fn.Name())
				case varintFuncs[fn.Name()]:
					pass.Reportf(call.Pos(),
						"binary.%s is a variable-width encoding: record size would depend on the value, breaking B = pageSize/recordSize arithmetic; use fixed-width PutUintXX", fn.Name())
				}
			case analysis.PkgIs(fn.Pkg(), "encoding/gob") || analysis.PkgIs(fn.Pkg(), "encoding/json"):
				pass.Reportf(call.Pos(),
					"reflection codec %s.%s in record-layout code: encoded size is not a compile-time constant; records must be fixed-width", fn.Pkg().Name(), fn.Name())
			case analysis.PkgIs(fn.Pkg(), "internal/disk"):
				idx, ok := chainRecSizeArg[fn.Name()]
				if !ok || analysis.RecvNamed(fn) != nil || idx >= len(call.Args) {
					return true
				}
				if lit := intLiteral(call.Args[idx]); lit != nil {
					pass.Reportf(lit.Pos(),
						"magic record size %s passed to disk.%s: if the encoder changes width this call silently desynchronizes from it; name the constant next to the encoder (like record.PointSize) and use it here", lit.Value, fn.Name())
				}
			}
			return true
		})
	}
	return nil
}

// intLiteral unwraps parens and returns e's integer literal, if that is what
// it is. Named constants arrive as identifiers and pass.
func intLiteral(e ast.Expr) *ast.BasicLit {
	if lit, ok := ast.Unparen(e).(*ast.BasicLit); ok && lit.Kind == token.INT {
		return lit
	}
	return nil
}
