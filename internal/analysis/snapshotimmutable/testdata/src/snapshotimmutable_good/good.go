// Package snapshotimmutable_good exercises the copy-on-write shapes the
// marker demands: read freely, build fresh, install wholesale.
package snapshotimmutable_good

import "sort"

type level struct {
	slot int
	n    int
}

type tree struct {
	//pcvet:snapshot
	levels []*level
	//pcvet:snapshot
	tombs map[int]bool
	mem   map[int]int
}

// install replaces the whole field: the sanctioned publish.
func (t *tree) install(ls []*level) {
	t.levels = ls
}

// copyThenMutate builds a fresh backing array before touching anything.
func (t *tree) copyThenMutate(lv *level) {
	ls := make([]*level, len(t.levels)+1)
	copy(ls, t.levels)
	ls[len(ls)-1] = lv
	t.levels = ls
}

// rebuildTombs replaces the map instead of deleting from it.
func (t *tree) rebuildTombs(drop int) {
	fresh := make(map[int]bool, len(t.tombs))
	for k := range t.tombs {
		if k != drop {
			fresh[k] = true
		}
	}
	t.tombs = fresh
}

// readOnly iterates and probes without writing.
func (t *tree) readOnly(k int) int {
	total := 0
	for _, lv := range t.levels {
		if lv != nil {
			total += lv.n
		}
	}
	if t.tombs[k] {
		total--
	}
	return total
}

// sortCopy sorts a duplicate, leaving the snapshot's order intact.
func (t *tree) sortCopy() []*level {
	ls := append([]*level(nil), t.levels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].slot < ls[j].slot })
	return ls
}

// unmarked fields stay freely mutable.
func (t *tree) countMem(k int) {
	t.mem[k]++
}

// sanctioned carries the justification for a deliberate in-place write.
func (t *tree) sanctioned(lv *level) {
	//pcvet:allow snapshotimmutable -- fixture mirror of a single-writer startup path before the snapshot is published
	t.levels[lv.slot] = lv
}
