// Package snapshotimmutable_bad collects in-place mutations of values
// derived from //pcvet:snapshot fields — each one a torn read waiting to
// happen in a lock-free snapshot reader.
package snapshotimmutable_bad

import "sort"

type level struct {
	slot int
	n    int
}

type tree struct {
	//pcvet:snapshot
	levels []*level
	//pcvet:snapshot
	tombs map[int]bool
	mem   map[int]int
}

// storeElement writes a slice element readers may be iterating.
func (t *tree) storeElement(lv *level) {
	t.levels[lv.slot] = lv // want `store into t\.levels`
}

// appendInPlace may write into the snapshot's backing array when capacity
// allows, clobbering an element under a reader.
func (t *tree) appendInPlace(lv *level) {
	t.levels = append(t.levels, lv) // want `append to t\.levels`
}

// mutateThroughLocal launders the field through a local binding first.
func (t *tree) mutateThroughLocal(lv *level) {
	ls := t.levels
	ls[0] = lv // want `store into ls`
}

// mutateElementField writes a field of a struct the snapshot points at.
func (t *tree) mutateElementField() {
	for _, lv := range t.levels {
		lv.n++ // want `increment of lv`
	}
}

// deleteTomb shrinks the shared tombstone map under readers.
func (t *tree) deleteTomb(k int) {
	delete(t.tombs, k) // want `delete from t\.tombs`
}

// storeTomb grows it.
func (t *tree) storeTomb(k int) {
	t.tombs[k] = true // want `store into t\.tombs`
}

// sortSnapshot reorders the shared backing array in place.
func (t *tree) sortSnapshot() {
	sort.Slice(t.levels, func(i, j int) bool { // want `in-place sort of t\.levels`
		return t.levels[i].slot < t.levels[j].slot
	})
}

// zero blanks a slice it is handed; passing a snapshot into it mutates the
// snapshot two frames down.
func zero(ls []*level) {
	for i := range ls {
		ls[i] = nil // flagged only at tainted call sites via the summary
	}
}

// clearViaHelper reaches the mutation through the package-local helper.
func (t *tree) clearViaHelper() {
	zero(t.levels) // want `call mutating t\.levels`
}
