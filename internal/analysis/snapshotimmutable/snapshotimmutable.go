// Package snapshotimmutable enforces copy-on-write on fields marked
// //pcvet:snapshot. The LSM tier hands read paths a bare copy of such a
// field (CompactBackground's level snapshot reads t.levels under RLock and
// then works lock-free); that is only sound if the value behind the field
// is never mutated in place — writers must build a fresh value and install
// it with one wholesale field assignment.
//
// The analysis taints every read of a marked field and propagates the
// taint flow-insensitively through the function: local assignments, range
// bindings, indexing, slicing, field selection and dereference all carry
// it. A mutation of a tainted value is the violation: a store through an
// index/selector/dereference, delete, append or copy with a tainted
// destination, sort of a tainted slice, or passing a tainted value to a
// package-local function that mutates the corresponding parameter (the
// call-graph summary). Wholesale assignment to the marked field itself is
// the sanctioned install and is not flagged.
//
// Known holes, accepted for signal: method calls on tainted receivers are
// not summarized (bloom probes and tree queries on snapshot levels are
// read-only by design), and an explicit copy() out of a snapshot launders
// the taint — which is exactly the copy-on-write idiom the check exists to
// push code toward.
package snapshotimmutable

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"pathcache/internal/analysis"
)

// Analyzer is the snapshotimmutable check.
var Analyzer = &analysis.Analyzer{
	Name: "snapshotimmutable",
	Doc:  "values reached from //pcvet:snapshot fields must not be mutated in place (copy-on-write)",
	Run:  run,
}

// Marker tags a struct field whose value is published as a lock-free
// snapshot.
const Marker = "//pcvet:snapshot"

func run(pass *analysis.Pass) error {
	marked := markedFields(pass)
	if len(marked) == 0 {
		return nil
	}
	cg := analysis.NewCallGraph(pass.TypesInfo, pass.Files)
	c := &checker{pass: pass, cg: cg, marked: marked, mutates: map[*types.Func][]bool{}}
	c.summarize()
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				for _, m := range c.analyze(fd, nil) {
					c.pass.Reportf(m.pos(), "%s %s, which is derived from a %s field; build a fresh value and install it wholesale, or justify with %s snapshotimmutable",
						m.verb, m.what, Marker, analysis.DirectivePrefix)
				}
			}
		}
	}
	return nil
}

// markedFields collects the struct fields carrying the snapshot marker on
// their own line or the line above.
func markedFields(pass *analysis.Pass) map[*types.Var]bool {
	marked := map[*types.Var]bool{}
	for _, f := range pass.Files {
		lines := map[int]bool{}
		for _, cg := range f.Comments {
			for _, cmt := range cg.List {
				if strings.HasPrefix(cmt.Text, Marker) {
					lines[pass.Fset.Position(cmt.Pos()).Line] = true
				}
			}
		}
		if len(lines) == 0 {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				line := pass.Fset.Position(field.Pos()).Line
				if !lines[line] && !lines[line-1] {
					continue
				}
				for _, name := range field.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						marked[v] = true
					}
				}
			}
			return true
		})
	}
	return marked
}

type checker struct {
	pass   *analysis.Pass
	cg     *analysis.CallGraph
	marked map[*types.Var]bool
	// mutates[fn][i] reports that fn mutates (in the snapshot sense) the
	// value passed as its i-th parameter.
	mutates map[*types.Func][]bool
}

// summarize computes the param-mutation fixpoint over the package's
// declarations: a parameter is mutated if the body mutates a value derived
// from it, directly or by forwarding it to another mutating local function.
func (c *checker) summarize() {
	for fn, fd := range c.cg.Decls {
		c.mutates[fn] = make([]bool, numParams(fd))
	}
	for changed := true; changed; {
		changed = false
		for fn, fd := range c.cg.Decls {
			for i := range c.mutates[fn] {
				if c.mutates[fn][i] {
					continue
				}
				if v := paramVar(c.pass.TypesInfo, fd, i); v != nil && len(c.analyze(fd, v)) > 0 {
					c.mutates[fn][i] = true
					changed = true
				}
			}
		}
	}
}

func numParams(fd *ast.FuncDecl) int {
	n := 0
	for _, f := range fd.Type.Params.List {
		if len(f.Names) == 0 {
			n++
		} else {
			n += len(f.Names)
		}
	}
	return n
}

// paramVar returns the object of fd's i-th named parameter.
func paramVar(info *types.Info, fd *ast.FuncDecl, i int) *types.Var {
	idx := 0
	for _, f := range fd.Type.Params.List {
		for _, name := range f.Names {
			if idx == i {
				v, _ := info.Defs[name].(*types.Var)
				return v
			}
			idx++
		}
		if len(f.Names) == 0 {
			idx++
		}
	}
	return nil
}

// mutation is one in-place write to a snapshot-derived value.
type mutation struct {
	node ast.Node
	verb string // "store into", "delete from", ...
	what string // rendered target expression
}

func (m mutation) pos() token.Pos { return m.node.Pos() }

// analyze walks fd with taint seeded either from the marked fields (seed ==
// nil: the reporting pass) or from one parameter (the summary pass, which
// ignores the marked fields so a summary reflects the parameter alone), and
// returns the mutations of tainted values.
func (c *checker) analyze(fd *ast.FuncDecl, seed *types.Var) []mutation {
	e := &taintEnv{
		info:   c.pass.TypesInfo,
		marked: c.marked,
		local:  map[types.Object]bool{},
		seed:   seed,
	}
	if seed != nil {
		e.local[seed] = true
	}
	// Taint fixpoint over local bindings: x := tainted, x = tainted, and
	// range bindings over a tainted operand.
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					id, ok := ast.Unparen(lhs).(*ast.Ident)
					if !ok {
						continue
					}
					var rhs ast.Expr
					if len(n.Rhs) == len(n.Lhs) {
						rhs = n.Rhs[i]
					}
					if rhs != nil && e.tainted(rhs) && !e.taintIdent(id) {
						changed = true
					}
				}
			case *ast.RangeStmt:
				if e.tainted(n.X) {
					for _, b := range []ast.Expr{n.Key, n.Value} {
						if id, ok := b.(*ast.Ident); ok && !e.taintIdent(id) {
							changed = true
						}
					}
				}
			}
			return true
		})
	}

	var muts []mutation
	add := func(n ast.Node, verb string, what ast.Expr) {
		muts = append(muts, mutation{node: n, verb: verb, what: render(what)})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if target, ok := e.mutatedStore(lhs); ok {
					add(lhs, "store into", target)
				}
			}
		case *ast.IncDecStmt:
			if target, ok := e.mutatedStore(n.X); ok {
				add(n, "increment of", target)
			}
		case *ast.CallExpr:
			c.checkCall(e, n, add)
		}
		return true
	})
	return muts
}

// checkCall flags the call forms that mutate a tainted argument.
func (c *checker) checkCall(e *taintEnv, call *ast.CallExpr, add func(ast.Node, string, ast.Expr)) {
	if len(call.Args) > 0 {
		switch name := analysis.CallName(call); name {
		case "delete":
			if isBuiltin(e.info, call) && e.tainted(call.Args[0]) {
				add(call, "delete from", call.Args[0])
				return
			}
		case "append", "copy":
			if isBuiltin(e.info, call) && e.tainted(call.Args[0]) {
				add(call, name+" to", call.Args[0])
				return
			}
		}
	}
	fn := analysis.CalleeOf(e.info, call)
	if fn == nil {
		return
	}
	// The sort package rearranges its argument in place.
	if analysis.PkgIs(fn.Pkg(), "sort") && len(call.Args) > 0 && e.tainted(call.Args[0]) {
		add(call, "in-place sort of", call.Args[0])
		return
	}
	if local := c.cg.LocalCallee(call); local != nil {
		summ := c.mutates[local]
		for i, arg := range call.Args {
			if i < len(summ) && summ[i] && e.tainted(arg) {
				add(call, "call mutating", arg)
			}
		}
	}
}

func isBuiltin(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// taintEnv answers "does this expression derive from the snapshot?".
type taintEnv struct {
	info   *types.Info
	marked map[*types.Var]bool
	local  map[types.Object]bool
	seed   *types.Var // non-nil in summary mode: marked fields are ignored
}

// taintIdent marks an identifier's object tainted, reporting whether it
// already was.
func (e *taintEnv) taintIdent(id *ast.Ident) bool {
	obj := e.info.Defs[id]
	if obj == nil {
		obj = e.info.Uses[id]
	}
	if obj == nil || e.local[obj] {
		return true
	}
	e.local[obj] = true
	return false
}

func (e *taintEnv) tainted(x ast.Expr) bool {
	switch x := ast.Unparen(x).(type) {
	case *ast.Ident:
		obj := e.info.Uses[x]
		return obj != nil && e.local[obj]
	case *ast.SelectorExpr:
		if e.seed == nil {
			if v, ok := e.info.Uses[x.Sel].(*types.Var); ok && e.marked[v] {
				return true
			}
		}
		return e.tainted(x.X)
	case *ast.IndexExpr:
		return e.tainted(x.X)
	case *ast.SliceExpr:
		return e.tainted(x.X)
	case *ast.StarExpr:
		return e.tainted(x.X)
	case *ast.CallExpr:
		// append(tainted, ...) aliases the tainted backing array.
		if name := analysis.CallName(x); name == "append" && isBuiltin(e.info, x) && len(x.Args) > 0 {
			return e.tainted(x.Args[0])
		}
	}
	return false
}

// mutatedStore reports whether lhs writes through a tainted value: an
// element, field or pointee store. A wholesale store to the marked field
// itself (base untainted) is the copy-on-write install and returns false.
func (e *taintEnv) mutatedStore(lhs ast.Expr) (ast.Expr, bool) {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.IndexExpr:
		if e.tainted(l.X) {
			return l.X, true
		}
	case *ast.StarExpr:
		if e.tainted(l.X) {
			return l.X, true
		}
	case *ast.SelectorExpr:
		if e.tainted(l.X) {
			return l.X, true
		}
	}
	return nil, false
}

// render prints a target expression compactly for the diagnostic.
func render(x ast.Expr) string {
	switch x := ast.Unparen(x).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return render(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return render(x.X) + "[...]"
	case *ast.SliceExpr:
		return render(x.X) + "[:]"
	case *ast.StarExpr:
		return "*" + render(x.X)
	case *ast.CallExpr:
		return render(x.Fun) + "(...)"
	}
	return "value"
}
