package snapshotimmutable_test

import (
	"testing"

	"pathcache/internal/analysis/analysistest"
	"pathcache/internal/analysis/snapshotimmutable"
)

func TestViolations(t *testing.T) {
	analysistest.Run(t, "testdata/src/snapshotimmutable_bad", snapshotimmutable.Analyzer)
}

func TestSanctionedPatterns(t *testing.T) {
	analysistest.NoDiagnostics(t, "testdata/src/snapshotimmutable_good", snapshotimmutable.Analyzer)
}
