package pagerdiscipline_test

import (
	"testing"

	"pathcache/internal/analysis/analysistest"
	"pathcache/internal/analysis/pagerdiscipline"
)

func TestViolations(t *testing.T) {
	analysistest.Run(t, "testdata/src/pagerdiscipline_bad", pagerdiscipline.Analyzer)
}

func TestSanctionedPatterns(t *testing.T) {
	analysistest.NoDiagnostics(t, "testdata/src/pagerdiscipline_good", pagerdiscipline.Analyzer)
}
