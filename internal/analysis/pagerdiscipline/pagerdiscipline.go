// Package pagerdiscipline enforces the repository's I/O-accounting contract:
// index structures touch pages only through the disk.Pager they were built
// with, and never retain aliases of page buffers past the read that produced
// them.
//
// Three families of violations are reported:
//
//  1. Direct *disk.Store or *disk.FileStore page I/O (Read/Write/Alloc/Free)
//     from an index package. Structures hold a disk.Pager; reaching beneath
//     it — for example via a type assertion — bypasses the buffer pool,
//     fault injection, and latency wrappers, so measured I/O counts no
//     longer mean what the theorems assume. Metadata methods (PageSize,
//     Stats, NumPages, ResetStats) stay legal: they transfer no pages.
//     internal/engine is exempt from the FileStore half: its meta page is
//     deliberately written beneath the pager view.
//
//  2. disk.WithCounter applied to a concrete store rather than the
//     structure's disk.Pager. The op counter must observe the same view the
//     structure reads through — wrapping the raw store beneath a buffer
//     pool would bill every access as a transfer, including cache hits the
//     store-level aggregate never sees, so per-operation counts would no
//     longer sum to the store diff.
//
//  3. Escaping aliases of the record slice handed to a disk.ScanChain
//     callback. That slice aliases a single page buffer that is overwritten
//     by the next page read; any copy-free retention (assignment to an outer
//     variable, append of the slice value, storing it in a field, returning
//     it) yields records that silently mutate. The zero-copy record views
//     (record.PointView, record.IntervalView) are typed reslices of the same
//     buffer, so a view — and any byte-slice a view accessor returns — is
//     tracked as an alias too, and a method called on an alias outside the
//     record package is reported: the analyzer cannot prove the receiver is
//     not retained. Decoding out by value (record.DecodePoint,
//     record.PointView(rec).Point(), binary.LittleEndian.Uint64,
//     append(dst, rec...), copy) is the sanctioned way out.
package pagerdiscipline

import (
	"go/ast"
	"go/types"

	"pathcache/internal/analysis"
)

// Analyzer is the pagerdiscipline check.
var Analyzer = &analysis.Analyzer{
	Name: "pagerdiscipline",
	Doc:  "index packages must do all page I/O through their disk.Pager and must not retain page-buffer aliases",
	Run:  run,
}

// storeIOMethods are the *disk.Store methods that transfer or release pages.
var storeIOMethods = map[string]bool{"Read": true, "Write": true, "Alloc": true, "Free": true}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkStoreBypass(pass, call)
			checkCounterWrap(pass, call)
			checkScanChainCallback(pass, call)
			return true
		})
	}
	return nil
}

// checkStoreBypass flags page I/O invoked on a concrete *disk.Store or
// *disk.FileStore. Calls through the disk.Pager interface resolve to the
// interface method and are not matched. The engine package may drive the
// FileStore directly: the metadata page lives outside the pager view by
// design, and engine is where that exception is implemented.
func checkStoreBypass(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.CalleeOf(pass.TypesInfo, call)
	if fn == nil || !storeIOMethods[fn.Name()] {
		return
	}
	named := analysis.RecvNamed(fn)
	if named == nil || !analysis.PkgIs(named.Obj().Pkg(), "internal/disk") {
		return
	}
	if _, isIface := named.Underlying().(*types.Interface); isIface {
		return
	}
	switch named.Obj().Name() {
	case "Store":
	case "FileStore":
		if analysis.PkgIs(pass.Pkg, "internal/engine") {
			return
		}
	default:
		return
	}
	pass.Reportf(call.Pos(),
		"direct disk.%s.%s bypasses the structure's Pager: I/O accounting, the buffer pool, and fault injection are all skipped; call through the disk.Pager the structure was built with", named.Obj().Name(), fn.Name())
}

// checkCounterWrap flags disk.WithCounter applied to a concrete store. Op
// attribution must wrap the disk.Pager the structure was built with so the
// counter sees exactly the transfers the store-level aggregate sees; a
// counter strapped onto the raw store beneath a buffer pool also bills
// cache hits, and the per-operation counts stop summing to the store diff.
func checkCounterWrap(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.CalleeOf(pass.TypesInfo, call)
	if fn == nil || fn.Name() != "WithCounter" || !analysis.PkgIs(fn.Pkg(), "internal/disk") {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // the pool's WithCounter method wraps an accounted view already
	}
	if len(call.Args) < 1 {
		return
	}
	t := pass.TypesInfo.TypeOf(call.Args[0])
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || !analysis.PkgIs(named.Obj().Pkg(), "internal/disk") {
		return
	}
	if name := named.Obj().Name(); name == "Store" || name == "FileStore" {
		pass.Reportf(call.Pos(),
			"disk.WithCounter on a concrete disk.%s: wrap the structure's disk.Pager so the op counter sees the same view (pool included) the store-level stats see", name)
	}
}

// checkScanChainCallback analyzes the func literal passed to disk.ScanChain
// for escaping aliases of the per-record slice.
func checkScanChainCallback(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.CalleeOf(pass.TypesInfo, call)
	if fn == nil || fn.Name() != "ScanChain" || !analysis.PkgIs(fn.Pkg(), "internal/disk") {
		return
	}
	if len(call.Args) < 4 {
		return
	}
	lit, ok := ast.Unparen(call.Args[3]).(*ast.FuncLit)
	if !ok {
		return // named callbacks are outside this analyzer's local reasoning
	}
	if len(lit.Type.Params.List) == 0 || len(lit.Type.Params.List[0].Names) == 0 {
		return // parameter unnamed: the record cannot be referenced at all
	}
	recObj := pass.TypesInfo.Defs[lit.Type.Params.List[0].Names[0]]
	if recObj == nil {
		return
	}
	esc := &escapeChecker{pass: pass, lit: lit, aliases: map[types.Object]bool{recObj: true}}
	// Local variables assigned from an alias become aliases themselves;
	// iterate to a fixed point before hunting for escapes.
	for {
		before := len(esc.aliases)
		ast.Inspect(lit.Body, esc.collectAliases)
		if len(esc.aliases) == before {
			break
		}
	}
	ast.Inspect(lit.Body, esc.checkEscapes)
}

// escapeChecker tracks which objects alias the callback's record slice and
// reports uses that let an alias outlive the callback invocation.
type escapeChecker struct {
	pass    *analysis.Pass
	lit     *ast.FuncLit
	aliases map[types.Object]bool
}

// isAlias reports whether e evaluates to a slice aliasing the page buffer:
// the record parameter, a tracked local, a reslice of an alias, or a slice
// conversion of one.
func (c *escapeChecker) isAlias(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return c.aliases[c.pass.TypesInfo.Uses[e]]
	case *ast.SliceExpr:
		return c.isAlias(e.X)
	case *ast.CallExpr:
		// A conversion like []byte(rec) — or to a named view type such as
		// record.PointView — returns the same backing array.
		if len(e.Args) == 1 && c.pass.TypesInfo.Types[e.Fun].IsType() {
			if _, isSlice := c.pass.TypesInfo.TypeOf(e).Underlying().(*types.Slice); isSlice {
				return c.isAlias(e.Args[0])
			}
		}
		// A record-view accessor with a slice result returns a sub-slice of
		// its receiver: still the page buffer.
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
			if fn := analysis.CalleeOf(c.pass.TypesInfo, e); fn != nil &&
				analysis.PkgIs(fn.Pkg(), "internal/record") && analysis.RecvNamed(fn) != nil {
				if _, isSlice := c.pass.TypesInfo.TypeOf(e).Underlying().(*types.Slice); isSlice {
					return c.isAlias(sel.X)
				}
			}
		}
	}
	return false
}

// collectAliases adds locals assigned from an alias expression.
func (c *escapeChecker) collectAliases(n ast.Node) bool {
	asg, ok := n.(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != len(asg.Rhs) {
		return true
	}
	for i, rhs := range asg.Rhs {
		if !c.isAlias(rhs) {
			continue
		}
		if id, ok := asg.Lhs[i].(*ast.Ident); ok {
			obj := c.pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = c.pass.TypesInfo.Uses[id]
			}
			if obj != nil && c.declaredInside(obj) {
				c.aliases[obj] = true
			}
		}
	}
	return true
}

// declaredInside reports whether obj is declared within the callback.
func (c *escapeChecker) declaredInside(obj types.Object) bool {
	return obj.Pos() >= c.lit.Pos() && obj.Pos() <= c.lit.End()
}

// allowedCallee permits the calls that copy data out of the record rather
// than retaining it: the binary codecs and the record package's decoders.
func (c *escapeChecker) allowedCallee(call *ast.CallExpr) bool {
	fn := analysis.CalleeOf(c.pass.TypesInfo, call)
	if fn == nil {
		return false
	}
	return analysis.PkgIs(fn.Pkg(), "encoding/binary") || analysis.PkgIs(fn.Pkg(), "internal/record")
}

func (c *escapeChecker) report(pos ast.Node, how string) {
	c.pass.Reportf(pos.Pos(),
		"ScanChain record slice aliases a reused page buffer and is overwritten by the next page read: %s; decode or copy the record instead", how)
}

// checkEscapes flags every construct that lets an alias survive the callback.
func (c *escapeChecker) checkEscapes(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.AssignStmt:
		for i := range n.Rhs {
			if i >= len(n.Lhs) || !c.isAlias(n.Rhs[i]) {
				continue
			}
			switch lhs := n.Lhs[i].(type) {
			case *ast.Ident:
				obj := c.pass.TypesInfo.Defs[lhs]
				if obj == nil {
					obj = c.pass.TypesInfo.Uses[lhs]
				}
				if obj != nil && !c.declaredInside(obj) && lhs.Name != "_" {
					c.report(n, "assigned to variable "+lhs.Name+" declared outside the callback")
				}
			default:
				// Field, element, or pointer target: the alias escapes into
				// a structure that outlives the callback.
				c.report(n, "stored through "+exprString(lhs))
			}
		}
	case *ast.CallExpr:
		if fn, isBuiltin := builtinName(c.pass.TypesInfo, n); isBuiltin {
			switch fn {
			case "append":
				// append(dst, rec...) copies bytes; append(dst, rec) retains
				// the slice value itself.
				for i, arg := range n.Args {
					if !c.isAlias(arg) {
						continue
					}
					if i == len(n.Args)-1 && n.Ellipsis.IsValid() {
						continue
					}
					c.report(arg, "appended as a slice value")
				}
			case "len", "cap", "copy", "clear", "min", "max", "print", "println":
				// Reads only (copy's source position is the sanctioned copy).
			}
			return true
		}
		if c.pass.TypesInfo.Types[n.Fun].IsType() {
			return true // conversions handled via isAlias at their use site
		}
		if c.allowedCallee(n) {
			return true
		}
		// A method invoked on an alias — e.g. a locally defined view type
		// over the record bytes — can retain its receiver just as a call
		// can retain an argument.
		if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && c.isAlias(sel.X) {
			c.report(sel.X, "receiver of "+exprString(n.Fun)+", which pagerdiscipline cannot prove copies it")
		}
		for _, arg := range n.Args {
			if c.isAlias(arg) {
				c.report(arg, "passed to "+exprString(n.Fun)+", which pagerdiscipline cannot prove copies it")
			}
		}
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			if c.isAlias(r) {
				c.report(r, "returned from the callback")
			}
		}
	case *ast.CompositeLit:
		for _, el := range n.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if c.isAlias(el) {
				c.report(el, "stored in a composite literal")
			}
		}
	case *ast.SendStmt:
		if c.isAlias(n.Value) {
			c.report(n.Value, "sent on a channel")
		}
	}
	return true
}

// builtinName reports the builtin a call invokes, if any.
func builtinName(info *types.Info, call *ast.CallExpr) (string, bool) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return "", false
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name(), true
	}
	return "", false
}

// exprString renders a short source form of e for diagnostics.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	default:
		return "expression"
	}
}
