// Package pagerdiscipline_good exercises the sanctioned patterns: all I/O
// through the Pager interface, Store used only for metadata, and ScanChain
// records decoded or copied before they outlive the callback.
package pagerdiscipline_good

import (
	"encoding/binary"

	"pathcache/internal/disk"
	"pathcache/internal/record"
)

type index struct {
	pager disk.Pager
}

// throughPager performs I/O the approved way.
func throughPager(p disk.Pager, id disk.PageID, buf []byte) error {
	if err := p.Read(id, buf); err != nil {
		return err
	}
	return p.Write(id, buf)
}

// statsOnly may look at a concrete Store for accounting metadata.
func statsOnly(p disk.Pager) (int, int64) {
	if s, ok := p.(*disk.Store); ok {
		return s.NumPages(), s.Stats().Reads
	}
	return -1, 0
}

// countThroughPager attributes an operation's I/O the approved way: the
// counter wraps the same disk.Pager view the structure reads through.
func countThroughPager(p disk.Pager, c *disk.Counter, id disk.PageID, buf []byte) error {
	return disk.WithCounter(p, c).Read(id, buf)
}

// scan decodes and copies records instead of retaining aliases.
func (ix *index) scan(head disk.PageID) ([]record.Point, []byte, error) {
	var pts []record.Point
	var raw []byte
	var firstY int64
	_, err := disk.ScanChain(ix.pager, record.PointSize, head, func(rec []byte) bool {
		pts = append(pts, record.DecodePoint(rec)) // decode copies
		raw = append(raw, rec...)                  // spread append copies bytes
		firstY = int64(binary.LittleEndian.Uint64(rec[8:16]))
		dst := make([]byte, len(rec))
		copy(dst, rec) // explicit copy
		raw = append(raw, dst...)
		return len(rec) > 0
	})
	_ = firstY
	return pts, raw, err
}

// unnamedParam cannot retain anything.
func unnamedParam(p disk.Pager, head disk.PageID) error {
	_, err := disk.ScanChain(p, record.PointSize, head, func([]byte) bool { return true })
	return err
}

// viewsByValue reads through the zero-copy views but only lets values —
// never the view itself — out of the callback.
func viewsByValue(p disk.Pager, head disk.PageID) ([]record.Point, int64, error) {
	var pts []record.Point
	var maxY int64
	_, err := disk.ScanChain(p, record.PointSize, head, func(rec []byte) bool {
		v := record.PointView(rec)
		if y := v.Y(); y > maxY {
			maxY = y
		}
		pts = append(pts, v.Point()) // Point() copies the fields out
		return true
	})
	return pts, maxY, err
}
