// Package pagerdiscipline_bad exercises every violation class the
// pagerdiscipline analyzer reports: direct Store I/O that bypasses the
// Pager, and ScanChain record aliases escaping their callback.
package pagerdiscipline_bad

import (
	"pathcache/internal/disk"
	"pathcache/internal/record"
)

type index struct {
	pager disk.Pager
	last  []byte
	rows  [][]byte
}

// bypass reaches beneath the Pager interface to the concrete Store.
func bypass(p disk.Pager, id disk.PageID, buf []byte) error {
	if s, ok := p.(*disk.Store); ok {
		return s.Read(id, buf) // want `direct disk\.Store\.Read bypasses the structure's Pager`
	}
	return p.Read(id, buf)
}

// bypassWrite allocates and writes around the accounting wrapper.
func bypassWrite(s *disk.Store, buf []byte) error {
	id, err := s.Alloc() // want `direct disk\.Store\.Alloc bypasses`
	if err != nil {
		return err
	}
	return s.Write(id, buf) // want `direct disk\.Store\.Write bypasses`
}

// bypassFile drives the file-backed store directly; outside the engine
// package the metadata exception does not apply.
func bypassFile(fs *disk.FileStore, buf []byte) error {
	id, err := fs.Alloc() // want `direct disk\.FileStore\.Alloc bypasses`
	if err != nil {
		return err
	}
	if err := fs.Write(id, buf); err != nil { // want `direct disk\.FileStore\.Write bypasses`
		return err
	}
	return fs.Read(id, buf) // want `direct disk\.FileStore\.Read bypasses`
}

// countRawStore straps the op counter onto concrete stores instead of the
// structure's pager view.
func countRawStore(s *disk.Store, fs *disk.FileStore, c *disk.Counter) (disk.Pager, disk.Pager) {
	a := disk.WithCounter(s, c)  // want `disk\.WithCounter on a concrete disk\.Store`
	b := disk.WithCounter(fs, c) // want `disk\.WithCounter on a concrete disk\.FileStore`
	return a, b
}

// retain leaks the per-record slice out of a ScanChain callback in every
// way the analyzer models.
func (ix *index) retain(head disk.PageID) ([]byte, error) {
	var out [][]byte
	var keep []byte
	_, err := disk.ScanChain(ix.pager, record.PointSize, head, func(rec []byte) bool {
		keep = rec              // want `assigned to variable keep declared outside the callback`
		ix.last = rec[8:16]     // want `stored through ix\.last`
		out = append(out, rec)  // want `appended as a slice value`
		ix.rows = [][]byte{rec} // want `stored in a composite literal`
		sink(rec)               // want `passed to sink, which pagerdiscipline cannot prove copies it`
		alias := rec[:record.PointSize]
		keep = alias // want `assigned to variable keep declared outside the callback`
		return true
	})
	_ = out
	return keep, err
}

// retainViaConversion leaks through a slice conversion of a local alias.
func retainViaConversion(p disk.Pager, head disk.PageID) (got []byte, err error) {
	_, err = disk.ScanChain(p, record.PointSize, head, func(rec []byte) bool {
		b := []byte(rec)
		got = b // want `assigned to variable got declared outside the callback`
		return false
	})
	return got, err
}

func sink([]byte) {}

// rawView is a locally defined view over record bytes; the analyzer cannot
// see whether its methods retain the receiver.
type rawView []byte

func (r rawView) stash() {}

// retainView leaks the record through the zero-copy view types: a view is a
// typed reslice of the page buffer, not a copy.
func retainView(p disk.Pager, head disk.PageID) record.PointView {
	var hold record.PointView
	var last []byte
	_, _ = disk.ScanChain(p, record.PointSize, head, func(rec []byte) bool {
		v := record.PointView(rec)
		hold = v                        // want `assigned to variable hold declared outside the callback`
		last = record.IntervalView(rec) // want `assigned to variable last declared outside the callback`
		rv := rawView(rec)
		rv.stash() // want `receiver of rv\.stash, which pagerdiscipline cannot prove copies it`
		return v.X() < 10
	})
	_ = last
	return hold
}

// returnView leaks a view built inline in a return position.
func returnView(p disk.Pager, head disk.PageID) (v record.PointView, err error) {
	_, err = disk.ScanChain(p, record.PointSize, head, func(rec []byte) bool {
		v = record.PointView(rec) // want `assigned to variable v declared outside the callback`
		return false
	})
	return v, err
}
