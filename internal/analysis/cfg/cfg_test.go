package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// build parses one function body and returns its graph.
func build(t *testing.T, body string) *Graph {
	t.Helper()
	src := "package p\nfunc f() error {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := file.Decls[0].(*ast.FuncDecl)
	return New(fd.Body)
}

// TestShapes pins the block/edge structure of every statement form the
// ordering analyzers rely on. Expectations use Summary()'s one-line-per-
// block encoding: "b<i>[kind] -> b<j> b<k>".
func TestShapes(t *testing.T) {
	tests := []struct {
		name string
		body string
		want []string
	}{
		{
			name: "straight line",
			body: "x := 1\n_ = x\nreturn nil",
			want: []string{
				"b0[entry] -> b2",
				"b1[unreachable] -> ",
				"b2[exit] -> ",
			},
		},
		{
			name: "if without else",
			body: "x := 1\nif x > 0 {\n x++\n}\nreturn nil",
			want: []string{
				"b0[entry] -> b1 b2",
				"b1[if.then] -> b2",
				"b2[if.done] -> b4",
				"b3[unreachable] -> ",
				"b4[exit] -> ",
			},
		},
		{
			name: "if with else",
			body: "x := 1\nif x > 0 {\n x++\n} else {\n x--\n}\nreturn nil",
			want: []string{
				"b0[entry] -> b1 b2",
				"b1[if.then] -> b3",
				"b2[if.else] -> b3",
				"b3[if.done] -> b5",
				"b4[unreachable] -> ",
				"b5[exit] -> ",
			},
		},
		{
			name: "early return",
			body: "x := 1\nif x > 0 {\n return nil\n}\nx--\nreturn nil",
			want: []string{
				"b0[entry] -> b1 b2",
				"b1[if.then] -> b5", // return jumps straight to exit
				"b2[if.done] -> b5",
				"b3[unreachable] -> b2", // dead tail of the then arm
				"b4[unreachable] -> ",   // tail after the second return
				"b5[exit] -> ",
			},
		},
		{
			name: "for with cond and post",
			body: "for i := 0; i < 3; i++ {\n _ = i\n}\nreturn nil",
			want: []string{
				"b0[entry] -> b1",
				"b1[for.head] -> b2 b4",
				"b2[for.body] -> b3",
				"b3[for.post] -> b1",
				"b4[for.done] -> b6",
				"b5[unreachable] -> ",
				"b6[exit] -> ",
			},
		},
		{
			name: "for with break and continue",
			body: "for {\n if true {\n  break\n }\n if false {\n  continue\n }\n}\nreturn nil",
			want: []string{
				"b0[entry] -> b1",
				"b1[for.head] -> b2",    // infinite for: no head->done edge
				"b2[for.body] -> b4 b5", // first if cond
				"b3[for.done] -> b11",   // target of break
				"b4[if.then] -> b3",     // break -> for.done
				"b5[if.done] -> b7 b8",  // second if cond
				"b6[unreachable] -> b5",
				"b7[if.then] -> b1", // continue -> head
				"b8[if.done] -> b1", // loop tail back to head
				"b9[unreachable] -> b8",
				"b10[unreachable] -> ",
				"b11[exit] -> ",
			},
		},
		{
			name: "range",
			body: "xs := []int{1}\nfor _, x := range xs {\n _ = x\n}\nreturn nil",
			want: []string{
				"b0[entry] -> b1",
				"b1[range.head] -> b2 b3",
				"b2[range.body] -> b1",
				"b3[range.done] -> b5",
				"b4[unreachable] -> ",
				"b5[exit] -> ",
			},
		},
		{
			name: "switch without default",
			body: "x := 1\nswitch x {\ncase 1:\n x++\ncase 2:\n x--\n}\nreturn nil",
			want: []string{
				"b0[entry] -> b1 b2 b3",
				"b1[case.0] -> b3",
				"b2[case.1] -> b3",
				"b3[switch.done] -> b5",
				"b4[unreachable] -> ",
				"b5[exit] -> ",
			},
		},
		{
			name: "switch with default and fallthrough",
			body: "x := 1\nswitch x {\ncase 1:\n fallthrough\ncase 2:\n x--\ndefault:\n x++\n}\nreturn nil",
			want: []string{
				"b0[entry] -> b1 b2 b3",
				"b1[case.0] -> b2", // fallthrough chains to the next clause
				"b2[case.1] -> b4",
				"b3[case.2] -> b4",
				"b4[switch.done] -> b6",
				"b5[unreachable] -> ",
				"b6[exit] -> ",
			},
		},
		{
			name: "defer stays in its block",
			body: "defer func() {}()\nreturn nil",
			want: []string{
				"b0[entry] -> b2",
				"b1[unreachable] -> ",
				"b2[exit] -> ",
			},
		},
		{
			name: "labeled loop break",
			body: "outer:\nfor {\n for {\n  break outer\n }\n}\nreturn nil",
			want: []string{
				"b0[entry] -> b1",
				"b1[label.outer] -> b2",
				"b2[for.head] -> b3",  // outer loop (infinite: no head->done edge)
				"b3[for.body] -> b5",  // inner loop head
				"b4[for.done] -> b10", // outer done, target of `break outer`
				"b5[for.head] -> b6",
				"b6[for.body] -> b4", // break outer jumps to the outer done
				"b7[for.done] -> b2", // inner done falls back to the outer head
				"b8[unreachable] -> b5",
				"b9[unreachable] -> ",
				"b10[exit] -> ",
			},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			g := build(t, tc.body)
			got := strings.TrimSpace(g.Summary())
			want := strings.Join(tc.want, "\n")
			// Summary prints "-> " with no successors; normalize spacing.
			if norm(got) != norm(want) {
				t.Errorf("graph mismatch\n got:\n%s\nwant:\n%s", got, want)
			}
		})
	}
}

func norm(s string) string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		out = append(out, strings.TrimSpace(l))
	}
	return strings.Join(out, "\n")
}

// TestDominators pins dominator sets for the shapes the ordering analyzers
// lean on: a barrier in one branch must not dominate the join, a barrier
// on the straight line must.
func TestDominators(t *testing.T) {
	t.Run("branch does not dominate join", func(t *testing.T) {
		g := build(t, "x := 1\nif x > 0 {\n x++\n}\nreturn nil")
		d := g.Dominators()
		entry, then, done := g.Blocks[0], g.Blocks[1], g.Blocks[2]
		if !d.Dominates(entry, done) {
			t.Error("entry must dominate if.done")
		}
		if d.Dominates(then, done) {
			t.Error("if.then must not dominate if.done (the else path skips it)")
		}
		if d.Idom(done) != entry {
			t.Errorf("idom(if.done) = %v, want entry", d.Idom(done))
		}
		if d.Idom(entry) != nil {
			t.Errorf("idom(entry) = %v, want nil", d.Idom(entry))
		}
	})

	t.Run("both arms dominated by cond", func(t *testing.T) {
		g := build(t, "x := 1\nif x > 0 {\n x++\n} else {\n x--\n}\nreturn nil")
		d := g.Dominators()
		entry, then, els, done := g.Blocks[0], g.Blocks[1], g.Blocks[2], g.Blocks[3]
		for _, b := range []*Block{then, els, done} {
			if !d.Dominates(entry, b) {
				t.Errorf("entry must dominate %v", b)
			}
		}
		if d.Idom(then) != entry || d.Idom(els) != entry || d.Idom(done) != entry {
			t.Error("idom of then/else/done must be the cond block")
		}
	})

	t.Run("loop body does not dominate loop exit", func(t *testing.T) {
		g := build(t, "for i := 0; i < 3; i++ {\n _ = i\n}\nreturn nil")
		d := g.Dominators()
		head, body, done := g.Blocks[1], g.Blocks[2], g.Blocks[4]
		if !d.Dominates(head, body) || !d.Dominates(head, done) {
			t.Error("for.head must dominate body and done")
		}
		if d.Dominates(body, done) {
			t.Error("for.body must not dominate for.done (zero-iteration path)")
		}
	})

	t.Run("straight line dominates exit", func(t *testing.T) {
		g := build(t, "x := 1\n_ = x\nreturn nil")
		d := g.Dominators()
		if !d.Dominates(g.Entry, g.Exit) {
			t.Error("entry must dominate exit")
		}
		if d.Dominates(g.Exit, g.Entry) {
			t.Error("exit must not dominate entry")
		}
	})

	t.Run("early return splits dominance", func(t *testing.T) {
		g := build(t, "x := 1\nif x > 0 {\n return nil\n}\nx--\nreturn nil")
		d := g.Dominators()
		// b1 = if.then (returns), b2 = if.done: then must not dominate exit,
		// and done must not either (the early return bypasses it).
		then, done := g.Blocks[1], g.Blocks[2]
		if d.Dominates(then, g.Exit) {
			t.Error("early-return branch must not dominate exit")
		}
		if d.Dominates(done, g.Exit) {
			t.Error("post-if code must not dominate exit (early return bypasses)")
		}
		if !d.Dominates(g.Entry, g.Exit) {
			t.Error("entry must dominate exit")
		}
	})

	t.Run("unreachable blocks dominated by nothing", func(t *testing.T) {
		g := build(t, "return nil\n// dead:\nx := 1\n_ = x")
		d := g.Dominators()
		dead := g.Blocks[1] // block after the return
		if dead.Kind != "unreachable" {
			t.Fatalf("expected unreachable block, got %v", dead)
		}
		if d.Dominates(g.Entry, dead) {
			t.Error("entry must not dominate an unreachable block")
		}
		if d.Idom(dead) != nil {
			t.Errorf("idom(unreachable) = %v, want nil", d.Idom(dead))
		}
	})
}

// TestReachable pins the forward-reachability relation commitprotocol uses
// for its write-after-flip check.
func TestReachable(t *testing.T) {
	g := build(t, "x := 1\nif x > 0 {\n x++\n}\nreturn nil")
	entry, then, done := g.Blocks[0], g.Blocks[1], g.Blocks[2]
	if !g.Reachable(entry, done) || !g.Reachable(then, done) {
		t.Error("done must be reachable from entry and then")
	}
	if g.Reachable(done, then) {
		t.Error("then must not be reachable from done")
	}
	if g.Reachable(entry, entry) {
		t.Error("acyclic entry must not reach itself")
	}

	loop := build(t, "for {\n x := 1\n _ = x\n}")
	head := loop.Blocks[1]
	if !loop.Reachable(head, head) {
		t.Error("loop head must reach itself through the back edge")
	}
}

// TestDefers pins that deferred calls are collected in source order.
func TestDefers(t *testing.T) {
	g := build(t, "defer func() {}()\nif true {\n defer func() {}()\n}\nreturn nil")
	if len(g.Defers) != 2 {
		t.Fatalf("got %d defers, want 2", len(g.Defers))
	}
	if g.Defers[0].Pos() > g.Defers[1].Pos() {
		t.Error("defers must be in source order")
	}
}
