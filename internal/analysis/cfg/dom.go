package cfg

// Dominator computation: the iterative algorithm of Cooper, Harvey and
// Kennedy ("A Simple, Fast Dominance Algorithm"), which converges in a few
// passes over the blocks in reverse postorder. Function bodies are tiny, so
// simplicity beats the asymptotics of Lengauer–Tarjan.

// Dominators answers dominance queries over one Graph. A block D dominates
// a block B when every path from the entry to B passes through D (so D's
// straight-line nodes have all executed by the time B runs).
type Dominators struct {
	idom []*Block // idom[b.Index], nil for the entry and unreachable blocks
	rpo  []int    // reverse-postorder number per block index, -1 if unreachable
}

// Dominators computes the dominator tree of g.
func (g *Graph) Dominators() *Dominators {
	n := len(g.Blocks)
	d := &Dominators{idom: make([]*Block, n), rpo: make([]int, n)}
	for i := range d.rpo {
		d.rpo[i] = -1
	}

	// Postorder DFS from the entry.
	var order []*Block
	seen := make([]bool, n)
	var dfs func(b *Block)
	dfs = func(b *Block) {
		seen[b.Index] = true
		for _, s := range b.Succs {
			if !seen[s.Index] {
				dfs(s)
			}
		}
		order = append(order, b)
	}
	dfs(g.Entry)
	// Reverse-postorder numbering: entry gets 0.
	for i, b := range order {
		d.rpo[b.Index] = len(order) - 1 - i
	}

	d.idom[g.Entry.Index] = g.Entry // temporarily self, cleared below
	for changed := true; changed; {
		changed = false
		// Walk in reverse postorder (order is postorder, so iterate backward).
		for i := len(order) - 1; i >= 0; i-- {
			b := order[i]
			if b == g.Entry {
				continue
			}
			var newIdom *Block
			for _, p := range b.Preds {
				if d.idom[p.Index] == nil {
					continue // unreachable or not yet processed
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = d.intersect(p, newIdom)
				}
			}
			if newIdom != nil && d.idom[b.Index] != newIdom {
				d.idom[b.Index] = newIdom
				changed = true
			}
		}
	}
	d.idom[g.Entry.Index] = nil
	return d
}

func (d *Dominators) intersect(a, b *Block) *Block {
	for a != b {
		for d.rpo[a.Index] > d.rpo[b.Index] {
			a = d.idom[a.Index]
		}
		for d.rpo[b.Index] > d.rpo[a.Index] {
			b = d.idom[b.Index]
		}
	}
	return a
}

// Idom returns b's immediate dominator, nil for the entry and for blocks
// unreachable from it.
func (d *Dominators) Idom(b *Block) *Block { return d.idom[b.Index] }

// Dominates reports whether a dominates b. Every block dominates itself;
// unreachable blocks are dominated by nothing else.
func (d *Dominators) Dominates(a, b *Block) bool {
	for b != nil {
		if a == b {
			return true
		}
		b = d.idom[b.Index]
	}
	return false
}
