// Package cfg builds per-function control-flow graphs over go/ast, the
// substrate the ordering analyzers (durabilityorder, commitprotocol) reason
// on. A Graph is a set of basic blocks: maximal straight-line statement
// runs connected by the edges control can take. Because a basic block
// executes atomically (entered at the top, left at the bottom), "call A is
// ordered before call B on every path" reduces to block dominance plus
// intra-block node order — exactly the currency the durability protocol is
// written in (write-all-new → flip → free-old; append → fsync → ack).
//
// The builder covers the statement forms the repository uses: if/else,
// for (cond/post, break, continue), range, switch/type-switch (with
// fallthrough), select, labeled statements, goto, and early returns.
// Deferred calls are recorded both in their registration block and in
// Graph.Defers so analyzers can model at-return execution when they care.
// Function literals are not descended into — a literal's body runs when it
// is called, not where it is written, so analyzers treat each literal as
// its own function.
package cfg

import (
	"fmt"
	"go/ast"
	"sort"
	"strings"
)

// A Block is one basic block: straight-line nodes executed in order, then a
// transfer to one of Succs. Nodes holds statements and the condition/tag
// expressions evaluated in this block, in execution order.
type Block struct {
	Index int
	Kind  string // "entry", "exit", "if.then", "for.head", ... for tests and debugging
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

func (b *Block) String() string { return fmt.Sprintf("b%d[%s]", b.Index, b.Kind) }

// A Graph is the control-flow graph of one function body. Entry is
// Blocks[0]; Exit is the single synthetic block every return (and the fall
// off the end of the body) transfers to.
type Graph struct {
	Blocks []*Block
	Entry  *Block
	Exit   *Block
	// Defers lists every defer statement in the body, in source order —
	// the calls that run between the last explicit statement and the
	// actual return.
	Defers []*ast.DeferStmt
}

// New builds the graph of one function body.
func New(body *ast.BlockStmt) *Graph {
	g := &Graph{}
	b := &builder{g: g, labels: map[string]*labelInfo{}}
	g.Entry = b.newBlock("entry")
	g.Exit = &Block{Kind: "exit"}
	b.cur = g.Entry
	b.stmts(body.List)
	// Falling off the end of the body reaches the exit — unless the body
	// ended with a terminator, leaving an orphan unreachable block.
	if b.cur == g.Entry || len(b.cur.Preds) > 0 {
		edge(b.cur, g.Exit)
	}
	// The exit block is appended last so test summaries read
	// entry-first/exit-last regardless of how many blocks the body needed.
	g.Exit.Index = len(g.Blocks)
	g.Blocks = append(g.Blocks, g.Exit)
	b.resolveGotos()
	return g
}

// Reachable reports whether a path of one or more edges leads from a to b.
// Note Reachable(a, a) is true only when a lies on a cycle.
func (g *Graph) Reachable(a, b *Block) bool {
	seen := make([]bool, len(g.Blocks))
	work := append([]*Block(nil), a.Succs...)
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		if n == b {
			return true
		}
		if seen[n.Index] {
			continue
		}
		seen[n.Index] = true
		work = append(work, n.Succs...)
	}
	return false
}

// Summary renders the graph compactly for tests: one line per block with
// its successor list.
func (g *Graph) Summary() string {
	var sb strings.Builder
	for _, b := range g.Blocks {
		var succs []string
		for _, s := range b.Succs {
			succs = append(succs, fmt.Sprintf("b%d", s.Index))
		}
		sort.Strings(succs)
		fmt.Fprintf(&sb, "%s -> %s\n", b, strings.Join(succs, " "))
	}
	return sb.String()
}

// labelInfo tracks one label: the block a goto jumps to, and the loop
// break/continue targets when the label names a loop or switch.
type labelInfo struct {
	target *Block // goto target (the labeled statement's block)
	brk    *Block
	cont   *Block
}

type pendingGoto struct {
	from  *Block
	label string
}

type builder struct {
	g      *Graph
	cur    *Block
	loops  []loopScope // innermost last
	labels map[string]*labelInfo
	gotos  []pendingGoto
	// label to attach to the next loop/switch statement (set by a labeled
	// statement wrapping it).
	pendingLabel string
}

type loopScope struct {
	label string
	brk   *Block // break target; nil cont means "break only" (switch/select)
	cont  *Block
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// edge records a control transfer from -> to.
func edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// jump ends the current block with an edge to to and leaves the builder in
// a fresh unreachable block (statements after a terminator).
func (b *builder) jump(to *Block) {
	edge(b.cur, to)
	b.cur = b.newBlock("unreachable")
}

// startBlock makes blk current after linking the current block to it.
func (b *builder) startBlock(blk *Block) {
	edge(b.cur, blk)
	b.cur = blk
}

func (b *builder) add(n ast.Node) {
	if n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

func (b *builder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.g.Exit)

	case *ast.BranchStmt:
		b.branch(s)

	case *ast.IfStmt:
		b.ifStmt(s)

	case *ast.ForStmt:
		b.forStmt(s, b.takeLabel())

	case *ast.RangeStmt:
		b.rangeStmt(s, b.takeLabel())

	case *ast.SwitchStmt:
		b.add(s.Init)
		b.add(s.Tag)
		b.switchBody(s.Body, b.takeLabel(), hasDefault(s.Body))

	case *ast.TypeSwitchStmt:
		b.add(s.Init)
		b.add(s.Assign)
		b.switchBody(s.Body, b.takeLabel(), hasDefault(s.Body))

	case *ast.SelectStmt:
		b.selectStmt(s, b.takeLabel())

	case *ast.BlockStmt:
		b.stmts(s.List)

	case *ast.LabeledStmt:
		b.labeledStmt(s)

	case *ast.DeferStmt:
		b.add(s)
		b.g.Defers = append(b.g.Defers, s)

	case nil:
		// absent init/post clauses
	default:
		// Expr, Assign, Decl, Send, IncDec, Go, Empty: straight-line.
		b.add(s)
	}
}

// takeLabel consumes the label a wrapping LabeledStmt registered for the
// statement about to be built.
func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *builder) labeledStmt(s *ast.LabeledStmt) {
	// Give the labeled statement its own block so goto has a target.
	blk := b.newBlock("label." + s.Label.Name)
	b.startBlock(blk)
	info := b.labels[s.Label.Name]
	if info == nil {
		info = &labelInfo{}
		b.labels[s.Label.Name] = info
	}
	info.target = blk
	switch s.Stmt.(type) {
	case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		b.pendingLabel = s.Label.Name
	}
	b.stmt(s.Stmt)
}

func (b *builder) branch(s *ast.BranchStmt) {
	name := ""
	if s.Label != nil {
		name = s.Label.Name
	}
	switch s.Tok.String() {
	case "break":
		if t := b.breakTarget(name); t != nil {
			b.jump(t)
			return
		}
	case "continue":
		if t := b.continueTarget(name); t != nil {
			b.jump(t)
			return
		}
	case "goto":
		b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: name})
		b.cur = b.newBlock("unreachable")
		return
	case "fallthrough":
		// Handled by switchBody: the case-body builder links to the next
		// clause. Treated here as a plain fallthrough-to-next marker; the
		// statement itself carries no edge.
		b.add(s)
		return
	}
	// A branch without a known target (malformed label): end the block
	// conservatively at exit so no spurious fallthrough is modeled.
	b.jump(b.g.Exit)
}

func (b *builder) breakTarget(label string) *Block {
	if label != "" {
		if info := b.labels[label]; info != nil && info.brk != nil {
			return info.brk
		}
		return nil
	}
	if len(b.loops) == 0 {
		return nil
	}
	return b.loops[len(b.loops)-1].brk
}

func (b *builder) continueTarget(label string) *Block {
	if label != "" {
		if info := b.labels[label]; info != nil && info.cont != nil {
			return info.cont
		}
		return nil
	}
	for i := len(b.loops) - 1; i >= 0; i-- {
		if b.loops[i].cont != nil {
			return b.loops[i].cont
		}
	}
	return nil
}

func (b *builder) pushLoop(label string, brk, cont *Block) {
	b.loops = append(b.loops, loopScope{label: label, brk: brk, cont: cont})
	if label != "" {
		info := b.labels[label]
		if info == nil {
			info = &labelInfo{}
			b.labels[label] = info
		}
		info.brk, info.cont = brk, cont
	}
}

func (b *builder) popLoop() { b.loops = b.loops[:len(b.loops)-1] }

func (b *builder) ifStmt(s *ast.IfStmt) {
	b.add(s.Init)
	b.add(s.Cond)
	condBlk := b.cur
	then := b.newBlock("if.then")
	var els *Block
	if s.Else != nil {
		els = b.newBlock("if.else")
	}
	done := b.newBlock("if.done")

	edge(condBlk, then)
	b.cur = then
	b.stmts(s.Body.List)
	edge(b.cur, done)

	if els != nil {
		edge(condBlk, els)
		b.cur = els
		b.stmt(s.Else)
		edge(b.cur, done)
	} else {
		edge(condBlk, done)
	}
	b.cur = done
}

func (b *builder) forStmt(s *ast.ForStmt, label string) {
	b.stmt(s.Init)
	head := b.newBlock("for.head")
	b.startBlock(head)
	b.add(s.Cond)

	body := b.newBlock("for.body")
	// continue goes to the post statement when there is one, else the head.
	var post *Block
	cont := head
	if s.Post != nil {
		post = b.newBlock("for.post")
		post.Nodes = append(post.Nodes, s.Post)
		cont = post
	}
	done := b.newBlock("for.done")

	edge(head, body)
	if s.Cond != nil {
		edge(head, done)
	}
	b.pushLoop(label, done, cont)
	b.cur = body
	b.stmts(s.Body.List)
	b.popLoop()
	if post != nil {
		edge(b.cur, post)
		edge(post, head)
	} else {
		edge(b.cur, head)
	}
	b.cur = done
}

func (b *builder) rangeStmt(s *ast.RangeStmt, label string) {
	b.add(s.X)
	head := b.newBlock("range.head")
	b.startBlock(head)
	head.Nodes = append(head.Nodes, s) // the per-iteration key/value binding

	body := b.newBlock("range.body")
	done := b.newBlock("range.done")
	edge(head, body)
	edge(head, done)

	b.pushLoop(label, done, head)
	b.cur = body
	b.stmts(s.Body.List)
	b.popLoop()
	edge(b.cur, head)
	b.cur = done
}

func hasDefault(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// switchBody builds the clause blocks of a switch or type switch: every
// clause is entered from the switch head, fallthrough chains to the next
// clause, and a missing default adds the head -> done edge.
func (b *builder) switchBody(body *ast.BlockStmt, label string, withDefault bool) {
	head := b.cur
	var clauses []*ast.CaseClause
	for _, c := range body.List {
		clauses = append(clauses, c.(*ast.CaseClause))
	}
	blocks := make([]*Block, len(clauses))
	for i := range clauses {
		blocks[i] = b.newBlock(fmt.Sprintf("case.%d", i))
		edge(head, blocks[i])
	}
	done := b.newBlock("switch.done")
	b.pushLoop(label, done, nil)
	if !withDefault {
		edge(head, done)
	}
	for i, cc := range clauses {
		b.cur = blocks[i]
		for _, e := range cc.List {
			b.add(e)
		}
		ft := false
		for _, st := range cc.Body {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok.String() == "fallthrough" {
				ft = true
			}
			b.stmt(st)
		}
		if ft && i+1 < len(blocks) {
			edge(b.cur, blocks[i+1])
		} else {
			edge(b.cur, done)
		}
	}
	b.popLoop()
	b.cur = done
}

func (b *builder) selectStmt(s *ast.SelectStmt, label string) {
	head := b.cur
	blocks := make([]*Block, len(s.Body.List))
	for i := range s.Body.List {
		blocks[i] = b.newBlock(fmt.Sprintf("comm.%d", i))
		edge(head, blocks[i])
	}
	done := b.newBlock("select.done")
	b.pushLoop(label, done, nil)
	for i, c := range s.Body.List {
		cc := c.(*ast.CommClause)
		b.cur = blocks[i]
		b.stmt(cc.Comm)
		b.stmts(cc.Body)
		edge(b.cur, done)
	}
	b.popLoop()
	b.cur = done
}

func (b *builder) resolveGotos() {
	for _, pg := range b.gotos {
		if info := b.labels[pg.label]; info != nil && info.target != nil {
			edge(pg.from, info.target)
		} else {
			edge(pg.from, b.g.Exit)
		}
	}
}
