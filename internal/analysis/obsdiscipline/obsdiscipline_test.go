package obsdiscipline_test

import (
	"testing"

	"pathcache/internal/analysis/analysistest"
	"pathcache/internal/analysis/obsdiscipline"
)

func TestViolations(t *testing.T) {
	analysistest.Run(t, "testdata/src/obsdiscipline_bad", obsdiscipline.Analyzer)
}

func TestSanctionedPatterns(t *testing.T) {
	analysistest.NoDiagnostics(t, "testdata/src/obsdiscipline_good", obsdiscipline.Analyzer)
}
