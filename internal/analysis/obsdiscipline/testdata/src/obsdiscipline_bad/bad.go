// Package obsdiscipline_bad exercises every violation class the
// obsdiscipline analyzer reports: recording ops beneath the public seam,
// reconfiguring a registry from the outside, and forging registries.
package obsdiscipline_bad

import (
	"pathcache/internal/obs"
)

// forge creates registries the owning Backend never sees.
func forge() *obs.Registry {
	r := obs.NewRegistry() // want `obs\.NewRegistry outside internal/engine`
	_ = &obs.Registry{}    // want `constructing obs\.Registry with a composite literal`
	return r
}

// recordBeneathSeam records an op directly, bypassing the op-scoped
// counter the public layer would have attached.
func recordBeneathSeam(r *obs.Registry) error {
	op := r.Begin("twosided", "query", obs.SerialWorker) // want `obs\.Registry\.Begin outside the recording seams`
	_, err := r.End(op, obs.Measure{Reads: 1})           // want `obs\.Registry\.End outside the recording seams`
	return err
}

// reconfigure flips recording configuration owned by the engine.
func reconfigure(r *obs.Registry, t obs.Tracer) {
	r.SetStrict(true) // want `obs\.Registry\.SetStrict outside the recording seams`
	r.SetLimits(2, 1) // want `obs\.Registry\.SetLimits outside the recording seams`
	r.SetTracer(t)    // want `obs\.Registry\.SetTracer outside the recording seams`
	r.Reset()         // want `obs\.Registry\.Reset outside the recording seams`
}
