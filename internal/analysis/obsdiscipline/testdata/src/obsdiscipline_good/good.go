// Package obsdiscipline_good exercises the sanctioned observability
// patterns: the standalone metric primitives anywhere, and the registry's
// read-only surface.
package obsdiscipline_good

import (
	"pathcache/internal/obs"
)

// aggregate uses the standalone primitives directly — the bench harness
// does exactly this to histogram its own per-query samples.
func aggregate(h *obs.Histogram, c *obs.Counter, g *obs.Gauge) obs.HistSnapshot {
	h.Observe(3)
	c.Add(1, 2)
	g.Inc()
	_ = c.Total()
	return h.Snapshot()
}

// inspect reads a registry without mutating it.
func inspect(r *obs.Registry) (int64, bool, obs.Snapshot) {
	maxRatio, slack := r.Limits()
	_ = maxRatio + slack
	return r.Inflight(), r.Strict(), r.Snapshot()
}

// bounds evaluates the declared bound functions; pure arithmetic.
func bounds(n, b, t int) float64 {
	return obs.LogBBound(n, b, t) + obs.RangeTreeBound(n, b, t)
}
