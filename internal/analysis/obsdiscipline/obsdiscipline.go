// Package obsdiscipline protects the metric-recording seams of the
// observability layer: a store's obs.Registry is owned by its
// engine.Backend, and only the sanctioned recording layers — internal/obs
// itself, internal/engine, and the pathcache root package (startOp,
// runBatch, recordBuild) — may record operations into it or reconfigure
// it.
//
// Everywhere else, three constructs are reported:
//
//  1. Calls to the Registry mutators (Begin, End, Reset, SetStrict,
//     SetLimits, SetTracer). An index or tool that records its own ops
//     beneath the public API breaks the invariant the test suite pins:
//     per-op histogram sums equal the store-level Stats diff. Ops must be
//     recorded by the public layer, which routes their I/O through an
//     op-scoped counter at the same time.
//
//  2. obs.NewRegistry. A second registry silently absorbs recordings the
//     store's own Metrics() snapshot never shows.
//
//  3. Composite literals of obs.Registry, which skip NewRegistry entirely.
//
// The read-only surface (Snapshot, Inflight, Strict, Limits) and the
// standalone primitives (Counter, Gauge, Histogram) stay legal anywhere —
// the bench harness aggregates its own samples with obs.Histogram by
// design.
package obsdiscipline

import (
	"go/ast"
	"go/types"

	"pathcache/internal/analysis"
)

// Analyzer is the obsdiscipline check.
var Analyzer = &analysis.Analyzer{
	Name: "obsdiscipline",
	Doc:  "obs.Registry is mutated only through the sanctioned recording seams (internal/obs, internal/engine, the pathcache root)",
	Run:  run,
}

// mutators are the *obs.Registry methods that record operations or change
// recording configuration. The read-only accessors are not listed.
var mutators = map[string]bool{
	"Begin": true, "End": true, "Reset": true,
	"SetStrict": true, "SetLimits": true, "SetTracer": true,
}

// exempt reports whether pkg is a sanctioned recording layer. The root
// pathcache package is the public recording seam; internal/engine owns
// each store's registry; internal/obs is the implementation.
func exempt(pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	return analysis.PkgIs(pkg, "internal/obs") ||
		analysis.PkgIs(pkg, "internal/engine") ||
		pkg.Path() == "pathcache"
}

func run(pass *analysis.Pass) error {
	if exempt(pass.Pkg) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.CompositeLit:
				checkLiteral(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkCall flags Registry mutator calls and NewRegistry itself.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.CalleeOf(pass.TypesInfo, call)
	if fn == nil || !analysis.PkgIs(fn.Pkg(), "internal/obs") {
		return
	}
	if named := analysis.RecvNamed(fn); named != nil {
		if named.Obj().Name() == "Registry" && mutators[fn.Name()] {
			pass.Reportf(call.Pos(),
				"obs.Registry.%s outside the recording seams: only internal/obs, internal/engine and the pathcache root may record or reconfigure metric series, or the per-op histogram sums stop matching the store-level Stats diff; route the operation through the public index API", fn.Name())
		}
		return
	}
	if fn.Name() == "NewRegistry" {
		pass.Reportf(call.Pos(),
			"obs.NewRegistry outside internal/engine: every store's registry is owned by its engine.Backend — a second registry absorbs recordings Metrics() never shows; reach the store's registry via Backend.Obs()")
	}
}

// checkLiteral flags obs.Registry composite literals, which would bypass
// NewRegistry.
func checkLiteral(pass *analysis.Pass, lit *ast.CompositeLit) {
	t := pass.TypesInfo.TypeOf(lit)
	named, ok := t.(*types.Named)
	if !ok {
		return
	}
	if named.Obj().Name() == "Registry" && analysis.PkgIs(named.Obj().Pkg(), "internal/obs") {
		pass.Reportf(lit.Pos(),
			"constructing obs.Registry with a composite literal bypasses NewRegistry; reach the store's registry via Backend.Obs()")
	}
}
