package analysis

import (
	"go/ast"
	"go/types"
)

// The intra-package call-graph summary layer. Several analyzers need the
// same extension beyond a single function body: a property of a callee
// (performs pager I/O, establishes a durability barrier, mutates its
// parameter) must taint the call sites that reach it, transitively within
// the analyzed package. CallGraph collects every function and method
// declaration with a body, and Taint computes the fixed point of "contains
// a matching call, or calls a tainted function".
//
// The layer is deliberately intra-package: cross-package callees are
// classified by the analyzers themselves (by name and package, the way
// IsPagerIO does), since only the current package's syntax is loaded.

// CallGraph indexes one package's function declarations for summary
// computation.
type CallGraph struct {
	info *types.Info
	// Decls maps each function or method object to its declaration.
	// Functions without bodies (external linkage) are absent.
	Decls map[*types.Func]*ast.FuncDecl
}

// NewCallGraph collects every declared function and method in files.
func NewCallGraph(info *types.Info, files []*ast.File) *CallGraph {
	cg := &CallGraph{info: info, Decls: map[*types.Func]*ast.FuncDecl{}}
	for _, f := range files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
					cg.Decls[fn] = fd
				}
			}
		}
	}
	return cg
}

// Taint returns the set of package-local functions whose bodies
// (transitively, within the package) contain a call matched by seed.
// Function literals inside a body count toward the enclosing declaration:
// the conservative reading for taint propagation, since the literal is
// usually invoked where it is built (or stored and run later with the same
// effect).
func (cg *CallGraph) Taint(seed func(call *ast.CallExpr) bool) map[*types.Func]bool {
	tainted := map[*types.Func]bool{}
	for changed := true; changed; {
		changed = false
		for fn, fd := range cg.Decls {
			if tainted[fn] {
				continue
			}
			found := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if found {
					return false
				}
				if call, ok := n.(*ast.CallExpr); ok {
					if seed(call) || tainted[CalleeOf(cg.info, call)] {
						found = true
					}
				}
				return true
			})
			if found {
				tainted[fn] = true
				changed = true
			}
		}
	}
	return tainted
}

// LocalCallee resolves call to a function declared in this package, or nil.
func (cg *CallGraph) LocalCallee(call *ast.CallExpr) *types.Func {
	fn := CalleeOf(cg.info, call)
	if fn == nil {
		return nil
	}
	if _, ok := cg.Decls[fn]; !ok {
		return nil
	}
	return fn
}

// CallName returns the terminal identifier a call invokes — the method or
// function name for resolved callees, the selector's field name for calls
// through function-valued fields (cfg.Sync, cfg.Commit), or "" when the
// call has no name (a call of a call, a conversion).
func CallName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}
