package btree

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"pathcache/internal/disk"
)

func newTestTree(t *testing.T, pageSize int) (*Tree, *disk.Store) {
	t.Helper()
	s := disk.MustStore(pageSize)
	tr, err := New(s)
	if err != nil {
		t.Fatal(err)
	}
	return tr, s
}

func TestEmptyTree(t *testing.T) {
	tr, _ := newTestTree(t, 256)
	if tr.Len() != 0 || tr.Height() != 0 {
		t.Fatalf("len=%d height=%d", tr.Len(), tr.Height())
	}
	vals, err := tr.Search(5)
	if err != nil || vals != nil {
		t.Fatalf("search empty: %v %v", vals, err)
	}
	if _, ok, _ := tr.Min(); ok {
		t.Fatal("Min on empty returned ok")
	}
	if _, ok, _ := tr.Max(); ok {
		t.Fatal("Max on empty returned ok")
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertSearchSmallPages(t *testing.T) {
	// Page of 256 bytes forces frequent splits and a tall tree.
	tr, _ := newTestTree(t, 256)
	const n = 5000
	rng := rand.New(rand.NewSource(1))
	perm := rng.Perm(n)
	for _, i := range perm {
		if err := tr.Insert(int64(i), uint64(i)*10); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.Height() < 2 {
		t.Fatalf("height %d: tree did not grow", tr.Height())
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i += 97 {
		vals, err := tr.Search(int64(i))
		if err != nil {
			t.Fatal(err)
		}
		if len(vals) != 1 || vals[0] != uint64(i)*10 {
			t.Fatalf("search %d = %v", i, vals)
		}
	}
	if vals, _ := tr.Search(int64(n) + 5); len(vals) != 0 {
		t.Fatalf("search absent key = %v", vals)
	}
}

func TestDuplicateKeysDistinctValues(t *testing.T) {
	tr, _ := newTestTree(t, 256)
	for v := uint64(0); v < 300; v++ {
		if err := tr.Insert(42, v); err != nil {
			t.Fatal(err)
		}
	}
	vals, err := tr.Search(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 300 {
		t.Fatalf("got %d values", len(vals))
	}
	for i, v := range vals {
		if v != uint64(i) {
			t.Fatalf("vals[%d] = %d", i, v)
		}
	}
	if err := tr.Insert(42, 7); err == nil {
		t.Fatal("duplicate (key,val) accepted")
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestRangeMatchesBruteForce(t *testing.T) {
	tr, _ := newTestTree(t, 256)
	rng := rand.New(rand.NewSource(2))
	type kv struct {
		k int64
		v uint64
	}
	var all []kv
	for i := 0; i < 3000; i++ {
		k, v := rng.Int63n(10_000), uint64(i)
		all = append(all, kv{k, v})
		if err := tr.Insert(k, v); err != nil {
			t.Fatal(err)
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].k != all[j].k {
			return all[i].k < all[j].k
		}
		return all[i].v < all[j].v
	})
	for trial := 0; trial < 40; trial++ {
		lo := rng.Int63n(10_000)
		hi := lo + rng.Int63n(2_000)
		var got []kv
		err := tr.Range(lo, hi, func(k int64, v uint64) bool {
			got = append(got, kv{k, v})
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		var want []kv
		for _, e := range all {
			if e.k >= lo && e.k <= hi {
				want = append(want, e)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("range [%d,%d]: got %d want %d", lo, hi, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("range [%d,%d] at %d: got %v want %v", lo, hi, i, got[i], want[i])
			}
		}
	}
	// Early termination.
	count := 0
	_ = tr.Range(0, 10_000, func(int64, uint64) bool { count++; return count < 10 })
	if count != 10 {
		t.Fatalf("early stop visited %d", count)
	}
	// Inverted range.
	if err := tr.Range(10, 5, func(int64, uint64) bool { t.Fatal("visited"); return false }); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteAllRandomOrder(t *testing.T) {
	tr, s := newTestTree(t, 256)
	const n = 4000
	rng := rand.New(rand.NewSource(3))
	for _, i := range rng.Perm(n) {
		if err := tr.Insert(int64(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	pagesBefore := s.NumPages()
	for di, i := range rng.Perm(n) {
		if err := tr.Delete(int64(i), uint64(i)); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
		if di%500 == 0 {
			if err := tr.Check(); err != nil {
				t.Fatalf("after %d deletes: %v", di+1, err)
			}
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting all", tr.Len())
	}
	if tr.Height() != 0 {
		t.Fatalf("height = %d after deleting all", tr.Height())
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	if s.NumPages() >= pagesBefore {
		t.Fatalf("no pages reclaimed: %d -> %d", pagesBefore, s.NumPages())
	}
}

func TestDeleteMissing(t *testing.T) {
	tr, _ := newTestTree(t, 256)
	if err := tr.Insert(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := tr.Delete(1, 2); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if err := tr.Delete(9, 9); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestMinMax(t *testing.T) {
	tr, _ := newTestTree(t, 256)
	for _, k := range []int64{50, 10, 90, 30, 70} {
		if err := tr.Insert(k, uint64(k)); err != nil {
			t.Fatal(err)
		}
	}
	mn, ok, err := tr.Min()
	if err != nil || !ok || mn.Key != 10 {
		t.Fatalf("Min = %v ok=%v err=%v", mn, ok, err)
	}
	mx, ok, err := tr.Max()
	if err != nil || !ok || mx.Key != 90 {
		t.Fatalf("Max = %v ok=%v err=%v", mx, ok, err)
	}
}

// The headline bound: a search costs O(log_B n + t/B) page reads.
func TestSearchIOCost(t *testing.T) {
	tr, s := newTestTree(t, 512)
	const n = 50_000
	rng := rand.New(rand.NewSource(4))
	for _, i := range rng.Perm(n) {
		if err := tr.Insert(int64(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	maxReads := int64(tr.Height() + 2)
	for trial := 0; trial < 50; trial++ {
		k := rng.Int63n(n)
		s.ResetStats()
		if _, err := tr.Search(k); err != nil {
			t.Fatal(err)
		}
		if r := s.Stats().Reads; r > maxReads {
			t.Fatalf("search cost %d reads, height %d", r, tr.Height())
		}
	}
	// Range of t entries costs about height + t/B reads.
	s.ResetStats()
	count := 0
	if err := tr.Range(1000, 11_000, func(int64, uint64) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	leafCap := (512 - leafFixed) / leafEntry
	bound := int64(tr.Height()+1) + int64(2*count/leafCap+2)
	if r := s.Stats().Reads; r > bound {
		t.Fatalf("range of %d entries cost %d reads, want <= %d", count, r, bound)
	}
}

// Space: O(n/B) pages.
func TestSpaceLinear(t *testing.T) {
	tr, s := newTestTree(t, 512)
	const n = 20_000
	rng := rand.New(rand.NewSource(5))
	for _, i := range rng.Perm(n) {
		if err := tr.Insert(int64(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	leafCap := (512 - leafFixed) / leafEntry
	// Fill factor at least ~50%: at most ~2x the perfectly packed count,
	// plus internal overhead.
	maxPages := 3 * (n/leafCap + 1)
	if s.NumPages() > maxPages {
		t.Fatalf("pages = %d, want <= %d", s.NumPages(), maxPages)
	}
}

// Property: a random interleaving of inserts and deletes always maintains
// invariants and matches a map oracle.
func TestInsertDeleteProperty(t *testing.T) {
	f := func(ops []struct {
		K   uint8
		V   uint8
		Del bool
	}) bool {
		s := disk.MustStore(256)
		tr, err := New(s)
		if err != nil {
			return false
		}
		oracle := map[Entry]bool{}
		for _, op := range ops {
			e := Entry{Key: int64(op.K), Val: uint64(op.V)}
			if op.Del {
				if oracle[e] {
					if tr.Delete(e.Key, e.Val) != nil {
						return false
					}
					delete(oracle, e)
				} else if tr.Delete(e.Key, e.Val) == nil {
					return false
				}
			} else {
				if oracle[e] {
					if tr.Insert(e.Key, e.Val) == nil {
						return false
					}
				} else {
					if tr.Insert(e.Key, e.Val) != nil {
						return false
					}
					oracle[e] = true
				}
			}
		}
		if tr.Len() != len(oracle) {
			return false
		}
		if tr.Check() != nil {
			return false
		}
		got := map[Entry]bool{}
		if tr.All(func(k int64, v uint64) bool {
			got[Entry{Key: k, Val: v}] = true
			return true
		}) != nil {
			return false
		}
		if len(got) != len(oracle) {
			return false
		}
		for e := range oracle {
			if !got[e] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// BulkLoad must produce a valid tree equivalent to incremental insertion,
// in far fewer I/Os.
func TestBulkLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, n := range []int{0, 1, 5, 100, 5000} {
		entries := make([]Entry, n)
		for i := range entries {
			entries[i] = Entry{Key: rng.Int63n(10_000), Val: uint64(i)}
		}
		s := disk.MustStore(256)
		bl, err := BulkLoad(s, entries)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if bl.Len() != n {
			t.Fatalf("n=%d: Len=%d", n, bl.Len())
		}
		if err := bl.Check(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// Compare a range scan against an incrementally built tree.
		s2 := disk.MustStore(256)
		inc, err := New(s2)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if err := inc.Insert(e.Key, e.Val); err != nil {
				t.Fatal(err)
			}
		}
		var a, b []Entry
		_ = bl.All(func(k int64, v uint64) bool { a = append(a, Entry{k, v}); return true })
		_ = inc.All(func(k int64, v uint64) bool { b = append(b, Entry{k, v}); return true })
		if len(a) != len(b) {
			t.Fatalf("n=%d: bulk %d vs incremental %d entries", n, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("n=%d: entry %d differs: %v vs %v", n, i, a[i], b[i])
			}
		}
		// Bulk loading a sorted stream costs O(n/B) writes.
		if n >= 5000 {
			writes := s.Stats().Writes
			if writes > int64(3*(n/bl.leafCap+2)) {
				t.Fatalf("bulk load cost %d writes for n=%d", writes, n)
			}
		}
		// The bulk-loaded tree must keep accepting updates.
		if err := bl.Insert(99_999, 1); err != nil {
			t.Fatal(err)
		}
		if err := bl.Delete(99_999, 1); err != nil {
			t.Fatal(err)
		}
		if err := bl.Check(); err != nil {
			t.Fatalf("after updates: %v", err)
		}
	}
	// Duplicates rejected.
	s := disk.MustStore(256)
	if _, err := BulkLoad(s, []Entry{{1, 1}, {1, 1}}); err == nil {
		t.Fatal("duplicate entries accepted")
	}
}
