// Package btree implements an external B+-tree over the simulated disk — the
// structure the paper's introduction holds up as the solved case: external
// dynamic 1-dimensional range searching in O(log_B n + t/B) I/Os per query
// and O(log_B n) per update, with O(n/B) pages of storage.
//
// It serves three purposes here: the 1-D baseline of experiment E8 (a
// B+-tree answering a 2-sided query by x-range scan plus filter pays
// t_x/B, not t/B), the substrate for the temporal-database example, and a
// reference point for the I/O accounting of the path-cached structures.
//
// Keys are composite (Key int64, Val uint64) pairs so the tree is a multimap
// with unique composite entries; Val is the tuple identifier.
package btree

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"pathcache/internal/disk"
)

// Entry is one indexed pair.
type Entry struct {
	Key int64
	Val uint64
}

// less orders entries by (Key, Val).
func (e Entry) less(o Entry) bool {
	if e.Key != o.Key {
		return e.Key < o.Key
	}
	return e.Val < o.Val
}

// Tree is an external B+-tree. Not safe for concurrent mutation.
type Tree struct {
	pager   disk.Pager
	layout  disk.Layout
	root    disk.PageID
	height  int // levels below the root (0 = root is a leaf)
	size    int
	leafCap int
	intCap  int // max separator count of an internal node
}

// Layout reports the node layout the tree writes and searches with.
func (t *Tree) Layout() disk.Layout { return t.layout }

// ErrNotFound is returned by Delete when the entry is absent.
var ErrNotFound = errors.New("btree: entry not found")

// Node layout.
//
// Common header: kind uint8 (1=leaf, 2=internal), layout uint8
// (disk.Layout), count uint16.
// Leaf:     [header][next PageID int64][entries: key int64, val uint64]...
// Internal: [header][child0 PageID][sep entries: key, val, child PageID]...
//
// Under disk.LayoutSorted the entry slots hold entries in ascending order.
// Under disk.LayoutEytzinger the slots hold the same entries permuted into
// implicit-binary-tree order (1-based slot k has children 2k and 2k+1; the
// in-order traversal of that complete tree is the sorted order). An internal
// separator's child pointer travels with it, so the pointer at a slot is
// always the right child of the separator stored there; child0 stays in the
// fixed header position. Search on an Eytzinger node runs directly over the
// page bytes — branch-free index arithmetic, no entry decoding, no
// allocation.
const (
	kindLeaf     = 1
	kindInternal = 2
	hdrSize      = 4
	leafFixed    = hdrSize + 8 // header + next pointer
	leafEntry    = 16
	intFixed     = hdrSize + 8 // header + child0
	intEntry     = 24
)

// New creates an empty tree on p under disk.LayoutSorted.
func New(p disk.Pager) (*Tree, error) {
	return NewLayout(p, disk.LayoutSorted)
}

// NewLayout creates an empty tree on p with an explicit node layout. Both
// layouts support the full API, including Insert and Delete: mutations on an
// Eytzinger tree un-permute the node on read and re-permute on write.
func NewLayout(p disk.Pager, layout disk.Layout) (*Tree, error) {
	if !layout.Valid() {
		return nil, fmt.Errorf("btree: unknown layout %d", layout)
	}
	t := &Tree{
		pager:   p,
		layout:  layout,
		leafCap: (p.PageSize() - leafFixed) / leafEntry,
		intCap:  (p.PageSize() - intFixed) / intEntry,
	}
	if t.leafCap < 4 || t.intCap < 4 {
		return nil, fmt.Errorf("btree: page size %d too small", p.PageSize())
	}
	root, err := p.Alloc()
	if err != nil {
		return nil, err
	}
	t.root = root
	if err := t.writeNode(root, &node{kind: kindLeaf, next: disk.InvalidPage}); err != nil {
		return nil, err
	}
	return t, nil
}

// node is the in-memory image of one page.
type node struct {
	kind     uint8
	next     disk.PageID // leaves only
	entries  []Entry     // leaf records, or internal separators
	children []disk.PageID
}

// checkHeader validates a node header against the page size before any slot
// bytes are trusted, returning the kind, layout and count. Every violation
// wraps disk.ErrCorrupt so callers (and the fuzzers) can classify it.
func checkHeader(buf []byte, id disk.PageID) (kind byte, layout disk.Layout, count int, err error) {
	kind = buf[0]
	if kind != kindLeaf && kind != kindInternal {
		return 0, 0, 0, fmt.Errorf("btree: corrupt node %d kind %d: %w", id, kind, disk.ErrCorrupt)
	}
	layout, lerr := disk.CheckLayout(buf[1])
	if lerr != nil {
		return 0, 0, 0, fmt.Errorf("btree: node %d: %w", id, lerr)
	}
	count = int(le16(buf[2:]))
	fixed, entry := leafFixed, leafEntry
	if kind == kindInternal {
		fixed, entry = intFixed, intEntry
	}
	if fixed+count*entry > len(buf) {
		return 0, 0, 0, fmt.Errorf("btree: node %d count %d overflows page: %w", id, count, disk.ErrCorrupt)
	}
	return kind, layout, count, nil
}

// eytzOrder returns the slot->rank permutation for n entries: ord[s] is the
// in-order (sorted) position of 0-based Eytzinger slot s in the complete
// binary tree on n nodes.
func eytzOrder(n int) []int {
	ord := make([]int, n)
	rank := 0
	var fill func(s int)
	fill = func(s int) {
		if s >= n {
			return
		}
		fill(2*s + 1)
		ord[s] = rank
		rank++
		fill(2*s + 2)
	}
	fill(0)
	return ord
}

func (t *Tree) readNode(id disk.PageID) (*node, error) {
	buf := make([]byte, t.pager.PageSize())
	if err := t.pager.Read(id, buf); err != nil {
		return nil, err
	}
	kind, layout, count, err := checkHeader(buf, id)
	if err != nil {
		return nil, err
	}
	n := &node{kind: kind}
	var ord []int
	if layout == disk.LayoutEytzinger {
		ord = eytzOrder(count)
	}
	at := func(s int) int {
		if ord != nil {
			return ord[s]
		}
		return s
	}
	switch kind {
	case kindLeaf:
		n.next = disk.PageID(le64(buf[hdrSize:]))
		n.entries = make([]Entry, count)
		for s := 0; s < count; s++ {
			off := leafFixed + s*leafEntry
			n.entries[at(s)] = Entry{Key: int64(le64(buf[off:])), Val: le64(buf[off+8:])}
		}
	case kindInternal:
		n.children = make([]disk.PageID, count+1)
		n.children[0] = disk.PageID(le64(buf[hdrSize:]))
		n.entries = make([]Entry, count)
		for s := 0; s < count; s++ {
			off := intFixed + s*intEntry
			i := at(s)
			n.entries[i] = Entry{Key: int64(le64(buf[off:])), Val: le64(buf[off+8:])}
			n.children[i+1] = disk.PageID(le64(buf[off+16:]))
		}
	}
	return n, nil
}

func (t *Tree) writeNode(id disk.PageID, n *node) error {
	buf := make([]byte, t.pager.PageSize())
	buf[0] = n.kind
	buf[1] = byte(t.layout)
	put16(buf[2:], uint16(len(n.entries)))
	var ord []int
	if t.layout == disk.LayoutEytzinger {
		ord = eytzOrder(len(n.entries))
	}
	at := func(s int) int {
		if ord != nil {
			return ord[s]
		}
		return s
	}
	switch n.kind {
	case kindLeaf:
		put64(buf[hdrSize:], uint64(n.next))
		for s := range n.entries {
			e := n.entries[at(s)]
			off := leafFixed + s*leafEntry
			put64(buf[off:], uint64(e.Key))
			put64(buf[off+8:], e.Val)
		}
	case kindInternal:
		put64(buf[hdrSize:], uint64(n.children[0]))
		for s := range n.entries {
			i := at(s)
			e := n.entries[i]
			off := intFixed + s*intEntry
			put64(buf[off:], uint64(e.Key))
			put64(buf[off+8:], e.Val)
			put64(buf[off+16:], uint64(n.children[i+1]))
		}
	}
	return t.pager.Write(id, buf)
}

// lowerBound returns the first index i with !entries[i].less(e), i.e. the
// insertion point of e.
func lowerBound(entries []Entry, e Entry) int {
	lo, hi := 0, len(entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if entries[mid].less(e) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// childIndex picks the child to descend into for e: child i holds entries
// strictly less than separator i... entries >= separator i-1.
func childIndex(seps []Entry, e Entry) int {
	// First separator greater than e -> its left child.
	lo, hi := 0, len(seps)
	for lo < hi {
		mid := (lo + hi) / 2
		if !e.less(seps[mid]) { // seps[mid] <= e
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Len reports the number of entries.
func (t *Tree) Len() int { return t.size }

// WithPager returns a read-only view of the tree whose page reads go
// through p — the hook for per-operation I/O attribution during concurrent
// Search/Range batches. The view snapshots the root and height, so it must
// not be used for Insert/Delete and goes stale once the original mutates.
func (t *Tree) WithPager(p disk.Pager) *Tree {
	c := *t
	c.pager = p
	return &c
}

// Height reports the number of levels below the root.
func (t *Tree) Height() int { return t.height }

// Insert adds (key, val). Inserting a duplicate (key, val) pair is an
// error, matching unique tuple identifiers.
func (t *Tree) Insert(key int64, val uint64) error {
	e := Entry{Key: key, Val: val}
	sep, right, grew, err := t.insert(t.root, 0, e)
	if err != nil {
		return err
	}
	if grew {
		newRoot, err := t.pager.Alloc()
		if err != nil {
			return err
		}
		rn := &node{kind: kindInternal, entries: []Entry{sep}, children: []disk.PageID{t.root, right}}
		if err := t.writeNode(newRoot, rn); err != nil {
			return err
		}
		t.root = newRoot
		t.height++
	}
	t.size++
	return nil
}

// insert descends to the leaf, inserting e. If the child splits it returns
// the promoted separator and new right sibling.
func (t *Tree) insert(id disk.PageID, depth int, e Entry) (sep Entry, right disk.PageID, grew bool, err error) {
	n, err := t.readNode(id)
	if err != nil {
		return Entry{}, 0, false, err
	}
	if n.kind == kindLeaf {
		i := lowerBound(n.entries, e)
		if i < len(n.entries) && n.entries[i] == e {
			return Entry{}, 0, false, fmt.Errorf("btree: duplicate entry (%d,%d)", e.Key, e.Val)
		}
		n.entries = append(n.entries, Entry{})
		copy(n.entries[i+1:], n.entries[i:])
		n.entries[i] = e
		if len(n.entries) <= t.leafCap {
			return Entry{}, 0, false, t.writeNode(id, n)
		}
		// Split leaf.
		mid := len(n.entries) / 2
		rightID, err := t.pager.Alloc()
		if err != nil {
			return Entry{}, 0, false, err
		}
		rn := &node{kind: kindLeaf, next: n.next, entries: append([]Entry(nil), n.entries[mid:]...)}
		n.entries = n.entries[:mid]
		n.next = rightID
		if err := t.writeNode(rightID, rn); err != nil {
			return Entry{}, 0, false, err
		}
		if err := t.writeNode(id, n); err != nil {
			return Entry{}, 0, false, err
		}
		return rn.entries[0], rightID, true, nil
	}
	ci := childIndex(n.entries, e)
	sep, right, grew, err = t.insert(n.children[ci], depth+1, e)
	if err != nil || !grew {
		return Entry{}, 0, false, err
	}
	n.entries = append(n.entries, Entry{})
	copy(n.entries[ci+1:], n.entries[ci:])
	n.entries[ci] = sep
	n.children = append(n.children, 0)
	copy(n.children[ci+2:], n.children[ci+1:])
	n.children[ci+1] = right
	if len(n.entries) <= t.intCap {
		return Entry{}, 0, false, t.writeNode(id, n)
	}
	// Split internal node: middle separator moves up.
	mid := len(n.entries) / 2
	up := n.entries[mid]
	rightID, err := t.pager.Alloc()
	if err != nil {
		return Entry{}, 0, false, err
	}
	rn := &node{
		kind:     kindInternal,
		entries:  append([]Entry(nil), n.entries[mid+1:]...),
		children: append([]disk.PageID(nil), n.children[mid+1:]...),
	}
	n.entries = n.entries[:mid]
	n.children = n.children[:mid+1]
	if err := t.writeNode(rightID, rn); err != nil {
		return Entry{}, 0, false, err
	}
	if err := t.writeNode(id, n); err != nil {
		return Entry{}, 0, false, err
	}
	return up, rightID, true, nil
}

// Delete removes (key, val), rebalancing by borrowing or merging.
func (t *Tree) Delete(key int64, val uint64) error {
	found, _, err := t.del(t.root, Entry{Key: key, Val: val})
	if err != nil {
		return err
	}
	if !found {
		return fmt.Errorf("%w: (%d,%d)", ErrNotFound, key, val)
	}
	// Collapse a root that has become a single-child internal node.
	for t.height > 0 {
		rn, err := t.readNode(t.root)
		if err != nil {
			return err
		}
		if rn.kind != kindInternal || len(rn.entries) > 0 {
			break
		}
		old := t.root
		t.root = rn.children[0]
		t.height--
		if err := t.pager.Free(old); err != nil {
			return err
		}
	}
	t.size--
	return nil
}

func (t *Tree) minLeaf() int { return t.leafCap / 2 }
func (t *Tree) minInt() int  { return t.intCap / 2 }

// del removes e from the subtree at id; underflow reports whether the node
// dropped below its minimum (the parent then rebalances it).
func (t *Tree) del(id disk.PageID, e Entry) (found, underflow bool, err error) {
	n, err := t.readNode(id)
	if err != nil {
		return false, false, err
	}
	if n.kind == kindLeaf {
		i := lowerBound(n.entries, e)
		if i >= len(n.entries) || n.entries[i] != e {
			return false, false, nil
		}
		n.entries = append(n.entries[:i], n.entries[i+1:]...)
		if err := t.writeNode(id, n); err != nil {
			return false, false, err
		}
		return true, len(n.entries) < t.minLeaf(), nil
	}
	ci := childIndex(n.entries, e)
	found, under, err := t.del(n.children[ci], e)
	if err != nil || !found || !under {
		return found, false, err
	}
	under, err = t.rebalanceChild(id, n, ci)
	return true, under, err
}

// rebalanceChild restores child ci of internal node n (page id) after an
// underflow, via borrow from a sibling or merge with one. Returns whether n
// itself underflowed.
func (t *Tree) rebalanceChild(id disk.PageID, n *node, ci int) (bool, error) {
	child, err := t.readNode(n.children[ci])
	if err != nil {
		return false, err
	}
	minC := t.minLeaf()
	if child.kind == kindInternal {
		minC = t.minInt()
	}

	// Try borrowing from the left sibling.
	if ci > 0 {
		left, err := t.readNode(n.children[ci-1])
		if err != nil {
			return false, err
		}
		if len(left.entries) > minC {
			if child.kind == kindLeaf {
				last := left.entries[len(left.entries)-1]
				left.entries = left.entries[:len(left.entries)-1]
				child.entries = append([]Entry{last}, child.entries...)
				n.entries[ci-1] = child.entries[0]
			} else {
				// Rotate through the separator.
				child.entries = append([]Entry{n.entries[ci-1]}, child.entries...)
				child.children = append([]disk.PageID{left.children[len(left.children)-1]}, child.children...)
				n.entries[ci-1] = left.entries[len(left.entries)-1]
				left.entries = left.entries[:len(left.entries)-1]
				left.children = left.children[:len(left.children)-1]
			}
			if err := t.writeNode(n.children[ci-1], left); err != nil {
				return false, err
			}
			if err := t.writeNode(n.children[ci], child); err != nil {
				return false, err
			}
			return false, t.writeNode(id, n)
		}
	}
	// Try borrowing from the right sibling.
	if ci < len(n.children)-1 {
		right, err := t.readNode(n.children[ci+1])
		if err != nil {
			return false, err
		}
		if len(right.entries) > minC {
			if child.kind == kindLeaf {
				first := right.entries[0]
				right.entries = right.entries[1:]
				child.entries = append(child.entries, first)
				n.entries[ci] = right.entries[0]
			} else {
				child.entries = append(child.entries, n.entries[ci])
				child.children = append(child.children, right.children[0])
				n.entries[ci] = right.entries[0]
				right.entries = right.entries[1:]
				right.children = right.children[1:]
			}
			if err := t.writeNode(n.children[ci+1], right); err != nil {
				return false, err
			}
			if err := t.writeNode(n.children[ci], child); err != nil {
				return false, err
			}
			return false, t.writeNode(id, n)
		}
	}
	// Merge with a sibling. Normalize so we merge children[mi] <- children[mi+1].
	mi := ci
	if ci == len(n.children)-1 {
		mi = ci - 1
	}
	leftN, err := t.readNode(n.children[mi])
	if err != nil {
		return false, err
	}
	rightN, err := t.readNode(n.children[mi+1])
	if err != nil {
		return false, err
	}
	if leftN.kind == kindLeaf {
		leftN.entries = append(leftN.entries, rightN.entries...)
		leftN.next = rightN.next
	} else {
		leftN.entries = append(leftN.entries, n.entries[mi])
		leftN.entries = append(leftN.entries, rightN.entries...)
		leftN.children = append(leftN.children, rightN.children...)
	}
	if err := t.writeNode(n.children[mi], leftN); err != nil {
		return false, err
	}
	if err := t.pager.Free(n.children[mi+1]); err != nil {
		return false, err
	}
	n.entries = append(n.entries[:mi], n.entries[mi+1:]...)
	n.children = append(n.children[:mi+1], n.children[mi+2:]...)
	if err := t.writeNode(id, n); err != nil {
		return false, err
	}
	return len(n.entries) < t.minInt(), nil
}

// Search returns all values stored under key, in ascending value order, and
// costs O(log_B n + t/B) I/Os.
func (t *Tree) Search(key int64) ([]uint64, error) {
	var out []uint64
	err := t.Range(key, key, func(_ int64, v uint64) bool {
		out = append(out, v)
		return true
	})
	return out, err
}

// Range visits every entry with lo <= key <= hi in ascending order, calling
// fn; fn returns false to stop early. Cost: O(log_B n + t/B) I/Os.
func (t *Tree) Range(lo, hi int64, fn func(key int64, val uint64) bool) error {
	if lo > hi {
		return nil
	}
	if t.layout == disk.LayoutEytzinger {
		// Eytzinger trees search through the zero-copy branchless path; the
		// sorted layout keeps the decoded-node reader below.
		return t.rangeRaw(lo, hi, fn)
	}
	start := Entry{Key: lo, Val: 0}
	id := t.root
	for {
		n, err := t.readNode(id)
		if err != nil {
			return err
		}
		if n.kind == kindLeaf {
			// Scan forward across the leaf chain.
			for {
				i := lowerBound(n.entries, start)
				for ; i < len(n.entries); i++ {
					e := n.entries[i]
					if e.Key > hi {
						return nil
					}
					if !fn(e.Key, e.Val) {
						return nil
					}
				}
				if n.next == disk.InvalidPage {
					return nil
				}
				id = n.next
				n, err = t.readNode(id)
				if err != nil {
					return err
				}
			}
		}
		id = n.children[childIndex(n.entries, start)]
	}
}

// Min returns the smallest entry, or ok=false when empty.
func (t *Tree) Min() (Entry, bool, error) {
	id := t.root
	for {
		n, err := t.readNode(id)
		if err != nil {
			return Entry{}, false, err
		}
		if n.kind == kindLeaf {
			if len(n.entries) == 0 {
				return Entry{}, false, nil
			}
			return n.entries[0], true, nil
		}
		id = n.children[0]
	}
}

// Max returns the largest entry, or ok=false when empty.
func (t *Tree) Max() (Entry, bool, error) {
	id := t.root
	for {
		n, err := t.readNode(id)
		if err != nil {
			return Entry{}, false, err
		}
		if n.kind == kindLeaf {
			if len(n.entries) == 0 {
				return Entry{}, false, nil
			}
			return n.entries[len(n.entries)-1], true, nil
		}
		id = n.children[len(n.children)-1]
	}
}

// All visits every entry in ascending order.
func (t *Tree) All(fn func(key int64, val uint64) bool) error {
	return t.Range(math.MinInt64, math.MaxInt64, fn)
}

// Check walks the whole tree validating structural invariants: entry order,
// separator fencing, fill factors, uniform leaf depth, and leaf-chain
// consistency. Used by tests and safe to call any time.
func (t *Tree) Check() error {
	leafDepth := -1
	var prevLeafLast *Entry
	var walk func(id disk.PageID, depth int, lo, hi *Entry) error
	walk = func(id disk.PageID, depth int, lo, hi *Entry) error {
		n, err := t.readNode(id)
		if err != nil {
			return err
		}
		for i := 1; i < len(n.entries); i++ {
			if !n.entries[i-1].less(n.entries[i]) {
				return fmt.Errorf("btree: node %d entries out of order at %d", id, i)
			}
		}
		if lo != nil && len(n.entries) > 0 && n.entries[0].less(*lo) {
			return fmt.Errorf("btree: node %d violates low fence", id)
		}
		if hi != nil && len(n.entries) > 0 && !n.entries[len(n.entries)-1].less(*hi) {
			return fmt.Errorf("btree: node %d violates high fence", id)
		}
		if n.kind == kindLeaf {
			if leafDepth == -1 {
				leafDepth = depth
			} else if leafDepth != depth {
				return fmt.Errorf("btree: leaf %d at depth %d, expected %d", id, depth, leafDepth)
			}
			if id != t.root && len(n.entries) < t.minLeaf() {
				return fmt.Errorf("btree: leaf %d underfull (%d)", id, len(n.entries))
			}
			if prevLeafLast != nil && len(n.entries) > 0 && !prevLeafLast.less(n.entries[0]) {
				return fmt.Errorf("btree: leaf chain out of order at %d", id)
			}
			if len(n.entries) > 0 {
				last := n.entries[len(n.entries)-1]
				prevLeafLast = &last
			}
			return nil
		}
		if id != t.root && len(n.entries) < t.minInt() {
			return fmt.Errorf("btree: internal %d underfull (%d)", id, len(n.entries))
		}
		for i, c := range n.children {
			var clo, chi *Entry
			if i > 0 {
				clo = &n.entries[i-1]
			} else {
				clo = lo
			}
			if i < len(n.entries) {
				chi = &n.entries[i]
			} else {
				chi = hi
			}
			if err := walk(c, depth+1, clo, chi); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(t.root, 0, nil, nil)
}

func le16(b []byte) uint16 { return uint16(b[0]) | uint16(b[1])<<8 }
func le64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}
func put16(b []byte, v uint16) { b[0], b[1] = byte(v), byte(v>>8) }
func put64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// BulkLoad builds a tree bottom-up from entries, packing leaves to about 90%
// fill — the standard fast path for loading sorted data, costing O(n/B)
// writes instead of n·O(log_B n). Entries are sorted internally if needed;
// duplicate (Key, Val) pairs are rejected.
func BulkLoad(p disk.Pager, entries []Entry) (*Tree, error) {
	return BulkLoadLayout(p, entries, disk.LayoutSorted)
}

// BulkLoadLayout is BulkLoad with an explicit node layout.
func BulkLoadLayout(p disk.Pager, entries []Entry, layout disk.Layout) (*Tree, error) {
	t, err := NewLayout(p, layout)
	if err != nil {
		return nil, err
	}
	if len(entries) == 0 {
		return t, nil
	}
	es := append([]Entry(nil), entries...)
	sort.Slice(es, func(i, j int) bool { return es[i].less(es[j]) })
	for i := 1; i < len(es); i++ {
		if es[i] == es[i-1] {
			return nil, fmt.Errorf("btree: duplicate entry (%d,%d)", es[i].Key, es[i].Val)
		}
	}
	// The fresh empty root leaf is replaced wholesale.
	if err := p.Free(t.root); err != nil {
		return nil, err
	}

	type levelNode struct {
		id    disk.PageID
		first Entry
	}
	// Leaves: ~90% fill, with the last two groups rebalanced so no leaf
	// falls below the deletion minimum.
	sizes := packSizes(len(es), t.leafCap*9/10, t.minLeaf())
	var level []levelNode
	var prevLeaf disk.PageID = disk.InvalidPage
	var prevNode *node
	off := 0
	for _, sz := range sizes {
		id, err := p.Alloc()
		if err != nil {
			return nil, err
		}
		if prevNode != nil {
			prevNode.next = id
			if err := t.writeNode(prevLeaf, prevNode); err != nil {
				return nil, err
			}
		}
		prevLeaf = id
		prevNode = &node{kind: kindLeaf, next: disk.InvalidPage, entries: es[off : off+sz]}
		level = append(level, levelNode{id: id, first: es[off]})
		off += sz
	}
	if err := t.writeNode(prevLeaf, prevNode); err != nil {
		return nil, err
	}
	// Internal levels, same rebalanced packing in children.
	height := 0
	for len(level) > 1 {
		var next []levelNode
		sizes := packSizes(len(level), t.intCap*9/10+1, t.minInt()+1)
		off := 0
		for _, sz := range sizes {
			group := level[off : off+sz]
			off += sz
			id, err := p.Alloc()
			if err != nil {
				return nil, err
			}
			n := &node{kind: kindInternal, children: make([]disk.PageID, 0, len(group))}
			for gi, ln := range group {
				n.children = append(n.children, ln.id)
				if gi > 0 {
					n.entries = append(n.entries, ln.first)
				}
			}
			if err := t.writeNode(id, n); err != nil {
				return nil, err
			}
			next = append(next, levelNode{id: id, first: group[0].first})
		}
		level = next
		height++
	}
	t.root = level[0].id
	t.height = height
	t.size = len(es)
	return t, nil
}

// packSizes splits n items into groups of at most max, each at least min
// (except a lone group smaller than min when n < min), by rebalancing the
// final two groups.
func packSizes(n, max, min int) []int {
	if max < 1 {
		max = 1
	}
	if min < 1 {
		min = 1
	}
	if min > max {
		min = max
	}
	var sizes []int
	for remaining := n; remaining > 0; {
		if remaining <= max {
			sizes = append(sizes, remaining)
			break
		}
		sizes = append(sizes, max)
		remaining -= max
	}
	if len(sizes) >= 2 {
		last := sizes[len(sizes)-1]
		if last < min {
			combined := sizes[len(sizes)-2] + last
			sizes[len(sizes)-2] = combined - combined/2
			sizes[len(sizes)-1] = combined / 2
		}
	}
	return sizes
}
