package btree

import (
	"errors"
	"testing"

	"pathcache/internal/disk"
)

// errReadBudget is returned by budgetPager when a fuzzed tree makes the
// read path chase a page cycle; it bounds the walk without masking panics.
var errReadBudget = errors.New("btree fuzz: read budget exhausted")

// budgetPager caps the number of reads an operation may issue. Corrupt
// child or leaf-chain pointers can form cycles of structurally valid
// pages, so "never hangs" needs a budget just like "never panics" needs
// the fuzzer.
type budgetPager struct {
	disk.Pager
	left int
}

func (p *budgetPager) Read(id disk.PageID, buf []byte) error {
	if p.left <= 0 {
		return errReadBudget
	}
	p.left--
	return p.Pager.Read(id, buf)
}

// fuzzTolerable classifies the errors the read path may legitimately
// surface on a corrupted image: a header violation (wrapping
// disk.ErrCorrupt), a pointer into a freed or out-of-range page
// (disk.ErrBadPage), or the test's own read budget. Anything else — above
// all a panic — is a bug.
func fuzzTolerable(err error) bool {
	return err == nil ||
		errors.Is(err, disk.ErrCorrupt) ||
		errors.Is(err, disk.ErrBadPage) ||
		errors.Is(err, errReadBudget)
}

// FuzzLayoutPageDecode splices arbitrary bytes into one page of a valid
// B+-tree — under both layouts, since the two read paths are different
// code (the sorted layout decodes nodes, the Eytzinger layout searches the
// raw page bytes) — and drives Search/Range/Min/Max over the damaged tree.
// The contract: no input may panic or hang, and every failure is a
// classified error. A corrupt layout byte in particular must be flagged as
// disk.ErrCorrupt before any slot bytes are trusted.
func FuzzLayoutPageDecode(f *testing.F) {
	f.Add(uint8(0), uint16(0), uint16(0), []byte{}, int64(50))
	f.Add(uint8(1), uint16(1), uint16(1), []byte{0xFF, 0xFF, 0xFF, 0xFF}, int64(120))
	f.Add(uint8(1), uint16(2), uint16(3), []byte{kindInternal, 7, 0xFF, 0x7F}, int64(-3))
	f.Add(uint8(0), uint16(3), uint16(8), []byte{kindLeaf, 0, 2, 0, 9, 9, 9, 9, 9, 9, 9, 9}, int64(7))

	f.Fuzz(func(t *testing.T, layoutSel uint8, pageSel, off uint16, patch []byte, key int64) {
		const pageSize = 256
		layout := disk.Layout(layoutSel % 2)
		s := disk.MustStore(pageSize)
		tr, err := NewLayout(s, layout)
		if err != nil {
			t.Fatal(err)
		}
		for i := int64(0); i < 200; i++ {
			if err := tr.Insert(i*3, uint64(i)); err != nil {
				t.Fatal(err)
			}
		}

		// Corrupt one allocated page in place: read it, splice the patch at
		// the fuzzed offset, write it back.
		victim := disk.PageID(int(pageSel) % s.NumPages())
		buf := make([]byte, pageSize)
		if err := s.Read(victim, buf); err != nil {
			t.Fatal(err)
		}
		at := int(off) % pageSize
		copy(buf[at:], patch)
		if err := s.Write(victim, buf); err != nil {
			t.Fatal(err)
		}

		rd := tr.WithPager(&budgetPager{Pager: s, left: 256})
		if _, err := rd.Search(key); !fuzzTolerable(err) {
			t.Fatalf("Search on corrupted page %d: %v", victim, err)
		}
		if err := rd.Range(key, key+100, func(int64, uint64) bool { return true }); !fuzzTolerable(err) {
			t.Fatalf("Range on corrupted page %d: %v", victim, err)
		}
		if _, _, err := rd.Min(); !fuzzTolerable(err) {
			t.Fatalf("Min on corrupted page %d: %v", victim, err)
		}
		if _, _, err := rd.Max(); !fuzzTolerable(err) {
			t.Fatalf("Max on corrupted page %d: %v", victim, err)
		}

		// A bad layout byte must always classify as corruption, whatever the
		// rest of the page says: force one onto the root and search again.
		if err := s.Read(tr.root, buf); err != nil {
			t.Fatal(err)
		}
		buf[1] = 2 + byte(layoutSel)%250 // any value outside the two valid layouts
		if err := s.Write(tr.root, buf); err != nil {
			t.Fatal(err)
		}
		rd = tr.WithPager(&budgetPager{Pager: s, left: 256})
		if _, err := rd.Search(key); !errors.Is(err, disk.ErrCorrupt) {
			t.Fatalf("Search with invalid root layout byte: err=%v, want ErrCorrupt", err)
		}
	})
}
