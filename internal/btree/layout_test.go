package btree

import (
	"math/rand"
	"testing"

	"pathcache/internal/disk"
)

// eytzOrder must be the inverse of the in-order traversal of the complete
// binary tree: sorting the slots by rank recovers 0..n-1.
func TestEytzOrder(t *testing.T) {
	for n := 0; n <= 70; n++ {
		ord := eytzOrder(n)
		seen := make([]bool, n)
		for s, r := range ord {
			if r < 0 || r >= n || seen[r] {
				t.Fatalf("n=%d: slot %d has bad rank %d", n, s, r)
			}
			seen[r] = true
		}
		// In-order successor arithmetic must enumerate ranks in order.
		rank := 0
		for k := eytzMin(n); k != 0; k = eytzSucc(k, n) {
			if ord[k-1] != rank {
				t.Fatalf("n=%d: successor walk visits rank %d at step %d", n, ord[k-1], rank)
			}
			rank++
		}
		if rank != n {
			t.Fatalf("n=%d: successor walk saw %d slots", n, rank)
		}
	}
}

// A tree bulk-loaded under LayoutEytzinger must answer every query exactly
// like its sorted twin, with identical page reads, and survive mutation.
func TestEytzingerDifferential(t *testing.T) {
	for _, pageSize := range []int{256, 1024, 4096} {
		rng := rand.New(rand.NewSource(int64(pageSize)))
		n := 5000
		entries := make([]Entry, n)
		for i := range entries {
			entries[i] = Entry{Key: int64(rng.Intn(n / 2)), Val: uint64(i)}
		}
		ss, es := disk.MustStore(pageSize), disk.MustStore(pageSize)
		st, err := BulkLoad(ss, entries)
		if err != nil {
			t.Fatal(err)
		}
		et, err := BulkLoadLayout(es, entries, disk.LayoutEytzinger)
		if err != nil {
			t.Fatal(err)
		}
		if err := et.Check(); err != nil {
			t.Fatalf("page %d: eytzinger Check: %v", pageSize, err)
		}
		for i := 0; i < 300; i++ {
			lo := int64(rng.Intn(n/2)) - 5
			hi := lo + int64(rng.Intn(40))
			var sc, ec disk.Counter
			var sr, er []Entry
			serr := st.WithPager(disk.WithCounter(ss, &sc)).Range(lo, hi, func(k int64, v uint64) bool {
				sr = append(sr, Entry{k, v})
				return true
			})
			eerr := et.WithPager(disk.WithCounter(es, &ec)).Range(lo, hi, func(k int64, v uint64) bool {
				er = append(er, Entry{k, v})
				return true
			})
			if serr != nil || eerr != nil {
				t.Fatalf("range errs: %v %v", serr, eerr)
			}
			if len(sr) != len(er) {
				t.Fatalf("page %d [%d,%d]: %d vs %d results", pageSize, lo, hi, len(sr), len(er))
			}
			for j := range sr {
				if sr[j] != er[j] {
					t.Fatalf("page %d [%d,%d] result %d: %v vs %v", pageSize, lo, hi, j, sr[j], er[j])
				}
			}
			if sc.Stats().Reads != ec.Stats().Reads {
				t.Fatalf("page %d [%d,%d]: reads %d vs %d", pageSize, lo, hi, sc.Stats().Reads, ec.Stats().Reads)
			}
		}
		// Mutations re-permute on write; the tree must stay valid.
		for i := 0; i < 500; i++ {
			if err := et.Insert(int64(rng.Intn(100)), uint64(n+i)); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 250; i++ {
			if err := et.Delete(entries[i].Key, entries[i].Val); err != nil {
				t.Fatal(err)
			}
		}
		if err := et.Check(); err != nil {
			t.Fatalf("page %d: post-mutation Check: %v", pageSize, err)
		}
	}
}
