package btree

import (
	"fmt"
	"math/bits"

	"pathcache/internal/disk"
)

// This file is the zero-copy read path used by Search/Range on
// disk.LayoutEytzinger trees. It operates directly on the page bytes: one
// scratch page buffer per operation, no node decoding, no []Entry
// allocation, and a branch-free descent — comparisons reduce to SETcc/CMOV
// index arithmetic instead of data-dependent branches.
//
// Keys are compared in order-preserving unsigned form (int64 with the sign
// bit flipped), so a composite (Key, Val) compare is two unsigned compares
// combined with AND/OR masks.

// signFlip maps int64 to order-preserving uint64.
const signFlip = 1 << 63

// b2i converts a comparison result to 0/1 without a branch (compiles to
// SETcc on amd64 and CSET on arm64).
func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// rawEntryLess reports entry-at-off < (ku, val), with ku already sign
// flipped. Branch-free: both legs of the composite compare are evaluated.
func rawEntryLess(buf []byte, off int, ku, val uint64) int {
	sk := le64(buf[off:]) ^ signFlip
	sv := le64(buf[off+8:])
	return b2i(sk < ku) | (b2i(sk == ku) & b2i(sv < val))
}

// rawEntryGreater reports entry-at-off > (ku, val).
func rawEntryGreater(buf []byte, off int, ku, val uint64) int {
	sk := le64(buf[off:]) ^ signFlip
	sv := le64(buf[off+8:])
	return b2i(sk > ku) | (b2i(sk == ku) & b2i(sv > val))
}

// eytzLeafLower returns the 1-based Eytzinger slot of the first entry
// >= (ku, val) among n entries, or 0 when every entry is smaller. This is
// the classic branchless Eytzinger lower bound: descend accumulating the
// go-right bits in k, then strip the trailing ones.
func eytzLeafLower(buf []byte, n int, ku, val uint64) int {
	k := 1
	for k <= n {
		off := leafFixed + (k-1)*leafEntry
		k = 2*k + rawEntryLess(buf, off, ku, val)
	}
	return k >> (bits.TrailingZeros(^uint(k)) + 1)
}

// sortedLeafLower is the same query over a sorted-layout leaf: 0-based index
// of the first entry >= (ku, val), or n when none.
func sortedLeafLower(buf []byte, n int, ku, val uint64) int {
	lo, hi := 0, n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		off := leafFixed + mid*leafEntry
		if rawEntryLess(buf, off, ku, val) == 1 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// eytzSucc returns the 1-based slot holding the in-order successor of slot
// k in the complete binary tree on n nodes, or 0 when k is the maximum.
func eytzSucc(k, n int) int {
	if r := 2*k + 1; r <= n {
		for 2*r <= n {
			r *= 2
		}
		return r
	}
	for k > 1 && k&1 == 1 {
		k >>= 1
	}
	if k <= 1 {
		return 0
	}
	return k >> 1
}

// eytzMin returns the 1-based slot of the smallest entry (0 when empty).
func eytzMin(n int) int {
	if n == 0 {
		return 0
	}
	k := 1
	for 2*k <= n {
		k *= 2
	}
	return k
}

// rawChild picks the child page to descend into for (ku, val) directly from
// an internal node's bytes, dispatching on the node's recorded layout. The
// Eytzinger descent tracks the last separator it passed on the right — the
// in-order predecessor — whose stored pointer is exactly the child
// childIndex would select.
func rawChild(buf []byte, layout disk.Layout, n int, ku, val uint64) disk.PageID {
	pred := 0 // 1-based slot of the last separator <= (ku, val); 0 = none
	if layout == disk.LayoutEytzinger {
		k := 1
		for k <= n {
			off := intFixed + (k-1)*intEntry
			c := 1 - rawEntryGreater(buf, off, ku, val) // sep <= e
			pred += (k - pred) * c
			k = 2*k + c
		}
	} else {
		lo, hi := 0, n
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			off := intFixed + mid*intEntry
			if rawEntryGreater(buf, off, ku, val) == 0 { // sep <= e
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		pred = lo // slots are ranks under the sorted layout
	}
	if pred == 0 {
		return disk.PageID(le64(buf[hdrSize:]))
	}
	return disk.PageID(le64(buf[intFixed+(pred-1)*intEntry+16:]))
}

// rangeRaw is Range over the zero-copy path. It reuses one scratch page
// buffer for the whole operation and dispatches each node on its header
// layout byte, so it is also correct for sorted nodes (the descent is then
// a raw binary search instead of the branchless walk).
func (t *Tree) rangeRaw(lo, hi int64, fn func(key int64, val uint64) bool) error {
	ku := uint64(lo) ^ signFlip
	hku := uint64(hi) ^ signFlip
	const val = 0 // range start at Val 0: first entry with Key >= lo
	buf := make([]byte, t.pager.PageSize())
	id := t.root
	for {
		if err := t.pager.Read(id, buf); err != nil {
			return err
		}
		kind, layout, count, err := checkHeader(buf, id)
		if err != nil {
			return err
		}
		if kind == kindLeaf {
			return t.scanLeavesRaw(buf, id, layout, count, ku, hku, val, fn)
		}
		id = rawChild(buf, layout, count, ku, val)
	}
}

// scanLeavesRaw emits entries in [start, hi] from the leaf in buf onward,
// following the leaf chain. first selects the in-order start position; the
// Eytzinger iteration order is the arithmetic in-order successor walk.
func (t *Tree) scanLeavesRaw(buf []byte, id disk.PageID, layout disk.Layout, count int, ku, hku, val uint64, fn func(key int64, val uint64) bool) error {
	atStart := true
	for {
		if layout == disk.LayoutEytzinger {
			k := eytzMin(count)
			if atStart {
				k = eytzLeafLower(buf, count, ku, val)
			}
			for k != 0 {
				off := leafFixed + (k-1)*leafEntry
				ek := le64(buf[off:]) ^ signFlip
				if ek > hku {
					return nil
				}
				if !fn(int64(ek^signFlip), le64(buf[off+8:])) {
					return nil
				}
				k = eytzSucc(k, count)
			}
		} else {
			i := 0
			if atStart {
				i = sortedLeafLower(buf, count, ku, val)
			}
			for ; i < count; i++ {
				off := leafFixed + i*leafEntry
				ek := le64(buf[off:]) ^ signFlip
				if ek > hku {
					return nil
				}
				if !fn(int64(ek^signFlip), le64(buf[off+8:])) {
					return nil
				}
			}
		}
		atStart = false
		next := disk.PageID(int64(le64(buf[hdrSize:])))
		if next == disk.InvalidPage {
			return nil
		}
		id = next
		if err := t.pager.Read(id, buf); err != nil {
			return err
		}
		kind, l, c, err := checkHeader(buf, id)
		if err != nil {
			return err
		}
		if kind != kindLeaf {
			return fmt.Errorf("btree: leaf chain reaches non-leaf node %d: %w", id, disk.ErrCorrupt)
		}
		layout, count = l, c
	}
}
